module marnet

go 1.22
