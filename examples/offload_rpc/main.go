// Offload-RPC example: the full CloudRidAR loop on the real network stack.
// A recognition server holds a reference scene; the "mobile device"
// extracts BRIEF features from its (shifted) camera view, serializes them,
// and calls the server over the ARTP/UDP RPC layer — AES-GCM sealed,
// deadline-bounded — which matches against the reference and returns the
// recovered camera translation. Everything is real: pixels, descriptors,
// RANSAC, sockets, crypto.
package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"
	"time"

	"marnet/internal/rpc"
	"marnet/internal/vision"
)

const methodLocate = 1

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	reference := vision.Scene(vision.SceneConfig{W: 320, H: 240, Rects: 30, NoiseStd: 2}, 99)
	refFeats := vision.Describe(reference, vision.DetectFAST(reference, 20, 300))
	fmt.Printf("server: reference scene indexed with %d features\n", len(refFeats))

	// Recognition handler: match the client's features against the
	// reference and return the homography's translation estimate.
	rng := rand.New(rand.NewSource(4))
	handler := func(method uint8, req []byte) []byte {
		if method != methodLocate {
			return nil
		}
		feats, err := vision.DecodeFeatures(req)
		if err != nil {
			return nil
		}
		matches := vision.MatchFeatures(feats, refFeats, 60, 0.8)
		res, err := vision.EstimateHomography(feats, refFeats, matches, vision.RansacConfig{MinInliers: 6}, rng)
		if err != nil {
			return nil
		}
		// The translation of the view center describes the camera motion.
		hx, hy, _ := res.H.Apply(160, 120)
		out := make([]byte, 8)
		binary.LittleEndian.PutUint32(out[0:], uint32(int32(hx-160)))
		binary.LittleEndian.PutUint32(out[4:], uint32(int32(hy-120)))
		return out
	}

	key := bytes.Repeat([]byte{0x42}, 16)
	server, err := rpc.NewServer("127.0.0.1:0", key, handler)
	if err != nil {
		return err
	}
	defer server.Close()
	client, err := rpc.Dial(server.Addr(), rpc.ClientConfig{Key: key})
	if err != nil {
		return err
	}
	defer client.Close()
	fmt.Printf("client: connected to %s (AES-GCM sealed)\n\n", server.Addr())

	fmt.Printf("%-8s %-14s %-14s %-10s\n", "frame", "true shift", "server says", "latency")
	for i := 1; i <= 6; i++ {
		dx, dy := 3*i, 2*i
		view := vision.Warp(reference, vision.Translation(float64(dx), float64(dy)))

		// Device-side extraction (the CloudRidAR split): ship features,
		// not pixels. Cap the payload to the RPC MTU.
		feats := vision.Describe(view, vision.DetectFAST(view, 20, 25))
		payload := vision.EncodeFeatures(nil, feats)

		t0 := time.Now()
		resp, err := client.Call(methodLocate, payload, time.Second)
		lat := time.Since(t0)
		if err != nil {
			fmt.Printf("%-8d call failed: %v\n", i, err)
			continue
		}
		if len(resp) != 8 {
			fmt.Printf("%-8d server could not localize (%d features sent)\n", i, len(feats))
			continue
		}
		gx := int32(binary.LittleEndian.Uint32(resp[0:]))
		gy := int32(binary.LittleEndian.Uint32(resp[4:]))
		fmt.Printf("%-8d (%3d,%3d)      (%3d,%3d)      %v\n", i, dx, dy, gx, gy, lat.Round(100*time.Microsecond))
	}
	fmt.Printf("\nfeatures per call: ~25 x %dB = ~1 KB vs %d KB for the raw frame (%.0fx saving)\n",
		vision.FeatureWireBytes, reference.Bytes()/1024,
		float64(reference.Bytes())/float64(25*vision.FeatureWireBytes))
	return nil
}
