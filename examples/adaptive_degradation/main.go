// Adaptive degradation example: the closed loop of §VI-C live. A mobile
// client offloads recognition at 20 FPS over an 800 kb/s edge uplink
// while cross-traffic squeezes the cell twice; the degradation
// controller walks the payload ladder (full frames -> features ->
// cached tracking -> skip) on miss-rate evidence, resizes its FEC plan
// to the measured loss, and flips between retransmission and FEC at the
// paper's RTT <= Budget/2 affordability bound. The same scenario is
// replayed under every fixed rung so the loop's win is visible.
package main

import (
	"fmt"
	"log"

	"marnet/internal/adapt"
	"marnet/internal/marsim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const seed = 42
	fmt.Println("congestion ramp: 800 kb/s uplink; 560 kb/s cross-traffic at 6 s, 790 kb/s at 14 s")
	fmt.Println()

	adaptive, err := marsim.RunAdaptCongestion(seed, marsim.PolicyAdaptive)
	if err != nil {
		return err
	}
	fmt.Println("controller timeline (mode switches and ARQ/FEC changes):")
	var prev adapt.Decision
	for i, d := range adaptive.Decisions {
		if i > 0 && !d.Switched && d.Policy.Retransmit == prev.Policy.Retransmit &&
			d.Policy.K == prev.Policy.K && d.Policy.M == prev.Policy.M {
			prev = d
			continue
		}
		kind := "fec-resize"
		switch {
		case i == 0:
			kind = "start"
		case d.Probe:
			kind = "upgrade-probe"
		case d.Switched:
			kind = "switch"
		case d.Policy.Retransmit != prev.Policy.Retransmit:
			kind = "arq<->fec"
		}
		fmt.Printf("  t=%6.1fs  %-13s mode=%-8s retx=%-5v fec=%d+%d  miss-ewma=%.2f\n",
			d.Now.Seconds(), kind, d.Policy.Mode, d.Policy.Retransmit,
			d.Policy.K, d.Policy.M, d.Miss)
		prev = d
	}
	fmt.Println()

	fmt.Printf("%-16s %10s %8s %10s %9s\n", "policy", "hits", "hit%", "up-bytes", "rms(px)")
	show := func(r *marsim.AdaptResult) {
		fmt.Printf("%-16s %5d/%-4d %7.1f%% %10d %9.1f\n",
			r.Kind, r.Hits, r.Frames, 100*r.HitRate(), r.UpBytes, r.RMSError)
	}
	show(adaptive)
	for _, k := range []marsim.AdaptPolicyKind{
		marsim.PolicyFixedFull, marsim.PolicyFixedFeatures, marsim.PolicyFixedTracking,
	} {
		r, err := marsim.RunAdaptCongestion(seed, k)
		if err != nil {
			return err
		}
		show(r)
	}
	fmt.Println()

	ho, err := marsim.RunAdaptHandover(seed, marsim.PolicyAdaptive)
	if err != nil {
		return err
	}
	fmt.Printf("handover to a 55 ms cell radio at 8 s and back at 16 s: %d ARQ<->FEC flips\n", ho.RetxFlips)
	fmt.Printf("  (retransmission is affordable only while RTT <= %v; past it the controller buys FEC instead)\n",
		adapt.RetxAffordableRTT)
	return nil
}
