// Offload pipeline example: runs the actual pure-Go vision pipeline on a
// synthetic camera frame (real pixels, real features, real homography),
// times each stage, feeds those costs into the paper's Section III cost
// model, and then replays the four offloading strategies over a simulated
// LTE link to show which ones hold a 30 FPS deadline on a smartphone.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"marnet/internal/device"
	"marnet/internal/mar"
	"marnet/internal/offload"
	"marnet/internal/phy"
	"marnet/internal/simnet"
	"marnet/internal/vision"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- Part 1: the real vision workload. -------------------------------
	scene := vision.Scene(vision.SceneConfig{W: 320, H: 240, Rects: 30, NoiseStd: 2}, 7)
	shifted := vision.Warp(scene, vision.Translation(-6, -4))

	t0 := time.Now()
	kps := vision.DetectFAST(scene, 20, 300)
	feats := vision.Describe(scene, kps)
	extractTime := time.Since(t0)

	t0 = time.Now()
	kps2 := vision.DetectFAST(shifted, 20, 300)
	feats2 := vision.Describe(shifted, kps2)
	matches := vision.MatchFeatures(feats, feats2, 60, 0.8)
	res, err := vision.EstimateHomography(feats, feats2, matches, vision.RansacConfig{}, rand.New(rand.NewSource(1)))
	if err != nil {
		return err
	}
	matchTime := time.Since(t0)

	hx, hy, _ := res.H.Apply(100, 100)
	fmt.Printf("vision pipeline on a %dx%d frame:\n", scene.W, scene.H)
	fmt.Printf("  %d keypoints, %d descriptors, %d matches, %d inliers\n",
		len(kps), len(feats), len(matches), len(res.Inliers))
	fmt.Printf("  recovered camera motion: (100,100) -> (%.1f,%.1f) [truth (106,104)]\n", hx, hy)
	fmt.Printf("  extraction %v, matching+RANSAC %v on this machine\n\n", extractTime, matchTime)
	fmt.Printf("  offloading payloads: frame %d B vs features %d B (%.0fx smaller)\n\n",
		scene.Bytes(), len(feats)*vision.FeatureWireBytes,
		float64(scene.Bytes())/float64(len(feats)*vision.FeatureWireBytes))

	// --- Part 2: the cost model (Section III equations). -----------------
	app := mar.App{FPS: 30, OpsPerFrame: offload.ExtractOps + offload.MatchOps}
	smartphone, err := device.Lookup("Smartphone")
	if err != nil {
		return err
	}
	cloud, err := device.Lookup("Cloud computing")
	if err != nil {
		return err
	}
	link := mar.Link{UpBps: phy.LTE.Up, DownBps: phy.LTE.Down, OneWay: phy.LTE.OneWay}
	name, delay, err := mar.BestStrategy(app, smartphone.ComputeOps, mar.OffloadParams{
		Rm: smartphone.ComputeOps, Rc: cloud.ComputeOps,
		Link: link, Y: 1,
		UploadBytes: offload.FrameBytes, ResultBytes: offload.PoseBytes,
	}, 1)
	if err != nil {
		return err
	}
	fmt.Printf("cost model: best strategy on a smartphone over LTE = %s (%v per frame, deadline %v)\n\n",
		name, delay.Round(time.Millisecond), app.Deadline().Round(time.Millisecond))

	// --- Part 3: replay all four strategies over a simulated link. -------
	fmt.Printf("%-12s %12s %12s %10s %12s\n", "pipeline", "mean lat", "p95 lat", "<=75ms", "uplink MB/s")
	for _, pl := range offload.StandardPipelines() {
		sim := simnet.New(3)
		clientMux, serverMux := simnet.NewDemux(), simnet.NewDemux()
		up := phy.LTE.Uplink(sim, serverMux)
		down := phy.LTE.Downlink(sim, clientMux)
		srv := offload.NewServer(sim, 100, cloud.ComputeOps, func(simnet.Addr) simnet.Handler { return down })
		serverMux.Register(100, srv)
		cl, err := offload.NewClient(sim, pl, offload.ClientConfig{
			Local: 1, Server: 100, FlowID: 1, Uplink: up,
			DeviceOps: smartphone.ComputeOps, FPS: 30, Deadline: mar.MaxTolerableRTT,
		})
		if err != nil {
			return err
		}
		clientMux.Register(1, cl)
		cl.Run(10 * time.Second)
		if err := sim.RunUntil(15 * time.Second); err != nil {
			return err
		}
		total := cl.DeadlineHits + cl.DeadlineMiss
		fmt.Printf("%-12s %12v %12v %9.1f%% %12.2f\n",
			pl.Name,
			cl.Latency.Mean().Round(100*time.Microsecond),
			cl.Latency.Percentile(95).Round(100*time.Microsecond),
			100*float64(cl.DeadlineHits)/float64(total),
			float64(cl.UpBytes)/10/1e6)
	}
	return nil
}
