// Quickstart: open an ARTP session over a simulated LTE uplink, declare
// the three baseline traffic classes, send a second of MAR traffic, and
// print what arrived. This is the smallest complete use of the library.
package main

import (
	"fmt"
	"log"
	"time"

	"marnet/internal/core"
	"marnet/internal/phy"
	"marnet/internal/simnet"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. A deterministic simulator and an LTE uplink/downlink pair built
	//    from the paper's measured LTE profile.
	sim := simnet.New(1)
	clientMux, serverMux := simnet.NewDemux(), simnet.NewDemux()
	up := phy.LTE.Uplink(sim, serverMux)
	down := phy.LTE.Downlink(sim, clientMux)

	// 2. An ARTP sender (the mobile device) and receiver (the surrogate).
	snd := core.NewSender(sim, core.SenderConfig{
		Local: 1, Peer: 2, FlowID: 1,
		Paths:       core.NewMultipath(&core.Path{ID: 1, Out: up, Weight: 1}),
		StartBudget: 4e6,
	})
	rcv := core.NewReceiver(sim, core.ReceiverConfig{
		Local: 2, Peer: 1, FlowID: 1, DefaultOut: down,
	})
	clientMux.Register(1, snd)
	serverMux.Register(2, rcv)

	// 3. Three streams, one per traffic class.
	meta, err := snd.AddStream(core.StreamConfig{
		Name: "metadata", Class: core.ClassCritical, Priority: core.PrioHighest, Rate: 0.1e6,
	})
	if err != nil {
		return err
	}
	frames, err := snd.AddStream(core.StreamConfig{
		Name: "ref-frames", Class: core.ClassLossRecovery, Priority: core.PrioNoDiscard,
		Rate: 1.5e6, Deadline: 250 * time.Millisecond, FECK: 8, FECM: 2,
	})
	if err != nil {
		return err
	}
	sensors, err := snd.AddStream(core.StreamConfig{
		Name: "sensors", Class: core.ClassFullBestEffort, Priority: core.PrioNoDelay, Rate: 0.5e6,
	})
	if err != nil {
		return err
	}

	// 4. Drive one second of traffic.
	for i := 0; i < 100; i++ {
		at := time.Duration(i) * 10 * time.Millisecond
		sim.ScheduleAt(at, func() {
			snd.Submit(meta, 100)
			snd.Submit(frames, 1000)
			snd.Submit(sensors, 300)
		})
	}
	if err := sim.RunUntil(3 * time.Second); err != nil {
		return err
	}
	snd.Stop()

	// 5. Inspect the outcome.
	for _, st := range []*core.Stream{meta, frames, sensors} {
		rs := rcv.Stream(st.ID)
		fmt.Printf("%-11s delivered=%3d late=%d fec-recovered=%d retx=%d shed=%d p95-latency=%v\n",
			st.Cfg.Name, rs.Delivered, rs.Late, rs.Recovered,
			st.RetxPackets, st.ShedPackets, rs.Latency.Percentile(95).Round(time.Millisecond))
	}
	fmt.Printf("controller: budget=%.2f Mb/s srtt=%v base=%v\n",
		snd.Controller().Budget()/1e6, snd.Controller().SRTT().Round(time.Millisecond),
		snd.Controller().BaseRTT().Round(time.Millisecond))
	return nil
}
