// Multipath handover example: a MAR stream rides WiFi with an LTE path on
// standby (the paper's "WiFi all the time, 4G for handover" behaviour).
// When the WiFi AP drops for three seconds — the multi-second handover gap
// of Section IV-A4 — traffic fails over to LTE and back, and the session
// never stalls.
package main

import (
	"fmt"
	"log"
	"time"

	"marnet/internal/core"
	"marnet/internal/phy"
	"marnet/internal/simnet"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sim := simnet.New(6)
	clientMux, serverMux := simnet.NewDemux(), simnet.NewDemux()
	wifiUp := simnet.NewLink(sim, 20e6, 8*time.Millisecond, serverMux, simnet.WithJitter(3*time.Millisecond))
	lteUp := phy.LTE.Uplink(sim, serverMux)
	down := simnet.NewLink(sim, 50e6, 8*time.Millisecond, clientMux)

	wifi := &core.Path{ID: 1, Out: wifiUp, Weight: 20}
	lte := &core.Path{ID: 2, Out: lteUp, Weight: 8}
	mp := core.NewMultipath(wifi, lte) // preference order: WiFi first
	mp.DownAfter = 250 * time.Millisecond

	snd := core.NewSender(sim, core.SenderConfig{
		Local: 1, Peer: 2, FlowID: 1, Paths: mp, StartBudget: 5e6,
	})
	rcv := core.NewReceiver(sim, core.ReceiverConfig{
		Local: 2, Peer: 1, FlowID: 1, DefaultOut: down,
	})
	clientMux.Register(1, snd)
	serverMux.Register(2, rcv)

	st, err := snd.AddStream(core.StreamConfig{
		Name: "mar", Class: core.ClassLossRecovery, Priority: core.PrioHighest,
		Rate: 2e6, Deadline: 300 * time.Millisecond,
	})
	if err != nil {
		return err
	}

	// WiFi outage from t=5s to t=8s; the device notices after 200 ms.
	phy.Outage(sim, wifiUp, 0, 5*time.Second, 3*time.Second)
	sim.ScheduleAt(5*time.Second+200*time.Millisecond, func() {
		wifi.SetDown(true)
		fmt.Println("t=5.2s *** WiFi lost: failing over to LTE ***")
	})
	sim.ScheduleAt(8*time.Second, func() {
		wifi.SetDown(false)
		fmt.Println("t=8.0s *** WiFi back: traffic returns ***")
	})

	const packets = 1500 // 15 s at 100 pkt/s
	for i := 0; i < packets; i++ {
		at := time.Duration(i) * 10 * time.Millisecond
		sim.ScheduleAt(at, func() { snd.Submit(st, 1000) })
	}
	for s := 1; s <= 15; s++ {
		at := time.Duration(s) * time.Second
		sim.ScheduleAt(at, func() {
			fmt.Printf("t=%2.0fs delivered=%4d wifi-sent=%5d lte-sent=%4d wifi-rtt=%v lte-rtt=%v\n",
				sim.Now().Seconds(), rcv.Stream(st.ID).Delivered,
				wifi.SentPackets, lte.SentPackets,
				wifi.SRTT().Round(time.Millisecond), lte.SRTT().Round(time.Millisecond))
		})
	}
	if err := sim.RunUntil(16 * time.Second); err != nil {
		return err
	}
	snd.Stop()

	rs := rcv.Stream(st.ID)
	fmt.Printf("\nin-time delivery: %d/%d (%.1f%%) through a 3 s WiFi outage; LTE carried %.2f MB\n",
		rs.Delivered, packets, 100*float64(rs.Delivered)/packets, float64(lte.SentBytes)/1e6)
	return nil
}
