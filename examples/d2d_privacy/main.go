// D2D privacy example (Sections VI-E and VI-G): smart glasses offload
// camera frames to a companion smartphone over WiFi-Direct while the
// phone's owner walks around. Before any frame leaves the glasses, the
// privacy pipeline scrubs sensitive regions ("at least faces, license
// plates and visible street plates should be blurred before sending to
// other users for processing"); the D2D link's rate follows the distance
// between the devices, and the session survives the helper walking out of
// range.
package main

import (
	"fmt"
	"log"
	"time"

	"marnet/internal/core"
	"marnet/internal/phy"
	"marnet/internal/simnet"
	"marnet/internal/vision"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- Privacy pipeline on a real frame. -------------------------------
	frame := vision.Scene(vision.SceneConfig{W: 320, H: 240, Rects: 30, NoiseStd: 2}, 17)
	regions := vision.SensitiveRegions(frame, 20, 8, 6)
	redacted := vision.Redact(frame, regions, vision.RedactFill, 0)
	leak := vision.LeakScore(frame, redacted, regions, 20)
	fmt.Printf("privacy scrub: %d sensitive regions redacted, residual structure %.1f%%\n",
		len(regions), leak*100)

	// Feature extraction still works on the redacted frame outside the
	// scrubbed areas — the helper can do useful vision without seeing the
	// private content.
	before := len(vision.DetectFAST(frame, 20, 0))
	after := len(vision.DetectFAST(redacted, 20, 0))
	fmt.Printf("corners: %d before, %d after redaction (the rest of the scene survives)\n\n", before, after)

	// --- Mobile D2D session. ---------------------------------------------
	sim := simnet.New(8)
	glassesMux, phoneMux := simnet.NewDemux(), simnet.NewDemux()
	up := simnet.NewLink(sim, phy.WiFiDirect.Up, phy.WiFiDirect.OneWay, phoneMux,
		simnet.WithJitter(phy.WiFiDirect.Jitter), simnet.WithLoss(phy.WiFiDirect.Loss))
	down := simnet.NewLink(sim, phy.WiFiDirect.Down, phy.WiFiDirect.OneWay, glassesMux)

	// The phone's owner wanders a 600x600 m plaza at 25 m/s (a cyclist);
	// the glasses stay at the center. WiFi-Direct dies past 200 m.
	walker := phy.NewWalker(sim, 300, 300, 25, 600)
	phy.TrackD2DLink(sim, up, walker, 300, 300, phy.WiFiDirect.Up, phy.WiFiDirectRangeM,
		phy.WiFiDirect.Loss, 100*time.Millisecond, time.Minute)

	snd := core.NewSender(sim, core.SenderConfig{
		Local: 1, Peer: 2, FlowID: 1,
		Paths:       core.NewMultipath(&core.Path{ID: 1, Out: up, Weight: 1}),
		StartBudget: 20e6,
	})
	// The D2D link's capacity swings by orders of magnitude with distance;
	// proportional recovery growth lets the budget re-track it quickly.
	snd.Controller().RecoveryGrowth = true
	rcv := core.NewReceiver(sim, core.ReceiverConfig{
		Local: 2, Peer: 1, FlowID: 1, DefaultOut: down,
	})
	glassesMux.Register(1, snd)
	phoneMux.Register(2, rcv)

	// Frames carry a hard deadline, so they ride the no-delay priority:
	// under congestion fresh frames replace stale ones instead of queueing
	// behind them (the paper's "Medium priority 2" semantics).
	frames, err := snd.AddStream(core.StreamConfig{
		Name: "redacted-frames", Class: core.ClassLossRecovery, Priority: core.PrioNoDelay,
		Rate: 6e6, Deadline: 150 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	// 30 FPS of redacted frames, chunked to MTU.
	frameBytes := redacted.Bytes() / 4 // compressed
	for i := 0; i < 1800; i++ {
		at := time.Duration(i) * 33 * time.Millisecond
		sim.ScheduleAt(at, func() {
			remaining := frameBytes
			for remaining > 0 {
				n := remaining
				if n > 1200 {
					n = 1200
				}
				snd.Submit(frames, n)
				remaining -= n
			}
		})
	}
	for s := 10; s <= 60; s += 10 {
		at := time.Duration(s) * time.Second
		sim.ScheduleAt(at, func() {
			fmt.Printf("t=%2.0fs helper at %5.0fm, link %6.1f Mb/s, delivered %d pkts (late %d)\n",
				sim.Now().Seconds(), walker.DistanceTo(300, 300), up.Rate()/1e6,
				rcv.Stream(frames.ID).Delivered, rcv.Stream(frames.ID).Late)
		})
	}
	if err := sim.RunUntil(62 * time.Second); err != nil {
		return err
	}
	snd.Stop()
	rs := rcv.Stream(frames.ID)
	fmt.Printf("\nsession total: %d delivered, %d late, %d FEC/retx-repaired; shed %d during out-of-range walks\n",
		rs.Delivered, rs.Late, frames.RetxPackets, frames.ShedPackets+snd.DeadlineShed)
	return nil
}
