// Chaos-failover example: the paper's multi-server offloading topology
// (Figure 5a) surviving a hostile network. A primary recognition server
// sits behind a chaos relay injecting Gilbert-Elliott burst loss (~25%
// stationary), jitter, duplication and a scripted 500 ms blackhole; then
// the "primary" is restarted onto a new port mid-run. A FailoverClient —
// per-call retries with seeded backoff, a circuit breaker, a keepalive-
// driven resumable session, and an ordered backup server — keeps the
// offloading loop alive through all of it.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"marnet/internal/faults"
	"marnet/internal/rpc"
)

const methodEcho = 1

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	key := bytes.Repeat([]byte{0x42}, 16)
	handler := func(method uint8, req []byte) []byte { return req }

	primary, err := rpc.NewServer("127.0.0.1:0", key, handler)
	if err != nil {
		return err
	}
	defer primary.Close()
	backup, err := rpc.NewServer("127.0.0.1:0", key, handler)
	if err != nil {
		return err
	}
	defer backup.Close()

	// The primary's path is hostile: bursty loss on both directions plus a
	// scripted total outage. Every random decision flows from the seed.
	storm := faults.DirConfig{
		GE:     &faults.GilbertElliott{PGoodBad: 0.1, PBadGood: 0.2, LossGood: 0.03, LossBad: 0.7},
		Delay:  2 * time.Millisecond,
		Jitter: time.Millisecond,
		Dup:    0.02,
	}
	relay, err := faults.NewRelay(primary.Addr(), faults.Config{
		Seed: 42,
		Up:   storm,
		Down: storm,
		Timeline: []faults.Event{
			{At: 900 * time.Millisecond, Dir: faults.Both, Blackhole: faults.On},
			{At: 1400 * time.Millisecond, Dir: faults.Both, Blackhole: faults.Off},
		},
	})
	if err != nil {
		return err
	}
	defer relay.Close()

	fc, err := rpc.DialFailover([]string{relay.Addr(), backup.Addr()}, rpc.ClientConfig{
		Key:             key,
		Keepalive:       50 * time.Millisecond,
		RequestDeadline: 80 * time.Millisecond,
		Retry:           rpc.RetryPolicy{Max: 4, Backoff: 10 * time.Millisecond},
		Breaker:         rpc.BreakerPolicy{Enabled: true, Threshold: 4, Cooldown: 250 * time.Millisecond},
		Seed:            7,
	})
	if err != nil {
		return err
	}
	defer fc.Close()
	fmt.Printf("primary %s behind chaos relay %s, backup %s\n\n",
		primary.Addr(), relay.Addr(), backup.Addr())

	// Restart the primary mid-run: close it, bring a new one up on a fresh
	// port, re-point the relay. A restarting server answers nothing, so the
	// restart window is itself a short blackhole.
	go func() {
		time.Sleep(2 * time.Second)
		fmt.Println("  [script] restarting primary server...")
		relay.SetBlackhole(faults.Both, true)
		primary.Close()
		ns, err := rpc.NewServer("127.0.0.1:0", key, handler)
		if err != nil {
			return
		}
		relay.SetUpstream(ns.Addr()) //nolint:errcheck // address from NewServer
		time.Sleep(200 * time.Millisecond)
		relay.SetBlackhole(faults.Both, false)
		fmt.Printf("  [script] primary back on %s\n", ns.Addr())
	}()

	const total = 200
	ok := 0
	start := time.Now()
	for i := 0; i < total; i++ {
		req := []byte{byte(i)}
		if resp, err := fc.Call(methodEcho, req, 600*time.Millisecond); err == nil && bytes.Equal(resp, req) {
			ok++
		}
		if (i+1)%50 == 0 {
			fmt.Printf("  %3d calls, %3d ok, t=%v\n", i+1, ok, time.Since(start).Round(time.Millisecond))
		}
		time.Sleep(3 * time.Millisecond)
	}

	st := fc.Stats()
	c := relay.Counters(faults.Both)
	fmt.Printf("\ncompleted %d/%d calls (%.1f%%) through the storm\n", ok, total, 100*float64(ok)/float64(total))
	fmt.Printf("relay: %d/%d dropped (burst loss), %d blackholed, %d duplicated, upstream swapped %d time(s)\n",
		c.Dropped, c.Received, c.Blackholed, c.Duplicated, relay.Swaps())
	fmt.Printf("primary client: %d retries, %d session resumptions; %d calls served by the backup\n",
		st.PerServer[0].Retries, st.PerServer[0].Reconnects, st.Failovers)
	return nil
}
