// Graceful degradation example: the Figure 4 story told live. A MAR
// application sends metadata, sensor samples and GOP video over a link
// that is squeezed twice; watch ARTP shed the adjustable traffic while the
// essential traffic never stops — the protocol degrades, the session never
// breaks.
package main

import (
	"fmt"
	"log"
	"time"

	"marnet/internal/core"
	"marnet/internal/mar"
	"marnet/internal/simnet"
	"marnet/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sim := simnet.New(4)
	clientMux, serverMux := simnet.NewDemux(), simnet.NewDemux()
	up := simnet.NewLink(sim, 4e6, 15*time.Millisecond, serverMux)
	down := simnet.NewLink(sim, 4e6, 15*time.Millisecond, clientMux)

	snd := core.NewSender(sim, core.SenderConfig{
		Local: 1, Peer: 2, FlowID: 1,
		Paths:       core.NewMultipath(&core.Path{ID: 1, Out: up, Weight: 1}),
		StartBudget: 3.5e6,
	})
	snd.Controller().MinBudget = 0.12e6
	rcv := core.NewReceiver(sim, core.ReceiverConfig{
		Local: 2, Peer: 1, FlowID: 1, DefaultOut: down,
	})
	clientMux.Register(1, snd)
	serverMux.Register(2, rcv)

	meta, err := mar.NewMetadataSource(sim, snd, mar.MetadataConfig{Bytes: 150, Interval: 20 * time.Millisecond})
	if err != nil {
		return err
	}
	sensors, err := mar.NewSensorSource(sim, snd, mar.SensorConfig{SampleBytes: 250, SamplesPerS: 200})
	if err != nil {
		return err
	}
	video, err := mar.NewVideoSource(sim, snd, mar.VideoConfig{
		FPS: 30, GOP: 10, Bitrate: 2.4e6, Deadline: 250 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	const horizon = 30 * time.Second
	meta.Start(horizon)
	sensors.Start(horizon)
	video.Start(horizon)

	streams := map[string]int{
		"metadata": meta.Strm.ID, "sensors": sensors.Strm.ID,
		"ref-frames": video.Ref.ID, "inter-frames": video.Inter.ID,
	}
	for _, id := range streams {
		rcv.Stream(id).GoodputRate = trace.NewThroughput(time.Second)
	}

	// Two squeezes: plenty -> tight -> barely-anything.
	sim.ScheduleAt(10*time.Second, func() {
		up.SetRate(1.5e6)
		fmt.Println("t=10s  *** uplink squeezed to 1.5 Mb/s ***")
	})
	sim.ScheduleAt(20*time.Second, func() {
		up.SetRate(0.4e6)
		fmt.Println("t=20s  *** uplink squeezed to 0.4 Mb/s ***")
	})

	// Narrate once per second.
	for s := 1; s <= 30; s++ {
		at := time.Duration(s) * time.Second
		sim.ScheduleAt(at, func() {
			now := sim.Now()
			refQ, interQ := video.Quality()
			fmt.Printf("t=%2.0fs budget=%4.2f Mb/s  meta=%6.0f  sensors=%7.0f  ref=%8.0f  inter=%8.0f b/s  quality(ref=%.2f inter=%.2f sensors=%.2f)\n",
				now.Seconds(), snd.Controller().Budget()/1e6,
				rcv.Stream(streams["metadata"]).GoodputRate.Rate(now-time.Second),
				rcv.Stream(streams["sensors"]).GoodputRate.Rate(now-time.Second),
				rcv.Stream(streams["ref-frames"]).GoodputRate.Rate(now-time.Second),
				rcv.Stream(streams["inter-frames"]).GoodputRate.Rate(now-time.Second),
				refQ, interQ, sensors.RateScale())
		})
	}
	if err := sim.RunUntil(horizon + 2*time.Second); err != nil {
		return err
	}
	snd.Stop()

	fmt.Printf("\nmetadata delivered %d/%d — the critical class survived both squeezes.\n",
		rcv.Stream(meta.Strm.ID).Delivered, meta.Generated)
	return nil
}
