// Overload-shedding example: the serving side of the paper's offloading
// loop protecting itself. A recognition server with a small worker pool is
// offered four ARTP priority classes at well over its sustainable rate,
// with every call carrying a propagated deadline. The admission gate keeps
// the protected class flowing, the CoDel-style controller sheds the
// expendable tiers with immediate typed rejections, the degradation ladder
// downgrades responses (full render -> features-only -> cached pose) as
// queue delay builds, and a mid-run drain hands the load to a backup
// without losing a single accepted request.
package main

import (
	"bytes"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"marnet/internal/core"
	"marnet/internal/obs"
	"marnet/internal/overload"
	"marnet/internal/rpc"
)

const methodRecognize = 1

// scrape pulls /metrics once and echoes the shed/served counters — the
// same lines a Prometheus scraper (or curl) would see mid-storm.
func scrape(addr string) {
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		log.Printf("scrape: %v", err)
		return
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		log.Printf("scrape: %v", err)
		return
	}
	fmt.Println("  scraped /metrics (excerpt):")
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "mar_gate_admitted_total") ||
			strings.HasPrefix(line, "mar_gate_ladder_rejected_total") ||
			strings.HasPrefix(line, "mar_rpc_server_served_total") ||
			strings.HasPrefix(line, "mar_rpc_server_shed_total") {
			fmt.Println("    " + line)
		}
	}
	fmt.Println()
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The handler costs 5 ms; four workers make the server good for
	// 800 req/s. The tiered handler is the degradation ladder's far end:
	// cheaper work for lower response tiers.
	tiered := func(method uint8, req []byte, tier overload.Tier) []byte {
		switch tier {
		case overload.TierFeatures:
			time.Sleep(2 * time.Millisecond)
			return []byte("features")
		case overload.TierCached:
			return []byte("cached-pose")
		default:
			time.Sleep(5 * time.Millisecond)
			return []byte("full-render")
		}
	}
	cfg := overload.Config{Ladder: overload.DefaultLadder(100 * time.Millisecond)}
	newServer := func() (*rpc.Server, error) {
		return rpc.NewServer("127.0.0.1:0", nil, nil,
			rpc.WithWorkers(4), rpc.WithOverload(cfg),
			rpc.WithTierHandler(tiered))
	}
	srv, err := newServer()
	if err != nil {
		return err
	}
	fmt.Printf("recognition server on %s: 4 workers, 5 ms/request, ladder at %v/%v/%v\n",
		srv.Addr(), cfg.Ladder.DegradeAt, cfg.Ladder.CacheAt, cfg.Ladder.RejectAt)

	// Observability sidecar: every server and gate counter is scrapeable in
	// Prometheus text format for the lifetime of the run. Try, mid-storm:
	//
	//	curl -s http://<addr>/metrics | grep mar_gate
	//	curl -s http://<addr>/healthz
	reg := obs.NewRegistry()
	srv.PublishMetrics(reg)
	mux := obs.NewMux(func() (string, bool) {
		h := srv.Health()
		return h.String(), h == overload.ProbeHealthy
	}, reg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	go http.Serve(ln, mux) //nolint:errcheck // dies with the process
	fmt.Printf("metrics on http://%s/metrics (health on /healthz)\n\n", ln.Addr())

	// Four clients, one per ARTP priority, together offering ~4x capacity.
	type class struct {
		prio    core.Priority
		perTick int
		ok      int64
		offered int64
	}
	classes := []*class{
		{prio: core.PrioHighest, perTick: 2},
		{prio: core.PrioNoDiscard, perTick: 4},
		{prio: core.PrioNoDelay, perTick: 5},
		{prio: core.PrioLowest, perTick: 5},
	}
	clients := make([]*rpc.Client, len(classes))
	for i, c := range classes {
		cl, err := rpc.Dial(srv.Addr(), rpc.ClientConfig{Priority: c.prio, Seed: int64(i + 1)})
		if err != nil {
			return err
		}
		defer cl.Close()
		clients[i] = cl
	}

	fmt.Println("phase 1: 1.5 s open-loop storm at ~3200 req/s against 800 req/s capacity")
	var wg sync.WaitGroup
	ticker := time.NewTicker(5 * time.Millisecond)
	for tick := 0; tick < 300; tick++ {
		<-ticker.C
		for i, c := range classes {
			for k := 0; k < c.perTick; k++ {
				atomic.AddInt64(&c.offered, 1)
				wg.Add(1)
				go func(cl *rpc.Client, c *class) {
					defer wg.Done()
					if _, err := cl.Call(methodRecognize, nil, 150*time.Millisecond); err == nil {
						atomic.AddInt64(&c.ok, 1)
					}
				}(clients[i], c)
			}
		}
	}
	ticker.Stop()
	wg.Wait()

	for _, c := range classes {
		fmt.Printf("  %-12s %4d/%4d admitted (%.0f%%)\n",
			c.prio, c.ok, c.offered, 100*float64(c.ok)/float64(c.offered))
	}
	st := srv.Stats()
	fmt.Printf("  server: served=%d degraded=%d shed=%d queue-full=%d cannot-finish=%d expired=%d (health: %v)\n",
		st.Served, st.Degraded, st.Shed, st.QueueFull, st.CannotFinish,
		st.ExpiredOnArrival+st.ExpiredInQueue, srv.Health())
	scrape(ln.Addr().String())

	// Phase 2: drain mid-load, fail over to a backup, lose nothing.
	backup, err := newServer()
	if err != nil {
		return err
	}
	defer backup.Close()
	fc, err := rpc.DialFailover([]string{srv.Addr(), backup.Addr()}, rpc.ClientConfig{Seed: 7})
	if err != nil {
		return err
	}
	defer fc.Close()

	fmt.Printf("phase 2: moderate load, primary drains mid-run, backup %s takes over\n", backup.Addr())
	before := srv.Gate().Stats()
	var failed int64
	ticker = time.NewTicker(5 * time.Millisecond)
	for tick := 0; tick < 200; tick++ {
		<-ticker.C
		if tick == 60 {
			fmt.Println("  [script] primary begins draining...")
			srv.SetDraining(true)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := fc.Call(methodRecognize, nil, time.Second); err != nil {
				atomic.AddInt64(&failed, 1)
			}
		}()
	}
	ticker.Stop()
	wg.Wait()
	drained := srv.WaitDrain(3 * time.Second)
	gst := srv.Gate().Stats()
	srv.Close()

	fmt.Printf("  drain complete=%v: primary took %d calls this phase, then refused %d while draining;\n",
		drained, gst.Admitted-before.Admitted, gst.RejectedDraining-before.RejectedDraining)
	fmt.Printf("  %d/200 calls failed end to end; %d failovers absorbed by the backup\n",
		failed, fc.Stats().Failovers)
	return nil
}
