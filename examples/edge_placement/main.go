// Edge placement example: the Section VI-F optimization on a small city,
// with an ASCII map of users (.), unselected candidates (o), and the
// selected edge datacenters (#).
package main

import (
	"fmt"
	"log"
	"time"

	"marnet/internal/edge"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const side = 24.0
	inst := edge.NewGrid(40, 14, side, 7*time.Millisecond, 5)
	if !inst.Feasible() {
		return fmt.Errorf("infeasible instance")
	}
	sel, err := edge.Exact(inst, 64)
	if err != nil {
		return err
	}
	selected := make(map[int]bool, len(sel))
	for _, si := range sel {
		selected[si] = true
	}

	const cells = 24
	grid := [cells][cells]byte{}
	for y := range grid {
		for x := range grid {
			grid[y][x] = ' '
		}
	}
	plot := func(x, y float64, c byte) {
		cx := int(x / side * cells)
		cy := int(y / side * cells)
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		grid[cy][cx] = c
	}
	for _, u := range inst.Users {
		plot(u.X, u.Y, '.')
	}
	for i, s := range inst.Sites {
		c := byte('o')
		if selected[i] {
			c = '#'
		}
		plot(s.X, s.Y, c)
	}

	fmt.Printf("min-|C| edge datacenter placement: %d sites cover %d users (budget %v)\n",
		len(sel), len(inst.Users), 7*time.Millisecond)
	fmt.Printf("legend: . user   o unused candidate   # selected datacenter\n")
	fmt.Println("+" + repeat('-', cells) + "+")
	for y := 0; y < cells; y++ {
		fmt.Printf("|%s|\n", string(grid[y][:]))
	}
	fmt.Println("+" + repeat('-', cells) + "+")

	// Show the per-user assignment latency.
	var worst time.Duration
	for _, u := range inst.Users {
		best := time.Duration(1 << 62)
		for _, si := range sel {
			if l := edge.DefaultLatency(inst.Sites[si], u); l < best {
				best = l
			}
		}
		if best > worst {
			worst = best
		}
	}
	fmt.Printf("worst-case user->datacenter latency: %v (budget %v)\n", worst.Round(100*time.Microsecond), 7*time.Millisecond)
	return nil
}

func repeat(c byte, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return string(b)
}
