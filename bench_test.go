// Package main_test is the benchmark harness: one benchmark per table and
// figure of the paper, each running the corresponding experiment end to
// end, plus ablation benches for the ARTP design choices. Run with
//
//	go test -bench=. -benchmem
//
// The reported custom metrics carry the experiment's headline numbers so a
// bench run doubles as a regeneration of the paper's results.
package main_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"marnet/internal/core"
	"marnet/internal/device"
	"marnet/internal/experiments"
	"marnet/internal/offload"
	"marnet/internal/simnet"
	"marnet/internal/vision"
)

// metric makes a label safe for testing.B.ReportMetric (no whitespace).
func metric(parts ...string) string {
	s := strings.Join(parts, "_")
	return strings.NewReplacer(" ", "-", ",", "", "(", "", ")", "").Replace(s)
}

func BenchmarkTableI_DeviceLookup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := device.Lookup("Smartphone"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableII_LinkRTT(b *testing.B) {
	var last experiments.TableIIResult
	for i := 0; i < b.N; i++ {
		last = experiments.TableII(int64(i) + 1)
	}
	for _, row := range last.Rows {
		b.ReportMetric(float64(row.LinkRTT.Microseconds())/1000,
			metric(row.Platform, row.Connection, "rtt_ms"))
	}
}

func BenchmarkFigure2_PerformanceAnomaly(b *testing.B) {
	var last experiments.Figure2Result
	for i := 0; i < b.N; i++ {
		last = experiments.Figure2(int64(i) + 1)
	}
	b.ReportMetric(last.BothFastA/1e6, "A@54/54_Mbps")
	b.ReportMetric(last.MixedA/1e6, "A@54/18_Mbps")
}

func BenchmarkFigure3_AsymmetricUploads(b *testing.B) {
	var last experiments.Figure3Result
	for i := 0; i < b.N; i++ {
		last = experiments.Figure3(int64(i) + 1)
	}
	b.ReportMetric(last.Alone/1e6, "alone_Mbps")
	b.ReportMetric(last.With1/1e6, "with1up_Mbps")
	b.ReportMetric(last.With2/1e6, "with2up_Mbps")
}

func BenchmarkFigure4_GracefulDegradation(b *testing.B) {
	var last experiments.Figure4Result
	for i := 0; i < b.N; i++ {
		last = experiments.Figure4(int64(i) + 1)
	}
	b.ReportMetric(last.Phase("metadata", 2)/1e3, "metadata_phase3_kbps")
	b.ReportMetric(last.Phase("inter-frames", 2)/1e3, "interframes_phase3_kbps")
}

func BenchmarkFigure5_DistributedOffloading(b *testing.B) {
	var last experiments.Figure5Result
	for i := 0; i < b.N; i++ {
		last = experiments.Figure5(int64(i) + 1)
	}
	for _, row := range last.Rows {
		b.ReportMetric(float64(row.MeanLat.Microseconds())/1000, metric(row.Scenario, "ms"))
	}
}

func BenchmarkSectionIIIB_VideoBitrates(b *testing.B) {
	var last experiments.SectionIIIBResult
	for i := 0; i < b.N; i++ {
		last = experiments.SectionIIIB()
	}
	b.ReportMetric(last.Raw4K60MiBps, "raw4K_MiBps")
}

func BenchmarkSectionIVA_Wireless(b *testing.B) {
	var last experiments.SectionIVAResult
	for i := 0; i < b.N; i++ {
		last = experiments.SectionIVA(int64(i) + 1)
	}
	for _, row := range last.Rows {
		b.ReportMetric(float64(row.MeasuredRTT.Microseconds())/1000, metric(row.Profile.Name, "rtt_ms"))
	}
}

func BenchmarkSectionIVD_Asymmetry(b *testing.B) {
	var last experiments.SectionIVDResult
	for i := 0; i < b.N; i++ {
		last = experiments.SectionIVD(int64(i) + 1)
	}
	b.ReportMetric(last.MARUpDownRatio, "MAR_up:down")
	b.ReportMetric(last.DownloadVsCubic/1e6, "download_vs_cubic_Mbps")
}

func BenchmarkSectionVIC_LossRecovery(b *testing.B) {
	var last experiments.SectionVICResult
	for i := 0; i < b.N; i++ {
		last = experiments.SectionVIC(int64(i) + 1)
	}
	b.ReportMetric(last.Rows[2].ARQInTime*100, "ARQ@37ms_pct")
	b.ReportMetric(last.Rows[5].FECComplete*100, "FEC@150ms_complete_pct")
}

func BenchmarkSectionVID_Multipath(b *testing.B) {
	var last experiments.SectionVIDResult
	for i := 0; i < b.N; i++ {
		last = experiments.SectionVID(int64(i) + 1)
	}
	for _, row := range last.Rows {
		b.ReportMetric(row.Delivered*100, metric(row.Behavior, "pct"))
	}
}

func BenchmarkSectionVIF_EdgePlacement(b *testing.B) {
	var last experiments.SectionVIFResult
	for i := 0; i < b.N; i++ {
		last = experiments.SectionVIF(int64(i) + 1)
	}
	if len(last.Rows) > 0 {
		b.ReportMetric(float64(last.Rows[0].GreedyC), "greedy_C")
	}
}

func BenchmarkSectionVIH_Aqm(b *testing.B) {
	var last experiments.SectionVIHResult
	for i := 0; i < b.N; i++ {
		last = experiments.SectionVIH(int64(i) + 1)
	}
	for _, row := range last.Rows {
		b.ReportMetric(float64(row.MARp99.Microseconds())/1000, metric(row.Discipline, "p99_ms"))
	}
}

// --- Ablations: ARTP with individual design elements removed. -----------

// ablationRun drives the Figure-4 style workload with a configurable
// sender and reports the critical stream's in-time delivery percentage and
// mean latency.
func ablationRun(seed int64, configure func(*core.Sender, *core.Multipath)) (delivered float64, meanLat time.Duration) {
	sim := simnet.New(seed)
	clientMux, serverMux := simnet.NewDemux(), simnet.NewDemux()
	up := simnet.NewLink(sim, 3e6, 15*time.Millisecond, serverMux, simnet.WithLoss(0.01))
	down := simnet.NewLink(sim, 3e6, 15*time.Millisecond, clientMux)
	mp := core.NewMultipath(&core.Path{ID: 1, Out: up, Weight: 1})
	snd := core.NewSender(sim, core.SenderConfig{
		Local: 1, Peer: 2, FlowID: 1, Paths: mp, StartBudget: 2.5e6,
	})
	rcv := core.NewReceiver(sim, core.ReceiverConfig{
		Local: 2, Peer: 1, FlowID: 1, DefaultOut: down,
	})
	clientMux.Register(1, snd)
	serverMux.Register(2, rcv)
	configure(snd, mp)

	crit, err := snd.AddStream(core.StreamConfig{
		Name: "critical", Class: core.ClassCritical, Priority: core.PrioHighest,
		Rate: 0.2e6,
	})
	if err != nil {
		panic(err)
	}
	bulk, err := snd.AddStream(core.StreamConfig{
		Name: "bulk", Class: core.ClassFullBestEffort, Priority: core.PrioLowest,
		Rate: 2.5e6,
	})
	if err != nil {
		panic(err)
	}
	sim.ScheduleAt(5*time.Second, func() { up.SetRate(0.8e6) })
	const n = 1000 // 10 s at 100/s
	for i := 0; i < n; i++ {
		i := i
		sim.Schedule(time.Duration(i)*10*time.Millisecond, func() {
			snd.Submit(crit, 200)
			snd.Submit(bulk, 1200)
			snd.Submit(bulk, 1200)
		})
	}
	if err := sim.RunUntil(14 * time.Second); err != nil {
		panic(err)
	}
	snd.Stop()
	rs := rcv.Stream(crit.ID)
	return float64(rs.Delivered) / n, rs.Latency.Mean()
}

func BenchmarkAblation_FullARTP(b *testing.B) {
	var d float64
	var lat time.Duration
	for i := 0; i < b.N; i++ {
		d, lat = ablationRun(int64(i)+1, func(*core.Sender, *core.Multipath) {})
	}
	b.ReportMetric(d*100, "critical_delivered_pct")
	b.ReportMetric(float64(lat.Microseconds())/1000, "critical_mean_ms")
}

// No priorities: every stream competes in one band (the critical stream
// loses its head start, so its latency through the squeeze suffers).
func BenchmarkAblation_NoPriorities(b *testing.B) {
	var d float64
	var lat time.Duration
	for i := 0; i < b.N; i++ {
		d, lat = ablationRun(int64(i)+1, func(s *core.Sender, _ *core.Multipath) {
			s.FlattenPriorities()
		})
	}
	b.ReportMetric(d*100, "critical_delivered_pct")
	b.ReportMetric(float64(lat.Microseconds())/1000, "critical_mean_ms")
}

// No delay reaction: the controller never cuts (pure pacing at the start
// budget), so the squeeze turns into standing queues.
func BenchmarkAblation_NoDelayCC(b *testing.B) {
	var d float64
	var lat time.Duration
	for i := 0; i < b.N; i++ {
		d, lat = ablationRun(int64(i)+1, func(s *core.Sender, _ *core.Multipath) {
			s.Controller().DelayThreshold = time.Hour // never triggers
		})
	}
	b.ReportMetric(d*100, "critical_delivered_pct")
	b.ReportMetric(float64(lat.Microseconds())/1000, "critical_mean_ms")
}

// Adaptive vs fixed Glimpse trigger: the real NCC tracker in the loop
// versus every-10th-frame offloading, on a slowly drifting scene.
func BenchmarkGlimpseTrigger_Adaptive(b *testing.B) {
	var offloads int64
	var rms float64
	for i := 0; i < b.N; i++ {
		offloads, rms = adaptiveGlimpseRun(int64(i) + 1)
	}
	b.ReportMetric(float64(offloads), "offloads_per_3s")
	b.ReportMetric(rms, "rms_px")
}

func adaptiveGlimpseRun(seed int64) (int64, float64) {
	base := vision.Scene(vision.SceneConfig{W: 200, H: 150, Rects: 25, NoiseStd: 1}, 15)
	cache := map[int64]*vision.Frame{}
	frame := func(i int64) *vision.Frame {
		if f, ok := cache[i]; ok {
			return f
		}
		f := vision.Warp(base, vision.Translation(-float64(i), 0))
		cache[i] = f
		return f
	}
	truth := func(i int64) (int, int) { return 60 + int(i), 75 }

	sim := simnet.New(seed)
	cm, sm := simnet.NewDemux(), simnet.NewDemux()
	up := simnet.NewLink(sim, 20e6, 15*time.Millisecond, sm)
	down := simnet.NewLink(sim, 20e6, 15*time.Millisecond, cm)
	srv := offload.NewServer(sim, 100, 2e10, func(simnet.Addr) simnet.Handler { return down })
	sm.Register(100, srv)
	c, err := offload.NewAdaptiveClient(sim, offload.ClientConfig{
		Local: 1, Server: 100, FlowID: 1, Uplink: up, DeviceOps: 1e8, FPS: 30,
	}, frame, truth, offload.AdaptiveTrigger{MaxDrift: 60})
	if err != nil {
		panic(err)
	}
	cm.Register(1, c)
	c.Run(3 * time.Second)
	if err := sim.RunUntil(5 * time.Second); err != nil {
		panic(err)
	}
	return c.Offloads, c.RMSError()
}

func BenchmarkSectionIVC_CellFairness(b *testing.B) {
	var last experiments.SectionIVCResult
	for i := 0; i < b.N; i++ {
		last = experiments.SectionIVC(int64(i) + 1)
	}
	for _, row := range last.Rows {
		b.ReportMetric(row.JainIndex, metric(fmt.Sprintf("jain_%dusers", row.Users)))
	}
}
