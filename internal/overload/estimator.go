package overload

import (
	"sync"
	"time"
)

// Estimator tracks a per-method exponentially weighted moving average of
// service time. The gate uses it for cannot-finish-in-time rejection: a
// request whose remaining budget is smaller than the (safety-scaled)
// estimate is refused before any work is spent on it.
type Estimator struct {
	mu    sync.Mutex
	alpha float64
	est   map[uint8]time.Duration
}

// DefaultEWMAAlpha is the smoothing factor used when none is configured:
// heavy enough on history to ride out one odd sample, light enough to
// re-track a method whose cost shifts (a recognition database growing).
const DefaultEWMAAlpha = 0.2

// NewEstimator builds an estimator with the given smoothing factor in
// (0, 1]; out-of-range values fall back to DefaultEWMAAlpha.
func NewEstimator(alpha float64) *Estimator {
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultEWMAAlpha
	}
	return &Estimator{alpha: alpha, est: make(map[uint8]time.Duration)}
}

// Observe feeds one measured service time for a method.
func (e *Estimator) Observe(method uint8, d time.Duration) {
	if d < 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	cur, ok := e.est[method]
	if !ok {
		e.est[method] = d
		return
	}
	e.est[method] = cur + time.Duration(e.alpha*float64(d-cur))
}

// Estimate returns the current service-time estimate for a method; ok is
// false until the first observation, during which callers should admit and
// learn rather than guess.
func (e *Estimator) Estimate(method uint8) (time.Duration, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	d, ok := e.est[method]
	return d, ok
}
