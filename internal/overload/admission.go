package overload

import (
	"math"
	"sync"
	"time"
)

// Item is one unit of admitted work moving through the admission queues.
type Item struct {
	// Tier is the admission tier (0 = most protected; see
	// core.Priority.AdmissionTier).
	Tier int
	// Method keys the service-time estimate for cannot-finish checks.
	Method uint8
	// Deadline is the absolute point after which the work is useless
	// (zero = none): arrival time plus the client's propagated budget.
	Deadline time.Time
	// Enqueued is stamped at admission; sojourn = now - Enqueued.
	Enqueued time.Time
	// Degrade is the response tier the gate selected at dispatch
	// (TierFull unless the ladder is active).
	Degrade Tier
	// Job is the caller's payload (e.g. the decoded request and the conn
	// to answer on).
	Job any
}

// AdmissionConfig tunes the per-tier bounded queues and the CoDel-style
// queue-delay shedder.
type AdmissionConfig struct {
	// Tiers is the number of priority tiers (default core.AdmissionTiers=4;
	// kept as a plain int so the package stays dependency-free).
	Tiers int
	// QueueCap bounds each tier's queue (default 128). The cap is the
	// hard backstop; CoDel shedding acts long before it fills.
	QueueCap int
	// Target is the acceptable standing queue delay (default 5 ms, as in
	// RFC 8289); sojourns above it for a full Interval trigger shedding.
	Target time.Duration
	// Interval is the sliding-minimum window width (default 100 ms).
	Interval time.Duration
	// ProtectTiers is how many of the top tiers are exempt from CoDel
	// shedding (default 1: tier 0 — PrioHighest — is only ever tail-capped,
	// mirroring "never discarded" in the transport).
	ProtectTiers int
	// Clock is the time source (default time.Now).
	Clock func() time.Time
}

func (c *AdmissionConfig) defaults() {
	if c.Tiers <= 0 {
		c.Tiers = 4
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 128
	}
	if c.Target <= 0 {
		c.Target = 5 * time.Millisecond
	}
	if c.Interval <= 0 {
		c.Interval = 100 * time.Millisecond
	}
	if c.ProtectTiers <= 0 {
		c.ProtectTiers = 1
	}
	if c.ProtectTiers > c.Tiers {
		c.ProtectTiers = c.Tiers
	}
	c.Clock = clockOrNow(c.Clock)
}

// AdmissionStats is a snapshot of the queue counters. Slices are indexed
// by tier.
type AdmissionStats struct {
	Offered    []int64 // Offer calls per tier
	Admitted   []int64 // offers that entered a queue
	TailDrop   []int64 // offers refused because the tier queue was full
	CoDelShed  []int64 // queued items shed by the queue-delay controller
	Dispatched []int64 // items handed to workers by Pop
}

// Admission is the tiered admission queue: bounded FIFO per tier, strict
// highest-tier-first dispatch, and a CoDel-style controller that watches
// the sojourn time of dispatched work and sheds queued items — always from
// the lowest unprotected tier — when the queue delay stays above Target
// for a full Interval. This is the ARTP twist on RFC 8289: the signal is
// classic CoDel, but the drop falls on the traffic the priority model says
// is expendable, not on the head of the line.
type Admission struct {
	mu   sync.Mutex
	cond *sync.Cond
	cfg  AdmissionConfig

	tiers  [][]*Item
	closed bool

	// CoDel state, mirroring internal/queue/codel.go.
	firstAbove time.Time
	dropNext   time.Time
	count      int
	lastCount  int
	dropping   bool

	// delayEWMA tracks the sojourn of dispatched items; the gate reads it
	// as the load signal for the ladder and the health probe. delayTier
	// tracks the same signal per tier: a high-priority request jumps the
	// queues, so its expected wait is its own tier's recent sojourn, not
	// the global mix.
	delayEWMA time.Duration
	delayTier []time.Duration

	offered, admitted, tailDrop, codelShed, dispatched []int64
}

// NewAdmission builds the queues.
func NewAdmission(cfg AdmissionConfig) *Admission {
	cfg.defaults()
	a := &Admission{
		cfg:        cfg,
		tiers:      make([][]*Item, cfg.Tiers),
		delayTier:  make([]time.Duration, cfg.Tiers),
		offered:    make([]int64, cfg.Tiers),
		admitted:   make([]int64, cfg.Tiers),
		tailDrop:   make([]int64, cfg.Tiers),
		codelShed:  make([]int64, cfg.Tiers),
		dispatched: make([]int64, cfg.Tiers),
	}
	a.cond = sync.NewCond(&a.mu)
	return a
}

// Offer submits an item for admission. It returns false when the item's
// tier queue is at capacity (or the queues are closed); the item is
// stamped and queued otherwise.
func (a *Admission) Offer(it *Item) bool {
	tier := it.Tier
	if tier < 0 {
		tier = 0
	}
	if tier >= a.cfg.Tiers {
		tier = a.cfg.Tiers - 1
	}
	it.Tier = tier
	a.mu.Lock()
	defer a.mu.Unlock()
	a.offered[tier]++
	if a.closed || len(a.tiers[tier]) >= a.cfg.QueueCap {
		a.tailDrop[tier]++
		return false
	}
	it.Enqueued = a.cfg.Clock()
	if it.Degrade == 0 {
		it.Degrade = TierFull
	}
	a.tiers[tier] = append(a.tiers[tier], it)
	a.admitted[tier]++
	a.cond.Signal()
	return true
}

// Pop blocks until work is available (or the queues close: ok=false). It
// returns the next item in strict tier order plus any items the CoDel
// controller shed while the caller was away — the caller owes each shed
// item a rejection answer, so sheds surface to clients immediately instead
// of as silence.
func (a *Admission) Pop() (it *Item, shed []*Item, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for {
		if it := a.popLocked(); it != nil {
			now := a.cfg.Clock()
			shed = a.codelLocked(it, now)
			a.dispatched[it.Tier]++
			a.observeDelayLocked(it.Tier, now.Sub(it.Enqueued))
			return it, shed, true
		}
		if a.closed {
			return nil, nil, false
		}
		a.cond.Wait()
	}
}

// TryPop is Pop without blocking; ok is false when no work is queued.
func (a *Admission) TryPop() (it *Item, shed []*Item, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if it := a.popLocked(); it != nil {
		now := a.cfg.Clock()
		shed = a.codelLocked(it, now)
		a.dispatched[it.Tier]++
		a.observeDelayLocked(it.Tier, now.Sub(it.Enqueued))
		return it, shed, true
	}
	return nil, nil, false
}

func (a *Admission) popLocked() *Item {
	for t := 0; t < a.cfg.Tiers; t++ {
		if q := a.tiers[t]; len(q) > 0 {
			it := q[0]
			q[0] = nil
			a.tiers[t] = q[1:]
			return it
		}
	}
	return nil
}

// codelLocked runs the queue-delay controller against the sojourn of the
// item being dispatched and returns the queued items it shed.
func (a *Admission) codelLocked(head *Item, now time.Time) []*Item {
	sojourn := now.Sub(head.Enqueued)
	if sojourn < a.cfg.Target || a.depthLocked() == 0 {
		// Delay at its floor (or nothing left queued behind the head):
		// leave the dropping state.
		a.firstAbove = time.Time{}
		a.dropping = false
		return nil
	}
	if a.firstAbove.IsZero() {
		a.firstAbove = now.Add(a.cfg.Interval)
		return nil
	}
	if now.Before(a.firstAbove) {
		return nil
	}
	var shed []*Item
	if !a.dropping {
		a.dropping = true
		// Resume the drop cadence if shedding stopped only recently
		// (RFC 8289 §5.4).
		if a.count > a.lastCount+1 && now.Sub(a.dropNext) < 16*a.cfg.Interval {
			a.count -= a.lastCount
		} else {
			a.count = 1
		}
		a.lastCount = a.count
		if s := a.shedLowestLocked(); s != nil {
			shed = append(shed, s)
		}
		a.dropNext = a.controlLaw(now)
		return shed
	}
	for !now.Before(a.dropNext) {
		s := a.shedLowestLocked()
		if s == nil {
			a.dropping = false
			break
		}
		shed = append(shed, s)
		a.count++
		a.dropNext = a.controlLaw(a.dropNext)
	}
	return shed
}

func (a *Admission) controlLaw(t time.Time) time.Time {
	return t.Add(time.Duration(float64(a.cfg.Interval) / math.Sqrt(float64(a.count))))
}

// shedLowestLocked removes the newest item of the lowest-priority
// unprotected non-empty tier — the work the ARTP priority model marks
// expendable, and within it the request that has invested the least wait.
func (a *Admission) shedLowestLocked() *Item {
	for t := a.cfg.Tiers - 1; t >= a.cfg.ProtectTiers; t-- {
		if q := a.tiers[t]; len(q) > 0 {
			it := q[len(q)-1]
			q[len(q)-1] = nil
			a.tiers[t] = q[:len(q)-1]
			a.codelShed[t]++
			return it
		}
	}
	return nil
}

func (a *Admission) depthLocked() int {
	n := 0
	for _, q := range a.tiers {
		n += len(q)
	}
	return n
}

func (a *Admission) observeDelayLocked(tier int, d time.Duration) {
	if d < 0 {
		d = 0
	}
	if a.delayEWMA == 0 {
		a.delayEWMA = d
	} else {
		a.delayEWMA = (3*a.delayEWMA + d) / 4
	}
	if a.delayTier[tier] == 0 {
		a.delayTier[tier] = d
	} else {
		a.delayTier[tier] = (3*a.delayTier[tier] + d) / 4
	}
}

// Depth reports the total queued items.
func (a *Admission) Depth() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.depthLocked()
}

// QueueDelay reports the smoothed sojourn time of dispatched work — the
// load signal the ladder and health probe consume.
func (a *Admission) QueueDelay() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.delayEWMA
}

// QueueDelayTier reports the smoothed sojourn of one tier's dispatched
// work — the wait a new request of that tier should expect, since
// higher-priority work jumps ahead of the global mix.
func (a *Admission) QueueDelayTier(tier int) time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	if tier < 0 || tier >= len(a.delayTier) {
		return 0
	}
	return a.delayTier[tier]
}

// Close wakes all Pop callers; subsequent Offers are refused. Queued items
// are retained so a closing caller can drain them with TryPop.
func (a *Admission) Close() {
	a.mu.Lock()
	a.closed = true
	a.mu.Unlock()
	a.cond.Broadcast()
}

// Stats snapshots the counters.
func (a *Admission) Stats() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	cp := func(s []int64) []int64 { return append([]int64(nil), s...) }
	return AdmissionStats{
		Offered:    cp(a.offered),
		Admitted:   cp(a.admitted),
		TailDrop:   cp(a.tailDrop),
		CoDelShed:  cp(a.codelShed),
		Dispatched: cp(a.dispatched),
	}
}
