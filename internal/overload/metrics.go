package overload

import (
	"strconv"

	"marnet/internal/obs"
)

// PublishMetrics registers the gate's admission counters with an
// observability registry as live read-through functions: every scrape
// reports exactly what Stats would return at that instant. Per-tier
// admission counters get a tier="<n>" label (0 = most protected) on top
// of the caller's labels.
func (g *Gate) PublishMetrics(reg *obs.Registry, labels ...obs.Label) {
	if reg == nil {
		return
	}
	for _, m := range []struct {
		name string
		get  func(GateStats) int64
	}{
		{"mar_gate_admitted_total", func(s GateStats) int64 { return s.Admitted }},
		{"mar_gate_completed_total", func(s GateStats) int64 { return s.Completed }},
		{"mar_gate_degraded_total", func(s GateStats) int64 { return s.Degraded }},
		{"mar_gate_expired_on_arrival_total", func(s GateStats) int64 { return s.ExpiredOnArrival }},
		{"mar_gate_expired_in_queue_total", func(s GateStats) int64 { return s.ExpiredInQueue }},
		{"mar_gate_cannot_finish_total", func(s GateStats) int64 { return s.CannotFinish }},
		{"mar_gate_rejected_draining_total", func(s GateStats) int64 { return s.RejectedDraining }},
		{"mar_gate_ladder_rejected_total", func(s GateStats) int64 { return s.LadderRejected }},
	} {
		get := m.get
		reg.CounterFunc(m.name, func() int64 { return get(g.Stats()) }, labels...)
	}
	reg.GaugeFunc("mar_gate_queue_delay_seconds", func() float64 {
		return g.QueueDelay().Seconds()
	}, labels...)
	reg.GaugeFunc("mar_gate_health", func() float64 {
		return float64(g.Health())
	}, labels...)

	tiers := len(g.adm.Stats().Offered)
	for tier := 0; tier < tiers; tier++ {
		tier := tier
		ls := append(append([]obs.Label(nil), labels...), obs.L("tier", strconv.Itoa(tier)))
		for _, m := range []struct {
			name string
			get  func(AdmissionStats) []int64
		}{
			{"mar_admission_offered_total", func(s AdmissionStats) []int64 { return s.Offered }},
			{"mar_admission_admitted_total", func(s AdmissionStats) []int64 { return s.Admitted }},
			{"mar_admission_tail_drop_total", func(s AdmissionStats) []int64 { return s.TailDrop }},
			{"mar_admission_codel_shed_total", func(s AdmissionStats) []int64 { return s.CoDelShed }},
			{"mar_admission_dispatched_total", func(s AdmissionStats) []int64 { return s.Dispatched }},
		} {
			get := m.get
			reg.CounterFunc(m.name, func() int64 {
				if vs := get(g.adm.Stats()); tier < len(vs) {
					return vs[tier]
				}
				return 0
			}, ls...)
		}
	}
}
