package overload

import (
	"sync"
	"time"

	"marnet/internal/obs"
)

// Config assembles a Gate.
type Config struct {
	// Admission tunes the tiered queues and the queue-delay shedder.
	Admission AdmissionConfig
	// Ladder enables degradation of admitted work; the zero Ladder serves
	// everything at TierFull (queue caps, CoDel shedding and deadline
	// rejection still apply).
	Ladder Ladder
	// EWMAAlpha tunes the service-time estimator (default
	// DefaultEWMAAlpha).
	EWMAAlpha float64
	// Safety scales the service-time estimate when judging whether a
	// request can finish inside its remaining budget (default 1.5: reject
	// only when even an optimistic run would not fit).
	Safety float64
	// Clock is the time source (default time.Now); it is also pushed into
	// Admission when that has none.
	Clock func() time.Time
	// Sleep is the poll pause WaitDrain uses between checks (default
	// time.Sleep). Tests driving the gate on a virtual clock inject a hook
	// that advances that clock, so drains resolve on virtual time instead
	// of stalling a wall-clock millisecond per poll.
	Sleep func(d time.Duration)
	// Recorder, when set, receives an EvOverloadVerdict flight-recorder
	// event for every refused request.
	Recorder *obs.FlightRecorder
}

// Verdict is the admission decision for one request.
type Verdict int

// Verdicts.
const (
	// Admit: the request entered a queue (from Admit) or is being handed
	// to a worker (from Next).
	Admit Verdict = iota + 1
	// RejectExpired: the propagated deadline had already passed on
	// arrival.
	RejectExpired
	// RejectQueueFull: the request's tier queue was at capacity.
	RejectQueueFull
	// RejectCannotFinish: the service-time estimate does not fit in the
	// request's remaining budget.
	RejectCannotFinish
	// RejectDraining: the server is draining; only already-admitted work
	// completes.
	RejectDraining
	// RejectShed: shed by the queue-delay controller or the ladder's
	// reject rung.
	RejectShed
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Admit:
		return "admit"
	case RejectExpired:
		return "expired"
	case RejectQueueFull:
		return "queue-full"
	case RejectCannotFinish:
		return "cannot-finish"
	case RejectDraining:
		return "draining"
	case RejectShed:
		return "shed"
	default:
		return "unknown-verdict"
	}
}

// Rejection pairs a refused item with why, so the serving layer can send
// the client an immediate, typed rejection instead of silence.
type Rejection struct {
	Item    *Item
	Verdict Verdict
}

// GateStats is a snapshot of everything the gate decided.
type GateStats struct {
	Admission AdmissionStats

	Admitted         int64 // requests that entered the queues
	Completed        int64 // requests a worker finished
	Degraded         int64 // completions served below TierFull
	ExpiredOnArrival int64 // deadline already expired when the request arrived
	ExpiredInQueue   int64 // deadline expired while queued, before dispatch
	CannotFinish     int64 // estimate did not fit the remaining budget
	RejectedDraining int64 // refused because the server was draining
	LadderRejected   int64 // refused by the ladder's reject rung at dispatch
}

// Gate is the assembled server-side admission controller: tiered bounded
// queues with queue-delay shedding, deadline enforcement (expired-on-
// arrival and cannot-finish-in-time), a degradation ladder, in-flight
// tracking, and the drain protocol.
//
// Serving-layer contract: Admit every arriving request; run workers in a
// loop around Next; answer every Rejection immediately; call Done exactly
// once per item Next returned.
type Gate struct {
	cfg   Config
	adm   *Admission
	est   *Estimator
	clock func() time.Time
	sleep func(d time.Duration)

	mu           sync.Mutex
	draining     bool
	inflight     int
	admitted     int64
	completed    int64
	degraded     int64
	expArrival   int64
	expQueue     int64
	cannotFinish int64
	drainRejects int64
	ladderReject int64
}

// NewGate builds a gate.
func NewGate(cfg Config) *Gate {
	if cfg.Safety <= 0 {
		cfg.Safety = 1.5
	}
	cfg.Clock = clockOrNow(cfg.Clock)
	if cfg.Admission.Clock == nil {
		cfg.Admission.Clock = cfg.Clock
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	cfg.Admission.defaults() // gate reads Target etc. directly, so default here
	return &Gate{
		cfg:   cfg,
		adm:   NewAdmission(cfg.Admission),
		est:   NewEstimator(cfg.EWMAAlpha),
		clock: cfg.Clock,
		sleep: cfg.Sleep,
	}
}

// recordVerdict emits one refusal to the flight recorder. Nil-safe and
// off the admit fast path: only rejections pay for it.
func (g *Gate) recordVerdict(v Verdict, it *Item) {
	if g.cfg.Recorder == nil {
		return
	}
	g.cfg.Recorder.Record(obs.EvOverloadVerdict, uint8(v), uint16(it.Method), 0,
		uint64(g.adm.QueueDelay().Microseconds()))
}

// Admit decides whether the request may enter the queues, and enqueues it
// when admitted. Rejections are cheap and immediate: they run before any
// decode or dispatch work is spent on the request.
func (g *Gate) Admit(it *Item) Verdict {
	now := g.clock()
	g.mu.Lock()
	if g.draining {
		g.drainRejects++
		g.mu.Unlock()
		g.recordVerdict(RejectDraining, it)
		return RejectDraining
	}
	g.mu.Unlock()

	if !it.Deadline.IsZero() {
		remaining := it.Deadline.Sub(now)
		if remaining <= 0 {
			g.mu.Lock()
			g.expArrival++
			g.mu.Unlock()
			g.recordVerdict(RejectExpired, it)
			return RejectExpired
		}
		// Cannot-finish at admission: predicted wait (the smoothed queue
		// delay of this request's own tier — higher priorities jump the
		// global mix) plus the safety-scaled service estimate must fit
		// the remaining budget, or the work would be started only to be
		// discarded.
		if est, ok := g.est.Estimate(it.Method); ok {
			need := g.adm.QueueDelayTier(it.Tier) + time.Duration(g.cfg.Safety*float64(est))
			if need > remaining {
				g.mu.Lock()
				g.cannotFinish++
				g.mu.Unlock()
				g.recordVerdict(RejectCannotFinish, it)
				return RejectCannotFinish
			}
		}
	}
	if !g.adm.Offer(it) {
		g.recordVerdict(RejectQueueFull, it)
		return RejectQueueFull
	}
	g.mu.Lock()
	g.admitted++
	g.mu.Unlock()
	return Admit
}

// Next blocks until a runnable item is available, returning it plus every
// rejection decided along the way (queue-delay sheds, items that expired
// in the queue, items whose budget no longer fits). ok=false after Close;
// rejected may be non-empty even then. The returned item's Degrade field
// carries the ladder's response tier.
func (g *Gate) Next() (run *Item, rejected []Rejection, ok bool) {
	for {
		it, shed, popOK := g.adm.Pop()
		for _, s := range shed {
			g.recordVerdict(RejectShed, s)
			rejected = append(rejected, Rejection{Item: s, Verdict: RejectShed})
		}
		if !popOK {
			return nil, rejected, false
		}
		if run, rejected = g.vet(it, rejected); run != nil {
			return run, rejected, true
		}
	}
}

// TryNext is Next without blocking: ok is false when no work is queued
// right now (rejections decided along the way may still be returned).
// Event-driven servers — the deterministic simulation dispatch mode in
// particular — pump the gate with TryNext from completion callbacks
// instead of parking worker goroutines in Next.
func (g *Gate) TryNext() (run *Item, rejected []Rejection, ok bool) {
	for {
		it, shed, popOK := g.adm.TryPop()
		for _, s := range shed {
			g.recordVerdict(RejectShed, s)
			rejected = append(rejected, Rejection{Item: s, Verdict: RejectShed})
		}
		if !popOK {
			return nil, rejected, false
		}
		if run, rejected = g.vet(it, rejected); run != nil {
			return run, rejected, true
		}
	}
}

// vet applies the dispatch-time checks (expired-in-queue,
// cannot-finish, ladder) to a popped item. It returns the item ready to
// run, or nil with the rejection appended.
func (g *Gate) vet(it *Item, rejected []Rejection) (*Item, []Rejection) {
	now := g.clock()
	if !it.Deadline.IsZero() {
		remaining := it.Deadline.Sub(now)
		if remaining <= 0 {
			g.mu.Lock()
			g.expQueue++
			g.mu.Unlock()
			g.recordVerdict(RejectExpired, it)
			return nil, append(rejected, Rejection{Item: it, Verdict: RejectExpired})
		}
		if est, estOK := g.est.Estimate(it.Method); estOK {
			if time.Duration(g.cfg.Safety*float64(est)) > remaining {
				g.mu.Lock()
				g.cannotFinish++
				g.mu.Unlock()
				g.recordVerdict(RejectCannotFinish, it)
				return nil, append(rejected, Rejection{Item: it, Verdict: RejectCannotFinish})
			}
		}
	}
	if g.cfg.Ladder.Enabled() {
		switch tier := g.cfg.Ladder.Tier(g.adm.QueueDelay()); tier {
		case TierReject:
			g.mu.Lock()
			g.ladderReject++
			g.mu.Unlock()
			g.recordVerdict(RejectShed, it)
			return nil, append(rejected, Rejection{Item: it, Verdict: RejectShed})
		default:
			it.Degrade = tier
		}
	}
	g.mu.Lock()
	g.inflight++
	g.mu.Unlock()
	return it, rejected
}

// Done records the completion of an item returned by Next, feeding its
// measured service time into the estimator.
func (g *Gate) Done(it *Item, took time.Duration) {
	g.est.Observe(it.Method, took)
	g.mu.Lock()
	g.inflight--
	g.completed++
	if it.Degrade != TierFull && it.Degrade != 0 {
		g.degraded++
	}
	g.mu.Unlock()
}

// SetDraining switches the drain state: while draining, Admit refuses all
// new work but workers keep consuming the queues, so everything already
// accepted completes.
func (g *Gate) SetDraining(on bool) {
	g.mu.Lock()
	g.draining = on
	g.mu.Unlock()
}

// Draining reports the drain state.
func (g *Gate) Draining() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.draining
}

// WaitDrain blocks until the queues are empty and no work is in flight,
// or the timeout elapses; it reports whether the drain completed. Callers
// normally SetDraining(true) first — otherwise new admissions can keep the
// gate busy indefinitely. Both the deadline and the poll pause run on the
// injected Clock/Sleep hooks: a gate constructed on a virtual clock drains
// (and times out) on virtual time, the same time base as every other
// decision it makes.
func (g *Gate) WaitDrain(timeout time.Duration) bool {
	deadline := g.clock().Add(timeout)
	for {
		g.mu.Lock()
		idle := g.inflight == 0
		g.mu.Unlock()
		if idle && g.adm.Depth() == 0 {
			return true
		}
		if g.clock().After(deadline) {
			return false
		}
		g.sleep(time.Millisecond)
	}
}

// Inflight reports how many items workers currently hold.
func (g *Gate) Inflight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inflight
}

// QueueDelay exposes the smoothed queue delay (the ladder's load signal).
func (g *Gate) QueueDelay() time.Duration { return g.adm.QueueDelay() }

// Estimator exposes the per-method service-time estimator (servers may
// pre-warm it with known costs).
func (g *Gate) Estimator() *Estimator { return g.est }

// Health derives the probe state clients steer by: draining beats
// degraded beats healthy. Degraded means the ladder has left TierFull or
// the queue delay has reached twice the CoDel target — overload is
// building even if nothing has been shed yet.
func (g *Gate) Health() Probe {
	g.mu.Lock()
	draining := g.draining
	g.mu.Unlock()
	if draining {
		return ProbeDraining
	}
	qd := g.adm.QueueDelay()
	if g.cfg.Ladder.Enabled() && g.cfg.Ladder.Tier(qd) != TierFull {
		return ProbeDegraded
	}
	if qd >= 2*g.cfg.Admission.Target {
		return ProbeDegraded
	}
	return ProbeHealthy
}

// Close unblocks all Next callers. Queued items are dropped unanswered;
// drain first for a graceful stop.
func (g *Gate) Close() { g.adm.Close() }

// Stats snapshots the counters.
func (g *Gate) Stats() GateStats {
	st := GateStats{Admission: g.adm.Stats()}
	g.mu.Lock()
	st.Admitted = g.admitted
	st.Completed = g.completed
	st.Degraded = g.degraded
	st.ExpiredOnArrival = g.expArrival
	st.ExpiredInQueue = g.expQueue
	st.CannotFinish = g.cannotFinish
	st.RejectedDraining = g.drainRejects
	st.LadderRejected = g.ladderReject
	g.mu.Unlock()
	return st
}
