// Package overload is the server-side half of the paper's graceful
// degradation doctrine (Section VI-B, Figure 4). The transport refuses to
// queue traffic into uselessness — it sheds by priority instead of growing
// a buffer — and the serving path must do the same: an edge surrogate
// under 4x its capacity helps nobody by accepting everything and answering
// everything late (the serving-path analogue of the ~1000-packet kernel
// buffers of Section VI-H).
//
// The package provides the four mechanisms an overloaded MAR server needs:
//
//   - Admission: per-priority bounded queues (one tier per ARTP priority
//     level, core.AdmissionTiers of them) with CoDel-style queue-delay
//     shedding that concentrates drops in the lowest tier. Work is always
//     dispatched highest-tier-first.
//   - Estimator: a per-method EWMA of observed service time, so the server
//     can refuse work it cannot finish inside the client's remaining
//     budget instead of discovering that after spending the cycles.
//   - Ladder: the degradation ladder — a load signal (queue delay or
//     compute backlog) mapped to a response tier: full work, a cheaper
//     features-only answer, a cached result, or an immediate reject.
//   - Gate: the assembled admission controller used by rpc.Server — it
//     tracks in-flight work, exposes a health probe (healthy / degraded /
//     draining), and implements draining: finish everything already
//     admitted while rejecting new arrivals, so servers restart cleanly
//     under load.
//
// All time-dependent logic takes an injectable clock so the decision core
// is unit-testable deterministically; the zero clock is time.Now.
package overload

import "time"

// Tier is one rung of the degradation ladder: what quality of answer the
// server produces for an admitted request under its current load. It
// mirrors the MAR pipeline's natural fallbacks (full recognition ->
// match-only against client features -> replay the cached pose -> refuse).
type Tier int

// Degradation tiers, best first.
const (
	// TierFull: normal service, the complete pipeline runs.
	TierFull Tier = iota + 1
	// TierFeatures: a cheaper partial pipeline (e.g. match precomputed
	// features instead of full recognition).
	TierFeatures
	// TierCached: answer from cache with near-zero compute (e.g. the last
	// pose for this client).
	TierCached
	// TierReject: refuse immediately so the client degrades locally
	// instead of timing out.
	TierReject
)

// String implements fmt.Stringer.
func (t Tier) String() string {
	switch t {
	case TierFull:
		return "full"
	case TierFeatures:
		return "features"
	case TierCached:
		return "cached"
	case TierReject:
		return "reject"
	default:
		return "unknown-tier"
	}
}

// Probe is the health state a server advertises to clients, so failover
// steers away from a degraded or draining server before errors occur.
type Probe int

// Probe states.
const (
	// ProbeHealthy: admitting everything, queue delay at its floor.
	ProbeHealthy Probe = iota + 1
	// ProbeDegraded: admitting, but the ladder is active — answers may be
	// cheaper tiers and low-priority work is being shed.
	ProbeDegraded
	// ProbeDraining: finishing in-flight and queued work, rejecting all new
	// requests; clients should fail over now.
	ProbeDraining
)

// String implements fmt.Stringer.
func (p Probe) String() string {
	switch p {
	case ProbeHealthy:
		return "healthy"
	case ProbeDegraded:
		return "degraded"
	case ProbeDraining:
		return "draining"
	default:
		return "unknown-probe"
	}
}

// clockOrNow defaults a nil clock to time.Now.
func clockOrNow(clock func() time.Time) func() time.Time {
	if clock == nil {
		return time.Now
	}
	return clock
}
