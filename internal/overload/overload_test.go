package overload

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a hand-advanced time source so every admission decision in
// these tests is deterministic.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_000_000, 0)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

func TestAdmissionPriorityOrder(t *testing.T) {
	clk := newFakeClock()
	a := NewAdmission(AdmissionConfig{Clock: clk.Now})
	for _, tier := range []int{2, 0, 3, 1, 0} {
		if !a.Offer(&Item{Tier: tier, Job: tier}) {
			t.Fatalf("offer tier %d refused", tier)
		}
	}
	want := []int{0, 0, 1, 2, 3}
	for i, w := range want {
		it, shed, ok := a.Pop()
		if !ok || len(shed) != 0 {
			t.Fatalf("pop %d: ok=%v shed=%d", i, ok, len(shed))
		}
		if it.Tier != w {
			t.Fatalf("pop %d: tier = %d, want %d", i, it.Tier, w)
		}
	}
}

func TestAdmissionTailDrop(t *testing.T) {
	clk := newFakeClock()
	a := NewAdmission(AdmissionConfig{QueueCap: 2, Clock: clk.Now})
	if !a.Offer(&Item{Tier: 1}) || !a.Offer(&Item{Tier: 1}) {
		t.Fatal("first two offers refused")
	}
	if a.Offer(&Item{Tier: 1}) {
		t.Fatal("offer above QueueCap admitted")
	}
	if a.Offer(&Item{Tier: 2}) != true {
		t.Fatal("other tier should have its own cap")
	}
	st := a.Stats()
	if st.TailDrop[1] != 1 || st.Admitted[1] != 2 {
		t.Fatalf("tier1 tailDrop=%d admitted=%d", st.TailDrop[1], st.Admitted[1])
	}
}

// TestAdmissionCoDelShedsLowestTier drives a standing queue delay far past
// the CoDel target and checks that shedding (a) happens, (b) falls on the
// lowest tier first, and (c) never touches the protected top tier.
func TestAdmissionCoDelShedsLowestTier(t *testing.T) {
	clk := newFakeClock()
	a := NewAdmission(AdmissionConfig{
		QueueCap: 100,
		Target:   5 * time.Millisecond,
		Interval: 20 * time.Millisecond,
		Clock:    clk.Now,
	})
	// A backlog across three tiers, all enqueued at t0.
	for i := 0; i < 12; i++ {
		a.Offer(&Item{Tier: 0})
		a.Offer(&Item{Tier: 1})
		a.Offer(&Item{Tier: 3})
	}
	// Serve slowly: 10 ms per dispatch, so sojourn exceeds the target
	// immediately and stays there past the interval.
	dispatched := 0
	for a.Depth() > 0 {
		clk.Advance(10 * time.Millisecond)
		if _, _, ok := a.TryPop(); !ok {
			break
		}
		dispatched++
	}
	st := a.Stats()
	if st.CoDelShed[3] == 0 {
		t.Fatal("standing queue delay never shed the lowest tier")
	}
	if st.CoDelShed[0] != 0 {
		t.Fatalf("protected tier 0 was CoDel-shed %d times", st.CoDelShed[0])
	}
	// Tier 3 must bear at least as much shedding as tier 1: sheds walk
	// up from the bottom.
	if st.CoDelShed[1] > 0 && st.CoDelShed[3] < 12 {
		t.Fatalf("tier1 shed (%d) before tier3 was exhausted (%d/12)",
			st.CoDelShed[1], st.CoDelShed[3])
	}
	if got := st.Dispatched[0]; got != 12 {
		t.Fatalf("tier0 dispatched = %d, want all 12", got)
	}
	_ = dispatched
}

func TestEstimatorEWMA(t *testing.T) {
	e := NewEstimator(0.2)
	if _, ok := e.Estimate(1); ok {
		t.Fatal("estimate before any observation")
	}
	e.Observe(1, 10*time.Millisecond)
	if d, _ := e.Estimate(1); d != 10*time.Millisecond {
		t.Fatalf("first observation not adopted: %v", d)
	}
	e.Observe(1, 20*time.Millisecond)
	if d, _ := e.Estimate(1); d != 12*time.Millisecond {
		t.Fatalf("EWMA = %v, want 12ms", d)
	}
	if _, ok := e.Estimate(2); ok {
		t.Fatal("methods must not share estimates")
	}
}

func TestLadderTiers(t *testing.T) {
	l := DefaultLadder(100 * time.Millisecond)
	cases := []struct {
		load time.Duration
		want Tier
	}{
		{0, TierFull},
		{24 * time.Millisecond, TierFull},
		{25 * time.Millisecond, TierFeatures},
		{50 * time.Millisecond, TierCached},
		{100 * time.Millisecond, TierReject},
		{time.Second, TierReject},
	}
	for _, c := range cases {
		if got := l.Tier(c.load); got != c.want {
			t.Errorf("Tier(%v) = %v, want %v", c.load, got, c.want)
		}
	}
	var zero Ladder
	if zero.Enabled() || zero.Tier(time.Hour) != TierFull {
		t.Error("zero ladder must never degrade")
	}
}

func TestGateExpiredOnArrival(t *testing.T) {
	clk := newFakeClock()
	g := NewGate(Config{Clock: clk.Now})
	defer g.Close()
	past := clk.Now().Add(-time.Millisecond)
	if v := g.Admit(&Item{Tier: 0, Deadline: past}); v != RejectExpired {
		t.Fatalf("verdict = %v, want expired", v)
	}
	if st := g.Stats(); st.ExpiredOnArrival != 1 {
		t.Fatalf("ExpiredOnArrival = %d", st.ExpiredOnArrival)
	}
}

func TestGateExpiredInQueue(t *testing.T) {
	clk := newFakeClock()
	g := NewGate(Config{Clock: clk.Now})
	defer g.Close()
	doomed := &Item{Tier: 1, Deadline: clk.Now().Add(5 * time.Millisecond)}
	healthy := &Item{Tier: 1, Deadline: clk.Now().Add(time.Hour)}
	if g.Admit(doomed) != Admit || g.Admit(healthy) != Admit {
		t.Fatal("admissions refused")
	}
	clk.Advance(10 * time.Millisecond) // doomed expires while queued
	run, rejected, ok := g.Next()
	if !ok || run != healthy {
		t.Fatalf("Next: run=%v ok=%v", run, ok)
	}
	if len(rejected) != 1 || rejected[0].Item != doomed || rejected[0].Verdict != RejectExpired {
		t.Fatalf("rejected = %+v", rejected)
	}
	if st := g.Stats(); st.ExpiredInQueue != 1 {
		t.Fatalf("ExpiredInQueue = %d", st.ExpiredInQueue)
	}
	g.Done(run, time.Millisecond)
}

func TestGateCannotFinish(t *testing.T) {
	clk := newFakeClock()
	g := NewGate(Config{Clock: clk.Now})
	defer g.Close()
	g.Estimator().Observe(7, 50*time.Millisecond)
	// 10 ms of budget cannot hold 1.5 x 50 ms of estimated service.
	v := g.Admit(&Item{Tier: 0, Method: 7, Deadline: clk.Now().Add(10 * time.Millisecond)})
	if v != RejectCannotFinish {
		t.Fatalf("verdict = %v, want cannot-finish", v)
	}
	// An unknown method must be admitted and learned instead.
	if v := g.Admit(&Item{Tier: 0, Method: 8, Deadline: clk.Now().Add(10 * time.Millisecond)}); v != Admit {
		t.Fatalf("unknown-method verdict = %v, want admit", v)
	}
	if st := g.Stats(); st.CannotFinish != 1 {
		t.Fatalf("CannotFinish = %d", st.CannotFinish)
	}
}

func TestGateDrainProtocol(t *testing.T) {
	clk := newFakeClock()
	// Sleep advances the same fake clock WaitDrain reads its deadline
	// from, so both WaitDrain outcomes below resolve on virtual time.
	// (WaitDrain once read time.Now directly and this test only passed
	// because real milliseconds crept by during the poll sleeps.)
	g := NewGate(Config{Clock: clk.Now, Sleep: clk.Advance})
	defer g.Close()
	if g.Health() != ProbeHealthy {
		t.Fatalf("health = %v, want healthy", g.Health())
	}
	accepted := &Item{Tier: 0, Deadline: clk.Now().Add(time.Hour)}
	if g.Admit(accepted) != Admit {
		t.Fatal("admission refused")
	}
	g.SetDraining(true)
	if g.Health() != ProbeDraining {
		t.Fatalf("health = %v, want draining", g.Health())
	}
	if v := g.Admit(&Item{Tier: 0}); v != RejectDraining {
		t.Fatalf("verdict while draining = %v", v)
	}
	// Already-admitted work still dispatches and completes.
	run, _, ok := g.Next()
	if !ok || run != accepted {
		t.Fatal("draining gate must still dispatch admitted work")
	}
	if g.WaitDrain(5 * time.Millisecond) {
		t.Fatal("drain reported complete with work in flight")
	}
	g.Done(run, time.Millisecond)
	if !g.WaitDrain(time.Second) {
		t.Fatal("drain did not complete after the last Done")
	}
	st := g.Stats()
	if st.Admitted != 1 || st.Completed != 1 || st.RejectedDraining != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGateLadderDegradesDispatch(t *testing.T) {
	clk := newFakeClock()
	g := NewGate(Config{
		Clock:  clk.Now,
		Ladder: Ladder{DegradeAt: 10 * time.Millisecond, CacheAt: 40 * time.Millisecond, RejectAt: 100 * time.Millisecond},
	})
	defer g.Close()
	// Build a standing queue delay: items sit 20 ms before dispatch.
	for i := 0; i < 8; i++ {
		if g.Admit(&Item{Tier: 1}) != Admit {
			t.Fatal("admission refused")
		}
	}
	var tiers []Tier
	for i := 0; i < 8; i++ {
		clk.Advance(20 * time.Millisecond)
		run, rejected, ok := g.Next()
		if !ok {
			t.Fatal("gate closed early")
		}
		for range rejected {
			// CoDel sheds count as rejections; ignore here.
		}
		if run == nil {
			break
		}
		tiers = append(tiers, run.Degrade)
		g.Done(run, time.Millisecond)
		if g.adm.Depth() == 0 {
			break
		}
	}
	degraded := false
	for _, tr := range tiers {
		if tr != TierFull {
			degraded = true
		}
	}
	if !degraded {
		t.Fatalf("ladder never degraded under 20 ms standing delay: %v", tiers)
	}
	if g.Health() == ProbeHealthy {
		t.Error("health still healthy with ladder active")
	}
}

// TestWaitDrainVirtualClock pins WaitDrain to the injected clock: a one-
// hour drain timeout resolves in milliseconds of real time when the Sleep
// hook advances the virtual clock in ten-minute jumps — only possible if
// both the deadline arithmetic and the polling pause run on the hooks
// rather than the system clock.
func TestWaitDrainVirtualClock(t *testing.T) {
	clk := newFakeClock()
	g := NewGate(Config{
		Clock: clk.Now,
		Sleep: func(time.Duration) { clk.Advance(10 * time.Minute) },
	})
	defer g.Close()
	if g.Admit(&Item{Tier: 0}) != Admit {
		t.Fatal("admission refused")
	}
	start := time.Now()
	if g.WaitDrain(time.Hour) {
		t.Fatal("drain reported complete with an item still queued")
	}
	if real := time.Since(start); real > 5*time.Second {
		t.Fatalf("one-hour virtual timeout took %v of real time", real)
	}
}

// TestGateConcurrent exercises the gate from many goroutines so the race
// detector sees the real locking pattern: producers admitting, workers
// consuming, a drainer flipping state.
func TestGateConcurrent(t *testing.T) {
	g := NewGate(Config{})
	var wg sync.WaitGroup
	var workersDone sync.WaitGroup
	for w := 0; w < 4; w++ {
		workersDone.Add(1)
		go func() {
			defer workersDone.Done()
			for {
				run, _, ok := g.Next()
				if !ok {
					return
				}
				g.Done(run, 10*time.Microsecond)
			}
		}()
	}
	for p := 0; p < 8; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				g.Admit(&Item{Tier: p % 4, Method: uint8(p), Deadline: time.Now().Add(time.Second)})
			}
		}()
	}
	wg.Wait()
	g.SetDraining(true)
	if !g.WaitDrain(5 * time.Second) {
		t.Fatal("drain did not complete")
	}
	g.Close()
	workersDone.Wait()
	st := g.Stats()
	if st.Completed == 0 {
		t.Fatal("nothing completed")
	}
	var shed int64
	for _, n := range st.Admission.CoDelShed {
		shed += n
	}
	if st.Completed+st.ExpiredInQueue+st.CannotFinish+st.LadderRejected+shed != st.Admitted {
		t.Fatalf("admitted work unaccounted for: %+v", st)
	}
}
