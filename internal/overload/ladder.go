package overload

import "time"

// Ladder maps a load signal to a degradation tier. The signal is a
// duration: the smoothed admission queue delay for an RPC server, or the
// pending compute backlog for the simulated surrogate — either way, "how
// long new work will wait before it runs". Thresholds are inclusive lower
// bounds; a zero threshold disables that rung (and a zero RejectAt ladder
// never rejects).
//
// This is the server-side mirror of the transport's Figure 4 behaviour:
// as load rises the answer gets cheaper (full -> features-only -> cached
// pose) before anyone is refused, and refusal is immediate rather than a
// timeout the client discovers 75 ms too late.
type Ladder struct {
	// DegradeAt: backlog at which answers drop to TierFeatures.
	DegradeAt time.Duration
	// CacheAt: backlog at which answers drop to TierCached.
	CacheAt time.Duration
	// RejectAt: backlog at which new work is refused outright.
	RejectAt time.Duration
}

// DefaultLadder derives a ladder from a latency budget (e.g. the paper's
// 75 ms RTT budget, or an RPC deadline): degrade at a quarter of the
// budget, serve from cache at half, reject once the backlog alone would
// consume the whole budget.
func DefaultLadder(budget time.Duration) Ladder {
	return Ladder{
		DegradeAt: budget / 4,
		CacheAt:   budget / 2,
		RejectAt:  budget,
	}
}

// Enabled reports whether any rung is configured.
func (l Ladder) Enabled() bool {
	return l.DegradeAt > 0 || l.CacheAt > 0 || l.RejectAt > 0
}

// Tier picks the response tier for the given load signal.
func (l Ladder) Tier(load time.Duration) Tier {
	switch {
	case l.RejectAt > 0 && load >= l.RejectAt:
		return TierReject
	case l.CacheAt > 0 && load >= l.CacheAt:
		return TierCached
	case l.DegradeAt > 0 && load >= l.DegradeAt:
		return TierFeatures
	default:
		return TierFull
	}
}
