package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram accumulates non-negative int64 observations (durations are
// recorded in nanoseconds) into log-spaced buckets: four sub-buckets per
// power of two, bounding the relative quantile error at ~12.5%. All
// operations are lock-free; Observe is a single atomic add plus a CAS for
// the exact maximum.
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// Four sub-buckets for each of the 64 octaves. Buckets 0..3 hold the exact
// small values 0..3; octave k >= 2 maps to buckets 4k..4k+3.
const numBuckets = 256

func bucketOf(v int64) int {
	if v < 4 {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	k := bits.Len64(uint64(v)) - 1        // 2^k <= v < 2^(k+1), k >= 2
	sub := int((uint64(v) >> (k - 2)) & 3) // two significant bits below the top
	return 4*k + sub
}

// bucketMid returns a representative value for bucket b (the midpoint of
// its range).
func bucketMid(b int) int64 {
	if b < 4 {
		return int64(b)
	}
	k := b / 4
	sub := int64(b % 4)
	lo := int64(1)<<k + sub<<(k-2)
	width := int64(1) << (k - 2)
	return lo + width/2
}

// Observe records one value (negatives clamp to zero).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count reports the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum reports the running sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max reports the exact largest observation (0 when empty).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Quantile estimates the q-th quantile (0 <= q <= 1) by nearest rank over
// the buckets. The estimate is capped at the exact maximum; an empty
// histogram reports 0.
func (h *Histogram) Quantile(q float64) int64 {
	return h.Snapshot().Quantile(q)
}

// HistSnapshot is a consistent-enough copy of a histogram for export: the
// buckets are loaded one by one, so observations racing the snapshot may
// be partially visible, which is fine for monitoring.
type HistSnapshot struct {
	Buckets [numBuckets]int64
	Count   int64
	Sum     int64
	Max     int64
}

// Snapshot copies the current state.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	return s
}

// Quantile estimates the q-th quantile of the snapshot.
func (s HistSnapshot) Quantile(q float64) int64 {
	var total int64
	for _, b := range s.Buckets {
		total += b
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for b, n := range s.Buckets {
		cum += n
		if cum >= rank {
			v := bucketMid(b)
			if v > s.Max {
				v = s.Max
			}
			return v
		}
	}
	return s.Max
}

// Mean reports the arithmetic mean (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
