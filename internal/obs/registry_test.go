package obs

import (
	"strings"
	"testing"
)

func TestRegistryLabelCardinalityCap(t *testing.T) {
	r := NewRegistry()
	r.SetMaxLabelSets(2)

	a := r.Counter("reqs_total", L("session", "a"))
	b := r.Counter("reqs_total", L("session", "b"))
	a.Add(1)
	b.Add(2)
	if r.DroppedLabelSets() != 0 {
		t.Fatalf("cap fired under the limit: dropped=%d", r.DroppedLabelSets())
	}

	// Third label set: detached but still a working instrument.
	c := r.Counter("reqs_total", L("session", "c"))
	c.Add(40)
	if c.Value() != 40 {
		t.Fatalf("detached counter value = %d, want 40", c.Value())
	}
	if r.DroppedLabelSets() != 1 {
		t.Fatalf("dropped = %d, want 1", r.DroppedLabelSets())
	}

	// Existing sets keep resolving to the same instruments.
	if again := r.Counter("reqs_total", L("session", "a")); again != a {
		t.Fatal("existing label set no longer resolves to its instrument")
	}
	// The refused set stays refused: a fresh detached instrument each time.
	c2 := r.Counter("reqs_total", L("session", "c"))
	if c2 == c {
		t.Fatal("refused label set got registered on retry")
	}
	if r.DroppedLabelSets() != 2 {
		t.Fatalf("dropped = %d after retry, want 2", r.DroppedLabelSets())
	}

	// Unlabeled metrics are never capped, and other families are
	// independent.
	r.Counter("unlabeled_total").Inc()
	r.Gauge("depth", L("q", "x")).Set(1)
	r.Gauge("depth", L("q", "y")).Set(2)
	if r.DroppedLabelSets() != 2 {
		t.Fatalf("unrelated metrics tripped the cap: dropped=%d", r.DroppedLabelSets())
	}

	var sb strings.Builder
	if err := WritePrometheus(&sb, r); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, `session="c"`) {
		t.Errorf("export contains the capped label set:\n%s", out)
	}
	for _, want := range []string{
		`reqs_total{session="a"} 1`,
		`reqs_total{session="b"} 2`,
		"obs_dropped_labels_total 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryDropCounterCoexistsWithUserMetric(t *testing.T) {
	r := NewRegistry()
	// A user registers the drop-counter name before the cap ever fires:
	// the cap must reuse that counter, not panic on a kind clash.
	user := r.Counter(droppedLabelsMetric)
	r.SetMaxLabelSets(1)
	r.Counter("f", L("x", "1")).Inc()
	r.Counter("f", L("x", "2")).Inc()
	if user.Value() != 1 {
		t.Fatalf("pre-registered drop counter = %d, want 1", user.Value())
	}
	if r.DroppedLabelSets() != 1 {
		t.Fatalf("DroppedLabelSets = %d, want 1", r.DroppedLabelSets())
	}
}
