package obs

import (
	"testing"
	"time"
)

// sloTestConfig: objective 0.9 (10% miss budget), 100 ms slots, 500 ms
// fast window, 2 s slow window, burn thresholds 3 and 1.5, 5-sample
// floor. A 50% miss rate burns at 5.0 — over both thresholds.
func sloTestConfig(clock *manualClock) SLOConfig {
	return SLOConfig{
		Name: "test", Objective: 0.9,
		Slot:       100 * time.Millisecond,
		FastWindow: 500 * time.Millisecond, SlowWindow: 2 * time.Second,
		FastBurn: 3, SlowBurn: 1.5,
		MinSamples: 5, Cooldown: time.Second, Clock: clock,
	}
}

// near reports |got-want| <= 1e-9: burn rates divide by (1-objective),
// which is not exactly representable.
func near(got, want float64) bool {
	d := got - want
	return d < 1e-9 && d > -1e-9
}

func TestSLONilIsSafe(t *testing.T) {
	var s *SLO
	s.Observe(true)
	s.Observe(false)
	if s.Triggers() != 0 || s.Name() != "" {
		t.Error("nil SLO reported state")
	}
	if st := s.State(); st.HitRatio() != 1 {
		t.Errorf("nil SLO state hit ratio = %v, want 1", st.HitRatio())
	}
}

func TestSLOBurnMath(t *testing.T) {
	clock := newManualClock()
	s := NewSLO(sloTestConfig(clock))
	// 5 hits + 5 misses inside one slot: miss rate 0.5, allowed 0.1,
	// burn 5.0 on both windows.
	for i := 0; i < 5; i++ {
		s.Observe(true)
		s.Observe(false)
	}
	st := s.State()
	if st.Hits != 5 || st.Misses != 5 {
		t.Fatalf("counts = %d/%d, want 5/5", st.Hits, st.Misses)
	}
	if !near(st.FastBurn, 5) || !near(st.SlowBurn, 5) {
		t.Fatalf("burn = %v/%v, want 5/5", st.FastBurn, st.SlowBurn)
	}
	if got := st.HitRatio(); got != 0.5 {
		t.Fatalf("hit ratio = %v, want 0.5", got)
	}
}

func TestSLOHealthyTrafficNeverTriggers(t *testing.T) {
	clock := newManualClock()
	s := NewSLO(sloTestConfig(clock))
	// 2% misses against a 10% budget: burn 0.2, far under thresholds.
	for i := 0; i < 500; i++ {
		clock.Advance(2 * time.Millisecond)
		s.Observe(i%50 != 0)
	}
	if n := s.Triggers(); n != 0 {
		t.Fatalf("healthy traffic fired %d triggers", n)
	}
}

func TestSLOTriggerCooldownAndOrdinals(t *testing.T) {
	clock := newManualClock()
	cfg := sloTestConfig(clock)
	var fired []SLOTrigger
	cfg.OnTrigger = func(tr SLOTrigger) { fired = append(fired, tr) }
	s := NewSLO(cfg)

	// Sustained 50% misses: the first qualifying miss triggers, the
	// cooldown swallows the rest of the burst.
	for i := 0; i < 20; i++ {
		clock.Advance(10 * time.Millisecond)
		s.Observe(i%2 == 0)
	}
	if len(fired) != 1 {
		t.Fatalf("burst fired %d triggers, want 1 (cooldown)", len(fired))
	}
	if fired[0].Ordinal != 1 || fired[0].Name != "test" {
		t.Errorf("first trigger = %+v", fired[0])
	}
	if fired[0].FastBurn < 3 || fired[0].SlowBurn < 1.5 {
		t.Errorf("trigger below thresholds: %+v", fired[0])
	}

	// Past the cooldown with erosion still ongoing: a second trigger.
	clock.Advance(cfg.Cooldown)
	for i := 0; i < 20; i++ {
		clock.Advance(10 * time.Millisecond)
		s.Observe(i%2 == 0)
	}
	if len(fired) != 2 {
		t.Fatalf("continued erosion fired %d triggers, want 2", len(fired))
	}
	if fired[1].Ordinal != 2 {
		t.Errorf("second trigger ordinal = %d, want 2", fired[1].Ordinal)
	}
	if s.Triggers() != 2 {
		t.Errorf("Triggers() = %d, want 2", s.Triggers())
	}
}

func TestSLOMinSamplesFloor(t *testing.T) {
	clock := newManualClock()
	s := NewSLO(sloTestConfig(clock))
	// 4 observations, all misses: burn is huge but under the 5-sample
	// floor no trigger may fire.
	for i := 0; i < 4; i++ {
		s.Observe(false)
	}
	if n := s.Triggers(); n != 0 {
		t.Fatalf("%d triggers under the MinSamples floor", n)
	}
	s.Observe(false) // fifth sample crosses the floor
	if n := s.Triggers(); n != 1 {
		t.Fatalf("Triggers = %d after crossing the floor, want 1", n)
	}
}

func TestSLOFastWindowRecovers(t *testing.T) {
	clock := newManualClock()
	s := NewSLO(sloTestConfig(clock))
	for i := 0; i < 10; i++ {
		s.Observe(false)
	}
	// Let the bad slot fall out of the 500 ms fast window, then observe
	// clean traffic: the fast burn must drop to zero.
	clock.Advance(time.Second)
	for i := 0; i < 10; i++ {
		clock.Advance(time.Millisecond)
		s.Observe(true)
	}
	st := s.State()
	if st.FastBurn != 0 {
		t.Fatalf("fast burn = %v after recovery, want 0", st.FastBurn)
	}
	if st.SlowBurn == 0 {
		t.Fatal("slow burn forgot the miss burst still inside its window")
	}
}

func TestSLOParentChaining(t *testing.T) {
	clock := newManualClock()
	pcfg := sloTestConfig(clock)
	pcfg.Name = "global"
	parent := NewSLO(pcfg)
	ccfg := sloTestConfig(clock)
	ccfg.Name = "session"
	ccfg.Parent = parent
	child := NewSLO(ccfg)

	for i := 0; i < 10; i++ {
		clock.Advance(10 * time.Millisecond)
		child.Observe(i%2 == 0)
	}
	ps, cs := parent.State(), child.State()
	if ps.Hits != cs.Hits || ps.Misses != cs.Misses {
		t.Fatalf("parent saw %d/%d, child %d/%d", ps.Hits, ps.Misses, cs.Hits, cs.Misses)
	}
	if parent.Triggers() != 1 || child.Triggers() != 1 {
		t.Fatalf("triggers parent=%d child=%d, want 1/1", parent.Triggers(), child.Triggers())
	}
}

func TestSLOObserveIsAllocationFree(t *testing.T) {
	clock := newManualClock()
	s := NewSLO(sloTestConfig(clock))
	var n int
	if a := testing.AllocsPerRun(4096, func() {
		n++
		s.Observe(n%16 != 0)
	}); a != 0 {
		t.Fatalf("Observe allocates %.2f/op, want 0", a)
	}
}

func TestSLOPublishExportsSeries(t *testing.T) {
	clock := newManualClock()
	s := NewSLO(sloTestConfig(clock))
	for i := 0; i < 10; i++ {
		s.Observe(i%2 == 0)
	}
	reg := NewRegistry()
	s.Publish(reg)
	if p, ok := reg.Lookup("mar_slo_frames_total", L("slo", "test")); !ok || p.Value != 10 {
		t.Fatalf("mar_slo_frames_total = %+v ok=%v, want 10", p, ok)
	}
	if p, ok := reg.Lookup("mar_slo_misses_total", L("slo", "test")); !ok || p.Value != 5 {
		t.Fatalf("mar_slo_misses_total = %+v ok=%v, want 5", p, ok)
	}
	if p, ok := reg.Lookup("mar_slo_burn_rate", L("slo", "test"), L("window", "fast")); !ok || !near(p.Value, 5) {
		t.Fatalf("fast burn gauge = %+v ok=%v, want 5", p, ok)
	}
}
