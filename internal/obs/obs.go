// Package obs is the unified observability layer for the MAR stack: a
// zero-dependency metrics registry (lock-free counters, gauges and
// log-bucketed histograms, all with label support), span-based frame
// tracing whose context rides the ARTP wire header, and motion-to-photon
// budget attribution against the paper's 75 ms end-to-end bound
// (Section III-B, Table II).
//
// The paper's central quantitative claim is a hard latency budget spent
// across capture, uplink, server queueing and compute, and downlink. After
// the chaos (PR 1) and overload (PR 2) layers, the stack can shed,
// degrade, retry, hedge and fail over — none of which can be operated
// blind. This package is the one pipe every layer reports through:
//
//   - Registry: named counters/gauges/histograms with labels, plus
//     CounterFunc/GaugeFunc adapters that publish the pre-existing
//     snapshot structs (rpc.ServerStats, overload.GateStats, ...) without
//     rewriting their hot paths.
//   - Tracer/Span: per-frame spans stitched across process boundaries by
//     the trace ID + parent span ID carried in wire v3 frame headers.
//     Tracing off costs nothing: the disabled fast path allocates nothing
//     and every Span method is nil-safe.
//   - BudgetReport/BudgetTracker: per-frame attribution of the 75 ms
//     budget to queue wait, server compute, network (SRTT/2 each way),
//     serialization/pacing, and retry/hedge overhead, with counters for
//     budget-blown frames by dominant stage.
//   - HTTP export: Prometheus text format on /metrics, expvar-style JSON
//     on /metrics.json, and /healthz backed by the serving path's health
//     probe.
//
// Everything here is safe for concurrent use unless documented otherwise.
package obs

import (
	"math"
	"sync/atomic"
)

func floatBits(f float64) uint64  { return math.Float64bits(f) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }

// Counter is a lock-free monotonically increasing counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value reports the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a lock-free instantaneous value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(floatBits(v)) }

// Add adjusts the gauge by delta using a CAS loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, floatBits(bitsFloat(old)+delta)) {
			return
		}
	}
}

// Value reports the current value.
func (g *Gauge) Value() float64 { return bitsFloat(g.bits.Load()) }
