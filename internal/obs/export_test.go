package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("frames_total", L("stream", "video")).Add(3)
	r.Gauge("queue_depth").Set(1.5)
	h := r.Histogram("latency_ns")
	h.Observe(1000)
	h.Observe(2000)

	var b strings.Builder
	if err := WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE frames_total counter",
		`frames_total{stream="video"} 3`,
		"# TYPE queue_depth gauge",
		"queue_depth 1.5",
		"# TYPE latency_ns summary",
		`latency_ns{quantile="0.5"}`,
		"latency_ns_sum 3000",
		"latency_ns_count 2",
		"latency_ns_max 2000",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteExpvarIsValidJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc()
	r.Histogram("h", L("x", `quo"te`)).Observe(5)
	var b strings.Builder
	if err := WriteExpvar(&b, r); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(b.String()), &m); err != nil {
		t.Fatalf("expvar output is not valid JSON: %v\n%s", err, b.String())
	}
	if m["a"] != float64(1) {
		t.Fatalf("a = %v, want 1", m["a"])
	}
}

func TestMuxEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_total").Add(12)
	healthy := true
	mux := NewMux(func() (string, bool) { return "degraded", healthy }, r)

	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "served_total 12") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	if code, body := get("/metrics.json"); code != 200 || !strings.Contains(body, `"served_total": 12`) {
		t.Fatalf("/metrics.json = %d %q", code, body)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "degraded") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	healthy = false
	if code, _ := get("/healthz"); code != 503 {
		t.Fatalf("/healthz while unhealthy = %d, want 503", code)
	}
}
