package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("frames_total", L("stream", "video")).Add(3)
	r.Gauge("queue_depth").Set(1.5)
	h := r.Histogram("latency_ns")
	h.Observe(1000)
	h.Observe(2000)

	var b strings.Builder
	if err := WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE frames_total counter",
		`frames_total{stream="video"} 3`,
		"# TYPE queue_depth gauge",
		"queue_depth 1.5",
		"# TYPE latency_ns summary",
		`latency_ns{quantile="0.5"}`,
		"latency_ns_sum 3000",
		"latency_ns_count 2",
		"latency_ns_max 2000",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

// Two registries holding identical state registered in opposite orders
// must scrape byte-identically — and a rescrape of unchanged state must
// reproduce the exact bytes. CI depends on this: scrape diffs mean state
// diffs.
func TestWritePrometheusDeterministicAcrossRegistrationOrder(t *testing.T) {
	build := func(reverse bool) *Registry {
		r := NewRegistry()
		ops := []func(){
			func() { r.Counter("zz_total", L("s", "b")).Add(2) },
			func() { r.Counter("zz_total", L("s", "a")).Add(1) },
			func() { r.Gauge("mid_depth").Set(3.5) },
			func() { r.Counter("aa_total").Add(7) },
			func() { r.Histogram("lat_ns", L("leg", "x")).Observe(100) },
		}
		if reverse {
			for i := len(ops) - 1; i >= 0; i-- {
				ops[i]()
			}
		} else {
			for _, op := range ops {
				op()
			}
		}
		return r
	}
	scrape := func(r *Registry) string {
		var sb strings.Builder
		if err := WritePrometheus(&sb, r); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	fwd, rev := build(false), build(true)
	a, b := scrape(fwd), scrape(rev)
	if a != b {
		t.Fatalf("registration order leaked into the scrape:\n--- forward\n%s--- reverse\n%s", a, b)
	}
	if again := scrape(fwd); again != a {
		t.Fatalf("rescrape of unchanged state differs:\n--- first\n%s--- second\n%s", a, again)
	}
	// Sorted exposition means each family appears exactly once as a TYPE
	// line, with names in lexicographic order.
	var typeLines []string
	for _, line := range strings.Split(a, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			typeLines = append(typeLines, line)
		}
	}
	want := []string{
		"# TYPE aa_total counter",
		"# TYPE lat_ns summary",
		"# TYPE mid_depth gauge",
		"# TYPE zz_total counter",
	}
	if len(typeLines) != len(want) {
		t.Fatalf("TYPE lines = %v, want %v", typeLines, want)
	}
	for i := range want {
		if typeLines[i] != want[i] {
			t.Errorf("TYPE line %d = %q, want %q", i, typeLines[i], want[i])
		}
	}
}

func TestWriteExpvarDeterministicAcrossRegistrationOrder(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("x_total", L("k", "1")).Inc()
	a.Counter("x_total", L("k", "2")).Inc()
	b.Counter("x_total", L("k", "2")).Inc()
	b.Counter("x_total", L("k", "1")).Inc()
	scrape := func(r *Registry) string {
		var sb strings.Builder
		if err := WriteExpvar(&sb, r); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if sa, sb_ := scrape(a), scrape(b); sa != sb_ {
		t.Fatalf("expvar export depends on registration order:\n%s\nvs\n%s", sa, sb_)
	}
}

func TestWriteExpvarIsValidJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc()
	r.Histogram("h", L("x", `quo"te`)).Observe(5)
	var b strings.Builder
	if err := WriteExpvar(&b, r); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(b.String()), &m); err != nil {
		t.Fatalf("expvar output is not valid JSON: %v\n%s", err, b.String())
	}
	if m["a"] != float64(1) {
		t.Fatalf("a = %v, want 1", m["a"])
	}
}

func TestMuxEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_total").Add(12)
	healthy := true
	mux := NewMux(func() (string, bool) { return "degraded", healthy }, r)

	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "served_total 12") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	if code, body := get("/metrics.json"); code != 200 || !strings.Contains(body, `"served_total": 12`) {
		t.Fatalf("/metrics.json = %d %q", code, body)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "degraded") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	healthy = false
	if code, _ := get("/healthz"); code != 503 {
		t.Fatalf("/healthz while unhealthy = %d, want 503", code)
	}
}
