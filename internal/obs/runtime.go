package obs

// The runtime surface: Go runtime introspection (goroutines, heap, GC
// pauses, scheduler latency) published as registry gauges, the standard
// /debug/pprof handlers attached to the obs mux, and the HTTP dump
// endpoints for flight-recorder snapshots. Together with /metrics this
// makes the obs mux the one port to point at a live MAR server to answer
// "what is it doing and why was frame N late".

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/metrics"
	"sort"
	"sync"
	"time"
)

// AttachPprof registers the standard runtime profiling handlers
// (/debug/pprof/, .../cmdline, .../profile, .../symbol, .../trace) on
// mux. CPU profiles, heap profiles, goroutine dumps and execution traces
// then come from the same port as /metrics.
func AttachPprof(mux *http.ServeMux) {
	if mux == nil {
		return
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// runtimeSampler caches one runtime/metrics read so a scrape touching
// several gauges pays for a single Read instead of one per gauge.
type runtimeSampler struct {
	mu      sync.Mutex
	samples []metrics.Sample
	byName  map[string]int
	readAt  time.Time
}

// runtimeSampleTTL: gauges read within this window share one sample set.
// Wall-clock on purpose — the runtime surface describes the real process,
// never simulated time.
const runtimeSampleTTL = 100 * time.Millisecond

var runtimeMetricNames = []string{
	"/sched/latencies:seconds",
	"/gc/pauses:seconds",
	"/memory/classes/heap/objects:bytes",
	"/memory/classes/total:bytes",
	"/gc/cycles/total:gc-cycles",
}

func newRuntimeSampler() *runtimeSampler {
	s := &runtimeSampler{byName: make(map[string]int, len(runtimeMetricNames))}
	s.samples = make([]metrics.Sample, len(runtimeMetricNames))
	for i, n := range runtimeMetricNames {
		s.samples[i].Name = n
		s.byName[n] = i
	}
	return s
}

// refreshLocked re-reads the runtime metrics when the cache is stale.
func (s *runtimeSampler) refreshLocked() {
	if time.Since(s.readAt) < runtimeSampleTTL {
		return
	}
	metrics.Read(s.samples)
	s.readAt = time.Now()
}

// uint64At returns the named metric's uint64 value (0 when unsupported).
func (s *runtimeSampler) uint64At(name string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.refreshLocked()
	v := s.samples[s.byName[name]].Value
	if v.Kind() != metrics.KindUint64 {
		return 0
	}
	return v.Uint64()
}

// quantileAt estimates quantile q of the named float64-histogram metric,
// in seconds (0 when unsupported or empty).
func (s *runtimeSampler) quantileAt(name string, q float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.refreshLocked()
	v := s.samples[s.byName[name]].Value
	if v.Kind() != metrics.KindFloat64Histogram {
		return 0
	}
	h := v.Float64Histogram()
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= rank {
			// Bucket i spans Buckets[i]..Buckets[i+1]; use the upper edge
			// (conservative for tail latency; the first/last buckets can
			// be infinite, fall back to the finite edge).
			hi := h.Buckets[i+1]
			if hi > 1e9 || hi != hi { // +Inf or NaN guard
				hi = h.Buckets[i]
			}
			return hi
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

// PublishRuntimeMetrics registers Go runtime gauges on the registry:
// goroutine count, heap bytes (live objects and total reserved), GC
// cycles, and the p50/p99 of the runtime's GC-pause and scheduler-latency
// histograms in nanoseconds. Values refresh per scrape (with a 100 ms
// cache so one scrape is one runtime/metrics read).
func PublishRuntimeMetrics(reg *Registry, labels ...Label) {
	if reg == nil {
		return
	}
	s := newRuntimeSampler()
	reg.GaugeFunc("mar_go_goroutines", func() float64 { return float64(runtime.NumGoroutine()) }, labels...)
	reg.GaugeFunc("mar_go_heap_live_bytes", func() float64 {
		return float64(s.uint64At("/memory/classes/heap/objects:bytes"))
	}, labels...)
	reg.GaugeFunc("mar_go_mem_total_bytes", func() float64 {
		return float64(s.uint64At("/memory/classes/total:bytes"))
	}, labels...)
	reg.CounterFunc("mar_go_gc_cycles_total", func() int64 {
		return int64(s.uint64At("/gc/cycles/total:gc-cycles"))
	}, labels...)
	for _, m := range []struct {
		name, metric string
	}{
		{"mar_go_gc_pause_ns", "/gc/pauses:seconds"},
		{"mar_go_sched_latency_ns", "/sched/latencies:seconds"},
	} {
		metric := m.metric
		p50 := append(append([]Label(nil), labels...), L("quantile", "0.5"))
		p99 := append(append([]Label(nil), labels...), L("quantile", "0.99"))
		reg.GaugeFunc(m.name, func() float64 { return s.quantileAt(metric, 0.50) * 1e9 }, p50...)
		reg.GaugeFunc(m.name, func() float64 { return s.quantileAt(metric, 0.99) * 1e9 }, p99...)
	}
}

// flightDump is the /debug/flight JSON shape for one recorder.
type flightDump struct {
	Session    string      `json:"session"`
	Recorded   uint64      `json:"recorded"`
	Suppressed int64       `json:"suppressed"`
	Snapshots  []*Snapshot `json:"snapshots"`
	Live       []Event     `json:"live,omitempty"`
}

// AttachFlightRecorders serves flight-recorder state on mux:
//
//	GET /debug/flight            frozen snapshots of every recorder
//	GET /debug/flight?live=1     additionally the live ring contents
//	GET /debug/flight?session=S  only the recorder(s) labeled S
//
// Recorders are read live on every request; nil recorders are skipped.
func AttachFlightRecorders(mux *http.ServeMux, frs ...*FlightRecorder) {
	if mux == nil {
		return
	}
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, req *http.Request) {
		want := req.URL.Query().Get("session")
		live := req.URL.Query().Get("live") != ""
		dumps := make([]flightDump, 0, len(frs))
		for _, fr := range frs {
			if fr == nil || (want != "" && fr.Session() != want) {
				continue
			}
			d := flightDump{
				Session:    fr.Session(),
				Recorded:   fr.Recorded(),
				Suppressed: fr.Suppressed(),
				Snapshots:  fr.Snapshots(),
			}
			if d.Snapshots == nil {
				d.Snapshots = []*Snapshot{}
			}
			if live {
				d.Live = fr.Events()
			}
			dumps = append(dumps, d)
		}
		sort.Slice(dumps, func(i, j int) bool { return dumps[i].Session < dumps[j].Session })
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(dumps) //nolint:errcheck // client went away
	})
}

// NewDebugMux is NewMux plus the deep-diagnosis surface: /debug/pprof/*,
// /debug/flight, and the runtime gauges registered on the first registry
// (when one is given). It is the one-call setup for a serving process:
//
//	mux := obs.NewDebugMux(health, []*obs.FlightRecorder{rec}, reg)
//	go http.ListenAndServe(":9090", mux)
func NewDebugMux(health HealthFunc, recorders []*FlightRecorder, regs ...*Registry) *http.ServeMux {
	mux := NewMux(health, regs...)
	AttachPprof(mux)
	AttachFlightRecorders(mux, recorders...)
	if len(regs) > 0 && regs[0] != nil {
		PublishRuntimeMetrics(regs[0])
	}
	return mux
}
