package obs

import (
	"strings"
	"testing"
	"time"
)

func report(total time.Duration) BudgetReport {
	return BudgetReport{
		Trace:     1,
		Budget:    DefaultBudget,
		Total:     total,
		Queue:     total / 6,
		Compute:   total / 6,
		NetUp:     total / 6,
		NetDown:   total / 6,
		Serialize: total / 6,
		Overhead:  total - 5*(total/6),
		Attempts:  1,
	}
}

func TestBudgetReportInvariants(t *testing.T) {
	r := report(60 * time.Millisecond)
	if r.Sum() != r.Total {
		t.Fatalf("stage sum %v != total %v", r.Sum(), r.Total)
	}
	if r.Blown() {
		t.Fatal("60ms under a 75ms budget is not blown")
	}
	r = report(90 * time.Millisecond)
	if !r.Blown() {
		t.Fatal("90ms over a 75ms budget is blown")
	}
	r.Compute = 40 * time.Millisecond
	if dom := r.Dominant(); dom.Name != StageCompute {
		t.Fatalf("dominant = %q, want %q", dom.Name, StageCompute)
	}
	if s := r.String(); !strings.Contains(s, "BLOWN") || !strings.Contains(s, StageQueue) {
		t.Fatalf("String() = %q", s)
	}
	if (BudgetReport{}).Blown() {
		t.Fatal("zero budget means unbounded")
	}
}

func TestBudgetTracker(t *testing.T) {
	reg := NewRegistry()
	bt := NewBudgetTracker(75*time.Millisecond, reg, L("client", "a"))
	bt.Observe(report(50 * time.Millisecond))
	bt.Observe(report(100 * time.Millisecond))
	over := report(100 * time.Millisecond)
	over.Queue = 90 * time.Millisecond
	bt.Observe(over)

	if bt.Frames() != 3 || bt.Blown() != 2 {
		t.Fatalf("frames=%d blown=%d, want 3/2", bt.Frames(), bt.Blown())
	}
	by := bt.BlownByStage()
	if by[StageQueue] != 1 || by[StageOverhead] != 1 {
		t.Fatalf("blown by stage = %v", by)
	}
	if got := len(bt.Reports()); got != 3 {
		t.Fatalf("reports retained = %d, want 3", got)
	}
	// The registry sees the same numbers.
	if p, ok := reg.Lookup("mar_budget_blown_total", L("client", "a")); !ok || p.Value != 2 {
		t.Fatalf("registry blown = %+v ok=%v, want 2", p, ok)
	}
	if p, ok := reg.Lookup("mar_budget_stage_ns", L("client", "a"), L("stage", StageQueue)); !ok || p.Hist == nil || p.Hist.Count != 3 {
		t.Fatalf("stage histogram = %+v ok=%v", p, ok)
	}

	// Nil tracker: all no-ops.
	var nilBT *BudgetTracker
	nilBT.Observe(report(time.Millisecond))
	if nilBT.Frames() != 0 || nilBT.Reports() != nil || nilBT.Budget() != 0 {
		t.Fatal("nil tracker must be inert")
	}
}

func TestBudgetTrackerRing(t *testing.T) {
	bt := NewBudgetTracker(time.Second, nil)
	for i := 0; i < DefaultReportCapacity+10; i++ {
		r := report(time.Duration(i+1) * time.Microsecond)
		bt.Observe(r)
	}
	reps := bt.Reports()
	if len(reps) != DefaultReportCapacity {
		t.Fatalf("ring holds %d, want %d", len(reps), DefaultReportCapacity)
	}
	if reps[0].Total != 11*time.Microsecond {
		t.Fatalf("oldest retained = %v, want 11µs", reps[0].Total)
	}
	if last := reps[len(reps)-1].Total; last != time.Duration(DefaultReportCapacity+10)*time.Microsecond {
		t.Fatalf("newest retained = %v", last)
	}
}
