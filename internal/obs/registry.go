package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Label is one name=value dimension attached to a metric.
type Label struct {
	Key, Value string
}

// L builds a label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind discriminates what a registry entry measures.
type Kind int

// Metric kinds.
const (
	KindCounter Kind = iota + 1
	KindGauge
	KindHistogram
	KindCounterFunc
	KindGaugeFunc
)

func (k Kind) String() string {
	switch k {
	case KindCounter, KindCounterFunc:
		return "counter"
	case KindGauge, KindGaugeFunc:
		return "gauge"
	case KindHistogram:
		return "summary"
	}
	return "untyped"
}

type entry struct {
	name   string
	labels []Label
	kind   Kind

	c  *Counter
	g  *Gauge
	h  *Histogram
	cf func() int64
	gf func() float64
}

// Registry is a named metric store. The same name+labels always resolves
// to the same instrument; registering an existing name with a different
// kind panics (a programming error, like registering two flags with one
// name). Func-backed entries may be re-registered, replacing the callback
// — components that publish a live snapshot struct use this to survive
// reconstruction.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*entry
	order   []string // insertion order, for stable export
	// Label-cardinality cap: at fleet scale a per-session label would
	// otherwise grow the registry without bound. families counts distinct
	// label sets per metric name; once a family reaches maxSets, further
	// NEW label sets get detached (unregistered) instruments and the
	// obs_dropped_labels_total counter ticks. Existing label sets keep
	// resolving normally, and unlabeled metrics are never capped.
	maxSets  int
	families map[string]int
	dropped  *Counter
}

// DefaultMaxLabelSets is the per-family label-set cap a fresh registry
// starts with.
const DefaultMaxLabelSets = 1024

// droppedLabelsMetric counts label sets refused by the cardinality cap.
const droppedLabelsMetric = "obs_dropped_labels_total"

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		entries:  make(map[string]*entry),
		maxSets:  DefaultMaxLabelSets,
		families: make(map[string]int),
	}
}

// SetMaxLabelSets adjusts the per-family label-set cap (n <= 0 restores
// the default). Lowering the cap does not evict existing label sets; it
// only refuses new ones.
func (r *Registry) SetMaxLabelSets(n int) {
	if n <= 0 {
		n = DefaultMaxLabelSets
	}
	r.mu.Lock()
	r.maxSets = n
	r.mu.Unlock()
}

// DroppedLabelSets reports how many label sets the cardinality cap has
// refused.
func (r *Registry) DroppedLabelSets() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.dropped == nil {
		return 0
	}
	return r.dropped.Value()
}

// dropLocked accounts one refused label set (registering the drop counter
// itself on first use — it is unlabeled, so never capped).
func (r *Registry) dropLocked() {
	if r.dropped == nil {
		if e := r.entries[droppedLabelsMetric]; e != nil && e.kind == KindCounter {
			r.dropped = e.c
		} else {
			e := &entry{name: droppedLabelsMetric, kind: KindCounter, c: &Counter{}}
			r.entries[droppedLabelsMetric] = e
			r.order = append(r.order, droppedLabelsMetric)
			r.dropped = e.c
		}
	}
	r.dropped.Inc()
}

var defaultRegistry = NewRegistry()

// Default is the process-wide registry.
func Default() *Registry { return defaultRegistry }

// key renders the unique identity of name+labels. Labels are sorted so
// the same set in any order is one metric.
func key(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

func (r *Registry) get(name string, kind Kind, labels []Label) *entry {
	k := key(name, labels)
	r.mu.RLock()
	e := r.entries[k]
	r.mu.RUnlock()
	if e != nil {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", k, kind, e.kind))
		}
		return e
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e = r.entries[k]; e != nil {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", k, kind, e.kind))
		}
		return e
	}
	e = &entry{name: name, labels: append([]Label(nil), labels...), kind: kind}
	switch kind {
	case KindCounter:
		e.c = &Counter{}
	case KindGauge:
		e.g = &Gauge{}
	case KindHistogram:
		e.h = &Histogram{}
	}
	if len(labels) > 0 && r.families[name] >= r.maxSets {
		// Cardinality cap: hand back a working but unregistered
		// instrument — writers keep a valid sink, the export stays
		// bounded, and the drop is visible on obs_dropped_labels_total.
		r.dropLocked()
		return e
	}
	if len(labels) > 0 {
		r.families[name]++
	}
	r.entries[k] = e
	r.order = append(r.order, k)
	return e
}

// Counter returns the counter for name+labels, creating it on first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return r.get(name, KindCounter, labels).c
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	return r.get(name, KindGauge, labels).g
}

// Histogram returns the histogram for name+labels, creating it on first
// use.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	return r.get(name, KindHistogram, labels).h
}

// CounterFunc registers (or replaces) a callback-backed counter — the
// adapter that exposes a pre-existing snapshot field through the registry
// without moving the counter itself.
func (r *Registry) CounterFunc(name string, fn func() int64, labels ...Label) {
	e := r.get(name, KindCounterFunc, labels)
	r.mu.Lock()
	e.cf = fn
	r.mu.Unlock()
}

// GaugeFunc registers (or replaces) a callback-backed gauge.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {
	e := r.get(name, KindGaugeFunc, labels)
	r.mu.Lock()
	e.gf = fn
	r.mu.Unlock()
}

// Point is one exported sample.
type Point struct {
	Name   string
	Labels []Label
	Kind   Kind
	Value  float64       // counters, gauges and funcs
	Hist   *HistSnapshot // histograms only
}

// Gather snapshots every metric in registration order. Func-backed
// entries are invoked without registry locks held beyond the map read, so
// callbacks may take their component's own locks.
func (r *Registry) Gather() []Point {
	r.mu.RLock()
	es := make([]*entry, 0, len(r.order))
	for _, k := range r.order {
		es = append(es, r.entries[k])
	}
	r.mu.RUnlock()

	pts := make([]Point, 0, len(es))
	for _, e := range es {
		p := Point{Name: e.name, Labels: e.labels, Kind: e.kind}
		switch e.kind {
		case KindCounter:
			p.Value = float64(e.c.Value())
		case KindGauge:
			p.Value = e.g.Value()
		case KindHistogram:
			s := e.h.Snapshot()
			p.Hist = &s
		case KindCounterFunc:
			r.mu.RLock()
			fn := e.cf
			r.mu.RUnlock()
			if fn != nil {
				p.Value = float64(fn())
			}
		case KindGaugeFunc:
			r.mu.RLock()
			fn := e.gf
			r.mu.RUnlock()
			if fn != nil {
				p.Value = fn()
			}
		}
		pts = append(pts, p)
	}
	return pts
}

// Lookup returns the gathered point for name+labels (ok=false when the
// metric does not exist). Tests use it to compare exported values against
// legacy snapshot structs.
func (r *Registry) Lookup(name string, labels ...Label) (Point, bool) {
	k := key(name, labels)
	r.mu.RLock()
	_, exists := r.entries[k]
	r.mu.RUnlock()
	if !exists {
		return Point{}, false
	}
	for _, p := range r.Gather() {
		if key(p.Name, p.Labels) == k {
			return p, true
		}
	}
	return Point{}, false
}
