package obs

// The flight recorder is the stack's black box: a fixed-size, allocation-
// flat ring of compact binary events fed by the wire datapath, the adapt
// controller, the rpc client and the overload gate through nil-safe hooks
// that cost ~1 ns when no recorder is installed. In steady state it only
// overwrites its own ring; when something goes wrong — a traced call blows
// the 75 ms budget, a session resets, a path dies, or the SLO engine
// detects hit-rate erosion — Freeze copies the last Window worth of events
// into an immutable Snapshot that can be dumped as JSON over HTTP,
// serialized to a compact binary form, or rendered as a text timeline into
// a marsim scenario trace. All timestamps are durations since the
// recorder's epoch on its injected clock, so a recorder on virtual time
// produces byte-identical snapshots for the same seed.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"marnet/internal/vclock"
)

// EventKind discriminates flight-recorder events. The A/B/C payload
// fields are kind-specific; the conventions are documented per kind and
// rendered by Snapshot.Timeline.
type EventKind uint8

// Event kinds. The zero kind is invalid (it marks empty ring slots).
const (
	// EvFrameSend: first transmission of a wire frame.
	// A=stream, B=seq (low 32 bits), C=wire bytes.
	EvFrameSend EventKind = iota + 1
	// EvFrameRetransmit: a reliable frame went out again.
	// Flag=attempt (retx count), A=stream, B=seq, C=wire bytes.
	EvFrameRetransmit
	// EvFrameAck: the peer acknowledged a frame.
	// A=stream, B=seq, C=sampled RTT in microseconds.
	EvFrameAck
	// EvFrameLost: the loss detector declared a frame lost.
	// Flag=retx count so far, A=stream, B=seq.
	EvFrameLost
	// EvAdaptMove: the degradation controller switched payload mode.
	// Flag=1 when the move was an upgrade probe, A=from<<8|to,
	// B=controller tick, C=miss-EWMA in ppm.
	EvAdaptMove
	// EvRetxSwitch: the ARQ/FEC affordability switch flipped.
	// Flag=1 for ARQ (retransmit on), 0 for FEC, C=SRTT in microseconds.
	EvRetxSwitch
	// EvPathState: a multipath subflow changed state.
	// Flag=new state, A=path index, C=path SRTT in microseconds.
	EvPathState
	// EvOverloadVerdict: the admission gate refused a request.
	// Flag=verdict, A=method, C=queue delay in microseconds.
	EvOverloadVerdict
	// EvBudgetSplit: one traced call's budget attribution landed.
	// Flag=1 when the budget was blown, A=dominant stage index
	// (StageIndex), B=total in microseconds, C=dominant stage's share in
	// microseconds.
	EvBudgetSplit
	// EvSessionReset: the session layer began a resume after a dead-peer
	// verdict. B=reconnect ordinal.
	EvSessionReset
	// EvSLOTrigger: the SLO engine's multi-window burn-rate alert fired.
	// B=fast burn ×1000, C=slow burn ×1000.
	EvSLOTrigger

	evKindEnd // sentinel: first invalid kind
)

var evKindNames = [...]string{
	EvFrameSend:       "frame_send",
	EvFrameRetransmit: "frame_retransmit",
	EvFrameAck:        "frame_ack",
	EvFrameLost:       "frame_lost",
	EvAdaptMove:       "adapt_move",
	EvRetxSwitch:      "retx_switch",
	EvPathState:       "path_state",
	EvOverloadVerdict: "overload_verdict",
	EvBudgetSplit:     "budget_split",
	EvSessionReset:    "session_reset",
	EvSLOTrigger:      "slo_trigger",
}

// String names the kind for timelines and JSON dumps.
func (k EventKind) String() string {
	if int(k) < len(evKindNames) && evKindNames[k] != "" {
		return evKindNames[k]
	}
	return fmt.Sprintf("kind_%d", uint8(k))
}

// Event is one recorded moment: a timestamp relative to the recorder's
// epoch plus a kind and three integer payload fields whose meaning is
// fixed per kind. The struct lives by value in the ring, so recording
// never allocates; it is padded to 32 bytes so ring slots never straddle
// cache lines and the store's next-slot prefetch always warms exactly
// the line the next event lands in.
type Event struct {
	At   time.Duration `json:"t_ns"`
	Kind EventKind     `json:"-"`
	Flag uint8         `json:"flag"`
	A    uint16        `json:"a"`
	B    uint32        `json:"b"`
	C    uint64        `json:"c"`
	_    [8]byte
}

// eventJSON is the export shape: the kind goes out by name.
type eventJSON struct {
	At   int64  `json:"t_ns"`
	Kind string `json:"kind"`
	Flag uint8  `json:"flag"`
	A    uint16 `json:"a"`
	B    uint32 `json:"b"`
	C    uint64 `json:"c"`
}

// MarshalJSON renders the event with its kind spelled out.
func (e Event) MarshalJSON() ([]byte, error) {
	j := eventJSON{At: int64(e.At), Kind: e.Kind.String(), Flag: e.Flag, A: e.A, B: e.B, C: e.C}
	return []byte(fmt.Sprintf(`{"t_ns":%d,"kind":%q,"flag":%d,"a":%d,"b":%d,"c":%d}`,
		j.At, j.Kind, j.Flag, j.A, j.B, j.C)), nil
}

// line renders the event as one timeline row.
func (e Event) line() string {
	return fmt.Sprintf("+%dus %s flag=%d a=%d b=%d c=%d",
		e.At.Microseconds(), e.Kind, e.Flag, e.A, e.B, e.C)
}

// RecorderConfig assembles a FlightRecorder.
type RecorderConfig struct {
	// Session labels every snapshot (e.g. the session or endpoint name).
	Session string
	// Capacity is the event ring size (default DefaultRecorderCapacity).
	Capacity int
	// Window is how far back Freeze looks (default DefaultFreezeWindow).
	Window time.Duration
	// Cooldown is the minimum spacing between snapshots, so a storm of
	// triggers yields a bounded series of snapshots instead of thousands
	// of near-duplicates (default Window/2).
	Cooldown time.Duration
	// MaxSnapshots bounds the retained frozen snapshots; the oldest is
	// dropped first (default DefaultMaxSnapshots).
	MaxSnapshots int
	// Clock supplies event timestamps (default the system clock; marsim
	// injects its virtual clock so snapshots are deterministic).
	Clock vclock.Clock
	// OnFreeze observes every snapshot the moment it is taken, without
	// recorder locks held — the hook marsim uses to write the timeline
	// into the scenario trace.
	OnFreeze func(*Snapshot)
}

// Recorder defaults. The default capacity keeps the ring at 64 KB —
// L2-resident on anything modern — so steady-state recording streams
// through cache instead of DRAM; 2048 events still covers the freeze
// window at ~1k events/s, well above a session's steady rate.
const (
	DefaultRecorderCapacity = 2048
	DefaultFreezeWindow     = 2 * time.Second
	DefaultMaxSnapshots     = 8
)

// FlightRecorder is the per-session black box. A nil *FlightRecorder is
// valid and permanently disabled: every method is nil-safe, so
// instrumented code carries no conditionals and pays only a nil check
// (~1 ns) when no recorder is installed.
type FlightRecorder struct {
	// Hot-path fields first: RecordAt touches enabled, epoch, mu, ring,
	// next, wrapped and seq on every event, and keeping them in the
	// struct's leading cache lines (rather than after the ~100-byte cfg)
	// saves a line miss per record on instrumented fast paths.
	mu      sync.Mutex
	next    int
	seq     uint64 // events ever recorded
	ring    []Event
	wrapped bool
	enabled atomic.Bool
	epoch   time.Time

	cfg        RecorderConfig
	clock      vclock.Clock
	frozeOnce  bool
	lastFreeze time.Duration
	snaps      []*Snapshot
	snapsEvic  int64 // snapshots evicted by MaxSnapshots
	suppressed int64 // freezes suppressed by the cooldown
}

// NewFlightRecorder builds an enabled recorder. The ring is allocated
// up front; recording never allocates afterwards.
func NewFlightRecorder(cfg RecorderConfig) *FlightRecorder {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultRecorderCapacity
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultFreezeWindow
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = cfg.Window / 2
	}
	if cfg.MaxSnapshots <= 0 {
		cfg.MaxSnapshots = DefaultMaxSnapshots
	}
	clock := vclock.OrSystem(cfg.Clock)
	r := &FlightRecorder{
		cfg:   cfg,
		clock: clock,
		epoch: clock.Now(),
		ring:  make([]Event, cfg.Capacity),
	}
	r.enabled.Store(true)
	return r
}

// Session reports the recorder's session label ("" when nil).
func (r *FlightRecorder) Session() string {
	if r == nil {
		return ""
	}
	return r.cfg.Session
}

// SetEnabled flips recording (and freezing). Disabled recorders drop
// events without touching the ring.
func (r *FlightRecorder) SetEnabled(on bool) {
	if r != nil {
		r.enabled.Store(on)
	}
}

// Enabled reports whether events are being retained.
func (r *FlightRecorder) Enabled() bool { return r != nil && r.enabled.Load() }

// Record stamps the event with the recorder's clock and stores it. The
// hot path (wire pacing) prefers RecordAt with the time it already holds,
// saving the clock read.
func (r *FlightRecorder) Record(kind EventKind, flag uint8, a uint16, b uint32, c uint64) {
	if r == nil || !r.enabled.Load() {
		return
	}
	r.store(r.clock.Since(r.epoch), kind, flag, a, b, c)
}

// RecordAt stores the event stamped with a caller-supplied instant from
// the same clock the recorder runs on — the zero-extra-clock-read hook
// for paths that already hold "now".
func (r *FlightRecorder) RecordAt(at time.Time, kind EventKind, flag uint8, a uint16, b uint32, c uint64) {
	if r == nil || !r.enabled.Load() {
		return
	}
	r.store(at.Sub(r.epoch), kind, flag, a, b, c)
}

func (r *FlightRecorder) store(at time.Duration, kind EventKind, flag uint8, a uint16, b uint32, c uint64) {
	r.mu.Lock()
	r.ring[r.next] = Event{At: at, Kind: kind, Flag: flag, A: a, B: b, C: c}
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.wrapped = true
	}
	if len(r.ring) > 1 {
		// Zero the slot the NEXT event will land in while its cache line
		// is cheap to own. On instrumented fast paths events arrive
		// microseconds apart, long enough for a cold ring line to fall
		// out of cache between stores; this store-prefetch keeps the next
		// line warm and roughly halves the in-situ cost of a record. It
		// costs one overwritten slot of history once the ring has
		// wrapped (the oldest event), which readers skip as an empty
		// slot.
		r.ring[r.next] = Event{}
	}
	r.seq++
	r.mu.Unlock()
}

// Recorded reports how many events were ever recorded (including those
// the ring has since overwritten).
func (r *FlightRecorder) Recorded() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Events returns a copy of the live ring, oldest first. Diagnostic use
// (the /debug/flight/live dump); Freeze is the structured capture.
func (r *FlightRecorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.eventsLocked(0)
}

// eventsLocked copies ring events with At >= since, oldest first. Zero-
// kind slots are empty (the store-prefetched next slot) and skipped.
func (r *FlightRecorder) eventsLocked(since time.Duration) []Event {
	n, start := r.next, 0
	if r.wrapped {
		n, start = len(r.ring), r.next
	}
	out := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		e := r.ring[(start+i)%len(r.ring)]
		if e.Kind != 0 && e.At >= since {
			out = append(out, e)
		}
	}
	return out
}

// Freeze captures the last Window of events into a snapshot. It returns
// nil when the recorder is disabled, empty, or within the cooldown of the
// previous freeze (suppressed freezes are counted). The OnFreeze hook
// runs without locks held.
func (r *FlightRecorder) Freeze(reason string) *Snapshot {
	if r == nil || !r.enabled.Load() {
		return nil
	}
	now := r.clock.Since(r.epoch)
	r.mu.Lock()
	if r.seq == 0 {
		r.mu.Unlock()
		return nil
	}
	if r.frozeOnce && now-r.lastFreeze < r.cfg.Cooldown {
		r.suppressed++
		r.mu.Unlock()
		return nil
	}
	since := now - r.cfg.Window
	if since < 0 {
		since = 0
	}
	snap := &Snapshot{
		Session: r.cfg.Session,
		Reason:  reason,
		At:      now,
		Seq:     r.seq,
		Events:  r.eventsLocked(since),
	}
	if r.wrapped {
		snap.Overwritten = r.seq - uint64(len(r.ring))
	}
	r.frozeOnce, r.lastFreeze = true, now
	r.snaps = append(r.snaps, snap)
	if len(r.snaps) > r.cfg.MaxSnapshots {
		evict := len(r.snaps) - r.cfg.MaxSnapshots
		r.snaps = append(r.snaps[:0], r.snaps[evict:]...)
		r.snapsEvic += int64(evict)
	}
	hook := r.cfg.OnFreeze
	r.mu.Unlock()
	if hook != nil {
		hook(snap)
	}
	return snap
}

// Snapshots returns the retained frozen snapshots, oldest first.
func (r *FlightRecorder) Snapshots() []*Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Snapshot(nil), r.snaps...)
}

// Suppressed reports how many Freeze calls the cooldown swallowed.
func (r *FlightRecorder) Suppressed() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.suppressed
}

// PublishMetrics registers the recorder's counters on a registry.
func (r *FlightRecorder) PublishMetrics(reg *Registry, labels ...Label) {
	if r == nil || reg == nil {
		return
	}
	ls := append([]Label{L("session", r.cfg.Session)}, labels...)
	reg.CounterFunc("mar_flight_events_total", func() int64 { return int64(r.Recorded()) }, ls...)
	reg.CounterFunc("mar_flight_snapshots_total", func() int64 {
		r.mu.Lock()
		defer r.mu.Unlock()
		return int64(len(r.snaps)) + r.snapsEvic
	}, ls...)
	reg.CounterFunc("mar_flight_freezes_suppressed_total", r.Suppressed, ls...)
}

// Snapshot is one frozen capture: the events of the trigger's trailing
// window plus enough bookkeeping to know what the ring had lost. All
// fields are immutable after Freeze returns.
type Snapshot struct {
	Session string        `json:"session"`
	Reason  string        `json:"reason"`
	At      time.Duration `json:"t_ns"` // freeze instant, since recorder epoch
	Seq     uint64        `json:"seq"`  // events ever recorded at freeze
	// Overwritten counts events lost to ring wrap before this freeze —
	// nonzero means the window may be incomplete at its old end.
	Overwritten uint64  `json:"overwritten"`
	Events      []Event `json:"events"`
}

// Count reports how many snapshot events have the given kind.
func (s *Snapshot) Count(kind EventKind) int {
	if s == nil {
		return 0
	}
	n := 0
	for _, e := range s.Events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// Timeline renders the snapshot as text lines: a header plus one line
// per event. Deterministic for deterministic inputs — marsim writes it
// into scenario traces.
func (s *Snapshot) Timeline() []string {
	if s == nil {
		return nil
	}
	out := make([]string, 0, len(s.Events)+1)
	out = append(out, fmt.Sprintf("snapshot session=%s reason=%s at=+%dus events=%d seq=%d overwritten=%d",
		s.Session, s.Reason, s.At.Microseconds(), len(s.Events), s.Seq, s.Overwritten))
	for _, e := range s.Events {
		out = append(out, "  "+e.line())
	}
	return out
}

// String joins the timeline.
func (s *Snapshot) String() string { return strings.Join(s.Timeline(), "\n") }

// Binary snapshot codec: a compact varint framing for persisting and
// shipping snapshots (and for fuzzing the decoder against hostile input).
//
//	magic "MFR1"
//	uvarint len(session) + bytes, uvarint len(reason) + bytes
//	uvarint at(ns), seq, overwritten, len(events)
//	per event: uvarint t(ns), kind byte, flag byte, uvarint a, b, c
const snapMagic = "MFR1"

// Decode limits: hostile input must not allocate unboundedly.
const (
	maxSnapString = 1 << 10
	maxSnapEvents = 1 << 20
)

// Encode serializes the snapshot.
func (s *Snapshot) Encode() []byte {
	b := make([]byte, 0, 64+24*len(s.Events))
	b = append(b, snapMagic...)
	b = binary.AppendUvarint(b, uint64(len(s.Session)))
	b = append(b, s.Session...)
	b = binary.AppendUvarint(b, uint64(len(s.Reason)))
	b = append(b, s.Reason...)
	b = binary.AppendUvarint(b, uint64(s.At))
	b = binary.AppendUvarint(b, s.Seq)
	b = binary.AppendUvarint(b, s.Overwritten)
	b = binary.AppendUvarint(b, uint64(len(s.Events)))
	for _, e := range s.Events {
		b = binary.AppendUvarint(b, uint64(e.At))
		b = append(b, byte(e.Kind), e.Flag)
		b = binary.AppendUvarint(b, uint64(e.A))
		b = binary.AppendUvarint(b, uint64(e.B))
		b = binary.AppendUvarint(b, e.C)
	}
	return b
}

// Snapshot decode errors.
var (
	ErrSnapMagic     = errors.New("obs: snapshot: bad magic")
	ErrSnapTruncated = errors.New("obs: snapshot: truncated")
	ErrSnapRange     = errors.New("obs: snapshot: field out of range")
)

type snapReader struct {
	b []byte
}

func (r *snapReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		return 0, ErrSnapTruncated
	}
	r.b = r.b[n:]
	return v, nil
}

func (r *snapReader) str(max int) (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(max) {
		return "", ErrSnapRange
	}
	if uint64(len(r.b)) < n {
		return "", ErrSnapTruncated
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s, nil
}

func (r *snapReader) byte() (byte, error) {
	if len(r.b) == 0 {
		return 0, ErrSnapTruncated
	}
	c := r.b[0]
	r.b = r.b[1:]
	return c, nil
}

// DecodeSnapshot parses an encoded snapshot, rejecting malformed or
// oversized input without panicking (fuzzed).
func DecodeSnapshot(b []byte) (*Snapshot, error) {
	if len(b) < len(snapMagic) || string(b[:len(snapMagic)]) != snapMagic {
		return nil, ErrSnapMagic
	}
	r := snapReader{b: b[len(snapMagic):]}
	var s Snapshot
	var err error
	if s.Session, err = r.str(maxSnapString); err != nil {
		return nil, err
	}
	if s.Reason, err = r.str(maxSnapString); err != nil {
		return nil, err
	}
	at, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if at > uint64(1)<<62 {
		return nil, ErrSnapRange
	}
	s.At = time.Duration(at)
	if s.Seq, err = r.uvarint(); err != nil {
		return nil, err
	}
	if s.Overwritten, err = r.uvarint(); err != nil {
		return nil, err
	}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > maxSnapEvents {
		return nil, ErrSnapRange
	}
	// Cap the up-front allocation: a tiny input claiming 2^20 events must
	// not reserve 24 MB before the parse fails.
	capHint := int(n)
	if capHint > len(r.b)/5+1 {
		capHint = len(r.b)/5 + 1
	}
	s.Events = make([]Event, 0, capHint)
	for i := uint64(0); i < n; i++ {
		var e Event
		t, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if t > uint64(1)<<62 {
			return nil, ErrSnapRange
		}
		e.At = time.Duration(t)
		k, err := r.byte()
		if err != nil {
			return nil, err
		}
		if k == 0 || EventKind(k) >= evKindEnd {
			return nil, ErrSnapRange
		}
		e.Kind = EventKind(k)
		if e.Flag, err = r.byte(); err != nil {
			return nil, err
		}
		a, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if a > 0xFFFF {
			return nil, ErrSnapRange
		}
		e.A = uint16(a)
		bv, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if bv > 0xFFFFFFFF {
			return nil, ErrSnapRange
		}
		e.B = uint32(bv)
		if e.C, err = r.uvarint(); err != nil {
			return nil, err
		}
		s.Events = append(s.Events, e)
	}
	if len(r.b) != 0 {
		return nil, ErrSnapRange
	}
	return &s, nil
}
