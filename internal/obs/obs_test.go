package obs

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	c.Add(-5) // ignored: counters are monotonic
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(1))
	var exact []int64
	for i := 0; i < 10000; i++ {
		v := rng.Int63n(1_000_000)
		exact = append(exact, v)
		h.Observe(v)
	}
	sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
	for _, q := range []float64{0.5, 0.95, 0.99} {
		want := exact[int(q*float64(len(exact)-1))]
		got := h.Quantile(q)
		// Log-bucketed with 4 sub-buckets per octave: <= 12.5% relative
		// error, plus slack for the rank-vs-index convention.
		if diff := float64(got-want) / float64(want); diff > 0.15 || diff < -0.15 {
			t.Errorf("q%.2f = %d, exact %d (err %.1f%%)", q, got, want, 100*diff)
		}
	}
	if h.Max() != exact[len(exact)-1] {
		t.Errorf("max = %d, want %d", h.Max(), exact[len(exact)-1])
	}
	if h.Count() != int64(len(exact)) {
		t.Errorf("count = %d, want %d", h.Count(), len(exact))
	}
}

func TestHistogramEdges(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Observe(-5) // clamps to 0
	h.Observe(0)
	h.Observe(3)
	if got := h.Quantile(1); got != 3 {
		t.Fatalf("q100 of {0,0,3} = %d, want 3", got)
	}
	h.ObserveDuration(time.Millisecond)
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	// Quantile estimates never exceed the exact max.
	if got := h.Quantile(0.99); got > h.Max() {
		t.Fatalf("q99 %d > max %d", got, h.Max())
	}
}

func TestBucketMonotone(t *testing.T) {
	// Bucket index must be monotone in the value and bucketMid must land
	// inside the bucket.
	prev := -1
	for v := int64(0); v < 1<<20; v = v*5/4 + 1 {
		b := bucketOf(v)
		if b < prev {
			t.Fatalf("bucketOf(%d) = %d < previous %d", v, b, prev)
		}
		prev = b
		if mb := bucketOf(bucketMid(b)); mb != b {
			t.Fatalf("bucketMid(%d) = %d maps to bucket %d", b, bucketMid(b), mb)
		}
	}
}

func TestRegistrySameInstance(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x", L("k", "v"))
	b := r.Counter("x", L("k", "v"))
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	if c := r.Counter("x", L("k", "w")); c == a {
		t.Fatal("different labels must return a distinct counter")
	}
	a.Inc()
	p, ok := r.Lookup("x", L("k", "v"))
	if !ok || p.Value != 1 {
		t.Fatalf("lookup = %+v ok=%v, want value 1", p, ok)
	}
	if _, ok := r.Lookup("nope"); ok {
		t.Fatal("lookup of unknown metric must fail")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("m")
}

func TestRegistryFuncs(t *testing.T) {
	r := NewRegistry()
	n := int64(7)
	r.CounterFunc("snap", func() int64 { return n })
	r.GaugeFunc("load", func() float64 { return 0.25 })
	p, _ := r.Lookup("snap")
	if p.Value != 7 {
		t.Fatalf("counterfunc = %v, want 7", p.Value)
	}
	n = 9
	r.CounterFunc("snap", func() int64 { return n }) // re-register replaces
	if p, _ = r.Lookup("snap"); p.Value != 9 {
		t.Fatalf("counterfunc after replace = %v, want 9", p.Value)
	}
	if p, _ = r.Lookup("load"); p.Value != 0.25 {
		t.Fatalf("gaugefunc = %v, want 0.25", p.Value)
	}
}

func TestRegistryLabelOrderInsensitive(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("m", L("a", "1"), L("b", "2"))
	b := r.Counter("m", L("b", "2"), L("a", "1"))
	if a != b {
		t.Fatal("label order must not distinguish metrics")
	}
}
