package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// The paper's motion-to-photon budgets (Section III-B, Table II): an AR
// frame is useful only if capture -> uplink -> server queue/compute ->
// downlink -> display fits DefaultBudget; AbrashBudget is the "Abrash
// bound" the paper cites as the perceptual ideal.
const (
	DefaultBudget = 75 * time.Millisecond
	AbrashBudget  = 20 * time.Millisecond
)

// Budget stage names. Every stage of a BudgetReport is one of these; the
// per-stage blown counters use them as the "stage" label.
const (
	StageQueue     = "queue"     // server admission-queue wait
	StageCompute   = "compute"   // server handler service time
	StageNetUp     = "net_up"    // client->server propagation (SRTT/2)
	StageNetDown   = "net_down"  // server->client propagation (SRTT/2)
	StageSerialize = "serialize" // serialization, pacing and scheduling slack
	StageOverhead  = "overhead"  // retry backoff + losing attempts + hedge head start
)

// stageOrder fixes iteration/printing order.
var stageOrder = [...]string{StageQueue, StageCompute, StageNetUp, StageNetDown, StageSerialize, StageOverhead}

// StageIndex maps a budget stage name to its canonical ordinal (the
// compact encoding flight-recorder events use); unknown names map to
// len(stageOrder). StageName is the inverse.
func StageIndex(name string) int {
	for i, s := range stageOrder {
		if s == name {
			return i
		}
	}
	return len(stageOrder)
}

// StageName returns the stage at ordinal i ("" when out of range).
func StageName(i int) string {
	if i < 0 || i >= len(stageOrder) {
		return ""
	}
	return stageOrder[i]
}

// BudgetReport attributes one frame's end-to-end latency to the pipeline
// stages of the 75 ms budget. By construction the stages sum exactly to
// Total: Queue and Compute are measured by the server (monotonic
// durations, no clock sync needed), Overhead is the client-measured time
// outside the winning attempt, NetUp/NetDown split the smoothed RTT, and
// Serialize absorbs the remainder of the winning attempt (serialization,
// pacing, scheduling).
type BudgetReport struct {
	Trace  TraceID
	Budget time.Duration // 0 = unbounded (Blown always false)
	Total  time.Duration // end-to-end call latency

	Queue     time.Duration
	Compute   time.Duration
	NetUp     time.Duration
	NetDown   time.Duration
	Serialize time.Duration
	Overhead  time.Duration

	Attempts int  // wire attempts launched (1 = clean)
	Hedged   bool // the winning response came from a hedge
}

// Stages lists the attribution in canonical order.
func (r BudgetReport) Stages() []Stage {
	return []Stage{
		{StageQueue, r.Queue},
		{StageCompute, r.Compute},
		{StageNetUp, r.NetUp},
		{StageNetDown, r.NetDown},
		{StageSerialize, r.Serialize},
		{StageOverhead, r.Overhead},
	}
}

// Sum adds the stage latencies (equal to Total by construction; the
// acceptance tests verify this against the independently measured RTT).
func (r BudgetReport) Sum() time.Duration {
	return r.Queue + r.Compute + r.NetUp + r.NetDown + r.Serialize + r.Overhead
}

// Blown reports whether the frame exceeded its budget.
func (r BudgetReport) Blown() bool { return r.Budget > 0 && r.Total > r.Budget }

// Dominant returns the stage that consumed the most of the frame's time —
// where the budget went.
func (r BudgetReport) Dominant() Stage {
	var dom Stage
	for _, s := range r.Stages() {
		if s.Dur > dom.Dur {
			dom = s
		}
	}
	if dom.Name == "" {
		dom.Name = StageSerialize
	}
	return dom
}

// String renders a one-line breakdown.
func (r BudgetReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "frame %016x total=%v/%v", uint64(r.Trace), r.Total.Round(time.Microsecond), r.Budget)
	for _, s := range r.Stages() {
		fmt.Fprintf(&b, " %s=%v", s.Name, s.Dur.Round(time.Microsecond))
	}
	if r.Blown() {
		b.WriteString(" BLOWN")
	}
	return b.String()
}

// BudgetTracker aggregates BudgetReports: per-stage latency histograms,
// total-latency histogram, and blown-frame counters attributed to the
// dominant stage — all registered in the given registry — plus a bounded
// ring of recent raw reports for inspection. A nil tracker ignores
// Observe.
type BudgetTracker struct {
	budget time.Duration

	frames     *Counter
	blown      *Counter
	totalHist  *Histogram
	stageHists map[string]*Histogram
	blownBy    map[string]*Counter

	mu   sync.Mutex
	ring []BudgetReport
	next int
	full bool
}

// DefaultReportCapacity bounds the report ring.
const DefaultReportCapacity = 1024

// NewBudgetTracker registers the budget metric family in reg (any
// registry; labels distinguish instances) and returns the tracker.
// budget <= 0 selects DefaultBudget.
func NewBudgetTracker(budget time.Duration, reg *Registry, labels ...Label) *BudgetTracker {
	if budget <= 0 {
		budget = DefaultBudget
	}
	if reg == nil {
		reg = NewRegistry()
	}
	bt := &BudgetTracker{
		budget:     budget,
		frames:     reg.Counter("mar_budget_frames_total", labels...),
		blown:      reg.Counter("mar_budget_blown_total", labels...),
		totalHist:  reg.Histogram("mar_budget_total_ns", labels...),
		stageHists: make(map[string]*Histogram, len(stageOrder)),
		blownBy:    make(map[string]*Counter, len(stageOrder)),
		ring:       make([]BudgetReport, DefaultReportCapacity),
	}
	for _, st := range stageOrder {
		ls := append(append([]Label(nil), labels...), L("stage", st))
		bt.stageHists[st] = reg.Histogram("mar_budget_stage_ns", ls...)
		bt.blownBy[st] = reg.Counter("mar_budget_blown_by_stage_total", ls...)
	}
	return bt
}

// Budget reports the bound frames are judged against.
func (bt *BudgetTracker) Budget() time.Duration {
	if bt == nil {
		return 0
	}
	return bt.budget
}

// Observe folds one report into the aggregates. The report's Budget field
// is stamped from the tracker when unset.
func (bt *BudgetTracker) Observe(r BudgetReport) {
	if bt == nil {
		return
	}
	if r.Budget == 0 {
		r.Budget = bt.budget
	}
	bt.frames.Inc()
	bt.totalHist.ObserveDuration(r.Total)
	for _, s := range r.Stages() {
		bt.stageHists[s.Name].ObserveDuration(s.Dur)
	}
	if r.Blown() {
		bt.blown.Inc()
		bt.blownBy[r.Dominant().Name].Inc()
	}
	bt.mu.Lock()
	bt.ring[bt.next] = r
	bt.next++
	if bt.next == len(bt.ring) {
		bt.next = 0
		bt.full = true
	}
	bt.mu.Unlock()
}

// Reports returns the retained reports, oldest first.
func (bt *BudgetTracker) Reports() []BudgetReport {
	if bt == nil {
		return nil
	}
	bt.mu.Lock()
	defer bt.mu.Unlock()
	if !bt.full {
		return append([]BudgetReport(nil), bt.ring[:bt.next]...)
	}
	out := make([]BudgetReport, 0, len(bt.ring))
	out = append(out, bt.ring[bt.next:]...)
	return append(out, bt.ring[:bt.next]...)
}

// Frames reports how many frames were observed.
func (bt *BudgetTracker) Frames() int64 {
	if bt == nil {
		return 0
	}
	return bt.frames.Value()
}

// Blown reports how many frames exceeded the budget.
func (bt *BudgetTracker) Blown() int64 {
	if bt == nil {
		return 0
	}
	return bt.blown.Value()
}

// BlownByStage returns the blown-frame counts keyed by dominant stage.
func (bt *BudgetTracker) BlownByStage() map[string]int64 {
	if bt == nil {
		return nil
	}
	out := make(map[string]int64, len(bt.blownBy))
	for st, c := range bt.blownBy {
		out[st] = c.Value()
	}
	return out
}
