package obs

import (
	"bytes"
	"testing"
	"time"
)

// FuzzSnapshotDecode hammers the snapshot codec with hostile input. The
// decoder must never panic or over-allocate, and anything it accepts
// must round-trip stably: decode → encode → decode reproduces the exact
// bytes.
func FuzzSnapshotDecode(f *testing.F) {
	// Corpus: a real snapshot, an empty one, and a few near-valid
	// mutations.
	r := NewFlightRecorder(RecorderConfig{Session: "fuzz", Window: time.Hour})
	for i := 0; i < 10; i++ {
		r.Record(EventKind(1+i%int(evKindEnd-1)), uint8(i), uint16(i), uint32(i), uint64(i))
	}
	if snap := r.Freeze("seed"); snap != nil {
		f.Add(snap.Encode())
	}
	f.Add((&Snapshot{}).Encode())
	f.Add([]byte(snapMagic))
	f.Add([]byte("MFR2\x00\x00"))
	f.Add(append([]byte(snapMagic), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF))

	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := DecodeSnapshot(b)
		if err != nil {
			if s != nil {
				t.Fatal("error with non-nil snapshot")
			}
			return
		}
		enc := s.Encode()
		s2, err := DecodeSnapshot(enc)
		if err != nil {
			t.Fatalf("re-decode of accepted input failed: %v", err)
		}
		if !bytes.Equal(enc, s2.Encode()) {
			t.Fatal("accepted input does not round-trip stably")
		}
	})
}
