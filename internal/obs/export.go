package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// promEscape escapes a label value for the Prometheus text format.
func promEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func promLabels(ls []Label, extra ...Label) string {
	all := append(append([]Label(nil), ls...), extra...)
	if len(all) == 0 {
		return ""
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Key < all[j].Key })
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = fmt.Sprintf("%s=%q", l.Key, promEscape(l.Value))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func fmtValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// gatherSorted merges every registry's points and orders them by metric
// name, then label identity. Registration order depends on which
// goroutine touched an instrument first, so exporting in it would make
// two scrapes of identical state differ byte-for-byte; sorting here makes
// the exposition deterministic (diffs between scrapes are real changes)
// and groups each family under a single TYPE line.
func gatherSorted(regs []*Registry) []Point {
	var pts []Point
	for _, reg := range regs {
		if reg == nil {
			continue
		}
		pts = append(pts, reg.Gather()...)
	}
	sort.SliceStable(pts, func(i, j int) bool {
		if pts[i].Name != pts[j].Name {
			return pts[i].Name < pts[j].Name
		}
		return key(pts[i].Name, pts[i].Labels) < key(pts[j].Name, pts[j].Labels)
	})
	return pts
}

// WritePrometheus renders every registry in Prometheus text exposition
// format, families and label sets in sorted order so identical state
// always produces byte-identical output. Histograms export as summaries:
// p50/p95/p99 quantile samples plus _sum, _count and _max series.
func WritePrometheus(w io.Writer, regs ...*Registry) error {
	typed := make(map[string]bool)
	for _, p := range gatherSorted(regs) {
		if !typed[p.Name] {
			typed[p.Name] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", p.Name, p.Kind); err != nil {
				return err
			}
		}
		if p.Kind == KindHistogram {
			s := p.Hist
			for _, q := range [...]struct {
				q float64
				s string
			}{{0.5, "0.5"}, {0.95, "0.95"}, {0.99, "0.99"}} {
				if _, err := fmt.Fprintf(w, "%s%s %d\n", p.Name,
					promLabels(p.Labels, L("quantile", q.s)), s.Quantile(q.q)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %d\n%s_count%s %d\n%s_max%s %d\n",
				p.Name, promLabels(p.Labels), s.Sum,
				p.Name, promLabels(p.Labels), s.Count,
				p.Name, promLabels(p.Labels), s.Max); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", p.Name, promLabels(p.Labels), fmtValue(p.Value)); err != nil {
			return err
		}
	}
	return nil
}

// WriteExpvar renders every registry as a flat expvar-style JSON object
// in the same sorted order as WritePrometheus: "name{k=v}" keys mapping
// to numbers, histograms to {count,sum,max,p50,p95,p99} objects.
func WriteExpvar(w io.Writer, regs ...*Registry) error {
	if _, err := fmt.Fprint(w, "{"); err != nil {
		return err
	}
	first := true
	for _, p := range gatherSorted(regs) {
		if !first {
			if _, err := fmt.Fprint(w, ",\n"); err != nil {
				return err
			}
		}
		first = false
		k := key(p.Name, p.Labels)
		if p.Kind == KindHistogram {
			s := p.Hist
			if _, err := fmt.Fprintf(w, "%q: {\"count\": %d, \"sum\": %d, \"max\": %d, \"p50\": %d, \"p95\": %d, \"p99\": %d}",
				k, s.Count, s.Sum, s.Max, s.Quantile(0.5), s.Quantile(0.95), s.Quantile(0.99)); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%q: %s", k, fmtValue(p.Value)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprint(w, "}\n")
	return err
}

// HealthFunc reports a component's health: a status string (e.g. the
// overload probe state) and whether the component should answer 200.
type HealthFunc func() (status string, ok bool)

// NewMux builds the observability endpoint: /metrics (Prometheus text),
// /metrics.json (expvar-style JSON) and /healthz (the health callback; a
// nil callback always answers "ok"). Registries are scraped live on every
// request.
func NewMux(health HealthFunc, regs ...*Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, regs...) //nolint:errcheck // client went away
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		WriteExpvar(w, regs...) //nolint:errcheck // client went away
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		status, ok := "ok", true
		if health != nil {
			status, ok = health()
		}
		if !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		fmt.Fprintln(w, status) //nolint:errcheck // client went away
	})
	return mux
}
