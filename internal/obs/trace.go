package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one end-to-end frame journey; every span of the
// journey — client call, wire frames, server queue wait, handler — shares
// it. Zero means "not traced" and is never generated.
type TraceID uint64

// SpanID identifies one span within a trace. Zero means "no parent".
type SpanID uint64

// Stage is one named latency component recorded inside a span.
type Stage struct {
	Name string
	Dur  time.Duration
}

// Span is one timed operation of a trace. Spans are built by a single
// goroutine (the one running the operation) and published to the tracer
// by Finish; they are not safe for concurrent mutation. All methods are
// nil-safe, so code instrumented against a disabled tracer pays nothing.
type Span struct {
	Trace  TraceID
	ID     SpanID
	Parent SpanID
	Name   string
	Start  time.Time
	End    time.Time
	Stages []Stage

	tracer *Tracer
}

// Stage records a named latency component.
func (s *Span) Stage(name string, d time.Duration) {
	if s == nil {
		return
	}
	s.Stages = append(s.Stages, Stage{Name: name, Dur: d})
}

// StageDur sums the recorded durations for name (0 if absent).
func (s *Span) StageDur(name string) time.Duration {
	if s == nil {
		return 0
	}
	var sum time.Duration
	for _, st := range s.Stages {
		if st.Name == name {
			sum += st.Dur
		}
	}
	return sum
}

// Finish stamps the end time and hands the span to the tracer's ring.
// Calling Finish more than once publishes only the first time.
func (s *Span) Finish() {
	if s == nil || s.tracer == nil {
		return
	}
	t := s.tracer
	s.tracer = nil
	if s.End.IsZero() {
		s.End = time.Now()
	}
	t.publish(s)
}

// Duration is End-Start (time.Since(Start) while unfinished).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	if s.End.IsZero() {
		return time.Since(s.Start)
	}
	return s.End.Sub(s.Start)
}

// Tracer mints spans and retains the most recent finished ones in a
// bounded ring. A nil *Tracer is valid and permanently disabled; all
// methods are nil-safe.
type Tracer struct {
	enabled atomic.Bool
	nextID  atomic.Uint64
	seed    uint64

	mu      sync.Mutex
	ring    []*Span
	next    int
	wrapped bool
	dropped int64
}

// DefaultSpanCapacity bounds the finished-span ring when NewTracer is
// given no capacity.
const DefaultSpanCapacity = 4096

// NewTracer returns an enabled tracer retaining up to capacity finished
// spans (DefaultSpanCapacity when capacity <= 0). seed perturbs ID
// generation so two tracers in one process mint distinct trace IDs.
func NewTracer(capacity int, seed int64) *Tracer {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	t := &Tracer{ring: make([]*Span, capacity), seed: uint64(seed)*0x9E3779B97F4A7C15 + 0x1}
	t.enabled.Store(true)
	return t
}

// SetEnabled flips tracing. Disabled tracers return nil spans — the
// <2-allocation fast path asserted by BenchmarkSpanDisabled.
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// Enabled reports whether spans are being minted.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// splitmix64 is the id mixer (public-domain constant set): counter in,
// well-distributed nonzero-ish id out.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (t *Tracer) id() uint64 {
	for {
		if v := splitmix64(t.seed + t.nextID.Add(1)); v != 0 {
			return v
		}
	}
}

// StartTrace mints a new trace and its root span. Returns nil when
// disabled.
func (t *Tracer) StartTrace(name string) *Span {
	if !t.Enabled() {
		return nil
	}
	return &Span{
		Trace:  TraceID(t.id()),
		ID:     SpanID(t.id()),
		Name:   name,
		Start:  time.Now(),
		tracer: t,
	}
}

// StartSpan opens a span inside an existing trace (trace/parent arrive
// off the wire on the server side, or from a local parent span). Returns
// nil when disabled or when trace is zero.
func (t *Tracer) StartSpan(name string, trace TraceID, parent SpanID) *Span {
	if !t.Enabled() || trace == 0 {
		return nil
	}
	return &Span{
		Trace:  trace,
		ID:     SpanID(t.id()),
		Parent: parent,
		Name:   name,
		Start:  time.Now(),
		tracer: t,
	}
}

func (t *Tracer) publish(s *Span) {
	t.mu.Lock()
	if t.ring[t.next] != nil {
		t.dropped++
	}
	t.ring[t.next] = s
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.wrapped = true
	}
	t.mu.Unlock()
}

// Take drains and returns the finished spans, oldest first.
func (t *Tracer) Take() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, 0, len(t.ring))
	start := 0
	if t.wrapped {
		start = t.next
	}
	for i := 0; i < len(t.ring); i++ {
		idx := (start + i) % len(t.ring)
		if t.ring[idx] != nil {
			out = append(out, t.ring[idx])
			t.ring[idx] = nil
		}
	}
	t.next = 0
	t.wrapped = false
	return out
}

// Dropped reports how many finished spans were evicted unobserved.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Stitch groups spans by trace ID — the cross-process view of one frame's
// journey once client-side and server-side spans are pooled.
func Stitch(spans ...[]*Span) map[TraceID][]*Span {
	out := make(map[TraceID][]*Span)
	for _, set := range spans {
		for _, s := range set {
			out[s.Trace] = append(out[s.Trace], s)
		}
	}
	return out
}
