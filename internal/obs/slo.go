package obs

// The SLO engine turns per-frame deadline verdicts into an erosion
// signal. An aggregate histogram can say "p99 is bad"; the SLO engine
// says "this session's deadline-hit objective is burning error budget N×
// faster than sustainable, on both a fast and a slow window" — the SRE
// multi-window burn-rate rule — and that verdict is what arms the flight
// recorder, so black-box capture fires on trends, not only on single
// misses. Everything runs on the injected clock: an SLO on marsim virtual
// time evaluates, triggers and reports deterministically.

import (
	"fmt"
	"sync"
	"time"

	"marnet/internal/vclock"
)

// SLOConfig tunes one objective.
type SLOConfig struct {
	// Name labels the objective (e.g. "session-42" or "global").
	Name string
	// Objective is the target hit ratio in (0,1) (default 0.99: at most
	// 1% of frames may miss their deadline).
	Objective float64
	// Slot is the sliding-window bucket granularity (default 1s; marsim
	// scenarios use finer slots because their phases last seconds).
	Slot time.Duration
	// FastWindow and SlowWindow are the two burn-rate horizons (defaults
	// 5s and 60s). The fast window catches sharp erosion quickly; the
	// slow window keeps a brief blip from paging.
	FastWindow, SlowWindow time.Duration
	// FastBurn and SlowBurn are the trigger thresholds: both windows'
	// burn rates must exceed their threshold simultaneously (defaults 10
	// and 2 — "we are burning a day's error budget in ~2 hours, and it is
	// still happening").
	FastBurn, SlowBurn float64
	// MinSamples is the fast-window observation floor below which no
	// trigger fires (default 20): one missed frame out of two is not a
	// trend.
	MinSamples int
	// Cooldown is the minimum spacing between triggers (default
	// FastWindow), bounding capture churn while erosion persists.
	Cooldown time.Duration
	// Clock supplies time (default system; marsim injects virtual time).
	Clock vclock.Clock
	// OnTrigger observes each burn-rate trigger, without SLO locks held —
	// the hook that freezes a flight recorder.
	OnTrigger func(SLOTrigger)
	// Parent, when set, receives every observation too: per-session SLOs
	// chain into a global one.
	Parent *SLO
}

// SLO engine defaults.
const (
	DefaultSLOObjective  = 0.99
	DefaultSLOSlot       = time.Second
	DefaultSLOFastWindow = 5 * time.Second
	DefaultSLOSlowWindow = 60 * time.Second
	DefaultSLOFastBurn   = 10.0
	DefaultSLOSlowBurn   = 2.0
	DefaultSLOMinSamples = 20
)

// SLOTrigger describes one burn-rate alert.
type SLOTrigger struct {
	Name               string
	At                 time.Duration // since the SLO's epoch
	FastBurn, SlowBurn float64
	FastFrames         int64 // observations inside the fast window
	SlowFrames         int64
	Ordinal            int64 // 1 for the first trigger, 2 for the next, ...
}

// String renders the trigger for traces.
func (t SLOTrigger) String() string {
	return fmt.Sprintf("slo %s trigger#%d at=+%dus fast=%.2f slow=%.2f fastN=%d slowN=%d",
		t.Name, t.Ordinal, t.At.Microseconds(), t.FastBurn, t.SlowBurn, t.FastFrames, t.SlowFrames)
}

// sloSlot is one time bucket of the sliding window.
type sloSlot struct {
	idx          int64 // slot ordinal since epoch; -1 = never used
	hits, misses int64
}

// SLO is a sliding-window deadline-hit-rate objective with multi-window
// burn-rate evaluation. A nil *SLO ignores Observe; all methods are
// nil-safe.
type SLO struct {
	cfg   SLOConfig
	clock vclock.Clock
	epoch time.Time
	nfast int64 // fast window length in slots
	nslow int64 // slow window length in slots (= len(slots))

	mu          sync.Mutex
	slots       []sloSlot
	hits        int64 // lifetime
	misses      int64
	triggers    int64
	trigOnce    bool
	lastTrigger time.Duration
}

// NewSLO builds the objective. Window lengths are rounded up to whole
// slots.
func NewSLO(cfg SLOConfig) *SLO {
	if cfg.Objective <= 0 || cfg.Objective >= 1 {
		cfg.Objective = DefaultSLOObjective
	}
	if cfg.Slot <= 0 {
		cfg.Slot = DefaultSLOSlot
	}
	if cfg.FastWindow <= 0 {
		cfg.FastWindow = DefaultSLOFastWindow
	}
	if cfg.SlowWindow <= 0 {
		cfg.SlowWindow = DefaultSLOSlowWindow
	}
	if cfg.SlowWindow < cfg.FastWindow {
		cfg.SlowWindow = cfg.FastWindow
	}
	if cfg.FastBurn <= 0 {
		cfg.FastBurn = DefaultSLOFastBurn
	}
	if cfg.SlowBurn <= 0 {
		cfg.SlowBurn = DefaultSLOSlowBurn
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = DefaultSLOMinSamples
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = cfg.FastWindow
	}
	clock := vclock.OrSystem(cfg.Clock)
	slotsOf := func(w time.Duration) int64 {
		n := int64((w + cfg.Slot - 1) / cfg.Slot)
		if n < 1 {
			n = 1
		}
		return n
	}
	s := &SLO{
		cfg:   cfg,
		clock: clock,
		epoch: clock.Now(),
		nfast: slotsOf(cfg.FastWindow),
		nslow: slotsOf(cfg.SlowWindow),
	}
	s.slots = make([]sloSlot, s.nslow)
	for i := range s.slots {
		s.slots[i].idx = -1
	}
	return s
}

// Name reports the objective's label ("" when nil).
func (s *SLO) Name() string {
	if s == nil {
		return ""
	}
	return s.cfg.Name
}

// Observe folds one frame verdict in (hit = the frame met its deadline),
// re-evaluates the burn rates, fires OnTrigger when both windows exceed
// their thresholds outside the cooldown, and forwards the observation to
// the parent.
func (s *SLO) Observe(hit bool) {
	if s == nil {
		return
	}
	now := s.clock.Since(s.epoch)
	s.mu.Lock()
	idx := int64(now / s.cfg.Slot)
	sl := &s.slots[idx%s.nslow]
	if sl.idx != idx {
		sl.idx, sl.hits, sl.misses = idx, 0, 0
	}
	if hit {
		sl.hits++
		s.hits++
	} else {
		sl.misses++
		s.misses++
	}
	var trig SLOTrigger
	fire := false
	if !hit { // burn can only start (or worsen) on a miss
		fastBurn, fastN := s.burnLocked(idx, s.nfast)
		slowBurn, slowN := s.burnLocked(idx, s.nslow)
		if fastN >= int64(s.cfg.MinSamples) &&
			fastBurn >= s.cfg.FastBurn && slowBurn >= s.cfg.SlowBurn &&
			(!s.trigOnce || now-s.lastTrigger >= s.cfg.Cooldown) {
			s.triggers++
			s.trigOnce, s.lastTrigger = true, now
			trig = SLOTrigger{
				Name: s.cfg.Name, At: now,
				FastBurn: fastBurn, SlowBurn: slowBurn,
				FastFrames: fastN, SlowFrames: slowN,
				Ordinal: s.triggers,
			}
			fire = true
		}
	}
	hook := s.cfg.OnTrigger
	s.mu.Unlock()
	if fire && hook != nil {
		hook(trig)
	}
	s.cfg.Parent.Observe(hit)
}

// burnLocked computes the burn rate over the last n slots ending at slot
// cur (inclusive): observed miss ratio divided by the objective's allowed
// miss ratio. Returns the burn and the window's observation count.
func (s *SLO) burnLocked(cur, n int64) (float64, int64) {
	lo := cur - n + 1
	var hits, misses int64
	for i := range s.slots {
		if s.slots[i].idx >= lo && s.slots[i].idx <= cur {
			hits += s.slots[i].hits
			misses += s.slots[i].misses
		}
	}
	total := hits + misses
	if total == 0 {
		return 0, 0
	}
	allowed := 1 - s.cfg.Objective
	return (float64(misses) / float64(total)) / allowed, total
}

// SLOState is a consistent snapshot of the objective.
type SLOState struct {
	Name                   string
	Objective              float64
	Hits, Misses, Triggers int64
	FastBurn, SlowBurn     float64
	FastFrames, SlowFrames int64
}

// HitRatio is lifetime hits/(hits+misses) (1 when no observations).
func (st SLOState) HitRatio() float64 {
	if st.Hits+st.Misses == 0 {
		return 1
	}
	return float64(st.Hits) / float64(st.Hits+st.Misses)
}

// State evaluates the windows at the current clock reading.
func (s *SLO) State() SLOState {
	if s == nil {
		return SLOState{}
	}
	now := s.clock.Since(s.epoch)
	s.mu.Lock()
	defer s.mu.Unlock()
	idx := int64(now / s.cfg.Slot)
	st := SLOState{
		Name: s.cfg.Name, Objective: s.cfg.Objective,
		Hits: s.hits, Misses: s.misses, Triggers: s.triggers,
	}
	st.FastBurn, st.FastFrames = s.burnLocked(idx, s.nfast)
	st.SlowBurn, st.SlowFrames = s.burnLocked(idx, s.nslow)
	return st
}

// Triggers reports how many burn-rate alerts have fired.
func (s *SLO) Triggers() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.triggers
}

// Publish registers the objective on a registry: lifetime counters, the
// live burn rates for both windows, and the hit ratio — every scrape
// re-evaluates the sliding windows at scrape time.
func (s *SLO) Publish(reg *Registry, labels ...Label) {
	if s == nil || reg == nil {
		return
	}
	ls := append([]Label{L("slo", s.cfg.Name)}, labels...)
	reg.CounterFunc("mar_slo_frames_total", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.hits + s.misses
	}, ls...)
	reg.CounterFunc("mar_slo_misses_total", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.misses
	}, ls...)
	reg.CounterFunc("mar_slo_triggers_total", s.Triggers, ls...)
	reg.GaugeFunc("mar_slo_hit_ratio", func() float64 { return s.State().HitRatio() }, ls...)
	fastLs := append(append([]Label(nil), ls...), L("window", "fast"))
	slowLs := append(append([]Label(nil), ls...), L("window", "slow"))
	reg.GaugeFunc("mar_slo_burn_rate", func() float64 { return s.State().FastBurn }, fastLs...)
	reg.GaugeFunc("mar_slo_burn_rate", func() float64 { return s.State().SlowBurn }, slowLs...)
}
