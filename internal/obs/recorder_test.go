package obs

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"marnet/internal/vclock"
)

// manualClock is a hand-advanced clock for deterministic recorder and SLO
// tests. Timers are not needed here; AfterFunc panics if used.
type manualClock struct {
	mu  sync.Mutex
	now time.Time
}

func newManualClock() *manualClock {
	return &manualClock{now: time.Unix(1000, 0)}
}

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *manualClock) Since(t time.Time) time.Duration { return c.Now().Sub(t) }

func (c *manualClock) AfterFunc(time.Duration, func()) vclock.Timer {
	panic("manualClock: AfterFunc not supported")
}

func (c *manualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestRecorderNilIsSafeAndSilent(t *testing.T) {
	var r *FlightRecorder
	r.Record(EvFrameSend, 0, 1, 2, 3)
	r.RecordAt(time.Now(), EvFrameSend, 0, 1, 2, 3)
	if r.Freeze("why") != nil {
		t.Error("nil recorder froze a snapshot")
	}
	if r.Enabled() || r.Recorded() != 0 || r.Session() != "" ||
		r.Events() != nil || r.Snapshots() != nil || r.Suppressed() != 0 {
		t.Error("nil recorder reported live state")
	}
}

func TestRecorderDisabledDropsEvents(t *testing.T) {
	r := NewFlightRecorder(RecorderConfig{Session: "s"})
	r.SetEnabled(false)
	r.Record(EvFrameSend, 0, 1, 2, 3)
	if r.Recorded() != 0 {
		t.Fatalf("disabled recorder stored %d events", r.Recorded())
	}
	if r.Freeze("x") != nil {
		t.Fatal("disabled recorder froze")
	}
	r.SetEnabled(true)
	r.Record(EvFrameSend, 0, 1, 2, 3)
	if r.Recorded() != 1 {
		t.Fatalf("re-enabled recorder stored %d events, want 1", r.Recorded())
	}
}

func TestRecorderRingWrapKeepsNewest(t *testing.T) {
	clock := newManualClock()
	const capacity = 8
	r := NewFlightRecorder(RecorderConfig{
		Session: "wrap", Capacity: capacity, Window: time.Hour, Clock: clock,
	})
	const total = 20
	for i := 0; i < total; i++ {
		clock.Advance(time.Millisecond)
		r.Record(EvFrameSend, 0, 0, uint32(i), 0)
	}
	if r.Recorded() != total {
		t.Fatalf("Recorded = %d, want %d", r.Recorded(), total)
	}
	evs := r.Events()
	// The store-prefetch zeroes the upcoming slot, so a wrapped ring
	// retains capacity-1 events.
	if len(evs) != capacity-1 {
		t.Fatalf("wrapped ring holds %d events, want %d", len(evs), capacity-1)
	}
	for i, e := range evs {
		want := uint32(total - (capacity - 1) + i)
		if e.B != want {
			t.Errorf("event %d: B = %d, want %d (oldest-first order)", i, e.B, want)
		}
	}
	snap := r.Freeze("wrap-check")
	if snap == nil {
		t.Fatal("Freeze returned nil")
	}
	if snap.Overwritten == 0 {
		t.Error("wrapped snapshot reports no overwritten events")
	}
	if snap.Seq != total {
		t.Errorf("snapshot Seq = %d, want %d", snap.Seq, total)
	}
}

func TestRecorderFreezeWindowFiltersOldEvents(t *testing.T) {
	clock := newManualClock()
	r := NewFlightRecorder(RecorderConfig{
		Session: "win", Capacity: 64, Window: 100 * time.Millisecond, Clock: clock,
	})
	r.Record(EvFrameSend, 0, 0, 1, 0) // at t=0, far outside the window
	clock.Advance(time.Second)
	r.Record(EvFrameAck, 0, 0, 2, 0) // inside the window
	snap := r.Freeze("window")
	if snap == nil {
		t.Fatal("Freeze returned nil")
	}
	if n := len(snap.Events); n != 1 {
		t.Fatalf("window kept %d events, want 1: %v", n, snap.Events)
	}
	if snap.Events[0].Kind != EvFrameAck {
		t.Errorf("window kept %v, want the recent ack", snap.Events[0].Kind)
	}
}

func TestRecorderFreezeCooldownAndEviction(t *testing.T) {
	clock := newManualClock()
	r := NewFlightRecorder(RecorderConfig{
		Session: "cd", Capacity: 64, Window: time.Second,
		Cooldown: 500 * time.Millisecond, MaxSnapshots: 2, Clock: clock,
	})
	r.Record(EvFrameSend, 0, 0, 1, 0)
	if r.Freeze("first") == nil {
		t.Fatal("first freeze suppressed")
	}
	clock.Advance(100 * time.Millisecond)
	if r.Freeze("too-soon") != nil {
		t.Fatal("freeze inside the cooldown was not suppressed")
	}
	if r.Suppressed() != 1 {
		t.Fatalf("Suppressed = %d, want 1", r.Suppressed())
	}
	for i := 0; i < 3; i++ {
		clock.Advance(time.Second)
		r.Record(EvFrameSend, 0, 0, uint32(i+2), 0)
		if r.Freeze("later") == nil {
			t.Fatalf("freeze %d after cooldown suppressed", i)
		}
	}
	snaps := r.Snapshots()
	if len(snaps) != 2 {
		t.Fatalf("retained %d snapshots, want MaxSnapshots=2", len(snaps))
	}
	if snaps[0].Reason != "later" || snaps[1].Reason != "later" {
		t.Errorf("eviction kept the wrong snapshots: %q, %q", snaps[0].Reason, snaps[1].Reason)
	}
}

func TestRecorderFreezeOnEmptyRing(t *testing.T) {
	r := NewFlightRecorder(RecorderConfig{Session: "empty"})
	if r.Freeze("nothing") != nil {
		t.Fatal("froze an empty ring")
	}
}

func TestRecorderOnFreezeHookSeesSnapshot(t *testing.T) {
	var got *Snapshot
	r := NewFlightRecorder(RecorderConfig{
		Session:  "hook",
		OnFreeze: func(s *Snapshot) { got = s },
	})
	r.Record(EvSessionReset, 0, 0, 7, 0)
	snap := r.Freeze("hooked")
	if snap == nil || got != snap {
		t.Fatalf("OnFreeze saw %v, Freeze returned %v", got, snap)
	}
	if got.Reason != "hooked" || got.Session != "hook" {
		t.Errorf("snapshot mislabelled: %+v", got)
	}
}

func TestRecordIsAllocationFree(t *testing.T) {
	r := NewFlightRecorder(RecorderConfig{Session: "alloc"})
	at := time.Now()
	var seq uint32
	if n := testing.AllocsPerRun(4096, func() {
		seq++
		r.RecordAt(at, EvFrameSend, 0, 1, seq, 1242)
	}); n != 0 {
		t.Fatalf("RecordAt allocates %.2f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(4096, func() {
		r.Record(EvFrameAck, 0, 1, 1, 1)
	}); n != 0 {
		t.Fatalf("Record allocates %.2f/op, want 0", n)
	}
	var off *FlightRecorder
	if n := testing.AllocsPerRun(4096, func() {
		off.RecordAt(at, EvFrameSend, 0, 1, 1, 1)
	}); n != 0 {
		t.Fatalf("nil RecordAt allocates %.2f/op, want 0", n)
	}
}

func TestSnapshotCodecRoundTrip(t *testing.T) {
	clock := newManualClock()
	r := NewFlightRecorder(RecorderConfig{Session: "codec", Window: time.Hour, Clock: clock})
	for i := 0; i < 50; i++ {
		clock.Advance(3 * time.Millisecond)
		r.Record(EventKind(1+i%int(evKindEnd-1)), uint8(i), uint16(i*7), uint32(i*131), uint64(i)*1e6)
	}
	snap := r.Freeze("round-trip")
	if snap == nil {
		t.Fatal("no snapshot")
	}
	enc := snap.Encode()
	dec, err := DecodeSnapshot(enc)
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	if !bytes.Equal(enc, dec.Encode()) {
		t.Fatal("re-encoded snapshot differs from the original encoding")
	}
	if dec.Session != snap.Session || dec.Reason != snap.Reason ||
		dec.At != snap.At || dec.Seq != snap.Seq || len(dec.Events) != len(snap.Events) {
		t.Fatalf("decoded header differs: %+v vs %+v", dec, snap)
	}
}

func TestSnapshotDecodeRejectsHostileInput(t *testing.T) {
	valid := (&Snapshot{Session: "s", Reason: "r", At: 5, Seq: 1,
		Events: []Event{{At: 1, Kind: EvFrameSend, B: 9}}}).Encode()
	cases := []struct {
		name string
		b    []byte
		want error
	}{
		{"empty", nil, ErrSnapMagic},
		{"bad magic", []byte("NOPE"), ErrSnapMagic},
		{"magic only", []byte(snapMagic), ErrSnapTruncated},
		{"truncated tail", valid[:len(valid)-1], ErrSnapTruncated},
		{"trailing garbage", append(append([]byte(nil), valid...), 0xFF), ErrSnapRange},
		// session len 0, reason len 0, at 0, seq 0, overwritten 0, then a
		// varint event count above maxSnapEvents.
		{"huge event count", append(append([]byte(nil), snapMagic...),
			0, 0, 0, 0, 0, 0x81, 0x80, 0x80, 0x01), ErrSnapRange},
	}
	for _, tc := range cases {
		if _, err := DecodeSnapshot(tc.b); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
	if _, err := DecodeSnapshot(valid); err != nil {
		t.Fatalf("control: valid input rejected: %v", err)
	}
}
