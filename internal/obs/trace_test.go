package obs

import (
	"testing"
	"time"
)

func TestSpanLifecycle(t *testing.T) {
	tr := NewTracer(16, 1)
	root := tr.StartTrace("call")
	if root == nil || root.Trace == 0 || root.ID == 0 {
		t.Fatalf("root span not minted: %+v", root)
	}
	root.Stage("attempt", 3*time.Millisecond)
	root.Stage("attempt", 2*time.Millisecond)
	if got := root.StageDur("attempt"); got != 5*time.Millisecond {
		t.Fatalf("StageDur = %v, want 5ms", got)
	}
	child := tr.StartSpan("server", root.Trace, root.ID)
	if child.Trace != root.Trace || child.Parent != root.ID {
		t.Fatalf("child not linked: %+v", child)
	}
	child.Finish()
	root.Finish()
	root.Finish() // double finish publishes once

	spans := tr.Take()
	if len(spans) != 2 {
		t.Fatalf("got %d finished spans, want 2", len(spans))
	}
	if len(tr.Take()) != 0 {
		t.Fatal("Take must drain")
	}
	byTrace := Stitch(spans)
	if len(byTrace[root.Trace]) != 2 {
		t.Fatalf("stitch lost spans: %v", byTrace)
	}
}

func TestTracerDisabledAndNil(t *testing.T) {
	tr := NewTracer(4, 2)
	tr.SetEnabled(false)
	if s := tr.StartTrace("x"); s != nil {
		t.Fatal("disabled tracer must mint nil spans")
	}
	var nilT *Tracer
	if nilT.Enabled() {
		t.Fatal("nil tracer is disabled")
	}
	s := nilT.StartTrace("x")
	// Every method on a nil span must be a no-op, not a panic.
	s.Stage("a", time.Millisecond)
	s.Finish()
	if s.Duration() != 0 || s.StageDur("a") != 0 {
		t.Fatal("nil span must report zeros")
	}
	if nilT.Take() != nil || nilT.Dropped() != 0 {
		t.Fatal("nil tracer must report empty state")
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(2, 3)
	for i := 0; i < 5; i++ {
		tr.StartTrace("s").Finish()
	}
	if got := len(tr.Take()); got != 2 {
		t.Fatalf("ring retained %d spans, want 2", got)
	}
	if tr.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", tr.Dropped())
	}
}

func TestTraceIDsDistinct(t *testing.T) {
	tr := NewTracer(16, 4)
	seen := make(map[TraceID]bool)
	for i := 0; i < 1000; i++ {
		s := tr.StartTrace("s")
		if seen[s.Trace] {
			t.Fatalf("duplicate trace id %x", s.Trace)
		}
		seen[s.Trace] = true
	}
}

// TestDisabledTracingAllocs is the satellite guarantee behind
// BenchmarkSpanDisabled: instrumentation against a disabled (or nil)
// tracer must cost fewer than 2 allocations per call.
func TestDisabledTracingAllocs(t *testing.T) {
	tr := NewTracer(4, 5)
	tr.SetEnabled(false)
	allocs := testing.AllocsPerRun(1000, func() {
		s := tr.StartTrace("frame")
		s.Stage("queue", time.Millisecond)
		s.Finish()
	})
	if allocs >= 2 {
		t.Fatalf("disabled tracing costs %.1f allocs/call, want < 2", allocs)
	}
	var nilT *Tracer
	allocs = testing.AllocsPerRun(1000, func() {
		s := nilT.StartSpan("frame", 1, 2)
		s.Stage("queue", time.Millisecond)
		s.Finish()
	})
	if allocs >= 2 {
		t.Fatalf("nil-tracer tracing costs %.1f allocs/call, want < 2", allocs)
	}
}
