package obs

import (
	"testing"
	"time"
)

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) * 997)
	}
}

func BenchmarkRegistryCounterLookup(b *testing.B) {
	r := NewRegistry()
	ls := []Label{L("stream", "video")}
	r.Counter("frames_total", ls...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Counter("frames_total", ls...).Inc()
	}
}

// BenchmarkSpanDisabled is the disabled-tracing fast path the CI
// bench-smoke pass watches: it must stay under 2 allocations per call
// (TestDisabledTracingAllocs enforces the same bound as a hard test).
func BenchmarkSpanDisabled(b *testing.B) {
	tr := NewTracer(4, 1)
	tr.SetEnabled(false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := tr.StartTrace("frame")
		s.Stage("queue", time.Millisecond)
		s.Finish()
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	tr := NewTracer(1024, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := tr.StartTrace("frame")
		s.Stage("queue", time.Millisecond)
		s.Finish()
	}
}

func BenchmarkBudgetObserve(b *testing.B) {
	bt := NewBudgetTracker(DefaultBudget, NewRegistry())
	r := BudgetReport{Total: 80 * time.Millisecond, Queue: 40 * time.Millisecond, Compute: 40 * time.Millisecond}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bt.Observe(r)
	}
}
