package marsim

import (
	"bytes"
	"runtime"
	"testing"
	"time"
)

// runMPScenario mirrors runScenario for the multipath runners: zero
// goroutines may survive a run (the PathSet/PathRouter machinery is
// timer-chain-driven on the virtual clock, like everything else).
func runMPScenario(t *testing.T, name string, run func(int64) (*MultipathResult, error), seed int64) *MultipathResult {
	t.Helper()
	before := runtime.NumGoroutine()
	res, err := run(seed)
	if err != nil {
		t.Fatalf("%s(seed=%d): %v", name, seed, err)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("%s leaked goroutines: %d -> %d (simulation must spawn none)", name, before, after)
	}
	return res
}

func wifiEventCount(res *MultipathResult, state string) int {
	n := 0
	for _, ev := range res.PathEvents {
		if ev.Path == "wifi" && ev.State == state {
			n++
		}
	}
	return n
}

// TestMultipathBlackholeAcceptance is the tentpole pin: a mid-stream
// blackhole of the primary access link must cost the full multipath
// stack zero session resets, an interactive cutover within one keepalive
// interval, and the Gilbert-Elliott burst window must be absorbed by
// cross-path FEC (>= 90% of observed holes repaired from the other
// link's parity) rather than end-to-end retransmission.
func TestMultipathBlackholeAcceptance(t *testing.T) {
	res := runMPScenario(t, "multipath-full",
		func(seed int64) (*MultipathResult, error) { return RunMultipath(seed, MPFull) }, 42)

	if res.Reconnects != 0 {
		t.Errorf("blackhole forced %d session resets, want 0", res.Reconnects)
	}
	if res.CutoverGap <= 0 {
		t.Fatalf("wifi was never declared down after the partition: %+v", res.PathEvents)
	}
	if res.CutoverGap > mpKeepalive {
		t.Errorf("cutover took %v, want <= one keepalive interval (%v)", res.CutoverGap, mpKeepalive)
	}
	if res.FailoverFrames < 1 {
		t.Error("no in-flight frame was evacuated onto the survivor path")
	}
	if res.ParitySent == 0 {
		t.Error("cross-path FEC shipped no parity")
	}
	repairs := res.RepairedUp + res.RepairedDown
	if repairs < 5 {
		t.Errorf("only %d frames repaired from parity — the burst window is vacuous", repairs)
	}
	if res.RepairRate < 0.9 {
		t.Errorf("FEC repair rate %.3f, want >= 0.9 (repaired %d, unrepaired %d)",
			res.RepairRate, repairs, res.UnrepairedUp+res.UnrepairedDown)
	}
	if res.MaxOKGap > 600*time.Millisecond {
		t.Errorf("user-visible outage was %v, want <= 600ms", res.MaxOKGap)
	}
	// The dead link revives once the partition heals: probing -> up.
	revived := false
	for _, ev := range res.PathEvents {
		if ev.Path == "wifi" && ev.State == "up" && ev.At > mpHealAt {
			revived = true
		}
	}
	if !revived {
		t.Errorf("wifi never revived after the heal: %+v", res.PathEvents)
	}
	if res.OKRate() < 0.95 {
		t.Errorf("ok rate %.3f across burst+blackhole, want >= 0.95", res.OKRate())
	}
}

// TestMultipathFailoverVsSingle is the head-to-head: probing+evacuation
// alone already turns a ~1 s single-path outage (with a forced session
// reset) into a sub-250 ms blip with none.
func TestMultipathFailoverVsSingle(t *testing.T) {
	failover := runMPScenario(t, "multipath-failover",
		func(seed int64) (*MultipathResult, error) { return RunMultipath(seed, MPFailover) }, 42)
	single := runMPScenario(t, "multipath-single",
		func(seed int64) (*MultipathResult, error) { return RunMultipath(seed, MPSingle) }, 42)

	if failover.Reconnects != 0 {
		t.Errorf("failover mode reset the session %d times", failover.Reconnects)
	}
	if failover.CutoverGap <= 0 || failover.CutoverGap > mpKeepalive {
		t.Errorf("failover cutover %v, want within (0, %v]", failover.CutoverGap, mpKeepalive)
	}
	if single.Reconnects < 1 {
		t.Errorf("single-path survived the blackhole without a reset (%+v) — the baseline is vacuous", single)
	}
	if single.MaxOKGap < 800*time.Millisecond {
		t.Errorf("single-path outage only %v — the blackhole did not bite", single.MaxOKGap)
	}
	if failover.MaxOKGap >= single.MaxOKGap {
		t.Errorf("failover outage %v not better than single-path %v", failover.MaxOKGap, single.MaxOKGap)
	}
	if failover.OKs <= single.OKs {
		t.Errorf("failover completed %d calls vs single-path %d, want strictly more", failover.OKs, single.OKs)
	}
}

// TestMultipathFlapScenario pins the repeated-flap behavior: three
// 300 ms blackhole pulses each produce a down/revive cycle, frames are
// evacuated every time, and the session never resets.
func TestMultipathFlapScenario(t *testing.T) {
	for _, mode := range []MultipathMode{MPFailover, MPFull} {
		res := runMPScenario(t, "multipath-flap-"+mode.String(),
			func(seed int64) (*MultipathResult, error) { return RunMultipathFlap(seed, mode) }, 42)
		if res.Reconnects != 0 {
			t.Errorf("%s: flaps reset the session %d times", mode, res.Reconnects)
		}
		if downs := wifiEventCount(res, "down"); downs != 3 {
			t.Errorf("%s: %d wifi-down events across 3 pulses, want 3", mode, downs)
		}
		if ups := wifiEventCount(res, "up"); ups != 3 {
			t.Errorf("%s: %d wifi revivals across 3 pulses, want 3", mode, ups)
		}
		if res.FailoverFrames < 3 {
			t.Errorf("%s: only %d frames evacuated across 3 flaps", mode, res.FailoverFrames)
		}
		if res.MaxOKGap > 300*time.Millisecond {
			t.Errorf("%s: flap outage %v, want <= 300ms", mode, res.MaxOKGap)
		}
		if res.Fails != 0 {
			t.Errorf("%s: %d calls failed across the flaps, want 0", mode, res.Fails)
		}
	}
}

// TestMultipathDeterminismMatrix extends the determinism regression to
// the path-flap and blackhole scenarios: same seed, byte-identical
// trace; different seeds, different traces. Packet conservation and the
// zero-goroutine invariant are enforced inside every run.
func TestMultipathDeterminismMatrix(t *testing.T) {
	seeds := []int64{1, 7, 1234}
	scenarios := []struct {
		name string
		run  func(int64) (*MultipathResult, error)
	}{
		{"blackhole-single", func(seed int64) (*MultipathResult, error) { return RunMultipath(seed, MPSingle) }},
		{"blackhole-failover", func(seed int64) (*MultipathResult, error) { return RunMultipath(seed, MPFailover) }},
		{"blackhole-full", func(seed int64) (*MultipathResult, error) { return RunMultipath(seed, MPFull) }},
		{"flap-full", func(seed int64) (*MultipathResult, error) { return RunMultipathFlap(seed, MPFull) }},
	}
	for _, sc := range scenarios {
		var hashes []uint64
		for _, seed := range seeds {
			a := runMPScenario(t, sc.name, sc.run, seed)
			b := runMPScenario(t, sc.name, sc.run, seed)
			if !bytes.Equal(a.Trace, b.Trace) {
				t.Errorf("%s seed=%d: traces differ (%d vs %d bytes, hash %x vs %x)",
					sc.name, seed, len(a.Trace), len(b.Trace), a.TraceHash, b.TraceHash)
			}
			if len(a.Trace) == 0 {
				t.Errorf("%s seed=%d produced an empty trace", sc.name, seed)
			}
			hashes = append(hashes, a.TraceHash)
		}
		if hashes[0] == hashes[1] && hashes[1] == hashes[2] {
			t.Errorf("%s: all seeds produced the identical trace — seeding is inert", sc.name)
		}
	}
}
