package marsim

import (
	"bytes"
	"runtime"
	"testing"
	"time"
)

// runScenario executes one canonical scenario with leak accounting: a
// simulation run spawns ZERO goroutines (the whole stack is event-driven
// on the virtual clock), so the count before and after must match.
func runScenario(t *testing.T, name string, run func(int64) (*Result, error), seed int64) *Result {
	t.Helper()
	before := runtime.NumGoroutine()
	res, err := run(seed)
	if err != nil {
		t.Fatalf("%s(seed=%d): %v", name, seed, err)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("%s leaked goroutines: %d -> %d (simulation must spawn none)", name, before, after)
	}
	return res
}

func TestClockSemantics(t *testing.T) {
	s := NewScenario("clock", 1)
	t0 := s.Clock.Now()
	var fired bool
	tm := s.Clock.AfterFunc(50*time.Millisecond, func() { fired = true })
	s.Sim.Schedule(10*time.Millisecond, func() {
		if got := s.Clock.Since(t0); got != 10*time.Millisecond {
			t.Errorf("Since = %v at +10ms", got)
		}
	})
	if err := s.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("AfterFunc never fired")
	}
	if tm.Stop() {
		t.Error("Stop on a fired timer reported true")
	}
	// A stopped timer never fires.
	var leaked bool
	tm2 := s.Clock.AfterFunc(time.Millisecond, func() { leaked = true })
	if !tm2.Stop() {
		t.Error("Stop on a pending timer reported false")
	}
	if err := s.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	if leaked {
		t.Error("cancelled timer fired anyway")
	}
}

func TestHandoverScenario(t *testing.T) {
	res := runScenario(t, "handover", RunHandover, 42)
	if res.Reconnects != 0 {
		t.Errorf("handover caused %d reconnects", res.Reconnects)
	}
	if res.OKs == 0 || res.Calls == 0 {
		t.Fatalf("no traffic: %+v", res)
	}
	// The vast majority of calls survive a clean vertical handover.
	if float64(res.OKs) < 0.8*float64(res.Calls) {
		t.Errorf("only %d/%d calls succeeded across the handover", res.OKs, res.Calls)
	}
	if res.Server.Served == 0 {
		t.Error("server served nothing")
	}
}

func TestCongestionScenario(t *testing.T) {
	res := runScenario(t, "congestion", RunCongestion, 42)
	if res.Fails == 0 {
		t.Error("uplink congestion produced zero failures")
	}
	if res.OKs == 0 {
		t.Error("no call ever succeeded")
	}
}

func TestPartitionResumeScenario(t *testing.T) {
	res := runScenario(t, "partition-resume", RunPartitionResume, 42)
	if res.Reconnects < 1 {
		t.Errorf("no reconnect across the partition: %+v", res)
	}
	var sawDead, sawActive bool
	for _, tr := range res.Transitions {
		switch tr.State.String() {
		case "dead":
			sawDead = true
		case "active":
			sawActive = true
		}
	}
	if !sawDead || !sawActive {
		t.Errorf("transitions missed dead/active: %+v", res.Transitions)
	}
}

// TestPartitionResumeExactTimestamps pins the virtual-time determinism of
// failure detection: two runs with the same seed observe every session
// state transition at the exact same virtual microsecond.
func TestPartitionResumeExactTimestamps(t *testing.T) {
	a := runScenario(t, "partition-resume", RunPartitionResume, 7)
	b := runScenario(t, "partition-resume", RunPartitionResume, 7)
	if len(a.Transitions) == 0 {
		t.Fatal("no transitions recorded")
	}
	if len(a.Transitions) != len(b.Transitions) {
		t.Fatalf("transition counts differ: %d vs %d", len(a.Transitions), len(b.Transitions))
	}
	for i := range a.Transitions {
		if a.Transitions[i] != b.Transitions[i] {
			t.Errorf("transition %d differs: %+v vs %+v", i, a.Transitions[i], b.Transitions[i])
		}
	}
	// And the timestamps are meaningful: dead-path detection follows the
	// partition by at least the keepalive miss threshold (3 x 100 ms).
	partitionAt := 2 * time.Second
	for _, tr := range a.Transitions {
		if tr.State.String() == "dead" && tr.At > partitionAt {
			if tr.At < partitionAt+300*time.Millisecond {
				t.Errorf("dead declared %v after partition, before the miss threshold", tr.At-partitionAt)
			}
			break
		}
	}
}

// TestDeterminismMatrix is the regression the whole testkit hangs on:
// for each seed, two independent runs of the same scenario produce
// byte-identical event traces; different seeds produce different ones.
func TestDeterminismMatrix(t *testing.T) {
	seeds := []int64{1, 7, 1234}
	scenarios := []struct {
		name string
		run  func(int64) (*Result, error)
	}{
		{"handover", RunHandover},
		{"congestion", RunCongestion},
		{"partition-resume", RunPartitionResume},
		{"overload-storm", RunOverloadStorm},
	}
	for _, sc := range scenarios {
		var hashes []uint64
		for _, seed := range seeds {
			a, err := sc.run(seed)
			if err != nil {
				t.Fatalf("%s seed=%d run A: %v", sc.name, seed, err)
			}
			b, err := sc.run(seed)
			if err != nil {
				t.Fatalf("%s seed=%d run B: %v", sc.name, seed, err)
			}
			if !bytes.Equal(a.Trace, b.Trace) {
				t.Errorf("%s seed=%d: traces differ (%d vs %d bytes, hash %x vs %x)",
					sc.name, seed, len(a.Trace), len(b.Trace), a.TraceHash, b.TraceHash)
			}
			if a.Trace == nil || len(a.Trace) == 0 {
				t.Errorf("%s seed=%d produced an empty trace", sc.name, seed)
			}
			hashes = append(hashes, a.TraceHash)
		}
		if hashes[0] == hashes[1] && hashes[1] == hashes[2] {
			t.Errorf("%s: all seeds produced the identical trace — seeding is inert", sc.name)
		}
	}
}

// TestSoakTimeCompression is the endurance acceptance: at least 10
// minutes of virtual time — handovers, partitions, steady call load on
// the full real stack — must complete in under 5 s of wall time, twice,
// with byte-identical traces.
func TestSoakTimeCompression(t *testing.T) {
	const simMinutes = 10
	start := time.Now()
	a := runScenario(t, "soak", func(seed int64) (*Result, error) { return RunSoak(seed, simMinutes) }, 99)
	b := runScenario(t, "soak", func(seed int64) (*Result, error) { return RunSoak(seed, simMinutes) }, 99)
	wall := time.Since(start)
	if a.SimTime < simMinutes*time.Minute {
		t.Errorf("simulated only %v, want >= %v", a.SimTime, simMinutes*time.Minute)
	}
	if wall > 5*time.Second {
		t.Errorf("two %d-minute soaks took %v wall time, want < 5s", simMinutes, wall)
	}
	if !bytes.Equal(a.Trace, b.Trace) {
		t.Errorf("soak traces differ across same-seed runs: %d vs %d bytes", len(a.Trace), len(b.Trace))
	}
	if a.Calls < int64(simMinutes)*60*4 {
		t.Errorf("soak issued only %d calls", a.Calls)
	}
	t.Logf("soak: %v virtual in %v wall, %d calls (%d ok, %d fail), %d reconnects, trace %d lines (hash %x)",
		a.SimTime, wall/2, a.Calls, a.OKs, a.Fails, a.Reconnects, bytes.Count(a.Trace, []byte{'\n'}), a.TraceHash)
}
