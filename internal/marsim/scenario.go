package marsim

import (
	"fmt"
	"time"

	"marnet/internal/simnet"
	"marnet/internal/wire"
)

// Scenario wires one deterministic experiment together: a seeded
// simulator, its virtual clock, the in-memory network, and the event
// trace. Build the stack (hosts, servers, clients), script phases with
// At, register teardown with Defer and invariants with Check, then Run.
type Scenario struct {
	Name  string
	Seed  int64
	Sim   *simnet.Sim
	Clock *Clock
	Net   *Net
	Trace *Trace

	cleanups []func()
	checks   []func() error
}

// NewScenario creates a named scenario; the seed fixes every random
// decision (link loss, jitter, retry jitter, session redial backoff), so
// one (name, seed) pair identifies exactly one trace.
func NewScenario(name string, seed int64) *Scenario {
	sim := simnet.New(seed)
	clock := NewClock(sim)
	trace := NewTrace(sim)
	return &Scenario{
		Name:  name,
		Seed:  seed,
		Sim:   sim,
		Clock: clock,
		Net:   NewNet(sim, clock, trace),
		Trace: trace,
	}
}

// At schedules fn at an absolute virtual time.
func (s *Scenario) At(t time.Duration, fn func()) { s.Sim.ScheduleAt(t, fn) }

// Logf records a scenario-level event into the trace.
func (s *Scenario) Logf(format string, args ...any) { s.Trace.Logf(format, args...) }

// Defer registers teardown run (in LIFO order) when the horizon is
// reached — close clients before servers by deferring servers first.
func (s *Scenario) Defer(fn func()) { s.cleanups = append(s.cleanups, fn) }

// Check registers an invariant verified after teardown and drain.
func (s *Scenario) Check(fn func() error) { s.checks = append(s.checks, fn) }

// Run drives the simulation to the horizon, tears the stack down, drains
// every remaining event (in-flight packets land on closed endpoints and
// are accounted, cancelled timers evaporate), then verifies packet
// conservation and every registered invariant. The whole run executes on
// the calling goroutine.
func (s *Scenario) Run(horizon time.Duration) error {
	s.Logf("scenario %s seed=%d start", s.Name, s.Seed)
	if err := s.Sim.RunUntil(horizon); err != nil {
		return fmt.Errorf("marsim: scenario %s: %w", s.Name, err)
	}
	for i := len(s.cleanups) - 1; i >= 0; i-- {
		s.cleanups[i]()
	}
	if err := s.Sim.Run(); err != nil {
		return fmt.Errorf("marsim: scenario %s drain: %w", s.Name, err)
	}
	s.Logf("scenario %s end", s.Name)
	if err := s.Net.CheckConservation(); err != nil {
		return err
	}
	for _, c := range s.checks {
		if err := c(); err != nil {
			return fmt.Errorf("marsim: scenario %s: %w", s.Name, err)
		}
	}
	return nil
}

// SeqChecker is the per-stream delivery invariant: no sequence number is
// ever delivered twice, and with Strict set (loss-free paths, where no
// retransmission can overtake newer data) sequence numbers are strictly
// increasing per stream.
type SeqChecker struct {
	Strict bool
	seen   map[uint16]map[int64]bool
	last   map[uint16]int64
	errs   []string
}

// NewSeqChecker builds a checker; wrap the stack's OnMessage with Wrap.
func NewSeqChecker(strict bool) *SeqChecker {
	return &SeqChecker{
		Strict: strict,
		seen:   make(map[uint16]map[int64]bool),
		last:   make(map[uint16]int64),
	}
}

// Wrap interposes the checker before next (next may be nil).
func (sc *SeqChecker) Wrap(next func(wire.Message)) func(wire.Message) {
	return func(m wire.Message) {
		if s := sc.seen[m.Stream]; s == nil {
			sc.seen[m.Stream] = map[int64]bool{m.Seq: true}
			sc.last[m.Stream] = m.Seq
		} else if s[m.Seq] {
			sc.errs = append(sc.errs, fmt.Sprintf("stream %d seq %d delivered twice", m.Stream, m.Seq))
		} else {
			s[m.Seq] = true
			if sc.Strict && m.Seq <= sc.last[m.Stream] {
				sc.errs = append(sc.errs, fmt.Sprintf("stream %d seq %d after %d", m.Stream, m.Seq, sc.last[m.Stream]))
			}
			if m.Seq > sc.last[m.Stream] {
				sc.last[m.Stream] = m.Seq
			}
		}
		if next != nil {
			next(m)
		}
	}
}

// Err reports every violation observed, or nil.
func (sc *SeqChecker) Err() error {
	if len(sc.errs) == 0 {
		return nil
	}
	return fmt.Errorf("marsim: seq invariant: %d violations, first: %s", len(sc.errs), sc.errs[0])
}

// Delivered reports how many distinct seqs arrived on stream id.
func (sc *SeqChecker) Delivered(stream uint16) int { return len(sc.seen[stream]) }
