package marsim

import (
	"bytes"
	"testing"
	"time"

	"marnet/internal/edge"
)

// smallCity is the scaled-down test city: big enough for hundreds of
// thousands of events, small enough that a matrix of runs stays fast.
func smallCity(seed int64, crowd bool) CityConfig {
	cfg := CityConfig{
		Seed:     seed,
		Users:    2_000,
		SideKm:   16,
		CellGrid: 8,
		Sites:    9,
		Horizon:  2 * time.Minute,
	}
	if crowd {
		cfg.Crowd = &FlashCrowd{
			Users: 300, At: 30 * time.Second, RampUp: 10 * time.Second,
			Duration: 60 * time.Second, X: 8, Y: 8, RadiusKm: 2,
		}
	}
	return cfg
}

func runCity(t *testing.T, cfg CityConfig, place bool) (*City, CityResult) {
	t.Helper()
	c := NewCity(cfg)
	if place {
		sel, err := edge.Greedy(c.DemandInstance())
		if err != nil {
			t.Fatalf("greedy: %v", err)
		}
		if err := c.AssignPlacement(sel); err != nil {
			t.Fatalf("assign: %v", err)
		}
	}
	res, err := c.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return c, res
}

// The determinism matrix: three seeds by two scenarios (steady city,
// city with a stadium flash crowd), each run twice through the full
// demand→solve→replay loop. Reruns must produce byte-identical traces;
// different seeds must not.
func TestCityDeterminismMatrix(t *testing.T) {
	type key struct {
		seed  int64
		crowd bool
	}
	traces := map[key][]byte{}
	for _, seed := range []int64{1, 7, 42} {
		for _, crowd := range []bool{false, true} {
			k := key{seed, crowd}
			c1, r1 := runCity(t, smallCity(seed, crowd), true)
			c2, r2 := runCity(t, smallCity(seed, crowd), true)
			if !bytes.Equal(c1.Trace().Bytes(), c2.Trace().Bytes()) {
				t.Fatalf("seed=%d crowd=%v: reruns diverge (trace %d vs %d bytes)",
					seed, crowd, len(c1.Trace().Bytes()), len(c2.Trace().Bytes()))
			}
			if r1.TraceHash != r2.TraceHash || r1.Offloads != r2.Offloads || r1.Hits != r2.Hits {
				t.Fatalf("seed=%d crowd=%v: rerun ledgers diverge: %+v vs %+v", seed, crowd, r1, r2)
			}
			if r1.Offloads == 0 {
				t.Fatalf("seed=%d crowd=%v: no offloads issued", seed, crowd)
			}
			traces[k] = c1.Trace().Bytes()
		}
	}
	if bytes.Equal(traces[key{1, false}], traces[key{7, false}]) {
		t.Error("different seeds produced identical traces")
	}
	if bytes.Equal(traces[key{42, false}], traces[key{42, true}]) {
		t.Error("crowd scenario produced the same trace as the steady city")
	}
}

// Fleet-scale conservation: at ~30k endpoints with a flash crowd, every
// issued offload lands in exactly one ledger bucket (Run checks the
// global, per-cell, and session ledgers internally and errors on any
// imbalance), and the event queue stays bounded by the population — the
// cancel-leak fix is what keeps Pending from growing with churn.
func TestCityFleetConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet-scale run")
	}
	cfg := CityConfig{
		Seed:     3,
		Users:    30_000,
		SideKm:   40,
		CellGrid: 20,
		Sites:    16,
		Horizon:  3 * time.Minute,
		Crowd: &FlashCrowd{
			Users: 1_500, At: 60 * time.Second, RampUp: 15 * time.Second,
			Duration: 90 * time.Second, X: 20, Y: 20, RadiusKm: 3,
		},
	}
	c, res := runCity(t, cfg, true)
	if res.Offloads < 100_000 {
		t.Fatalf("only %d offloads at fleet scale; model under-driving", res.Offloads)
	}
	if res.HoldRate <= 0 || res.HoldRate > 1 {
		t.Fatalf("hold rate %v out of range", res.HoldRate)
	}
	// One live event per endpoint plus the summary timer: the queue must
	// not scale with cumulative offloads or re-arms.
	if res.MaxPending > c.Population()+2 {
		t.Errorf("MaxPending = %d for %d endpoints; queue growing beyond live timers",
			res.MaxPending, c.Population())
	}
	if res.SessionArrivals <= res.SessionEnds {
		// Arrivals strictly exceed ends only if someone is still active;
		// equality is fine too — just require both ledgers moved.
		if res.SessionArrivals == 0 {
			t.Error("no session arrivals recorded")
		}
	}
	if res.EventsFired == 0 || res.TraceHash == 0 {
		t.Errorf("missing run evidence: events=%d hash=%d", res.EventsFired, res.TraceHash)
	}
}

// The per-cell contention model reproduces Figure 2's performance
// anomaly: a 6 Mb/s station's burst occupies the channel several times
// longer than a 54 Mb/s one, and a fast station queued behind it eats
// that airtime — its end-to-end latency inflates by the slow burst even
// though its own PHY rate never changed.
func TestCellPerformanceAnomaly(t *testing.T) {
	cfg := CityConfig{Seed: 1, Users: 2, SideKm: 2, CellGrid: 1, Sites: 4,
		Horizon: time.Minute}
	burst := func(c *City, u *cityUser, now time.Duration) time.Duration {
		before := c.cells[u.cell].busyUntil
		c.offload(u, now)
		return c.cells[u.cell].busyUntil - max(before, now)
	}

	// Scenario A: two fast stations at the cell centre.
	a := NewCity(cfg)
	a.placeUser(0, 1.0, 1.0, false)
	a.placeUser(1, 1.05, 1.0, false)
	a.activate(&a.users[0], 0)
	a.activate(&a.users[1], 0)
	fastBurst := burst(a, &a.users[0], 0)
	fastBacklog := a.cells[0].busyUntil // what user 1 queues behind

	// Scenario B: same cell, but station 0 sits on the outer ring.
	b := NewCity(cfg)
	b.placeUser(0, 1.95, 1.95, false) // far corner: 6 Mb/s ladder rung
	b.placeUser(1, 1.05, 1.0, false)
	b.activate(&b.users[0], 0)
	b.activate(&b.users[1], 0)
	if b.users[0].rate >= 18e6 {
		t.Fatalf("outer-ring station got rate %v; ladder broken", b.users[0].rate)
	}
	slowBurst := burst(b, &b.users[0], 0)
	slowBacklog := b.cells[0].busyUntil

	if slowBurst < 4*fastBurst {
		t.Fatalf("slow burst %v not ≫ fast burst %v; anomaly term missing", slowBurst, fastBurst)
	}
	// The fast station's latency is hostage to whoever held the channel:
	// behind the slow burst its access delay grows by the full difference.
	if slowBacklog-fastBacklog < 3*fastBurst {
		t.Errorf("fast station's wait barely changed behind a slow burst: %v vs %v",
			slowBacklog, fastBacklog)
	}

	// Contention retune: more attached stations inflate the per-frame
	// overhead monotonically (Bianchi retry factor), never below the base.
	c := NewCity(cfg)
	base := c.cells[0].overhead
	var prev time.Duration
	for n := 1; n <= 64; n *= 2 {
		c.cells[0].active = int32(n)
		c.retune(&c.cells[0])
		if c.cells[0].overhead < base {
			t.Fatalf("overhead %v below uncontended base %v at n=%d", c.cells[0].overhead, base, n)
		}
		if c.cells[0].overhead < prev {
			t.Fatalf("overhead not monotone in contention: %v after %v at n=%d",
				c.cells[0].overhead, prev, n)
		}
		prev = c.cells[0].overhead
	}
}

// The demand→solve→replay loop end to end at test scale: the greedy
// placement must beat the cloud baseline on the same seeded load, and
// the rate ladder must degrade monotonically with distance.
func TestCityPlacementBeatsCloud(t *testing.T) {
	cfg := smallCity(11, true)
	_, placed := runCity(t, cfg, true)
	_, cloud := runCity(t, cfg, false)
	if placed.HoldRate <= cloud.HoldRate {
		t.Fatalf("placement hold %.4f did not beat cloud hold %.4f",
			placed.HoldRate, cloud.HoldRate)
	}
	if placed.HoldRate < 0.90 {
		t.Errorf("placement hold %.4f unexpectedly low at test scale", placed.HoldRate)
	}

	prev := float32(1e12)
	for _, d := range []float64{0.1, 0.3, 0.45, 0.9} {
		r := rateLadder(d, 1.0)
		if r > prev {
			t.Fatalf("rate ladder not monotone: %v at %.2f after %v", r, d, prev)
		}
		prev = r
	}
}

func max(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
