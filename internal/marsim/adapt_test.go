package marsim

import (
	"bytes"
	"testing"
	"time"

	"marnet/internal/adapt"
)

// TestAdaptCongestionBeatsFixedTiers is the headline acceptance run for
// the degradation controller (ISSUE 6): over the congestion-ramp
// scenario the adaptive policy must land strictly more frames inside
// the 75 ms budget than *every* fixed rung of the ladder, while
// shipping fewer uplink bytes than fixed-full. Two seeds, so a lucky
// draw can't carry the claim.
func TestAdaptCongestionBeatsFixedTiers(t *testing.T) {
	for _, seed := range []int64{7, 42} {
		adaptive, err := RunAdaptCongestion(seed, PolicyAdaptive)
		if err != nil {
			t.Fatalf("seed %d adaptive: %v", seed, err)
		}
		t.Logf("seed=%-3d %-16s hits=%d/%d (%.1f%%) upBytes=%d switches=%d rms=%.1f",
			seed, adaptive.Kind, adaptive.Hits, adaptive.Frames, 100*adaptive.HitRate(),
			adaptive.UpBytes, adaptive.Switches, adaptive.RMSError)
		if adaptive.Switches == 0 {
			t.Errorf("seed %d: controller never switched across the congestion ramp", seed)
		}
		for _, k := range []AdaptPolicyKind{PolicyFixedFull, PolicyFixedFeatures, PolicyFixedTracking} {
			fixed, err := RunAdaptCongestion(seed, k)
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, k, err)
			}
			t.Logf("seed=%-3d %-16s hits=%d/%d (%.1f%%) upBytes=%d",
				seed, fixed.Kind, fixed.Hits, fixed.Frames, 100*fixed.HitRate(), fixed.UpBytes)
			if fixed.Frames != adaptive.Frames {
				t.Errorf("seed %d: %s produced %d frames, adaptive %d — harness drift",
					seed, fixed.Kind, fixed.Frames, adaptive.Frames)
			}
			if fixed.Hits >= adaptive.Hits {
				t.Errorf("seed %d: fixed %s hit %d frames >= adaptive %d",
					seed, fixed.Kind, fixed.Hits, adaptive.Hits)
			}
			if k == PolicyFixedFull && adaptive.UpBytes >= fixed.UpBytes {
				t.Errorf("seed %d: adaptive shipped %d bytes >= fixed-full %d",
					seed, adaptive.UpBytes, fixed.UpBytes)
			}
		}
	}
}

// TestAdaptDeterminism: same seed, same scenario, twice — the decision
// trace, the event trace, and every counter must be identical. The
// whole stack (sim, wire, rpc retry jitter, FEC planning, controller)
// is seeded, so any divergence is a real nondeterminism bug.
func TestAdaptDeterminism(t *testing.T) {
	a, err := RunAdaptCongestion(1, PolicyAdaptive)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAdaptCongestion(1, PolicyAdaptive)
	if err != nil {
		t.Fatal(err)
	}
	if a.DecisionHash != b.DecisionHash {
		t.Errorf("decision hash diverged: %#x vs %#x", a.DecisionHash, b.DecisionHash)
	}
	if a.TraceHash != b.TraceHash {
		t.Errorf("trace hash diverged: %#x vs %#x", a.TraceHash, b.TraceHash)
	}
	if !bytes.Equal(a.Trace, b.Trace) {
		t.Error("event traces are not byte-identical")
	}
	if a.Hits != b.Hits || a.UpBytes != b.UpBytes || a.Switches != b.Switches {
		t.Errorf("counters diverged: hits %d/%d upBytes %d/%d switches %d/%d",
			a.Hits, b.Hits, a.UpBytes, b.UpBytes, a.Switches, b.Switches)
	}
	if len(a.Decisions) == 0 {
		t.Fatal("controller retained no decisions")
	}
}

// TestAdaptHandoverRetxSwitch exercises the §VI-C affordability rule:
// handover onto a 55 ms one-way cell link pushes RTT past Budget/2, so
// the controller must trade retransmission for FEC while on the cell
// radio, and trade back after the return handover — exactly one flip
// each way. Whenever ARQ is off, the FEC plan must actually carry
// repair shards.
func TestAdaptHandoverRetxSwitch(t *testing.T) {
	adaptive, err := RunAdaptHandover(7, PolicyAdaptive)
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := RunAdaptHandover(7, PolicyFixedFull)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("adaptive hits=%d/%d fixed-full hits=%d/%d flips=%d",
		adaptive.Hits, adaptive.Frames, fixed.Hits, fixed.Frames, adaptive.RetxFlips)
	if adaptive.Hits <= fixed.Hits {
		t.Errorf("adaptive hit %d frames <= fixed-full %d across handover", adaptive.Hits, fixed.Hits)
	}
	if adaptive.RetxFlips != 2 {
		t.Errorf("want exactly 2 ARQ<->FEC flips (out and back), got %d", adaptive.RetxFlips)
	}
	sawFEC := false
	for _, d := range adaptive.Decisions {
		if d.Policy.Retransmit {
			continue
		}
		sawFEC = true
		// FEC may only engage after the 8 s handover raises the RTT; the
		// flip *back* lags the 16 s return while the SRTT EWMA re-learns
		// the cheap radio from fresh samples, so no upper bound here —
		// the final-decision check below pins the recovery.
		if d.Now < 8*time.Second {
			t.Errorf("FEC active at t=%v, before the handover", d.Now)
		}
		if d.Policy.Mode != adapt.ModeSkip && (d.Policy.K == 0 || d.Policy.M == 0) {
			t.Errorf("t=%v: ARQ off but FEC plan is k=%d m=%d (no repair)",
				d.Now, d.Policy.K, d.Policy.M)
		}
	}
	if !sawFEC {
		t.Error("controller never switched to FEC on the cell radio")
	}
	if last := adaptive.Decisions[len(adaptive.Decisions)-1]; !last.Policy.Retransmit {
		t.Errorf("retransmission never resumed after the return handover (final policy %+v)", last.Policy)
	}
}

// TestAdaptGEHysteresis is the oscillation guard (satellite 4): under a
// seeded Gilbert-Elliott burst regime the full controller — min-dwell,
// miss-EWMA, upgrade-relapse backoff — must hold its mode essentially
// steady, while the same controller with hysteresis disabled thrashes.
func TestAdaptGEHysteresis(t *testing.T) {
	guarded, err := RunAdaptGEBurst(7, PolicyAdaptive)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := RunAdaptGEBurst(7, PolicyAdaptiveNoHyst)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("guarded switches=%d hits=%d/%d peakLoss=%.4f | naive switches=%d hits=%d/%d",
		guarded.Switches, guarded.Hits, guarded.Frames, guarded.PeakWireLoss,
		naive.Switches, naive.Hits, naive.Frames)
	if guarded.PeakWireLoss <= 0 {
		t.Error("burst filter left no mark on the wire loss estimator")
	}
	if guarded.Switches > 2 {
		t.Errorf("guarded controller switched %d times under burst loss (want <= 2)", guarded.Switches)
	}
	if naive.Switches < 4*(guarded.Switches+1) {
		t.Errorf("no-hysteresis control switched only %d times vs guarded %d — scenario lost its teeth",
			naive.Switches, guarded.Switches)
	}
	if naive.Hits-guarded.Hits > 10 {
		t.Errorf("hysteresis cost real hits: guarded %d vs naive %d", guarded.Hits, naive.Hits)
	}
}
