package marsim

import (
	"fmt"
	"time"

	"marnet/internal/adapt"
	"marnet/internal/faults"
	"marnet/internal/obs"
	"marnet/internal/rpc"
	"marnet/internal/simnet"
)

// This file is the deep-diagnosis acceptance scenario: the adaptive
// client runs through a Gilbert–Elliott loss burst with a flight
// recorder and the SLO burn-rate engine armed, entirely on virtual
// time. The burst produces a retransmit storm, the storm blows frame
// budgets, the SLO engine detects hit-rate erosion, and the resulting
// snapshots must show the whole causal chain — retransmits, then the
// ladder downgrade — byte-identically for the same seed.

// Flight scenario tuning: windows are compressed to the simulated
// phases (the burst lasts ten seconds, not ten minutes).
const (
	flightWindow   = 5 * time.Second
	flightCooldown = 2 * time.Second
	flightSnapsMax = 16

	flightSLOSlot    = 250 * time.Millisecond
	flightSLOFast    = 2 * time.Second
	flightSLOSlow    = 8 * time.Second
	flightSLOObj     = 0.9
	flightSLOFastBrn = 3.0
	flightSLOSlowBrn = 1.5
	flightSLOMinN    = 8
)

// FlightResult summarizes one recorded GE-burst run.
type FlightResult struct {
	Seed   int64 `json:"seed"`
	Frames int64 `json:"frames"`
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`

	Events    uint64   `json:"events"`    // events the recorder ever saw
	Snapshots int      `json:"snapshots"` // frozen captures
	Reasons   []string `json:"reasons"`   // freeze reasons, in order

	SessionTriggers int64 `json:"session_slo_triggers"`
	GlobalTriggers  int64 `json:"global_slo_triggers"`

	// StormSnapshot indexes the first snapshot whose timeline shows the
	// causal chain retransmit storm → ladder downgrade (-1 if none did).
	StormSnapshot int `json:"storm_snapshot"`

	// SnapshotHash folds every snapshot's binary encoding into one FNV-1a
	// value: equal hashes mean byte-identical captures.
	SnapshotHash uint64        `json:"snapshot_hash"`
	TraceHash    uint64        `json:"trace_hash"`
	SimTime      time.Duration `json:"sim_time_ns"`

	// Snaps holds the frozen snapshots for test inspection.
	Snaps []*obs.Snapshot `json:"-"`
}

// stormIndex finds the first snapshot showing at least `minRetx`
// retransmits followed (in event order) by a ladder downgrade.
func stormIndex(snaps []*obs.Snapshot, minRetx int) int {
	for i, sn := range snaps {
		retx := 0
		for _, e := range sn.Events {
			switch e.Kind {
			case obs.EvFrameRetransmit:
				retx++
			case obs.EvAdaptMove:
				from, to := adapt.Mode(e.A>>8), adapt.Mode(e.A&0xff)
				if to > from && retx >= minRetx {
					return i
				}
			}
		}
	}
	return -1
}

// hashSnapshots folds the binary encodings into one FNV-1a hash.
func hashSnapshots(snaps []*obs.Snapshot) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, sn := range snaps {
		for _, b := range sn.Encode() {
			h = (h ^ uint64(b)) * prime
		}
	}
	return h
}

// RunFlightGEBurst replays the RunAdaptGEBurst shape — Gilbert–Elliott
// burst loss over the uplink from t=3 s to t=13 s of a 16 s run — with
// the full diagnosis layer armed: flight-recorder hooks in the wire
// datapath, the adapt controller and the rpc budget attribution, plus a
// per-session SLO chained into a global one. Snapshots freeze on blown
// budgets and on SLO burn, and every capture's timeline is written into
// the scenario trace, so the run is reproducible end to end.
func RunFlightGEBurst(seed int64) (*FlightResult, error) {
	s := NewScenario("flight-ge-burst", seed)
	srv, serverEp, err := adaptServer(s, 2)
	if err != nil {
		return nil, err
	}

	rec := obs.NewFlightRecorder(obs.RecorderConfig{
		Session:      "mobile",
		Window:       flightWindow,
		Cooldown:     flightCooldown,
		MaxSnapshots: flightSnapsMax,
		Clock:        s.Clock,
		OnFreeze: func(sn *obs.Snapshot) {
			for _, line := range sn.Timeline() {
				s.Logf("%s", line)
			}
		},
	})
	global := obs.NewSLO(obs.SLOConfig{
		Name: "global", Objective: flightSLOObj,
		Slot: flightSLOSlot, FastWindow: flightSLOFast, SlowWindow: flightSLOSlow,
		FastBurn: flightSLOFastBrn, SlowBurn: flightSLOSlowBrn,
		MinSamples: flightSLOMinN, Clock: s.Clock,
	})
	session := obs.NewSLO(obs.SLOConfig{
		Name: "session-mobile", Objective: flightSLOObj,
		Slot: flightSLOSlot, FastWindow: flightSLOFast, SlowWindow: flightSLOSlow,
		FastBurn: flightSLOFastBrn, SlowBurn: flightSLOSlowBrn,
		MinSamples: flightSLOMinN, Clock: s.Clock,
		Parent: global,
		OnTrigger: func(t obs.SLOTrigger) {
			s.Logf("%s", t.String())
			rec.Record(obs.EvSLOTrigger, 0, 0,
				uint32(t.FastBurn*1000), uint64(t.SlowBurn*1000))
			rec.Freeze("slo-burn")
		},
	})

	host := s.Net.NewHost("mobile", adaptEdgeProfile())
	cl, err := rpc.Dial("sim://server", rpc.ClientConfig{
		Clock:    s.Clock,
		Dialer:   host.Dialer(serverEp),
		Seed:     seed + 1,
		Retry:    rpc.RetryPolicy{Max: 2},
		Tracer:   obs.NewTracer(adaptBudgetSpans, seed+2),
		Budget:   adaptBudget,
		Recorder: rec,
		SLO:      session,
	})
	if err != nil {
		return nil, err
	}

	cfg := adaptCtrlConfig()
	cfg.Recorder = rec
	const length = 16 * time.Second
	run := startAdaptRun(s, cl, PolicyAdaptive, cfg, length)

	filter := faultsFlightGE(seed)
	s.At(3*time.Second, func() { host.SetUplinkFilter(filter) })
	s.At(13*time.Second, func() { host.SetUplinkFilter(nil) })

	var res *FlightResult
	s.Defer(func() { srv.Close() })
	s.Defer(func() {
		snaps := rec.Snapshots()
		res = &FlightResult{
			Seed:            seed,
			Frames:          run.frames,
			Hits:            run.hits,
			Misses:          run.misses,
			Events:          rec.Recorded(),
			Snapshots:       len(snaps),
			SessionTriggers: session.Triggers(),
			GlobalTriggers:  global.Triggers(),
			StormSnapshot:   stormIndex(snaps, 1),
			SnapshotHash:    hashSnapshots(snaps),
			Snaps:           snaps,
		}
		for _, sn := range snaps {
			res.Reasons = append(res.Reasons, sn.Reason)
		}
		run.stop()
		cl.Close()
	})
	if err := s.Run(length + adaptDeadline + 100*time.Millisecond); err != nil {
		return nil, err
	}
	res.TraceHash = s.Trace.Hash()
	res.SimTime = s.Sim.Now()
	return res, nil
}

// faultsFlightGE is a harsher burst process than the adapt scenario's:
// bad states average ~10 packets at 80% loss and recur often enough
// that the miss EWMA crosses the degrade threshold — the point of this
// scenario is to capture a downgrade, not to ride the burst out.
func faultsFlightGE(seed int64) simnet.PacketFilter {
	return faults.NewLinkFilter(faults.DirConfig{GE: &faults.GilbertElliott{
		PGoodBad: 0.08, PBadGood: 0.1, LossGood: 0, LossBad: 0.8,
	}}, seed+7)
}

// String renders the one-line summary marbench prints.
func (r *FlightResult) String() string {
	return fmt.Sprintf("flight-ge-burst seed=%d frames=%d hits=%d misses=%d events=%d snaps=%d storm@%d slo=%d/%d hash=%016x",
		r.Seed, r.Frames, r.Hits, r.Misses, r.Events, r.Snapshots,
		r.StormSnapshot, r.SessionTriggers, r.GlobalTriggers, r.SnapshotHash)
}
