package marsim

import (
	"fmt"
	"net"
	"time"

	"marnet/internal/phy"
	"marnet/internal/simnet"
	"marnet/internal/wire"
)

// udpOverhead is the per-datagram IPv4 (20B) + UDP (8B) header cost added
// to every simulated packet, so link serialization times match what the
// same payload would cost on a real socket.
const udpOverhead = 28

// datagram is what a simulated packet carries: the application bytes plus
// the addressing the receiving endpoint reports upward.
type datagram struct {
	data  []byte
	src   *net.UDPAddr
	dst   string // destination endpoint key ("ip:port")
	cross bool   // background cross-traffic, terminates at the sink
}

// Net is the in-memory datagram network: endpoints joined through a
// zero-delay core router, each behind its own uplink/downlink pair shaped
// by a phy.Profile. The path client→server costs the client's uplink plus
// the server's downlink — access link plus backbone, like the paper's
// offloading topology.
type Net struct {
	sim   *simnet.Sim
	clock *Clock
	trace *Trace

	endpoints map[string]*Endpoint
	nextID    int
	links     []*simnet.Link

	// Packet conservation accounting: every injected packet must end in
	// exactly one terminal counter (delivered, sink, dropClosed) or one
	// link-level loss counter. CheckConservation verifies the identity.
	appTx      int64 // datagrams sent by endpoints
	crossTx    int64 // cross-traffic packets injected
	delivered  int64 // datagrams handed to a live endpoint receiver
	sink       int64 // packets with no route (cross-traffic terminus)
	dropClosed int64 // datagrams arriving at a closed endpoint
}

// NewNet builds an empty network on sim, logging into trace.
func NewNet(sim *simnet.Sim, clock *Clock, trace *Trace) *Net {
	return &Net{
		sim:       sim,
		clock:     clock,
		trace:     trace,
		endpoints: make(map[string]*Endpoint),
	}
}

// NewEndpoint attaches a named endpoint with links shaped by profile. The
// address is synthetic and deterministic: allocation order alone decides
// it, so traces are reproducible.
func (n *Net) NewEndpoint(name string, p phy.Profile) *Endpoint {
	id := n.nextID
	n.nextID++
	addr := &net.UDPAddr{
		IP:   net.IPv4(10, 0, byte(id/250), byte(id%250+1)),
		Port: 9000,
	}
	ep := &Endpoint{n: n, name: name, addr: addr, key: addr.String()}
	ep.up = simnet.NewLink(n.sim, p.Up, p.OneWay, simnet.HandlerFunc(n.route),
		simnet.WithJitter(p.Jitter), simnet.WithLoss(p.Loss), simnet.WithName(name+"/up"))
	ep.down = simnet.NewLink(n.sim, p.Down, p.OneWay, simnet.HandlerFunc(ep.deliver),
		simnet.WithJitter(p.Jitter), simnet.WithLoss(p.Loss), simnet.WithName(name+"/down"))
	n.endpoints[ep.key] = ep
	n.links = append(n.links, ep.up, ep.down)
	return ep
}

// route is the core: an uplink delivered a packet, forward it onto the
// destination's downlink (or account its terminal fate).
func (n *Net) route(pkt *simnet.Packet) {
	d := pkt.Payload.(*datagram)
	ep, ok := n.endpoints[d.dst]
	if !ok {
		n.sink++
		if !d.cross { // cross-traffic termination is routine, not a trace event
			n.trace.eventf("sink", "%s -> %s %dB no route", d.src, d.dst, pkt.Size-udpOverhead)
		}
		return
	}
	if ep.closed {
		n.dropClosed++
		n.trace.eventf("drop", "%s -> %s %dB endpoint closed", d.src, d.dst, pkt.Size-udpOverhead)
		return
	}
	ep.down.Send(pkt)
}

// CheckConservation verifies, after the event queue has drained, that no
// packet was silently created or destroyed: per link, delivered equals
// sent minus lost minus filter-dropped plus duplicated; globally, every
// injected datagram reached exactly one terminal outcome.
func (n *Net) CheckConservation() error {
	var lost, qdrops, fdrops, fdups int64
	for _, l := range n.links {
		st := l.Stats()
		if st.Delivered != st.SentPackets-st.LostPackets-st.FilterDrops+st.FilterDups {
			return fmt.Errorf("marsim: link %s leaks packets: %+v", l.Name(), st)
		}
		lost += st.LostPackets
		qdrops += st.QueueDrops
		fdrops += st.FilterDrops
		fdups += st.FilterDups
	}
	injected := n.appTx + n.crossTx + fdups
	terminal := n.delivered + n.sink + n.dropClosed + lost + qdrops + fdrops
	if injected != terminal {
		return fmt.Errorf("marsim: packet conservation violated: injected=%d (app=%d cross=%d dups=%d) terminal=%d (delivered=%d sink=%d dropClosed=%d lost=%d queueDrops=%d filterDrops=%d)",
			injected, n.appTx, n.crossTx, fdups,
			terminal, n.delivered, n.sink, n.dropClosed, lost, qdrops, fdrops)
	}
	return nil
}

// NetStats is a snapshot of the global packet accounting.
type NetStats struct {
	AppTx, CrossTx, Delivered, Sink, DropClosed int64
}

// Stats snapshots the network-wide packet counters.
func (n *Net) Stats() NetStats {
	return NetStats{AppTx: n.appTx, CrossTx: n.crossTx, Delivered: n.delivered,
		Sink: n.sink, DropClosed: n.dropClosed}
}

// Endpoint is one attachment point: a wire.PacketConn whose datagrams ride
// simulated links. Delivery is synchronous on the simulation loop, so the
// whole stack above it runs without a single goroutine.
type Endpoint struct {
	n      *Net
	name   string
	addr   *net.UDPAddr
	key    string
	up     *simnet.Link
	down   *simnet.Link
	recv   func(pkt []byte, from *net.UDPAddr)
	closed bool
	host   *Host
}

var _ wire.PacketConn = (*Endpoint)(nil)

// WriteToUDP injects one datagram toward addr via this endpoint's uplink.
func (ep *Endpoint) WriteToUDP(b []byte, addr *net.UDPAddr) (int, error) {
	if ep.closed {
		return 0, net.ErrClosed
	}
	n := ep.n
	n.appTx++
	n.trace.eventf("tx", "%s -> %s %dB", ep.key, addr.String(), len(b))
	pkt := &simnet.Packet{
		ID:      n.sim.NextPacketID(),
		Size:    len(b) + udpOverhead,
		Created: n.sim.Now(),
		Payload: &datagram{data: append([]byte(nil), b...), src: ep.addr, dst: addr.String()},
	}
	ep.up.Send(pkt)
	return len(b), nil
}

var _ wire.BatchWriter = (*Endpoint)(nil)

// WriteBatch implements wire.BatchWriter for the simulated transport: the
// datagrams are injected back-to-back at one virtual instant, which is
// exactly what a kernel sendmmsg does on real hardware (the link then
// serializes them by size, so pacing semantics downstream are unchanged).
// Each datagram goes through WriteToUDP, so packet-conservation accounting
// and tracing see batched and unbatched sends identically.
func (ep *Endpoint) WriteBatch(dgs []wire.Datagram) (int, error) {
	for i := range dgs {
		if _, err := ep.WriteToUDP(dgs[i].B, dgs[i].Addr); err != nil {
			return i, err
		}
	}
	return len(dgs), nil
}

// deliver is the downlink handler: hand the datagram to the stack above.
func (ep *Endpoint) deliver(pkt *simnet.Packet) {
	d := pkt.Payload.(*datagram)
	if ep.closed || ep.recv == nil {
		ep.n.dropClosed++
		ep.n.trace.eventf("drop", "%s -> %s %dB endpoint closed", d.src, d.dst, pkt.Size-udpOverhead)
		return
	}
	ep.n.delivered++
	ep.n.trace.eventf("rx", "%s -> %s %dB", d.src, d.dst, pkt.Size-udpOverhead)
	ep.recv(d.data, d.src)
}

// LocalAddr reports the endpoint's synthetic address.
func (ep *Endpoint) LocalAddr() net.Addr { return ep.addr }

// UDPAddr is LocalAddr without the interface indirection (dial target).
func (ep *Endpoint) UDPAddr() *net.UDPAddr { return ep.addr }

// Start installs the inbound delivery callback.
func (ep *Endpoint) Start(recv func(pkt []byte, from *net.UDPAddr)) { ep.recv = recv }

// Synchronous reports event-loop delivery: true, this is a simulation.
func (ep *Endpoint) Synchronous() bool { return true }

// Close detaches the endpoint; in-flight packets toward it are dropped
// (and accounted) on arrival.
func (ep *Endpoint) Close() error {
	ep.closed = true
	return nil
}

// Links exposes the endpoint's uplink and downlink for measurement.
func (ep *Endpoint) Links() (up, down *simnet.Link) { return ep.up, ep.down }

// Host models one mobile device: every endpoint it opens (each re-dial of
// a resilient session opens a fresh one, like a fresh UDP socket) shares
// the host's current radio profile and partition state. SetProfile is a
// vertical handover applied to live links; Partition is total loss.
type Host struct {
	n           *Net
	name        string
	profile     phy.Profile
	partitioned bool
	upFilter    simnet.PacketFilter
	eps         []*Endpoint
}

// NewHost creates a host with an initial radio profile.
func (n *Net) NewHost(name string, p phy.Profile) *Host {
	return &Host{n: n, name: name, profile: p}
}

// NewEndpoint opens a fresh attachment (socket) on this host's radio.
func (h *Host) NewEndpoint() *Endpoint {
	ep := h.n.NewEndpoint(fmt.Sprintf("%s/%d", h.name, len(h.eps)), h.profile)
	ep.host = h
	h.eps = append(h.eps, ep)
	h.applyTo(ep)
	return ep
}

// SetProfile performs a vertical handover: all live endpoints' links take
// the new rate/delay/jitter/loss immediately; packets already in flight
// keep their old delivery times, like a real radio switch.
func (h *Host) SetProfile(p phy.Profile) {
	h.profile = p
	h.n.trace.Logf("host %s handover to %s", h.name, p.Name)
	for _, ep := range h.eps {
		h.applyTo(ep)
	}
}

// Partition toggles total packet loss on every live and future endpoint of
// this host — the device walked out of coverage.
func (h *Host) Partition(on bool) {
	h.partitioned = on
	h.n.trace.Logf("host %s partition=%v", h.name, on)
	for _, ep := range h.eps {
		h.applyTo(ep)
	}
}

// SetUplinkFilter attaches an external per-packet fault process (for
// example faults.NewLinkFilter with a Gilbert–Elliott burst model) to the
// uplink of every live and future endpoint of this host. Pass nil to clear
// it. The radio's own Bernoulli loss still applies on top.
func (h *Host) SetUplinkFilter(f simnet.PacketFilter) {
	h.upFilter = f
	for _, ep := range h.eps {
		h.applyTo(ep)
	}
}

func (h *Host) applyTo(ep *Endpoint) {
	p := h.profile
	loss := p.Loss
	if h.partitioned {
		loss = 1
	}
	ep.up.SetFilter(h.upFilter)
	ep.up.SetRate(p.Up)
	ep.up.SetDelay(p.OneWay)
	ep.up.SetJitter(p.Jitter)
	ep.up.SetLoss(loss)
	ep.down.SetRate(p.Down)
	ep.down.SetDelay(p.OneWay)
	ep.down.SetJitter(p.Jitter)
	ep.down.SetLoss(loss)
}

// Dialer returns a wire.ConnDialer that opens a fresh endpoint on this
// host per dial — exactly how a resilient session re-dials through a new
// socket after the old path died.
func (h *Host) Dialer(server *Endpoint) wire.ConnDialer {
	return func(cfg wire.Config) (*wire.Conn, error) {
		return wire.DialVia(h.NewEndpoint(), server.UDPAddr(), cfg)
	}
}

// current returns the most recently opened live endpoint.
func (h *Host) current() *Endpoint {
	for i := len(h.eps) - 1; i >= 0; i-- {
		if !h.eps[i].closed {
			return h.eps[i]
		}
	}
	return nil
}

// StartCrossTraffic injects a constant-bit-rate background flow of
// pktSize-byte packets into this host's current uplink — the Figure 3
// competing upload that congests the asymmetric access link. The flow
// terminates at the network core (no destination endpoint). The returned
// stop function halts the flow.
func (h *Host) StartCrossTraffic(bps float64, pktSize int) (stop func()) {
	interval := time.Duration(float64(pktSize*8) / bps * float64(time.Second))
	if interval <= 0 {
		interval = time.Microsecond
	}
	stopped := false
	var ev simnet.Event
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		if ep := h.current(); ep != nil {
			h.n.crossTx++
			ep.up.Send(&simnet.Packet{
				ID:      h.n.sim.NextPacketID(),
				Size:    pktSize,
				Created: h.n.sim.Now(),
				Payload: &datagram{src: ep.addr, dst: "cross-sink", cross: true},
			})
		}
		ev = h.n.sim.Schedule(interval, tick)
	}
	h.n.trace.Logf("host %s cross-traffic start %.0fbps", h.name, bps)
	tick()
	return func() {
		if stopped {
			return
		}
		stopped = true
		ev.Cancel()
		h.n.trace.Logf("host %s cross-traffic stop", h.name)
	}
}
