// Package marsim is the deterministic full-stack simulation testkit: it
// hosts the real wire/session/rpc/overload stack — unmodified protocol
// code — on internal/simnet's virtual clock and an in-memory datagram
// network. A scenario (handover, congestion collapse, partition, overload
// storm) runs minutes of simulated time in milliseconds of wall time, on a
// single goroutine, and the same seed always produces the byte-identical
// event trace.
package marsim

import (
	"time"

	"marnet/internal/simnet"
	"marnet/internal/vclock"
)

// epoch anchors the virtual wall clock: sim time 0 maps to this instant.
// Any fixed value works; a round positive Unix time keeps logged
// timestamps readable and far from zero-value traps.
var epoch = time.Unix(1_000_000_000, 0).UTC()

// Clock adapts a simnet.Sim into a vclock.Clock, so every protocol layer
// that takes an injected clock (wire, rpc, overload, faults) runs on
// virtual time. Now is epoch + sim elapsed; AfterFunc is a scheduled sim
// event. Clock methods must only be called from the simulation goroutine.
type Clock struct {
	sim *simnet.Sim
}

// NewClock wraps sim as a virtual time source.
func NewClock(sim *simnet.Sim) *Clock { return &Clock{sim: sim} }

// Now returns the current virtual wall-clock instant.
func (c *Clock) Now() time.Time { return epoch.Add(c.sim.Now()) }

// Since returns the virtual time elapsed since t.
func (c *Clock) Since(t time.Time) time.Duration { return c.Now().Sub(t) }

// AfterFunc schedules fn on the simulation loop after virtual duration d.
func (c *Clock) AfterFunc(d time.Duration, fn func()) vclock.Timer {
	if d < 0 {
		d = 0
	}
	return &simTimer{clock: c, fn: fn, ev: c.sim.Schedule(d, fn)}
}

// simTimer implements vclock.Timer (and vclock.Resetter) over a scheduled
// sim event.
type simTimer struct {
	clock *Clock
	fn    func()
	ev    simnet.Event
}

// Stop cancels the pending event; like time.Timer.Stop it reports false
// when the callback already ran (or was already stopped). Cancelling
// releases the sim's event record immediately, so a timer that re-arms
// forever holds exactly one live queue entry, never a trail of dead ones.
func (t *simTimer) Stop() bool {
	if !t.ev.Pending() {
		return false
	}
	t.ev.Cancel()
	return true
}

// Reset re-arms the timer: the original callback fires again after
// virtual duration d. Scheduling a fresh event keeps the sim's event
// ordering identical to an AfterFunc call at the same instant, so
// Reset-based timer chains reproduce the exact traces of AfterFunc
// chains.
func (t *simTimer) Reset(d time.Duration) bool {
	pending := t.Stop()
	if d < 0 {
		d = 0
	}
	t.ev = t.clock.sim.Schedule(d, t.fn)
	return pending
}
