package marsim

// The fleet tier: a 100k-endpoint city on virtual time. Unlike the
// scenario harness — which hosts the real wire/rpc stack per endpoint and
// tops out at a handful of hosts — the city models each Mobile AR user as
// compact analytic state (no goroutine, no socket, ~56 bytes plus one
// pre-bound callback) driven by a single pooled sim event. Each offload
// request resolves its end-to-end latency arithmetically at issue time:
// the user's 802.11 cell is a FIFO radio medium whose per-burst occupancy
// reproduces Figure 2's performance anomaly (a slow station's airtime
// delays everyone, collapsing cell goodput toward the slowest attached
// rate), the metro network contributes a distance-based delay to the
// user's assigned edge site, and the site adds a fixed compute time. That
// keeps a 10-virtual-minute, 100k-user city to ~1 sim event per offload —
// tens of millions of events, seconds of wall time — which is what makes
// the Section VI-F loop testable at metro scale: export the demand to
// internal/edge, solve min |C|, replay the chosen placement under the
// same seeded load, and measure whether the deadlines actually hold.

import (
	"fmt"
	"math"
	"time"

	"marnet/internal/edge"
	"marnet/internal/phy"
	"marnet/internal/simnet"
)

// FlashCrowd scripts a stadium event: Users extra endpoints materialize
// in a hotspot over RampUp starting at At, stay for Duration, then leave.
type FlashCrowd struct {
	Users    int
	At       time.Duration
	RampUp   time.Duration
	Duration time.Duration
	X, Y     float64 // hotspot centre, km
	RadiusKm float64 // crowd scatter around the hotspot
}

// CityConfig parameterizes one city. Zero fields take the defaults listed
// on each; the demand model follows the related-work assumptions the city
// exists to test: CloudAR-style recognition offloads every couple of
// seconds with local tracking in between, and Ren-style per-user deadline
// budgets split across access, metro network, and edge compute.
type CityConfig struct {
	Seed   int64
	Users  int     // resident fleet size (default 100_000)
	SideKm float64 // city square side (default 80)

	CellGrid int // CellGrid×CellGrid 802.11 cells tiling the city (default 40)
	Sites    int // candidate edge-site locations (default 48)

	Horizon time.Duration // simulated run length (default 10min)

	// Offload demand (per active user).
	OffloadEvery time.Duration // mean gap between offloads (default 2s)
	UplinkBytes  int           // per-offload uplink payload (default 8000)
	DownBytes    int           // per-offload result payload (default 2000)

	// The deadline ledger: Deadline = access + 2×net + Compute must hold
	// per offload. AccessAllowance is the share budgeted for the radio
	// cell when deriving the placement's per-direction network budget.
	Deadline        time.Duration // δa end-to-end (default 60ms)
	Compute         time.Duration // edge processing time (default 20ms)
	AccessAllowance time.Duration // access share for planning (default 25ms)

	// Session process: users alternate exponential on/off periods; the
	// off mean is divided by the diurnal intensity, so load swells and
	// ebbs over the horizon.
	MeanOn        time.Duration // mean session length (default 90s)
	MeanOff       time.Duration // mean idle gap at intensity 1 (default 45s)
	DiurnalPeriod time.Duration // intensity cycle; 0 = one cycle per horizon
	DiurnalDepth  float64       // 0..0.9 modulation (default 0.35)

	Crowd *FlashCrowd // optional stadium event

	// Radio-cell guardrail: requests arriving to a cell backlogged past
	// this are shed (droptail at the AP), so an overloaded cell degrades
	// instead of accumulating unbounded virtual queue (default 1s).
	MaxAccessBacklog time.Duration

	// CloudLatency is the one-way network latency used for every user
	// when no placement is assigned — the "distant datacenter" baseline
	// (default 25ms).
	CloudLatency time.Duration

	SummaryEvery time.Duration // trace summary cadence (default Horizon/20)
}

func (c CityConfig) withDefaults() CityConfig {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	defD := func(v *time.Duration, d time.Duration) {
		if *v == 0 {
			*v = d
		}
	}
	def(&c.Users, 100_000)
	if c.SideKm == 0 {
		c.SideKm = 80
	}
	def(&c.CellGrid, 40)
	def(&c.Sites, 48)
	defD(&c.Horizon, 10*time.Minute)
	defD(&c.OffloadEvery, 2*time.Second)
	def(&c.UplinkBytes, 8_000)
	def(&c.DownBytes, 2_000)
	defD(&c.Deadline, 60*time.Millisecond)
	defD(&c.Compute, 20*time.Millisecond)
	defD(&c.AccessAllowance, 25*time.Millisecond)
	defD(&c.MeanOn, 90*time.Second)
	defD(&c.MeanOff, 45*time.Second)
	defD(&c.DiurnalPeriod, c.Horizon)
	if c.DiurnalDepth == 0 {
		c.DiurnalDepth = 0.35
	}
	if c.DiurnalDepth > 0.9 {
		c.DiurnalDepth = 0.9
	}
	defD(&c.MaxAccessBacklog, time.Second)
	defD(&c.CloudLatency, 25*time.Millisecond)
	defD(&c.SummaryEvery, c.Horizon/20)
	return c
}

// NetBudget is the per-direction metro-network latency budget implied by
// the deadline ledger — the feasibility threshold handed to the Section
// VI-F solver.
func (c CityConfig) NetBudget() time.Duration {
	b := (c.Deadline - c.Compute - c.AccessAllowance) / 2
	if b < time.Millisecond {
		b = time.Millisecond
	}
	return b
}

// cityUser is one endpoint's complete state: position, radio attachment,
// serving site, and session phase. No goroutine, no heap churn — the
// fleet tier is a slice of these plus one pre-bound callback each.
type cityUser struct {
	x, y       float32
	cell       int32
	rate       float32       // PHY uplink rate, bits/s (distance-laddered)
	netLat     time.Duration // one-way user↔site network latency
	sessionEnd time.Duration
	active     bool
	crowd      bool
}

// cityCell is one 802.11 AP: a FIFO radio medium whose occupancy model
// carries the performance anomaly — each burst holds the channel for
// frames × (contention overhead + frame bits / sender rate), so slow
// senders inflate everyone's queueing delay.
type cityCell struct {
	x, y       float32
	busyUntil  time.Duration
	overhead   time.Duration // effective per-frame MAC overhead at current contention
	active     int32
	peakActive int32
	slowActive int32 // active stations below 18 Mb/s

	offloads, hits, misses, shed int64
	airtime                      time.Duration
}

// CityResult is one run's ledger.
type CityResult struct {
	Offloads, Hits, Misses, Shed int64
	HoldRate                     float64 // Hits / Offloads
	CrowdOffloads, CrowdHits     int64   // during the flash-crowd window
	CrowdHoldRate                float64
	P50, P95, P99                time.Duration
	PeakActive                   int
	PeakCellActive               int
	SessionArrivals, SessionEnds int64
	EventsFired                  uint64
	MaxPending                   int
	TraceHash                    uint64
}

// City is a fleet-scale simulation instance. Build with NewCity, point it
// at an edge placement with AssignPlacement (or leave it on the cloud
// baseline), then Run.
type City struct {
	cfg   CityConfig
	sim   *simnet.Sim
	trace *Trace

	users   []cityUser
	tickFns []func()
	cells   []cityCell
	sites   []edge.Site

	placement []int // selected candidate-site indexes; nil = cloud baseline

	active     int
	peakActive int
	arrivals   int64
	departures int64
	maxPending int
	histo      [1024]int64 // end-to-end latency, 1ms buckets, last = overflow

	offloads, hits, misses, shed int64
	crowdOffloads, crowdHits     int64
}

// NewCity lays out a seeded city: users uniform over the square (plus the
// optional crowd clustered at its hotspot), cells on a regular grid, and
// candidate edge sites uniform at random. The same seed always produces
// the same city and the same demand timeline.
func NewCity(cfg CityConfig) *City {
	cfg = cfg.withDefaults()
	sim := simnet.New(cfg.Seed)
	c := &City{
		cfg:   cfg,
		sim:   sim,
		trace: NewTrace(sim),
	}
	rng := sim.Rand()

	// Cells on a regular grid.
	g := cfg.CellGrid
	cellSide := cfg.SideKm / float64(g)
	c.cells = make([]cityCell, g*g)
	for iy := 0; iy < g; iy++ {
		for ix := 0; ix < g; ix++ {
			cl := &c.cells[iy*g+ix]
			cl.x = float32((float64(ix) + 0.5) * cellSide)
			cl.y = float32((float64(iy) + 0.5) * cellSide)
			cl.overhead = phy.DefaultFrameOverhead
		}
	}

	// Candidate edge sites: a jittered grid, the way metro candidate
	// locations actually look (central offices and aggregation points
	// spread roughly evenly) — and dense enough that every user has some
	// feasible site, so the solver's job is minimizing |C|, not rescuing
	// coverage holes a uniform-random draw would leave.
	sg := int(math.Round(math.Sqrt(float64(cfg.Sites))))
	if sg < 2 {
		sg = 2
	}
	spacing := cfg.SideKm / float64(sg)
	c.sites = make([]edge.Site, 0, sg*sg)
	for iy := 0; iy < sg; iy++ {
		for ix := 0; ix < sg; ix++ {
			jx := (rng.Float64() - 0.5) * 0.2 * spacing
			jy := (rng.Float64() - 0.5) * 0.2 * spacing
			c.sites = append(c.sites, edge.Site{
				ID: iy*sg + ix,
				X:  clampF((float64(ix)+0.5)*spacing+jx, 0, cfg.SideKm),
				Y:  clampF((float64(iy)+0.5)*spacing+jy, 0, cfg.SideKm),
			})
		}
	}

	// Resident fleet, uniform over the city.
	crowd := 0
	if cfg.Crowd != nil {
		crowd = cfg.Crowd.Users
	}
	c.users = make([]cityUser, cfg.Users+crowd)
	c.tickFns = make([]func(), len(c.users))
	for i := 0; i < cfg.Users; i++ {
		c.placeUser(i, rng.Float64()*cfg.SideKm, rng.Float64()*cfg.SideKm, false)
	}
	// The crowd scatters around the hotspot.
	if cfg.Crowd != nil {
		r := cfg.Crowd.RadiusKm
		if r <= 0 {
			r = 1.5 * cellSide
		}
		for i := cfg.Users; i < len(c.users); i++ {
			ang := rng.Float64() * 2 * math.Pi
			d := math.Sqrt(rng.Float64()) * r
			x := clampF(cfg.Crowd.X+d*math.Cos(ang), 0, cfg.SideKm)
			y := clampF(cfg.Crowd.Y+d*math.Sin(ang), 0, cfg.SideKm)
			c.placeUser(i, x, y, true)
		}
	}
	for i := range c.users {
		i := i
		c.tickFns[i] = func() { c.tick(i) }
	}
	// Cloud baseline until a placement is assigned.
	for i := range c.users {
		c.users[i].netLat = cfg.CloudLatency
	}
	return c
}

func (c *City) placeUser(i int, x, y float64, crowd bool) {
	u := &c.users[i]
	u.x, u.y = float32(x), float32(y)
	u.crowd = crowd
	g := c.cfg.CellGrid
	cellSide := c.cfg.SideKm / float64(g)
	ix := clampI(int(x/cellSide), 0, g-1)
	iy := clampI(int(y/cellSide), 0, g-1)
	u.cell = int32(iy*g + ix)
	cl := &c.cells[u.cell]
	u.rate = rateLadder(distKm(x, y, float64(cl.x), float64(cl.y)), cellSide)
}

// rateLadder maps distance from the AP to an 802.11a/g PHY rate. The
// outer ring's 6 Mb/s stations are the anomaly's slow talkers.
func rateLadder(distKm, cellSideKm float64) float32 {
	switch f := distKm / cellSideKm; {
	case f <= 0.18:
		return 54e6
	case f <= 0.32:
		return 36e6
	case f <= 0.50:
		return 18e6
	default:
		return 6e6
	}
}

func distKm(x1, y1, x2, y2 float64) float64 {
	dx, dy := x1-x2, y1-y2
	return math.Sqrt(dx*dx + dy*dy)
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampI(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Sim exposes the underlying simulator (tests sample Pending through it).
func (c *City) Sim() *simnet.Sim { return c.sim }

// Config returns the city's configuration with all defaults resolved.
func (c *City) Config() CityConfig { return c.cfg }

// Trace exposes the deterministic run trace.
func (c *City) Trace() *Trace { return c.trace }

// Population reports resident + crowd endpoints.
func (c *City) Population() int { return len(c.users) }

// Cells reports the number of radio cells.
func (c *City) Cells() int { return len(c.cells) }

// DemandInstance exports the city's demand as a Section VI-F placement
// instance: every endpoint (crowd included — the stadium must be covered
// too) with the per-direction network budget implied by the deadline
// ledger, over the candidate site set.
func (c *City) DemandInstance() edge.Instance {
	inst := edge.Instance{
		Sites:   c.sites,
		Users:   make([]edge.User, len(c.users)),
		Latency: edge.DefaultLatency,
	}
	budget := c.cfg.NetBudget()
	for i, u := range c.users {
		inst.Users[i] = edge.User{ID: i, X: float64(u.x), Y: float64(u.y), Budget: budget}
	}
	return inst
}

// AssignPlacement points every user at the lowest-latency selected site
// that satisfies its budget (falling back to the nearest selected site
// when none does — those users are expected to miss). This is the replay
// half of the provisioning loop: the solver chose |C| sites from the
// demand snapshot; the city now runs the same seeded load against them.
func (c *City) AssignPlacement(selection []int) error {
	budget := c.cfg.NetBudget()
	for _, si := range selection {
		if si < 0 || si >= len(c.sites) {
			return fmt.Errorf("marsim: placement site %d out of range", si)
		}
	}
	if len(selection) == 0 {
		return fmt.Errorf("marsim: empty placement")
	}
	for i := range c.users {
		u := &c.users[i]
		best, bestCover := time.Duration(1<<62-1), time.Duration(1<<62-1)
		for _, si := range selection {
			lat := edge.DefaultLatency(c.sites[si], edge.User{X: float64(u.x), Y: float64(u.y)})
			if lat < best {
				best = lat
			}
			if lat < budget && lat < bestCover {
				bestCover = lat
			}
		}
		if bestCover < 1<<62-1 {
			u.netLat = bestCover
		} else {
			u.netLat = best
		}
	}
	c.placement = append([]int(nil), selection...)
	return nil
}

// intensity is the diurnal load factor at virtual time t: one sinusoidal
// cycle per period, trough at the start, peak mid-cycle.
func (c *City) intensity(t time.Duration) float64 {
	p := c.cfg.DiurnalPeriod
	if p <= 0 || c.cfg.DiurnalDepth <= 0 {
		return 1
	}
	phase := 2*math.Pi*float64(t)/float64(p) - math.Pi/2
	return 1 + c.cfg.DiurnalDepth*math.Sin(phase)
}

func (c *City) expDur(mean time.Duration) time.Duration {
	d := time.Duration(c.sim.Rand().ExpFloat64() * float64(mean))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// tick is the per-user state machine: activate, offload on a jittered
// cadence while the session lasts, then idle for a diurnally-modulated
// exponential gap. Crowd users run one session pinned to the event window.
func (c *City) tick(i int) {
	u := &c.users[i]
	now := c.sim.Now()
	if !u.active {
		c.activate(u, now)
		c.sim.Schedule(c.offloadGap(), c.tickFns[i])
		return
	}
	if now >= u.sessionEnd {
		c.deactivate(u)
		if u.crowd {
			return // the stadium emptied; crowd users are done
		}
		c.sim.Schedule(c.idleGap(now), c.tickFns[i])
		return
	}
	c.offload(u, now)
	c.sim.Schedule(c.offloadGap(), c.tickFns[i])
}

// offloadGap jitters the per-user cadence ±20% so cells do not beat.
func (c *City) offloadGap() time.Duration {
	f := 0.8 + 0.4*c.sim.Rand().Float64()
	return time.Duration(f * float64(c.cfg.OffloadEvery))
}

func (c *City) idleGap(now time.Duration) time.Duration {
	mean := time.Duration(float64(c.cfg.MeanOff) / c.intensity(now))
	return c.expDur(mean)
}

func (c *City) activate(u *cityUser, now time.Duration) {
	u.active = true
	if u.crowd {
		u.sessionEnd = c.cfg.Crowd.At + c.cfg.Crowd.Duration
	} else {
		u.sessionEnd = now + c.expDur(c.cfg.MeanOn)
	}
	c.arrivals++
	c.active++
	if c.active > c.peakActive {
		c.peakActive = c.active
	}
	cl := &c.cells[u.cell]
	cl.active++
	if cl.active > cl.peakActive {
		cl.peakActive = cl.active
	}
	if u.rate < 18e6 {
		cl.slowActive++
	}
	c.retune(cl)
}

func (c *City) deactivate(u *cityUser) {
	u.active = false
	c.departures++
	c.active--
	cl := &c.cells[u.cell]
	cl.active--
	if u.rate < 18e6 {
		cl.slowActive--
	}
	c.retune(cl)
}

// retune refreshes the cell's effective per-frame MAC overhead for its
// current contention level: the Bianchi-style slotted approximation —
// collision probability 1-(1-1/CW)^(n-1) — inflates the fixed DCF cost by
// the expected retry factor. Recomputed only on attach/detach, so the
// per-offload path stays a handful of adds.
func (c *City) retune(cl *cityCell) {
	n := int(cl.active)
	if n <= 1 {
		cl.overhead = phy.DefaultFrameOverhead
		return
	}
	const cw = 32.0
	p := 1 - math.Pow(1-1/cw, float64(n-1))
	if p > 0.6 {
		p = 0.6
	}
	cl.overhead = time.Duration(float64(phy.DefaultFrameOverhead) / (1 - p))
}

// offload resolves one request analytically. The cell is a FIFO medium:
// the burst waits behind the current backlog, then occupies the channel
// for frames × (overhead + frame bits / this sender's rate) — the
// performance-anomaly term: a 6 Mb/s talker holds the air ~9× longer per
// frame than a 54 Mb/s one, and every later arrival in the cell eats that
// wait. End-to-end = access + 2×net + compute, judged against δa.
func (c *City) offload(u *cityUser, now time.Duration) {
	cl := &c.cells[u.cell]
	cl.offloads++
	c.offloads++
	inCrowd := c.inCrowdWindow(now)
	if inCrowd {
		c.crowdOffloads++
	}

	backlog := cl.busyUntil - now
	if backlog < 0 {
		backlog = 0
	}
	if backlog > c.cfg.MaxAccessBacklog {
		cl.shed++
		c.shed++
		return
	}
	frames := (c.cfg.UplinkBytes + c.cfg.DownBytes + 1499) / 1500
	perFrame := cl.overhead + time.Duration(float64(1500*8)/float64(u.rate)*float64(time.Second))
	air := time.Duration(frames) * perFrame
	cl.busyUntil = now + backlog + air
	cl.airtime += air

	e2e := backlog + air + 2*u.netLat + c.cfg.Compute
	bucket := int(e2e / time.Millisecond)
	if bucket >= len(c.histo) {
		bucket = len(c.histo) - 1
	}
	c.histo[bucket]++
	if e2e <= c.cfg.Deadline {
		cl.hits++
		c.hits++
		if inCrowd {
			c.crowdHits++
		}
	} else {
		cl.misses++
		c.misses++
	}
}

func (c *City) inCrowdWindow(now time.Duration) bool {
	cr := c.cfg.Crowd
	return cr != nil && now >= cr.At && now < cr.At+cr.Duration
}

// Run drives the city to its horizon and returns the ledger. Determinism:
// the same config (seed included) produces a byte-identical trace; the
// trace carries periodic aggregate summaries, not per-offload lines, so
// it stays a few dozen lines at any fleet size.
func (c *City) Run() (CityResult, error) {
	cfg := c.cfg
	mode := "cloud"
	if c.placement != nil {
		mode = fmt.Sprintf("placement |C|=%d", len(c.placement))
	}
	c.trace.Logf("city start users=%d crowd=%d cells=%d sites=%d mode=%s deadline=%s netbudget=%s",
		cfg.Users, len(c.users)-cfg.Users, len(c.cells), len(c.sites), mode,
		stamp(cfg.Deadline), stamp(cfg.NetBudget()))

	rng := c.sim.Rand()
	for i := range c.users {
		if c.users[i].crowd {
			// Crowd users pour in over the ramp.
			c.sim.ScheduleAt(cfg.Crowd.At+time.Duration(rng.Float64()*float64(cfg.Crowd.RampUp)), c.tickFns[i])
		} else {
			// Residents stagger in as if the process had been running: a
			// uniform draw over on+off puts the fleet near steady state.
			c.sim.ScheduleAt(time.Duration(rng.Float64()*float64(cfg.MeanOn+cfg.MeanOff)/2), c.tickFns[i])
		}
	}

	var summarize func()
	summarize = func() {
		if p := c.sim.Pending(); p > c.maxPending {
			c.maxPending = p
		}
		c.trace.Logf("city t=%s active=%d offloads=%d hits=%d misses=%d shed=%d pending=%d",
			stamp(c.sim.Now()), c.active, c.offloads, c.hits, c.misses, c.shed, c.sim.Pending())
		if c.sim.Now()+cfg.SummaryEvery <= cfg.Horizon {
			c.sim.Schedule(cfg.SummaryEvery, summarize)
		}
	}
	c.sim.Schedule(cfg.SummaryEvery, summarize)

	if err := c.sim.RunUntil(cfg.Horizon); err != nil {
		return CityResult{}, fmt.Errorf("marsim: city: %w", err)
	}
	res := c.result()
	c.trace.Logf("city end offloads=%d hold=%.4f p95=%s peak_active=%d",
		res.Offloads, res.HoldRate, stamp(res.P95), res.PeakActive)
	res.TraceHash = c.trace.Hash()
	if err := c.checkConservation(res); err != nil {
		return res, err
	}
	return res, nil
}

func (c *City) result() CityResult {
	r := CityResult{
		Offloads: c.offloads, Hits: c.hits, Misses: c.misses, Shed: c.shed,
		CrowdOffloads: c.crowdOffloads, CrowdHits: c.crowdHits,
		PeakActive:      c.peakActive,
		SessionArrivals: c.arrivals, SessionEnds: c.departures,
		EventsFired: c.sim.TotalFired(),
		MaxPending:  c.maxPending,
	}
	if r.Offloads > 0 {
		r.HoldRate = float64(r.Hits) / float64(r.Offloads)
	}
	if r.CrowdOffloads > 0 {
		r.CrowdHoldRate = float64(r.CrowdHits) / float64(r.CrowdOffloads)
	}
	measured := r.Hits + r.Misses
	r.P50 = c.percentile(measured, 0.50)
	r.P95 = c.percentile(measured, 0.95)
	r.P99 = c.percentile(measured, 0.99)
	for i := range c.cells {
		if int(c.cells[i].peakActive) > r.PeakCellActive {
			r.PeakCellActive = int(c.cells[i].peakActive)
		}
	}
	return r
}

func (c *City) percentile(total int64, q float64) time.Duration {
	if total == 0 {
		return 0
	}
	want := int64(math.Ceil(q * float64(total)))
	var cum int64
	for i, n := range c.histo {
		cum += n
		if cum >= want {
			return time.Duration(i+1) * time.Millisecond
		}
	}
	return time.Duration(len(c.histo)) * time.Millisecond
}

// checkConservation verifies the fleet-scale ledgers: every issued
// offload is accounted exactly once (hit, miss, or shed) globally and
// per-cell, and every session arrival is matched by a departure or a
// still-active user.
func (c *City) checkConservation(r CityResult) error {
	if r.Offloads != r.Hits+r.Misses+r.Shed {
		return fmt.Errorf("marsim: city offload conservation: %d issued != %d hit + %d miss + %d shed",
			r.Offloads, r.Hits, r.Misses, r.Shed)
	}
	var cellOff, cellHit, cellMiss, cellShed int64
	for i := range c.cells {
		cl := &c.cells[i]
		if cl.offloads != cl.hits+cl.misses+cl.shed {
			return fmt.Errorf("marsim: city cell %d conservation: %d != %d+%d+%d",
				i, cl.offloads, cl.hits, cl.misses, cl.shed)
		}
		cellOff += cl.offloads
		cellHit += cl.hits
		cellMiss += cl.misses
		cellShed += cl.shed
	}
	if cellOff != r.Offloads || cellHit != r.Hits || cellMiss != r.Misses || cellShed != r.Shed {
		return fmt.Errorf("marsim: city per-cell totals diverge from global: %d/%d/%d/%d vs %d/%d/%d/%d",
			cellOff, cellHit, cellMiss, cellShed, r.Offloads, r.Hits, r.Misses, r.Shed)
	}
	if got := r.SessionArrivals - r.SessionEnds; got != int64(c.active) {
		return fmt.Errorf("marsim: city session conservation: %d arrivals - %d ends = %d, but %d active",
			r.SessionArrivals, r.SessionEnds, got, c.active)
	}
	var attached int64
	for i := range c.cells {
		attached += int64(c.cells[i].active)
	}
	if attached != int64(c.active) {
		return fmt.Errorf("marsim: city cell attachment: %d attached vs %d active", attached, c.active)
	}
	return nil
}

// CellLoadReport summarizes one cell for diagnostics and tests.
type CellLoadReport struct {
	Cell            int
	Offloads, Shed  int64
	PeakActive      int
	SlowActiveAtEnd int
	Utilization     float64 // airtime / horizon
}

// BusiestCells returns the n highest-offload cells, descending.
func (c *City) BusiestCells(n int) []CellLoadReport {
	reports := make([]CellLoadReport, 0, len(c.cells))
	for i := range c.cells {
		cl := &c.cells[i]
		if cl.offloads == 0 {
			continue
		}
		reports = append(reports, CellLoadReport{
			Cell: i, Offloads: cl.offloads, Shed: cl.shed,
			PeakActive:      int(cl.peakActive),
			SlowActiveAtEnd: int(cl.slowActive),
			Utilization:     float64(cl.airtime) / float64(c.cfg.Horizon),
		})
	}
	for i := 1; i < len(reports); i++ { // insertion sort: n is small, keep it deterministic
		for j := i; j > 0 && reports[j].Offloads > reports[j-1].Offloads; j-- {
			reports[j], reports[j-1] = reports[j-1], reports[j]
		}
	}
	if n < len(reports) {
		reports = reports[:n]
	}
	return reports
}
