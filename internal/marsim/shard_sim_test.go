package marsim

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"marnet/internal/core"
	"marnet/internal/phy"
	"marnet/internal/rpc"
	"marnet/internal/wire"
)

// runShardedSim builds the real rpc server ASKING for four shards over a
// simulated endpoint. The endpoint is synchronous, so the sharded
// listener must collapse to a single shard — otherwise per-shard reader
// goroutines would race the virtual clock and the trace would stop being
// a pure function of the seed. The scenario scripts a mid-run partition
// so the dead/resume path (the part the shard route table owns) is in
// the trace too, and returns the served shard count alongside the result.
func runShardedSim(seed int64) (*Result, int, error) {
	s := NewScenario("sharded-sim", seed)
	ep := s.Net.NewEndpoint("server", phy.Backbone)
	srv, err := rpc.NewServer("sim", nil,
		func(uint8, []byte) []byte { return []byte("ok") },
		rpc.WithPacketConn(ep),
		rpc.WithClock(s.Clock),
		rpc.WithWorkers(4),
		rpc.WithShards(4),
		rpc.WithServiceModel(func(uint8, []byte) time.Duration { return 4 * time.Millisecond }))
	if err != nil {
		return nil, 0, err
	}
	shards := srv.Shards()
	host := s.Net.NewHost("mobile", phy.WiFiLocal)

	res := &Result{}
	cl, err := rpc.Dial("sim://server", rpc.ClientConfig{
		Clock:         s.Clock,
		Dialer:        host.Dialer(ep),
		Seed:          seed + 1,
		Keepalive:     100 * time.Millisecond,
		KeepaliveMiss: 3,
		RedialMin:     40 * time.Millisecond,
		RedialMax:     160 * time.Millisecond,
		Retry:         rpc.RetryPolicy{Max: 2},
		OnStateChange: func(st wire.State) {
			res.Transitions = append(res.Transitions, StateTransition{st, s.Sim.Now()})
			s.Logf("session %v at %s", st, stamp(s.Sim.Now()))
		},
	})
	if err != nil {
		return nil, 0, err
	}
	w := startWorkload(s, cl, core.PrioHighest, 400, 50*time.Millisecond, 250*time.Millisecond)

	s.At(1500*time.Millisecond, func() { host.Partition(true) })
	s.At(2200*time.Millisecond, func() { host.Partition(false) })

	s.Defer(func() { srv.Close() })
	s.Defer(func() {
		res.Reconnects = cl.Session().Reconnects()
		w.stop()
		cl.Close()
	})
	s.Check(func() error {
		if w.oks == 0 {
			return fmt.Errorf("no call ever succeeded over the sharded sim server")
		}
		if res.Reconnects < 1 {
			return fmt.Errorf("partition produced no reconnect — the resume path never ran")
		}
		return nil
	})
	if err := s.Run(4 * time.Second); err != nil {
		return nil, 0, err
	}
	return fillResult(res, s, w, cl, srv), shards, nil
}

// TestShardedSimCollapse pins the degenerate case the whole determinism
// story depends on: WithShards(4) over a synchronous simulated transport
// serves exactly one shard, spawns zero goroutines (enforced by
// runScenario), and still carries traffic across a partition/resume.
func TestShardedSimCollapse(t *testing.T) {
	var shards int
	res := runScenario(t, "sharded-sim", func(seed int64) (*Result, error) {
		r, n, err := runShardedSim(seed)
		shards = n
		return r, err
	}, 42)
	if shards != 1 {
		t.Fatalf("Shards() = %d over a synchronous transport, want 1 (collapse)", shards)
	}
	if res.OKs == 0 || res.Reconnects < 1 {
		t.Fatalf("scenario vacuous: %d oks, %d reconnects", res.OKs, res.Reconnects)
	}
	if res.Server.Served == 0 {
		t.Error("server served nothing")
	}
}

// TestShardedSimDeterminismMatrix is the determinism guard for the
// sharded stack: for each seed, two independent runs produce
// byte-identical traces (the sharding refactor introduced no wall-clock
// or goroutine-order dependence into the simulated path), and different
// seeds still produce different traces.
func TestShardedSimDeterminismMatrix(t *testing.T) {
	seeds := []int64{1, 7, 1234}
	var hashes []uint64
	for _, seed := range seeds {
		a, _, err := runShardedSim(seed)
		if err != nil {
			t.Fatalf("seed=%d run A: %v", seed, err)
		}
		b, _, err := runShardedSim(seed)
		if err != nil {
			t.Fatalf("seed=%d run B: %v", seed, err)
		}
		if !bytes.Equal(a.Trace, b.Trace) {
			t.Errorf("seed=%d: traces differ (%d vs %d bytes, hash %x vs %x)",
				seed, len(a.Trace), len(b.Trace), a.TraceHash, b.TraceHash)
		}
		if len(a.Trace) == 0 {
			t.Errorf("seed=%d produced an empty trace", seed)
		}
		hashes = append(hashes, a.TraceHash)
	}
	if hashes[0] == hashes[1] && hashes[1] == hashes[2] {
		t.Error("all seeds produced the identical trace — seeding is inert")
	}
}
