package marsim

import (
	"testing"
	"time"

	"marnet/internal/core"
	"marnet/internal/obs"
	"marnet/internal/phy"
	"marnet/internal/rpc"
)

// TestBudgetStagesSumToWallTime is the budget-attribution invariant on
// virtual time: every finished call's BudgetReport must split its
// end-to-end latency into stages that sum EXACTLY to the measured total —
// and the totals themselves are exact virtual durations, so the whole
// 75 ms-budget accounting chain is verified without wall-clock noise.
func TestBudgetStagesSumToWallTime(t *testing.T) {
	s := NewScenario("budget-attribution", 5)
	srv, serverEp, err := simServer(s, 8*time.Millisecond, 4)
	if err != nil {
		t.Fatal(err)
	}
	host := s.Net.NewHost("mobile", phy.LTE)
	tracer := obs.NewTracer(256, 1)
	cl, err := rpc.Dial("sim://server", rpc.ClientConfig{
		Clock:  s.Clock,
		Dialer: host.Dialer(serverEp),
		Seed:   6,
		Retry:  rpc.RetryPolicy{Max: 2},
		Tracer: tracer,
		Budget: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := startWorkload(s, cl, core.PrioHighest, 500, 100*time.Millisecond, 500*time.Millisecond)
	s.Defer(func() { srv.Close() })
	s.Defer(func() { w.stop(); cl.Close() })
	if err := s.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}

	reports := cl.BudgetTracker().Reports()
	if len(reports) == 0 {
		t.Fatal("no budget reports produced")
	}
	for i, r := range reports {
		if r.Sum() != r.Total {
			t.Errorf("report %d: stages sum to %v but total is %v\n%s", i, r.Sum(), r.Total, r)
		}
	}
	// LTE RTT is ~86 ms + jitter: with the server's 8 ms modeled service
	// every completed call's virtual total must sit above the physical
	// floor. (A call cancelled by teardown at the exact horizon instant can
	// legitimately report 0s — it never went anywhere.)
	var min, completed = time.Duration(0), 0
	for _, r := range reports {
		if r.Total == 0 {
			continue
		}
		completed++
		if min == 0 || r.Total < min {
			min = r.Total
		}
	}
	if completed < 10 {
		t.Fatalf("only %d completed-call reports", completed)
	}
	if min < 80*time.Millisecond {
		t.Errorf("fastest call total %v is below the physical floor of the LTE profile", min)
	}
	t.Logf("%d reports (%d completed), all stage sums exact; fastest total %v", len(reports), completed, min)
}
