package marsim

import (
	"testing"
	"time"

	"marnet/internal/simnet"
)

// The marsim side of the cancel-leak regression: every virtual-timer Reset
// cancels the old sim event and schedules a fresh one. With eager removal
// the sim's queue must stay bounded by the number of *live* timers under
// sustained re-arm churn — the pattern every hosted keepalive and pacer
// produces — not grow with cumulative Resets until original deadlines pass.
func TestVirtualTimerRearmBounded(t *testing.T) {
	sim := simnet.New(1)
	clock := NewClock(sim)

	const timers = 32
	const rounds = 5_000
	const keepalive = 30 * time.Second

	fired := 0
	ts := make([]interface {
		Stop() bool
		Reset(time.Duration) bool
	}, timers)
	for i := range ts {
		tm := clock.AfterFunc(keepalive, func() { fired++ })
		rt, ok := tm.(interface {
			Stop() bool
			Reset(time.Duration) bool
		})
		if !ok {
			t.Fatal("sim timer does not support Reset")
		}
		ts[i] = rt
	}
	// Re-arm every timer each virtual millisecond — traffic keeps arriving,
	// the keepalive never fires.
	for r := 0; r < rounds; r++ {
		if err := sim.RunUntil(time.Duration(r) * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		for _, tm := range ts {
			if !tm.Reset(keepalive) {
				t.Fatal("Reset reported the timer dead while pending")
			}
		}
		if p := sim.Pending(); p != timers {
			t.Fatalf("round %d: Pending = %d, want %d (cancelled events leaking in the heap)", r, p, timers)
		}
	}
	if fired != 0 {
		t.Fatalf("keepalives fired %d times under constant re-arm", fired)
	}
	// Let them all expire: exactly one fire per live timer.
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != timers {
		t.Fatalf("fired = %d after drain, want %d", fired, timers)
	}
	if sim.Pending() != 0 {
		t.Fatalf("Pending = %d after drain, want 0", sim.Pending())
	}
}

// Stop-after-fire keeps time.Timer semantics through record recycling: a
// handle whose event already ran reports false from Stop even once the
// sim has recycled the record for unrelated events.
func TestVirtualTimerStopAfterFire(t *testing.T) {
	sim := simnet.New(1)
	clock := NewClock(sim)
	ran := false
	tm := clock.AfterFunc(time.Millisecond, func() { ran = true })
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("timer never fired")
	}
	// Recycle the record a few times.
	for i := 0; i < 4; i++ {
		sim.Schedule(time.Millisecond, func() {})
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if tm.Stop() {
		t.Error("Stop returned true on a fired timer")
	}
}
