package marsim

import (
	"fmt"
	"sort"
	"time"

	"marnet/internal/core"
	"marnet/internal/phy"
	"marnet/internal/rpc"
	"marnet/internal/wire"
)

// This file holds the canonical seeded scenarios: each builds the REAL
// client/server stack (rpc retries/hedging/breaker over wire sessions
// over the simulated network) and scripts one of the paper's failure
// modes. They are the repo's reproducible experiments: same seed, same
// byte-identical trace.

// methodRecognize is the simulated offloaded-recognition RPC method.
const methodRecognize = 7

// StateTransition is one observed session liveness change, stamped with
// the exact virtual time it fired.
type StateTransition struct {
	State wire.State
	At    time.Duration
}

// Result summarizes one canonical scenario run.
type Result struct {
	Trace     []byte
	TraceHash uint64
	SimTime   time.Duration // virtual time simulated

	Calls, OKs, Fails int64
	Reconnects        int64
	Transitions       []StateTransition

	Client rpc.ClientStats
	Server rpc.ServerStats
	Tiers  []TierResult // overload storm only
}

// TierResult is one priority class's outcome in the overload storm.
type TierResult struct {
	Prio      core.Priority
	Offered   int64
	Succeeded int64
	P99       time.Duration // client-observed latency of successes
}

// workload issues one recognition-offload call per period over a client,
// entirely via CallAsync: nothing ever blocks the simulation loop.
type workload struct {
	s        *Scenario
	cl       *rpc.Client
	prio     core.Priority
	req      []byte
	deadline time.Duration
	period   time.Duration

	stopped           bool
	calls, oks, fails int64
}

func startWorkload(s *Scenario, cl *rpc.Client, prio core.Priority, size int, period, deadline time.Duration) *workload {
	w := &workload{s: s, cl: cl, prio: prio, req: make([]byte, size),
		deadline: deadline, period: period}
	w.tick()
	return w
}

func (w *workload) tick() {
	if w.stopped {
		return
	}
	w.calls++
	seq := w.calls
	w.cl.CallAsync(methodRecognize, w.req, w.prio, w.deadline, func(_ []byte, err error) {
		if w.stopped {
			return // teardown failure of an in-flight call, not workload data
		}
		if err == nil {
			w.oks++
			w.s.Logf("call %d ok", seq)
		} else {
			w.fails++
			w.s.Logf("call %d err: %v", seq, err)
		}
	})
	w.s.Sim.Schedule(w.period, w.tick)
}

func (w *workload) stop() { w.stopped = true }

// simServer starts the real rpc server on a fresh backbone endpoint with
// a modeled service time — the event-dispatch mode, zero goroutines.
func simServer(s *Scenario, service time.Duration, workers int) (*rpc.Server, *Endpoint, error) {
	ep := s.Net.NewEndpoint("server", phy.Backbone)
	srv, err := rpc.NewServer("sim", nil,
		func(uint8, []byte) []byte { return []byte("ok") },
		rpc.WithPacketConn(ep),
		rpc.WithClock(s.Clock),
		rpc.WithWorkers(workers),
		rpc.WithServiceModel(func(uint8, []byte) time.Duration { return service }))
	if err != nil {
		return nil, nil, err
	}
	return srv, ep, nil
}

// RunHandover is the Table II vertical-handover scenario: a mobile client
// streams recognition calls over 802.11n, then hands over to LTE mid-run.
// The session must survive the radio swap without a single reconnect.
func RunHandover(seed int64) (*Result, error) {
	s := NewScenario("handover", seed)
	srv, serverEp, err := simServer(s, 8*time.Millisecond, 4)
	if err != nil {
		return nil, err
	}
	host := s.Net.NewHost("mobile", phy.WiFi80211n)

	res := &Result{}
	cl, err := rpc.Dial("sim://server", rpc.ClientConfig{
		Clock:  s.Clock,
		Dialer: host.Dialer(serverEp),
		Seed:   seed + 1,
		Retry:  rpc.RetryPolicy{Max: 2},
		OnStateChange: func(st wire.State) {
			res.Transitions = append(res.Transitions, StateTransition{st, s.Sim.Now()})
			s.Logf("session %v", st)
		},
	})
	if err != nil {
		return nil, err
	}
	// 20 FPS with a deadline sized for the slow radio: the 802.11n profile
	// alone costs 150-240 ms RTT with jitter — the paper's point that Wi-Fi
	// latencies dwarf the 75 ms loop budget. Each retry attempt gets half
	// the deadline, so 600 ms keeps one attempt's share above the RTT tail.
	w := startWorkload(s, cl, core.PrioHighest, 800, 50*time.Millisecond, 600*time.Millisecond)

	var oksBefore int64
	s.At(3*time.Second, func() {
		oksBefore = w.oks
		host.SetProfile(phy.LTE)
	})

	s.Defer(func() { srv.Close() })
	s.Defer(func() {
		res.Reconnects = cl.Session().Reconnects()
		w.stop()
		cl.Close()
	})
	s.Check(func() error {
		if oksBefore == 0 {
			return fmt.Errorf("no call succeeded on Wi-Fi before the handover")
		}
		if w.oks <= oksBefore {
			return fmt.Errorf("no call succeeded on LTE after the handover")
		}
		if res.Reconnects != 0 {
			return fmt.Errorf("handover forced %d reconnects, want 0", res.Reconnects)
		}
		return nil
	})
	if err := s.Run(6 * time.Second); err != nil {
		return nil, err
	}
	return fillResult(res, s, w, cl, srv), nil
}

// RunCongestion is the Figure 3 asymmetric-uplink scenario: a competing
// upload saturates the HSPA+ uplink at 120% capacity, queueing delay
// blows through the call deadline, and the path recovers once the
// competing flow stops.
func RunCongestion(seed int64) (*Result, error) {
	s := NewScenario("congestion", seed)
	srv, serverEp, err := simServer(s, 5*time.Millisecond, 4)
	if err != nil {
		return nil, err
	}
	host := s.Net.NewHost("mobile", phy.HSPAPlus)

	cl, err := rpc.Dial("sim://server", rpc.ClientConfig{
		Clock:  s.Clock,
		Dialer: host.Dialer(serverEp),
		Seed:   seed + 1,
		Retry:  rpc.RetryPolicy{Max: 2},
	})
	if err != nil {
		return nil, err
	}
	w := startWorkload(s, cl, core.PrioHighest, 600, 100*time.Millisecond, 600*time.Millisecond)

	var stopCross func()
	var okPre, failPre, failMid, ok7s int64
	s.At(2*time.Second, func() {
		okPre, failPre = w.oks, w.fails
		// 1.8 Mb/s offered into a 1.5 Mb/s uplink: the queue grows ~200 ms/s.
		stopCross = host.StartCrossTraffic(1.8e6, 1200)
	})
	s.At(5*time.Second, func() {
		failMid = w.fails
		stopCross()
	})
	s.At(7*time.Second, func() { ok7s = w.oks })

	res := &Result{}
	s.Defer(func() { srv.Close() })
	s.Defer(func() {
		res.Reconnects = cl.Session().Reconnects()
		w.stop()
		cl.Close()
	})
	s.Check(func() error {
		if okPre == 0 {
			return fmt.Errorf("no call succeeded before congestion")
		}
		if failMid-failPre == 0 {
			return fmt.Errorf("uplink congestion caused zero failures — scenario is vacuous")
		}
		if w.oks-ok7s == 0 {
			return fmt.Errorf("no call succeeded in the final second — path never recovered")
		}
		up, _ := host.eps[0].Links()
		if up.Stats().MaxQueueLen < 20 {
			return fmt.Errorf("uplink queue peaked at %d packets — congestion never built", up.Stats().MaxQueueLen)
		}
		return nil
	})
	if err := s.Run(8 * time.Second); err != nil {
		return nil, err
	}
	return fillResult(res, s, w, cl, srv), nil
}

// RunPartitionResume walks the client out of coverage: keepalives detect
// the dead path, the session re-dials through fresh endpoints until the
// partition heals, and calls flow again on the resumed session with
// sequence numbers preserved.
func RunPartitionResume(seed int64) (*Result, error) {
	s := NewScenario("partition-resume", seed)
	srv, serverEp, err := simServer(s, 4*time.Millisecond, 4)
	if err != nil {
		return nil, err
	}
	host := s.Net.NewHost("mobile", phy.WiFiLocal)

	res := &Result{}
	cl, err := rpc.Dial("sim://server", rpc.ClientConfig{
		Clock:         s.Clock,
		Dialer:        host.Dialer(serverEp),
		Seed:          seed + 1,
		Keepalive:     100 * time.Millisecond,
		KeepaliveMiss: 3,
		RedialMin:     40 * time.Millisecond,
		RedialMax:     160 * time.Millisecond,
		Retry:         rpc.RetryPolicy{Max: 2},
		OnStateChange: func(st wire.State) {
			res.Transitions = append(res.Transitions, StateTransition{st, s.Sim.Now()})
			s.Logf("session %v at %s", st, stamp(s.Sim.Now()))
		},
	})
	if err != nil {
		return nil, err
	}
	w := startWorkload(s, cl, core.PrioHighest, 400, 50*time.Millisecond, 250*time.Millisecond)

	const partitionAt, healAt = 2 * time.Second, 3500 * time.Millisecond
	s.At(partitionAt, func() { host.Partition(true) })
	s.At(healAt, func() { host.Partition(false) })
	var okAtHeal int64
	s.At(healAt+500*time.Millisecond, func() { okAtHeal = w.oks })

	s.Defer(func() { srv.Close() })
	s.Defer(func() {
		res.Reconnects = cl.Session().Reconnects()
		w.stop()
		cl.Close()
	})
	s.Check(func() error {
		var deadAt, activeAt time.Duration
		for _, tr := range res.Transitions {
			if tr.State == wire.StateDead && deadAt == 0 && tr.At > partitionAt {
				deadAt = tr.At
			}
			if tr.State == wire.StateActive && tr.At > healAt && activeAt == 0 {
				activeAt = tr.At
			}
		}
		if deadAt == 0 {
			return fmt.Errorf("keepalive never declared the partitioned path dead")
		}
		if deadAt > partitionAt+time.Second {
			return fmt.Errorf("dead-path detection took %v, want < 1s after partition", deadAt-partitionAt)
		}
		if activeAt == 0 {
			return fmt.Errorf("session never resumed after the partition healed")
		}
		if activeAt > healAt+time.Second {
			return fmt.Errorf("resume took %v after heal, want < 1s", activeAt-healAt)
		}
		if res.Reconnects < 1 {
			return fmt.Errorf("session recorded no reconnects across the partition")
		}
		if w.oks <= okAtHeal {
			return fmt.Errorf("no call succeeded on the resumed session")
		}
		return nil
	})
	if err := s.Run(6 * time.Second); err != nil {
		return nil, err
	}
	return fillResult(res, s, w, cl, srv), nil
}

// RunOverloadStorm is the virtual-time overload storm: four priority
// tiers offer 4x the server's capacity for 1.5 simulated seconds. The
// admission gate must keep the protected tier untouched, concentrate
// shedding at the bottom, and hold every admitted call inside the budget.
func RunOverloadStorm(seed int64) (*Result, error) {
	const (
		stormService = 5 * time.Millisecond
		stormWorkers = 4
		stormBudget  = 150 * time.Millisecond
		ticks        = 300
		tickEvery    = 5 * time.Millisecond
	)
	s := NewScenario("overload-storm", seed)
	srv, serverEp, err := simServer(s, stormService, stormWorkers)
	if err != nil {
		return nil, err
	}

	// Capacity is 800 req/s; 2+4+5+5 calls per 5 ms tick = 3200 req/s,
	// skewed so the protected tier stays well within capacity.
	tiers := []struct {
		prio    core.Priority
		perTick int
	}{
		{core.PrioHighest, 2},
		{core.PrioNoDiscard, 4},
		{core.PrioNoDelay, 5},
		{core.PrioLowest, 5},
	}
	type tierState struct {
		offered, succeeded int64
		lats               []time.Duration
	}
	states := make([]*tierState, len(tiers))
	clients := make([]*rpc.Client, len(tiers))
	for i, tr := range tiers {
		states[i] = &tierState{}
		host := s.Net.NewHost(fmt.Sprintf("tier%d", i), phy.WiFiLocal)
		cl, err := rpc.Dial("sim://server", rpc.ClientConfig{
			Clock:    s.Clock,
			Dialer:   host.Dialer(serverEp),
			Priority: tr.prio,
			Seed:     seed + int64(100+i),
		})
		if err != nil {
			return nil, err
		}
		clients[i] = cl
	}

	var tick func(n int)
	tick = func(n int) {
		if n >= ticks {
			return
		}
		for i := range tiers {
			st := states[i]
			for k := 0; k < tiers[i].perTick; k++ {
				st.offered++
				t0 := s.Clock.Now()
				clients[i].CallAsync(methodRecognize, nil, tiers[i].prio, stormBudget, func(_ []byte, err error) {
					if err == nil {
						st.succeeded++
						st.lats = append(st.lats, s.Clock.Since(t0))
					}
				})
			}
		}
		s.Sim.Schedule(tickEvery, func() { tick(n + 1) })
	}
	tick(0)

	res := &Result{}
	s.Defer(func() { srv.Close() })
	s.Defer(func() {
		for _, cl := range clients {
			cl.Close()
		}
	})
	// Horizon: storm end plus one full budget, so every outstanding call
	// resolves before teardown.
	if err := s.Run(ticks*tickEvery + stormBudget + 50*time.Millisecond); err != nil {
		return nil, err
	}
	for i, st := range states {
		res.Calls += st.offered
		res.OKs += st.succeeded
		res.Fails += st.offered - st.succeeded
		res.Tiers = append(res.Tiers, TierResult{
			Prio: tiers[i].prio, Offered: st.offered, Succeeded: st.succeeded,
			P99: p99(st.lats),
		})
	}
	res.Server = srv.Stats()
	res.Trace = s.Trace.Bytes()
	res.TraceHash = s.Trace.Hash()
	res.SimTime = s.Sim.Now()
	return res, nil
}

// RunSoak is the time-compressed endurance run: simMinutes of virtual
// time cycling handovers and periodic partitions under a steady call
// load. Minutes of virtual time complete in well under a second of wall
// time, and the trace is byte-identical for a given seed.
func RunSoak(seed int64, simMinutes int) (*Result, error) {
	s := NewScenario("soak", seed)
	srv, serverEp, err := simServer(s, 6*time.Millisecond, 4)
	if err != nil {
		return nil, err
	}
	host := s.Net.NewHost("mobile", phy.WiFi80211n)

	res := &Result{}
	cl, err := rpc.Dial("sim://server", rpc.ClientConfig{
		Clock:     s.Clock,
		Dialer:    host.Dialer(serverEp),
		Seed:      seed + 1,
		RedialMin: 50 * time.Millisecond,
		RedialMax: 200 * time.Millisecond,
		Retry:     rpc.RetryPolicy{Max: 2},
		OnStateChange: func(st wire.State) {
			res.Transitions = append(res.Transitions, StateTransition{st, s.Sim.Now()})
			s.Logf("session %v at %s", st, stamp(s.Sim.Now()))
		},
	})
	if err != nil {
		return nil, err
	}
	w := startWorkload(s, cl, core.PrioHighest, 500, 200*time.Millisecond, 800*time.Millisecond)

	for m := 0; m < simMinutes; m++ {
		minute := time.Duration(m) * time.Minute
		if m%2 == 0 {
			s.At(minute+20*time.Second, func() { host.SetProfile(phy.LTE) })
		} else {
			s.At(minute+20*time.Second, func() { host.SetProfile(phy.WiFi80211n) })
		}
		if m%3 == 1 {
			s.At(minute+40*time.Second, func() { host.Partition(true) })
			s.At(minute+45*time.Second, func() { host.Partition(false) })
		}
	}

	s.Defer(func() { srv.Close() })
	s.Defer(func() {
		res.Reconnects = cl.Session().Reconnects()
		w.stop()
		cl.Close()
	})
	s.Check(func() error {
		if w.oks < w.calls/2 {
			return fmt.Errorf("soak: only %d/%d calls succeeded", w.oks, w.calls)
		}
		return nil
	})
	if err := s.Run(time.Duration(simMinutes) * time.Minute); err != nil {
		return nil, err
	}
	return fillResult(res, s, w, cl, srv), nil
}

func fillResult(res *Result, s *Scenario, w *workload, cl *rpc.Client, srv *rpc.Server) *Result {
	res.Calls, res.OKs, res.Fails = w.calls, w.oks, w.fails
	res.Client = cl.Stats()
	res.Server = srv.Stats()
	res.Trace = s.Trace.Bytes()
	res.TraceHash = s.Trace.Hash()
	res.SimTime = s.Sim.Now()
	return res
}

func p99(lats []time.Duration) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	idx := len(lats)*99/100 - 1
	if idx < 0 {
		idx = 0
	}
	return lats[idx]
}
