package marsim

import (
	"fmt"
	"time"

	"marnet/internal/core"
	"marnet/internal/faults"
	"marnet/internal/phy"
	"marnet/internal/rpc"
	"marnet/internal/simnet"
	"marnet/internal/wire"
)

// This file is the multipath robustness scenario (Section VI-D): one
// mobile client with two access links — a local WiFi AP and an LTE
// uplink — streaming recognition calls against a server behind a
// wire.PathRouter. The script throws the paper's two wireless failure
// modes at the WiFi link mid-stream: a Gilbert–Elliott burst-loss window
// (cross-path FEC territory) and then a total blackhole (sub-RTT
// failover territory). Three modes run the identical script:
//
//   - MPSingle: the legacy single-path client on WiFi alone — the
//     baseline, and proof the router's passthrough keeps legacy peers
//     working; it must re-dial across the blackhole.
//   - MPFailover: a wire.PathSet over both links, probing and
//     evacuation only (no FEC, no striping) — the session survives the
//     blackhole with zero resets.
//   - MPFull: PathSet with cross-path FEC and bulk striping on top —
//     burst-lost frames repair from parity on the other link without
//     end-to-end retransmission.

// MultipathMode selects how the client attaches to its access links.
type MultipathMode int

// Modes, weakest to strongest.
const (
	MPSingle MultipathMode = iota
	MPFailover
	MPFull
)

func (m MultipathMode) String() string {
	switch m {
	case MPSingle:
		return "single-path"
	case MPFailover:
		return "failover"
	case MPFull:
		return "multipath-fec"
	}
	return "invalid"
}

// Multipath scenario script constants. The probe cadence is 5x faster
// than the session keepalive, so path death is detected and evacuated
// well before dead-peer detection could tear the session down.
const (
	mpProbeInterval = 50 * time.Millisecond
	mpKeepalive     = 250 * time.Millisecond
	mpCallPeriod    = 50 * time.Millisecond
	mpCallBytes     = 600
	mpDeadline      = 400 * time.Millisecond

	mpGEStart     = 1500 * time.Millisecond
	mpGEEnd       = 3 * time.Second
	mpPartitionAt = 4 * time.Second
	mpHealAt      = 5 * time.Second
	mpHorizon     = 6500 * time.Millisecond

	// Cross-path FEC geometry: every 2 data frames on one link produce 2
	// repair shards on the other, so even a whole group lost to a burst
	// (or the blackhole itself) reconstructs entirely from the surviving
	// link.
	mpFECK = 2
	mpFECM = 2
)

// PathEvent is one path-manager state transition, stamped with the
// virtual time it fired.
type PathEvent struct {
	Path  string        `json:"path"`
	State string        `json:"state"`
	At    time.Duration `json:"at_ns"`
}

// MultipathResult summarizes one mode's run through the scenario.
type MultipathResult struct {
	Mode      string        `json:"mode"`
	Seed      int64         `json:"seed"`
	Trace     []byte        `json:"-"`
	TraceHash uint64        `json:"trace_hash"`
	SimTime   time.Duration `json:"sim_time_ns"`

	Calls int64 `json:"calls"`
	OKs   int64 `json:"oks"`
	Fails int64 `json:"fails"`

	// Reconnects counts session resets — the tentpole metric: the
	// multipath modes must hold it at zero across the blackhole.
	Reconnects  int64             `json:"reconnects"`
	Transitions []StateTransition `json:"-"`
	PathEvents  []PathEvent       `json:"-"`

	FailoverFrames int64 `json:"failover_frames"` // evacuated off the dead path
	ParitySent     int64 `json:"parity_sent"`
	RepairedUp     int64 `json:"repaired_up"` // router-side (client→server)
	UnrepairedUp   int64 `json:"unrepaired_up"`
	RepairedDown   int64 `json:"repaired_down"` // client-side (server→client)
	UnrepairedDown int64 `json:"unrepaired_down"`

	// WifiDownAt is when the path manager declared the blackholed link
	// dead; CutoverGap is its distance from the partition instant.
	WifiDownAt time.Duration `json:"wifi_down_at_ns"`
	CutoverGap time.Duration `json:"cutover_gap_ns"`
	// MaxOKGap is the longest stretch without a successful call
	// completion between the partition and one second past the heal —
	// the user-visible outage.
	MaxOKGap time.Duration `json:"max_ok_gap_ns"`
	// RepairRate is repaired/(repaired+unrepaired) across both
	// directions over the whole run (teardown drains every open group, so
	// the denominator is complete).
	RepairRate float64 `json:"repair_rate"`
}

// OKRate is OKs/Calls.
func (r *MultipathResult) OKRate() float64 {
	if r.Calls == 0 {
		return 0
	}
	return float64(r.OKs) / float64(r.Calls)
}

// mpSpec scripts one multipath scenario around the shared harness.
type mpSpec struct {
	name   string
	script func(s *Scenario, wifi *Host)
	// partitionAt is the cutover reference: the first wifi-down event
	// after it yields WifiDownAt/CutoverGap.
	partitionAt time.Duration
	// gapFrom/gapTo bound the MaxOKGap measurement window.
	gapFrom, gapTo time.Duration
	horizon        time.Duration
}

// RunMultipath runs the canonical multipath robustness scenario: a
// Gilbert–Elliott burst window on the WiFi uplink (1.5-3 s), then a
// total WiFi blackhole (4-5 s), healed for the final stretch. Same seed,
// same mode: byte-identical trace.
func RunMultipath(seed int64, mode MultipathMode) (*MultipathResult, error) {
	filter := mpFaultsGE(seed)
	return runMP(mpSpec{
		name: "multipath-" + mode.String(),
		script: func(s *Scenario, wifi *Host) {
			s.At(mpGEStart, func() { wifi.SetUplinkFilter(filter) })
			s.At(mpGEEnd, func() { wifi.SetUplinkFilter(nil) })
			s.At(mpPartitionAt, func() { wifi.Partition(true) })
			s.At(mpHealAt, func() { wifi.Partition(false) })
		},
		partitionAt: mpPartitionAt,
		gapFrom:     mpPartitionAt,
		gapTo:       mpHealAt + time.Second,
		horizon:     mpHorizon,
	}, seed, mode)
}

// RunMultipathFlap is the path-flap scenario: the WiFi link blackholes
// for 300 ms three times in a row (a radio stuck at the cell edge). The
// path manager must ride every flap — down, evacuate, probe, revive —
// without a single session reset.
func RunMultipathFlap(seed int64, mode MultipathMode) (*MultipathResult, error) {
	const pulse = 300 * time.Millisecond
	return runMP(mpSpec{
		name: "multipath-flap-" + mode.String(),
		script: func(s *Scenario, wifi *Host) {
			for i := 0; i < 3; i++ {
				at := 2*time.Second + time.Duration(i)*time.Second
				s.At(at, func() { wifi.Partition(true) })
				s.At(at+pulse, func() { wifi.Partition(false) })
			}
		},
		partitionAt: 2 * time.Second,
		gapFrom:     2 * time.Second,
		gapTo:       5 * time.Second,
		horizon:     5500 * time.Millisecond,
	}, seed, mode)
}

// runMP builds the two-radio client, the routed server, and the frame
// loop, then runs the spec's script against them.
func runMP(spec mpSpec, seed int64, mode MultipathMode) (*MultipathResult, error) {
	s := NewScenario(spec.name, seed)
	res := &MultipathResult{Mode: mode.String(), Seed: seed}

	serverEp := s.Net.NewEndpoint("server", phy.Backbone)
	routerCfg := wire.RouterConfig{Clock: s.Clock}
	if mode == MPFull {
		routerCfg.FEC = wire.PathFEC{K: mpFECK, M: mpFECM}
	}
	router := wire.NewPathRouter(serverEp, routerCfg)
	srv, err := rpc.NewServer("sim", nil,
		func(uint8, []byte) []byte { return []byte("ok") },
		rpc.WithPacketConn(router),
		rpc.WithClock(s.Clock),
		rpc.WithWorkers(4),
		rpc.WithServiceModel(func(uint8, []byte) time.Duration { return 5 * time.Millisecond }))
	if err != nil {
		return nil, err
	}

	wifi := s.Net.NewHost("wifi", phy.WiFiLocal)
	lte := s.Net.NewHost("lte", phy.LTE)

	// The dialer builds a fresh PathSet (fresh sockets on both radios)
	// per dial, exactly like the single-path dialer opens a fresh socket;
	// the multipath modes are expected to never need a second one.
	var dials int
	var sets []*wire.PathSet
	dialer := wifi.Dialer(serverEp)
	if mode != MPSingle {
		dialer = func(cfg wire.Config) (*wire.Conn, error) {
			dials++
			psCfg := wire.PathSetConfig{
				Session:       uint64(seed)<<8 | uint64(dials),
				Peer:          serverEp.UDPAddr(),
				Clock:         s.Clock,
				ProbeInterval: mpProbeInterval,
				Stripe:        mode == MPFull,
				OnPathState: func(path string, st wire.PathState) {
					res.PathEvents = append(res.PathEvents, PathEvent{path, st.String(), s.Sim.Now()})
					s.Logf("path %s %s at %s", path, st, stamp(s.Sim.Now()))
				},
			}
			if mode == MPFull {
				psCfg.FEC = wire.PathFEC{K: mpFECK, M: mpFECM}
			}
			ps, err := wire.NewPathSet([]wire.PathConf{
				{Name: "wifi", PC: wifi.NewEndpoint()},
				{Name: "lte", PC: lte.NewEndpoint()},
			}, psCfg)
			if err != nil {
				return nil, err
			}
			sets = append(sets, ps)
			return wire.DialVia(ps, serverEp.UDPAddr(), cfg)
		}
	}

	cl, err := rpc.Dial("sim://server", rpc.ClientConfig{
		Clock:         s.Clock,
		Dialer:        dialer,
		Seed:          seed + 1,
		Keepalive:     mpKeepalive,
		KeepaliveMiss: 3,
		RedialMin:     40 * time.Millisecond,
		RedialMax:     160 * time.Millisecond,
		Retry:         rpc.RetryPolicy{Max: 2},
		OnStateChange: func(st wire.State) {
			res.Transitions = append(res.Transitions, StateTransition{st, s.Sim.Now()})
			s.Logf("session %v at %s", st, stamp(s.Sim.Now()))
		},
	})
	if err != nil {
		return nil, err
	}

	// Frame loop with success timestamps: the outage the user feels is
	// the longest gap between completions, not a failure count.
	req := make([]byte, mpCallBytes)
	var okAt []time.Duration
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		res.Calls++
		cl.CallAsync(methodRecognize, req, core.PrioHighest, mpDeadline, func(_ []byte, err error) {
			if stopped {
				return
			}
			if err == nil {
				res.OKs++
				okAt = append(okAt, s.Sim.Now())
			} else {
				res.Fails++
			}
		})
		s.Sim.Schedule(mpCallPeriod, tick)
	}
	tick()

	spec.script(s, wifi)

	var okPre, okTail int64
	s.At(spec.gapFrom, func() { okPre = res.OKs })
	s.At(spec.horizon-500*time.Millisecond, func() { okTail = res.OKs })

	s.Defer(func() {
		srv.Close() // closes the router, draining downlink FEC accounting
		rs := router.Stats()
		res.RepairedUp, res.UnrepairedUp = rs.FECRepaired, rs.FECUnrepaired
	})
	s.Defer(func() {
		res.Reconnects = cl.Session().Reconnects()
		stopped = true
		cl.Close()
		for _, ps := range sets {
			st := ps.Stats()
			res.FailoverFrames += st.FailoverFrames
			res.ParitySent += st.ParitySent
			res.RepairedDown += st.FECRepaired
			res.UnrepairedDown += st.FECUnrepaired
		}
	})
	s.Check(func() error {
		if okPre == 0 {
			return fmt.Errorf("no call succeeded before the fault script began")
		}
		if res.OKs <= okTail {
			return fmt.Errorf("no call succeeded in the final healed stretch")
		}
		return nil
	})

	if err := s.Run(spec.horizon); err != nil {
		return nil, err
	}

	for _, ev := range res.PathEvents {
		if ev.Path == "wifi" && ev.State == "down" && ev.At > spec.partitionAt {
			res.WifiDownAt = ev.At
			res.CutoverGap = ev.At - spec.partitionAt
			break
		}
	}
	res.MaxOKGap = maxGap(okAt, spec.gapFrom, spec.gapTo)
	if rep, unrep := res.RepairedUp+res.RepairedDown, res.UnrepairedUp+res.UnrepairedDown; rep+unrep > 0 {
		res.RepairRate = float64(rep) / float64(rep+unrep)
	}
	res.Trace = s.Trace.Bytes()
	res.TraceHash = s.Trace.Hash()
	res.SimTime = s.Sim.Now()
	return res, nil
}

// mpFaultsGE is the WiFi-uplink burst process: ~4-packet bursts at 85%
// loss, stationary loss ≈ 16% — far harsher than the adapt scenarios'
// process, because here the question is not controller stability but
// whether the cross-path parity on the clean LTE link repairs nearly
// every hole the bursts punch.
func mpFaultsGE(seed int64) simnet.PacketFilter {
	return faults.NewLinkFilter(faults.DirConfig{GE: &faults.GilbertElliott{
		PGoodBad: 0.06, PBadGood: 0.25, LossGood: 0, LossBad: 0.85,
	}}, seed+11)
}

// maxGap is the longest interval without a completion inside [from, to],
// counting the edges: a window with no completions at all scores its full
// width.
func maxGap(times []time.Duration, from, to time.Duration) time.Duration {
	prev := from
	var max time.Duration
	for _, t := range times {
		if t < from {
			continue
		}
		if t > to {
			break
		}
		if g := t - prev; g > max {
			max = g
		}
		prev = t
	}
	if g := to - prev; g > max {
		max = g
	}
	return max
}
