package marsim

import (
	"bytes"
	"testing"

	"marnet/internal/obs"
)

// The GE burst must arm the whole diagnosis chain: the recorder sees the
// datapath, budget blows freeze snapshots, the SLO engine detects the
// erosion, and at least one capture shows the causal story — retransmit
// storm, then the ladder walking down.
func TestFlightGEBurstCapturesStorm(t *testing.T) {
	res, err := RunFlightGEBurst(42)
	if err != nil {
		t.Fatalf("RunFlightGEBurst: %v", err)
	}
	t.Logf("%s", res)
	if res.Frames == 0 || res.Events == 0 {
		t.Fatalf("empty run: %+v", res)
	}
	if res.Snapshots == 0 {
		t.Fatal("no snapshots frozen during a 10 s loss burst")
	}
	if res.StormSnapshot < 0 {
		for i, sn := range res.Snaps {
			t.Logf("snapshot %d reason=%s retx=%d moves=%d", i, sn.Reason,
				sn.Count(obs.EvFrameRetransmit), sn.Count(obs.EvAdaptMove))
		}
		t.Fatal("no snapshot shows retransmit storm -> ladder downgrade")
	}
	if res.SessionTriggers == 0 {
		t.Error("session SLO never fired during the burst")
	}
	if res.GlobalTriggers == 0 {
		t.Error("global SLO (chained parent) never fired")
	}
	storm := res.Snaps[res.StormSnapshot]
	if storm.Count(obs.EvFrameRetransmit) == 0 || storm.Count(obs.EvAdaptMove) == 0 {
		t.Errorf("storm snapshot lacks the chain: retx=%d moves=%d",
			storm.Count(obs.EvFrameRetransmit), storm.Count(obs.EvAdaptMove))
	}
}

// Same seed, same capture — byte for byte. Different seed, a different
// run.
func TestFlightGEBurstDeterministic(t *testing.T) {
	a, err := RunFlightGEBurst(7)
	if err != nil {
		t.Fatalf("run a: %v", err)
	}
	b, err := RunFlightGEBurst(7)
	if err != nil {
		t.Fatalf("run b: %v", err)
	}
	if a.SnapshotHash != b.SnapshotHash {
		t.Errorf("snapshot hashes differ: %016x vs %016x", a.SnapshotHash, b.SnapshotHash)
	}
	if a.TraceHash != b.TraceHash {
		t.Errorf("trace hashes differ: %016x vs %016x", a.TraceHash, b.TraceHash)
	}
	if a.Events != b.Events || a.Snapshots != b.Snapshots {
		t.Errorf("run shapes differ: %+v vs %+v", a, b)
	}
	if len(a.Snaps) == len(b.Snaps) {
		for i := range a.Snaps {
			if !bytes.Equal(a.Snaps[i].Encode(), b.Snaps[i].Encode()) {
				t.Errorf("snapshot %d not byte-identical", i)
			}
		}
	}
	c, err := RunFlightGEBurst(8)
	if err != nil {
		t.Fatalf("run c: %v", err)
	}
	if c.TraceHash == a.TraceHash {
		t.Error("different seeds produced identical traces")
	}
}
