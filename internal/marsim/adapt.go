package marsim

import (
	"errors"
	"fmt"
	"math"
	"time"

	"marnet/internal/adapt"
	"marnet/internal/core"
	"marnet/internal/faults"
	"marnet/internal/obs"
	"marnet/internal/phy"
	"marnet/internal/rpc"
	"marnet/internal/simnet"
)

// This file runs the adaptive degradation controller against the REAL
// stack — rpc over wire sessions over simulated radio links — and pits it
// head-to-head against every fixed rung of the ladder under the paper's
// failure modes: an uplink congestion ramp, a vertical handover that
// blows the retransmit-affordability bound, and Gilbert–Elliott burst
// loss. Same seed, same decision trace, byte-identical results.

// AdaptPolicyKind selects which shipping policy a run drives.
type AdaptPolicyKind int

const (
	// PolicyAdaptive is the full closed-loop controller.
	PolicyAdaptive AdaptPolicyKind = iota
	// PolicyAdaptiveNoHyst is the controller with every oscillation guard
	// stripped — the strawman the hysteresis test beats.
	PolicyAdaptiveNoHyst
	// PolicyFixedFull always ships full frames (the static baseline).
	PolicyFixedFull
	// PolicyFixedFeatures always ships extracted features.
	PolicyFixedFeatures
	// PolicyFixedTracking always runs local tracking with sparse anchors.
	PolicyFixedTracking
)

func (k AdaptPolicyKind) String() string {
	switch k {
	case PolicyAdaptive:
		return "adaptive"
	case PolicyAdaptiveNoHyst:
		return "adaptive-nohyst"
	case PolicyFixedFull:
		return "fixed-full"
	case PolicyFixedFeatures:
		return "fixed-features"
	case PolicyFixedTracking:
		return "fixed-tracking"
	}
	return "invalid"
}

// Scenario constants. Payload sizes are scaled-down stand-ins for the
// paper's 20 kB frames / 6 kB feature sets: the wire caps a single rpc
// payload at ~1.18 kB, so a "full frame" ships as three chunks and the
// byte *ratios* between ladder rungs (and the FEC expansion on top) are
// preserved rather than the absolute sizes.
const (
	adaptFPS         = 20
	adaptFramePeriod = time.Second / adaptFPS
	adaptBudget      = 75 * time.Millisecond // motion-to-photon deadline
	adaptDeadline    = 300 * time.Millisecond
	// Anchors correct tracking drift rather than chase the photon budget,
	// so they get a laxer deadline: a fix that arrives half a second late
	// still re-registers the world.
	anchorDeadline = 600 * time.Millisecond
	adaptCtrlTick  = 100 * time.Millisecond
	// Tracer span capacity for the budget-attribution feed; sized past one
	// control tick's worth of chunked calls so reports never starve.
	adaptBudgetSpans = 256

	fullChunks        = 3
	fullChunkBytes    = 600
	featureChunkBytes = 240
	anchorEvery       = 12 // tracking mode ships an anchor every 12th frame

	// Local-tracking drift model: error in pixels, reset by any server fix.
	baseErr       = 2.0
	driftPerFrame = 0.8
	errBound      = 8.0 // a non-offloaded frame "hits" while under this
	errCap        = 60.0
)

// adaptEdgeProfile is the MEC-class radio every adapt scenario starts on:
// close (6 ms one-way) but uplink-constrained, so the degradation ladder
// — not raw propagation — decides who makes the 75 ms budget.
func adaptEdgeProfile() phy.Profile {
	return phy.Profile{
		Name: "edge-radio", TheoreticalDown: 8e6, TheoreticalUp: 1.2e6,
		Down: 4e6, Up: 800e3, OneWay: 6 * time.Millisecond,
		Jitter: time.Millisecond,
	}
}

// adaptCellProfile is the handover target: same capacity, 55 ms away —
// past the §VI-C bound, where a retransmit can no longer fit the budget.
func adaptCellProfile() phy.Profile {
	p := adaptEdgeProfile()
	p.Name = "cell-radio"
	p.OneWay = 55 * time.Millisecond
	p.Jitter = 2 * time.Millisecond
	return p
}

// AdaptResult summarizes one policy's run through an adapt scenario.
type AdaptResult struct {
	Kind    string `json:"kind"`
	Seed    int64  `json:"seed"`
	Frames  int64  `json:"frames"`   // frames the camera produced
	Hits    int64  `json:"hits"`     // frames inside the 75 ms budget
	Misses  int64  `json:"misses"`   // frames outside it
	Offload int64  `json:"offloads"` // frames that shipped something
	Skipped int64  `json:"skipped"`  // frames that shipped nothing
	UpBytes int64  `json:"up_bytes"` // application payload bytes shipped

	RMSError float64 `json:"rms_error_px"` // RMS of the drift model

	Switches     int64   `json:"mode_switches"` // controller runs only
	Ticks        int64   `json:"ctrl_ticks"`
	RetxFlips    int64   `json:"retx_flips"` // ARQ<->FEC transitions
	FinalMode    string  `json:"final_mode"`
	DecisionHash uint64  `json:"decision_hash"`  // 0 for fixed policies
	WireLoss     float64 `json:"wire_loss"`      // session loss EWMA at teardown
	PeakWireLoss float64 `json:"peak_wire_loss"` // max loss EWMA seen during the run
	TraceHash    uint64  `json:"trace_hash"`
	SimTime      time.Duration `json:"sim_time_ns"`

	// Decisions is the controller's retained decision trace (nil for fixed
	// policies) — tests assert phase behavior against it.
	Decisions []adapt.Decision `json:"-"`
	// Trace is the full scenario event log (hashes to TraceHash).
	Trace []byte `json:"-"`
}

// HitRate is Hits/Frames.
func (r *AdaptResult) HitRate() float64 {
	if r.Frames == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Frames)
}

// adaptRun is the client-side harness: the 20 FPS frame loop, the drift
// model, the per-tick signal aggregation, and the policy source (live
// controller or fixed rung).
type adaptRun struct {
	s    *Scenario
	cl   *rpc.Client
	ctrl *adapt.Controller // nil for fixed policies
	pol  adapt.Policy      // policy in force for the next frame

	frames   int64
	stopAt   time.Duration
	stopped  bool
	err      float64
	sumSq    float64
	hits     int64
	misses   int64
	offloads int64
	skipped  int64
	upBytes  int64
	peakLoss float64

	// Aggregated since the previous control tick.
	tickFrames, tickMisses, tickRejects, tickDegraded int
	lastDegraded                                      int64
	// Budget-report cursor: reports past this count are new this tick.
	lastBudgetFrames int64
}

// netShareTick averages the network share of the budget reports that
// landed since the previous control tick.
func (r *adaptRun) netShareTick() float64 {
	bt := r.cl.BudgetTracker()
	if bt == nil {
		return 0
	}
	frames := bt.Frames()
	fresh := frames - r.lastBudgetFrames
	r.lastBudgetFrames = frames
	if fresh <= 0 {
		return 0
	}
	reports := bt.Reports()
	if fresh > int64(len(reports)) {
		fresh = int64(len(reports)) // ring evicted some; use what survives
	}
	var share float64
	n := 0
	for _, rep := range reports[int64(len(reports))-fresh:] {
		if rep.Budget <= 0 {
			continue
		}
		// Network time as a fraction of the frame budget (not of the
		// call's own total): an edge round trip with near-zero compute is
		// structurally network-dominated, and judging it against its own
		// total would signal pressure on a perfectly healthy path.
		share += float64(rep.NetUp+rep.NetDown) / float64(rep.Budget)
		n++
	}
	if n == 0 {
		return 0
	}
	return share / float64(n)
}

func startAdaptRun(s *Scenario, cl *rpc.Client, kind AdaptPolicyKind, cfg adapt.Config, until time.Duration) *adaptRun {
	r := &adaptRun{s: s, cl: cl, err: baseErr, stopAt: until}
	switch kind {
	case PolicyAdaptive:
		r.ctrl = adapt.NewController(cfg)
	case PolicyAdaptiveNoHyst:
		cfg.NoHysteresis = true
		r.ctrl = adapt.NewController(cfg)
	case PolicyFixedFull:
		r.pol = adapt.Policy{Mode: adapt.ModeFull, Retransmit: true}
	case PolicyFixedFeatures:
		r.pol = adapt.Policy{Mode: adapt.ModeFeatures, Retransmit: true}
	case PolicyFixedTracking:
		r.pol = adapt.Policy{Mode: adapt.ModeTracking, Retransmit: true}
	}
	if r.ctrl != nil {
		r.pol = r.ctrl.Policy()
		r.ctrlTick()
	}
	r.frameTick()
	return r
}

// ctrlTick gathers one control interval's signals and asks the
// controller for the next policy.
func (r *adaptRun) ctrlTick() {
	if r.stopped {
		return
	}
	// NetShare comes from live obs.BudgetReport stage attribution: the
	// mean (NetUp+NetDown)/Total over the calls that finished since the
	// previous tick. Deriving it from SRTT instead would go stale the
	// moment a degraded mode stops shipping and wedge the controller at
	// the bottom of the ladder; with no new reports this tick it reads 0,
	// which disables the high-net-share floor rather than fabricating one.
	sig := adapt.Signals{
		SRTT:       r.cl.Session().SRTT(),
		Loss:       r.cl.Session().LossRate(),
		Frames:     r.tickFrames,
		Misses:     r.tickMisses,
		Rejections: r.tickRejects,
		Degraded:   r.tickDegraded,
		NetShare:   r.netShareTick(),
	}
	r.tickFrames, r.tickMisses, r.tickRejects, r.tickDegraded = 0, 0, 0, 0
	r.pol = r.ctrl.Tick(r.s.Sim.Now(), sig)
	r.s.Sim.Schedule(adaptCtrlTick, r.ctrlTick)
}

// frameTick is one camera frame: apply drift, ship per the policy in
// force, score the frame.
func (r *adaptRun) frameTick() {
	if r.stopped || r.s.Sim.Now() >= r.stopAt {
		return
	}
	frame := r.frames
	r.frames++
	// The loss EWMA decays back to zero on a clean tail, so remember the
	// worst it got: that's what a burst-loss scenario asserts against.
	if lr := r.cl.Session().LossRate(); lr > r.peakLoss {
		r.peakLoss = lr
	}
	r.err = math.Min(r.err+driftPerFrame, errCap)
	r.sumSq += r.err * r.err

	pol := r.pol
	switch pol.Mode {
	case adapt.ModeFull:
		r.offloads++
		r.shipFrame(pol, uint32(frame), fullChunks, fullChunkBytes)
	case adapt.ModeFeatures:
		r.offloads++
		r.shipFrame(pol, uint32(frame), 1, featureChunkBytes)
	case adapt.ModeTracking:
		// Tracking frames display from local tracking — the drift bound
		// decides the hit. Every anchorEvery-th frame additionally ships a
		// sparse anchor whose *completion* (even past the display budget)
		// corrects drift and tells the controller the path works.
		if frame%anchorEvery == 0 {
			r.offloads++
			r.shipAnchor(pol, uint32(frame))
		}
		r.scoreDisplay(r.err <= errBound)
	case adapt.ModeSkip:
		// Nothing ships: the frame lives or dies on accumulated drift.
		r.skipped++
		r.scoreDisplay(r.err <= errBound)
	}
	r.s.Sim.Schedule(adaptFramePeriod, r.frameTick)
}

// shipFrame issues one offload as `chunks` parallel calls, each carrying
// the policy header plus the (FEC-expanded) payload share. The frame
// hits only if every chunk lands inside the budget; any completed fix —
// even a late one — still resets tracking drift.
func (r *adaptRun) shipFrame(pol adapt.Policy, tick uint32, chunks, size int) {
	t0 := r.s.Clock.Now()
	remaining := chunks
	var worst time.Duration
	failed, rejected := false, false
	for i := 0; i < chunks; i++ {
		r.issueChunk(pol, tick, size, adaptDeadline, func(err error) {
			if lat := r.s.Clock.Since(t0); lat > worst {
				worst = lat
			}
			if err != nil {
				failed = true
				rejected = rejected || isRejection(err)
			}
			if remaining--; remaining == 0 {
				if !failed {
					r.err = baseErr // the fix corrects local tracking even if late
				}
				hit := !failed && worst <= adaptBudget
				r.scoreDisplay(hit)
				r.feedCtrl(pol.Mode, hit, rejected)
			}
		})
	}
}

// shipAnchor issues one tracking anchor. Success means the fix arrived
// inside the call deadline — anchors are drift correctors, not displayed
// frames, so the controller hears "path delivers fixes", not "fix beat
// the photon budget".
func (r *adaptRun) shipAnchor(pol adapt.Policy, tick uint32) {
	r.issueChunk(pol, tick, featureChunkBytes, anchorDeadline, func(err error) {
		if err == nil {
			r.err = baseErr
		}
		r.feedCtrl(pol.Mode, err == nil, err != nil && isRejection(err))
	})
}

// issueChunk sends one policy-stamped call of `size` payload bytes
// (FEC-expanded per the policy) and hands the outcome to done.
func (r *adaptRun) issueChunk(pol adapt.Policy, tick uint32, size int, deadline time.Duration, done func(error)) {
	payload := size + int(float64(size)*(pol.Overhead()-1)+0.5)
	req := adapt.EncodePolicy(pol, tick)
	req = append(req, make([]byte, payload)...)
	r.upBytes += int64(len(req))
	r.cl.CallAsync(methodRecognize, req, core.PrioHighest, deadline, func(_ []byte, err error) {
		if err != nil {
			r.s.Logf("offload chunk mode=%s err: %v", pol.Mode, err)
		}
		done(err)
	})
}

func isRejection(err error) bool {
	return errors.Is(err, rpc.ErrServerShed) || errors.Is(err, rpc.ErrDraining) ||
		errors.Is(err, rpc.ErrCannotFinish) || errors.Is(err, rpc.ErrServerExpired)
}

// scoreDisplay records one displayed frame's verdict.
func (r *adaptRun) scoreDisplay(hit bool) {
	if r.stopped {
		return
	}
	if hit {
		r.hits++
	} else {
		r.misses++
	}
}

// feedCtrl aggregates one offload outcome into the next control tick's
// signals. Outcomes are attributed to the mode that issued them: calls
// shipped under an abandoned policy can take a full deadline to resolve,
// and letting their verdicts poison the successor mode's first seconds
// cascades the ladder straight to the bottom on every switch.
func (r *adaptRun) feedCtrl(issued adapt.Mode, ok, rejected bool) {
	if r.stopped || issued != r.pol.Mode {
		return
	}
	r.tickFrames++
	if !ok {
		r.tickMisses++
	}
	if rejected {
		r.tickRejects++
	}
	if d := r.cl.Stats().Degraded; d > r.lastDegraded {
		r.tickDegraded += int(d - r.lastDegraded)
		r.lastDegraded = d
	}
}

func (r *adaptRun) stop() { r.stopped = true }

// result snapshots the run into an AdaptResult (trace fields are filled
// by the scenario afterwards).
func (r *adaptRun) result(kind AdaptPolicyKind, seed int64) *AdaptResult {
	res := &AdaptResult{
		Kind: kind.String(), Seed: seed,
		Frames: r.frames, Hits: r.hits, Misses: r.misses,
		Offload: r.offloads, Skipped: r.skipped, UpBytes: r.upBytes,
		FinalMode: r.pol.Mode.String(), PeakWireLoss: r.peakLoss,
	}
	if r.frames > 0 {
		res.RMSError = math.Sqrt(r.sumSq / float64(r.frames))
	}
	if r.ctrl != nil {
		res.Switches = r.ctrl.Switches()
		res.Ticks = r.ctrl.Ticks()
		res.DecisionHash = r.ctrl.DecisionHash()
		res.Decisions = r.ctrl.Decisions()
		for i := 1; i < len(res.Decisions); i++ {
			if res.Decisions[i].Policy.Retransmit != res.Decisions[i-1].Policy.Retransmit {
				res.RetxFlips++
			}
		}
	}
	return res
}

// adaptServer is simServer with a mode-aware service model: the policy
// header on each request tells the server how much compute the chunk
// costs (full frames need server-side extraction; features and anchors
// only matching).
func adaptServer(s *Scenario, workers int) (*rpc.Server, *Endpoint, error) {
	ep := s.Net.NewEndpoint("server", phy.Backbone)
	srv, err := rpc.NewServer("sim", nil,
		func(uint8, []byte) []byte { return []byte("pose") },
		rpc.WithPacketConn(ep),
		rpc.WithClock(s.Clock),
		rpc.WithWorkers(workers),
		rpc.WithServiceModel(func(_ uint8, req []byte) time.Duration {
			if p, _, err := adapt.DecodePolicy(req); err == nil {
				switch p.Mode {
				case adapt.ModeFull:
					return 4 * time.Millisecond
				case adapt.ModeFeatures:
					return 2 * time.Millisecond
				}
			}
			return time.Millisecond
		}))
	if err != nil {
		return nil, nil, err
	}
	return srv, ep, nil
}

// adaptScenario builds the shared skeleton: edge radio, mode-aware
// server, one client, one adaptRun of the given kind, running the frame
// loop until `length`. The script hook installs scenario-specific phase
// events before the run starts.
func adaptScenario(name string, seed int64, kind AdaptPolicyKind, cfg adapt.Config,
	length time.Duration, script func(s *Scenario, host *Host)) (*AdaptResult, error) {
	s := NewScenario(fmt.Sprintf("%s/%s", name, kind), seed)
	srv, serverEp, err := adaptServer(s, 2)
	if err != nil {
		return nil, err
	}
	host := s.Net.NewHost("mobile", adaptEdgeProfile())
	cl, err := rpc.Dial("sim://server", rpc.ClientConfig{
		Clock:  s.Clock,
		Dialer: host.Dialer(serverEp),
		Seed:   seed + 1,
		Retry:  rpc.RetryPolicy{Max: 2},
		// Trace every call (uniformly, for every policy under test) so the
		// budget tracker attributes each frame's latency across stages;
		// ctrlTick feeds the measured network share into adapt.Signals.
		Tracer: obs.NewTracer(adaptBudgetSpans, seed+2),
		Budget: adaptBudget,
	})
	if err != nil {
		return nil, err
	}
	run := startAdaptRun(s, cl, kind, cfg, length)
	script(s, host)

	var res *AdaptResult
	s.Defer(func() { srv.Close() })
	s.Defer(func() {
		res = run.result(kind, seed)
		res.WireLoss = cl.Session().LossRate()
		run.stop()
		cl.Close()
	})
	// Horizon: frame loop end plus the call deadline, so every in-flight
	// chunk resolves (and scores) before teardown.
	if err := s.Run(length + adaptDeadline + 100*time.Millisecond); err != nil {
		return nil, err
	}
	res.Trace = s.Trace.Bytes()
	res.TraceHash = s.Trace.Hash()
	res.SimTime = s.Sim.Now()
	return res, nil
}

// RunAdaptCongestion is the head-to-head acceptance scenario: a 26 s run
// whose uplink passes clear → moderate cross-traffic (kills full frames)
// → heavy cross-traffic (kills features too) → clear again. The adaptive
// controller must beat every fixed rung on deadline hits while shipping
// fewer bytes than the full-frame tier.
func RunAdaptCongestion(seed int64, kind AdaptPolicyKind) (*AdaptResult, error) {
	const length = 26 * time.Second
	cfg := adaptCtrlConfig()
	return adaptScenario("adapt-congestion", seed, kind, cfg, length,
		func(s *Scenario, host *Host) {
			var stopModerate, stopHeavy func()
			// 560 kb/s into the 800 kb/s uplink: full frames (≈330 kb/s
			// offered) overload it, features (≈50 kb/s) ride comfortably.
			s.At(6*time.Second, func() { stopModerate = host.StartCrossTraffic(560e3, 400) })
			// 790 kb/s: features overload too; only sparse tracking anchors
			// (≈4 kb/s) still drain.
			s.At(14*time.Second, func() {
				stopModerate()
				stopHeavy = host.StartCrossTraffic(790e3, 400)
			})
			s.At(20*time.Second, func() { stopHeavy() })
		})
}

// RunAdaptHandover hands the client from the 6 ms edge radio to a 55 ms
// cell — across the §VI-C line where a retransmit can no longer fit the
// 75 ms budget — and back. The controller must flip ARQ→FEC on the way
// out and FEC→ARQ on the way home.
func RunAdaptHandover(seed int64, kind AdaptPolicyKind) (*AdaptResult, error) {
	const length = 24 * time.Second
	cfg := adaptCtrlConfig()
	return adaptScenario("adapt-handover", seed, kind, cfg, length,
		func(s *Scenario, host *Host) {
			s.At(8*time.Second, func() { host.SetProfile(adaptCellProfile()) })
			s.At(16*time.Second, func() { host.SetProfile(adaptEdgeProfile()) })
		})
}

// RunAdaptGEBurst drives Gilbert–Elliott burst loss over the uplink for
// the middle ten seconds of a 16 s run: long clean stretches punctuated
// by ~60%-loss bursts, the exact signal shape that makes an unguarded
// controller flap. The hysteresis test runs it twice — guarded and
// naive — and compares switch counts.
func RunAdaptGEBurst(seed int64, kind AdaptPolicyKind) (*AdaptResult, error) {
	const length = 16 * time.Second
	cfg := adaptCtrlConfig()
	return adaptScenario("adapt-ge-burst", seed, kind, cfg, length,
		func(s *Scenario, host *Host) {
			filter := faultsGE(seed)
			s.At(3*time.Second, func() { host.SetUplinkFilter(filter) })
			s.At(13*time.Second, func() { host.SetUplinkFilter(nil) })
		})
}

// faultsGE is the burst process for RunAdaptGEBurst: bursts average ~3
// packets at 60% loss, separated by clean stretches (stationary loss
// ≈ 4%) — bursty enough to spike the per-tick miss fraction without
// moving its long-run mean much.
func faultsGE(seed int64) simnet.PacketFilter {
	return faults.NewLinkFilter(faults.DirConfig{GE: &faults.GilbertElliott{
		PGoodBad: 0.025, PBadGood: 0.3, LossGood: 0, LossBad: 0.65,
	}}, seed+7)
}

// adaptCtrlConfig is the controller tuning shared by the adapt
// scenarios: snappier than the deployment defaults because simulated
// phases are seconds, not minutes.
func adaptCtrlConfig() adapt.Config {
	return adapt.Config{
		Budget:       adaptBudget,
		MinDwell:     400 * time.Millisecond,
		UpgradeAfter: time.Second,
		ProbeAfter:   2500 * time.Millisecond,
		MissGain:     0.4,
	}
}
