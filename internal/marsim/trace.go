package marsim

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"time"

	"marnet/internal/simnet"
)

// Trace is the scenario's deterministic event log: one line per network
// event (tx, rx, drop, sink) and per application log call, each stamped
// with the virtual time in microseconds. Lines record packet METADATA only
// — sizes, addresses, timings — never payload bytes: sealed frames carry
// crypto/rand nonces, so payload bytes are the one nondeterministic input
// in an otherwise deterministic run. Two runs of the same scenario with
// the same seed must produce byte-identical traces; that equality is the
// repo's determinism regression.
type Trace struct {
	sim   *simnet.Sim
	buf   bytes.Buffer
	lines int
}

// NewTrace creates an empty trace stamped from sim's virtual clock.
func NewTrace(sim *simnet.Sim) *Trace { return &Trace{sim: sim} }

// eventf appends one stamped line: "<µs> <kind> <formatted detail>".
func (t *Trace) eventf(kind, format string, args ...any) {
	fmt.Fprintf(&t.buf, "%10d %-5s ", t.sim.Now().Microseconds(), kind)
	fmt.Fprintf(&t.buf, format, args...)
	t.buf.WriteByte('\n')
	t.lines++
}

// Logf records an application-level event (scenario phase changes, call
// outcomes, state transitions) into the trace.
func (t *Trace) Logf(format string, args ...any) { t.eventf("app", format, args...) }

// Bytes returns the full trace contents.
func (t *Trace) Bytes() []byte { return t.buf.Bytes() }

// Lines reports how many events were recorded.
func (t *Trace) Lines() int { return t.lines }

// Hash returns a 64-bit FNV-1a digest of the trace — a compact identity
// for byte-equality checks across runs and in soak logs.
func (t *Trace) Hash() uint64 {
	h := fnv.New64a()
	h.Write(t.buf.Bytes()) //nolint:errcheck // hash.Hash never errors
	return h.Sum64()
}

// stamp formats a virtual duration for exact-timestamp assertions.
func stamp(d time.Duration) string { return fmt.Sprintf("%dus", d.Microseconds()) }
