package wire

import (
	"container/heap"
	"fmt"
	"net"
	"sync"
	"time"

	"marnet/internal/vclock"
)

// Relay is a minimal UDP impairment middlebox for testing and demos: it
// forwards datagrams between a client and a fixed upstream server,
// optionally dropping every n-th datagram and adding a fixed delay in each
// direction. It is how the integration tests exercise loss recovery on a
// real socket without real packet loss. For probabilistic and scripted
// impairments (burst loss, corruption, blackholes, server swaps) use
// internal/faults.Relay instead.
type Relay struct {
	DropEvery int           // drop every n-th forwarded datagram (0 = none)
	Delay     time.Duration // extra one-way delay

	sock     *net.UDPConn
	upstream *net.UDPAddr
	clock    vclock.Clock

	mu      sync.Mutex
	client  *net.UDPAddr
	count   int
	dropped int64
	dq      relayHeap
	seq     uint64
	closed  bool
	kick    chan struct{}
	done    chan struct{}
	wg      sync.WaitGroup
}

// NewRelay starts a relay on a random local port toward upstream.
func NewRelay(upstream string, dropEvery int, delay time.Duration) (*Relay, error) {
	uaddr, err := net.ResolveUDPAddr("udp", upstream)
	if err != nil {
		return nil, fmt.Errorf("wire: resolve upstream: %w", err)
	}
	sock, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("wire: relay listen: %w", err)
	}
	r := &Relay{
		DropEvery: dropEvery,
		Delay:     delay,
		sock:      sock,
		upstream:  uaddr,
		clock:     vclock.System,
		kick:      make(chan struct{}, 1),
		done:      make(chan struct{}),
	}
	r.wg.Add(2)
	go r.loop()
	go r.dispatchLoop()
	return r, nil
}

// Addr returns the relay's listening address (give this to the client).
func (r *Relay) Addr() string { return r.sock.LocalAddr().String() }

// Dropped reports how many datagrams the relay discarded.
func (r *Relay) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Close stops the relay.
func (r *Relay) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	close(r.done)
	r.mu.Unlock()
	err := r.sock.Close()
	r.wg.Wait()
	return err
}

// relayPending is one datagram awaiting its departure time.
type relayPending struct {
	due time.Time
	seq uint64 // FIFO tiebreak: equal delays forward in arrival order
	pkt []byte
	dst *net.UDPAddr
}

type relayHeap []*relayPending

func (h relayHeap) Len() int { return len(h) }
func (h relayHeap) Less(i, j int) bool {
	if !h[i].due.Equal(h[j].due) {
		return h[i].due.Before(h[j].due)
	}
	return h[i].seq < h[j].seq
}
func (h relayHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *relayHeap) Push(x any)   { *h = append(*h, x.(*relayPending)) }
func (h *relayHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

func (r *Relay) loop() {
	defer r.wg.Done()
	buf := make([]byte, 65535)
	for {
		n, raddr, err := r.sock.ReadFromUDP(buf)
		if err != nil {
			return
		}
		fromUpstream := raddr.IP.Equal(r.upstream.IP) && raddr.Port == r.upstream.Port

		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			return
		}
		if !fromUpstream {
			r.client = raddr
		}
		var dst *net.UDPAddr
		if fromUpstream {
			dst = r.client
		} else {
			dst = r.upstream
		}
		r.count++
		drop := r.DropEvery > 0 && r.count%r.DropEvery == 0
		if drop {
			r.dropped++
		}
		delay := r.Delay
		if drop || dst == nil {
			r.mu.Unlock()
			continue
		}
		// Every datagram — delayed or not — funnels through one ordered
		// queue, so equal-delay packets leave in arrival order instead of
		// racing per-packet timer goroutines.
		r.seq++
		heap.Push(&r.dq, &relayPending{
			due: r.clock.Now().Add(delay),
			seq: r.seq,
			pkt: append([]byte(nil), buf[:n]...),
			dst: dst,
		})
		r.mu.Unlock()

		select {
		case r.kick <- struct{}{}:
		default:
		}
	}
}

// dispatchLoop is the single writer draining the delay queue in (due,
// arrival) order.
func (r *Relay) dispatchLoop() {
	defer r.wg.Done()
	for {
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			return
		}
		var item *relayPending
		wait := time.Duration(-1)
		if len(r.dq) > 0 {
			head := r.dq[0]
			// due carries the clock's monotonic reading, so this wait is
			// immune to wall-clock steps between enqueue and dispatch.
			if d := head.due.Sub(r.clock.Now()); d <= 0 {
				item = heap.Pop(&r.dq).(*relayPending)
			} else {
				wait = d
			}
		}
		r.mu.Unlock()

		if item != nil {
			r.sock.WriteToUDP(item.pkt, item.dst) //nolint:errcheck // best-effort relay
			continue
		}
		if wait < 0 {
			select {
			case <-r.kick:
			case <-r.done:
				return
			}
			continue
		}
		timer := time.NewTimer(wait)
		select {
		case <-timer.C:
		case <-r.kick:
			timer.Stop()
		case <-r.done:
			timer.Stop()
			return
		}
	}
}
