package wire

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Relay is a UDP impairment middlebox for testing and demos: it forwards
// datagrams between a client and a fixed upstream server, optionally
// dropping every n-th datagram and adding a fixed delay in each direction.
// It is how the integration tests exercise loss recovery on a real socket
// without real packet loss.
type Relay struct {
	DropEvery int           // drop every n-th forwarded datagram (0 = none)
	Delay     time.Duration // extra one-way delay

	sock     *net.UDPConn
	upstream *net.UDPAddr

	mu      sync.Mutex
	client  *net.UDPAddr
	count   int
	dropped int64
	closed  bool
	done    chan struct{}
	wg      sync.WaitGroup
}

// NewRelay starts a relay on a random local port toward upstream.
func NewRelay(upstream string, dropEvery int, delay time.Duration) (*Relay, error) {
	uaddr, err := net.ResolveUDPAddr("udp", upstream)
	if err != nil {
		return nil, fmt.Errorf("wire: resolve upstream: %w", err)
	}
	sock, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("wire: relay listen: %w", err)
	}
	r := &Relay{
		DropEvery: dropEvery,
		Delay:     delay,
		sock:      sock,
		upstream:  uaddr,
		done:      make(chan struct{}),
	}
	r.wg.Add(1)
	go r.loop()
	return r, nil
}

// Addr returns the relay's listening address (give this to the client).
func (r *Relay) Addr() string { return r.sock.LocalAddr().String() }

// Dropped reports how many datagrams the relay discarded.
func (r *Relay) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Close stops the relay.
func (r *Relay) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	close(r.done)
	r.mu.Unlock()
	err := r.sock.Close()
	r.wg.Wait()
	return err
}

func (r *Relay) loop() {
	defer r.wg.Done()
	buf := make([]byte, 65535)
	for {
		n, raddr, err := r.sock.ReadFromUDP(buf)
		if err != nil {
			return
		}
		fromUpstream := raddr.IP.Equal(r.upstream.IP) && raddr.Port == r.upstream.Port

		r.mu.Lock()
		if !fromUpstream {
			r.client = raddr
		}
		var dst *net.UDPAddr
		if fromUpstream {
			dst = r.client
		} else {
			dst = r.upstream
		}
		r.count++
		drop := r.DropEvery > 0 && r.count%r.DropEvery == 0
		if drop {
			r.dropped++
		}
		delay := r.Delay
		r.mu.Unlock()

		if drop || dst == nil {
			continue
		}
		pkt := append([]byte(nil), buf[:n]...)
		if delay > 0 {
			go func() {
				timer := time.NewTimer(delay)
				defer timer.Stop()
				select {
				case <-timer.C:
					r.sock.WriteToUDP(pkt, dst) //nolint:errcheck // best-effort relay
				case <-r.done:
				}
			}()
		} else {
			r.sock.WriteToUDP(pkt, dst) //nolint:errcheck // best-effort relay
		}
	}
}
