//go:build linux && (amd64 || arm64)

package wire

// Batched kernel I/O: sendmmsg(2) and recvmmsg(2) move a vector of
// datagrams per system call, which is where the syscall-bound half of the
// wire fast path comes from — the per-packet cost of the classic
// write/read loop is dominated by kernel entry, not by copying 1.2 kB.
// Implemented with the stdlib syscall package only (no new dependencies)
// via net.UDPConn.SyscallConn, whose Read/Write callbacks park the
// goroutine in the runtime poller on EAGAIN, so the socket stays in
// non-blocking mode and integrates with the scheduler exactly like the
// stdlib's own I/O.
//
// The file is gated to 64-bit Linux: struct mmsghdr's layout (msghdr,
// 4-byte msg_len, 4 bytes of tail padding) is spelled out below and only
// audited for amd64/arm64. Every other platform takes the portable
// one-datagram-per-call path, which is semantically identical.

import (
	"net"
	"sync"
	"syscall"
	"unsafe"
)

// ioBatch is the mmsg vector width: how many datagrams one recvmmsg or
// sendmmsg call can move. It matches MaxBatchFrames so a full sender burst
// fits one syscall, and gives the receive side the same headroom to drain
// bursts from several senders in one call.
const ioBatch = 64

// UDP generalized segmentation offload: a run of equal-size datagrams to
// one destination can leave as a single sendmsg whose payload the kernel
// splits into individual datagrams (UDP_SEGMENT, Linux 4.18+). One pass
// down the stack for the whole run beats even sendmmsg, which still pays
// the full per-datagram protocol cost — measured on loopback, the per-
// packet send floor drops from ~1.6us (sendmmsg) to ~0.3us (GSO).
const (
	udpSegment = 103 // UDP_SEGMENT cmsg type / sockopt (linux/udp.h)
	// gsoMaxSegs is the kernel's UDP_MAX_SEGMENTS.
	gsoMaxSegs = 64
	// gsoMaxBytes bounds the coalesced payload to one maximal UDP datagram.
	gsoMaxBytes = 65507
	// gsoMinSegs is the shortest run worth a dedicated sendmsg: below it
	// the plain sendmmsg vector is no worse.
	gsoMinSegs = 2
)

// UDP generic receive offload: the recv twin of GSO. With the UDP_GRO
// sockopt set, the kernel coalesces back-to-back equal-size datagrams of
// one flow into a single large buffer handed up with one recvmsg, and a
// UDP_GRO control message carrying the segment size so userspace can
// re-split (linux 5.0+). One kernel entry then delivers up to 64 frames,
// which is where the batched recv leg's headroom beyond recvmmsg comes
// from. The cmsg payload is the kernel's `int gso_size` (4 bytes).
const (
	udpGRO = 104 // UDP_GRO sockopt / cmsg type (linux/udp.h)
	// groCtrlLen sizes the per-message control buffer: CmsgSpace(4) is 24
	// on 64-bit and UDP_GRO is the only cmsg this socket can receive.
	groCtrlLen = 64
)

// addrCacheMax bounds the reader's peer-address cache. When it fills, the
// map is cleared and rebuilt — previously returned *net.UDPAddr values
// stay valid because they are immutable once handed out.
const addrCacheMax = 8192

// addrKey is the fixed-size, comparable form of a kernel sockaddr, so the
// reader can look up a cached *net.UDPAddr without allocating.
type addrKey struct {
	fam  uint8
	port uint16 // network byte order, exactly as the kernel filled it
	ip   [16]byte
}

// mmsghdr mirrors the kernel's struct mmsghdr on 64-bit targets.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte
}

// batchIO owns the scratch vectors for mmsg calls on one socket. Write
// scratch is guarded by wmu (WriteBatch may be called concurrently);
// read scratch is owned by the single reader goroutine.
type batchIO struct {
	rc syscall.RawConn
	// sock is the owning stdlib socket, used for the rare datagram whose
	// address putSockaddr cannot encode (zoned IPv6 link-local).
	sock *net.UDPConn

	wmu   sync.Mutex
	gso   bool // UDP_SEGMENT accepted so far; cleared on first refusal
	whdrs [ioBatch]mmsghdr
	wiovs [ioBatch]syscall.Iovec
	wsas  [ioBatch]syscall.RawSockaddrInet6
	wcmsg [32]byte // one UDP_SEGMENT cmsg (CmsgSpace(2) <= 32 on 64-bit)

	gro    bool // UDP_GRO enabled on the socket at construction
	rhdrs  [ioBatch]mmsghdr
	riovs  [ioBatch]syscall.Iovec
	rsas   [ioBatch]syscall.RawSockaddrInet6
	rbufs  [ioBatch][]byte
	rctrl  [ioBatch][groCtrlLen]byte
	acache map[addrKey]*net.UDPAddr // owned by the reader goroutine
}

func newBatchIO(sock *net.UDPConn) *batchIO {
	rc, err := sock.SyscallConn()
	if err != nil {
		return nil
	}
	b := &batchIO{rc: rc, sock: sock, gso: true}
	// Opt into GRO coalescing; a kernel that predates it (pre-5.0) refuses
	// the sockopt and the reader simply never sees a UDP_GRO cmsg.
	cerr := rc.Control(func(fd uintptr) {
		b.gro = syscall.SetsockoptInt(int(fd), syscall.IPPROTO_UDP, udpGRO, 1) == nil
	})
	if cerr != nil {
		b.gro = false
	}
	return b
}

// putSockaddr encodes addr into sa, returning the kernel namelen. ok is
// false for addresses the raw path does not handle (zoned IPv6 link-local);
// the caller falls back to WriteToUDP for those.
func putSockaddr(sa *syscall.RawSockaddrInet6, addr *net.UDPAddr) (namelen uint32, ok bool) {
	if addr == nil {
		return 0, false
	}
	port := uint16(addr.Port)
	if ip4 := addr.IP.To4(); ip4 != nil {
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		*sa4 = syscall.RawSockaddrInet4{Family: syscall.AF_INET}
		sa4.Port = port<<8 | port>>8 // htons
		copy(sa4.Addr[:], ip4)
		return syscall.SizeofSockaddrInet4, true
	}
	ip16 := addr.IP.To16()
	if ip16 == nil || addr.Zone != "" {
		return 0, false
	}
	*sa = syscall.RawSockaddrInet6{Family: syscall.AF_INET6}
	sa.Port = port<<8 | port>>8 // htons
	copy(sa.Addr[:], ip16)
	return syscall.SizeofSockaddrInet6, true
}

// sockaddrFromRaw decodes a kernel-filled sockaddr into a fresh UDPAddr.
// Fresh because the protocol retains peer addresses (conn.peer, mux keys)
// beyond the delivery call — only the packet buffer is loaned.
func sockaddrFromRaw(sa *syscall.RawSockaddrInet6) *net.UDPAddr {
	switch sa.Family {
	case syscall.AF_INET:
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		return &net.UDPAddr{
			IP:   net.IPv4(sa4.Addr[0], sa4.Addr[1], sa4.Addr[2], sa4.Addr[3]),
			Port: int(sa4.Port<<8 | sa4.Port>>8),
		}
	case syscall.AF_INET6:
		ip := make(net.IP, net.IPv6len)
		copy(ip, sa.Addr[:])
		return &net.UDPAddr{IP: ip, Port: int(sa.Port<<8 | sa.Port>>8)}
	}
	return nil
}

// sameUDPAddr reports whether two destination addresses are the same
// endpoint. The pointer fast path is the common case: a Conn burst reuses
// one peer address for every frame.
func sameUDPAddr(a, b *net.UDPAddr) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	return a.Port == b.Port && a.Zone == b.Zone && a.IP.Equal(b.IP)
}

// gsoRun reports how many datagrams at the head of dgs can leave as one
// GSO send: same destination, every frame the same size (only the last
// may be shorter), within the kernel's segment-count and total-size
// limits. Returns 0 when GSO is off or the run is too short to beat the
// sendmmsg vector.
func (b *batchIO) gsoRun(dgs []Datagram) int {
	if !b.gso || len(dgs) < gsoMinSegs {
		return 0
	}
	size := len(dgs[0].B)
	if size == 0 || dgs[0].Addr == nil {
		return 0
	}
	total := size
	run := 1
	for run < len(dgs) && run < gsoMaxSegs {
		d := &dgs[run]
		if len(d.B) == 0 || len(d.B) > size || total+len(d.B) > gsoMaxBytes ||
			!sameUDPAddr(d.Addr, dgs[0].Addr) {
			break
		}
		total += len(d.B)
		run++
		if len(d.B) < size {
			break // a short segment is only valid in last position
		}
	}
	if run < gsoMinSegs {
		return 0
	}
	return run
}

// writeGSO sends dgs (a run validated by gsoRun) as one sendmsg carrying a
// UDP_SEGMENT control message: the frames are scatter-gathered by iovec —
// never copied — and the kernel re-splits them at segment-size boundaries.
// A kernel that refuses the cmsg flips b.gso off and the caller retries
// the run on the sendmmsg path, so nothing is lost on old kernels.
func (b *batchIO) writeGSO(dgs []Datagram) (bool, error) {
	namelen, ok := putSockaddr(&b.wsas[0], dgs[0].Addr)
	if !ok {
		return false, nil // zoned v6 etc.: let the fallback paths sort it
	}
	total := 0
	for i := range dgs {
		b.wiovs[i] = syscall.Iovec{Base: &dgs[i].B[0], Len: uint64(len(dgs[i].B))}
		total += len(dgs[i].B)
	}
	cmsg := (*syscall.Cmsghdr)(unsafe.Pointer(&b.wcmsg[0]))
	cmsg.Level = syscall.IPPROTO_UDP
	cmsg.Type = udpSegment
	cmsg.SetLen(syscall.CmsgLen(2))
	*(*uint16)(unsafe.Pointer(&b.wcmsg[syscall.CmsgLen(0)])) = uint16(len(dgs[0].B))
	hdr := syscall.Msghdr{
		Name:    (*byte)(unsafe.Pointer(&b.wsas[0])),
		Namelen: namelen,
		Iov:     &b.wiovs[0],
		Control: &b.wcmsg[0],
	}
	hdr.Iovlen = uint64(len(dgs))
	hdr.SetControllen(syscall.CmsgSpace(2))
	var wrote int
	var errno syscall.Errno
	werr := b.rc.Write(func(fd uintptr) bool {
		for {
			r1, _, e := syscall.Syscall(syscall.SYS_SENDMSG,
				fd, uintptr(unsafe.Pointer(&hdr)), 0)
			if e == syscall.EINTR {
				continue // interrupted before sending anything: retry
			}
			if e == syscall.EAGAIN {
				return false // park in the poller until writable
			}
			wrote, errno = int(r1), e
			return true
		}
	})
	if werr != nil {
		return false, werr
	}
	switch errno {
	case 0:
	case syscall.EINVAL, syscall.EOPNOTSUPP:
		b.gso = false // kernel predates UDP_SEGMENT; permanent for this socket
		return false, nil
	default:
		return false, errno
	}
	if wrote != total {
		return false, syscall.EIO
	}
	return true, nil
}

// writeBatch transmits dgs with as few kernel entries as possible:
// equal-size same-peer runs leave as single GSO sends, the rest ride
// sendmmsg vectors. Datagrams whose address the raw path cannot encode
// are sent via the stdlib write in order, so ordering is preserved in
// every mix.
func (b *batchIO) writeBatch(dgs []Datagram) (int, error) {
	b.wmu.Lock()
	defer b.wmu.Unlock()
	sent := 0
	for sent < len(dgs) {
		if run := b.gsoRun(dgs[sent:]); run > 0 {
			ok, err := b.writeGSO(dgs[sent : sent+run])
			if err != nil {
				return sent, err
			}
			if ok {
				sent += run
				continue
			}
			// GSO refused: fall through and move the run by sendmmsg.
		}
		n := 0
		for n < ioBatch && sent+n < len(dgs) {
			if n > 0 && b.gsoRun(dgs[sent+n:]) > 0 {
				break // flush the vector, then let GSO take the run
			}
			d := &dgs[sent+n]
			namelen, ok := putSockaddr(&b.wsas[n], d.Addr)
			if !ok || len(d.B) == 0 {
				break // flush what we have, then handle this one alone
			}
			b.wiovs[n] = syscall.Iovec{Base: &d.B[0], Len: uint64(len(d.B))}
			b.whdrs[n] = mmsghdr{hdr: syscall.Msghdr{
				Name:    (*byte)(unsafe.Pointer(&b.wsas[n])),
				Namelen: namelen,
				Iov:     &b.wiovs[n],
				Iovlen:  1,
			}}
			n++
		}
		if n == 0 {
			// Head of the remainder is un-encodable (zoned v6 etc.): send it
			// through the owning stdlib socket, which handles every address
			// form the raw path cannot.
			if _, err := b.sock.WriteToUDP(dgs[sent].B, dgs[sent].Addr); err != nil {
				return sent, err
			}
			sent++
			continue
		}
		for n > 0 {
			var wrote int
			var errno syscall.Errno
			werr := b.rc.Write(func(fd uintptr) bool {
				for {
					r1, _, e := syscall.Syscall6(sysSENDMMSG,
						fd, uintptr(unsafe.Pointer(&b.whdrs[0])), uintptr(n), 0, 0, 0)
					if e == syscall.EINTR {
						continue // interrupted before sending anything: retry
					}
					if e == syscall.EAGAIN {
						return false // park in the poller until writable
					}
					wrote, errno = int(r1), e
					return true
				}
			})
			if werr != nil {
				return sent, werr
			}
			if errno != 0 {
				return sent, errno
			}
			if wrote <= 0 {
				return sent, syscall.EIO
			}
			sent += wrote
			// A short sendmmsg accepted a prefix; shift and retry the rest
			// so a short count never reaches the caller without an error.
			copy(b.whdrs[:], b.whdrs[wrote:n])
			n -= wrote
		}
	}
	return sent, nil
}

// addrOf resolves a kernel-filled sockaddr to a *net.UDPAddr through the
// reader-owned cache: the first packet from a peer allocates its address,
// every later packet reuses the same pointer. Callers retain peer
// addresses (conn.peer, mux keys), which is safe precisely because a
// handed-out UDPAddr is never mutated — cache eviction only drops the
// map's reference, never the address itself.
func (b *batchIO) addrOf(sa *syscall.RawSockaddrInet6) *net.UDPAddr {
	var k addrKey
	switch sa.Family {
	case syscall.AF_INET:
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		k.fam = 4
		k.port = sa4.Port
		copy(k.ip[:4], sa4.Addr[:])
	case syscall.AF_INET6:
		k.fam = 6
		k.port = sa.Port
		k.ip = sa.Addr
	default:
		return nil
	}
	if a, ok := b.acache[k]; ok {
		return a
	}
	a := sockaddrFromRaw(sa)
	if len(b.acache) >= addrCacheMax {
		clear(b.acache)
	}
	b.acache[k] = a
	return a
}

// groSegSize extracts the UDP_GRO segment size from message i's control
// buffer, or 0 when the datagram was not coalesced. The walk is bounds-
// checked so a malformed control length can never read out of the buffer.
func (b *batchIO) groSegSize(i int) int {
	n := int(b.rhdrs[i].hdr.Controllen)
	if n > len(b.rctrl[i]) {
		n = len(b.rctrl[i])
	}
	ctrl := b.rctrl[i][:n]
	for len(ctrl) >= syscall.CmsgLen(0) {
		h := (*syscall.Cmsghdr)(unsafe.Pointer(&ctrl[0]))
		l := int(h.Len)
		if l < syscall.CmsgLen(0) || l > len(ctrl) {
			return 0
		}
		if h.Level == syscall.IPPROTO_UDP && h.Type == udpGRO && l >= syscall.CmsgLen(4) {
			return int(*(*int32)(unsafe.Pointer(&ctrl[syscall.CmsgLen(0)])))
		}
		adv := (l + 7) &^ 7 // CMSG_ALIGN on 64-bit
		if adv <= 0 || adv > len(ctrl) {
			return 0
		}
		ctrl = ctrl[adv:]
	}
	return 0
}

// readLoop drains the socket with recvmmsg until it is closed, delivering
// each datagram to recv. Packet buffers are loaned for the duration of the
// callback (and poisoned afterwards in debug builds); peer addresses come
// from the reader-owned cache, so the steady-state delivery path performs
// zero allocations. GRO-coalesced datagrams are re-split at the advertised
// segment size before delivery, so the callback sees exactly the frames
// the peer sent.
func (b *batchIO) readLoop(recv func(pkt []byte, from *net.UDPAddr)) {
	bufLen := recvBufLen
	if b.gro {
		// A coalesced GRO buffer holds up to a maximal UDP datagram.
		bufLen = groRecvBufLen
	}
	for i := range b.rbufs {
		b.rbufs[i] = make([]byte, bufLen)
	}
	b.acache = make(map[addrKey]*net.UDPAddr)
	for {
		for i := range b.rhdrs {
			b.riovs[i] = syscall.Iovec{Base: &b.rbufs[i][0], Len: uint64(bufLen)}
			b.rhdrs[i] = mmsghdr{hdr: syscall.Msghdr{
				Name:    (*byte)(unsafe.Pointer(&b.rsas[i])),
				Namelen: uint32(unsafe.Sizeof(b.rsas[i])),
				Iov:     &b.riovs[i],
				Iovlen:  1,
			}}
			if b.gro {
				b.rhdrs[i].hdr.Control = &b.rctrl[i][0]
				b.rhdrs[i].hdr.SetControllen(groCtrlLen)
			}
		}
		var got int
		var errno syscall.Errno
		rerr := b.rc.Read(func(fd uintptr) bool {
			for {
				r1, _, e := syscall.Syscall6(sysRECVMMSG,
					fd, uintptr(unsafe.Pointer(&b.rhdrs[0])), ioBatch, 0, 0, 0)
				if e == syscall.EINTR {
					continue // signal delivery / async preemption: retry
				}
				if e == syscall.EAGAIN {
					return false // park in the poller until readable
				}
				got, errno = int(r1), e
				return true
			}
		})
		if rerr != nil {
			return // RawConn.Read fails only when the socket is closed
		}
		switch errno {
		case 0:
		case syscall.ENOMEM, syscall.ENOBUFS:
			continue // transient kernel memory pressure: keep the reader alive
		default:
			return // unrecoverable (EBADF-class): the socket is gone
		}
		if got <= 0 {
			return
		}
		for i := 0; i < got; i++ {
			n := int(b.rhdrs[i].n)
			if n > bufLen {
				n = bufLen
			}
			from := b.addrOf(&b.rsas[i])
			pkt := b.rbufs[i][:n]
			if seg := b.groSegSize(i); seg > 0 && seg < n {
				splitSegments(pkt, seg, from, recv)
			} else {
				recv(pkt, from)
			}
			poisonBuf(pkt)
		}
	}
}
