package wire

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"sync"
	"time"

	"marnet/internal/core"
	"marnet/internal/obs"
	"marnet/internal/vclock"
)

// ErrClosed is returned by operations on a closed Conn.
var ErrClosed = errors.New("wire: connection closed")

// StreamSpec declares one substream of a connection. Class/priority
// semantics are identical to package core.
type StreamSpec struct {
	ID       uint16
	Class    core.Class
	Priority core.Priority
	Rate     float64 // desired bits/s
	Deadline time.Duration
	// OnAllocate receives QoS feedback (allocated bits/s).
	OnAllocate func(rate float64)
}

// Message is one received application datagram.
type Message struct {
	Stream  uint16
	Seq     int64
	Payload []byte
	// Peer is the remote address the datagram came from (useful behind a
	// Mux, where one handler may serve many peers).
	Peer *net.UDPAddr
	// TraceID/SpanID carry the sender's trace context when the frame was
	// traced (wire v3); both are zero for untraced frames. SpanID names
	// the sender's span — the parent of any span the receiver starts.
	TraceID uint64
	SpanID  uint64
}

// State is the liveness of a connection's peer as judged by keepalive.
type State int

// Connection states.
const (
	// StateActive: frames (or heartbeat replies) are arriving.
	StateActive State = iota
	// StateDead: KeepaliveMiss probe intervals elapsed with nothing heard.
	StateDead
	// StateClosed: Close was called locally.
	StateClosed
)

// String renders the state for diagnostics.
func (s State) String() string {
	switch s {
	case StateActive:
		return "active"
	case StateDead:
		return "dead"
	case StateClosed:
		return "closed"
	}
	return "?"
}

// Config configures a Conn.
type Config struct {
	Streams     []StreamSpec
	StartBudget float64 // bits/s, default 1 Mb/s
	RetxLimit   int     // default 3
	// OnMessage is invoked from the read loop for every newly received
	// data frame (duplicates are filtered). The payload is owned by the
	// callee.
	OnMessage func(Message)
	// Key, when set (16/24/32 bytes), seals every payload with AES-GCM and
	// authenticates headers (Section VI-G). Both endpoints must share it.
	Key []byte
	// Keepalive, when > 0, sends a heartbeat ping every interval and
	// declares the peer dead after KeepaliveMiss unanswered intervals.
	// Peers answer pings automatically whether or not they enable
	// keepalive themselves.
	Keepalive time.Duration
	// KeepaliveMiss is how many silent probe intervals mean death
	// (default 3).
	KeepaliveMiss int
	// OnStateChange observes liveness transitions (Active↔Dead, and Closed
	// on local close). It is called without internal locks held; it must
	// not call back into blocking Conn methods from the same goroutine it
	// wants to keep serviced.
	OnStateChange func(State)
	// Clock supplies time and timer scheduling for every protocol timer
	// (pacing gaps, the retransmit sweep, keepalive). Nil means the system
	// clock; internal/marsim injects a virtual clock so the identical
	// protocol code runs on deterministic simulated time.
	Clock vclock.Clock
	// Recorder, when set, receives flight-recorder events from the
	// datapath: frame sends, retransmits, acks and loss verdicts. Nil (the
	// default) costs one pointer check per event site. Give it the same
	// Clock as the connection so its timeline lines up with the protocol.
	Recorder *obs.FlightRecorder
	// MaxBurst caps how many queued frames one pace fire may coalesce
	// into a single batch write when the transport supports batching
	// (BatchWriter). The default (0 or 1) keeps the legacy one frame per
	// fire, so existing deployments and the deterministic simulations are
	// timing-identical. A burst still pays its full serialization time:
	// nextSend advances by the batch's cumulative budget gap, so the
	// average rate honors the controller exactly — only the micro-spacing
	// inside one burst collapses. Values above MaxBatchFrames are
	// clamped.
	MaxBurst int
}

// MaxBatchFrames bounds MaxBurst (and sizes the per-connection batch
// scratch): more frames per syscall than this yields no measurable win
// and inflates jitter for competing flows.
const MaxBatchFrames = 64

// wpending is the bookkeeping record of one reliable frame awaiting
// acknowledgment. Records are pooled: they return to pendingPool when the
// sequence leaves the outstanding map (see pool.go for ownership rules).
type wpending struct {
	payload  []byte
	pbuf     *[]byte // pooled backing buffer of payload
	class    core.Class
	deadline time.Time
	lastSent time.Time
	retx     int
	queued   bool
	// sending marks the window where the pace loop has popped this frame
	// and is writing it outside the lock; orphaned marks a record removed
	// from the outstanding map during that window, deferring the buffer
	// release to the pace loop's finalize step.
	sending  bool
	orphaned bool
	// Trace context rides with the pending record so retransmits carry
	// the same ids as the original transmission.
	traceID uint64
	spanID  uint64
}

type wstream struct {
	spec      StreamSpec
	nextSeq   int64
	allocated float64
	tokens    float64
	lastFill  time.Time

	outstanding map[int64]*wpending
	maxAcked    int64

	// receive side
	expected int64
	received map[int64]bool
	nacked   map[int64]int

	// Stats
	sent  int64
	shed  int64
	retx  int64
	recvd int64
	dups  int64
}

type outFrame struct {
	hdr     Header
	payload []byte
	pbuf    *[]byte // pooled backing buffer of payload (nil for none)
}

// frameQueue is a FIFO of queued frames that reuses its backing array:
// pops advance a head index instead of re-slicing, so a steady-state
// enqueue/dequeue cycle allocates nothing once the array has grown to the
// high-water backlog (a plain s=s[1:] queue leaks capacity on every pop
// and re-allocates forever). Pop compacts whenever the dead head region
// outgrows the live half, so even a queue that never fully drains — the
// sustained-backlog regime a saturation sender maintains — is bounded by
// its backlog high-water mark, not by cumulative throughput; the copy is
// amortized O(1) per pop.
type frameQueue struct {
	buf  []outFrame
	head int
}

func (q *frameQueue) empty() bool { return q.head >= len(q.buf) }

func (q *frameQueue) len() int { return len(q.buf) - q.head }

func (q *frameQueue) push(f outFrame) { q.buf = append(q.buf, f) }

func (q *frameQueue) pop() outFrame {
	f := q.buf[q.head]
	q.buf[q.head] = outFrame{} // drop buffer refs so the pool owns them alone
	q.head++
	switch {
	case q.head == len(q.buf):
		q.buf = q.buf[:0]
		q.head = 0
	case q.head > len(q.buf)/2:
		n := copy(q.buf, q.buf[q.head:])
		clear(q.buf[n:]) // stale tail copies must not pin pooled buffers
		q.buf = q.buf[:n]
		q.head = 0
	}
	return f
}

// popped pairs a frame being written with its pending record (nil for
// best-effort frames or sequences already acknowledged).
type popped struct {
	f  outFrame
	pp *wpending
}

// sweepInterval is the retransmit sweep period (tail-loss probe cadence).
const sweepInterval = 50 * time.Millisecond

// Conn is an ARTP endpoint over a datagram transport. Both sides of a
// connection are symmetric: each may declare sending streams and receive
// the peer's. All protocol timers (pacing, sweep, keepalive) run as
// reset-in-place timer chains on the injected clock, so a Conn over a
// synchronous simulated transport spawns no goroutines at all — and the
// steady-state pace chain allocates nothing.
type Conn struct {
	pc    PacketConn
	bw    BatchWriter // pc's batch capability, nil when unsupported
	clock vclock.Clock
	epoch time.Time
	cfg   Config

	mu        sync.Mutex
	peer      *net.UDPAddr
	ctrl      *core.Controller
	streams   map[uint16]*wstream
	bands     [4]frameQueue
	closed    bool
	done      chan struct{}
	sealer    *sealer // nil when Config.Key is unset
	state     State
	lastHeard time.Time // last authenticated frame from the peer

	// Timer chains (guarded by mu). Each timer object is created once and
	// re-armed in place (vclock.Rearm), keeping the hot pace chain
	// allocation-free; the armed flag tracks whether a fire is pending.
	// nextSend is the earliest instant the next frame may be serialized,
	// enforcing the budget gap across idle periods.
	paceTimer  vclock.Timer
	paceArmed  bool
	paceFn     func()
	nextSend   time.Time
	sweepTimer vclock.Timer
	sweepFn    func()
	kaTimer    vclock.Timer
	kaFn       func()

	// sendMu serializes the pace loop's pop→encode→write→finalize cycle
	// and guards the batch scratch. Lock order: sendMu before mu, never
	// the reverse.
	sendMu     sync.Mutex
	sendPops   []popped
	sendDgs    []Datagram
	sendFrames []*[]byte // per-slot frame buffers, grown to MaxBurst once

	// nackScratch backs the gap list built on the receive path (guarded
	// by mu).
	nackScratch []int64

	// Mux mode: datagrams arrive via the mux's shared transport (through
	// recvCh and a pump goroutine on asynchronous transports, direct
	// dispatch on synchronous ones), writes go through the shared
	// transport, and Close must not close it.
	recvCh  chan []byte
	muxced  bool
	onClose func()

	wg sync.WaitGroup

	// Stats (guarded by mu).
	SentFrames   int64
	BatchWrites  int64 // transport writes that carried more than one frame
	BatchFrames  int64 // frames sent inside multi-frame writes
	AckedRTT     time.Duration
	AuthFailures int64
	LostFrames   int64 // transmissions declared lost (gap, nack or sweep)
	Failovers    int64 // frames re-enqueued off a dead path by the path manager

	// Smoothed per-transmission loss rate: every delivery confirmation
	// contributes a 0 sample, every loss declaration a 1. This is the
	// measured-loss input the §VI-C FEC sizing rule consumes.
	lossRate  float64
	lossKnown bool
}

// Dial connects to a server and starts the protocol machinery.
func Dial(server string, cfg Config) (*Conn, error) {
	raddr, err := net.ResolveUDPAddr("udp", server)
	if err != nil {
		return nil, fmt.Errorf("wire: resolve %q: %w", server, err)
	}
	sock, err := net.ListenUDP("udp", nil)
	if err != nil {
		return nil, fmt.Errorf("wire: listen: %w", err)
	}
	return newConn(newUDPPacketConn(sock), raddr, cfg)
}

// DialVia connects to peer over a caller-supplied transport (e.g. a
// simulated network endpoint from internal/marsim). The Conn owns the
// transport and closes it on Close.
func DialVia(pc PacketConn, peer *net.UDPAddr, cfg Config) (*Conn, error) {
	return newConn(pc, peer, cfg)
}

// Listen binds a server endpoint; the peer address is learned from the
// first arriving frame.
func Listen(addr string, cfg Config) (*Conn, error) {
	laddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: resolve %q: %w", addr, err)
	}
	sock, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("wire: listen: %w", err)
	}
	return newConn(newUDPPacketConn(sock), nil, cfg)
}

// ListenVia is Listen over a caller-supplied transport: the peer address is
// learned from the first arriving frame.
func ListenVia(pc PacketConn, cfg Config) (*Conn, error) {
	return newConn(pc, nil, cfg)
}

func newConn(pc PacketConn, peer *net.UDPAddr, cfg Config) (*Conn, error) {
	var sl *sealer
	if cfg.Key != nil {
		var err error
		if sl, err = newSealer(cfg.Key); err != nil {
			pc.Close()
			return nil, err
		}
	}
	if cfg.StartBudget <= 0 {
		cfg.StartBudget = 1e6
	}
	if cfg.RetxLimit <= 0 {
		cfg.RetxLimit = 3
	}
	c := newConnCommon(pc, peer, cfg, sl)
	c.start()
	return c, nil
}

// newConnCommon builds the connection state without starting delivery or
// timers.
func newConnCommon(pc PacketConn, peer *net.UDPAddr, cfg Config, sl *sealer) *Conn {
	if cfg.KeepaliveMiss <= 0 {
		cfg.KeepaliveMiss = 3
	}
	if cfg.MaxBurst < 1 {
		cfg.MaxBurst = 1
	}
	if cfg.MaxBurst > MaxBatchFrames {
		cfg.MaxBurst = MaxBatchFrames
	}
	clock := vclock.OrSystem(cfg.Clock)
	now := clock.Now()
	c := &Conn{
		pc:        pc,
		clock:     clock,
		epoch:     now,
		cfg:       cfg,
		peer:      peer,
		ctrl:      core.NewController(cfg.StartBudget),
		streams:   make(map[uint16]*wstream, len(cfg.Streams)),
		done:      make(chan struct{}),
		sealer:    sl,
		state:     StateActive,
		lastHeard: now,
		nextSend:  now,
	}
	c.bw, _ = pc.(BatchWriter)
	if ps, ok := pc.(*PathSet); ok {
		// A Conn built directly over a PathSet gets the sub-RTT failover
		// hook: path-down evacuation re-enqueues in-flight frames here.
		ps.bindConn(c)
	}
	c.paceFn = c.paceFire
	c.sweepFn = c.sweepFire
	c.kaFn = c.keepaliveFire
	burst := cfg.MaxBurst
	c.sendPops = make([]popped, 0, burst)
	c.sendDgs = make([]Datagram, 0, burst)
	c.sendFrames = make([]*[]byte, burst)
	for i := range c.sendFrames {
		c.sendFrames[i] = getFrameBuf()
	}
	for _, spec := range cfg.Streams {
		c.streams[spec.ID] = &wstream{
			spec:        spec,
			tokens:      4 * 1500, // initial burst credit
			lastFill:    now,
			outstanding: make(map[int64]*wpending),
			maxAcked:    -1,
			received:    make(map[int64]bool),
			nacked:      make(map[int64]int),
		}
	}
	c.ctrl.SetOnChange(c.reallocateLocked)
	c.reallocateLocked()
	return c
}

// start begins inbound delivery and arms the periodic timer chains.
func (c *Conn) start() {
	if !c.muxced {
		c.pc.Start(c.handleDatagram)
	} else if !c.pc.Synchronous() {
		c.wg.Add(1)
		go c.muxPump()
	}
	c.mu.Lock()
	c.sweepTimer = c.clock.AfterFunc(sweepInterval, c.sweepFn)
	if c.cfg.Keepalive > 0 {
		c.kaTimer = c.clock.AfterFunc(c.cfg.Keepalive, c.kaFn)
	}
	c.mu.Unlock()
}

// muxPump feeds datagrams queued by an asynchronous mux into the protocol;
// synchronous (simulated) transports dispatch directly instead.
func (c *Conn) muxPump() {
	defer c.wg.Done()
	for {
		select {
		case dgram := <-c.recvCh:
			c.handleDatagram(dgram, c.peer)
		case <-c.done:
			return
		}
	}
}

// keepaliveFire probes the peer every Keepalive interval and flips the
// connection state when the silence threshold is crossed (Section VI:
// dead-peer detection is what lets the session layer fail over instead of
// stalling on a blackholed path).
func (c *Conn) keepaliveFire() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	interval := c.cfg.Keepalive
	deadAfter := time.Duration(c.cfg.KeepaliveMiss) * interval
	peer := c.peer
	silent := c.clock.Now().Sub(c.lastHeard)
	notify := State(-1)
	if c.state == StateActive && silent >= deadAfter {
		c.state = StateDead
		notify = StateDead
	}
	c.kaTimer = vclock.Rearm(c.clock, c.kaTimer, interval, c.kaFn)
	c.mu.Unlock()
	if notify != State(-1) && c.cfg.OnStateChange != nil {
		c.cfg.OnStateChange(notify)
	}
	if peer != nil {
		ping := Header{Type: TypePing, SendMicro: uint64(c.now().Microseconds())}
		c.writeFrame(ping, nil, peer) //nolint:errcheck // best-effort probe
	}
}

// State reports the current liveness judgement.
func (c *Conn) State() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// LastActivity reports when the last authenticated frame arrived from the
// peer (connection creation time if none has).
func (c *Conn) LastActivity() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastHeard
}

// encodeFrame serializes (and seals, when a key is configured) one frame
// into dst, which callers draw from the frame pool so the steady-state
// path allocates nothing.
func (c *Conn) encodeFrame(dst []byte, h Header, payload []byte) ([]byte, error) {
	if c.sealer != nil {
		return c.sealer.appendSealedFrame(dst, h, payload)
	}
	return AppendFrame(dst, h, payload)
}

// writeFrame seals (when a key is configured) and transmits one frame to
// the peer through a pooled frame buffer. It takes no locks itself;
// datagram writes are safe to issue concurrently.
func (c *Conn) writeFrame(h Header, payload []byte, peer *net.UDPAddr) error {
	if peer == nil {
		return nil
	}
	fb := getFrameBuf()
	frame, err := c.encodeFrame((*fb)[:0], h, payload)
	if err == nil {
		_, err = c.pc.WriteToUDP(frame, peer)
	}
	putFrameBuf(fb)
	return err
}

// LocalAddr returns the bound UDP address.
func (c *Conn) LocalAddr() *net.UDPAddr {
	addr, _ := c.pc.LocalAddr().(*net.UDPAddr)
	return addr
}

// Budget reports the controller's current sending budget in bits/s.
func (c *Conn) Budget() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ctrl.Budget()
}

// SRTT reports the controller's smoothed round-trip estimate (zero before
// the first acknowledged exchange). Deadline-aware servers use half of it
// as the one-way return-trip charge when anchoring propagated budgets.
func (c *Conn) SRTT() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ctrl.SRTT()
}

// LossRate reports the smoothed per-transmission loss rate in [0,1]
// (zero before any delivery verdict). Together with SRTT it is the wire
// signal pair the adaptive degradation controller consumes.
func (c *Conn) LossRate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lossRate
}

// LostFrameCount reports how many transmissions were declared lost.
func (c *Conn) LostFrameCount() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.LostFrames
}

// FailoverCount reports how many in-flight frames were re-enqueued onto
// surviving paths after a path manager declared their path dead.
func (c *Conn) FailoverCount() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.Failovers
}

// requeueFrames is the path manager's sub-RTT failover hook: each listed
// frame that is still outstanding and not already queued goes straight
// back onto its band queue for immediate retransmission on a surviving
// path. Unlike a loss verdict this charges no retransmit budget and takes
// no loss sample — the frames were not lost to congestion, their carrier
// died under them.
func (c *Conn) requeueFrames(keys []frameKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	for _, k := range keys {
		st := c.streams[k.stream]
		if st == nil {
			continue
		}
		pp, ok := st.outstanding[k.seq]
		if !ok || pp.queued || pp.sending {
			continue
		}
		pp.queued = true
		c.Failovers++
		c.enqueueLocked(st, k.seq, pp.payload, pp.pbuf, pp.traceID, pp.spanID)
	}
}

// Close stops all timers and closes the transport.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.state = StateClosed
	close(c.done)
	for _, t := range []vclock.Timer{c.paceTimer, c.sweepTimer, c.kaTimer} {
		if t != nil {
			t.Stop()
		}
	}
	c.paceTimer, c.sweepTimer, c.kaTimer = nil, nil, nil
	c.paceArmed = false
	c.mu.Unlock()
	if c.cfg.OnStateChange != nil {
		c.cfg.OnStateChange(StateClosed)
	}
	var err error
	if c.muxced {
		if c.onClose != nil {
			c.onClose()
		}
	} else {
		err = c.pc.Close()
	}
	c.wg.Wait()
	return err
}

func (c *Conn) now() time.Duration { return c.clock.Now().Sub(c.epoch) }

// reallocateLocked distributes the budget across streams by priority; the
// caller must hold mu (the controller invokes it via OnChange from paths
// that do). Streams are visited in sorted-id order within each priority so
// allocation is deterministic under a virtual clock.
func (c *Conn) reallocateLocked() {
	ids := make([]uint16, 0, len(c.streams))
	for id := range c.streams {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	remaining := c.ctrl.Budget()
	for p := core.PrioHighest; p <= core.PrioLowest; p++ {
		for _, id := range ids {
			st := c.streams[id]
			if st.spec.Priority != p {
				continue
			}
			alloc := st.spec.Rate
			if alloc > remaining {
				alloc = remaining
			}
			remaining -= alloc
			if alloc != st.allocated {
				st.allocated = alloc
				if st.spec.OnAllocate != nil {
					// Callback without the lock would be nicer, but the
					// callbacks are rate setters; document the constraint.
					st.spec.OnAllocate(alloc)
				}
			}
		}
	}
}

// Send submits one application datagram on a stream. It reports whether
// the datagram was admitted (false = shed by graceful degradation) and
// errors only on misuse or closed connections.
func (c *Conn) Send(streamID uint16, payload []byte) (bool, error) {
	return c.SendTraced(streamID, payload, 0, 0)
}

// SendTraced is Send with trace context attached: when traceID is
// nonzero the frame (and any retransmission of it) is encoded as wire
// v3 carrying the ids, so the receiver can stitch its span onto the
// sender's trace. SendTraced(id, p, 0, 0) is exactly Send(id, p).
func (c *Conn) SendTraced(streamID uint16, payload []byte, traceID, spanID uint64) (bool, error) {
	if len(payload) > maxPlain(c.sealer != nil) {
		return false, fmt.Errorf("%w (%d bytes)", ErrOversize, len(payload))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return false, ErrClosed
	}
	st, ok := c.streams[streamID]
	if !ok {
		return false, fmt.Errorf("wire: unknown stream %d", streamID)
	}
	now := c.clock.Now()
	dt := now.Sub(st.lastFill).Seconds()
	st.lastFill = now
	size := len(payload) + HeaderLen
	st.tokens += st.allocated / 8 * dt
	if burst := float64(4 * size); st.tokens > burst {
		st.tokens = burst
	}
	if st.spec.Priority.Discardable() {
		if st.tokens < float64(size) {
			st.shed++
			return false, nil
		}
		st.tokens -= float64(size)
	}
	seq := st.nextSeq
	st.nextSeq++
	// The private copy lives in a pooled buffer; ownership follows the
	// frame through the band queue and (for reliable classes) the
	// outstanding map — see pool.go.
	buf, pbuf := getPayloadBuf(payload)
	if st.spec.Class != core.ClassFullBestEffort {
		pp := getPending()
		pp.payload, pp.pbuf = buf, pbuf
		pp.class = st.spec.Class
		pp.queued = true
		pp.traceID, pp.spanID = traceID, spanID
		if st.spec.Deadline > 0 {
			pp.deadline = now.Add(st.spec.Deadline)
		}
		st.outstanding[seq] = pp
	}
	c.enqueueLocked(st, seq, buf, pbuf, traceID, spanID)
	return true, nil
}

func (c *Conn) enqueueLocked(st *wstream, seq int64, payload []byte, pbuf *[]byte, traceID, spanID uint64) {
	hdr := Header{
		Type:    TypeData,
		Stream:  st.spec.ID,
		Class:   uint8(st.spec.Class),
		Prio:    uint8(st.spec.Priority),
		Seq:     seq,
		TraceID: traceID,
		SpanID:  spanID,
	}
	band := st.spec.Priority.Band()
	c.bands[band].push(outFrame{hdr: hdr, payload: payload, pbuf: pbuf})
	c.schedulePaceLocked()
}

// schedulePaceLocked arms the pace timer if frames are queued and no fire
// is pending. The delay honours nextSend, so the budget gap survives idle
// periods between enqueues. The timer object is created once and re-armed
// in place afterwards, keeping the chain allocation-free.
func (c *Conn) schedulePaceLocked() {
	if c.paceArmed || c.closed || c.emptyBandsLocked() {
		return
	}
	d := c.nextSend.Sub(c.clock.Now())
	if d < 0 {
		d = 0
	}
	c.paceArmed = true
	if c.paceTimer == nil {
		c.paceTimer = c.clock.AfterFunc(d, c.paceFn)
	} else {
		c.paceTimer = vclock.Rearm(c.clock, c.paceTimer, d, c.paceFn)
	}
}

// paceFire drains up to MaxBurst frames from the highest non-empty bands
// at the controller budget into one transport write, then re-arms itself
// if more are queued. With the default MaxBurst of 1 (or a transport
// without batch support) it serializes exactly one frame per fire — the
// legacy pacing, timing-identical to every release before batching.
//
// Lock choreography: sendMu serializes concurrent fires and guards the
// batch scratch; mu covers the pop/stamp/re-arm and the finalize step,
// but is released around encode+write so the read path never waits on a
// system call.
func (c *Conn) paceFire() {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()

	c.mu.Lock()
	c.paceArmed = false
	if c.closed {
		c.mu.Unlock()
		return
	}
	burst := c.cfg.MaxBurst
	if c.bw == nil {
		burst = 1
	}
	pops := c.sendPops[:0]
	nowStamp := uint64(c.now().Microseconds())
	now := c.clock.Now()
	totalWire := 0
	for len(pops) < burst {
		var f outFrame
		found := false
		for b := range c.bands {
			if !c.bands[b].empty() {
				f = c.bands[b].pop()
				found = true
				break
			}
		}
		if !found {
			break
		}
		f.hdr.SendMicro = nowStamp
		var pp *wpending
		if st := c.streams[f.hdr.Stream]; st != nil {
			if p, ok := st.outstanding[f.hdr.Seq]; ok {
				p.queued = false
				p.lastSent = now
				p.sending = true
				pp = p
			}
			st.sent++
		}
		wireLen := headerLen(f.hdr) + len(f.payload)
		if c.sealer != nil {
			wireLen += sealedOver
		}
		totalWire += wireLen
		if r := c.cfg.Recorder; r != nil {
			// RecordAt reuses the pace fire's clock reading, so the hot
			// path pays no extra clock call per frame.
			if pp != nil && pp.retx > 0 {
				r.RecordAt(now, obs.EvFrameRetransmit, uint8(pp.retx), f.hdr.Stream, uint32(f.hdr.Seq), uint64(wireLen))
			} else {
				r.RecordAt(now, obs.EvFrameSend, 0, f.hdr.Stream, uint32(f.hdr.Seq), uint64(wireLen))
			}
		}
		pops = append(pops, popped{f: f, pp: pp})
	}
	c.sendPops = pops[:0] // keep the (possibly grown) scratch
	if len(pops) == 0 {
		c.mu.Unlock()
		return
	}
	peer := c.peer
	budget := c.ctrl.Budget()
	if budget < 1 {
		budget = 1
	}
	gap := time.Duration(float64(totalWire*8) / budget * float64(time.Second))
	c.nextSend = now.Add(gap)
	if !c.emptyBandsLocked() {
		c.paceArmed = true
		c.paceTimer = vclock.Rearm(c.clock, c.paceTimer, gap, c.paceFn)
	}
	c.mu.Unlock()

	sent := c.writePopped(pops, peer)

	c.mu.Lock()
	if peer != nil {
		c.SentFrames += int64(sent)
		if len(pops) > 1 {
			c.BatchWrites++
			c.BatchFrames += int64(sent)
		}
	}
	for i := range pops {
		p := &pops[i]
		if p.pp != nil {
			p.pp.sending = false
			if p.pp.orphaned {
				// Acked (or dropped) while we were writing: the record
				// already left the outstanding map, so the buffers come
				// home here.
				putPayloadBuf(p.pp.pbuf)
				putPending(p.pp)
			}
		} else if p.f.pbuf != nil {
			// Best-effort frame, or a reliable one whose record was
			// removed before the pop: the band reference was the last.
			putPayloadBuf(p.f.pbuf)
		}
		pops[i] = popped{}
	}
	c.mu.Unlock()
}

// writePopped encodes the popped frames into the per-connection frame
// buffers and hands them to the transport — one WriteToUDP for a single
// frame, one batch write for several. It reports how many frames the
// transport accepted; unsent tail frames on a short batch are accounted
// as loss, exactly like a dropped datagram.
func (c *Conn) writePopped(pops []popped, peer *net.UDPAddr) int {
	if peer == nil {
		return 0
	}
	dgs := c.sendDgs[:0]
	for i := range pops {
		fb := c.sendFrames[i]
		frame, err := c.encodeFrame((*fb)[:0], pops[i].f.hdr, pops[i].f.payload)
		if err != nil {
			continue
		}
		dgs = append(dgs, Datagram{B: frame, Addr: peer})
	}
	c.sendDgs = dgs[:0]
	switch {
	case len(dgs) == 0:
		return 0
	case len(dgs) == 1:
		if _, err := c.pc.WriteToUDP(dgs[0].B, peer); err != nil {
			return 0
		}
		return 1
	default:
		n, _ := c.bw.WriteBatch(dgs)
		return n
	}
}

func (c *Conn) emptyBandsLocked() bool {
	for b := range c.bands {
		if !c.bands[b].empty() {
			return false
		}
	}
	return true
}

// QueuedFrames reports how many frames are waiting in the pacing bands —
// the sender-side backlog a saturation workload watches to keep the pipe
// full without unbounded queue growth.
func (c *Conn) QueuedFrames() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for b := range c.bands {
		n += c.bands[b].len()
	}
	return n
}

// handleDatagram parses and processes one inbound datagram. It is the
// transport's delivery callback: on a real socket it runs on the reader
// goroutine, on a simulated transport it runs on the event loop.
func (c *Conn) handleDatagram(dgram []byte, raddr *net.UDPAddr) {
	hdr, payload, derr := DecodeFrame(dgram)
	if derr != nil {
		return // ignore malformed datagrams
	}
	if c.sealer != nil {
		// In-place open: the plaintext overwrites the ciphertext region of
		// the loaned delivery buffer, which handleDatagram is free to do —
		// the transport contract only loans the buffer for this call, and
		// every consumer below either finishes synchronously (acks, nacks,
		// pings) or copies (onDataLocked hands OnMessage its own copy).
		plain, oerr := c.sealer.openInPlace(hdr, payload)
		if oerr != nil {
			c.mu.Lock()
			c.AuthFailures++
			c.mu.Unlock()
			return
		}
		payload = plain
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	if c.peer == nil {
		c.peer = raddr
	}
	c.lastHeard = c.clock.Now()
	revived := false
	if c.state == StateDead {
		c.state = StateActive
		revived = true
	}
	switch hdr.Type {
	case TypeData:
		c.onDataLocked(hdr, payload)
	case TypeAck:
		c.onAckLocked(hdr)
	case TypeNack:
		c.onNackLocked(hdr, payload)
	case TypePing:
		pong := Header{Type: TypePong, SendMicro: hdr.SendMicro}
		c.writeFrame(pong, nil, c.peer) //nolint:errcheck // best-effort heartbeat
	case TypePong:
		// Liveness is the lastHeard update above; nothing else to do.
	}
	c.mu.Unlock()
	if revived && c.cfg.OnStateChange != nil {
		c.cfg.OnStateChange(StateActive)
	}
}

func (c *Conn) onDataLocked(hdr Header, payload []byte) {
	// Ack everything immediately, echoing the send timestamp.
	ack := Header{
		Type:      TypeAck,
		Stream:    hdr.Stream,
		Seq:       hdr.Seq,
		SendMicro: hdr.SendMicro,
	}
	c.writeFrame(ack, nil, c.peer) //nolint:errcheck // best-effort ack

	st, ok := c.streams[hdr.Stream]
	if !ok {
		// The peer sends on a stream we did not declare: accept with
		// default state so one-directional setups work.
		st = &wstream{
			spec:        StreamSpec{ID: hdr.Stream, Class: core.Class(hdr.Class), Priority: core.Priority(hdr.Prio)},
			outstanding: make(map[int64]*wpending),
			maxAcked:    -1,
			received:    make(map[int64]bool),
			nacked:      make(map[int64]int),
			lastFill:    c.clock.Now(),
		}
		c.streams[hdr.Stream] = st
	}
	if st.received[hdr.Seq] {
		st.dups++
		return
	}
	st.received[hdr.Seq] = true
	st.recvd++

	// Gap-driven NACK for reliable classes.
	if core.Class(hdr.Class) != core.ClassFullBestEffort && hdr.Seq > st.expected {
		missing := c.nackScratch[:0]
		for s := st.expected; s < hdr.Seq && len(missing) < 64; s++ {
			if !st.received[s] && st.nacked[s] < 2 {
				st.nacked[s]++
				missing = append(missing, s)
			}
		}
		c.nackScratch = missing[:0]
		if len(missing) > 0 {
			c.writeNackLocked(hdr.Stream, missing)
		}
	}
	if hdr.Seq >= st.expected {
		st.expected = hdr.Seq + 1
	}
	for s := range st.received {
		if s < st.expected-2048 {
			delete(st.received, s)
		}
	}
	if c.cfg.OnMessage != nil {
		msg := Message{
			Stream: hdr.Stream, Seq: hdr.Seq,
			Payload: append([]byte(nil), payload...), Peer: c.peer,
			TraceID: hdr.TraceID, SpanID: hdr.SpanID,
		}
		// Deliver without holding the lock.
		c.mu.Unlock()
		c.cfg.OnMessage(msg)
		c.mu.Lock()
	}
}

// writeNackLocked sends the gap list, chunked so no single NACK payload
// can exceed MaxPayload (an oversized datagram would be rejected by the
// peer's decoder and silently lose the whole signal). The payload is
// built in a pooled buffer.
func (c *Conn) writeNackLocked(stream uint16, missing []int64) {
	for len(missing) > 0 {
		n := len(missing)
		if n > MaxNackEntries {
			n = MaxNackEntries
		}
		pb := payloadPool.Get().(*[]byte)
		p := AppendNackPayload((*pb)[:0], missing[:n])
		nack := Header{Type: TypeNack, Stream: stream}
		c.writeFrame(nack, p, c.peer) //nolint:errcheck // best-effort nack
		putPayloadBuf(pb)
		missing = missing[n:]
	}
}

// removePendingLocked retires a reliable frame's record from the
// outstanding map and returns its buffers to the pools — unless a band
// entry or an in-flight write still references them, in which case the
// pace loop inherits the release (see pool.go for the full ownership
// rules).
func (c *Conn) removePendingLocked(st *wstream, seq int64, pp *wpending) {
	delete(st.outstanding, seq)
	if pp.queued {
		// A band entry still holds the payload and is now its sole owner;
		// paceFire releases it after the write when it finds no outstanding
		// record. The bookkeeping record itself is done with — recycle it.
		putPending(pp)
		return
	}
	if pp.sending {
		pp.orphaned = true // paceFire's finalize step releases both
		return
	}
	putPayloadBuf(pp.pbuf)
	putPending(pp)
}

func (c *Conn) onAckLocked(hdr Header) {
	now := c.now()
	rtt := now - time.Duration(hdr.SendMicro)*time.Microsecond
	if rtt > 0 {
		c.AckedRTT = rtt
		c.ctrl.OnAck(now, rtt)
	}
	st, ok := c.streams[hdr.Stream]
	if !ok {
		return
	}
	if pp, ok := st.outstanding[hdr.Seq]; ok {
		c.lossSampleLocked(0)
		c.cfg.Recorder.Record(obs.EvFrameAck, 0, hdr.Stream, uint32(hdr.Seq), uint64(rtt.Microseconds()))
		c.removePendingLocked(st, hdr.Seq, pp)
	}
	if hdr.Seq > st.maxAcked {
		st.maxAcked = hdr.Seq
	}
	// Collect loss candidates first and process them in sequence order so
	// retransmission order is independent of map iteration.
	const reorderSlack = 3
	var lost []int64
	for seq, pp := range st.outstanding {
		if seq < st.maxAcked-reorderSlack && c.lossEligibleLocked(pp) {
			lost = append(lost, seq)
		}
	}
	sort.Slice(lost, func(i, j int) bool { return lost[i] < lost[j] })
	for _, seq := range lost {
		if pp, ok := st.outstanding[seq]; ok {
			c.onLostLocked(st, seq, pp)
		}
	}
}

func (c *Conn) onNackLocked(hdr Header, payload []byte) {
	missing, err := DecodeNackPayload(payload)
	if err != nil {
		return
	}
	st, ok := c.streams[hdr.Stream]
	if !ok {
		return
	}
	for _, seq := range missing {
		if pp, ok := st.outstanding[seq]; ok && c.lossEligibleLocked(pp) {
			c.onLostLocked(st, seq, pp)
		}
	}
}

func (c *Conn) lossEligibleLocked(pp *wpending) bool {
	if pp.queued || pp.sending || pp.lastSent.IsZero() {
		return false
	}
	guard := c.ctrl.SRTT()
	if guard < 5*time.Millisecond {
		guard = 5 * time.Millisecond
	}
	return c.clock.Since(pp.lastSent) >= guard
}

// lossEWMAGain smooths the per-transmission loss indicator; 1/16 rides
// out single bursts while still tracking a Gilbert–Elliott bad state
// within a handful of frames.
const lossEWMAGain = 1.0 / 16

// lossSampleLocked folds one delivery verdict (0 delivered, 1 lost) into
// the smoothed loss rate.
func (c *Conn) lossSampleLocked(lost float64) {
	if !c.lossKnown {
		c.lossRate, c.lossKnown = lost, true
		return
	}
	c.lossRate += lossEWMAGain * (lost - c.lossRate)
}

func (c *Conn) onLostLocked(st *wstream, seq int64, pp *wpending) {
	c.lossSampleLocked(1)
	c.LostFrames++
	c.cfg.Recorder.Record(obs.EvFrameLost, uint8(pp.retx), st.spec.ID, uint32(seq), 0)
	c.ctrl.OnLoss(c.now(), !st.spec.Priority.Discardable())
	if pp.class == core.ClassLossRecovery {
		affordable := pp.deadline.IsZero() ||
			(c.ctrl.SRTT() > 0 && c.clock.Now().Add(c.ctrl.SRTT()/2).Before(pp.deadline))
		if !affordable || pp.retx >= c.cfg.RetxLimit {
			c.removePendingLocked(st, seq, pp)
			return
		}
	}
	if pp.class == core.ClassCritical && pp.retx >= c.cfg.RetxLimit*4 {
		c.removePendingLocked(st, seq, pp)
		return
	}
	pp.retx++
	pp.queued = true
	st.retx++
	c.enqueueLocked(st, seq, pp.payload, pp.pbuf, pp.traceID, pp.spanID)
}

// sweepFire retransmits reliable tail losses that produce no gap signal,
// then re-arms itself. Streams and sequences are visited in sorted order
// so the retransmission schedule is deterministic.
func (c *Conn) sweepFire() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	stale := 2 * c.ctrl.SRTT()
	if stale < 100*time.Millisecond {
		stale = 100 * time.Millisecond
	}
	ids := make([]uint16, 0, len(c.streams))
	for id := range c.streams {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		st := c.streams[id]
		seqs := make([]int64, 0, len(st.outstanding))
		for seq := range st.outstanding {
			seqs = append(seqs, seq)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		for _, seq := range seqs {
			pp, ok := st.outstanding[seq]
			if !ok {
				continue
			}
			if !pp.queued && !pp.sending && !pp.lastSent.IsZero() && c.clock.Since(pp.lastSent) >= stale {
				c.onLostLocked(st, seq, pp)
			}
		}
	}
	c.sweepTimer = vclock.Rearm(c.clock, c.sweepTimer, sweepInterval, c.sweepFn)
}

// StreamStats is a snapshot of one stream's counters.
type StreamStats struct {
	Sent, Shed, Retx, Received, Duplicates int64
	Allocated                              float64
}

// snapshot copies the stream counters field by field; every StreamStats
// produced anywhere in the package goes through this one helper so the
// snapshot cannot drift out of sync with the counter set. The caller
// must hold the owning Conn's mu.
func (st *wstream) snapshot() StreamStats {
	return StreamStats{
		Sent: st.sent, Shed: st.shed, Retx: st.retx,
		Received: st.recvd, Duplicates: st.dups,
		Allocated: st.allocated,
	}
}

// AuthFailureCount reports how many sealed frames failed authentication
// (corrupted or forged datagrams dropped before any protocol processing).
func (c *Conn) AuthFailureCount() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.AuthFailures
}

// BatchStats reports the batch-coalescing counters: how many transport
// writes carried more than one frame, and how many frames rode in them.
func (c *Conn) BatchStats() (writes, frames int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.BatchWrites, c.BatchFrames
}

// streamSeqs snapshots every sending stream's next sequence number, for
// session resumption.
func (c *Conn) streamSeqs() map[uint16]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[uint16]int64, len(c.streams))
	for id, st := range c.streams {
		out[id] = st.nextSeq
	}
	return out
}

// setStreamSeqs fast-forwards sending sequence numbers to at least the
// given values. A resumed session calls this before any Send so the peer's
// duplicate filter (which remembers the pre-outage sequence space) does
// not swallow fresh data.
func (c *Conn) setStreamSeqs(seqs map[uint16]int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, seq := range seqs {
		if st, ok := c.streams[id]; ok && seq > st.nextSeq {
			st.nextSeq = seq
		}
	}
}

// Stats returns a snapshot for a stream.
func (c *Conn) Stats(streamID uint16) StreamStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.streams[streamID]
	if !ok {
		return StreamStats{}
	}
	return st.snapshot()
}

// PublishMetrics registers the connection's counters with an
// observability registry as live read-through functions: every scrape
// sees exactly what Stats would return at that instant. Per-stream
// counters get a stream="<id>" label on top of the caller's labels.
// Streams learned from the peer after this call are not covered;
// call again to pick them up.
func (c *Conn) PublishMetrics(reg *obs.Registry, labels ...obs.Label) {
	if reg == nil {
		return
	}
	reg.CounterFunc("mar_wire_frames_sent_total", func() int64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.SentFrames
	}, labels...)
	reg.CounterFunc("mar_wire_auth_failures_total", c.AuthFailureCount, labels...)
	reg.CounterFunc("mar_wire_batch_writes_total", func() int64 {
		w, _ := c.BatchStats()
		return w
	}, labels...)
	reg.CounterFunc("mar_wire_batch_frames_total", func() int64 {
		_, f := c.BatchStats()
		return f
	}, labels...)
	reg.GaugeFunc("mar_wire_batch_frames_avg", func() float64 {
		w, f := c.BatchStats()
		if w == 0 {
			return 0
		}
		return float64(f) / float64(w)
	}, labels...)
	reg.GaugeFunc("mar_wire_srtt_seconds", func() float64 { return c.SRTT().Seconds() }, labels...)
	reg.GaugeFunc("mar_wire_loss_rate", c.LossRate, labels...)
	reg.CounterFunc("mar_wire_frames_lost_total", c.LostFrameCount, labels...)
	reg.GaugeFunc("mar_wire_budget_bps", c.Budget, labels...)

	c.mu.Lock()
	ids := make([]uint16, 0, len(c.streams))
	for id := range c.streams {
		ids = append(ids, id)
	}
	c.mu.Unlock()
	for _, id := range ids {
		id := id
		ls := append(append([]obs.Label(nil), labels...), obs.L("stream", strconv.Itoa(int(id))))
		reg.CounterFunc("mar_wire_stream_sent_total", func() int64 { return c.Stats(id).Sent }, ls...)
		reg.CounterFunc("mar_wire_stream_shed_total", func() int64 { return c.Stats(id).Shed }, ls...)
		reg.CounterFunc("mar_wire_stream_retx_total", func() int64 { return c.Stats(id).Retx }, ls...)
		reg.CounterFunc("mar_wire_stream_received_total", func() int64 { return c.Stats(id).Received }, ls...)
		reg.CounterFunc("mar_wire_stream_duplicates_total", func() int64 { return c.Stats(id).Duplicates }, ls...)
		reg.GaugeFunc("mar_wire_stream_allocated_bps", func() float64 { return c.Stats(id).Allocated }, ls...)
	}
}
