package wire

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"sync"
	"time"

	"marnet/internal/core"
	"marnet/internal/obs"
	"marnet/internal/vclock"
)

// ErrClosed is returned by operations on a closed Conn.
var ErrClosed = errors.New("wire: connection closed")

// StreamSpec declares one substream of a connection. Class/priority
// semantics are identical to package core.
type StreamSpec struct {
	ID       uint16
	Class    core.Class
	Priority core.Priority
	Rate     float64 // desired bits/s
	Deadline time.Duration
	// OnAllocate receives QoS feedback (allocated bits/s).
	OnAllocate func(rate float64)
}

// Message is one received application datagram.
type Message struct {
	Stream  uint16
	Seq     int64
	Payload []byte
	// Peer is the remote address the datagram came from (useful behind a
	// Mux, where one handler may serve many peers).
	Peer *net.UDPAddr
	// TraceID/SpanID carry the sender's trace context when the frame was
	// traced (wire v3); both are zero for untraced frames. SpanID names
	// the sender's span — the parent of any span the receiver starts.
	TraceID uint64
	SpanID  uint64
}

// State is the liveness of a connection's peer as judged by keepalive.
type State int

// Connection states.
const (
	// StateActive: frames (or heartbeat replies) are arriving.
	StateActive State = iota
	// StateDead: KeepaliveMiss probe intervals elapsed with nothing heard.
	StateDead
	// StateClosed: Close was called locally.
	StateClosed
)

// String renders the state for diagnostics.
func (s State) String() string {
	switch s {
	case StateActive:
		return "active"
	case StateDead:
		return "dead"
	case StateClosed:
		return "closed"
	}
	return "?"
}

// Config configures a Conn.
type Config struct {
	Streams     []StreamSpec
	StartBudget float64 // bits/s, default 1 Mb/s
	RetxLimit   int     // default 3
	// OnMessage is invoked from the read loop for every newly received
	// data frame (duplicates are filtered). The payload is owned by the
	// callee.
	OnMessage func(Message)
	// Key, when set (16/24/32 bytes), seals every payload with AES-GCM and
	// authenticates headers (Section VI-G). Both endpoints must share it.
	Key []byte
	// Keepalive, when > 0, sends a heartbeat ping every interval and
	// declares the peer dead after KeepaliveMiss unanswered intervals.
	// Peers answer pings automatically whether or not they enable
	// keepalive themselves.
	Keepalive time.Duration
	// KeepaliveMiss is how many silent probe intervals mean death
	// (default 3).
	KeepaliveMiss int
	// OnStateChange observes liveness transitions (Active↔Dead, and Closed
	// on local close). It is called without internal locks held; it must
	// not call back into blocking Conn methods from the same goroutine it
	// wants to keep serviced.
	OnStateChange func(State)
	// Clock supplies time and timer scheduling for every protocol timer
	// (pacing gaps, the retransmit sweep, keepalive). Nil means the system
	// clock; internal/marsim injects a virtual clock so the identical
	// protocol code runs on deterministic simulated time.
	Clock vclock.Clock
}

type wpending struct {
	payload  []byte
	class    core.Class
	deadline time.Time
	lastSent time.Time
	retx     int
	queued   bool
	// Trace context rides with the pending record so retransmits carry
	// the same ids as the original transmission.
	traceID uint64
	spanID  uint64
}

type wstream struct {
	spec      StreamSpec
	nextSeq   int64
	allocated float64
	tokens    float64
	lastFill  time.Time

	outstanding map[int64]*wpending
	maxAcked    int64

	// receive side
	expected int64
	received map[int64]bool
	nacked   map[int64]int

	// Stats
	sent  int64
	shed  int64
	retx  int64
	recvd int64
	dups  int64
}

type outFrame struct {
	hdr     Header
	payload []byte
}

// sweepInterval is the retransmit sweep period (tail-loss probe cadence).
const sweepInterval = 50 * time.Millisecond

// Conn is an ARTP endpoint over a datagram transport. Both sides of a
// connection are symmetric: each may declare sending streams and receive
// the peer's. All protocol timers (pacing, sweep, keepalive) run as
// AfterFunc chains on the injected clock, so a Conn over a synchronous
// simulated transport spawns no goroutines at all.
type Conn struct {
	pc    PacketConn
	clock vclock.Clock
	epoch time.Time
	cfg   Config

	mu        sync.Mutex
	peer      *net.UDPAddr
	ctrl      *core.Controller
	streams   map[uint16]*wstream
	bands     [4][]outFrame
	closed    bool
	done      chan struct{}
	sealer    *sealer // nil when Config.Key is unset
	state     State
	lastHeard time.Time // last authenticated frame from the peer

	// Timer chains (guarded by mu). paceTimer is non-nil while a pace fire
	// is scheduled; nextSend is the earliest instant the next frame may be
	// serialized, enforcing the budget gap across idle periods.
	paceTimer  vclock.Timer
	nextSend   time.Time
	sweepTimer vclock.Timer
	kaTimer    vclock.Timer

	// Mux mode: datagrams arrive via the mux's shared transport (through
	// recvCh and a pump goroutine on asynchronous transports, direct
	// dispatch on synchronous ones), writes go through the shared
	// transport, and Close must not close it.
	recvCh  chan []byte
	muxced  bool
	onClose func()

	wg sync.WaitGroup

	// Stats (guarded by mu).
	SentFrames   int64
	AckedRTT     time.Duration
	AuthFailures int64
}

// Dial connects to a server and starts the protocol machinery.
func Dial(server string, cfg Config) (*Conn, error) {
	raddr, err := net.ResolveUDPAddr("udp", server)
	if err != nil {
		return nil, fmt.Errorf("wire: resolve %q: %w", server, err)
	}
	sock, err := net.ListenUDP("udp", nil)
	if err != nil {
		return nil, fmt.Errorf("wire: listen: %w", err)
	}
	return newConn(newUDPPacketConn(sock), raddr, cfg)
}

// DialVia connects to peer over a caller-supplied transport (e.g. a
// simulated network endpoint from internal/marsim). The Conn owns the
// transport and closes it on Close.
func DialVia(pc PacketConn, peer *net.UDPAddr, cfg Config) (*Conn, error) {
	return newConn(pc, peer, cfg)
}

// Listen binds a server endpoint; the peer address is learned from the
// first arriving frame.
func Listen(addr string, cfg Config) (*Conn, error) {
	laddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: resolve %q: %w", addr, err)
	}
	sock, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("wire: listen: %w", err)
	}
	return newConn(newUDPPacketConn(sock), nil, cfg)
}

// ListenVia is Listen over a caller-supplied transport: the peer address is
// learned from the first arriving frame.
func ListenVia(pc PacketConn, cfg Config) (*Conn, error) {
	return newConn(pc, nil, cfg)
}

func newConn(pc PacketConn, peer *net.UDPAddr, cfg Config) (*Conn, error) {
	var sl *sealer
	if cfg.Key != nil {
		var err error
		if sl, err = newSealer(cfg.Key); err != nil {
			pc.Close()
			return nil, err
		}
	}
	if cfg.StartBudget <= 0 {
		cfg.StartBudget = 1e6
	}
	if cfg.RetxLimit <= 0 {
		cfg.RetxLimit = 3
	}
	c := newConnCommon(pc, peer, cfg, sl)
	c.start()
	return c, nil
}

// newConnCommon builds the connection state without starting delivery or
// timers.
func newConnCommon(pc PacketConn, peer *net.UDPAddr, cfg Config, sl *sealer) *Conn {
	if cfg.KeepaliveMiss <= 0 {
		cfg.KeepaliveMiss = 3
	}
	clock := vclock.OrSystem(cfg.Clock)
	now := clock.Now()
	c := &Conn{
		pc:        pc,
		clock:     clock,
		epoch:     now,
		cfg:       cfg,
		peer:      peer,
		ctrl:      core.NewController(cfg.StartBudget),
		streams:   make(map[uint16]*wstream, len(cfg.Streams)),
		done:      make(chan struct{}),
		sealer:    sl,
		state:     StateActive,
		lastHeard: now,
		nextSend:  now,
	}
	for _, spec := range cfg.Streams {
		c.streams[spec.ID] = &wstream{
			spec:        spec,
			tokens:      4 * 1500, // initial burst credit
			lastFill:    now,
			outstanding: make(map[int64]*wpending),
			maxAcked:    -1,
			received:    make(map[int64]bool),
			nacked:      make(map[int64]int),
		}
	}
	c.ctrl.SetOnChange(c.reallocateLocked)
	c.reallocateLocked()
	return c
}

// start begins inbound delivery and arms the periodic timer chains.
func (c *Conn) start() {
	if !c.muxced {
		c.pc.Start(c.handleDatagram)
	} else if !c.pc.Synchronous() {
		c.wg.Add(1)
		go c.muxPump()
	}
	c.mu.Lock()
	c.sweepTimer = c.clock.AfterFunc(sweepInterval, c.sweepFire)
	if c.cfg.Keepalive > 0 {
		c.kaTimer = c.clock.AfterFunc(c.cfg.Keepalive, c.keepaliveFire)
	}
	c.mu.Unlock()
}

// muxPump feeds datagrams queued by an asynchronous mux into the protocol;
// synchronous (simulated) transports dispatch directly instead.
func (c *Conn) muxPump() {
	defer c.wg.Done()
	for {
		select {
		case dgram := <-c.recvCh:
			c.handleDatagram(dgram, c.peer)
		case <-c.done:
			return
		}
	}
}

// keepaliveFire probes the peer every Keepalive interval and flips the
// connection state when the silence threshold is crossed (Section VI:
// dead-peer detection is what lets the session layer fail over instead of
// stalling on a blackholed path).
func (c *Conn) keepaliveFire() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	interval := c.cfg.Keepalive
	deadAfter := time.Duration(c.cfg.KeepaliveMiss) * interval
	peer := c.peer
	silent := c.clock.Now().Sub(c.lastHeard)
	notify := State(-1)
	if c.state == StateActive && silent >= deadAfter {
		c.state = StateDead
		notify = StateDead
	}
	c.kaTimer = c.clock.AfterFunc(interval, c.keepaliveFire)
	c.mu.Unlock()
	if notify != State(-1) && c.cfg.OnStateChange != nil {
		c.cfg.OnStateChange(notify)
	}
	if peer != nil {
		ping := Header{Type: TypePing, SendMicro: uint64(c.now().Microseconds())}
		c.writeFrame(ping, nil, peer) //nolint:errcheck // best-effort probe
	}
}

// State reports the current liveness judgement.
func (c *Conn) State() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// LastActivity reports when the last authenticated frame arrived from the
// peer (connection creation time if none has).
func (c *Conn) LastActivity() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastHeard
}

// writeFrame seals (when a key is configured) and transmits one frame to
// the peer. It takes no locks itself; datagram writes are safe to issue
// concurrently.
func (c *Conn) writeFrame(h Header, payload []byte, peer *net.UDPAddr) error {
	if peer == nil {
		return nil
	}
	if c.sealer != nil {
		sealed, err := c.sealer.seal(h, payload)
		if err != nil {
			return err
		}
		payload = sealed
	}
	frame, err := AppendFrame(nil, h, payload)
	if err != nil {
		return err
	}
	_, err = c.pc.WriteToUDP(frame, peer)
	return err
}

// LocalAddr returns the bound UDP address.
func (c *Conn) LocalAddr() *net.UDPAddr {
	addr, _ := c.pc.LocalAddr().(*net.UDPAddr)
	return addr
}

// Budget reports the controller's current sending budget in bits/s.
func (c *Conn) Budget() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ctrl.Budget()
}

// SRTT reports the controller's smoothed round-trip estimate (zero before
// the first acknowledged exchange). Deadline-aware servers use half of it
// as the one-way return-trip charge when anchoring propagated budgets.
func (c *Conn) SRTT() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ctrl.SRTT()
}

// Close stops all timers and closes the transport.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.state = StateClosed
	close(c.done)
	for _, t := range []vclock.Timer{c.paceTimer, c.sweepTimer, c.kaTimer} {
		if t != nil {
			t.Stop()
		}
	}
	c.paceTimer, c.sweepTimer, c.kaTimer = nil, nil, nil
	c.mu.Unlock()
	if c.cfg.OnStateChange != nil {
		c.cfg.OnStateChange(StateClosed)
	}
	var err error
	if c.muxced {
		if c.onClose != nil {
			c.onClose()
		}
	} else {
		err = c.pc.Close()
	}
	c.wg.Wait()
	return err
}

func (c *Conn) now() time.Duration { return c.clock.Now().Sub(c.epoch) }

// reallocateLocked distributes the budget across streams by priority; the
// caller must hold mu (the controller invokes it via OnChange from paths
// that do). Streams are visited in sorted-id order within each priority so
// allocation is deterministic under a virtual clock.
func (c *Conn) reallocateLocked() {
	ids := make([]uint16, 0, len(c.streams))
	for id := range c.streams {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	remaining := c.ctrl.Budget()
	for p := core.PrioHighest; p <= core.PrioLowest; p++ {
		for _, id := range ids {
			st := c.streams[id]
			if st.spec.Priority != p {
				continue
			}
			alloc := st.spec.Rate
			if alloc > remaining {
				alloc = remaining
			}
			remaining -= alloc
			if alloc != st.allocated {
				st.allocated = alloc
				if st.spec.OnAllocate != nil {
					// Callback without the lock would be nicer, but the
					// callbacks are rate setters; document the constraint.
					st.spec.OnAllocate(alloc)
				}
			}
		}
	}
}

// Send submits one application datagram on a stream. It reports whether
// the datagram was admitted (false = shed by graceful degradation) and
// errors only on misuse or closed connections.
func (c *Conn) Send(streamID uint16, payload []byte) (bool, error) {
	return c.SendTraced(streamID, payload, 0, 0)
}

// SendTraced is Send with trace context attached: when traceID is
// nonzero the frame (and any retransmission of it) is encoded as wire
// v3 carrying the ids, so the receiver can stitch its span onto the
// sender's trace. SendTraced(id, p, 0, 0) is exactly Send(id, p).
func (c *Conn) SendTraced(streamID uint16, payload []byte, traceID, spanID uint64) (bool, error) {
	if len(payload) > maxPlain(c.sealer != nil) {
		return false, fmt.Errorf("%w (%d bytes)", ErrOversize, len(payload))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return false, ErrClosed
	}
	st, ok := c.streams[streamID]
	if !ok {
		return false, fmt.Errorf("wire: unknown stream %d", streamID)
	}
	now := c.clock.Now()
	dt := now.Sub(st.lastFill).Seconds()
	st.lastFill = now
	size := len(payload) + HeaderLen
	st.tokens += st.allocated / 8 * dt
	if burst := float64(4 * size); st.tokens > burst {
		st.tokens = burst
	}
	if st.spec.Priority.Discardable() {
		if st.tokens < float64(size) {
			st.shed++
			return false, nil
		}
		st.tokens -= float64(size)
	}
	seq := st.nextSeq
	st.nextSeq++
	buf := append([]byte(nil), payload...)
	if st.spec.Class != core.ClassFullBestEffort {
		pp := &wpending{payload: buf, class: st.spec.Class, queued: true, traceID: traceID, spanID: spanID}
		if st.spec.Deadline > 0 {
			pp.deadline = now.Add(st.spec.Deadline)
		}
		st.outstanding[seq] = pp
	}
	c.enqueueLocked(st, seq, buf, traceID, spanID)
	return true, nil
}

func (c *Conn) enqueueLocked(st *wstream, seq int64, payload []byte, traceID, spanID uint64) {
	hdr := Header{
		Type:    TypeData,
		Stream:  st.spec.ID,
		Class:   uint8(st.spec.Class),
		Prio:    uint8(st.spec.Priority),
		Seq:     seq,
		TraceID: traceID,
		SpanID:  spanID,
	}
	band := st.spec.Priority.Band()
	c.bands[band] = append(c.bands[band], outFrame{hdr: hdr, payload: payload})
	c.schedulePaceLocked()
}

// schedulePaceLocked arms the pace timer if frames are queued and no fire
// is pending. The delay honours nextSend, so the budget gap survives idle
// periods between enqueues.
func (c *Conn) schedulePaceLocked() {
	if c.paceTimer != nil || c.closed || c.emptyBandsLocked() {
		return
	}
	d := c.nextSend.Sub(c.clock.Now())
	if d < 0 {
		d = 0
	}
	c.paceTimer = c.clock.AfterFunc(d, c.paceFire)
}

// paceFire serializes exactly one frame from the highest non-empty band at
// the controller budget, then re-arms itself if more are queued.
func (c *Conn) paceFire() {
	c.mu.Lock()
	c.paceTimer = nil
	if c.closed {
		c.mu.Unlock()
		return
	}
	var f outFrame
	found := false
	for b := range c.bands {
		if len(c.bands[b]) > 0 {
			f = c.bands[b][0]
			c.bands[b] = c.bands[b][1:]
			found = true
			break
		}
	}
	if !found {
		c.mu.Unlock()
		return
	}
	f.hdr.SendMicro = uint64(c.now().Microseconds())
	if st := c.streams[f.hdr.Stream]; st != nil {
		if pp, ok := st.outstanding[f.hdr.Seq]; ok {
			pp.queued = false
			pp.lastSent = c.clock.Now()
		}
		st.sent++
	}
	peer := c.peer
	budget := c.ctrl.Budget()
	if budget < 1 {
		budget = 1
	}
	wireLen := HeaderLen + len(f.payload)
	if c.sealer != nil {
		wireLen += sealedOver
	}
	gap := time.Duration(float64(wireLen*8) / budget * float64(time.Second))
	c.nextSend = c.clock.Now().Add(gap)
	if !c.emptyBandsLocked() {
		c.paceTimer = c.clock.AfterFunc(gap, c.paceFire)
	}
	c.mu.Unlock()

	if err := c.writeFrame(f.hdr, f.payload, peer); err == nil && peer != nil {
		c.mu.Lock()
		c.SentFrames++
		c.mu.Unlock()
	}
}

func (c *Conn) emptyBandsLocked() bool {
	for b := range c.bands {
		if len(c.bands[b]) > 0 {
			return false
		}
	}
	return true
}

// handleDatagram parses and processes one inbound datagram. It is the
// transport's delivery callback: on a real socket it runs on the reader
// goroutine, on a simulated transport it runs on the event loop.
func (c *Conn) handleDatagram(dgram []byte, raddr *net.UDPAddr) {
	hdr, payload, derr := DecodeFrame(dgram)
	if derr != nil {
		return // ignore malformed datagrams
	}
	if c.sealer != nil {
		plain, oerr := c.sealer.open(hdr, payload)
		if oerr != nil {
			c.mu.Lock()
			c.AuthFailures++
			c.mu.Unlock()
			return
		}
		payload = plain
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	if c.peer == nil {
		c.peer = raddr
	}
	c.lastHeard = c.clock.Now()
	revived := false
	if c.state == StateDead {
		c.state = StateActive
		revived = true
	}
	switch hdr.Type {
	case TypeData:
		c.onDataLocked(hdr, payload)
	case TypeAck:
		c.onAckLocked(hdr)
	case TypeNack:
		c.onNackLocked(hdr, payload)
	case TypePing:
		pong := Header{Type: TypePong, SendMicro: hdr.SendMicro}
		c.writeFrame(pong, nil, c.peer) //nolint:errcheck // best-effort heartbeat
	case TypePong:
		// Liveness is the lastHeard update above; nothing else to do.
	}
	c.mu.Unlock()
	if revived && c.cfg.OnStateChange != nil {
		c.cfg.OnStateChange(StateActive)
	}
}

func (c *Conn) onDataLocked(hdr Header, payload []byte) {
	// Ack everything immediately, echoing the send timestamp.
	ack := Header{
		Type:      TypeAck,
		Stream:    hdr.Stream,
		Seq:       hdr.Seq,
		SendMicro: hdr.SendMicro,
	}
	c.writeFrame(ack, nil, c.peer) //nolint:errcheck // best-effort ack

	st, ok := c.streams[hdr.Stream]
	if !ok {
		// The peer sends on a stream we did not declare: accept with
		// default state so one-directional setups work.
		st = &wstream{
			spec:        StreamSpec{ID: hdr.Stream, Class: core.Class(hdr.Class), Priority: core.Priority(hdr.Prio)},
			outstanding: make(map[int64]*wpending),
			maxAcked:    -1,
			received:    make(map[int64]bool),
			nacked:      make(map[int64]int),
			lastFill:    c.clock.Now(),
		}
		c.streams[hdr.Stream] = st
	}
	if st.received[hdr.Seq] {
		st.dups++
		return
	}
	st.received[hdr.Seq] = true
	st.recvd++

	// Gap-driven NACK for reliable classes.
	if core.Class(hdr.Class) != core.ClassFullBestEffort && hdr.Seq > st.expected {
		var missing []int64
		for s := st.expected; s < hdr.Seq && len(missing) < 64; s++ {
			if !st.received[s] && st.nacked[s] < 2 {
				st.nacked[s]++
				missing = append(missing, s)
			}
		}
		if len(missing) > 0 {
			nack := Header{Type: TypeNack, Stream: hdr.Stream}
			c.writeFrame(nack, EncodeNackPayload(missing), c.peer) //nolint:errcheck // best-effort nack
		}
	}
	if hdr.Seq >= st.expected {
		st.expected = hdr.Seq + 1
	}
	for s := range st.received {
		if s < st.expected-2048 {
			delete(st.received, s)
		}
	}
	if c.cfg.OnMessage != nil {
		msg := Message{
			Stream: hdr.Stream, Seq: hdr.Seq,
			Payload: append([]byte(nil), payload...), Peer: c.peer,
			TraceID: hdr.TraceID, SpanID: hdr.SpanID,
		}
		// Deliver without holding the lock.
		c.mu.Unlock()
		c.cfg.OnMessage(msg)
		c.mu.Lock()
	}
}

func (c *Conn) onAckLocked(hdr Header) {
	now := c.now()
	rtt := now - time.Duration(hdr.SendMicro)*time.Microsecond
	if rtt > 0 {
		c.AckedRTT = rtt
		c.ctrl.OnAck(now, rtt)
	}
	st, ok := c.streams[hdr.Stream]
	if !ok {
		return
	}
	delete(st.outstanding, hdr.Seq)
	if hdr.Seq > st.maxAcked {
		st.maxAcked = hdr.Seq
	}
	// Collect loss candidates first and process them in sequence order so
	// retransmission order is independent of map iteration.
	const reorderSlack = 3
	var lost []int64
	for seq, pp := range st.outstanding {
		if seq < st.maxAcked-reorderSlack && c.lossEligibleLocked(pp) {
			lost = append(lost, seq)
		}
	}
	sort.Slice(lost, func(i, j int) bool { return lost[i] < lost[j] })
	for _, seq := range lost {
		if pp, ok := st.outstanding[seq]; ok {
			c.onLostLocked(st, seq, pp)
		}
	}
}

func (c *Conn) onNackLocked(hdr Header, payload []byte) {
	missing, err := DecodeNackPayload(payload)
	if err != nil {
		return
	}
	st, ok := c.streams[hdr.Stream]
	if !ok {
		return
	}
	for _, seq := range missing {
		if pp, ok := st.outstanding[seq]; ok && c.lossEligibleLocked(pp) {
			c.onLostLocked(st, seq, pp)
		}
	}
}

func (c *Conn) lossEligibleLocked(pp *wpending) bool {
	if pp.queued || pp.lastSent.IsZero() {
		return false
	}
	guard := c.ctrl.SRTT()
	if guard < 5*time.Millisecond {
		guard = 5 * time.Millisecond
	}
	return c.clock.Since(pp.lastSent) >= guard
}

func (c *Conn) onLostLocked(st *wstream, seq int64, pp *wpending) {
	c.ctrl.OnLoss(c.now(), !st.spec.Priority.Discardable())
	if pp.class == core.ClassLossRecovery {
		affordable := pp.deadline.IsZero() ||
			(c.ctrl.SRTT() > 0 && c.clock.Now().Add(c.ctrl.SRTT()/2).Before(pp.deadline))
		if !affordable || pp.retx >= c.cfg.RetxLimit {
			delete(st.outstanding, seq)
			return
		}
	}
	if pp.class == core.ClassCritical && pp.retx >= c.cfg.RetxLimit*4 {
		delete(st.outstanding, seq)
		return
	}
	pp.retx++
	pp.queued = true
	st.retx++
	c.enqueueLocked(st, seq, pp.payload, pp.traceID, pp.spanID)
}

// sweepFire retransmits reliable tail losses that produce no gap signal,
// then re-arms itself. Streams and sequences are visited in sorted order
// so the retransmission schedule is deterministic.
func (c *Conn) sweepFire() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	stale := 2 * c.ctrl.SRTT()
	if stale < 100*time.Millisecond {
		stale = 100 * time.Millisecond
	}
	ids := make([]uint16, 0, len(c.streams))
	for id := range c.streams {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		st := c.streams[id]
		seqs := make([]int64, 0, len(st.outstanding))
		for seq := range st.outstanding {
			seqs = append(seqs, seq)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		for _, seq := range seqs {
			pp, ok := st.outstanding[seq]
			if !ok {
				continue
			}
			if !pp.queued && !pp.lastSent.IsZero() && c.clock.Since(pp.lastSent) >= stale {
				c.onLostLocked(st, seq, pp)
			}
		}
	}
	c.sweepTimer = c.clock.AfterFunc(sweepInterval, c.sweepFire)
}

// StreamStats is a snapshot of one stream's counters.
type StreamStats struct {
	Sent, Shed, Retx, Received, Duplicates int64
	Allocated                              float64
}

// snapshot copies the stream counters field by field; every StreamStats
// produced anywhere in the package goes through this one helper so the
// snapshot cannot drift out of sync with the counter set. The caller
// must hold the owning Conn's mu.
func (st *wstream) snapshot() StreamStats {
	return StreamStats{
		Sent: st.sent, Shed: st.shed, Retx: st.retx,
		Received: st.recvd, Duplicates: st.dups,
		Allocated: st.allocated,
	}
}

// AuthFailureCount reports how many sealed frames failed authentication
// (corrupted or forged datagrams dropped before any protocol processing).
func (c *Conn) AuthFailureCount() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.AuthFailures
}

// streamSeqs snapshots every sending stream's next sequence number, for
// session resumption.
func (c *Conn) streamSeqs() map[uint16]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[uint16]int64, len(c.streams))
	for id, st := range c.streams {
		out[id] = st.nextSeq
	}
	return out
}

// setStreamSeqs fast-forwards sending sequence numbers to at least the
// given values. A resumed session calls this before any Send so the peer's
// duplicate filter (which remembers the pre-outage sequence space) does
// not swallow fresh data.
func (c *Conn) setStreamSeqs(seqs map[uint16]int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, seq := range seqs {
		if st, ok := c.streams[id]; ok && seq > st.nextSeq {
			st.nextSeq = seq
		}
	}
}

// Stats returns a snapshot for a stream.
func (c *Conn) Stats(streamID uint16) StreamStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.streams[streamID]
	if !ok {
		return StreamStats{}
	}
	return st.snapshot()
}

// PublishMetrics registers the connection's counters with an
// observability registry as live read-through functions: every scrape
// sees exactly what Stats would return at that instant. Per-stream
// counters get a stream="<id>" label on top of the caller's labels.
// Streams learned from the peer after this call are not covered;
// call again to pick them up.
func (c *Conn) PublishMetrics(reg *obs.Registry, labels ...obs.Label) {
	if reg == nil {
		return
	}
	reg.CounterFunc("mar_wire_frames_sent_total", func() int64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.SentFrames
	}, labels...)
	reg.CounterFunc("mar_wire_auth_failures_total", c.AuthFailureCount, labels...)
	reg.GaugeFunc("mar_wire_srtt_seconds", func() float64 { return c.SRTT().Seconds() }, labels...)
	reg.GaugeFunc("mar_wire_budget_bps", c.Budget, labels...)

	c.mu.Lock()
	ids := make([]uint16, 0, len(c.streams))
	for id := range c.streams {
		ids = append(ids, id)
	}
	c.mu.Unlock()
	for _, id := range ids {
		id := id
		ls := append(append([]obs.Label(nil), labels...), obs.L("stream", strconv.Itoa(int(id))))
		reg.CounterFunc("mar_wire_stream_sent_total", func() int64 { return c.Stats(id).Sent }, ls...)
		reg.CounterFunc("mar_wire_stream_shed_total", func() int64 { return c.Stats(id).Shed }, ls...)
		reg.CounterFunc("mar_wire_stream_retx_total", func() int64 { return c.Stats(id).Retx }, ls...)
		reg.CounterFunc("mar_wire_stream_received_total", func() int64 { return c.Stats(id).Received }, ls...)
		reg.CounterFunc("mar_wire_stream_duplicates_total", func() int64 { return c.Stats(id).Duplicates }, ls...)
		reg.GaugeFunc("mar_wire_stream_allocated_bps", func() float64 { return c.Stats(id).Allocated }, ls...)
	}
}
