//go:build !(linux && (amd64 || arm64))

package wire

import "net"

// batchIO is the mmsg-based kernel fast path; platforms without audited
// sendmmsg/recvmmsg support have none, and the transport falls back to one
// system call per datagram (see packetconn.go).
type batchIO struct{}

func newBatchIO(*net.UDPConn) *batchIO { return nil }

func (*batchIO) writeBatch(dgs []Datagram) (int, error) { return 0, nil }

func (*batchIO) readLoop(func(pkt []byte, from *net.UDPAddr)) {}
