package wire

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"marnet/internal/core"
)

func TestSealerRoundTrip(t *testing.T) {
	s, err := newSealer(bytes.Repeat([]byte{7}, 16))
	if err != nil {
		t.Fatal(err)
	}
	h := Header{Type: TypeData, Stream: 3, Seq: 42, SendMicro: 99}
	plain := []byte("the quick brown fox")
	sealed, err := s.seal(h, plain)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(sealed, plain) {
		t.Fatal("sealed frame contains plaintext")
	}
	got, err := s.open(h, sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, plain) {
		t.Fatalf("got %q", got)
	}
}

func TestSealerRejectsTamperedHeaderAndPayload(t *testing.T) {
	s, _ := newSealer(bytes.Repeat([]byte{7}, 32))
	h := Header{Type: TypeData, Stream: 3, Seq: 42}
	sealed, _ := s.seal(h, []byte("payload"))

	// Flip a ciphertext bit.
	bad := append([]byte(nil), sealed...)
	bad[len(bad)-1] ^= 1
	if _, err := s.open(h, bad); !errors.Is(err, ErrAuthFailed) {
		t.Errorf("tampered payload: err = %v", err)
	}
	// Splice onto a different header (seq changed).
	h2 := h
	h2.Seq = 43
	if _, err := s.open(h2, sealed); !errors.Is(err, ErrAuthFailed) {
		t.Errorf("spliced header: err = %v", err)
	}
	// Truncated.
	if _, err := s.open(h, sealed[:10]); !errors.Is(err, ErrAuthFailed) {
		t.Errorf("truncated: err = %v", err)
	}
}

func TestSealerNoncesAreFresh(t *testing.T) {
	s, _ := newSealer(bytes.Repeat([]byte{1}, 16))
	h := Header{Type: TypeData, Stream: 1, Seq: 1}
	a, _ := s.seal(h, []byte("x"))
	b, _ := s.seal(h, []byte("x"))
	if bytes.Equal(a, b) {
		t.Fatal("sealing the same frame twice produced identical output (nonce reuse)")
	}
}

func TestSealerNoncesRandomlySeeded(t *testing.T) {
	// Sealers sharing one key (one per Conn, one per mux peer) must start
	// at independent random points of the 96-bit nonce space — counters
	// that all start at zero would reuse nonces under the same key as soon
	// as two instances collide on a prefix.
	a, _ := newSealer(bytes.Repeat([]byte{1}, 16))
	b, _ := newSealer(bytes.Repeat([]byte{1}, 16))
	var na, nb [nonceLen]byte
	a.putNonce(na[:])
	b.putNonce(nb[:])
	if bytes.Equal(na[:], nb[:]) {
		t.Fatal("two sealers produced the same first nonce")
	}
	if a.nonceLo.Load() == 1 || b.nonceLo.Load() == 1 {
		t.Fatal("nonce counter started at zero instead of a random seed")
	}
}

func TestSealerNonceCarryAcrossLowWordWrap(t *testing.T) {
	s, _ := newSealer(bytes.Repeat([]byte{3}, 16))
	s.nonceLo.Store(^uint64(0) - 1) // two increments from the wrap
	hi := s.nonceHi.Load()
	seen := map[[nonceLen]byte]bool{}
	var n [nonceLen]byte
	for i := 0; i < 4; i++ {
		s.putNonce(n[:])
		if seen[n] {
			t.Fatalf("nonce repeated across the low-word wrap: %x", n)
		}
		seen[n] = true
	}
	if got := s.nonceHi.Load(); got != hi+1 {
		t.Fatalf("high word = %d after wrap, want %d (carry lost)", got, hi+1)
	}
}

func TestNewSealerKeyValidation(t *testing.T) {
	for _, n := range []int{0, 1, 15, 17, 33} {
		if _, err := newSealer(make([]byte, n)); !errors.Is(err, ErrBadKey) {
			t.Errorf("key len %d: err = %v", n, err)
		}
	}
	for _, n := range []int{16, 24, 32} {
		if _, err := newSealer(make([]byte, n)); err != nil {
			t.Errorf("key len %d: %v", n, err)
		}
	}
}

func TestEncryptedLoopbackDelivery(t *testing.T) {
	key := bytes.Repeat([]byte{0xAB}, 16)
	var rx collector
	server, err := Listen("127.0.0.1:0", Config{OnMessage: rx.add, Key: key})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, err := Dial(server.LocalAddr().String(), Config{
		Streams:     []StreamSpec{{ID: 1, Class: core.ClassCritical, Priority: core.PrioHighest, Rate: 1e6}},
		StartBudget: 10e6,
		Key:         key,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	const n = 40
	for i := 0; i < n; i++ {
		if _, err := client.Send(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if !waitFor(t, 3*time.Second, func() bool { return rx.count() >= n }) {
		t.Fatalf("received %d/%d encrypted messages", rx.count(), n)
	}
	// Payload integrity end to end.
	rx.mu.Lock()
	defer rx.mu.Unlock()
	seen := map[byte]bool{}
	for _, m := range rx.msgs {
		if len(m.Payload) != 1 {
			t.Fatalf("payload len %d", len(m.Payload))
		}
		seen[m.Payload[0]] = true
	}
	if len(seen) != n {
		t.Errorf("distinct payloads = %d, want %d", len(seen), n)
	}
}

func TestKeyMismatchDropsEverything(t *testing.T) {
	var rx collector
	server, err := Listen("127.0.0.1:0", Config{
		OnMessage: rx.add, Key: bytes.Repeat([]byte{1}, 16),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, err := Dial(server.LocalAddr().String(), Config{
		Streams:     []StreamSpec{{ID: 1, Class: core.ClassFullBestEffort, Priority: core.PrioNoDelay, Rate: 1e6}},
		StartBudget: 10e6,
		Key:         bytes.Repeat([]byte{2}, 16), // wrong key
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	for i := 0; i < 20; i++ {
		client.Send(1, []byte("secret")) //nolint:errcheck
	}
	time.Sleep(300 * time.Millisecond)
	if rx.count() != 0 {
		t.Fatalf("wrong-key frames delivered: %d", rx.count())
	}
	server.mu.Lock()
	fails := server.AuthFailures
	server.mu.Unlock()
	if fails == 0 {
		t.Error("no auth failures recorded")
	}
}

func TestEncryptedThroughLossyRelay(t *testing.T) {
	key := bytes.Repeat([]byte{0x55}, 32)
	var rx collector
	server, err := Listen("127.0.0.1:0", Config{OnMessage: rx.add, Key: key})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	relay, err := NewRelay(server.LocalAddr().String(), 8, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()
	client, err := Dial(relay.Addr(), Config{
		Streams:     []StreamSpec{{ID: 1, Class: core.ClassCritical, Priority: core.PrioHighest, Rate: 2e6}},
		StartBudget: 5e6,
		Key:         key,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	const n = 60
	for i := 0; i < n; i++ {
		if _, err := client.Send(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if !waitFor(t, 8*time.Second, func() bool { return rx.count() >= n }) {
		t.Fatalf("received %d/%d (relay dropped %d)", rx.count(), n, relay.Dropped())
	}
}

func TestDialRejectsBadKey(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", Config{Key: []byte("short")}); !errors.Is(err, ErrBadKey) {
		t.Errorf("err = %v, want ErrBadKey", err)
	}
	if _, err := Listen("127.0.0.1:0", Config{Key: []byte("short")}); !errors.Is(err, ErrBadKey) {
		t.Errorf("err = %v, want ErrBadKey", err)
	}
}

func TestSendRespectsSealedMTU(t *testing.T) {
	key := bytes.Repeat([]byte{9}, 16)
	server, err := Listen("127.0.0.1:0", Config{Key: key})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, err := Dial(server.LocalAddr().String(), Config{
		Streams: []StreamSpec{{ID: 1, Class: core.ClassCritical, Priority: core.PrioHighest, Rate: 1e6}},
		Key:     key,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Send(1, make([]byte, MaxPayload-sealedOver)); err != nil {
		t.Errorf("max sealed plaintext rejected: %v", err)
	}
	if _, err := client.Send(1, make([]byte, MaxPayload-sealedOver+1)); !errors.Is(err, ErrOversize) {
		t.Errorf("oversized sealed plaintext accepted: %v", err)
	}
}
