package wire

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"errors"
	"fmt"
)

// Section VI-G: "Heavy usage of cryptography should be performed for every
// communication." When Config.Key is set, every frame's payload is sealed
// with AES-GCM and the fixed header is authenticated as associated data,
// so a middlebox can neither read application data nor splice headers onto
// other payloads. ACK frames (empty payload) still carry a 16-byte tag, so
// acknowledgment forgery is also prevented.
//
// Sealed wire layout: header || nonce(12) || ciphertext(plaintext+16).

const (
	nonceLen   = 12
	gcmTagLen  = 16
	sealedOver = nonceLen + gcmTagLen
)

// ErrBadKey is returned for key lengths other than 16, 24 or 32 bytes.
var ErrBadKey = errors.New("wire: key must be 16, 24 or 32 bytes")

// ErrAuthFailed is returned when a sealed frame fails authentication.
var ErrAuthFailed = errors.New("wire: frame authentication failed")

type sealer struct {
	aead cipher.AEAD
}

func newSealer(key []byte) (*sealer, error) {
	switch len(key) {
	case 16, 24, 32:
	default:
		return nil, fmt.Errorf("%w: got %d", ErrBadKey, len(key))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("wire: cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("wire: gcm: %w", err)
	}
	return &sealer{aead: aead}, nil
}

// headerAAD renders the header bytes used as associated data. It must
// match the header bytes of the final frame except the payload length
// field (which describes the sealed length and is therefore written
// after sealing); the length is excluded from authentication. Both the
// legacy and the traced layouts keep the payload length as the last two
// header bytes, so stripping them works for every version — and on v3
// frames the trace ids are authenticated along with the rest.
func headerAAD(h Header) []byte {
	frame, err := AppendFrame(nil, h, nil)
	if err != nil {
		return nil
	}
	return frame[:headerLen(h)-2] // strip the 2-byte payload length
}

// seal encrypts payload under a fresh random nonce, binding the header.
func (s *sealer) seal(h Header, payload []byte) ([]byte, error) {
	out := make([]byte, nonceLen, nonceLen+len(payload)+gcmTagLen)
	if _, err := rand.Read(out[:nonceLen]); err != nil {
		return nil, fmt.Errorf("wire: nonce: %w", err)
	}
	return s.aead.Seal(out, out[:nonceLen], payload, headerAAD(h)), nil
}

// open authenticates and decrypts a sealed payload.
func (s *sealer) open(h Header, sealed []byte) ([]byte, error) {
	if len(sealed) < sealedOver {
		return nil, ErrAuthFailed
	}
	plain, err := s.aead.Open(nil, sealed[:nonceLen], sealed[nonceLen:], headerAAD(h))
	if err != nil {
		return nil, ErrAuthFailed
	}
	return plain, nil
}

// maxPlain reports the largest plaintext that still fits a frame when
// sealing is active.
func maxPlain(sealed bool) int {
	if sealed {
		return MaxPayload - sealedOver
	}
	return MaxPayload
}
