package wire

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Section VI-G: "Heavy usage of cryptography should be performed for every
// communication." When Config.Key is set, every frame's payload is sealed
// with AES-GCM and the fixed header is authenticated as associated data,
// so a middlebox can neither read application data nor splice headers onto
// other payloads. ACK frames (empty payload) still carry a 16-byte tag, so
// acknowledgment forgery is also prevented.
//
// Sealed wire layout: header || nonce(12) || ciphertext(plaintext+16).
//
// Nonce scheme: the full 96-bit nonce is drawn from crypto/rand once at
// sealer construction and then incremented as a single 96-bit counter
// (little-endian: a 64-bit low word carrying into a 32-bit high word), so
// the only per-packet cost is an atomic increment — no rand.Read syscall
// on the send path. Many sealers share one pre-shared key (one per Conn
// and per mux peer); with a random *starting point* two sealers reuse a
// nonce only if their counter ranges overlap, probability on the order of
// msgs·sealers²/2^96 — negligible at fleet scale. (A fixed-prefix scheme
// with counters starting at 0 would instead collide whenever two sealers
// drew the same 32-bit prefix, a ~2^16-instantiation birthday bound.)
// GCM only requires nonce uniqueness per key, never unpredictability, and
// the receiver treats the 12 bytes as opaque, so v1/v2/v3 frames sealed
// under the old fully-random scheme interoperate unchanged.

const (
	nonceLen   = 12
	nonceLoLen = 8 // low counter word; the high word fills the rest
	gcmTagLen  = 16
	sealedOver = nonceLen + gcmTagLen
)

// ErrBadKey is returned for key lengths other than 16, 24 or 32 bytes.
var ErrBadKey = errors.New("wire: key must be 16, 24 or 32 bytes")

// ErrAuthFailed is returned when a sealed frame fails authentication.
var ErrAuthFailed = errors.New("wire: frame authentication failed")

type sealer struct {
	aead cipher.AEAD
	// 96-bit nonce counter, randomly seeded (see the scheme note above).
	// nonceLo is the low 64 bits; a wrap carries into nonceHi.
	nonceLo atomic.Uint64
	nonceHi atomic.Uint32
}

func newSealer(key []byte) (*sealer, error) {
	switch len(key) {
	case 16, 24, 32:
	default:
		return nil, fmt.Errorf("%w: got %d", ErrBadKey, len(key))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("wire: cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("wire: gcm: %w", err)
	}
	s := &sealer{aead: aead}
	var seed [nonceLen]byte
	if _, err := rand.Read(seed[:]); err != nil {
		return nil, fmt.Errorf("wire: nonce seed: %w", err)
	}
	s.nonceLo.Store(binary.LittleEndian.Uint64(seed[:nonceLoLen]))
	s.nonceHi.Store(binary.LittleEndian.Uint32(seed[nonceLoLen:]))
	return s, nil
}

// putNonce writes the next nonce (low word || high word, little-endian)
// into dst, which must be nonceLen bytes. The increment is a 96-bit add:
// the goroutine whose Add wraps the low word performs the carry exactly
// once. A reader racing that carry could emit an old-high/new-low nonce,
// but that repeats a value from 2^64 increments earlier — a horizon no
// deployment reaches (58,000 years at 10M frames/s).
func (s *sealer) putNonce(dst []byte) {
	lo := s.nonceLo.Add(1)
	if lo == 0 {
		s.nonceHi.Add(1)
	}
	binary.LittleEndian.PutUint64(dst, lo)
	binary.LittleEndian.PutUint32(dst[nonceLoLen:], s.nonceHi.Load())
}

// appendSealedFrame encodes the complete sealed frame — header, nonce,
// ciphertext, tag — for h and payload into dst and returns the extended
// slice. With dst capacity ≥ headerLen(h)+sealedOver+len(payload) it
// allocates nothing: the header is written in place, its bytes (minus the
// trailing payload-length field) serve as the AAD, and AES-GCM seals the
// payload directly after the nonce. This is the only sealing path the
// send pipeline uses; seal below is the historical buffer-returning form
// kept for tests and header-compat tooling.
func (s *sealer) appendSealedFrame(dst []byte, h Header, payload []byte) ([]byte, error) {
	sealedLen := sealedOver + len(payload)
	if sealedLen > MaxPayload {
		return dst, fmt.Errorf("%w: %d bytes sealed", ErrOversize, sealedLen)
	}
	switch h.Type {
	case TypeData, TypeAck, TypeNack, TypePing, TypePong:
	default:
		return dst, fmt.Errorf("%w: %d", ErrBadType, h.Type)
	}
	hlen := headerLen(h)
	base := len(dst)
	dst = append(dst, make([]byte, hlen+nonceLen)...)
	putHeader(dst[base:base+hlen], h, sealedLen)
	aad := dst[base : base+hlen-2] // payload length excluded, as in headerAAD
	nonce := dst[base+hlen : base+hlen+nonceLen]
	s.putNonce(nonce)
	// Seal appends ciphertext+tag after the nonce; the aad region is
	// strictly before the append point, so the in-place overlap is safe.
	return s.aead.Seal(dst, nonce, payload, aad), nil
}

// headerAAD renders the header bytes used as associated data. It must
// match the header bytes of the final frame except the payload length
// field (which describes the sealed length and is therefore written
// after sealing); the length is excluded from authentication. Both the
// legacy and the traced layouts keep the payload length as the last two
// header bytes, so stripping them works for every version — and on v3
// frames the trace ids are authenticated along with the rest.
func headerAAD(h Header) []byte {
	frame, err := AppendFrame(nil, h, nil)
	if err != nil {
		return nil
	}
	return frame[:headerLen(h)-2] // strip the 2-byte payload length
}

// aadPool recycles the scratch buffers openInPlace renders associated
// data into. The AAD is at most HeaderLenTraced bytes, but passing a
// stack array through the cipher.AEAD interface forces it to escape, so
// a pooled buffer is what keeps the recv leg at zero allocations.
var aadPool = sync.Pool{New: func() any {
	b := make([]byte, HeaderLenTraced)
	return &b
}}

// renderAAD writes h's authenticated header bytes (everything except the
// trailing 2-byte payload-length field, exactly as headerAAD defines)
// into dst, which must have capacity ≥ headerLen(h), and returns the AAD
// slice. Unlike headerAAD it allocates nothing.
func renderAAD(dst []byte, h Header) []byte {
	hlen := headerLen(h)
	dst = dst[:hlen]
	putHeader(dst, h, 0) // length field is stripped below, value irrelevant
	return dst[:hlen-2]
}

// openInPlace authenticates and decrypts a sealed payload, writing the
// plaintext over the ciphertext region of sealed — the caller's buffer is
// consumed either way, which is exactly the recv-path contract (delivery
// buffers are loaned for the duration of the callback). This is the
// zero-allocation twin of appendSealedFrame; open below is the historical
// fresh-buffer form kept for tests and callers that retain the payload.
func (s *sealer) openInPlace(h Header, sealed []byte) ([]byte, error) {
	if len(sealed) < sealedOver {
		return nil, ErrAuthFailed
	}
	aadBuf := aadPool.Get().(*[]byte)
	aad := renderAAD(*aadBuf, h)
	plain, err := s.aead.Open(sealed[nonceLen:nonceLen], sealed[:nonceLen], sealed[nonceLen:], aad)
	aadPool.Put(aadBuf)
	if err != nil {
		return nil, ErrAuthFailed
	}
	return plain, nil
}

// seal encrypts payload under a fresh nonce, binding the header, and
// returns nonce||ciphertext||tag in a fresh buffer. The fast path uses
// appendSealedFrame instead; this form remains for tests and tools that
// want the sealed payload alone.
func (s *sealer) seal(h Header, payload []byte) ([]byte, error) {
	out := make([]byte, nonceLen, nonceLen+len(payload)+gcmTagLen)
	s.putNonce(out[:nonceLen])
	return s.aead.Seal(out, out[:nonceLen], payload, headerAAD(h)), nil
}

// open authenticates and decrypts a sealed payload.
func (s *sealer) open(h Header, sealed []byte) ([]byte, error) {
	if len(sealed) < sealedOver {
		return nil, ErrAuthFailed
	}
	plain, err := s.aead.Open(nil, sealed[:nonceLen], sealed[nonceLen:], headerAAD(h))
	if err != nil {
		return nil, ErrAuthFailed
	}
	return plain, nil
}

// maxPlain reports the largest plaintext that still fits a frame when
// sealing is active.
func maxPlain(sealed bool) int {
	if sealed {
		return MaxPayload - sealedOver
	}
	return MaxPayload
}
