package wire

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"
)

// TestRecvBufferPoisonCatchesRetention validates the debug-build
// enforcement of the PacketConn contract ("the callback may retain pkt
// only for the duration of the call"): a callback that squirrels the
// slice away sees its contents replaced by the poison pattern the moment
// it returns, so a retaining caller fails loudly in tests instead of
// corrupting silently in production when the buffer is reused.
func TestRecvBufferPoisonCatchesRetention(t *testing.T) {
	old := poisonRecvBuffers
	poisonRecvBuffers = true
	defer func() { poisonRecvBuffers = old }()

	sock, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	pc := newUDPPacketConn(sock)
	defer pc.Close()

	var mu sync.Mutex
	var retained []byte // contract violation, on purpose
	var copied []byte
	got := make(chan struct{}, 1)
	pc.Start(func(pkt []byte, _ *net.UDPAddr) {
		mu.Lock()
		retained = pkt
		copied = append([]byte(nil), pkt...)
		mu.Unlock()
		got <- struct{}{}
	})

	sender, err := net.DialUDP("udp", nil, sock.LocalAddr().(*net.UDPAddr))
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	msg := bytes.Repeat([]byte{0x11}, 64)
	if _, err := sender.Write(msg); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("datagram never delivered")
	}

	mu.Lock()
	defer mu.Unlock()
	if !bytes.Equal(copied, msg) {
		t.Fatalf("in-callback copy = % x, want % x", copied, msg)
	}
	for i, b := range retained {
		if b != poisonByte {
			t.Fatalf("retained[%d] = %#x, want poison %#x — retention would go undetected", i, b, poisonByte)
		}
	}
}

// TestWriteBatchMixedShapes drives WriteBatch with the exact shapes the
// GSO/sendmmsg splitter has to get right — an equal-size run, a short
// tail segment, interleaved destination switches, and odd sizes — and
// asserts every datagram arrives at the right socket with its boundaries
// and contents intact. On platforms without the batch syscalls the same
// batch goes through the portable loop, so the test pins the semantic
// contract everywhere.
func TestWriteBatchMixedShapes(t *testing.T) {
	recv := func() (*net.UDPConn, *net.UDPAddr, *collectorRaw) {
		sock, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatal(err)
		}
		c := &collectorRaw{}
		go func() {
			buf := make([]byte, 4096)
			for {
				n, _, rerr := sock.ReadFromUDP(buf)
				if rerr != nil {
					return
				}
				c.add(append([]byte(nil), buf[:n]...))
			}
		}()
		return sock, sock.LocalAddr().(*net.UDPAddr), c
	}
	sockA, addrA, rxA := recv()
	defer sockA.Close()
	sockB, addrB, rxB := recv()
	defer sockB.Close()

	ssock, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	u := newUDPPacketConn(ssock)
	defer u.Close()

	mk := func(fill byte, n int) []byte { return bytes.Repeat([]byte{fill}, n) }
	var dgs []Datagram
	var wantA, wantB [][]byte
	to := func(addr *net.UDPAddr, want *[][]byte, payloads ...[]byte) {
		for _, p := range payloads {
			dgs = append(dgs, Datagram{B: p, Addr: addr})
			*want = append(*want, p)
		}
	}
	// Equal-size run (GSO-eligible), ending in a short tail segment.
	to(addrA, &wantA, mk(1, 700), mk(2, 700), mk(3, 700), mk(4, 700), mk(5, 123))
	// Destination switch mid-batch, then another run on the new peer.
	to(addrB, &wantB, mk(6, 300), mk(7, 300), mk(8, 300))
	// Sizes that grow (a larger frame must start a new run, never join one).
	to(addrA, &wantA, mk(9, 100), mk(10, 200), mk(11, 300))
	// Alternating peers: no run at all, pure sendmmsg/portable territory.
	to(addrA, &wantA, mk(12, 50))
	to(addrB, &wantB, mk(13, 60))
	to(addrA, &wantA, mk(14, 70))

	n, err := u.WriteBatch(dgs)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(dgs) {
		t.Fatalf("WriteBatch sent %d of %d", n, len(dgs))
	}
	check := func(name string, rx *collectorRaw, want [][]byte) {
		if !waitFor(t, 5*time.Second, func() bool { return rx.count() == len(want) }) {
			t.Fatalf("%s: got %d datagrams, want %d", name, rx.count(), len(want))
		}
		rx.mu.Lock()
		defer rx.mu.Unlock()
		got := append([][]byte(nil), rx.pkts...)
		// UDP does not promise ordering even on loopback; compare as
		// multisets keyed by the (unique) fill byte.
		byFill := func(ps [][]byte) map[byte][]byte {
			m := make(map[byte][]byte, len(ps))
			for _, p := range ps {
				m[p[0]] = p
			}
			return m
		}
		gm, wm := byFill(got), byFill(want)
		for fill, w := range wm {
			g, ok := gm[fill]
			if !ok {
				t.Fatalf("%s: datagram %#x never arrived", name, fill)
			}
			if !bytes.Equal(g, w) {
				t.Fatalf("%s: datagram %#x corrupted: len %d want %d", name, fill, len(g), len(w))
			}
		}
	}
	check("peer A", rxA, wantA)
	check("peer B", rxB, wantB)
}

type collectorRaw struct {
	mu   sync.Mutex
	pkts [][]byte
}

func (c *collectorRaw) add(p []byte) {
	c.mu.Lock()
	c.pkts = append(c.pkts, p)
	c.mu.Unlock()
}

func (c *collectorRaw) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pkts)
}

// TestLoopbackDeliveryWithPoisoning re-runs a full protocol exchange with
// poisoning forced on: it passes only if no layer above the transport
// retains receive buffers (the retention audit for conn/mux/rpc delivery
// paths, executed rather than asserted).
func TestLoopbackDeliveryWithPoisoning(t *testing.T) {
	old := poisonRecvBuffers
	poisonRecvBuffers = true
	defer func() { poisonRecvBuffers = old }()

	rx := &collector{}
	server, err := Listen("127.0.0.1:0", Config{OnMessage: rx.add})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, err := Dial(server.LocalAddr().String(), Config{
		Streams: []StreamSpec{{ID: 1, Class: 3, Priority: 1, Rate: 1e6}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	want := [][]byte{}
	for i := 0; i < 20; i++ {
		p := bytes.Repeat([]byte{byte(i + 1)}, 200)
		want = append(want, p)
		if ok, serr := client.Send(1, p); serr != nil || !ok {
			t.Fatal("send refused", serr)
		}
	}
	if !waitFor(t, 5*time.Second, func() bool { return rx.count() == len(want) }) {
		t.Fatalf("delivered %d messages, want %d", rx.count(), len(want))
	}
	rx.mu.Lock()
	defer rx.mu.Unlock()
	for i, m := range rx.msgs {
		if !bytes.Equal(m.Payload, want[m.Seq]) {
			t.Fatalf("message %d (seq %d) corrupted: a layer above the transport retained its recv buffer", i, m.Seq)
		}
	}
}
