// PathRouter is the server side of multipath ARTP. A server keeps its one
// listening socket; the router slots between that socket and the Conn
// machinery (ListenVia(router, ...)) and makes every client's N subflows
// look like a single peer:
//
//   - each path frame's session id maps the datagram onto one logical
//     client, addressed upward by a stable canonical address, so the
//     server Conn sees one peer no matter which access link delivered
//     the frame;
//   - probes are answered in place (the echo is the client's RTT sample)
//     and their advertisement (SRTT, probing cadence, state) is recorded,
//     so the router can rank a client's return paths without ever
//     probing them itself;
//   - downlink frames pick the freshest, lowest-advertised-RTT live path
//     and can carry their own cross-path FEC;
//   - datagrams that are not path frames pass through untouched, so
//     legacy single-path clients keep working on the same socket.
package wire

import (
	"encoding/binary"
	"net"
	"sync"
	"time"

	"marnet/internal/obs"
	"marnet/internal/vclock"
)

// RouterConfig tunes a PathRouter.
type RouterConfig struct {
	// Clock supplies time and timers (nil = system clock).
	Clock vclock.Clock
	// FEC enables cross-path parity on the downlink (client→server parity
	// is the client's own business).
	FEC PathFEC
	// MaxSessions bounds per-client state (default 1024); beyond it the
	// longest-silent session is evicted.
	MaxSessions int
}

// routerPath is the router's view of one client subflow, built entirely
// from what the client shows it: the source address its datagrams arrive
// from and the advertisement carried in its probes.
type routerPath struct {
	addr      *net.UDPAddr
	lastHeard time.Time
	srtt      time.Duration // advertised by the client's probes
	interval  time.Duration // client's probing cadence (staleness unit)
	state     PathState     // advertised
}

// routerSession is one logical client across its subflows.
type routerSession struct {
	id        uint64
	canon     *net.UDPAddr
	paths     map[uint8]*routerPath
	rx        *fecReassembler
	tx        *fecGroups
	lastHeard time.Time
}

// PathRouter demultiplexes path frames arriving on one socket into
// per-session state and routes downlink frames back onto the best
// client subflow. It implements PacketConn over an inner PacketConn.
type PathRouter struct {
	pc    PacketConn
	cfg   RouterConfig
	clock vclock.Clock

	mu       sync.Mutex
	sessions map[uint64]*routerSession
	byCanon  map[string]*routerSession
	recv     func(pkt []byte, from *net.UDPAddr)
	closed   bool

	flushTimer vclock.Timer
	flushFn    func()

	probesAnswered int64
	pathData       int64
	passthrough    int64
	paritySent     int64
	fecRepaired    int64 // accumulated from evicted sessions
	fecUnrepaired  int64
}

var _ PacketConn = (*PathRouter)(nil)

// NewPathRouter wraps a listening transport with multipath routing.
func NewPathRouter(pc PacketConn, cfg RouterConfig) *PathRouter {
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 1024
	}
	if cfg.FEC.K > 0 && cfg.FEC.FlushAfter <= 0 {
		cfg.FEC.FlushAfter = 25 * time.Millisecond
	}
	r := &PathRouter{
		pc:       pc,
		cfg:      cfg,
		clock:    vclock.OrSystem(cfg.Clock),
		sessions: make(map[uint64]*routerSession),
		byCanon:  make(map[string]*routerSession),
	}
	r.flushFn = r.flushFire
	return r
}

// canonicalAddr derives the stable per-session peer address the server
// Conn keys on: a ULA-style IPv6 address carrying the session id, so two
// sessions can never collide and the address never routes anywhere real.
func canonicalAddr(session uint64) *net.UDPAddr {
	ip := make(net.IP, net.IPv6len)
	ip[0], ip[1] = 0xfd, 0x6d // fd6d::/16 ("m" for multipath), ULA range
	binary.BigEndian.PutUint64(ip[8:], session)
	return &net.UDPAddr{IP: ip, Port: 9}
}

// Start installs the upward delivery callback, arms the downlink FEC
// flush chain, and starts the inner transport.
func (r *PathRouter) Start(recv func(pkt []byte, from *net.UDPAddr)) {
	r.mu.Lock()
	r.recv = recv
	if r.cfg.FEC.K > 0 {
		r.flushTimer = r.clock.AfterFunc(r.cfg.FEC.FlushAfter, r.flushFn)
	}
	r.mu.Unlock()
	r.pc.Start(r.handle)
}

// Synchronous delegates to the inner transport.
func (r *PathRouter) Synchronous() bool { return r.pc.Synchronous() }

// LocalAddr delegates to the inner transport.
func (r *PathRouter) LocalAddr() net.Addr { return r.pc.LocalAddr() }

// Close stops the flush chain, finalizes FEC accounting, and closes the
// inner transport.
func (r *PathRouter) Close() error {
	r.mu.Lock()
	if !r.closed {
		r.closed = true
		if r.flushTimer != nil {
			r.flushTimer.Stop()
			r.flushTimer = nil
		}
		for _, s := range r.sessions {
			s.rx.drain()
			r.fecRepaired += s.rx.Repaired
			r.fecUnrepaired += s.rx.Unrepaired
		}
		r.sessions = make(map[uint64]*routerSession)
		r.byCanon = make(map[string]*routerSession)
	}
	r.mu.Unlock()
	return r.pc.Close()
}

// session returns (creating if needed) the state for one session id,
// evicting the longest-silent session past the bound. Caller holds mu.
func (r *PathRouter) sessionLocked(id uint64) *routerSession {
	s := r.sessions[id]
	if s != nil {
		return s
	}
	if len(r.sessions) >= r.cfg.MaxSessions {
		var oldest *routerSession
		for _, cand := range r.sessions {
			if oldest == nil || cand.lastHeard.Before(oldest.lastHeard) {
				oldest = cand
			}
		}
		if oldest != nil {
			oldest.rx.drain()
			r.fecRepaired += oldest.rx.Repaired
			r.fecUnrepaired += oldest.rx.Unrepaired
			delete(r.sessions, oldest.id)
			delete(r.byCanon, oldest.canon.String())
		}
	}
	s = &routerSession{
		id:    id,
		canon: canonicalAddr(id),
		paths: make(map[uint8]*routerPath),
		rx:    newFECReassembler(),
	}
	if r.cfg.FEC.K > 0 {
		s.tx, _ = newFECGroups(r.cfg.FEC.K, r.cfg.FEC.M) // geometry validated in config
	}
	r.sessions[id] = s
	r.byCanon[s.canon.String()] = s
	return s
}

// touchLocked refreshes one path's liveness from an inbound datagram.
func (s *routerSession) touchLocked(pathID uint8, from *net.UDPAddr, now time.Time) *routerPath {
	p := s.paths[pathID]
	if p == nil {
		p = &routerPath{interval: 50 * time.Millisecond}
		s.paths[pathID] = p
	}
	p.addr = from
	p.lastHeard = now
	s.lastHeard = now
	return p
}

// handle demultiplexes one inbound datagram from the shared socket.
func (r *PathRouter) handle(pkt []byte, from *net.UDPAddr) {
	if !IsPathFrame(pkt) {
		r.mu.Lock()
		r.passthrough++
		recv, closed := r.recv, r.closed
		r.mu.Unlock()
		if recv != nil && !closed {
			recv(pkt, from)
		}
		return
	}
	hdr, body, err := DecodePathHeader(pkt)
	if err != nil {
		return
	}
	switch hdr.Kind {
	case PathKindProbe:
		probe, perr := DecodePathProbe(body)
		if perr != nil {
			return
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			return
		}
		s := r.sessionLocked(hdr.Session)
		p := s.touchLocked(hdr.PathID, from, r.clock.Now())
		p.srtt = time.Duration(probe.SRTTMicro) * time.Microsecond
		if probe.IntervalMicro > 0 {
			p.interval = time.Duration(probe.IntervalMicro) * time.Microsecond
		}
		p.state = PathState(probe.State)
		r.probesAnswered++
		r.mu.Unlock()
		ack := append([]byte(nil), pkt...)
		ack[3] = PathKindProbeAck
		r.pc.WriteToUDP(ack, from) //nolint:errcheck // best-effort echo
	case PathKindData:
		group, index, inner, derr := DecodePathData(body)
		if derr != nil {
			return
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			return
		}
		s := r.sessionLocked(hdr.Session)
		s.touchLocked(hdr.PathID, from, r.clock.Now())
		r.pathData++
		recovered := s.rx.onData(group, index, inner)
		canon, recv := s.canon, r.recv
		r.mu.Unlock()
		if recv == nil {
			return
		}
		recv(inner, canon)
		for _, frame := range recovered {
			recv(frame, canon)
		}
	case PathKindParity:
		phdr, shard, perr := DecodePathParity(body)
		if perr != nil {
			return
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			return
		}
		s := r.sessionLocked(hdr.Session)
		s.touchLocked(hdr.PathID, from, r.clock.Now())
		recovered := s.rx.onParity(phdr, shard)
		canon, recv := s.canon, r.recv
		r.mu.Unlock()
		if recv == nil {
			return
		}
		for _, frame := range recovered {
			recv(frame, canon)
		}
	case PathKindProbeAck:
		// The router never originates probes; a stray ack is dropped.
	}
}

// pickPathLocked ranks one session's client subflows for a downlink
// frame: live paths (heard within 3 probe intervals and not advertised
// down/probing) win, then advertised state, then advertised SRTT, then
// path id for determinism. Like the client scheduler it never returns
// "no path" while any path was ever heard from.
func (r *PathRouter) pickPathLocked(s *routerSession, now time.Time) *routerPath {
	var best *routerPath
	var bestID uint8
	bestRank := 1 << 30
	for id, p := range s.paths {
		if p.addr == nil {
			continue
		}
		rank := p.state.rank()
		if now.Sub(p.lastHeard) > 3*p.interval {
			rank += 10 // stale: below every fresh path, above nothing at all
		}
		switch {
		case best == nil,
			rank < bestRank,
			rank == bestRank && pathAdLess(p, best, id, bestID):
			best, bestID, bestRank = p, id, rank
		}
	}
	return best
}

// pathAdLess orders equally-ranked paths by advertised SRTT then id.
func pathAdLess(a, b *routerPath, i, j uint8) bool {
	switch {
	case a.srtt == 0 && b.srtt == 0:
		return i < j
	case a.srtt == 0:
		return false
	case b.srtt == 0:
		return true
	case a.srtt != b.srtt:
		return a.srtt < b.srtt
	}
	return i < j
}

// WriteToUDP routes a downlink frame. Canonical session addresses are
// rewritten onto the best client subflow (encapsulated, optionally FEC
// grouped); anything else is a legacy peer and passes through.
func (r *PathRouter) WriteToUDP(b []byte, addr *net.UDPAddr) (int, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return 0, net.ErrClosed
	}
	s := r.byCanon[addr.String()]
	if s == nil {
		r.mu.Unlock()
		return r.pc.WriteToUDP(b, addr)
	}
	p := r.pickPathLocked(s, r.clock.Now())
	if p == nil {
		// No subflow ever heard from: nothing to route onto yet.
		r.mu.Unlock()
		return len(b), nil
	}
	pathID := uint8(0)
	for id, cand := range s.paths {
		if cand == p {
			pathID = id
			break
		}
	}
	var group uint32
	var index uint8
	var parityWrites []pathWrite
	fecEligible := false
	if s.tx != nil {
		if ih, _, err := DecodeFrame(b); err == nil && ih.Type == TypeData {
			fecEligible = true
		}
	}
	if fecEligible {
		var parity []parityOut
		group, index, parity = s.tx.place(int(pathID), b)
		if len(parity) > 0 {
			parityWrites = r.encodeParityLocked(s, int(pathID), parity)
		}
	}
	frame := AppendPathData(make([]byte, 0, PathDataOver+len(b)), s.id, pathID, group, index, b)
	dst := p.addr
	r.mu.Unlock()

	if _, err := r.pc.WriteToUDP(frame, dst); err != nil {
		return 0, err
	}
	for _, w := range parityWrites {
		r.pc.WriteToUDP(w.frame, w.addr) //nolint:errcheck // parity is best-effort
	}
	return len(b), nil
}

// encodeParityLocked encapsulates downlink repair shards onto a client
// subflow other than the one carrying the data, when one is live.
func (r *PathRouter) encodeParityLocked(s *routerSession, dataPath int, parity []parityOut) []pathWrite {
	var alt *routerPath
	var altID uint8
	now := r.clock.Now()
	for id, p := range s.paths {
		if int(id) == dataPath || p.addr == nil || now.Sub(p.lastHeard) > 3*p.interval {
			continue
		}
		if alt == nil || pathAdLess(p, alt, id, altID) {
			alt, altID = p, id
		}
	}
	if alt == nil { // fall back to the data path itself
		if p := s.paths[uint8(dataPath)]; p != nil && p.addr != nil {
			alt, altID = p, uint8(dataPath)
		} else {
			return nil
		}
	}
	out := make([]pathWrite, 0, len(parity))
	for _, po := range parity {
		frame := AppendPathParity(make([]byte, 0, PathPrefixLen+pathParityOver+len(po.shard)),
			s.id, altID, po.hdr, po.shard)
		r.paritySent++
		out = append(out, pathWrite{addr: alt.addr, frame: frame})
	}
	return out
}

// flushFire ships parity for downlink FEC groups that waited FlushAfter,
// then re-arms.
func (r *PathRouter) flushFire() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	var writes []pathWrite
	for _, s := range r.sessions {
		if s.tx == nil {
			continue
		}
		if parity := s.tx.flush(); len(parity) > 0 {
			writes = append(writes, r.encodeParityLocked(s, -1, parity)...)
		}
	}
	r.flushTimer = vclock.Rearm(r.clock, r.flushTimer, r.cfg.FEC.FlushAfter, r.flushFn)
	r.mu.Unlock()
	for _, w := range writes {
		r.pc.WriteToUDP(w.frame, w.addr) //nolint:errcheck // parity is best-effort
	}
}

// RouterStats is a snapshot of the router's counters. FEC counters sum
// live and already-evicted sessions.
type RouterStats struct {
	Sessions       int
	ProbesAnswered int64
	PathData       int64 // encapsulated data frames received
	Passthrough    int64 // legacy datagrams forwarded untouched
	ParitySent     int64
	FECRepaired    int64
	FECUnrepaired  int64
}

// Stats snapshots the router.
func (r *PathRouter) Stats() RouterStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := RouterStats{
		Sessions:       len(r.sessions),
		ProbesAnswered: r.probesAnswered,
		PathData:       r.pathData,
		Passthrough:    r.passthrough,
		ParitySent:     r.paritySent,
		FECRepaired:    r.fecRepaired,
		FECUnrepaired:  r.fecUnrepaired,
	}
	for _, s := range r.sessions {
		out.FECRepaired += s.rx.Repaired
		out.FECUnrepaired += s.rx.Unrepaired
	}
	return out
}

// PublishMetrics registers the router's counters on an observability
// registry.
func (r *PathRouter) PublishMetrics(reg *obs.Registry, labels ...obs.Label) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("mar_router_sessions", func() float64 { return float64(r.Stats().Sessions) }, labels...)
	reg.CounterFunc("mar_router_probes_answered_total", func() int64 { return r.Stats().ProbesAnswered }, labels...)
	reg.CounterFunc("mar_router_path_data_total", func() int64 { return r.Stats().PathData }, labels...)
	reg.CounterFunc("mar_router_passthrough_total", func() int64 { return r.Stats().Passthrough }, labels...)
	reg.CounterFunc("mar_router_parity_sent_total", func() int64 { return r.Stats().ParitySent }, labels...)
	reg.CounterFunc("mar_router_fec_repaired_total", func() int64 { return r.Stats().FECRepaired }, labels...)
	reg.CounterFunc("mar_router_fec_unrepaired_total", func() int64 { return r.Stats().FECUnrepaired }, labels...)
}
