package wire

import (
	"net"
	"sync"
	"sync/atomic"
)

// ShardMap is the sharded session/route table: a string-keyed hash map
// split across a power-of-two number of independently locked shards, so
// lookups from different reader goroutines contend only when they hash to
// the same shard. It is sized for the route table of an edge server
// tracking very large peer populations — the per-shard maps grow
// independently and no operation ever holds more than one shard lock
// (except Resize, which is administrative).
//
// Key → shard assignment is FNV-1a over the key masked to the shard
// count, so a key's shard is a pure function of (key, shard count):
// stable across the map's lifetime and across processes.
type ShardMap[V any] struct {
	table    atomic.Pointer[shardTable[V]]
	resizeMu sync.Mutex // serializes Resize against itself
}

type shardTable[V any] struct {
	shards []mapShard[V]
	mask   uint32
}

type mapShard[V any] struct {
	mu sync.RWMutex
	m  map[string]V
	// dead marks a shard retired by Resize: an operation that locked it
	// after retirement must reload the table and retry, which is what
	// guarantees no entry is ever read from or written to a stale shard.
	dead bool
}

// NewShardMap builds a map with at least n shards, rounded up to the next
// power of two (minimum 1).
func NewShardMap[V any](n int) *ShardMap[V] {
	s := &ShardMap[V]{}
	s.table.Store(newShardTable[V](n))
	return s
}

func newShardTable[V any](n int) *shardTable[V] {
	size := 1
	for size < n {
		size <<= 1
	}
	t := &shardTable[V]{shards: make([]mapShard[V], size), mask: uint32(size - 1)}
	for i := range t.shards {
		t.shards[i].m = make(map[string]V)
	}
	return t
}

// fnv1a32 is FNV-1a over the key bytes, inlined over the string so the
// hot path never converts the key to []byte (which would allocate).
func fnv1a32(key string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return h
}

// ShardOf reports which shard key lives in for a table of n shards
// (rounded up to a power of two) — the same assignment ShardMap uses, so
// external structures (per-shard sockets, demux queues) can partition by
// the identical function.
func ShardOf(key string, n int) int {
	size := 1
	for size < n {
		size <<= 1
	}
	return int(fnv1a32(key) & uint32(size-1))
}

// ShardOfAddr assigns a peer address to one of n shards by hashing its
// IP and port — the demux twin of the kernel's SO_REUSEPORT flow hash.
// It allocates nothing for IPv4 and IPv6 addresses.
func ShardOfAddr(addr *net.UDPAddr, n int) int {
	if n <= 1 || addr == nil {
		return 0
	}
	size := 1
	for size < n {
		size <<= 1
	}
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	ip := addr.IP
	if ip4 := ip.To4(); ip4 != nil {
		ip = ip4
	}
	for i := 0; i < len(ip); i++ {
		h ^= uint32(ip[i])
		h *= prime32
	}
	h ^= uint32(addr.Port) & 0xff
	h *= prime32
	h ^= uint32(addr.Port) >> 8
	h *= prime32
	return int(h & uint32(size-1))
}

// shardFor locks and returns the live shard owning key. It retries when
// it lost a race with Resize (the locked shard was already retired).
func (s *ShardMap[V]) shardFor(key string, write bool) *mapShard[V] {
	h := fnv1a32(key)
	for {
		t := s.table.Load()
		sh := &t.shards[h&t.mask]
		if write {
			sh.mu.Lock()
		} else {
			sh.mu.RLock()
		}
		if !sh.dead {
			return sh
		}
		if write {
			sh.mu.Unlock()
		} else {
			sh.mu.RUnlock()
		}
	}
}

// Get returns the value for key, if present.
func (s *ShardMap[V]) Get(key string) (V, bool) {
	sh := s.shardFor(key, false)
	v, ok := sh.m[key]
	sh.mu.RUnlock()
	return v, ok
}

// Put inserts or replaces key's value.
func (s *ShardMap[V]) Put(key string, v V) {
	sh := s.shardFor(key, true)
	sh.m[key] = v
	sh.mu.Unlock()
}

// PutIfAbsent inserts v unless key is already present; it returns the
// value that owns the key after the call and whether this call inserted
// it — the accept-race primitive a route table needs.
func (s *ShardMap[V]) PutIfAbsent(key string, v V) (V, bool) {
	sh := s.shardFor(key, true)
	if cur, ok := sh.m[key]; ok {
		sh.mu.Unlock()
		return cur, false
	}
	sh.m[key] = v
	sh.mu.Unlock()
	return v, true
}

// Delete removes key.
func (s *ShardMap[V]) Delete(key string) {
	sh := s.shardFor(key, true)
	delete(sh.m, key)
	sh.mu.Unlock()
}

// DeleteIf removes key only when pred approves the current value, and
// reports whether a removal happened. Used to drop a route only if it
// still points at the closing connection (never evicting a successor).
func (s *ShardMap[V]) DeleteIf(key string, pred func(V) bool) bool {
	sh := s.shardFor(key, true)
	v, ok := sh.m[key]
	if ok && pred(v) {
		delete(sh.m, key)
		sh.mu.Unlock()
		return true
	}
	sh.mu.Unlock()
	return false
}

// Len counts entries across all shards. The count is a consistent sum of
// per-shard snapshots, not an atomic snapshot of the whole map.
func (s *ShardMap[V]) Len() int {
	for {
		t := s.table.Load()
		n, ok := 0, true
		for i := range t.shards {
			sh := &t.shards[i]
			sh.mu.RLock()
			if sh.dead {
				ok = false
			}
			n += len(sh.m)
			sh.mu.RUnlock()
			if !ok {
				break
			}
		}
		if ok {
			return n
		}
	}
}

// Range calls fn for every entry until fn returns false. Entries added or
// removed concurrently may or may not be observed; each shard is visited
// under its read lock.
func (s *ShardMap[V]) Range(fn func(key string, v V) bool) {
	t := s.table.Load()
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.RLock()
		for k, v := range sh.m {
			if !fn(k, v) {
				sh.mu.RUnlock()
				return
			}
		}
		sh.mu.RUnlock()
	}
}

// Shards reports the current shard count.
func (s *ShardMap[V]) Shards() int { return len(s.table.Load().shards) }

// Resize rehashes the map into n shards (rounded up to a power of two).
// Concurrent operations never lose or duplicate an entry: every old shard
// is locked while its entries move, then marked dead, so an operation
// that raced the move notices and retries against the new table.
func (s *ShardMap[V]) Resize(n int) {
	s.resizeMu.Lock()
	defer s.resizeMu.Unlock()
	old := s.table.Load()
	next := newShardTable[V](n)
	if len(next.shards) == len(old.shards) {
		return
	}
	for i := range old.shards {
		old.shards[i].mu.Lock()
	}
	for i := range old.shards {
		for k, v := range old.shards[i].m {
			next.shards[fnv1a32(k)&next.mask].m[k] = v
		}
	}
	s.table.Store(next)
	for i := range old.shards {
		old.shards[i].dead = true
		old.shards[i].m = nil
		old.shards[i].mu.Unlock()
	}
}
