//go:build linux

package wire

import (
	"context"
	"fmt"
	"net"
	"syscall"
)

// SO_REUSEPORT socket-per-shard: N sockets bound to the same UDP port,
// each drained by its own reader goroutine, with the kernel spreading
// peers across them by 4-tuple hash — every packet of one flow always
// lands on the same socket, which is what makes a per-socket shard a
// coherent owner of its peers' connection state. The constant is spelled
// out because Go's frozen syscall package predates it on linux.
const soReusePort = 0xf

func reusePortControl(_, _ string, c syscall.RawConn) error {
	var serr error
	err := c.Control(func(fd uintptr) {
		serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
	})
	if err != nil {
		return err
	}
	return serr
}

// listenReusePort binds n UDP sockets to one address with SO_REUSEPORT.
// The first bind resolves the port (addr may use :0); the rest join it.
// On failure every already-bound socket is closed.
func listenReusePort(addr string, n int) ([]*net.UDPConn, error) {
	lc := net.ListenConfig{Control: reusePortControl}
	socks := make([]*net.UDPConn, 0, n)
	fail := func(err error) ([]*net.UDPConn, error) {
		for _, s := range socks {
			s.Close()
		}
		return nil, err
	}
	for i := 0; i < n; i++ {
		pc, err := lc.ListenPacket(context.Background(), "udp", addr)
		if err != nil {
			return fail(fmt.Errorf("wire: reuseport listen %q (%d/%d): %w", addr, i+1, n, err))
		}
		sock, ok := pc.(*net.UDPConn)
		if !ok {
			pc.Close()
			return fail(fmt.Errorf("wire: reuseport listen %q: unexpected conn type %T", addr, pc))
		}
		socks = append(socks, sock)
		if i == 0 {
			// Pin the resolved port so the remaining binds join this group
			// rather than each drawing their own ephemeral port.
			addr = sock.LocalAddr().String()
		}
	}
	return socks, nil
}
