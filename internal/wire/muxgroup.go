package wire

import (
	"fmt"
	"net"
)

// MuxGroup is the sharded server datapath: N muxes, each owning one
// shard's socket (SO_REUSEPORT) or demux queue (portable fallback), its
// own reader goroutine, pacers, band queues and buffer pools — no lock is
// shared between shards on the packet path. The kernel (or the demux
// hash) pins every peer to exactly one shard, so each peer's Conn lives
// in exactly one mux and the per-shard state needs no cross-shard
// synchronization at all.
type MuxGroup struct {
	muxes []*Mux
	demux *shardDemux // nil on the reuseport (socket-per-shard) path
}

// ListenMuxShards binds addr and serves peers across `shards` per-core
// shards. On Linux each shard gets its own SO_REUSEPORT socket and the
// kernel spreads flows across them; elsewhere a single socket feeds a
// hashing demux with one queue per shard. shards <= 1 (or a platform
// refusing reuseport with 1 shard requested) degenerates to a plain
// single-mux group.
func ListenMuxShards(addr string, shards int, configFor func(peer *net.UDPAddr) Config, opts ...MuxOption) (*MuxGroup, error) {
	if shards <= 1 {
		m, err := ListenMux(addr, configFor, opts...)
		if err != nil {
			return nil, err
		}
		return &MuxGroup{muxes: []*Mux{m}}, nil
	}
	if socks, err := listenReusePort(addr, shards); err == nil {
		g := &MuxGroup{muxes: make([]*Mux, 0, shards)}
		for _, sock := range socks {
			m, merr := ListenMuxVia(newUDPPacketConn(sock), configFor, opts...)
			if merr != nil {
				g.Close()
				for _, s := range socks[len(g.muxes):] {
					s.Close()
				}
				return nil, merr
			}
			g.muxes = append(g.muxes, m)
		}
		return g, nil
	}
	// Portable fallback: one socket, hashing demux.
	laddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: resolve %q: %w", addr, err)
	}
	sock, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("wire: listen: %w", err)
	}
	g, err := newDemuxGroup(newUDPPacketConn(sock), shards, configFor, opts...)
	if err != nil {
		sock.Close()
	}
	return g, err
}

// ListenMuxShardsVia shards a caller-supplied transport. A synchronous
// (simulated) transport collapses to a single shard: the demux's queues
// and drain goroutines would break the deterministic event loop, and a
// simulation has no cores to scale across anyway — the protocol behavior
// under test is identical either way.
func ListenMuxShardsVia(pc PacketConn, shards int, configFor func(peer *net.UDPAddr) Config, opts ...MuxOption) (*MuxGroup, error) {
	if shards <= 1 || pc.Synchronous() {
		m, err := ListenMuxVia(pc, configFor, opts...)
		if err != nil {
			return nil, err
		}
		return &MuxGroup{muxes: []*Mux{m}}, nil
	}
	return newDemuxGroup(pc, shards, configFor, opts...)
}

func newDemuxGroup(pc PacketConn, shards int, configFor func(peer *net.UDPAddr) Config, opts ...MuxOption) (*MuxGroup, error) {
	d := newShardDemux(pc, shards)
	g := &MuxGroup{demux: d, muxes: make([]*Mux, 0, shards)}
	for _, sc := range d.shards {
		m, err := ListenMuxVia(sc, configFor, opts...)
		if err != nil {
			// Close what exists; closing every shard conn (muxed or not)
			// tears the demux and underlying transport down exactly once.
			g.Close()
			for _, rest := range d.shards[len(g.muxes):] {
				rest.Close()
			}
			return nil, err
		}
		g.muxes = append(g.muxes, m)
	}
	return g, nil
}

// Shards reports the number of shards (muxes) in the group.
func (g *MuxGroup) Shards() int { return len(g.muxes) }

// Mux returns shard i's mux.
func (g *MuxGroup) Mux(i int) *Mux { return g.muxes[i] }

// Muxes returns the per-shard muxes in shard order.
func (g *MuxGroup) Muxes() []*Mux { return g.muxes }

// ReusePort reports whether the group runs socket-per-shard (true) or
// over the hashing-demux fallback / a single mux (false).
func (g *MuxGroup) ReusePort() bool { return g.demux == nil && len(g.muxes) > 1 }

// DemuxStats returns the fallback demux packet accounting (zero-valued on
// the reuseport and single-shard paths).
func (g *MuxGroup) DemuxStats() DemuxStats {
	if g.demux == nil {
		return DemuxStats{}
	}
	return g.demux.Stats()
}

// LocalAddr reports the bound address (shared by every shard).
func (g *MuxGroup) LocalAddr() *net.UDPAddr {
	if len(g.muxes) == 0 {
		return nil
	}
	return g.muxes[0].LocalAddr()
}

// SetOnConn installs the new-peer callback on every shard.
func (g *MuxGroup) SetOnConn(fn func(conn *Conn, peer *net.UDPAddr)) {
	for _, m := range g.muxes {
		m.SetOnConn(fn)
	}
}

// SetOnConnClosed installs the peer-departure callback on every shard.
func (g *MuxGroup) SetOnConnClosed(fn func(conn *Conn, peer *net.UDPAddr)) {
	for _, m := range g.muxes {
		m.SetOnConnClosed(fn)
	}
}

// Conns snapshots the live peer connections across all shards.
func (g *MuxGroup) Conns() []*Conn {
	var out []*Conn
	for _, m := range g.muxes {
		out = append(out, m.Conns()...)
	}
	return out
}

// Stats sums the per-shard mux counters.
func (g *MuxGroup) Stats() (accepted, evicted, overruns int64) {
	for _, m := range g.muxes {
		m.mu.Lock()
		accepted += m.Accepted
		evicted += m.Evicted
		overruns += m.Overruns
		m.mu.Unlock()
	}
	return
}

// Close shuts every shard down. On the demux path the last shard's close
// tears down the shared socket and sweeps the queues.
func (g *MuxGroup) Close() error {
	var first error
	for _, m := range g.muxes {
		if err := m.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
