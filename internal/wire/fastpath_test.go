package wire

import (
	"bytes"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"marnet/internal/core"
	"marnet/internal/vclock"
)

// manualClock is a hand-driven vclock.Clock whose timers support in-place
// Reset, so these tests exercise the same allocation-free Rearm chains the
// production pace loop uses.
type manualClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []*manualTimer
}

type manualTimer struct {
	c     *manualClock
	when  time.Time
	fn    func()
	armed bool
}

func newManualClock() *manualClock {
	return &manualClock{now: time.Unix(1_000_000, 0)}
}

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *manualClock) Since(t time.Time) time.Duration { return c.Now().Sub(t) }

func (c *manualClock) AfterFunc(d time.Duration, fn func()) vclock.Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &manualTimer{c: c, when: c.now.Add(d), fn: fn, armed: true}
	c.timers = append(c.timers, t)
	return t
}

func (t *manualTimer) Stop() bool {
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
	was := t.armed
	t.armed = false
	return was
}

func (t *manualTimer) Reset(d time.Duration) bool {
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
	was := t.armed
	t.when = t.c.now.Add(d)
	t.armed = true
	return was
}

// advance moves virtual time forward and runs every timer that came due,
// in scheduling order. It allocates nothing in steady state: due timers
// are collected into a reusable scratch slice.
func (c *manualClock) advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
	for {
		c.mu.Lock()
		var next *manualTimer
		for _, t := range c.timers {
			if t.armed && !t.when.After(c.now) && (next == nil || t.when.Before(next.when)) {
				next = t
			}
		}
		if next != nil {
			next.armed = false
		}
		c.mu.Unlock()
		if next == nil {
			return
		}
		next.fn()
	}
}

// stubPC is a synchronous PacketConn that counts writes and (optionally)
// records datagram copies. It implements no batch interface, so conns over
// it take the single-frame path regardless of MaxBurst.
type stubPC struct {
	mu     sync.Mutex
	writes int
	record bool
	frames [][]byte
}

func (p *stubPC) WriteToUDP(b []byte, _ *net.UDPAddr) (int, error) {
	p.mu.Lock()
	p.writes++
	if p.record {
		p.frames = append(p.frames, append([]byte(nil), b...))
	}
	p.mu.Unlock()
	return len(b), nil
}

func (p *stubPC) LocalAddr() net.Addr                       { return &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 1} }
func (p *stubPC) Close() error                              { return nil }
func (p *stubPC) Start(func(pkt []byte, from *net.UDPAddr)) {}
func (p *stubPC) Synchronous() bool                         { return true }

// stubBatchPC adds BatchWriter, recording the size of every batch.
type stubBatchPC struct {
	stubPC
	batchSizes []int
}

func (p *stubBatchPC) WriteBatch(dgs []Datagram) (int, error) {
	p.mu.Lock()
	p.batchSizes = append(p.batchSizes, len(dgs))
	if p.record {
		for i := range dgs {
			p.frames = append(p.frames, append([]byte(nil), dgs[i].B...))
		}
	}
	p.writes++
	p.mu.Unlock()
	return len(dgs), nil
}

var stubPeer = &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 9}

// TestSendSteadyStateZeroAlloc is the tentpole's enforcement test: once
// the pools and the pace-timer chain are warm, a best-effort send —
// admission, pooled copy, enqueue, pace fire, header encode, transport
// write, buffer release — performs zero heap allocations. A regression
// here is a regression in per-frame cost at saturation, so it fails the
// build rather than just a benchmark trend.
func TestSendSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes escape analysis; alloc counts are enforced by the non-race pass")
	}
	clk := newManualClock()
	pc := &stubPC{}
	c, err := DialVia(pc, stubPeer, Config{
		Streams: []StreamSpec{{
			ID: 1, Class: core.ClassFullBestEffort, Priority: core.PrioHighest, Rate: 1e9,
		}},
		StartBudget: 1e9,
		Clock:       clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	payload := make([]byte, 512)
	step := func() {
		ok, serr := c.Send(1, payload)
		if serr != nil || !ok {
			t.Fatal("send refused", serr)
		}
		// 10 µs covers the ~4.3 µs budget gap of a 512 B frame at 1 Gb/s,
		// firing exactly the pace timer (the 50 ms sweep stays far away).
		clk.advance(10 * time.Microsecond)
	}
	for i := 0; i < 64; i++ { // warm pools, queue capacity, timer chain
		step()
	}
	if allocs := testing.AllocsPerRun(200, step); allocs != 0 {
		t.Fatalf("steady-state send allocates %.1f objects/op, want 0", allocs)
	}
	if pc.writes < 264 {
		t.Fatalf("transport saw %d writes, want ≥264 (every send must reach the wire)", pc.writes)
	}
}

// TestSendSteadyStateZeroAllocSealed is the same contract with AES-GCM
// sealing on: the counter-based nonce and the in-place appendSealedFrame
// must keep even the encrypting path allocation-free.
func TestSendSteadyStateZeroAllocSealed(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes escape analysis; alloc counts are enforced by the non-race pass")
	}
	clk := newManualClock()
	pc := &stubPC{}
	c, err := DialVia(pc, stubPeer, Config{
		Streams: []StreamSpec{{
			ID: 1, Class: core.ClassFullBestEffort, Priority: core.PrioHighest, Rate: 1e9,
		}},
		StartBudget: 1e9,
		Clock:       clk,
		Key:         bytes.Repeat([]byte{7}, 16),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	payload := make([]byte, 512)
	step := func() {
		ok, serr := c.Send(1, payload)
		if serr != nil || !ok {
			t.Fatal("send refused", serr)
		}
		clk.advance(10 * time.Microsecond)
	}
	for i := 0; i < 64; i++ {
		step()
	}
	if allocs := testing.AllocsPerRun(200, step); allocs != 0 {
		t.Fatalf("sealed steady-state send allocates %.1f objects/op, want 0", allocs)
	}
}

// TestFrameQueueBoundedUnderSustainedBacklog pins the compaction rule:
// a queue that never fully drains (the saturation regime QueuedFrames is
// documented to maintain) must keep its backing array bounded by the
// backlog high-water mark, not grow with cumulative throughput.
func TestFrameQueueBoundedUnderSustainedBacklog(t *testing.T) {
	var q frameQueue
	const backlog = 64
	seq := int64(0)
	for i := 0; i < backlog; i++ {
		q.push(outFrame{hdr: Header{Seq: seq}})
		seq++
	}
	next := int64(0) // FIFO order must survive compaction
	for i := 0; i < 100_000; i++ {
		q.push(outFrame{hdr: Header{Seq: seq}})
		seq++
		f := q.pop()
		if f.hdr.Seq != next {
			t.Fatalf("pop %d: seq = %d, want %d (order broken by compaction)", i, f.hdr.Seq, next)
		}
		next++
	}
	if got := cap(q.buf); got > 4*backlog {
		t.Fatalf("backing array grew to %d slots for a standing backlog of %d", got, backlog)
	}
	if q.len() != backlog {
		t.Fatalf("len = %d, want %d", q.len(), backlog)
	}
}

// TestBatchCoalescing verifies the MaxBurst contract: frames that are
// queued when the pace timer fires leave in one batch write on a
// batch-capable transport, every frame still decodes intact and in order,
// and the batch counters record the coalescing.
func TestBatchCoalescing(t *testing.T) {
	clk := newManualClock()
	pc := &stubBatchPC{stubPC: stubPC{record: true}}
	c, err := DialVia(pc, stubPeer, Config{
		Streams: []StreamSpec{{
			ID: 1, Class: core.ClassFullBestEffort, Priority: core.PrioHighest, Rate: 1e9,
		}},
		StartBudget: 1e9,
		Clock:       clk,
		MaxBurst:    8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Queue 8 frames before the pace timer has a chance to fire.
	var want [][]byte
	for i := 0; i < 8; i++ {
		p := bytes.Repeat([]byte{byte('a' + i)}, 64+i)
		want = append(want, p)
		if ok, serr := c.Send(1, p); serr != nil || !ok {
			t.Fatal("send refused", serr)
		}
	}
	clk.advance(time.Millisecond)

	pc.mu.Lock()
	defer pc.mu.Unlock()
	if len(pc.batchSizes) != 1 || pc.batchSizes[0] != 8 {
		t.Fatalf("batch sizes = %v, want one batch of 8", pc.batchSizes)
	}
	if len(pc.frames) != 8 {
		t.Fatalf("recorded %d frames, want 8", len(pc.frames))
	}
	for i, frame := range pc.frames {
		h, payload, derr := DecodeFrame(frame)
		if derr != nil {
			t.Fatalf("frame %d failed to decode: %v", i, derr)
		}
		if h.Seq != int64(i) || !bytes.Equal(payload, want[i]) {
			t.Fatalf("frame %d: seq %d payload %q, want seq %d payload %q",
				i, h.Seq, payload, i, want[i])
		}
	}
	writes, frames := c.BatchStats()
	if writes != 1 || frames != 8 {
		t.Fatalf("BatchStats = (%d, %d), want (1, 8)", writes, frames)
	}
}

// TestSendCopiesPayload pins the pooling refactor to the old contract:
// Send takes a private copy, so the caller may reuse its buffer
// immediately even though the copy now lives in a pooled buffer.
func TestSendCopiesPayload(t *testing.T) {
	clk := newManualClock()
	pc := &stubPC{record: true}
	c, err := DialVia(pc, stubPeer, Config{
		Streams: []StreamSpec{{
			ID: 1, Class: core.ClassFullBestEffort, Priority: core.PrioHighest, Rate: 1e9,
		}},
		StartBudget: 1e9,
		Clock:       clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	buf := bytes.Repeat([]byte{0xAA}, 100)
	if ok, serr := c.Send(1, buf); serr != nil || !ok {
		t.Fatal("send refused", serr)
	}
	for i := range buf { // caller scribbles before the frame is paced out
		buf[i] = 0x55
	}
	clk.advance(time.Millisecond)
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if len(pc.frames) != 1 {
		t.Fatalf("got %d frames, want 1", len(pc.frames))
	}
	_, payload, derr := DecodeFrame(pc.frames[0])
	if derr != nil {
		t.Fatal(derr)
	}
	if !bytes.Equal(payload, bytes.Repeat([]byte{0xAA}, 100)) {
		t.Fatal("wire frame reflects the caller's post-Send scribble: Send did not copy")
	}
}

// TestNackChunking drives the gap-list sender with more missing sequences
// than one frame can carry and verifies every chunk is a decodable,
// in-order NACK with no entry lost at the MaxNackEntries boundary.
func TestNackChunking(t *testing.T) {
	clk := newManualClock()
	pc := &stubPC{record: true}
	c, err := DialVia(pc, stubPeer, Config{
		Streams:     []StreamSpec{{ID: 1, Class: core.ClassCritical, Priority: core.PrioHighest}},
		StartBudget: 1e9,
		Clock:       clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	missing := make([]int64, 2*MaxNackEntries+5)
	for i := range missing {
		missing[i] = int64(i)
	}
	c.mu.Lock()
	c.writeNackLocked(1, missing)
	c.mu.Unlock()

	pc.mu.Lock()
	defer pc.mu.Unlock()
	if len(pc.frames) != 3 {
		t.Fatalf("%d NACK frames, want 3 (149+149+5 entries)", len(pc.frames))
	}
	var got []int64
	for i, frame := range pc.frames {
		h, payload, derr := DecodeFrame(frame)
		if derr != nil || h.Type != TypeNack {
			t.Fatalf("chunk %d: %v type %d", i, derr, h.Type)
		}
		seqs, nerr := DecodeNackPayload(payload)
		if nerr != nil {
			t.Fatalf("chunk %d payload: %v", i, nerr)
		}
		got = append(got, seqs...)
	}
	if len(got) != len(missing) {
		t.Fatalf("round-tripped %d entries, want %d", len(got), len(missing))
	}
	for i := range got {
		if got[i] != missing[i] {
			t.Fatalf("entry %d = %d, want %d", i, got[i], missing[i])
		}
	}
}

// TestNackPayloadClampProperty is the satellite property test for the
// NACK codec: for arbitrary gap lists the encoder's output always fits a
// frame, decodes back to the clamped prefix exactly, and the decoder
// rejects counts no conforming encoder can emit.
func TestNackPayloadClampProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(2 * MaxNackEntries)
		missing := make([]int64, n)
		for i := range missing {
			missing[i] = rng.Int63() - rng.Int63()
		}
		p := EncodeNackPayload(missing)
		if len(p) > MaxPayload {
			t.Fatalf("trial %d: encoded %d entries into %d bytes > MaxPayload", trial, n, len(p))
		}
		got, err := DecodeNackPayload(p)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		want := missing
		if len(want) > MaxNackEntries {
			want = want[:MaxNackEntries]
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d entries, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d entry %d: %d != %d", trial, i, got[i], want[i])
			}
		}
	}
	// A count above the clamp cannot come from a conforming encoder.
	over := AppendNackPayload(nil, make([]int64, MaxNackEntries))
	over[0], over[1] = byte(MaxNackEntries+1), byte((MaxNackEntries+1)>>8)
	if _, err := DecodeNackPayload(over); err == nil {
		t.Fatal("decoder accepted a NACK count above MaxNackEntries")
	}
}
