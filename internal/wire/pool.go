package wire

import "sync"

// Buffer pools for the send fast path. Three object classes recycle
// through here:
//
//   - payload buffers: the private copy Send takes of the caller's bytes
//     (capacity MaxPayload). Ownership follows the frame: a reliable
//     frame's buffer lives in its wpending until the sequence leaves the
//     outstanding map; a best-effort frame's buffer is released by the
//     pace loop right after the datagram is written.
//   - frame buffers: the full wire image (header + nonce + ciphertext or
//     plain payload) built immediately before the transport write and
//     released immediately after — transports never retain them.
//   - pending records: the wpending bookkeeping structs of reliable
//     frames.
//
// All pools store pointers so Get/Put themselves do not allocate; see
// DESIGN.md §3g for the ownership rules in full.

// maxFrameLen is the largest possible wire frame: a traced header plus a
// full payload.
const maxFrameLen = HeaderLenTraced + MaxPayload

var payloadPool = sync.Pool{New: func() any {
	b := make([]byte, 0, MaxPayload)
	return &b
}}

var framePool = sync.Pool{New: func() any {
	b := make([]byte, 0, maxFrameLen)
	return &b
}}

var pendingPool = sync.Pool{New: func() any { return new(wpending) }}

// getPayloadBuf copies b into a pooled payload buffer and returns both
// the working slice and the pooled pointer to release later.
func getPayloadBuf(b []byte) ([]byte, *[]byte) {
	pb := payloadPool.Get().(*[]byte)
	buf := append((*pb)[:0], b...)
	*pb = buf
	return buf, pb
}

func putPayloadBuf(pb *[]byte) {
	if pb != nil {
		payloadPool.Put(pb)
	}
}

func getFrameBuf() *[]byte { return framePool.Get().(*[]byte) }

func putFrameBuf(fb *[]byte) { framePool.Put(fb) }

func getPending() *wpending { return pendingPool.Get().(*wpending) }

func putPending(pp *wpending) {
	*pp = wpending{}
	pendingPool.Put(pp)
}
