package wire

import (
	"bytes"
	"encoding/binary"
	"testing"

	"marnet/internal/core"
)

// encodeLegacy hand-rolls the 26-byte v1/v2 layout so the compat tests do
// not depend on AppendFrame's version selection.
func encodeLegacy(version uint8, h Header, payload []byte) []byte {
	buf := make([]byte, HeaderLen+len(payload))
	binary.LittleEndian.PutUint16(buf[0:], Magic)
	buf[2] = version
	buf[3] = h.Type
	binary.LittleEndian.PutUint16(buf[4:], h.Stream)
	buf[6] = h.Class
	buf[7] = h.Prio
	binary.LittleEndian.PutUint64(buf[8:], uint64(h.Seq))
	binary.LittleEndian.PutUint64(buf[16:], h.SendMicro)
	binary.LittleEndian.PutUint16(buf[24:], uint16(len(payload)))
	copy(buf[HeaderLen:], payload)
	return buf
}

// TestDecodeLegacyVersions: a v3-capable decoder accepts frames from v1
// and v2 senders unchanged (zero trace context).
func TestDecodeLegacyVersions(t *testing.T) {
	want := Header{Type: TypeData, Stream: 9, Class: 1, Prio: 2, Seq: 77, SendMicro: 5555, PayloadLen: 5}
	for _, version := range []uint8{1, 2} {
		frame := encodeLegacy(version, want, []byte("hello"))
		h, payload, err := DecodeFrame(frame)
		if err != nil {
			t.Fatalf("v%d decode: %v", version, err)
		}
		if h != want {
			t.Fatalf("v%d header = %+v, want %+v", version, h, want)
		}
		if h.TraceID != 0 || h.SpanID != 0 {
			t.Fatalf("v%d frame must carry no trace context: %+v", version, h)
		}
		if string(payload) != "hello" {
			t.Fatalf("v%d payload = %q", version, payload)
		}
	}
}

// TestUntracedEncodesAsV1: a v3-capable sender without trace context emits
// bytes a legacy (v1-only) decoder would accept — byte-identical to v1.
func TestUntracedEncodesAsV1(t *testing.T) {
	h := Header{Type: TypeAck, Stream: 3, Seq: 12, SendMicro: 900}
	frame, err := AppendFrame(nil, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	legacy := encodeLegacy(Version, h, nil)
	if !bytes.Equal(frame, legacy) {
		t.Fatalf("untraced v3-capable encoding differs from v1:\n got %x\nwant %x", frame, legacy)
	}
	if frame[2] != Version {
		t.Fatalf("version byte = %d, want %d", frame[2], Version)
	}
}

// TestTracedRoundTrip: trace context survives encode/decode and flips the
// version byte to 3 with the 42-byte layout.
func TestTracedRoundTrip(t *testing.T) {
	h := Header{
		Type: TypeData, Stream: 16, Class: 2, Prio: 1, Seq: 1000, SendMicro: 42,
		TraceID: 0xABCDEF, SpanID: 0x123456,
	}
	frame, err := AppendFrame(nil, h, []byte("req"))
	if err != nil {
		t.Fatal(err)
	}
	if frame[2] != VersionTraced {
		t.Fatalf("version byte = %d, want %d", frame[2], VersionTraced)
	}
	if len(frame) != HeaderLenTraced+3 {
		t.Fatalf("frame length = %d, want %d", len(frame), HeaderLenTraced+3)
	}
	got, payload, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	h.PayloadLen = 3
	if got != h || string(payload) != "req" {
		t.Fatalf("round trip: got %+v %q, want %+v", got, payload, h)
	}
}

// TestTracedSealedRoundTrip: the AAD construction must cover the v3
// header (including trace ids), and tampering with a trace id must fail
// authentication.
func TestTracedSealedRoundTrip(t *testing.T) {
	key := bytes.Repeat([]byte{7}, 16)
	s, err := newSealer(key)
	if err != nil {
		t.Fatal(err)
	}
	h := Header{Type: TypeData, Stream: 16, Seq: 5, TraceID: 111, SpanID: 222}
	sealed, err := s.seal(h, []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := s.open(h, sealed)
	if err != nil || string(plain) != "secret" {
		t.Fatalf("open = %q, %v", plain, err)
	}
	tampered := h
	tampered.TraceID = 999
	if _, err := s.open(tampered, sealed); err == nil {
		t.Fatal("tampered trace id must fail authentication")
	}
	// Trace ids change the AAD length path too: an untraced header over
	// the same payload must not authenticate.
	untraced := h
	untraced.TraceID, untraced.SpanID = 0, 0
	if _, err := s.open(untraced, sealed); err == nil {
		t.Fatal("stripping trace context must fail authentication")
	}
}

// TestTracedConnDelivery: trace context crosses a real socket pair and
// appears on the delivered Message; untraced sends deliver zero ids.
func TestTracedConnDelivery(t *testing.T) {
	specs := []StreamSpec{{ID: 1, Class: core.ClassCritical, Priority: core.PrioHighest, Rate: 1e6}}
	got := make(chan Message, 4)
	srv, err := Listen("127.0.0.1:0", Config{
		Streams:   specs,
		OnMessage: func(m Message) { got <- m },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.LocalAddr().String(), Config{Streams: specs})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	if _, err := cli.SendTraced(1, []byte("traced"), 42, 43); err != nil {
		t.Fatal(err)
	}
	m := <-got
	if m.TraceID != 42 || m.SpanID != 43 {
		t.Fatalf("delivered trace context = %d/%d, want 42/43", m.TraceID, m.SpanID)
	}
	if _, err := cli.Send(1, []byte("plain")); err != nil {
		t.Fatal(err)
	}
	m = <-got
	if m.TraceID != 0 || m.SpanID != 0 {
		t.Fatalf("untraced send delivered trace context: %d/%d", m.TraceID, m.SpanID)
	}
}
