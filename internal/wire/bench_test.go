package wire

import (
	"testing"
)

// The two halves of the frame pipeline as plain Go benchmarks, so
// `make bench-smoke` catches regressions (and compile rot) without the
// socket harness. The full end-to-end legs live in RunPipelineBench.

func BenchmarkEncodeSeal(b *testing.B) {
	sl, err := newSealer(benchKey)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 1000)
	fb := getFrameBuf()
	defer putFrameBuf(fb)
	h := Header{Type: TypeData, Stream: 1, Class: 1, Prio: 1}
	b.SetBytes(int64(wireLenSealed(len(payload))))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Seq = int64(i)
		if _, err := sl.appendSealedFrame((*fb)[:0], h, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeOpen(b *testing.B) {
	sl, err := newSealer(benchKey)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 1000)
	fb := getFrameBuf()
	defer putFrameBuf(fb)
	frame, err := sl.appendSealedFrame((*fb)[:0], Header{Type: TypeData, Stream: 1, Class: 1, Prio: 1, Seq: 7}, payload)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, p, derr := DecodeFrame(frame)
		if derr != nil {
			b.Fatal(derr)
		}
		if _, oerr := sl.open(h, p); oerr != nil {
			b.Fatal(oerr)
		}
	}
}
