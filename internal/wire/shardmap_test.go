package wire

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
)

// Shard assignment must be a pure function of (key, shard count): the
// same key always lands on the same shard, and every shard index is
// reachable for a realistic key population.
func TestShardOfStable(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16} {
		seen := make(map[int]bool)
		for i := 0; i < 4096; i++ {
			key := fmt.Sprintf("10.0.%d.%d:%d", i%256, (i*7)%256, 10000+i)
			a := ShardOf(key, n)
			b := ShardOf(key, n)
			if a != b {
				t.Fatalf("ShardOf(%q,%d) unstable: %d then %d", key, n, a, b)
			}
			if a < 0 || a >= nextPow2(n) {
				t.Fatalf("ShardOf(%q,%d) = %d out of range", key, n, a)
			}
			seen[a] = true
		}
		if n > 1 && len(seen) < 2 {
			t.Fatalf("n=%d: all 4096 keys hashed to one shard", n)
		}
	}
}

func nextPow2(n int) int {
	s := 1
	for s < n {
		s <<= 1
	}
	return s
}

func TestShardOfAddrSpread(t *testing.T) {
	const n = 4
	seen := make(map[int]bool)
	for i := 0; i < 64; i++ {
		a := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 20000 + i}
		s := ShardOfAddr(a, n)
		if s < 0 || s >= n {
			t.Fatalf("shard %d out of range", s)
		}
		if s != ShardOfAddr(a, n) {
			t.Fatal("ShardOfAddr unstable")
		}
		seen[s] = true
	}
	if len(seen) < 2 {
		t.Fatal("64 distinct ports all hashed to one shard")
	}
	// IPv4 and its v4-in-v6 mapped form are the same peer and must land
	// on the same shard.
	a4 := &net.UDPAddr{IP: net.IPv4(192, 0, 2, 7).To4(), Port: 443}
	a16 := &net.UDPAddr{IP: net.IPv4(192, 0, 2, 7).To16(), Port: 443}
	if ShardOfAddr(a4, n) != ShardOfAddr(a16, n) {
		t.Fatal("v4 and v4-mapped-v6 forms of one address hashed differently")
	}
}

// Basic single-threaded semantics: Put/Get/Delete/PutIfAbsent/DeleteIf.
func TestShardMapBasics(t *testing.T) {
	m := NewShardMap[int](4)
	if m.Shards() != 4 {
		t.Fatalf("shards = %d, want 4", m.Shards())
	}
	if NewShardMap[int](5).Shards() != 8 {
		t.Fatal("shard count not rounded to power of two")
	}
	m.Put("a", 1)
	if v, ok := m.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d,%v", v, ok)
	}
	if v, inserted := m.PutIfAbsent("a", 2); inserted || v != 1 {
		t.Fatalf("PutIfAbsent on present key: %d,%v", v, inserted)
	}
	if v, inserted := m.PutIfAbsent("b", 3); !inserted || v != 3 {
		t.Fatalf("PutIfAbsent on absent key: %d,%v", v, inserted)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	if m.DeleteIf("a", func(v int) bool { return v == 99 }) {
		t.Fatal("DeleteIf removed under false predicate")
	}
	if !m.DeleteIf("a", func(v int) bool { return v == 1 }) {
		t.Fatal("DeleteIf refused under true predicate")
	}
	m.Delete("b")
	if m.Len() != 0 {
		t.Fatalf("Len = %d after deletes, want 0", m.Len())
	}
}

// Property: resizing never loses an entry and never duplicates one —
// every key readable before a resize is readable after, with the same
// value, under any sequence of grow/shrink steps.
func TestShardMapResizeNoLoss(t *testing.T) {
	m := NewShardMap[int](2)
	const keys = 2000
	for i := 0; i < keys; i++ {
		m.Put(fmt.Sprintf("sess-%d", i), i)
	}
	for _, n := range []int{8, 1, 16, 4, 2, 32} {
		m.Resize(n)
		if got := m.Len(); got != keys {
			t.Fatalf("after Resize(%d): Len = %d, want %d", n, got, keys)
		}
		count := 0
		m.Range(func(k string, v int) bool {
			count++
			return true
		})
		if count != keys {
			t.Fatalf("after Resize(%d): Range visited %d, want %d", n, count, keys)
		}
		for i := 0; i < keys; i += 97 {
			k := fmt.Sprintf("sess-%d", i)
			if v, ok := m.Get(k); !ok || v != i {
				t.Fatalf("after Resize(%d): Get(%s) = %d,%v", n, k, v, ok)
			}
		}
	}
}

// Concurrency property: under concurrent insert/evict/lookup interleaved
// with resizes, no session is lost or double-owned. Each worker owns a
// disjoint key range (exactly like shards owning disjoint peers), inserts
// and deletes only its own keys, and at the end the table must hold
// exactly the keys the workers left behind.
func TestShardMapConcurrentResize(t *testing.T) {
	m := NewShardMap[int](4)
	const (
		workers = 8
		perKey  = 300
	)
	var wg sync.WaitGroup
	finals := make([]map[string]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			mine := make(map[string]int)
			for i := 0; i < perKey; i++ {
				k := fmt.Sprintf("w%d-k%d", w, rng.Intn(100))
				switch rng.Intn(3) {
				case 0:
					v := w*1000 + i
					m.Put(k, v)
					mine[k] = v
				case 1:
					m.Delete(k)
					delete(mine, k)
				default:
					if v, ok := m.Get(k); ok {
						if want, mok := mine[k]; mok && v != want {
							t.Errorf("Get(%s) = %d, want %d", k, v, want)
							return
						}
					}
				}
			}
			finals[w] = mine
		}(w)
	}
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		for _, n := range []int{1, 16, 2, 8, 4, 32, 2, 64, 4} {
			m.Resize(n)
		}
	}()
	wg.Wait()
	rwg.Wait()

	want := make(map[string]int)
	for _, f := range finals {
		for k, v := range f {
			want[k] = v
		}
	}
	if got := m.Len(); got != len(want) {
		t.Fatalf("final Len = %d, want %d", got, len(want))
	}
	for k, v := range want {
		got, ok := m.Get(k)
		if !ok || got != v {
			t.Fatalf("final Get(%s) = %d,%v want %d", k, got, ok, v)
		}
	}
	// And nothing beyond what the workers left: Range must visit exactly
	// the surviving set (no double-ownership of a key across shards).
	seen := make(map[string]bool)
	m.Range(func(k string, v int) bool {
		if seen[k] {
			t.Fatalf("key %s visited twice — double-owned across shards", k)
		}
		seen[k] = true
		if want[k] != v {
			t.Fatalf("Range(%s) = %d, want %d", k, v, want[k])
		}
		return true
	})
	if len(seen) != len(want) {
		t.Fatalf("Range visited %d keys, want %d", len(seen), len(want))
	}
}
