//go:build race

package wire

// raceEnabled reports whether this binary was built with the race
// detector — the package's proxy for "debug build": receive-buffer
// poisoning (packetconn.go) defaults on exactly when racing.
const raceEnabled = true
