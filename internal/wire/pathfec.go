// Cross-path FEC for the path layer (Section VI-D: "a loss on one path
// repairs from the other"). The sender groups the data frames it puts on
// one subflow into parity groups of K and ships M Reed–Solomon repair
// shards over a *different* subflow, so a burst that kills consecutive
// datagrams on one access link leaves the repair information untouched.
// The receiver reassembles groups and regenerates missing inner frames
// without any end-to-end retransmission; the Conn's duplicate filter
// absorbs the case where a presumed-lost original limps in later.
//
// Shard geometry: every data frame becomes the shard [innerLen uint16 |
// inner | zero pad] at the group's shard length (longest member + 2), so
// reconstruction recovers exact frame boundaries. Groups flushed short
// (fewer than K members when the flush timer fires) declare the count in
// the parity header's Actual field; the missing tail shards are implicit
// zeros on both sides.
package wire

import (
	"encoding/binary"
	"sort"

	"marnet/internal/fec"
)

// parityOut is one repair shard ready for encapsulation.
type parityOut struct {
	hdr   PathParityHeader
	shard []byte
}

// fecGroups is the sender side: per-path accumulation of open groups.
type fecGroups struct {
	rs        *fec.RS
	k, m      int
	nextGroup uint32
	open      map[int]*openGroup
}

type openGroup struct {
	id     uint32
	inners [][]byte
	maxLen int
}

func newFECGroups(k, m int) (*fecGroups, error) {
	rs, err := fec.NewRS(k, m)
	if err != nil {
		return nil, err
	}
	return &fecGroups{rs: rs, k: k, m: m, nextGroup: 1, open: make(map[int]*openGroup)}, nil
}

// place assigns the group coordinates for one data frame about to leave
// on path and, when the group fills, returns its repair shards.
func (f *fecGroups) place(path int, inner []byte) (group uint32, index uint8, parity []parityOut) {
	og := f.open[path]
	if og == nil {
		og = &openGroup{id: f.nextGroup}
		f.nextGroup++
		if f.nextGroup == 0 { // group 0 means "ungrouped"
			f.nextGroup = 1
		}
		f.open[path] = og
	}
	index = uint8(len(og.inners))
	og.inners = append(og.inners, append([]byte(nil), inner...))
	if len(inner) > og.maxLen {
		og.maxLen = len(inner)
	}
	group = og.id
	if len(og.inners) == f.k {
		parity = f.encode(og)
		delete(f.open, path)
	}
	return group, index, parity
}

// flush closes every open group that has at least one member — the
// FlushAfter timer's way of protecting a short tail when the data rate
// drops. It returns the repair shards for each closed group.
func (f *fecGroups) flush() []parityOut {
	if len(f.open) == 0 {
		return nil
	}
	paths := make([]int, 0, len(f.open))
	for p := range f.open {
		paths = append(paths, p)
	}
	sort.Ints(paths)
	var out []parityOut
	for _, p := range paths {
		out = append(out, f.encode(f.open[p])...)
		delete(f.open, p)
	}
	return out
}

// encode builds the group's repair shards. Members past Actual are
// implicit zero shards, present on both sides by convention.
func (f *fecGroups) encode(og *openGroup) []parityOut {
	shardLen := og.maxLen + 2
	data := make([][]byte, f.k)
	for i := range data {
		data[i] = make([]byte, shardLen)
		if i < len(og.inners) {
			binary.LittleEndian.PutUint16(data[i], uint16(len(og.inners[i])))
			copy(data[i][2:], og.inners[i])
		}
	}
	repair, err := f.rs.Encode(data)
	if err != nil {
		return nil // cannot happen for valid geometry; fail safe to "no parity"
	}
	out := make([]parityOut, f.m)
	for i := range repair {
		out[i] = parityOut{
			hdr: PathParityHeader{
				Group: og.id, Index: uint8(f.k + i),
				K: uint8(f.k), M: uint8(f.m), Actual: uint8(len(og.inners)),
				ShardLen: uint16(shardLen),
			},
			shard: repair[i],
		}
	}
	return out
}

// fecReassembler is the receiver side: it tracks group membership and
// regenerates missing inner frames when enough shards have arrived.
type fecReassembler struct {
	groups map[uint32]*rxGroup
	// Repaired/Unrepaired count the per-frame outcome of every hole the
	// receiver observed: a repaired hole produced the missing inner frame
	// from parity; an unrepaired one was still missing when its group was
	// evicted.
	Repaired   int64
	Unrepaired int64
}

type rxGroup struct {
	data     map[int][]byte // inner frames by index (originals, copies)
	parity   map[int][]byte
	repaired map[int]bool
	hdr      PathParityHeader
	hasHdr   bool
	maxIndex int
	done     bool // reconstructed; later shards are redundant
}

// maxRxGroups bounds reassembly memory: with K+M <= 16 shards of <= 1.3 kB
// each, 128 live groups is ~2.6 MB worst case.
const maxRxGroups = 128

func newFECReassembler() *fecReassembler {
	return &fecReassembler{groups: make(map[uint32]*rxGroup)}
}

func (r *fecReassembler) group(id uint32) *rxGroup {
	g := r.groups[id]
	if g == nil {
		g = &rxGroup{data: make(map[int][]byte), parity: make(map[int][]byte), repaired: make(map[int]bool), maxIndex: -1}
		r.groups[id] = g
		r.evict()
	}
	return g
}

// onData records one delivered group member and returns any inner frames
// a waiting parity shard can now regenerate.
func (r *fecReassembler) onData(group uint32, index uint8, inner []byte) [][]byte {
	if group == 0 {
		return nil
	}
	g := r.group(group)
	if g.done || g.data[int(index)] != nil {
		return nil
	}
	g.data[int(index)] = append([]byte(nil), inner...)
	if int(index) > g.maxIndex {
		g.maxIndex = int(index)
	}
	return r.tryReconstruct(group, g)
}

// onParity records one repair shard and returns any regenerated inner
// frames.
func (r *fecReassembler) onParity(hdr PathParityHeader, shard []byte) [][]byte {
	// Re-validate geometry even though DecodePathParity already did: the
	// reassembler must be safe standalone, whatever handed it the header.
	if hdr.Group == 0 || hdr.K == 0 || hdr.M == 0 || int(hdr.K)+int(hdr.M) > 255 ||
		hdr.Actual > hdr.K || hdr.Index < hdr.K || int(hdr.Index) >= int(hdr.K)+int(hdr.M) ||
		hdr.ShardLen < 2 || len(shard) != int(hdr.ShardLen) {
		return nil
	}
	g := r.group(hdr.Group)
	if g.done {
		return nil
	}
	if !g.hasHdr {
		g.hdr, g.hasHdr = hdr, true
	} else if g.hdr.K != hdr.K || g.hdr.M != hdr.M || g.hdr.ShardLen != hdr.ShardLen {
		return nil // inconsistent geometry: drop the shard, keep the group
	}
	if g.parity[int(hdr.Index)] == nil {
		g.parity[int(hdr.Index)] = append([]byte(nil), shard...)
	}
	return r.tryReconstruct(hdr.Group, g)
}

// tryReconstruct runs the erasure decode once the group's geometry is
// known and enough shards are on hand, returning the regenerated missing
// inner frames in index order.
func (r *fecReassembler) tryReconstruct(id uint32, g *rxGroup) [][]byte {
	if !g.hasHdr || g.done {
		return nil
	}
	k, m, actual := int(g.hdr.K), int(g.hdr.M), int(g.hdr.Actual)
	missing := 0
	for i := 0; i < actual; i++ {
		if g.data[i] == nil {
			missing++
		}
	}
	if missing == 0 {
		g.done = true
		return nil
	}
	shardLen := int(g.hdr.ShardLen)
	present := 0
	shards := make([][]byte, k+m)
	for i := 0; i < k; i++ {
		switch {
		case i >= actual: // implicit zero shard of a short-flushed group
			shards[i] = make([]byte, shardLen)
			present++
		case g.data[i] != nil:
			if len(g.data[i])+2 > shardLen {
				return nil // geometry mismatch: wait for consistent shards
			}
			img := make([]byte, shardLen)
			binary.LittleEndian.PutUint16(img, uint16(len(g.data[i])))
			copy(img[2:], g.data[i])
			shards[i] = img
			present++
		}
	}
	for i, p := range g.parity {
		if i < k+m && len(p) == shardLen {
			shards[i] = p
			present++
		}
	}
	if present < k {
		return nil
	}
	rs, err := fec.NewRS(k, m)
	if err != nil {
		return nil
	}
	recovered, err := rs.Reconstruct(shards)
	if err != nil {
		return nil
	}
	var out [][]byte
	for i := 0; i < actual; i++ {
		if g.data[i] != nil || g.repaired[i] {
			continue
		}
		n := int(binary.LittleEndian.Uint16(recovered[i]))
		if n > shardLen-2 {
			continue // corrupt length prefix; skip this frame
		}
		g.repaired[i] = true
		r.Repaired++
		out = append(out, append([]byte(nil), recovered[i][2:2+n]...))
	}
	g.done = true
	return out
}

// evict drops the oldest groups past the retention bound, charging every
// still-missing member to the Unrepaired counter. Group ids are
// monotonically increasing at the sender, so "oldest" is "smallest id".
func (r *fecReassembler) evict() {
	if len(r.groups) <= maxRxGroups {
		return
	}
	ids := make([]int, 0, len(r.groups))
	for id := range r.groups {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids[:len(r.groups)-maxRxGroups] {
		r.finish(uint32(id))
	}
}

// finish closes one group, accounting holes that were never repaired.
func (r *fecReassembler) finish(id uint32) {
	g := r.groups[id]
	if g == nil {
		return
	}
	if !g.done {
		expected := g.maxIndex + 1
		if g.hasHdr {
			expected = int(g.hdr.Actual)
		}
		for i := 0; i < expected; i++ {
			if g.data[i] == nil && !g.repaired[i] {
				r.Unrepaired++
			}
		}
	}
	delete(r.groups, id)
}

// drain finalizes every live group (teardown accounting).
func (r *fecReassembler) drain() {
	ids := make([]int, 0, len(r.groups))
	for id := range r.groups {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		r.finish(uint32(id))
	}
}
