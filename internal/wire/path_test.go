package wire

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"marnet/internal/core"
)

// --- codec -----------------------------------------------------------------

func TestPathCodecDataRoundTrip(t *testing.T) {
	inner, err := AppendFrame(nil, Header{Type: TypeData, Stream: 3, Class: uint8(core.ClassLossRecovery),
		Prio: uint8(core.PrioHighest), Seq: 42}, []byte("pose-update"))
	if err != nil {
		t.Fatal(err)
	}
	frame := AppendPathData(nil, 0xDEADBEEF, 1, 77, 3, inner)
	if !IsPathFrame(frame) {
		t.Fatal("encoded path frame not recognized")
	}
	if DecodeFrame(frame); true {
		if _, _, err := DecodeFrame(frame); err == nil {
			t.Fatal("path frame must not decode as a plain ARTP frame")
		}
	}
	hdr, body, err := DecodePathHeader(frame)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Kind != PathKindData || hdr.Session != 0xDEADBEEF || hdr.PathID != 1 {
		t.Fatalf("header mismatch: %+v", hdr)
	}
	group, index, gotInner, err := DecodePathData(body)
	if err != nil {
		t.Fatal(err)
	}
	if group != 77 || index != 3 || !bytes.Equal(gotInner, inner) {
		t.Fatalf("data mismatch: group=%d index=%d", group, index)
	}
}

func TestPathCodecProbeRoundTrip(t *testing.T) {
	p := PathProbe{Seq: 9, SendMicro: 123456, SRTTMicro: 4200, IntervalMicro: 50000, State: uint8(PathDegraded)}
	for _, kind := range []uint8{PathKindProbe, PathKindProbeAck} {
		frame := AppendPathProbe(nil, kind, 7, 0, p)
		hdr, body, err := DecodePathHeader(frame)
		if err != nil || hdr.Kind != kind {
			t.Fatalf("kind %d: %v %+v", kind, err, hdr)
		}
		got, err := DecodePathProbe(body)
		if err != nil || got != p {
			t.Fatalf("probe mismatch: %v %+v", err, got)
		}
	}
}

func TestPathCodecParityRoundTrip(t *testing.T) {
	shard := bytes.Repeat([]byte{0xAB}, 64)
	h := PathParityHeader{Group: 5, Index: 4, K: 4, M: 2, Actual: 3, ShardLen: 64}
	frame := AppendPathParity(nil, 99, 1, h, shard)
	hdr, body, err := DecodePathHeader(frame)
	if err != nil || hdr.Kind != PathKindParity {
		t.Fatal(err)
	}
	got, gotShard, err := DecodePathParity(body)
	if err != nil || got != h || !bytes.Equal(gotShard, shard) {
		t.Fatalf("parity mismatch: %v %+v", err, got)
	}
}

func TestPathCodecRejectsGarbage(t *testing.T) {
	if IsPathFrame([]byte{1, 2, 3}) {
		t.Fatal("short buffer recognized as path frame")
	}
	plain, _ := AppendFrame(nil, Header{Type: TypeData, Stream: 1, Seq: 1}, []byte("x"))
	if IsPathFrame(plain) {
		t.Fatal("plain ARTP frame recognized as path frame")
	}
	if _, _, err := DecodePathHeader(plain); !errors.Is(err, ErrNotPathFrame) {
		t.Fatalf("want ErrNotPathFrame, got %v", err)
	}
	bad := AppendPathData(nil, 1, 0, 0, 0, []byte("x"))
	bad[3] = 99 // unknown kind
	if _, _, err := DecodePathHeader(bad); !errors.Is(err, ErrBadPathKind) {
		t.Fatalf("want ErrBadPathKind, got %v", err)
	}
	if _, _, _, err := DecodePathData([]byte{1, 2}); !errors.Is(err, ErrPathTruncated) {
		t.Fatalf("want ErrPathTruncated, got %v", err)
	}
	// Parity geometry violations must all be rejected.
	shard := make([]byte, 8)
	for _, h := range []PathParityHeader{
		{Group: 0, Index: 4, K: 4, M: 2, ShardLen: 8},  // group 0 reserved
		{Group: 1, Index: 2, K: 4, M: 2, ShardLen: 8},  // index below K
		{Group: 1, Index: 6, K: 4, M: 2, ShardLen: 8},  // index past K+M
		{Group: 1, Index: 4, K: 4, M: 2, Actual: 5, ShardLen: 8}, // actual > K
		{Group: 1, Index: 4, K: 0, M: 2, ShardLen: 8},  // zero K
		{Group: 1, Index: 4, K: 4, M: 0, ShardLen: 8},  // zero M
	} {
		frame := AppendPathParity(nil, 1, 0, h, shard)
		_, body, err := DecodePathHeader(frame)
		if err != nil {
			continue // bad kind paths can't even build; fine
		}
		if _, _, err := DecodePathParity(body); err == nil {
			t.Fatalf("geometry %+v accepted", h)
		}
	}
	// Truncated shard.
	ok := AppendPathParity(nil, 1, 0, PathParityHeader{Group: 1, Index: 4, K: 4, M: 2, ShardLen: 8}, shard)
	_, body, _ := DecodePathHeader(ok[:len(ok)-3])
	if _, _, err := DecodePathParity(body); err == nil {
		t.Fatal("truncated shard accepted")
	}
}

// --- cross-path FEC --------------------------------------------------------

// innerFrame builds a distinguishable reliable data frame.
func innerFrame(t testing.TB, seq int64, size int) []byte {
	t.Helper()
	payload := bytes.Repeat([]byte{byte(seq)}, size)
	f, err := AppendFrame(nil, Header{Type: TypeData, Stream: 2, Class: uint8(core.ClassLossRecovery),
		Prio: uint8(core.PrioHighest), Seq: seq}, payload)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestPathFECRepairsDrops(t *testing.T) {
	tx, err := newFECGroups(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	rx := newFECReassembler()

	type sent struct {
		group  uint32
		index  uint8
		inner  []byte
		parity []parityOut
	}
	var frames []sent
	for seq := int64(0); seq < 4; seq++ {
		inner := innerFrame(t, seq, 40+10*int(seq)) // unequal sizes exercise padding
		g, i, parity := tx.place(0, inner)
		frames = append(frames, sent{g, i, inner, parity})
	}
	if frames[3].parity == nil {
		t.Fatal("full group emitted no parity")
	}
	// Deliver frames 0 and 3; drop 1 and 2 (a 2-burst); then the parity.
	var recovered [][]byte
	recovered = append(recovered, rx.onData(frames[0].group, frames[0].index, frames[0].inner)...)
	recovered = append(recovered, rx.onData(frames[3].group, frames[3].index, frames[3].inner)...)
	for _, p := range frames[3].parity {
		recovered = append(recovered, rx.onParity(p.hdr, p.shard)...)
	}
	if len(recovered) != 2 {
		t.Fatalf("recovered %d frames, want 2", len(recovered))
	}
	if !bytes.Equal(recovered[0], frames[1].inner) || !bytes.Equal(recovered[1], frames[2].inner) {
		t.Fatal("recovered frames do not match the dropped originals")
	}
	if rx.Repaired != 2 || rx.Unrepaired != 0 {
		t.Fatalf("accounting: repaired=%d unrepaired=%d", rx.Repaired, rx.Unrepaired)
	}
}

func TestPathFECShortFlush(t *testing.T) {
	tx, _ := newFECGroups(4, 2)
	rx := newFECReassembler()
	a := innerFrame(t, 1, 30)
	b := innerFrame(t, 2, 50)
	g1, _, parity := tx.place(0, a)
	if parity != nil {
		t.Fatal("premature parity")
	}
	tx.place(0, b)
	out := tx.flush()
	if len(out) != 2 {
		t.Fatalf("flush produced %d shards, want 2", len(out))
	}
	if out[0].hdr.Actual != 2 || out[0].hdr.K != 4 {
		t.Fatalf("short-flush header: %+v", out[0].hdr)
	}
	// Drop frame a entirely; parity + frame b must still regenerate it,
	// because indexes 2..3 are implicit zero shards.
	rx.onData(g1, 1, b)
	var rec [][]byte
	for _, p := range out {
		rec = append(rec, rx.onParity(p.hdr, p.shard)...)
	}
	if len(rec) != 1 || !bytes.Equal(rec[0], a) {
		t.Fatalf("short-flush repair failed: %d frames", len(rec))
	}
}

func TestPathFECUnrepairedAccounting(t *testing.T) {
	tx, _ := newFECGroups(2, 1)
	rx := newFECReassembler()
	a := innerFrame(t, 1, 20)
	b := innerFrame(t, 2, 20)
	g, _, _ := tx.place(0, a)
	_, _, parity := tx.place(0, b)
	// Both data frames lost, only parity arrives: 1 shard of 2 needed.
	for _, p := range parity {
		if got := rx.onParity(p.hdr, p.shard); got != nil {
			t.Fatal("impossible reconstruction")
		}
	}
	rx.drain()
	if rx.Unrepaired != 2 {
		t.Fatalf("unrepaired=%d want 2 (group %d)", rx.Unrepaired, g)
	}
}

// --- hub: a deterministic in-memory multi-endpoint network -----------------

// hub connects named endpoints; writes deliver synchronously to the
// destination's recv callback. drop() installs directional loss.
type hub struct {
	mu   sync.Mutex
	eps  map[string]*hubEP
	drop func(src, dst *net.UDPAddr, pkt []byte) bool
}

type hubEP struct {
	h      *hub
	addr   *net.UDPAddr
	recv   func([]byte, *net.UDPAddr)
	closed bool
}

func newHub() *hub { return &hub{eps: make(map[string]*hubEP)} }

func (h *hub) endpoint(port int) *hubEP {
	ep := &hubEP{h: h, addr: &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: port}}
	h.mu.Lock()
	h.eps[ep.addr.String()] = ep
	h.mu.Unlock()
	return ep
}

func (e *hubEP) WriteToUDP(b []byte, addr *net.UDPAddr) (int, error) {
	e.h.mu.Lock()
	dst := e.h.eps[addr.String()]
	drop := e.h.drop
	e.h.mu.Unlock()
	if dst == nil || dst.closed || dst.recv == nil {
		return len(b), nil
	}
	if drop != nil && drop(e.addr, addr, b) {
		return len(b), nil
	}
	cp := append([]byte(nil), b...)
	dst.recv(cp, e.addr)
	return len(b), nil
}

func (e *hubEP) LocalAddr() net.Addr                            { return e.addr }
func (e *hubEP) Close() error                                   { e.closed = true; return nil }
func (e *hubEP) Start(fn func(pkt []byte, from *net.UDPAddr))   { e.recv = fn }
func (e *hubEP) Synchronous() bool                              { return true }

// --- path set state machine ------------------------------------------------

func TestPathSetProbeStateMachine(t *testing.T) {
	clock := newManualClock()
	h := newHub()
	wifi, lte := h.endpoint(1), h.endpoint(2)
	server := h.endpoint(100)
	// The server endpoint answers probes like a router would.
	server.Start(func(pkt []byte, from *net.UDPAddr) {
		if IsPathFrame(pkt) {
			if hdr, _, err := DecodePathHeader(pkt); err == nil && hdr.Kind == PathKindProbe {
				ack := append([]byte(nil), pkt...)
				ack[3] = PathKindProbeAck
				server.WriteToUDP(ack, from)
			}
		}
	})

	var transitions []string
	var tmu sync.Mutex
	ps, err := NewPathSet(
		[]PathConf{{Name: "wifi", PC: wifi}, {Name: "lte", PC: lte}},
		PathSetConfig{
			Session: 11, Clock: clock, Peer: server.addr,
			ProbeInterval: 50 * time.Millisecond, ProbeMiss: 2,
			OnPathState: func(path string, st PathState) {
				tmu.Lock()
				transitions = append(transitions, fmt.Sprintf("%s:%s", path, st))
				tmu.Unlock()
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	ps.Start(func([]byte, *net.UDPAddr) {})

	for i := 0; i < 4; i++ {
		clock.advance(50 * time.Millisecond)
	}
	st := ps.Stats()
	for _, p := range st.Paths {
		if p.State != PathUp || p.ProbesAcked == 0 || p.SRTT != 0 {
			// Synchronous hub: RTT is 0 virtual time, SRTT stays 0 — but
			// acks must have landed and the path must be up.
			if p.State != PathUp || p.ProbesAcked == 0 {
				t.Fatalf("path %s not healthy: %+v", p.Name, p)
			}
		}
	}

	// Blackhole wifi in both directions.
	h.mu.Lock()
	h.drop = func(src, dst *net.UDPAddr, _ []byte) bool {
		return src.String() == wifi.addr.String() || dst.String() == wifi.addr.String()
	}
	h.mu.Unlock()

	// Two unanswered probes declare the path down; one more fire moves it
	// to probing.
	for i := 0; i < 3; i++ {
		clock.advance(50 * time.Millisecond)
	}
	st = ps.Stats()
	if st.Paths[0].State != PathDown && st.Paths[0].State != PathProbing {
		t.Fatalf("wifi should be down/probing, is %s", st.Paths[0].State)
	}
	if st.Paths[1].State != PathUp {
		t.Fatalf("lte should be up, is %s", st.Paths[1].State)
	}
	if st.Paths[0].Downs != 1 {
		t.Fatalf("wifi downs=%d want 1", st.Paths[0].Downs)
	}

	// Heal the network: the next answered probe revives the path.
	h.mu.Lock()
	h.drop = nil
	h.mu.Unlock()
	clock.advance(50 * time.Millisecond)
	if got := ps.Stats().Paths[0].State; got != PathUp {
		t.Fatalf("wifi should recover to up, is %s", got)
	}

	tmu.Lock()
	defer tmu.Unlock()
	want := []string{"wifi:down", "wifi:probing", "wifi:up"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions %v, want %v", transitions, want)
		}
	}
}

func TestPathSetFailoverEvacuatesInflight(t *testing.T) {
	clock := newManualClock()
	h := newHub()
	wifi, lte := h.endpoint(1), h.endpoint(2)
	server := h.endpoint(100)
	server.Start(func([]byte, *net.UDPAddr) {}) // mute server: nothing acked

	ps, err := NewPathSet(
		[]PathConf{{Name: "wifi", PC: wifi}, {Name: "lte", PC: lte}},
		PathSetConfig{Session: 12, Clock: clock, Peer: server.addr,
			ProbeInterval: 50 * time.Millisecond, ProbeMiss: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	ps.Start(func([]byte, *net.UDPAddr) {})

	var requeued []frameKey
	ps.mu.Lock()
	ps.requeue = func(keys []frameKey) { requeued = append(requeued, keys...) }
	// Pin wifi as the best path so the reliable frames land on it.
	ps.paths[0].srtt = 5 * time.Millisecond
	ps.paths[1].srtt = 30 * time.Millisecond
	ps.mu.Unlock()

	for seq := int64(0); seq < 3; seq++ {
		if _, err := ps.WriteToUDP(innerFrame(t, seq, 32), server.addr); err != nil {
			t.Fatal(err)
		}
	}
	// No probe was ever answered (mute server): after ProbeMiss fires the
	// first path to be declared down evacuates its in-flight frames.
	clock.advance(50 * time.Millisecond)
	clock.advance(50 * time.Millisecond)
	clock.advance(50 * time.Millisecond)
	if len(requeued) != 3 {
		t.Fatalf("requeued %d frames, want 3 (stats: %+v)", len(requeued), ps.Stats())
	}
	for i, k := range requeued {
		if k.stream != 2 || k.seq != int64(i) {
			t.Fatalf("requeued[%d] = %+v, want stream 2 seq %d (deterministic order)", i, k, i)
		}
	}
	if got := ps.Stats().FailoverFrames; got != 3 {
		t.Fatalf("FailoverFrames=%d want 3", got)
	}
}

func TestPathSetInteractivePinningAndStriping(t *testing.T) {
	clock := newManualClock()
	h := newHub()
	wifi, lte := h.endpoint(1), h.endpoint(2)
	server := h.endpoint(100)
	var got []uint8 // path id of each delivered data frame
	server.Start(func(pkt []byte, _ *net.UDPAddr) {
		if hdr, _, err := DecodePathHeader(pkt); err == nil && hdr.Kind == PathKindData {
			got = append(got, hdr.PathID)
		}
	})

	ps, err := NewPathSet(
		[]PathConf{{Name: "wifi", PC: wifi}, {Name: "lte", PC: lte}},
		PathSetConfig{Session: 13, Clock: clock, Peer: server.addr, Stripe: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	ps.Start(func([]byte, *net.UDPAddr) {})
	ps.mu.Lock()
	ps.paths[0].srtt = 5 * time.Millisecond
	ps.paths[1].srtt = 30 * time.Millisecond
	ps.mu.Unlock()

	// Band-0 (interactive) frames all pin to wifi, the lowest-SRTT path.
	for seq := int64(0); seq < 5; seq++ {
		ps.WriteToUDP(innerFrame(t, seq, 16), server.addr)
	}
	for i, id := range got {
		if id != 0 {
			t.Fatalf("interactive frame %d went to path %d, want 0", i, id)
		}
	}

	// Bulk (band-1, best-effort) frames stripe across both live paths.
	got = got[:0]
	for seq := int64(0); seq < 10; seq++ {
		payload := []byte("bulk")
		f, _ := AppendFrame(nil, Header{Type: TypeData, Stream: 5, Class: uint8(core.ClassFullBestEffort),
			Prio: uint8(core.PrioNoDelay), Seq: seq}, payload)
		ps.WriteToUDP(f, server.addr)
	}
	counts := map[uint8]int{}
	for _, id := range got {
		counts[id]++
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("bulk frames did not stripe: %v", counts)
	}
}

// --- router ----------------------------------------------------------------

func TestPathRouterEndToEnd(t *testing.T) {
	clock := newManualClock()
	h := newHub()
	wifi, lte := h.endpoint(1), h.endpoint(2)
	serverEP := h.endpoint(100)

	router := NewPathRouter(serverEP, RouterConfig{Clock: clock})
	var serverGot [][]byte
	var serverFrom []*net.UDPAddr
	router.Start(func(pkt []byte, from *net.UDPAddr) {
		serverGot = append(serverGot, append([]byte(nil), pkt...))
		serverFrom = append(serverFrom, from)
	})
	defer router.Close()

	ps, err := NewPathSet(
		[]PathConf{{Name: "wifi", PC: wifi}, {Name: "lte", PC: lte}},
		PathSetConfig{Session: 21, Clock: clock, Peer: serverEP.addr,
			ProbeInterval: 50 * time.Millisecond, FEC: PathFEC{K: 2, M: 1}},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	var clientGot [][]byte
	ps.Start(func(pkt []byte, _ *net.UDPAddr) {
		clientGot = append(clientGot, append([]byte(nil), pkt...))
	})

	// Probes teach the router the client's paths and give the client RTTs.
	clock.advance(50 * time.Millisecond)
	if st := router.Stats(); st.Sessions != 1 || st.ProbesAnswered != 2 {
		t.Fatalf("router after probes: %+v", st)
	}

	// Uplink data arrives at the server under the canonical address, no
	// matter which subflow carried it.
	in1, in2 := innerFrame(t, 1, 40), innerFrame(t, 2, 40)
	ps.WriteToUDP(in1, serverEP.addr)
	ps.WriteToUDP(in2, serverEP.addr)
	if len(serverGot) != 2 {
		t.Fatalf("server saw %d frames, want 2", len(serverGot))
	}
	if !bytes.Equal(serverGot[0], in1) || !bytes.Equal(serverGot[1], in2) {
		t.Fatal("inner frames corrupted in transit")
	}
	canon := canonicalAddr(21)
	for _, from := range serverFrom {
		if from.String() != canon.String() {
			t.Fatalf("delivery from %v, want canonical %v", from, canon)
		}
	}

	// Downlink: writing to the canonical address routes onto a client path.
	down := innerFrame(t, 3, 40)
	if _, err := router.WriteToUDP(down, canon); err != nil {
		t.Fatal(err)
	}
	if len(clientGot) != 1 || !bytes.Equal(clientGot[0], down) {
		t.Fatalf("client saw %d downlink frames", len(clientGot))
	}

	// A legacy (non-path) datagram passes straight through.
	plain, _ := AppendFrame(nil, Header{Type: TypePing, Stream: 0, Seq: 0}, nil)
	legacy := h.endpoint(7)
	legacy.WriteToUDP(plain, serverEP.addr)
	if st := router.Stats(); st.Passthrough != 1 {
		t.Fatalf("passthrough=%d want 1", st.Passthrough)
	}
	if !bytes.Equal(serverGot[len(serverGot)-1], plain) {
		t.Fatal("legacy datagram not delivered verbatim")
	}
}

func TestPathRouterFECRepairsUplinkBurst(t *testing.T) {
	clock := newManualClock()
	h := newHub()
	wifi, lte := h.endpoint(1), h.endpoint(2)
	serverEP := h.endpoint(100)

	router := NewPathRouter(serverEP, RouterConfig{Clock: clock})
	var serverSeqs []int64
	router.Start(func(pkt []byte, _ *net.UDPAddr) {
		if hdr, _, err := DecodeFrame(pkt); err == nil && hdr.Type == TypeData {
			serverSeqs = append(serverSeqs, hdr.Seq)
		}
	})
	defer router.Close()

	ps, err := NewPathSet(
		[]PathConf{{Name: "wifi", PC: wifi}, {Name: "lte", PC: lte}},
		PathSetConfig{Session: 22, Clock: clock, Peer: serverEP.addr,
			ProbeInterval: 50 * time.Millisecond, FEC: PathFEC{K: 4, M: 2}},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	ps.Start(func([]byte, *net.UDPAddr) {})
	clock.advance(50 * time.Millisecond) // register both paths

	// Burst-drop data frames 1 and 2 on the wifi subflow only; parity
	// (which rides the other path) must regenerate them.
	var dropped int
	h.mu.Lock()
	h.drop = func(src, _ *net.UDPAddr, pkt []byte) bool {
		if src.String() != wifi.addr.String() || !IsPathFrame(pkt) {
			return false
		}
		hdr, body, err := DecodePathHeader(pkt)
		if err != nil || hdr.Kind != PathKindData {
			return false
		}
		_, _, inner, err := DecodePathData(body)
		if err != nil {
			return false
		}
		ih, _, err := DecodeFrame(inner)
		if err == nil && (ih.Seq == 1 || ih.Seq == 2) {
			dropped++
			return true
		}
		return false
	}
	h.mu.Unlock()

	for seq := int64(0); seq < 4; seq++ {
		ps.WriteToUDP(innerFrame(t, seq, 48), serverEP.addr)
	}
	if dropped != 2 {
		t.Fatalf("dropped %d frames, want 2", dropped)
	}
	if len(serverSeqs) != 4 {
		t.Fatalf("server saw %d data frames, want 4 (repair failed): %v", len(serverSeqs), serverSeqs)
	}
	if st := router.Stats(); st.FECRepaired != 2 {
		t.Fatalf("router repaired=%d want 2", st.FECRepaired)
	}
}

// TestPathSetConnFailover runs a real Conn over a PathSet against a
// router-fronted Conn and kills the primary path mid-stream: the session
// must keep delivering without a reset and the failover hook must fire.
func TestPathSetConnFailover(t *testing.T) {
	clock := newManualClock()
	h := newHub()
	wifi, lte := h.endpoint(1), h.endpoint(2)
	serverEP := h.endpoint(100)

	router := NewPathRouter(serverEP, RouterConfig{Clock: clock})
	streams := []StreamSpec{{ID: 2, Class: core.ClassLossRecovery,
		Priority: core.PrioHighest, Rate: 1e6}}
	var gotMu sync.Mutex
	got := map[int64]bool{}
	srv, err := ListenVia(router, Config{Streams: streams, Clock: clock,
		OnMessage: func(m Message) {
			gotMu.Lock()
			got[m.Seq] = true
			gotMu.Unlock()
		}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ps, err := NewPathSet(
		[]PathConf{{Name: "wifi", PC: wifi}, {Name: "lte", PC: lte}},
		PathSetConfig{Session: 31, Clock: clock, Peer: serverEP.addr,
			ProbeInterval: 25 * time.Millisecond, ProbeMiss: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := DialVia(ps, serverEP.addr, Config{Streams: streams, Clock: clock, RetxLimit: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	clock.advance(25 * time.Millisecond) // let probes register the paths
	send := func(seq int64) {
		ok, err := cli.Send(2, bytes.Repeat([]byte{byte(seq)}, 64))
		if err != nil || !ok {
			t.Fatalf("send %d: admitted=%v err=%v", seq, ok, err)
		}
		clock.advance(5 * time.Millisecond)
	}
	for seq := int64(0); seq < 5; seq++ {
		send(seq)
	}

	// Kill wifi (the lower-index path both sides prefer while SRTTs tie).
	h.mu.Lock()
	h.drop = func(src, dst *net.UDPAddr, _ []byte) bool {
		return src.String() == wifi.addr.String() || dst.String() == wifi.addr.String()
	}
	h.mu.Unlock()
	for seq := int64(5); seq < 10; seq++ {
		send(seq)
	}
	// Step in probe-interval increments (manualClock.advance fires a
	// self-rearming chain at most once per call): probes declare wifi
	// down, the evacuation requeues, and the pace/sweep chains resend.
	for i := 0; i < 12; i++ {
		clock.advance(25 * time.Millisecond)
	}

	gotMu.Lock()
	defer gotMu.Unlock()
	for seq := int64(0); seq < 10; seq++ {
		if !got[seq] {
			t.Fatalf("seq %d never delivered after failover (got %v, stats %+v)", seq, got, ps.Stats())
		}
	}
	if ps.Stats().Paths[0].Downs == 0 {
		t.Fatal("wifi was never declared down")
	}
}
