package wire

import (
	"net"
	"sync"
)

// PacketConn abstracts the datagram socket under a Conn or Mux so the
// identical protocol code runs over a real kernel UDP socket or the
// in-memory simulated network in internal/marsim. Implementations must be
// safe for concurrent WriteToUDP calls.
//
// Implementations may additionally satisfy BatchWriter (see batch.go);
// senders only coalesce frames when they do.
type PacketConn interface {
	// WriteToUDP transmits one datagram to addr.
	WriteToUDP(b []byte, addr *net.UDPAddr) (int, error)
	// LocalAddr reports the bound local address.
	LocalAddr() net.Addr
	// Close releases the transport. After Close returns, the recv callback
	// installed by Start will not be invoked again.
	Close() error
	// Start installs the inbound delivery callback and begins delivery. It
	// must be called at most once. The callback may retain pkt only for the
	// duration of the call (the buffer is reused).
	Start(recv func(pkt []byte, from *net.UDPAddr))
	// Synchronous reports whether datagrams are delivered from a
	// deterministic single-threaded event loop (a simulation) rather than a
	// reader goroutine. Synchronous transports need no per-peer buffering in
	// the mux, and connections over them schedule all their periodic work on
	// the injected clock instead of goroutines.
	Synchronous() bool
}

// recvBufLen sizes each receive buffer. The largest conforming ARTP frame
// is maxFrameLen (1242) bytes; 2048 leaves room to *observe* an oversized
// datagram (and reject it in DecodeFrame) instead of silently truncating
// it into something that might parse.
const recvBufLen = 2048

// poisonRecvBuffers, when true, overwrites every receive buffer with the
// poisonByte pattern after the delivery callback returns. The PacketConn
// contract says the callback may retain pkt only for the duration of the
// call; a caller that squirrels the slice away anyway appears to work —
// until the buffer is reused and its data mutates at a distance. Poisoning
// turns that latent corruption into an immediate, deterministic test
// failure (the retained bytes become 0xDB 0xDB ...). It defaults on under
// the race detector (debug builds, `make race`) and off in production
// builds; tests may flip it explicitly.
var poisonRecvBuffers = raceEnabled

const poisonByte = 0xDB

func poisonBuf(b []byte) {
	if !poisonRecvBuffers {
		return
	}
	for i := range b {
		b[i] = poisonByte
	}
}

// udpPacketConn is the production PacketConn: a kernel UDP socket plus one
// reader goroutine. On Linux it reads and writes in batches (recvmmsg /
// sendmmsg) through batchIO; elsewhere batchIO is absent and it falls back
// to one system call per datagram.
type udpPacketConn struct {
	sock *net.UDPConn
	bio  *batchIO // nil when the platform has no batch syscalls
	wg   sync.WaitGroup
}

func newUDPPacketConn(sock *net.UDPConn) *udpPacketConn {
	return &udpPacketConn{sock: sock, bio: newBatchIO(sock)}
}

func (u *udpPacketConn) WriteToUDP(b []byte, addr *net.UDPAddr) (int, error) {
	return u.sock.WriteToUDP(b, addr)
}

// WriteBatch implements BatchWriter: one sendmmsg per batch on Linux, a
// plain loop elsewhere (or for addresses the raw path cannot encode).
func (u *udpPacketConn) WriteBatch(dgs []Datagram) (int, error) {
	if u.bio != nil {
		return u.bio.writeBatch(dgs)
	}
	return writeBatchLoop(u, dgs)
}

func (u *udpPacketConn) LocalAddr() net.Addr { return u.sock.LocalAddr() }

func (u *udpPacketConn) Synchronous() bool { return false }

func (u *udpPacketConn) Start(recv func(pkt []byte, from *net.UDPAddr)) {
	u.wg.Add(1)
	go func() {
		defer u.wg.Done()
		if u.bio != nil {
			u.bio.readLoop(recv)
			return
		}
		buf := make([]byte, recvBufLen)
		for {
			n, raddr, err := u.sock.ReadFromUDP(buf)
			if err != nil {
				return // closed
			}
			recv(buf[:n], raddr)
			poisonBuf(buf[:n])
		}
	}()
}

func (u *udpPacketConn) Close() error {
	err := u.sock.Close()
	u.wg.Wait()
	return err
}
