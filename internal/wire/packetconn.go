package wire

import (
	"net"
	"sync"
)

// PacketConn abstracts the datagram socket under a Conn or Mux so the
// identical protocol code runs over a real kernel UDP socket or the
// in-memory simulated network in internal/marsim. Implementations must be
// safe for concurrent WriteToUDP calls.
type PacketConn interface {
	// WriteToUDP transmits one datagram to addr.
	WriteToUDP(b []byte, addr *net.UDPAddr) (int, error)
	// LocalAddr reports the bound local address.
	LocalAddr() net.Addr
	// Close releases the transport. After Close returns, the recv callback
	// installed by Start will not be invoked again.
	Close() error
	// Start installs the inbound delivery callback and begins delivery. It
	// must be called at most once. The callback may retain pkt only for the
	// duration of the call (the buffer is reused).
	Start(recv func(pkt []byte, from *net.UDPAddr))
	// Synchronous reports whether datagrams are delivered from a
	// deterministic single-threaded event loop (a simulation) rather than a
	// reader goroutine. Synchronous transports need no per-peer buffering in
	// the mux, and connections over them schedule all their periodic work on
	// the injected clock instead of goroutines.
	Synchronous() bool
}

// udpPacketConn is the production PacketConn: a kernel UDP socket plus one
// reader goroutine.
type udpPacketConn struct {
	sock *net.UDPConn
	wg   sync.WaitGroup
}

func newUDPPacketConn(sock *net.UDPConn) *udpPacketConn {
	return &udpPacketConn{sock: sock}
}

func (u *udpPacketConn) WriteToUDP(b []byte, addr *net.UDPAddr) (int, error) {
	return u.sock.WriteToUDP(b, addr)
}

func (u *udpPacketConn) LocalAddr() net.Addr { return u.sock.LocalAddr() }

func (u *udpPacketConn) Synchronous() bool { return false }

func (u *udpPacketConn) Start(recv func(pkt []byte, from *net.UDPAddr)) {
	u.wg.Add(1)
	go func() {
		defer u.wg.Done()
		buf := make([]byte, 65535)
		for {
			n, raddr, err := u.sock.ReadFromUDP(buf)
			if err != nil {
				return // closed
			}
			recv(buf[:n], raddr)
		}
	}()
}

func (u *udpPacketConn) Close() error {
	err := u.sock.Close()
	u.wg.Wait()
	return err
}
