//go:build linux && arm64

package wire

// Syscall numbers the stdlib syscall package predates; values are from
// the kernel's generic syscall table (asm-generic/unistd.h) used by
// arm64 and are ABI-frozen.
const (
	sysSENDMMSG = 269
	sysRECVMMSG = 243
)
