//go:build !linux

package wire

import (
	"errors"
	"net"
)

// errNoReusePort reports that this platform has no SO_REUSEPORT shard
// path; callers fall back to a single socket with a hashing demux.
var errNoReusePort = errors.New("wire: SO_REUSEPORT sharding not supported on this platform")

func listenReusePort(addr string, n int) ([]*net.UDPConn, error) {
	return nil, errNoReusePort
}
