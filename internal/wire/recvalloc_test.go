package wire

import (
	"bytes"
	"net"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// The recv fast path is pinned at zero allocations per operation, leg by
// leg: in-place AEAD open (pooled AAD scratch), GRO segment split, and the
// demux ingest/deliver cycle (pooled delivery buffers). AllocsPerRun is
// meaningless under the race detector (instrumentation allocates), so the
// pins skip there; `make test-race` still runs the same code for safety.

func TestOpenInPlaceZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation pins are meaningless under -race")
	}
	sl, err := newSealer(benchKey)
	if err != nil {
		t.Fatal(err)
	}
	h := Header{Type: TypeData, Stream: 3, Class: 1, Prio: 2, Seq: 41}
	frame, err := sl.appendSealedFrame(nil, h, bytes.Repeat([]byte{0xC3}, 600))
	if err != nil {
		t.Fatal(err)
	}
	// open destroys the ciphertext in place, so each run restores the
	// frame into a preallocated scratch copy first (copy allocates nothing).
	scratch := make([]byte, len(frame))
	run := func() {
		copy(scratch, frame)
		hdr, payload, err := DecodeFrame(scratch)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sl.openInPlace(hdr, payload); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the AAD pool
	if allocs := testing.AllocsPerRun(200, run); allocs != 0 {
		t.Fatalf("openInPlace: %.2f allocs/op, want 0", allocs)
	}
}

func TestSplitSegmentsZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation pins are meaningless under -race")
	}
	data := bytes.Repeat([]byte{0x5A}, 4*1200+300)
	from := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 9}
	sink := 0
	cb := func(pkt []byte, _ *net.UDPAddr) { sink += len(pkt) }
	// GRO leg: a coalesced datagram re-expanded into MTU-sized segments.
	if allocs := testing.AllocsPerRun(200, func() {
		splitSegments(data, 1200, from, cb)
	}); allocs != 0 {
		t.Fatalf("splitSegments (coalesced): %.2f allocs/op, want 0", allocs)
	}
	// Non-GRO leg: whole-datagram passthrough.
	if allocs := testing.AllocsPerRun(200, func() {
		splitSegments(data, 0, from, cb)
	}); allocs != 0 {
		t.Fatalf("splitSegments (passthrough): %.2f allocs/op, want 0", allocs)
	}
	_ = sink
}

func TestDemuxIngestZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation pins are meaningless under -race")
	}
	d := newShardDemux(&fuzzPC{}, 4)
	from := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 30303}
	shard := d.shards[ShardOfAddr(from, 4)]
	pkt := bytes.Repeat([]byte{0x11}, 900)
	run := func() {
		d.ingest(pkt, from)
		select {
		case p := <-shard.ch:
			demuxBufPool.Put(p.buf)
		default:
			t.Fatal("ingest did not enqueue")
		}
	}
	run() // warm the delivery-buffer pool
	if allocs := testing.AllocsPerRun(200, run); allocs != 0 {
		t.Fatalf("demux ingest/recycle: %.2f allocs/op, want 0", allocs)
	}
}

// End-to-end regression pin for the recv loop over real loopback sockets:
// the pre-refactor loop cost ~4 allocs per packet (AAD header render,
// aead.Open growing a fresh plaintext, and two address allocations per
// recvfrom). With openInPlace, the pooled AAD scratch, and the reader-owned
// address cache the steady-state budget is near zero; the pin allows 0.5
// allocs/packet of process-wide noise (GC bookkeeping, timer wheels).
func TestRecvLoopAllocRegression(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation pins are meaningless under -race")
	}
	sl, err := newSealer(benchKey)
	if err != nil {
		t.Fatal(err)
	}
	recvSock, err := listenLoopback()
	if err != nil {
		t.Fatal(err)
	}
	pc := newUDPPacketConn(recvSock)
	defer pc.Close()
	sendSock, err := listenLoopback()
	if err != nil {
		t.Fatal(err)
	}
	defer sendSock.Close()

	const packets = 5000
	frame, err := sl.appendSealedFrame(nil, Header{Type: TypeData, Stream: 1, Class: 1, Prio: 1, Seq: 1}, bytes.Repeat([]byte{0xE7}, 1000))
	if err != nil {
		t.Fatal(err)
	}
	var delivered, failed atomic.Int64
	pc.Start(func(pkt []byte, from *net.UDPAddr) {
		hdr, payload, err := DecodeFrame(pkt)
		if err != nil {
			failed.Add(1)
			return
		}
		if _, err := sl.openInPlace(hdr, payload); err != nil {
			failed.Add(1)
			return
		}
		delivered.Add(1)
	})

	dst := recvSock.LocalAddr().(*net.UDPAddr)
	// Warm pools, addr cache, and socket buffers off the record.
	for i := 0; i < 200; i++ {
		if _, err := sendSock.WriteToUDP(frame, dst); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	delivered.Store(0)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	// Send until the reader has opened `packets` frames; kernel-dropped
	// datagrams never reach user space, so they cannot skew the per-packet
	// malloc figure.
	deadline := time.Now().Add(10 * time.Second)
	for sent := 0; delivered.Load() < packets; sent++ {
		if _, err := sendSock.WriteToUDP(frame, dst); err != nil {
			t.Fatal(err)
		}
		if sent%64 == 0 {
			time.Sleep(100 * time.Microsecond) // let the reader keep up
		}
		if time.Now().After(deadline) {
			t.Fatalf("recv stalled: delivered=%d failed=%d of %d", delivered.Load(), failed.Load(), packets)
		}
	}
	got := delivered.Load()
	runtime.ReadMemStats(&after)
	if n := failed.Load(); n > 0 {
		t.Fatalf("%d frames failed to open", n)
	}
	perPacket := float64(after.Mallocs-before.Mallocs) / float64(got)
	t.Logf("recv loop: %.3f mallocs/packet over %d packets", perPacket, got)
	if perPacket >= 0.5 {
		t.Fatalf("recv loop regressed to %.3f mallocs/packet (pre-refactor ~4, budget < 0.5)", perPacket)
	}
}

// A demux delivery callback that retains its slice must observe the 0xDB
// poison after returning: the drain goroutine poisons and recycles the
// buffer the moment the callback is done, so retention is a deterministic
// failure in debug builds rather than silent corruption.
func TestDemuxDeliveryBufferPoisoned(t *testing.T) {
	old := poisonRecvBuffers
	poisonRecvBuffers = true
	defer func() { poisonRecvBuffers = old }()

	d := newShardDemux(&fuzzPC{}, 2)
	from := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 31414}
	var retained []byte // contract violation, on purpose
	seen := make(chan struct{})
	for _, sh := range d.shards {
		sh.Start(func(pkt []byte, _ *net.UDPAddr) {
			retained = pkt
			close(seen)
		})
	}

	d.ingest([]byte("retained-after-return"), from)
	select {
	case <-seen:
	case <-time.After(2 * time.Second):
		t.Fatal("packet never delivered")
	}
	// Closing every shard joins the drain goroutines (the last Close waits
	// on them), so poisoning has happened-before this point — no polling,
	// no race on the retained slice.
	d.shards[0].Close()
	d.shards[1].Close()
	if len(retained) == 0 {
		t.Fatal("callback never saw the packet")
	}
	for i, b := range retained {
		if b != poisonByte {
			t.Fatalf("retained[%d] = %#x, want poison %#x — retention would go undetected", i, b, poisonByte)
		}
	}
}
