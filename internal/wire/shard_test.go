package wire

import (
	"net"
	"testing"
	"time"
)

// dialShardClients dials n clients against the group, sends perClient
// messages from each, and waits until every message is delivered.
func dialShardClients(t *testing.T, g *MuxGroup, rx *muxCollector, n, perClient int) []*Conn {
	t.Helper()
	var clients []*Conn
	for i := 0; i < n; i++ {
		cl, err := Dial(g.LocalAddr().String(), Config{
			Streams: clientStreams(), StartBudget: 10e6,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cl.Close() })
		clients = append(clients, cl)
	}
	for i := 0; i < perClient; i++ {
		for _, cl := range clients {
			if _, err := cl.Send(1, []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	ok := waitFor(t, 10*time.Second, func() bool {
		for _, cl := range clients {
			if rx.count(cl.LocalAddr()) < perClient {
				return false
			}
		}
		return true
	})
	if !ok {
		for _, cl := range clients {
			t.Logf("peer %s: %d/%d", cl.LocalAddr(), rx.count(cl.LocalAddr()), perClient)
		}
		t.Fatal("not all clients fully delivered")
	}
	return clients
}

// shardSpread returns per-shard connection counts and how many shards own
// at least one peer.
func shardSpread(g *MuxGroup) (counts []int, nonEmpty, total int) {
	counts = make([]int, g.Shards())
	for i, m := range g.Muxes() {
		counts[i] = len(m.Conns())
		total += counts[i]
		if counts[i] > 0 {
			nonEmpty++
		}
	}
	return counts, nonEmpty, total
}

// The socket-per-shard path: the kernel's SO_REUSEPORT flow hash must
// spread distinct client 4-tuples across shards, every peer must be owned
// by exactly one shard (sum of per-shard conns == clients), and all
// traffic must be served. Skipped where reuseport is unavailable — the
// demux fallback test below covers those platforms.
func TestMuxGroupReusePortSpread(t *testing.T) {
	const shards, clients, perClient = 4, 16, 10
	rx := newMuxCollector()
	g, err := ListenMuxShards("127.0.0.1:0", shards, func(peer *net.UDPAddr) Config {
		return Config{OnMessage: rx.handlerFor(peer)}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if !g.ReusePort() {
		t.Skip("SO_REUSEPORT unavailable on this platform; demux fallback covered separately")
	}
	if g.Shards() != shards {
		t.Fatalf("Shards() = %d, want %d", g.Shards(), shards)
	}

	dialShardClients(t, g, rx, clients, perClient)

	counts, nonEmpty, total := shardSpread(g)
	t.Logf("reuseport shard spread: %v", counts)
	if total != clients {
		t.Fatalf("peers owned across shards = %d, want %d (no peer may be lost or double-owned)", total, clients)
	}
	if nonEmpty < 2 {
		t.Fatalf("kernel hashed all %d clients to one shard: %v", clients, counts)
	}
	accepted, evicted, _ := g.Stats()
	if accepted != clients || evicted != 0 {
		t.Fatalf("accepted=%d evicted=%d, want %d/0", accepted, evicted, clients)
	}
}

// The portable fallback path: one socket feeding the hashing demux. The
// same ownership and delivery properties must hold, and the demux's
// packet-conservation identity must balance — everything enqueued is
// delivered (nothing stuck, nothing dropped) once traffic quiesces.
func TestMuxGroupDemuxFallback(t *testing.T) {
	const shards, clients, perClient = 4, 12, 10
	rx := newMuxCollector()
	sock, err := listenLoopback()
	if err != nil {
		t.Fatal(err)
	}
	g, err := ListenMuxShardsVia(newUDPPacketConn(sock), shards, func(peer *net.UDPAddr) Config {
		return Config{OnMessage: rx.handlerFor(peer)}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if g.ReusePort() {
		t.Fatal("caller-supplied transport must use the demux path")
	}
	if g.Shards() != shards {
		t.Fatalf("Shards() = %d, want %d", g.Shards(), shards)
	}

	dialShardClients(t, g, rx, clients, perClient)

	counts, nonEmpty, total := shardSpread(g)
	t.Logf("demux shard spread: %v", counts)
	if total != clients {
		t.Fatalf("peers owned across shards = %d, want %d", total, clients)
	}
	if nonEmpty < 2 {
		t.Fatalf("address hash put all %d clients on one shard: %v", clients, counts)
	}
	if !waitFor(t, 5*time.Second, func() bool {
		st := g.DemuxStats()
		return st.Delivered == st.Enqueued
	}) {
		t.Fatalf("demux queues never drained: %+v", g.DemuxStats())
	}
	st := g.DemuxStats()
	if st.Enqueued == 0 || st.DroppedOversize != 0 {
		t.Fatalf("demux accounting off: %+v", st)
	}
	if st.Enqueued != st.Delivered+st.DroppedFull {
		t.Fatalf("conservation violated before teardown: %+v", st)
	}
}

// A single-shard request collapses to a plain mux with no demux or extra
// sockets — the degenerate case the simulator and small deployments use.
func TestMuxGroupSingleShardCollapse(t *testing.T) {
	rx := newMuxCollector()
	g, err := ListenMuxShards("127.0.0.1:0", 1, func(peer *net.UDPAddr) Config {
		return Config{OnMessage: rx.handlerFor(peer)}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if g.Shards() != 1 || g.ReusePort() {
		t.Fatalf("Shards()=%d ReusePort()=%v, want 1/false", g.Shards(), g.ReusePort())
	}
	dialShardClients(t, g, rx, 3, 5)
	if len(g.Conns()) != 3 {
		t.Fatalf("Conns() = %d, want 3", len(g.Conns()))
	}
}

// BenchmarkShardRecvSmoke is the CI smoke for the shard scaling bench:
// `make bench-smoke` runs it at -benchtime 1x to prove the 2-shard
// datapath stands up, moves packets, and tears down — the full {1,2,4,8}
// curve with the acceptance gate lives in `make bench` (marbench wire).
func BenchmarkShardRecvSmoke(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := RunShardScalingBench([]int{2}, 4000, 500)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 1 || rows[0].Delivered == 0 {
			b.Fatalf("2-shard smoke delivered nothing: %+v", rows)
		}
		b.ReportMetric(rows[0].PacketsPerSec, "packets/s")
	}
}
