package wire

import "net"

// Datagram is one element of a batched transport write: a wire frame and
// its destination. The buffer is only valid for the duration of the
// WriteBatch call — implementations must copy (or hand to the kernel)
// before returning, exactly like WriteToUDP.
type Datagram struct {
	B    []byte
	Addr *net.UDPAddr
}

// BatchWriter is the optional batch capability of a PacketConn. The
// kernel transport implements it with one sendmmsg system call per batch
// on Linux (a portable loop elsewhere); the simulated endpoint injects
// the whole batch into the event loop at one virtual instant. A sender
// only coalesces frames into batches when its transport implements this
// interface (and Config.MaxBurst allows it), so transports that cannot
// batch keep the exact per-frame behavior.
type BatchWriter interface {
	// WriteBatch transmits the datagrams in order, returning how many
	// were handed to the transport and the first error encountered. A
	// short count with a nil error does not happen: implementations
	// retry internally until everything is written or an error stops
	// them.
	WriteBatch(dgs []Datagram) (int, error)
}

// writeBatchLoop is the portable WriteBatch fallback: one WriteToUDP per
// datagram.
func writeBatchLoop(pc PacketConn, dgs []Datagram) (int, error) {
	for i := range dgs {
		if _, err := pc.WriteToUDP(dgs[i].B, dgs[i].Addr); err != nil {
			return i, err
		}
	}
	return len(dgs), nil
}
