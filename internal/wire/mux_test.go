package wire

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"marnet/internal/core"
)

// muxCollector tags received messages with the peer that sent them.
type muxCollector struct {
	mu   sync.Mutex
	from map[string]int
}

func newMuxCollector() *muxCollector {
	return &muxCollector{from: map[string]int{}}
}

func (m *muxCollector) handlerFor(peer *net.UDPAddr) func(Message) {
	key := fmt.Sprint(peer.Port)
	return func(Message) {
		m.mu.Lock()
		m.from[key]++
		m.mu.Unlock()
	}
}

// count looks up deliveries by the peer's source port (the stable part of
// the address across wildcard/loopback renderings).
func (m *muxCollector) count(local *net.UDPAddr) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.from[fmt.Sprint(local.Port)]
}

func clientStreams() []StreamSpec {
	return []StreamSpec{
		{ID: 1, Class: core.ClassCritical, Priority: core.PrioHighest, Rate: 1e6},
	}
}

func TestMuxServesMultipleClients(t *testing.T) {
	rx := newMuxCollector()
	mux, err := ListenMux("127.0.0.1:0", func(peer *net.UDPAddr) Config {
		return Config{OnMessage: rx.handlerFor(peer)}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mux.Close()

	const nClients = 4
	const perClient = 25
	var clients []*Conn
	for i := 0; i < nClients; i++ {
		cl, err := Dial(mux.LocalAddr().String(), Config{
			Streams: clientStreams(), StartBudget: 10e6,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		clients = append(clients, cl)
	}
	for i := 0; i < perClient; i++ {
		for _, cl := range clients {
			if _, err := cl.Send(1, []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	ok := waitFor(t, 5*time.Second, func() bool {
		for _, cl := range clients {
			if rx.count(cl.LocalAddr()) < perClient {
				return false
			}
		}
		return true
	})
	if !ok {
		for _, cl := range clients {
			t.Logf("peer %s: %d/%d", cl.LocalAddr(), rx.count(cl.LocalAddr()), perClient)
		}
		t.Fatal("not all clients fully delivered")
	}
	mux.mu.Lock()
	accepted := mux.Accepted
	nConns := len(mux.conns)
	mux.mu.Unlock()
	if accepted != nClients || nConns != nClients {
		t.Errorf("accepted=%d conns=%d, want %d", accepted, nConns, nClients)
	}
	if len(mux.Conns()) != nClients {
		t.Errorf("Conns() = %d", len(mux.Conns()))
	}
}

func TestMuxPerPeerIsolationUnderLoss(t *testing.T) {
	// One client behind a lossy relay, one clean: retransmission state must
	// be independent (the clean client never sees retransmits).
	rx := newMuxCollector()
	mux, err := ListenMux("127.0.0.1:0", func(peer *net.UDPAddr) Config {
		return Config{OnMessage: rx.handlerFor(peer)}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mux.Close()

	relay, err := NewRelay(mux.LocalAddr().String(), 5, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()

	lossy, err := Dial(relay.Addr(), Config{Streams: clientStreams(), StartBudget: 5e6})
	if err != nil {
		t.Fatal(err)
	}
	defer lossy.Close()
	clean, err := Dial(mux.LocalAddr().String(), Config{Streams: clientStreams(), StartBudget: 5e6})
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()

	const n = 40
	for i := 0; i < n; i++ {
		lossy.Send(1, []byte{byte(i)}) //nolint:errcheck
		clean.Send(1, []byte{byte(i)}) //nolint:errcheck
	}
	// The lossy client is known to the server by the relay's address.
	if !waitFor(t, 8*time.Second, func() bool {
		return rx.count(clean.LocalAddr()) >= n &&
			rx.count(relayClientAddr(relay)) >= n
	}) {
		t.Fatalf("deliveries: clean=%d lossy=%d",
			rx.count(clean.LocalAddr()), rx.count(relayClientAddr(relay)))
	}
	if st := clean.Stats(1); st.Retx != 0 {
		t.Errorf("clean client retransmitted %d times", st.Retx)
	}
	if st := lossy.Stats(1); st.Retx == 0 {
		t.Error("lossy client never retransmitted")
	}
}

// relayClientAddr is the relay's socket address as seen by the mux.
func relayClientAddr(r *Relay) *net.UDPAddr {
	addr, _ := r.sock.LocalAddr().(*net.UDPAddr)
	return addr
}

func TestMuxEncryptedClients(t *testing.T) {
	key := bytes.Repeat([]byte{9}, 16)
	rx := newMuxCollector()
	mux, err := ListenMux("127.0.0.1:0", func(peer *net.UDPAddr) Config {
		return Config{OnMessage: rx.handlerFor(peer), Key: key}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mux.Close()
	cl, err := Dial(mux.LocalAddr().String(), Config{Streams: clientStreams(), Key: key, StartBudget: 5e6})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 10; i++ {
		cl.Send(1, []byte("x")) //nolint:errcheck
	}
	if !waitFor(t, 3*time.Second, func() bool { return rx.count(cl.LocalAddr()) >= 10 }) {
		t.Fatal("encrypted mux delivery failed")
	}
}

func TestMuxCloseIdempotentAndValidation(t *testing.T) {
	if _, err := ListenMux("127.0.0.1:0", nil); err == nil {
		t.Error("nil configFor should fail")
	}
	mux, err := ListenMux("127.0.0.1:0", func(*net.UDPAddr) Config { return Config{} })
	if err != nil {
		t.Fatal(err)
	}
	if err := mux.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if err := mux.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestMuxOnConnCallback(t *testing.T) {
	var mu sync.Mutex
	var seen []string
	mux, err := ListenMux("127.0.0.1:0", func(*net.UDPAddr) Config { return Config{} })
	if err != nil {
		t.Fatal(err)
	}
	defer mux.Close()
	mux.SetOnConn(func(_ *Conn, peer *net.UDPAddr) {
		mu.Lock()
		seen = append(seen, peer.String())
		mu.Unlock()
	})
	cl, err := Dial(mux.LocalAddr().String(), Config{Streams: clientStreams()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Send(1, []byte("x")) //nolint:errcheck
	if !waitFor(t, 2*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(seen) == 1
	}) {
		t.Fatal("OnConn never fired")
	}
}
