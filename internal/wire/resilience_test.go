package wire

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"marnet/internal/core"
	"marnet/internal/faults"
)

// stateRecorder captures OnStateChange transitions thread-safely.
type stateRecorder struct {
	mu     sync.Mutex
	states []State
}

func (r *stateRecorder) add(s State) {
	r.mu.Lock()
	r.states = append(r.states, s)
	r.mu.Unlock()
}

func (r *stateRecorder) saw(want State) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range r.states {
		if s == want {
			return true
		}
	}
	return false
}

// The keepalive detection/liveness tests moved to keepalive_sim_test.go:
// they run the identical Conn code on the virtual clock with exact-timing
// assertions instead of wall sleeps and scheduling slack.

func TestMuxIdleEvictionFiresOnConnClosed(t *testing.T) {
	var rx collector
	mux, err := ListenMux("127.0.0.1:0", func(*net.UDPAddr) Config {
		return Config{OnMessage: rx.add}
	}, WithIdleTimeout(120*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer mux.Close()

	var closedMu sync.Mutex
	closedPeers := 0
	mux.SetOnConnClosed(func(*Conn, *net.UDPAddr) {
		closedMu.Lock()
		closedPeers++
		closedMu.Unlock()
	})

	client, err := Dial(mux.LocalAddr().String(), Config{
		Streams:     []StreamSpec{{ID: 1, Class: core.ClassCritical, Priority: core.PrioHighest, Rate: 1e6}},
		StartBudget: 5e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.Send(1, []byte("hi")) //nolint:errcheck
	if !waitFor(t, 2*time.Second, func() bool { return len(mux.Conns()) == 1 }) {
		t.Fatal("peer never accepted")
	}
	// Client goes silent (no keepalive): the mux must evict it.
	if !waitFor(t, 2*time.Second, func() bool { return len(mux.Conns()) == 0 }) {
		t.Fatal("idle peer never evicted")
	}
	closedMu.Lock()
	n := closedPeers
	closedMu.Unlock()
	if n != 1 {
		t.Errorf("OnConnClosed fired %d times, want 1", n)
	}
	mux.mu.Lock()
	evicted := mux.Evicted
	mux.mu.Unlock()
	if evicted != 1 {
		t.Errorf("Evicted = %d, want 1", evicted)
	}
}

func TestSessionResumesThroughBlackholePreservingSeqs(t *testing.T) {
	// Server behind a mux, client behind a chaos relay. The relay's address
	// is the peer the server sees, so its per-peer receive state (the dup
	// filter) SURVIVES the client's re-dial — only sequence preservation
	// keeps resumed traffic from being swallowed as duplicates.
	var rx collector
	mux, err := ListenMux("127.0.0.1:0", func(*net.UDPAddr) Config {
		return Config{OnMessage: rx.add}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mux.Close()

	relay, err := faults.NewRelay(mux.LocalAddr().String(), faults.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()

	var rec stateRecorder
	sess, err := DialSession(relay.Addr(), Config{
		Streams:     []StreamSpec{{ID: 1, Class: core.ClassCritical, Priority: core.PrioHighest, Rate: 2e6}},
		StartBudget: 5e6,
		Keepalive:   40 * time.Millisecond,
	}, SessionConfig{
		RedialMin:     20 * time.Millisecond,
		Seed:          9,
		OnStateChange: rec.add,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	sendAll := func(from, to int) {
		for i := from; i < to; i++ {
			payload := []byte{byte(i)}
			if !waitFor(t, 2*time.Second, func() bool {
				ok, err := sess.Send(1, payload)
				return err == nil && ok
			}) {
				t.Fatalf("message %d never admitted", i)
			}
		}
	}

	sendAll(0, 10)
	if !waitFor(t, 3*time.Second, func() bool { return rx.count() >= 10 }) {
		t.Fatalf("pre-outage: received %d/10", rx.count())
	}

	relay.SetBlackhole(faults.Both, true)
	if !waitFor(t, 2*time.Second, func() bool { return sess.Reconnects() >= 1 }) {
		t.Fatal("session never resumed during blackhole")
	}
	relay.SetBlackhole(faults.Both, false)

	sendAll(10, 20)
	// If resumption had restarted sequences at 0, the server-side dup filter
	// would swallow every post-outage message and this would stall at 10.
	if !waitFor(t, 3*time.Second, func() bool { return rx.count() >= 20 }) {
		t.Fatalf("post-outage: received %d/20 (resumed seqs swallowed?)", rx.count())
	}
	seen := map[int64]bool{}
	rx.mu.Lock()
	for _, m := range rx.msgs {
		if seen[m.Seq] {
			t.Errorf("duplicate seq %d delivered to the app", m.Seq)
		}
		seen[m.Seq] = true
	}
	maxSeq := int64(-1)
	for s := range seen {
		if s > maxSeq {
			maxSeq = s
		}
	}
	rx.mu.Unlock()
	if maxSeq != 19 {
		t.Errorf("max delivered seq = %d, want 19 (sequence space preserved)", maxSeq)
	}
	if !waitFor(t, time.Second, func() bool { return sess.State() == StateActive }) {
		t.Errorf("final session state = %v, want active", sess.State())
	}
	if !rec.saw(StateDead) || !rec.saw(StateActive) {
		t.Error("session state observer missed the Dead/Active transitions")
	}
}

// TestBitFlipNeverAuthenticates is the satellite property test: ANY single
// bit flip anywhere in a sealed frame — header, nonce, ciphertext, tag,
// even the length field — must be rejected at parse or at open, never
// delivered and never a panic. Exhaustive over every bit.
func TestBitFlipNeverAuthenticates(t *testing.T) {
	key := bytes.Repeat([]byte{9}, 16)
	sl, err := newSealer(key)
	if err != nil {
		t.Fatal(err)
	}
	h := Header{
		Type: TypeData, Stream: 3, Class: uint8(core.ClassCritical),
		Prio: uint8(core.PrioHighest), Seq: 42, SendMicro: 123456,
	}
	payload := []byte("pose estimate for frame 42")
	sealed, err := sl.seal(h, payload)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := AppendFrame(nil, h, sealed)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: the unmodified frame decodes and opens.
	hdr, body, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if plain, err := sl.open(hdr, body); err != nil || !bytes.Equal(plain, payload) {
		t.Fatalf("pristine frame failed to open: %v", err)
	}

	parseRejects, authRejects := 0, 0
	for bit := 0; bit < len(frame)*8; bit++ {
		mut := append([]byte(nil), frame...)
		mut[bit/8] ^= 1 << (bit % 8)
		mhdr, mbody, err := DecodeFrame(mut)
		if err != nil {
			parseRejects++
			continue
		}
		if _, err := sl.open(mhdr, mbody); err == nil {
			t.Fatalf("bit flip %d authenticated and decrypted", bit)
		}
		authRejects++
	}
	if parseRejects == 0 || authRejects == 0 {
		t.Errorf("degenerate coverage: parse=%d auth=%d rejects", parseRejects, authRejects)
	}
}

func TestCorruptionDroppedAndCountedEndToEnd(t *testing.T) {
	// A relay flipping bits in flight: sealed connections must drop every
	// corrupted frame (counted as auth failures), recover via retransmission
	// and deliver each payload exactly once.
	key := bytes.Repeat([]byte{4}, 16)
	var rx collector
	server, err := Listen("127.0.0.1:0", Config{Key: key, OnMessage: rx.add})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	relay, err := faults.NewRelay(server.LocalAddr().String(), faults.Config{
		Seed: 11,
		Up:   faults.DirConfig{Corrupt: 0.25},
		Down: faults.DirConfig{Corrupt: 0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()

	client, err := Dial(relay.Addr(), Config{
		Streams:     []StreamSpec{{ID: 1, Class: core.ClassCritical, Priority: core.PrioHighest, Rate: 2e6}},
		StartBudget: 5e6,
		Key:         key,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const n = 40
	for i := 0; i < n; i++ {
		if _, err := client.Send(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if !waitFor(t, 8*time.Second, func() bool { return rx.count() >= n }) {
		t.Fatalf("received %d/%d through corrupting relay", rx.count(), n)
	}
	if c := relay.Counters(faults.Both); c.Corrupted == 0 {
		t.Error("relay corrupted nothing — test is vacuous")
	}
	if server.AuthFailureCount()+client.AuthFailureCount() == 0 {
		t.Error("no auth failures despite bit flips (corruption reached the app?)")
	}
	seen := map[byte]bool{}
	rx.mu.Lock()
	for _, m := range rx.msgs {
		b := m.Payload[0]
		if seen[b] {
			t.Errorf("payload %d delivered twice", b)
		}
		seen[b] = true
	}
	rx.mu.Unlock()
	if len(seen) != n {
		t.Errorf("distinct payloads = %d, want %d", len(seen), n)
	}
}
