// Package wire is the real-network implementation of the ARTP protocol
// (see package core for the simulator version and the protocol rationale).
// It runs over UDP sockets, as Section VI-H of the paper recommends: "the
// actual implementation of this protocol may be done on top of UDP at the
// application level, making it easier to integrate in applications as an
// external library".
//
// The wire format is a fixed little-endian header followed by the payload:
//
//	off size field
//	0   2    magic 0xAR7P (0xA27B)
//	2   1    version (1)
//	3   1    frame type
//	4   2    stream id
//	6   1    class
//	7   1    priority
//	8   8    sequence number
//	16  8    send timestamp, microseconds since the conn epoch
//	24  2    payload length
//	26  ...  payload
//
// ACK frames reuse the header with the acked stream/seq and echo the data
// frame's send timestamp in the timestamp field. NACK frames carry a list
// of missing sequence numbers as the payload.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Frame types. Ping/Pong are the keepalive heartbeat: a ping carries the
// sender's timestamp, the pong echoes it; both have empty payloads (but
// still carry an authentication tag when sealing is on, so liveness
// cannot be forged).
const (
	TypeData = 1
	TypeAck  = 2
	TypeNack = 3
	TypePing = 4
	TypePong = 5
)

// Codec constants.
const (
	Magic      = 0xA27B
	Version    = 1
	HeaderLen  = 26
	MaxPayload = 1200 // keeps frames under typical path MTU
)

// Codec errors.
var (
	ErrShortFrame = errors.New("wire: frame too short")
	ErrBadMagic   = errors.New("wire: bad magic")
	ErrBadVersion = errors.New("wire: unsupported version")
	ErrBadType    = errors.New("wire: unknown frame type")
	ErrOversize   = errors.New("wire: payload exceeds MaxPayload")
	ErrTruncated  = errors.New("wire: payload truncated")
)

// Header is the decoded fixed header.
type Header struct {
	Type       uint8
	Stream     uint16
	Class      uint8
	Prio       uint8
	Seq        int64
	SendMicro  uint64
	PayloadLen uint16
}

// AppendFrame serializes a frame (header + payload) into dst and returns
// the extended slice.
func AppendFrame(dst []byte, h Header, payload []byte) ([]byte, error) {
	if len(payload) > MaxPayload {
		return dst, fmt.Errorf("%w: %d bytes", ErrOversize, len(payload))
	}
	switch h.Type {
	case TypeData, TypeAck, TypeNack, TypePing, TypePong:
	default:
		return dst, fmt.Errorf("%w: %d", ErrBadType, h.Type)
	}
	var hdr [HeaderLen]byte
	binary.LittleEndian.PutUint16(hdr[0:], Magic)
	hdr[2] = Version
	hdr[3] = h.Type
	binary.LittleEndian.PutUint16(hdr[4:], h.Stream)
	hdr[6] = h.Class
	hdr[7] = h.Prio
	binary.LittleEndian.PutUint64(hdr[8:], uint64(h.Seq))
	binary.LittleEndian.PutUint64(hdr[16:], h.SendMicro)
	binary.LittleEndian.PutUint16(hdr[24:], uint16(len(payload)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, payload...)
	return dst, nil
}

// DecodeFrame parses one frame from buf, returning the header and a
// subslice of buf holding the payload.
func DecodeFrame(buf []byte) (Header, []byte, error) {
	if len(buf) < HeaderLen {
		return Header{}, nil, ErrShortFrame
	}
	if binary.LittleEndian.Uint16(buf[0:]) != Magic {
		return Header{}, nil, ErrBadMagic
	}
	if buf[2] != Version {
		return Header{}, nil, fmt.Errorf("%w: %d", ErrBadVersion, buf[2])
	}
	h := Header{
		Type:       buf[3],
		Stream:     binary.LittleEndian.Uint16(buf[4:]),
		Class:      buf[6],
		Prio:       buf[7],
		Seq:        int64(binary.LittleEndian.Uint64(buf[8:])),
		SendMicro:  binary.LittleEndian.Uint64(buf[16:]),
		PayloadLen: binary.LittleEndian.Uint16(buf[24:]),
	}
	switch h.Type {
	case TypeData, TypeAck, TypeNack, TypePing, TypePong:
	default:
		return Header{}, nil, fmt.Errorf("%w: %d", ErrBadType, h.Type)
	}
	end := HeaderLen + int(h.PayloadLen)
	if len(buf) < end {
		return Header{}, nil, ErrTruncated
	}
	return h, buf[HeaderLen:end], nil
}

// EncodeNackPayload serializes a list of missing sequence numbers.
func EncodeNackPayload(missing []int64) []byte {
	out := make([]byte, 2+8*len(missing))
	binary.LittleEndian.PutUint16(out, uint16(len(missing)))
	for i, s := range missing {
		binary.LittleEndian.PutUint64(out[2+8*i:], uint64(s))
	}
	return out
}

// DecodeNackPayload parses a NACK payload.
func DecodeNackPayload(p []byte) ([]int64, error) {
	if len(p) < 2 {
		return nil, ErrTruncated
	}
	n := int(binary.LittleEndian.Uint16(p))
	if len(p) < 2+8*n {
		return nil, ErrTruncated
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(p[2+8*i:]))
	}
	return out, nil
}
