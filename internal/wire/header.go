// Package wire is the real-network implementation of the ARTP protocol
// (see package core for the simulator version and the protocol rationale).
// It runs over UDP sockets, as Section VI-H of the paper recommends: "the
// actual implementation of this protocol may be done on top of UDP at the
// application level, making it easier to integrate in applications as an
// external library".
//
// The wire format is a fixed little-endian header followed by the payload.
// Versions 1 and 2 share the 26-byte legacy layout:
//
//	off size field
//	0   2    magic 0xAR7P (0xA27B)
//	2   1    version (1 or 2)
//	3   1    frame type
//	4   2    stream id
//	6   1    class
//	7   1    priority
//	8   8    sequence number
//	16  8    send timestamp, microseconds since the conn epoch
//	24  2    payload length
//	26  ...  payload
//
// Version 3 extends the header with trace context for cross-host frame
// tracing. The payload length stays the LAST two header bytes so that
// sealing (which authenticates everything before the payload length) is
// layout-independent:
//
//	0   24   identical to the legacy prefix (version byte = 3)
//	24  8    trace id
//	32  8    span id of the sender's span (parent for the receiver)
//	40  2    payload length
//	42  ...  payload
//
// Encoders emit version 3 only when a frame actually carries trace
// context; untraced frames remain byte-identical to version 1, so a v3
// sender interoperates with a legacy decoder until tracing is switched
// on. Decoders accept all three versions.
//
// ACK frames reuse the header with the acked stream/seq and echo the data
// frame's send timestamp in the timestamp field. NACK frames carry a list
// of missing sequence numbers as the payload.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Frame types. Ping/Pong are the keepalive heartbeat: a ping carries the
// sender's timestamp, the pong echoes it; both have empty payloads (but
// still carry an authentication tag when sealing is on, so liveness
// cannot be forged).
const (
	TypeData = 1
	TypeAck  = 2
	TypeNack = 3
	TypePing = 4
	TypePong = 5
)

// Codec constants.
const (
	Magic           = 0xA27B
	Version         = 1
	VersionTraced   = 3
	HeaderLen       = 26   // legacy (v1/v2) header length
	HeaderLenTraced = 42   // v3 header length: legacy prefix + trace ids
	MaxPayload      = 1200 // keeps frames under typical path MTU
)

// headerLen returns the encoded header length for a header's wire
// version, which is determined by whether it carries trace context.
func headerLen(h Header) int {
	if h.TraceID|h.SpanID != 0 {
		return HeaderLenTraced
	}
	return HeaderLen
}

// Codec errors.
var (
	ErrShortFrame = errors.New("wire: frame too short")
	ErrBadMagic   = errors.New("wire: bad magic")
	ErrBadVersion = errors.New("wire: unsupported version")
	ErrBadType    = errors.New("wire: unknown frame type")
	ErrOversize   = errors.New("wire: payload exceeds MaxPayload")
	ErrTruncated  = errors.New("wire: payload truncated")
)

// Header is the decoded fixed header. TraceID and SpanID are zero on
// untraced (v1/v2) frames; a nonzero TraceID marks the frame as part of
// a distributed trace and SpanID names the sender's span, which becomes
// the parent of any span the receiver starts for this frame.
type Header struct {
	Type       uint8
	Stream     uint16
	Class      uint8
	Prio       uint8
	Seq        int64
	SendMicro  uint64
	PayloadLen uint16
	TraceID    uint64
	SpanID     uint64
}

// AppendFrame serializes a frame (header + payload) into dst and returns
// the extended slice. Frames with trace context encode as version 3;
// untraced frames stay byte-identical to version 1.
func AppendFrame(dst []byte, h Header, payload []byte) ([]byte, error) {
	if len(payload) > MaxPayload {
		return dst, fmt.Errorf("%w: %d bytes", ErrOversize, len(payload))
	}
	switch h.Type {
	case TypeData, TypeAck, TypeNack, TypePing, TypePong:
	default:
		return dst, fmt.Errorf("%w: %d", ErrBadType, h.Type)
	}
	n := headerLen(h)
	base := len(dst)
	dst = append(dst, make([]byte, n)...)
	putHeader(dst[base:base+n], h, len(payload))
	dst = append(dst, payload...)
	return dst, nil
}

// putHeader writes the wire header for h into dst, which must be exactly
// headerLen(h) bytes, declaring payloadLen. It allocates nothing — the
// fast path encodes straight into a pooled frame buffer — and performs no
// validation; callers (AppendFrame, the sealer) validate first.
func putHeader(dst []byte, h Header, payloadLen int) {
	binary.LittleEndian.PutUint16(dst[0:], Magic)
	dst[2] = Version
	dst[3] = h.Type
	binary.LittleEndian.PutUint16(dst[4:], h.Stream)
	dst[6] = h.Class
	dst[7] = h.Prio
	binary.LittleEndian.PutUint64(dst[8:], uint64(h.Seq))
	binary.LittleEndian.PutUint64(dst[16:], h.SendMicro)
	if len(dst) == HeaderLenTraced {
		dst[2] = VersionTraced
		binary.LittleEndian.PutUint64(dst[24:], h.TraceID)
		binary.LittleEndian.PutUint64(dst[32:], h.SpanID)
	}
	binary.LittleEndian.PutUint16(dst[len(dst)-2:], uint16(payloadLen))
}

// DecodeFrame parses one frame from buf, returning the header and a
// subslice of buf holding the payload. Versions 1 and 2 decode as the
// legacy 26-byte layout; version 3 additionally yields trace context.
func DecodeFrame(buf []byte) (Header, []byte, error) {
	if len(buf) < HeaderLen {
		return Header{}, nil, ErrShortFrame
	}
	if binary.LittleEndian.Uint16(buf[0:]) != Magic {
		return Header{}, nil, ErrBadMagic
	}
	hlen := HeaderLen
	switch buf[2] {
	case 1, 2:
	case VersionTraced:
		hlen = HeaderLenTraced
		if len(buf) < hlen {
			return Header{}, nil, ErrShortFrame
		}
	default:
		return Header{}, nil, fmt.Errorf("%w: %d", ErrBadVersion, buf[2])
	}
	h := Header{
		Type:      buf[3],
		Stream:    binary.LittleEndian.Uint16(buf[4:]),
		Class:     buf[6],
		Prio:      buf[7],
		Seq:       int64(binary.LittleEndian.Uint64(buf[8:])),
		SendMicro: binary.LittleEndian.Uint64(buf[16:]),
	}
	if hlen == HeaderLenTraced {
		h.TraceID = binary.LittleEndian.Uint64(buf[24:])
		h.SpanID = binary.LittleEndian.Uint64(buf[32:])
	}
	h.PayloadLen = binary.LittleEndian.Uint16(buf[hlen-2:])
	switch h.Type {
	case TypeData, TypeAck, TypeNack, TypePing, TypePong:
	default:
		return Header{}, nil, fmt.Errorf("%w: %d", ErrBadType, h.Type)
	}
	// Mirror the encoder's bound: no conforming sender emits a payload
	// above MaxPayload, so anything larger is corruption or an attack, and
	// accepting it would yield headers that cannot round-trip.
	if int(h.PayloadLen) > MaxPayload {
		return Header{}, nil, fmt.Errorf("%w: %d bytes", ErrOversize, h.PayloadLen)
	}
	end := hlen + int(h.PayloadLen)
	if len(buf) < end {
		return Header{}, nil, ErrTruncated
	}
	return h, buf[hlen:end], nil
}

// MaxNackEntries is the most missing-sequence entries one NACK payload
// can carry and still fit inside MaxPayload. An unclamped gap list would
// emit an oversized datagram that the peer's DecodeFrame bounds check
// rejects — silently losing the whole NACK — so the encoder clamps and
// senders chunk instead.
const MaxNackEntries = (MaxPayload - 2) / 8

// EncodeNackPayload serializes a list of missing sequence numbers,
// clamping to the MaxNackEntries that fit one frame. Callers with longer
// gap lists send several NACKs (see AppendNackPayload for the
// allocation-free variant used on the hot path).
func EncodeNackPayload(missing []int64) []byte {
	if len(missing) > MaxNackEntries {
		missing = missing[:MaxNackEntries]
	}
	return AppendNackPayload(nil, missing)
}

// AppendNackPayload serializes up to MaxNackEntries of missing into dst
// and returns the extended slice. Entries beyond the clamp are the
// caller's to re-send in a following NACK.
func AppendNackPayload(dst []byte, missing []int64) []byte {
	if len(missing) > MaxNackEntries {
		missing = missing[:MaxNackEntries]
	}
	base := len(dst)
	dst = append(dst, make([]byte, 2+8*len(missing))...)
	binary.LittleEndian.PutUint16(dst[base:], uint16(len(missing)))
	for i, s := range missing {
		binary.LittleEndian.PutUint64(dst[base+2+8*i:], uint64(s))
	}
	return dst
}

// DecodeNackPayload parses a NACK payload. Counts above MaxNackEntries
// are rejected: no conforming sender emits them (the encoder clamps), so
// they are corruption, and accepting one would decode entries that can
// never round-trip through a frame.
func DecodeNackPayload(p []byte) ([]int64, error) {
	if len(p) < 2 {
		return nil, ErrTruncated
	}
	n := int(binary.LittleEndian.Uint16(p))
	if n > MaxNackEntries {
		return nil, fmt.Errorf("%w: %d NACK entries", ErrOversize, n)
	}
	if len(p) < 2+8*n {
		return nil, ErrTruncated
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(p[2+8*i:]))
	}
	return out, nil
}
