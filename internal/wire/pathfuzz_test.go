package wire

import (
	"bytes"
	"testing"
)

// FuzzPathFrameDecode throws arbitrary bytes at the path-layer decoder
// stack (prefix, then the kind-specific body). Invariants: never panic,
// classify consistently with IsPathFrame, and every frame that decodes
// cleanly must survive a re-encode/re-decode round trip unchanged.
func FuzzPathFrameDecode(f *testing.F) {
	inner, _ := AppendFrame(nil, Header{Type: TypeData, Stream: 3, Seq: 42}, []byte("pose"))
	f.Add(AppendPathData(nil, 0xDEADBEEF, 1, 77, 3, inner))
	f.Add(AppendPathData(nil, 1, 0, 0, 0, nil)) // ungrouped, empty inner
	f.Add(AppendPathProbe(nil, PathKindProbe, 7, 0,
		PathProbe{Seq: 9, SendMicro: 123456, SRTTMicro: 4200, IntervalMicro: 50000, State: uint8(PathDegraded)}))
	f.Add(AppendPathProbe(nil, PathKindProbeAck, 7, 1, PathProbe{Seq: ^uint32(0), SendMicro: ^uint64(0)}))
	f.Add(AppendPathParity(nil, 99, 1,
		PathParityHeader{Group: 5, Index: 4, K: 4, M: 2, Actual: 3, ShardLen: 64},
		bytes.Repeat([]byte{0xAB}, 64)))
	f.Add(AppendPathParity(nil, 1, 0,
		PathParityHeader{Group: 1, Index: 2, K: 2, M: 14, Actual: 2, ShardLen: 2},
		[]byte{0, 0}))
	// Edge shapes: empty, bare prefix, truncated bodies, wrong magic,
	// unknown kind, group-0 parity (reserved), shard length lying.
	f.Add([]byte{})
	f.Add(AppendPathData(nil, 1, 0, 0, 0, nil)[:PathPrefixLen])
	f.Add(AppendPathProbe(nil, PathKindProbe, 1, 0, PathProbe{})[:PathPrefixLen+10])
	f.Add(func() []byte {
		b := AppendPathData(nil, 1, 0, 1, 0, inner)
		b[0] = 0x7B // ARTP magic low byte: no longer a path frame
		return b
	}())
	f.Add(func() []byte {
		b := AppendPathData(nil, 1, 0, 1, 0, inner)
		b[3] = 200 // unknown kind
		return b
	}())
	f.Add(func() []byte {
		b := AppendPathParity(nil, 1, 0,
			PathParityHeader{Group: 0, Index: 4, K: 4, M: 2, ShardLen: 8}, make([]byte, 8))
		return b
	}())
	f.Add(func() []byte {
		b := AppendPathParity(nil, 1, 0,
			PathParityHeader{Group: 3, Index: 4, K: 4, M: 2, ShardLen: 500}, make([]byte, 8))
		return b
	}())

	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, body, err := DecodePathHeader(data)
		if err != nil {
			return
		}
		if !IsPathFrame(data) {
			t.Fatal("DecodePathHeader accepted what IsPathFrame rejects")
		}
		switch hdr.Kind {
		case PathKindData:
			group, index, in, derr := DecodePathData(body)
			if derr != nil {
				return
			}
			reenc := AppendPathData(nil, hdr.Session, hdr.PathID, group, index, in)
			if !bytes.Equal(reenc, data) {
				t.Fatalf("data round trip changed bytes:\n%x\n%x", data, reenc)
			}
		case PathKindProbe, PathKindProbeAck:
			p, derr := DecodePathProbe(body)
			if derr != nil {
				return
			}
			reenc := AppendPathProbe(nil, hdr.Kind, hdr.Session, hdr.PathID, p)
			// The probe body is fixed-length; trailing garbage is ignored
			// by the decoder, so compare only the canonical bytes.
			if !bytes.Equal(reenc, data[:len(reenc)]) {
				t.Fatalf("probe round trip changed bytes:\n%x\n%x", data, reenc)
			}
			p2, derr := DecodePathProbe(reenc[PathPrefixLen:])
			if derr != nil || p2 != p {
				t.Fatalf("probe re-decode mismatch: %v %+v %+v", derr, p, p2)
			}
		case PathKindParity:
			ph, shard, derr := DecodePathParity(body)
			if derr != nil {
				return
			}
			if int(ph.ShardLen) != len(shard) {
				t.Fatalf("declared shard %d, returned %d", ph.ShardLen, len(shard))
			}
			reenc := AppendPathParity(nil, hdr.Session, hdr.PathID, ph, shard)
			if !bytes.Equal(reenc, data) {
				t.Fatalf("parity round trip changed bytes:\n%x\n%x", data, reenc)
			}
		}
	})
}

// FuzzPathReassembler drives the receive-side FEC state machine with
// adversarial shard sequences: arbitrary group ids, indexes, geometry
// and shard contents must never panic, never produce an inner frame
// longer than a shard, and keep the repair accounting non-negative.
func FuzzPathReassembler(f *testing.F) {
	// Seeds: a clean repair sequence and a few degenerate shapes, encoded
	// as a flat byte script (op, args...) interpreted below.
	f.Add([]byte{0, 1, 0, 8, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{1, 1, 2, 2, 1, 2, 8, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0, 2, 1, 4, 9, 9, 9, 9, 1, 2, 2, 2, 1, 2, 6, 1, 1, 1, 1, 1, 1})
	f.Add(bytes.Repeat([]byte{0, 1, 1, 1, 0xFF}, 40)) // hammer one group

	f.Fuzz(func(t *testing.T, script []byte) {
		rx := newFECReassembler()
		for len(script) >= 4 {
			op := script[0]
			group := uint32(script[1])
			index := script[2]
			n := int(script[3])
			script = script[4:]
			if n > len(script) {
				n = len(script)
			}
			blob := script[:n]
			script = script[n:]
			switch op % 2 {
			case 0:
				for _, out := range rx.onData(group, index, blob) {
					if len(out) > len(blob)+maxFrameLen {
						t.Fatal("recovered frame implausibly long")
					}
				}
			case 1:
				if n < 2 {
					continue
				}
				hdr := PathParityHeader{
					Group:    group,
					Index:    index,
					K:        1 + blob[0]%8,
					M:        1 + blob[1]%4,
					Actual:   blob[0] % 9,
					ShardLen: uint16(n),
				}
				for _, out := range rx.onParity(hdr, blob) {
					if len(out) > int(hdr.ShardLen) {
						t.Fatal("recovered frame longer than shard")
					}
				}
			}
		}
		rx.drain()
		if rx.Repaired < 0 || rx.Unrepaired < 0 {
			t.Fatalf("negative accounting: %d %d", rx.Repaired, rx.Unrepaired)
		}
	})
}
