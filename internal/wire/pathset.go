// PathSet is the client side of multipath ARTP (Section VI-D, Fig. 5):
// one logical transport over N concurrent subflows — one PacketConn per
// access link (WiFi, LTE, ...). The Conn above keeps a single sequence
// space and retransmit map; the PathSet decides, frame by frame, which
// access link carries each datagram:
//
//   - interactive traffic (control frames and the highest priority band)
//     is pinned to the lowest-RTT live path;
//   - bulk bands stripe across the live paths by delivery-rate weight
//     (when striping is enabled; otherwise they follow the interactive
//     choice — pure failover);
//   - cross-path FEC groups the data frames of each path and ships the
//     parity over a different path, so a burst on one access link repairs
//     from the other without end-to-end retransmission;
//   - every path runs its own probe heartbeat and RTT/loss EWMA through
//     the state machine up → degraded → down → probing, and on path-down
//     evidence the frames in flight on the dead path are re-enqueued onto
//     the survivors immediately (sub-RTT failover) instead of waiting out
//     retransmit timers.
//
// The probing cadence is deliberately much faster than the connection
// keepalive: a dead access link is detected and evacuated within a few
// probe intervals, so the Conn's dead-peer detector (and the session's
// re-dial machinery above it) never fires while at least one path lives.
package wire

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"marnet/internal/core"
	"marnet/internal/obs"
	"marnet/internal/vclock"
)

// PathState is one subflow's position in the probing state machine.
type PathState int

// Path states: Up carries everything; Degraded (loss EWMA above the
// threshold) still carries traffic but loses interactive pinning; Down
// was just declared dead (in-flight frames evacuated); Probing is dead
// with recovery probes in flight.
const (
	PathUp PathState = iota
	PathDegraded
	PathDown
	PathProbing
)

// String renders the state for diagnostics and metrics labels.
func (s PathState) String() string {
	switch s {
	case PathUp:
		return "up"
	case PathDegraded:
		return "degraded"
	case PathDown:
		return "down"
	case PathProbing:
		return "probing"
	}
	return "?"
}

// stateRank orders states by scheduling preference.
func (s PathState) rank() int {
	switch s {
	case PathUp:
		return 0
	case PathDegraded:
		return 1
	case PathProbing:
		return 2
	default: // PathDown
		return 3
	}
}

// PathConf names one subflow and its transport. The PathSet owns the
// transport and closes it on Close.
type PathConf struct {
	Name string
	PC   PacketConn
}

// PathFEC configures cross-path parity: every K data frames sent on one
// path produce M Reed–Solomon repair shards carried on another. K=0
// disables FEC. FlushAfter bounds how long a partial group may wait for
// members before its parity ships anyway (default 25 ms).
type PathFEC struct {
	K, M       int
	FlushAfter time.Duration
}

// PathSetConfig tunes a PathSet.
type PathSetConfig struct {
	// Session links the subflows on the wire; both ends must agree (the
	// PathRouter keys its per-client state on it). Must be nonzero.
	Session uint64
	// Peer is the remote address frames are routed to. When nil it is
	// learned from the first outbound write.
	Peer *net.UDPAddr
	// Clock supplies time and timers (nil = system clock).
	Clock vclock.Clock
	// ProbeInterval is the per-path heartbeat period (default 50 ms). It
	// should be several times shorter than the Conn keepalive so failover
	// completes before dead-peer detection can fire.
	ProbeInterval time.Duration
	// ProbeMiss is how many consecutive unanswered probes declare a path
	// down (default 2).
	ProbeMiss int
	// DegradeLoss is the probe-loss EWMA above which an up path turns
	// degraded (default 0.4); it recovers below half that.
	DegradeLoss float64
	// FEC enables cross-path parity groups.
	FEC PathFEC
	// Stripe spreads bulk bands across live paths by delivery-rate
	// weight. Off, every frame follows the interactive path choice.
	Stripe bool
	// OnPathState observes per-path transitions (called without internal
	// locks held).
	OnPathState func(path string, st PathState)
	// Recorder, when set, receives an EvPathState flight-recorder event on
	// every subflow transition and freezes a snapshot when a path dies.
	Recorder *obs.FlightRecorder
}

// frameKey identifies one reliable frame across the wire layer.
type frameKey struct {
	stream uint16
	seq    int64
}

// inflightEntry remembers which path carried a reliable frame (ack
// attribution and failover evacuation).
type inflightEntry struct {
	path  int
	bytes int
}

// maxInflightEntries bounds the attribution map; beyond it the oldest
// entries are dropped (attribution degrades gracefully to "unknown").
const maxInflightEntries = 8192

// subPath is the per-subflow state.
type subPath struct {
	name string
	pc   PacketConn

	state        PathState
	srtt         time.Duration
	loss         float64
	lossKnown    bool
	pending      int // probes sent since the last probe-ack
	probeSeq     uint32
	deliveryRate float64 // acked bytes/s EWMA
	ackedBytes   int64   // since the last probe fire
	deficit      float64 // striping credit

	sentFrames  int64
	sentBytes   int64
	probesSent  int64
	probesAcked int64
	downs       int64
}

// PathSet multiplexes one logical ARTP transport over N subflows. It
// implements PacketConn (and BatchWriter), so DialVia(pathSet, peer, cfg)
// runs the unmodified Conn machinery over it.
type PathSet struct {
	cfg   PathSetConfig
	clock vclock.Clock
	epoch time.Time
	sync  bool

	mu       sync.Mutex
	paths    []*subPath
	peer     *net.UDPAddr
	recv     func(pkt []byte, from *net.UDPAddr)
	closed   bool
	requeue  func(keys []frameKey) // bound Conn failover hook
	inflight map[frameKey]inflightEntry
	infifo   []frameKey // insertion order, for bounded eviction

	tx *fecGroups
	rx *fecReassembler

	probeTimer vclock.Timer
	probeFn    func()
	flushTimer vclock.Timer
	flushFn    func()

	failoverFrames int64
	paritySent     int64
}

var (
	_ PacketConn  = (*PathSet)(nil)
	_ BatchWriter = (*PathSet)(nil)
)

// NewPathSet builds a path manager over the given subflows.
func NewPathSet(paths []PathConf, cfg PathSetConfig) (*PathSet, error) {
	if len(paths) == 0 {
		return nil, errors.New("wire: path set needs at least one path")
	}
	if cfg.Session == 0 {
		return nil, errors.New("wire: path set needs a nonzero session id")
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 50 * time.Millisecond
	}
	if cfg.ProbeMiss <= 0 {
		cfg.ProbeMiss = 2
	}
	if cfg.DegradeLoss <= 0 {
		cfg.DegradeLoss = 0.4
	}
	clock := vclock.OrSystem(cfg.Clock)
	ps := &PathSet{
		cfg:      cfg,
		clock:    clock,
		epoch:    clock.Now(),
		peer:     cfg.Peer,
		inflight: make(map[frameKey]inflightEntry),
		rx:       newFECReassembler(),
		sync:     true,
	}
	if cfg.FEC.K > 0 {
		if cfg.FEC.M <= 0 || cfg.FEC.K+cfg.FEC.M > 16 {
			return nil, fmt.Errorf("wire: path FEC geometry k=%d m=%d out of range", cfg.FEC.K, cfg.FEC.M)
		}
		tx, err := newFECGroups(cfg.FEC.K, cfg.FEC.M)
		if err != nil {
			return nil, err
		}
		ps.tx = tx
		if ps.cfg.FEC.FlushAfter <= 0 {
			ps.cfg.FEC.FlushAfter = 25 * time.Millisecond
		}
	}
	for _, p := range paths {
		ps.paths = append(ps.paths, &subPath{name: p.Name, pc: p.PC, state: PathUp})
		if !p.PC.Synchronous() {
			ps.sync = false
		}
	}
	ps.probeFn = ps.probeFire
	ps.flushFn = ps.flushFire
	return ps, nil
}

// bindConn installs the failover hook: newConnCommon calls this when a
// Conn is built directly over a PathSet, so path-down evacuation can
// re-enqueue in-flight frames without exporting Conn internals.
func (ps *PathSet) bindConn(c *Conn) {
	ps.mu.Lock()
	ps.requeue = c.requeueFrames
	ps.mu.Unlock()
}

// Start installs the upward delivery callback, starts every subflow, and
// arms the probe (and FEC flush) chains.
func (ps *PathSet) Start(recv func(pkt []byte, from *net.UDPAddr)) {
	ps.mu.Lock()
	ps.recv = recv
	ps.probeTimer = ps.clock.AfterFunc(ps.cfg.ProbeInterval, ps.probeFn)
	if ps.tx != nil {
		ps.flushTimer = ps.clock.AfterFunc(ps.cfg.FEC.FlushAfter, ps.flushFn)
	}
	ps.mu.Unlock()
	for i, p := range ps.paths {
		idx := i
		p.pc.Start(func(pkt []byte, from *net.UDPAddr) { ps.handle(idx, pkt, from) })
	}
}

// Synchronous reports whether every subflow is simulated.
func (ps *PathSet) Synchronous() bool { return ps.sync }

// LocalAddr reports the first subflow's bound address.
func (ps *PathSet) LocalAddr() net.Addr { return ps.paths[0].pc.LocalAddr() }

// Close stops the probing machinery and closes every subflow.
func (ps *PathSet) Close() error {
	ps.mu.Lock()
	if ps.closed {
		ps.mu.Unlock()
		return nil
	}
	ps.closed = true
	for _, t := range []vclock.Timer{ps.probeTimer, ps.flushTimer} {
		if t != nil {
			t.Stop()
		}
	}
	ps.probeTimer, ps.flushTimer = nil, nil
	ps.rx.drain()
	ps.mu.Unlock()
	var first error
	for _, p := range ps.paths {
		if err := p.pc.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// micros is the probe timestamp base.
func (ps *PathSet) micros() uint64 {
	return uint64(ps.clock.Now().Sub(ps.epoch).Microseconds())
}

// WriteToUDP routes one encoded ARTP frame onto a subflow. The frame's
// plaintext header (headers stay in the clear even when payloads are
// sealed) decides the latency class; reliable data frames are recorded
// for ack attribution and failover; FEC groups accumulate and emit
// parity onto a different path.
func (ps *PathSet) WriteToUDP(b []byte, addr *net.UDPAddr) (int, error) {
	hdr, _, derr := DecodeFrame(b)

	ps.mu.Lock()
	if ps.closed {
		ps.mu.Unlock()
		return 0, net.ErrClosed
	}
	if ps.peer == nil {
		ps.peer = addr
	}
	if derr != nil {
		// Not an ARTP frame we understand: forward on the best path,
		// ungrouped, so the transport stays transparent.
		idx := ps.bestLocked(-1)
		frame := AppendPathData(make([]byte, 0, PathDataOver+len(b)), ps.cfg.Session, uint8(idx), 0, 0, b)
		ps.chargeLocked(idx, len(frame))
		pc := ps.paths[idx].pc
		ps.mu.Unlock()
		return writeAdjusted(pc, frame, addr, len(b))
	}

	idx := ps.pickLocked(hdr)
	var group uint32
	var index uint8
	var parity []parityOut
	if hdr.Type == TypeData {
		if core.Class(hdr.Class) != core.ClassFullBestEffort {
			ps.recordInflightLocked(frameKey{hdr.Stream, hdr.Seq}, inflightEntry{path: idx, bytes: len(b)})
		}
		if ps.tx != nil {
			group, index, parity = ps.tx.place(idx, b)
		}
	}
	frame := AppendPathData(make([]byte, 0, PathDataOver+len(b)), ps.cfg.Session, uint8(idx), group, index, b)
	ps.chargeLocked(idx, len(frame))
	pc := ps.paths[idx].pc
	var parityWrites []pathWrite
	if len(parity) > 0 {
		parityWrites = ps.encodeParityLocked(idx, parity)
	}
	ps.mu.Unlock()

	n, err := writeAdjusted(pc, frame, addr, len(b))
	for _, w := range parityWrites {
		w.pc.WriteToUDP(w.frame, addr) //nolint:errcheck // parity is best-effort by design
	}
	return n, err
}

// writeAdjusted forwards the encapsulated frame but reports the caller's
// original length on success, preserving WriteToUDP semantics for the
// layer above.
func writeAdjusted(pc PacketConn, frame []byte, addr *net.UDPAddr, orig int) (int, error) {
	if _, err := pc.WriteToUDP(frame, addr); err != nil {
		return 0, err
	}
	return orig, nil
}

// WriteBatch implements BatchWriter: each frame still gets its own path
// decision, so a burst of mixed bands fans out correctly.
func (ps *PathSet) WriteBatch(dgs []Datagram) (int, error) {
	for i := range dgs {
		if _, err := ps.WriteToUDP(dgs[i].B, dgs[i].Addr); err != nil {
			return i, err
		}
	}
	return len(dgs), nil
}

// pathWrite is one encapsulated datagram bound for a subflow: the
// client side fills pc (each subflow is its own transport), the router
// fills addr (all subflows share one socket).
type pathWrite struct {
	pc    PacketConn
	addr  *net.UDPAddr
	frame []byte
}

// encodeParityLocked encapsulates repair shards onto a path other than
// the one that carried the data (cross-path repair); with one live path
// the parity rides the same path — still useful against random loss.
func (ps *PathSet) encodeParityLocked(dataPath int, parity []parityOut) []pathWrite {
	idx := ps.bestLocked(dataPath)
	out := make([]pathWrite, 0, len(parity))
	for _, p := range parity {
		frame := AppendPathParity(make([]byte, 0, PathPrefixLen+pathParityOver+len(p.shard)),
			ps.cfg.Session, uint8(idx), p.hdr, p.shard)
		ps.chargeLocked(idx, len(frame))
		ps.paritySent++
		out = append(out, pathWrite{pc: ps.paths[idx].pc, frame: frame})
	}
	return out
}

// chargeLocked accounts one outbound datagram to a path.
func (ps *PathSet) chargeLocked(idx, bytes int) {
	ps.paths[idx].sentFrames++
	ps.paths[idx].sentBytes += int64(bytes)
}

// recordInflightLocked tracks a reliable frame's path, evicting the
// oldest entries past the bound.
func (ps *PathSet) recordInflightLocked(k frameKey, e inflightEntry) {
	if _, ok := ps.inflight[k]; !ok {
		ps.infifo = append(ps.infifo, k)
	}
	ps.inflight[k] = e
	for len(ps.inflight) > maxInflightEntries && len(ps.infifo) > 0 {
		old := ps.infifo[0]
		ps.infifo = ps.infifo[1:]
		delete(ps.inflight, old)
	}
}

// bestLocked returns the most attractive path other than `except`
// (pass -1 for no exclusion): best state rank first, then lowest SRTT
// (unmeasured paths lose to measured ones), then lowest index. It never
// returns "none" — a fully dead set still picks a path, so the transport
// never goes mute (the probe that revives a path has to travel somehow).
func (ps *PathSet) bestLocked(except int) int {
	best := -1
	for i, p := range ps.paths {
		if i == except {
			continue
		}
		if best == -1 || pathLess(p, ps.paths[best], i, best) {
			best = i
		}
	}
	if best == -1 {
		return except // single-path set asked to exclude its only path
	}
	return best
}

// pathLess orders (a,i) before (b,j) by state rank, then SRTT, then index.
func pathLess(a, b *subPath, i, j int) bool {
	if ra, rb := a.state.rank(), b.state.rank(); ra != rb {
		return ra < rb
	}
	switch {
	case a.srtt == 0 && b.srtt == 0:
		return i < j
	case a.srtt == 0:
		return false
	case b.srtt == 0:
		return true
	case a.srtt != b.srtt:
		return a.srtt < b.srtt
	}
	return i < j
}

// pickLocked is the latency-class-aware scheduler.
func (ps *PathSet) pickLocked(hdr Header) int {
	interactive := hdr.Type != TypeData || core.Priority(hdr.Prio).Band() == 0 ||
		core.Class(hdr.Class) == core.ClassCritical
	if interactive || !ps.cfg.Stripe {
		return ps.bestLocked(-1)
	}
	// Bulk striping: deficit-weighted round robin over the live (up or
	// degraded) paths, weighted by measured delivery rate.
	live := live(ps.paths)
	if len(live) < 2 {
		return ps.bestLocked(-1)
	}
	var totalW float64
	weights := make([]float64, len(live))
	for n, i := range live {
		w := ps.paths[i].deliveryRate
		if w <= 0 {
			w = 1
		}
		weights[n] = w
		totalW += w
	}
	best := live[0]
	for _, i := range live[1:] {
		if ps.paths[i].deficit > ps.paths[best].deficit {
			best = i
		}
	}
	for n, i := range live {
		ps.paths[i].deficit += weights[n] / totalW
	}
	ps.paths[best].deficit -= 1
	return best
}

// live returns the indexes of paths in state Up or Degraded.
func live(paths []*subPath) []int {
	out := make([]int, 0, len(paths))
	for i, p := range paths {
		if p.state == PathUp || p.state == PathDegraded {
			out = append(out, i)
		}
	}
	return out
}

// probeFire is the heartbeat: per path it scores the previous interval
// (probe answered or not), walks the state machine, evacuates in-flight
// frames from a freshly dead path, sends the next probe, and re-arms.
func (ps *PathSet) probeFire() {
	type notif struct {
		name string
		st   PathState
	}
	var notifs []notif
	var evac []frameKey
	pathDied := false

	ps.mu.Lock()
	if ps.closed {
		ps.mu.Unlock()
		return
	}
	interval := ps.cfg.ProbeInterval
	peer := ps.peer
	var probes []pathWrite
	for i, p := range ps.paths {
		if p.probesSent > 0 {
			miss := 0.0
			if p.pending > 0 {
				miss = 1
			}
			if !p.lossKnown {
				p.loss, p.lossKnown = miss, true
			} else {
				p.loss += 0.25 * (miss - p.loss)
			}
			// Delivery-rate EWMA from acked bytes this interval.
			rate := float64(p.ackedBytes) / interval.Seconds()
			p.ackedBytes = 0
			p.deliveryRate += 0.25 * (rate - p.deliveryRate)
		}
		prev := p.state
		switch {
		case p.pending >= ps.cfg.ProbeMiss && (p.state == PathUp || p.state == PathDegraded):
			p.state = PathDown
			p.downs++
			evac = append(evac, ps.evacuateLocked(i)...)
		case p.state == PathDown:
			p.state = PathProbing
		case p.state == PathUp && p.loss >= ps.cfg.DegradeLoss:
			p.state = PathDegraded
		case p.state == PathDegraded && p.loss < ps.cfg.DegradeLoss/2:
			p.state = PathUp
		}
		if p.state != prev {
			ps.cfg.Recorder.Record(obs.EvPathState, uint8(p.state), uint16(i), 0, uint64(p.srtt.Microseconds()))
			if p.state == PathDown {
				pathDied = true
			}
			if ps.cfg.OnPathState != nil {
				notifs = append(notifs, notif{p.name, p.state})
			}
		}
		if peer != nil {
			probe := PathProbe{
				Seq:           p.probeSeq,
				SendMicro:     ps.micros(),
				SRTTMicro:     uint32(p.srtt.Microseconds()),
				IntervalMicro: uint32(interval.Microseconds()),
				State:         uint8(p.state),
			}
			p.probeSeq++
			p.pending++
			p.probesSent++
			frame := AppendPathProbe(make([]byte, 0, PathPrefixLen+pathProbeLen),
				PathKindProbe, ps.cfg.Session, uint8(i), probe)
			ps.chargeLocked(i, len(frame))
			probes = append(probes, pathWrite{pc: p.pc, frame: frame})
		}
	}
	ps.failoverFrames += int64(len(evac))
	requeue := ps.requeue
	ps.probeTimer = vclock.Rearm(ps.clock, ps.probeTimer, interval, ps.probeFn)
	ps.mu.Unlock()

	if pathDied {
		// Freeze outside the lock: the ring now holds the sends, losses
		// and state flips that led into the failover.
		ps.cfg.Recorder.Freeze("path-down")
	}
	for _, n := range notifs {
		ps.cfg.OnPathState(n.name, n.st)
	}
	for _, w := range probes {
		w.pc.WriteToUDP(w.frame, peer) //nolint:errcheck // best-effort probe
	}
	if len(evac) > 0 && requeue != nil {
		requeue(evac)
	}
}

// evacuateLocked collects (and forgets) every reliable frame in flight
// on a dead path, in deterministic order, for immediate re-enqueue on
// the survivors.
func (ps *PathSet) evacuateLocked(path int) []frameKey {
	var keys []frameKey
	for k, e := range ps.inflight {
		if e.path == path {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].stream != keys[j].stream {
			return keys[i].stream < keys[j].stream
		}
		return keys[i].seq < keys[j].seq
	})
	for _, k := range keys {
		delete(ps.inflight, k)
	}
	return keys
}

// flushFire closes partial FEC groups that waited FlushAfter, ships their
// parity, and re-arms.
func (ps *PathSet) flushFire() {
	ps.mu.Lock()
	if ps.closed || ps.tx == nil {
		ps.mu.Unlock()
		return
	}
	var writes []pathWrite
	if parity := ps.tx.flush(); len(parity) > 0 {
		writes = ps.encodeParityLocked(-1, parity)
	}
	peer := ps.peer
	ps.flushTimer = vclock.Rearm(ps.clock, ps.flushTimer, ps.cfg.FEC.FlushAfter, ps.flushFn)
	ps.mu.Unlock()
	for _, w := range writes {
		w.pc.WriteToUDP(w.frame, peer) //nolint:errcheck // parity is best-effort
	}
}

// handle demultiplexes one inbound datagram from subflow pathIdx.
func (ps *PathSet) handle(pathIdx int, pkt []byte, from *net.UDPAddr) {
	if !IsPathFrame(pkt) {
		// A legacy (single-path) peer: deliver as-is.
		ps.mu.Lock()
		recv := ps.recv
		closed := ps.closed
		ps.mu.Unlock()
		if recv != nil && !closed {
			recv(pkt, from)
		}
		return
	}
	hdr, body, err := DecodePathHeader(pkt)
	if err != nil || hdr.Session != ps.cfg.Session {
		return
	}
	switch hdr.Kind {
	case PathKindProbe:
		// Echo so the far side can measure this direction too.
		ack := append([]byte(nil), pkt...)
		ack[3] = PathKindProbeAck
		ps.paths[pathIdx].pc.WriteToUDP(ack, from) //nolint:errcheck // best-effort echo
	case PathKindProbeAck:
		probe, perr := DecodePathProbe(body)
		if perr != nil {
			return
		}
		ps.onProbeAck(pathIdx, probe)
	case PathKindData:
		group, index, inner, derr := DecodePathData(body)
		if derr != nil {
			return
		}
		ps.onPathData(group, index, inner, from)
	case PathKindParity:
		phdr, shard, perr := DecodePathParity(body)
		if perr != nil {
			return
		}
		ps.mu.Lock()
		recovered := ps.rx.onParity(phdr, shard)
		recv, closed := ps.recv, ps.closed
		ps.mu.Unlock()
		if recv == nil || closed {
			return
		}
		for _, frame := range recovered {
			recv(frame, from)
		}
	}
}

// onProbeAck folds an answered probe into the path's estimators and
// revives dead paths.
func (ps *PathSet) onProbeAck(pathIdx int, probe PathProbe) {
	var name string
	var st PathState
	notify := false

	ps.mu.Lock()
	if ps.closed {
		ps.mu.Unlock()
		return
	}
	p := ps.paths[pathIdx]
	p.pending = 0
	p.probesAcked++
	rtt := time.Duration(ps.micros()-probe.SendMicro) * time.Microsecond
	if rtt > 0 {
		if p.srtt == 0 {
			p.srtt = rtt
		} else {
			p.srtt = (7*p.srtt + rtt) / 8
		}
	}
	if p.state == PathDown || p.state == PathProbing {
		p.state = PathUp
		p.loss, p.lossKnown = 0, true
		ps.cfg.Recorder.Record(obs.EvPathState, uint8(p.state), uint16(pathIdx), 0, uint64(p.srtt.Microseconds()))
		if ps.cfg.OnPathState != nil {
			name, st, notify = p.name, p.state, true
		}
	}
	ps.mu.Unlock()
	if notify {
		ps.cfg.OnPathState(name, st)
	}
}

// onPathData strips the encapsulation, attributes any inner ACK back to
// the path that carried the acked frame, feeds the FEC reassembler, and
// delivers the inner frame (plus anything the parity just repaired).
func (ps *PathSet) onPathData(group uint32, index uint8, inner []byte, from *net.UDPAddr) {
	var recovered [][]byte
	ps.mu.Lock()
	if ps.closed {
		ps.mu.Unlock()
		return
	}
	if ih, _, err := DecodeFrame(inner); err == nil && ih.Type == TypeAck {
		if e, ok := ps.inflight[frameKey{ih.Stream, ih.Seq}]; ok {
			delete(ps.inflight, frameKey{ih.Stream, ih.Seq})
			if e.path < len(ps.paths) {
				ps.paths[e.path].ackedBytes += int64(e.bytes)
			}
		}
	}
	recovered = ps.rx.onData(group, index, inner)
	recv, closed := ps.recv, ps.closed
	ps.mu.Unlock()
	if recv == nil || closed {
		return
	}
	recv(inner, from)
	for _, frame := range recovered {
		recv(frame, from)
	}
}

// PathStats is a snapshot of one subflow.
type PathStats struct {
	Name         string
	State        PathState
	SRTT         time.Duration
	Loss         float64
	DeliveryRate float64 // acked bytes/s
	SentFrames   int64
	SentBytes    int64
	ProbesSent   int64
	ProbesAcked  int64
	Downs        int64
}

// PathSetStats is a snapshot of the whole set.
type PathSetStats struct {
	Paths          []PathStats
	FailoverFrames int64 // frames evacuated off dead paths
	ParitySent     int64
	FECRepaired    int64 // inner frames regenerated from parity
	FECUnrepaired  int64 // holes still missing when their group retired
}

// Stats snapshots the set.
func (ps *PathSet) Stats() PathSetStats {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	out := PathSetStats{
		FailoverFrames: ps.failoverFrames,
		ParitySent:     ps.paritySent,
		FECRepaired:    ps.rx.Repaired,
		FECUnrepaired:  ps.rx.Unrepaired,
	}
	for _, p := range ps.paths {
		out.Paths = append(out.Paths, PathStats{
			Name: p.name, State: p.state, SRTT: p.srtt, Loss: p.loss,
			DeliveryRate: p.deliveryRate,
			SentFrames:   p.sentFrames, SentBytes: p.sentBytes,
			ProbesSent: p.probesSent, ProbesAcked: p.probesAcked,
			Downs: p.downs,
		})
	}
	return out
}

// PublishMetrics registers per-path gauges and set-level counters on an
// observability registry. Each path gets a path="<name>" label.
func (ps *PathSet) PublishMetrics(reg *obs.Registry, labels ...obs.Label) {
	if reg == nil {
		return
	}
	reg.CounterFunc("mar_path_failover_frames_total", func() int64 { return ps.Stats().FailoverFrames }, labels...)
	reg.CounterFunc("mar_path_parity_sent_total", func() int64 { return ps.Stats().ParitySent }, labels...)
	reg.CounterFunc("mar_path_fec_repaired_total", func() int64 { return ps.Stats().FECRepaired }, labels...)
	reg.CounterFunc("mar_path_fec_unrepaired_total", func() int64 { return ps.Stats().FECUnrepaired }, labels...)
	for i, p := range ps.paths {
		idx := i
		ls := append(append([]obs.Label(nil), labels...), obs.L("path", p.name))
		at := func() PathStats { return ps.Stats().Paths[idx] }
		reg.GaugeFunc("mar_path_srtt_seconds", func() float64 { return at().SRTT.Seconds() }, ls...)
		reg.GaugeFunc("mar_path_loss_rate", func() float64 { return at().Loss }, ls...)
		reg.GaugeFunc("mar_path_delivery_bytes_per_sec", func() float64 { return at().DeliveryRate }, ls...)
		reg.GaugeFunc("mar_path_state", func() float64 { return float64(at().State) }, ls...)
		reg.CounterFunc("mar_path_sent_frames_total", func() int64 { return at().SentFrames }, ls...)
		reg.CounterFunc("mar_path_probes_sent_total", func() int64 { return at().ProbesSent }, ls...)
		reg.CounterFunc("mar_path_probes_acked_total", func() int64 { return at().ProbesAcked }, ls...)
		reg.CounterFunc("mar_path_downs_total", func() int64 { return at().Downs }, ls...)
	}
}
