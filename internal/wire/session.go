package wire

import (
	"math/rand"
	"sync"
	"time"
)

// SessionConfig tunes automatic session resumption.
type SessionConfig struct {
	// RedialMin/RedialMax bound the exponential re-dial backoff
	// (defaults 50 ms / 1 s).
	RedialMin time.Duration
	RedialMax time.Duration
	// Seed drives the backoff jitter, keeping chaos runs reproducible.
	Seed int64
	// OnStateChange observes the session's liveness: StateDead when an
	// outage is detected (a re-dial starts immediately), StateActive when
	// the path recovers, StateClosed when Close is called. Internal re-dial
	// churn is not forwarded.
	OnStateChange func(State)
}

// Session is a client-side connection that survives outages: it watches
// the underlying Conn's keepalive verdict and, on death, re-dials and
// re-establishes its streams while preserving app-level sequence numbers —
// so a server that kept per-peer receive state across the outage does not
// mistake resumed traffic for duplicates. This is the paper's graceful-
// degradation doctrine applied to the session itself: an outage costs
// in-flight frames, never the session.
type Session struct {
	addr string
	base Config
	scfg SessionConfig

	mu         sync.Mutex
	conn       *Conn
	gen        int
	closed     bool
	down       bool // true from outage detection until liveness is confirmed
	reconnects int64
	rng        *rand.Rand

	done chan struct{}
}

// DialSession dials addr with automatic resumption. cfg.Keepalive is the
// outage detector; if unset it defaults to 250 ms (KeepaliveMiss defaults
// to 3, so a dead path is declared within ~750 ms). cfg.OnStateChange is
// reserved for the session's own use — observe via scfg.OnStateChange.
func DialSession(addr string, cfg Config, scfg SessionConfig) (*Session, error) {
	if cfg.Keepalive <= 0 {
		cfg.Keepalive = 250 * time.Millisecond
	}
	if scfg.RedialMin <= 0 {
		scfg.RedialMin = 50 * time.Millisecond
	}
	if scfg.RedialMax <= 0 {
		scfg.RedialMax = time.Second
	}
	s := &Session{
		addr: addr,
		base: cfg,
		scfg: scfg,
		rng:  rand.New(rand.NewSource(scfg.Seed)),
		done: make(chan struct{}),
	}
	conn, err := Dial(addr, s.cfgFor(0))
	if err != nil {
		return nil, err
	}
	s.conn = conn
	return s, nil
}

// cfgFor binds the connection callbacks to generation gen so events from
// superseded connections cannot trigger spurious resumptions.
func (s *Session) cfgFor(gen int) Config {
	cfg := s.base
	cfg.OnStateChange = func(st State) {
		if st != StateActive && st != StateDead {
			return // internal closes are session bookkeeping
		}
		s.mu.Lock()
		if gen != s.gen || s.closed {
			s.mu.Unlock()
			return
		}
		// Collapse per-connection churn into session-level edges: one Dead
		// per outage, one Active per recovery.
		var notify bool
		if st == StateDead {
			notify = !s.down
			s.down = true
		} else {
			notify = s.down
			s.down = false
		}
		cb := s.scfg.OnStateChange
		s.mu.Unlock()
		if notify && cb != nil {
			cb(st)
		}
		if st == StateDead {
			go s.resume(gen)
		}
	}
	return cfg
}

// confirmRecovery watches a freshly resumed connection for evidence the
// peer is actually reachable again (a re-dial succeeds even into a
// blackhole — UDP has no handshake) and fires the session's StateActive
// edge once a frame arrives.
func (s *Session) confirmRecovery(conn *Conn, gen int, since time.Time) {
	ticker := time.NewTicker(10 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-ticker.C:
		}
		s.mu.Lock()
		if gen != s.gen || s.closed {
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
		if !conn.LastActivity().After(since) {
			continue
		}
		s.mu.Lock()
		notify := s.down
		s.down = false
		cb := s.scfg.OnStateChange
		s.mu.Unlock()
		if notify && cb != nil {
			cb(StateActive)
		}
		return
	}
}

// resume replaces a dead connection, carrying forward stream sequence
// numbers, with seeded-jitter exponential backoff between attempts.
func (s *Session) resume(gen int) {
	s.mu.Lock()
	if s.closed || gen != s.gen {
		s.mu.Unlock()
		return
	}
	s.gen++
	newGen := s.gen
	old := s.conn
	s.mu.Unlock()

	seqs := old.streamSeqs()
	old.Close() //nolint:errcheck // superseded connection

	backoff := s.scfg.RedialMin
	for {
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return
		}
		conn, err := Dial(s.addr, s.cfgFor(newGen))
		if err == nil {
			conn.setStreamSeqs(seqs)
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				conn.Close() //nolint:errcheck // racing shutdown
				return
			}
			s.conn = conn
			s.reconnects++
			installed := time.Now()
			s.mu.Unlock()
			go s.confirmRecovery(conn, newGen, installed)
			return
		}
		s.mu.Lock()
		sleep := backoff/2 + time.Duration(s.rng.Int63n(int64(backoff/2)+1))
		s.mu.Unlock()
		timer := time.NewTimer(sleep)
		select {
		case <-timer.C:
		case <-s.done:
			timer.Stop()
			return
		}
		if backoff *= 2; backoff > s.scfg.RedialMax {
			backoff = s.scfg.RedialMax
		}
	}
}

// current returns the live connection.
func (s *Session) current() (*Conn, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.conn, !s.closed
}

// Send submits a datagram on a stream of the current connection. During an
// outage window (the instant between a connection dying and its
// replacement being installed) the send is reported as shed rather than
// failing the session.
func (s *Session) Send(streamID uint16, payload []byte) (bool, error) {
	return s.SendTraced(streamID, payload, 0, 0)
}

// SendTraced is Send with trace context attached (see Conn.SendTraced).
func (s *Session) SendTraced(streamID uint16, payload []byte, traceID, spanID uint64) (bool, error) {
	conn, open := s.current()
	if !open {
		return false, ErrClosed
	}
	ok, err := conn.SendTraced(streamID, payload, traceID, spanID)
	if err == ErrClosed {
		if _, stillOpen := s.current(); stillOpen {
			return false, nil // mid-resume: degrade to shed
		}
	}
	return ok, err
}

// Conn exposes the current underlying connection (for stats and address
// queries; it may be superseded at any moment).
func (s *Session) Conn() *Conn {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.conn
}

// State reports the session's liveness: Dead from outage detection until
// the resumed path demonstrably carries frames again.
func (s *Session) State() State {
	s.mu.Lock()
	conn, closed, down := s.conn, s.closed, s.down
	s.mu.Unlock()
	if closed {
		return StateClosed
	}
	if down {
		return StateDead
	}
	return conn.State()
}

// Stats returns the current connection's stream stats. Counters restart
// from zero after a resumption (sequence numbers do not).
func (s *Session) Stats(streamID uint16) StreamStats {
	s.mu.Lock()
	conn := s.conn
	s.mu.Unlock()
	return conn.Stats(streamID)
}

// Reconnects reports how many times the session resumed.
func (s *Session) Reconnects() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reconnects
}

// Close shuts the session down permanently.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conn := s.conn
	close(s.done)
	s.mu.Unlock()
	err := conn.Close()
	if cb := s.scfg.OnStateChange; cb != nil {
		cb(StateClosed)
	}
	return err
}
