package wire

import (
	"math/rand"
	"sync"
	"time"

	"marnet/internal/obs"
	"marnet/internal/vclock"
)

// ConnDialer builds one connection attempt for a session. The session
// supplies the fully wired Config (callbacks bound to the right
// generation); the dialer supplies the transport — a fresh UDP socket in
// production, a fresh simulated endpoint under internal/marsim.
type ConnDialer func(cfg Config) (*Conn, error)

// SessionConfig tunes automatic session resumption.
type SessionConfig struct {
	// RedialMin/RedialMax bound the exponential re-dial backoff
	// (defaults 50 ms / 1 s).
	RedialMin time.Duration
	RedialMax time.Duration
	// Seed drives the backoff jitter, keeping chaos runs reproducible.
	Seed int64
	// OnStateChange observes the session's liveness: StateDead when an
	// outage is detected (a re-dial starts immediately), StateActive when
	// the path recovers, StateClosed when Close is called. Internal re-dial
	// churn is not forwarded.
	OnStateChange func(State)
}

// confirmPeriod is how often a freshly resumed connection is polled for
// evidence of actual reachability.
const confirmPeriod = 10 * time.Millisecond

// Session is a client-side connection that survives outages: it watches
// the underlying Conn's keepalive verdict and, on death, re-dials and
// re-establishes its streams while preserving app-level sequence numbers —
// so a server that kept per-peer receive state across the outage does not
// mistake resumed traffic for duplicates. This is the paper's graceful-
// degradation doctrine applied to the session itself: an outage costs
// in-flight frames, never the session.
//
// All resumption machinery (re-dial backoff, recovery confirmation) runs
// as AfterFunc chains on the connection's clock, so sessions are fully
// deterministic under a virtual clock.
type Session struct {
	base  Config
	scfg  SessionConfig
	dial  ConnDialer
	clock vclock.Clock

	mu         sync.Mutex
	conn       *Conn
	gen        int
	closed     bool
	down       bool // true from outage detection until liveness is confirmed
	reconnects int64
	rng        *rand.Rand

	// Pending resumption timers (guarded by mu): the backoff before the
	// next re-dial attempt, and the recovery-confirmation poll.
	redialTimer  vclock.Timer
	confirmTimer vclock.Timer
}

// DialSession dials addr with automatic resumption. cfg.Keepalive is the
// outage detector; if unset it defaults to 250 ms (KeepaliveMiss defaults
// to 3, so a dead path is declared within ~750 ms). cfg.OnStateChange is
// reserved for the session's own use — observe via scfg.OnStateChange.
func DialSession(addr string, cfg Config, scfg SessionConfig) (*Session, error) {
	return DialSessionWith(func(c Config) (*Conn, error) { return Dial(addr, c) }, cfg, scfg)
}

// DialSessionWith is DialSession over a caller-supplied dialer: each
// connection attempt (the initial one and every re-dial) invokes dial with
// the session's per-generation Config. The dialer must produce a fresh
// transport per call, mirroring how Dial binds a fresh UDP socket.
func DialSessionWith(dial ConnDialer, cfg Config, scfg SessionConfig) (*Session, error) {
	if cfg.Keepalive <= 0 {
		cfg.Keepalive = 250 * time.Millisecond
	}
	if scfg.RedialMin <= 0 {
		scfg.RedialMin = 50 * time.Millisecond
	}
	if scfg.RedialMax <= 0 {
		scfg.RedialMax = time.Second
	}
	s := &Session{
		base:  cfg,
		scfg:  scfg,
		dial:  dial,
		clock: vclock.OrSystem(cfg.Clock),
		rng:   rand.New(rand.NewSource(scfg.Seed)),
	}
	conn, err := dial(s.cfgFor(0))
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.gen != 0 {
		// The connection was declared dead before we could install it (a
		// keepalive verdict can fire mid-dial on a pathological scheduler);
		// the resume machinery already owns the session — this conn is
		// superseded.
		s.mu.Unlock()
		conn.Close() //nolint:errcheck // superseded before install
		return s, nil
	}
	s.conn = conn
	s.mu.Unlock()
	return s, nil
}

// cfgFor binds the connection callbacks to generation gen so events from
// superseded connections cannot trigger spurious resumptions.
func (s *Session) cfgFor(gen int) Config {
	cfg := s.base
	cfg.OnStateChange = func(st State) {
		if st != StateActive && st != StateDead {
			return // internal closes are session bookkeeping
		}
		s.mu.Lock()
		if gen != s.gen || s.closed {
			s.mu.Unlock()
			return
		}
		// Collapse per-connection churn into session-level edges: one Dead
		// per outage, one Active per recovery.
		var notify bool
		if st == StateDead {
			notify = !s.down
			s.down = true
		} else {
			notify = s.down
			s.down = false
		}
		cb := s.scfg.OnStateChange
		s.mu.Unlock()
		if notify && cb != nil {
			cb(st)
		}
		if st == StateDead {
			s.resume(gen)
		}
	}
	return cfg
}

// confirmFire polls a freshly resumed connection for evidence the peer is
// actually reachable again (a re-dial succeeds even into a blackhole — UDP
// has no handshake) and fires the session's StateActive edge once a frame
// arrives.
func (s *Session) confirmFire(conn *Conn, gen int, since time.Time) {
	s.mu.Lock()
	s.confirmTimer = nil
	if gen != s.gen || s.closed {
		s.mu.Unlock()
		return
	}
	if !conn.LastActivity().After(since) {
		s.confirmTimer = s.clock.AfterFunc(confirmPeriod, func() { s.confirmFire(conn, gen, since) })
		s.mu.Unlock()
		return
	}
	notify := s.down
	s.down = false
	cb := s.scfg.OnStateChange
	s.mu.Unlock()
	if notify && cb != nil {
		cb(StateActive)
	}
}

// resume replaces a dead connection, carrying forward stream sequence
// numbers, with seeded-jitter exponential backoff between attempts. It is
// called from the dead connection's keepalive callback; the dial attempts
// run inline and retries are scheduled on the clock.
func (s *Session) resume(gen int) {
	s.mu.Lock()
	if s.closed || gen != s.gen {
		s.mu.Unlock()
		return
	}
	s.gen++
	newGen := s.gen
	old := s.conn
	s.mu.Unlock()

	// A session reset is exactly the moment the flight recorder exists
	// for: freeze the ring so the events leading into the dead-peer
	// verdict survive the reconnect churn.
	if r := s.base.Recorder; r != nil {
		r.Record(obs.EvSessionReset, 0, 0, uint32(newGen), 0)
		r.Freeze("session-reset")
	}

	// old is nil only when the initial dial's connection died before
	// DialSessionWith could install it; there are no sequence numbers to
	// carry forward in that case.
	var seqs map[uint16]int64
	if old != nil {
		seqs = old.streamSeqs()
		old.Close() //nolint:errcheck // superseded connection
	}

	s.redialAttempt(newGen, seqs, s.scfg.RedialMin)
}

// redialAttempt makes one dial attempt for generation gen; on failure it
// schedules the next attempt after a seeded-jitter backoff.
func (s *Session) redialAttempt(gen int, seqs map[uint16]int64, backoff time.Duration) {
	s.mu.Lock()
	s.redialTimer = nil
	if s.closed || gen != s.gen {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()

	conn, err := s.dial(s.cfgFor(gen))
	if err == nil {
		conn.setStreamSeqs(seqs)
		s.mu.Lock()
		if s.closed || gen != s.gen {
			s.mu.Unlock()
			conn.Close() //nolint:errcheck // racing shutdown
			return
		}
		s.conn = conn
		s.reconnects++
		installed := s.clock.Now()
		s.confirmTimer = s.clock.AfterFunc(confirmPeriod, func() { s.confirmFire(conn, gen, installed) })
		s.mu.Unlock()
		return
	}

	s.mu.Lock()
	if s.closed || gen != s.gen {
		s.mu.Unlock()
		return
	}
	sleep := backoff/2 + time.Duration(s.rng.Int63n(int64(backoff/2)+1))
	next := 2 * backoff
	if next > s.scfg.RedialMax {
		next = s.scfg.RedialMax
	}
	s.redialTimer = s.clock.AfterFunc(sleep, func() { s.redialAttempt(gen, seqs, next) })
	s.mu.Unlock()
}

// current returns the live connection.
func (s *Session) current() (*Conn, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.conn, !s.closed
}

// Send submits a datagram on a stream of the current connection. During an
// outage window (the instant between a connection dying and its
// replacement being installed) the send is reported as shed rather than
// failing the session.
func (s *Session) Send(streamID uint16, payload []byte) (bool, error) {
	return s.SendTraced(streamID, payload, 0, 0)
}

// SendTraced is Send with trace context attached (see Conn.SendTraced).
func (s *Session) SendTraced(streamID uint16, payload []byte, traceID, spanID uint64) (bool, error) {
	conn, open := s.current()
	if !open {
		return false, ErrClosed
	}
	ok, err := conn.SendTraced(streamID, payload, traceID, spanID)
	if err == ErrClosed {
		if _, stillOpen := s.current(); stillOpen {
			return false, nil // mid-resume: degrade to shed
		}
	}
	return ok, err
}

// Conn exposes the current underlying connection (for stats and address
// queries; it may be superseded at any moment).
func (s *Session) Conn() *Conn {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.conn
}

// State reports the session's liveness: Dead from outage detection until
// the resumed path demonstrably carries frames again.
func (s *Session) State() State {
	s.mu.Lock()
	conn, closed, down := s.conn, s.closed, s.down
	s.mu.Unlock()
	if closed {
		return StateClosed
	}
	if down {
		return StateDead
	}
	return conn.State()
}

// Stats returns the current connection's stream stats. Counters restart
// from zero after a resumption (sequence numbers do not).
func (s *Session) Stats(streamID uint16) StreamStats {
	s.mu.Lock()
	conn := s.conn
	s.mu.Unlock()
	return conn.Stats(streamID)
}

// SRTT reports the current connection's smoothed round-trip estimate.
// Counter-like stats restart after a resumption, but SRTT re-converges
// within a few exchanges, so it stays a usable controller signal across
// outages.
func (s *Session) SRTT() time.Duration {
	s.mu.Lock()
	conn := s.conn
	s.mu.Unlock()
	return conn.SRTT()
}

// LossRate reports the current connection's smoothed per-transmission
// loss rate in [0,1].
func (s *Session) LossRate() float64 {
	s.mu.Lock()
	conn := s.conn
	s.mu.Unlock()
	return conn.LossRate()
}

// PublishMetrics exposes the session's controller signals on an obs
// registry as read-through gauges that always follow the *current*
// connection — unlike Conn.PublishMetrics, whose closures go stale when
// the session resumes onto a fresh connection:
//
//	mar_wire_session_srtt_seconds     smoothed RTT
//	mar_wire_session_loss_rate        smoothed per-transmission loss rate
//	mar_wire_session_reconnects_total resumption count
func (s *Session) PublishMetrics(reg *obs.Registry, labels ...obs.Label) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("mar_wire_session_srtt_seconds", func() float64 { return s.SRTT().Seconds() }, labels...)
	reg.GaugeFunc("mar_wire_session_loss_rate", s.LossRate, labels...)
	reg.CounterFunc("mar_wire_session_reconnects_total", s.Reconnects, labels...)
}

// Reconnects reports how many times the session resumed.
func (s *Session) Reconnects() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reconnects
}

// Close shuts the session down permanently.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conn := s.conn
	for _, t := range []vclock.Timer{s.redialTimer, s.confirmTimer} {
		if t != nil {
			t.Stop()
		}
	}
	s.redialTimer, s.confirmTimer = nil, nil
	s.mu.Unlock()
	var err error
	if conn != nil {
		err = conn.Close()
	}
	if cb := s.scfg.OnStateChange; cb != nil {
		cb(StateClosed)
	}
	return err
}
