package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"marnet/internal/core"
)

func TestFrameRoundTrip(t *testing.T) {
	h := Header{
		Type: TypeData, Stream: 7, Class: uint8(core.ClassCritical),
		Prio: uint8(core.PrioHighest), Seq: 123456789, SendMicro: 987654321,
	}
	payload := []byte("hello artp")
	frame, err := AppendFrame(nil, h, payload)
	if err != nil {
		t.Fatal(err)
	}
	got, gotPayload, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	h.PayloadLen = uint16(len(payload))
	if got != h {
		t.Errorf("header = %+v, want %+v", got, h)
	}
	if !bytes.Equal(gotPayload, payload) {
		t.Errorf("payload mismatch")
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	f := func(stream uint16, class, prio uint8, seq int64, micro uint64, payload []byte) bool {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		h := Header{Type: TypeData, Stream: stream, Class: class, Prio: prio, Seq: seq, SendMicro: micro}
		frame, err := AppendFrame(nil, h, payload)
		if err != nil {
			return false
		}
		got, gotPayload, err := DecodeFrame(frame)
		if err != nil {
			return false
		}
		return got.Stream == stream && got.Class == class && got.Prio == prio &&
			got.Seq == seq && got.SendMicro == micro && bytes.Equal(gotPayload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := DecodeFrame([]byte{1, 2}); !errors.Is(err, ErrShortFrame) {
		t.Errorf("short: %v", err)
	}
	frame, _ := AppendFrame(nil, Header{Type: TypeAck}, nil)
	bad := append([]byte(nil), frame...)
	bad[0] = 0
	if _, _, err := DecodeFrame(bad); !errors.Is(err, ErrBadMagic) {
		t.Errorf("magic: %v", err)
	}
	bad = append([]byte(nil), frame...)
	bad[2] = 9
	if _, _, err := DecodeFrame(bad); !errors.Is(err, ErrBadVersion) {
		t.Errorf("version: %v", err)
	}
	bad = append([]byte(nil), frame...)
	bad[3] = 99
	if _, _, err := DecodeFrame(bad); !errors.Is(err, ErrBadType) {
		t.Errorf("type: %v", err)
	}
	// Truncated payload.
	h := Header{Type: TypeData}
	full, _ := AppendFrame(nil, h, []byte("0123456789"))
	if _, _, err := DecodeFrame(full[:len(full)-3]); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated: %v", err)
	}
	if _, err := AppendFrame(nil, Header{Type: 42}, nil); !errors.Is(err, ErrBadType) {
		t.Errorf("encode bad type: %v", err)
	}
	if _, err := AppendFrame(nil, Header{Type: TypeData}, make([]byte, MaxPayload+1)); !errors.Is(err, ErrOversize) {
		t.Errorf("oversize: %v", err)
	}
}

func TestNackPayloadRoundTrip(t *testing.T) {
	missing := []int64{1, 5, 9, 1 << 40}
	p := EncodeNackPayload(missing)
	got, err := DecodeNackPayload(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(missing) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range missing {
		if got[i] != missing[i] {
			t.Fatalf("got %v, want %v", got, missing)
		}
	}
	if _, err := DecodeNackPayload([]byte{1}); !errors.Is(err, ErrTruncated) {
		t.Errorf("short nack: %v", err)
	}
	if _, err := DecodeNackPayload([]byte{2, 0, 1}); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated nack: %v", err)
	}
}

// collector accumulates received messages thread-safely.
type collector struct {
	mu   sync.Mutex
	msgs []Message
}

func (c *collector) add(m Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgs = append(c.msgs, m)
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.msgs)
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return cond()
}

func TestLoopbackDelivery(t *testing.T) {
	var rx collector
	server, err := Listen("127.0.0.1:0", Config{OnMessage: rx.add})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	client, err := Dial(server.LocalAddr().String(), Config{
		Streams: []StreamSpec{
			{ID: 1, Class: core.ClassCritical, Priority: core.PrioHighest, Rate: 1e6},
		},
		StartBudget: 10e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const n = 50
	for i := 0; i < n; i++ {
		ok, err := client.Send(1, []byte("payload"))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatal("critical send shed")
		}
	}
	if !waitFor(t, 3*time.Second, func() bool { return rx.count() >= n }) {
		t.Fatalf("received %d/%d", rx.count(), n)
	}
	st := client.Stats(1)
	if st.Retx != 0 {
		t.Errorf("loopback retransmits = %d", st.Retx)
	}
}

func TestLossRecoveryThroughLossyRelay(t *testing.T) {
	var rx collector
	server, err := Listen("127.0.0.1:0", Config{OnMessage: rx.add})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	relay, err := NewRelay(server.LocalAddr().String(), 7, 2*time.Millisecond) // drop every 7th
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()

	client, err := Dial(relay.Addr(), Config{
		Streams: []StreamSpec{
			{ID: 1, Class: core.ClassCritical, Priority: core.PrioHighest, Rate: 2e6},
		},
		StartBudget: 5e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const n = 100
	for i := 0; i < n; i++ {
		if _, err := client.Send(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if !waitFor(t, 8*time.Second, func() bool { return rx.count() >= n }) {
		t.Fatalf("received %d/%d through lossy relay (relay dropped %d)", rx.count(), n, relay.Dropped())
	}
	if relay.Dropped() == 0 {
		t.Error("relay dropped nothing — test is vacuous")
	}
	if st := client.Stats(1); st.Retx == 0 {
		t.Error("expected retransmissions through lossy relay")
	}
	// No duplicates delivered to the app.
	seen := map[int64]bool{}
	rx.mu.Lock()
	for _, m := range rx.msgs {
		if seen[m.Seq] {
			t.Errorf("duplicate seq %d delivered", m.Seq)
		}
		seen[m.Seq] = true
	}
	rx.mu.Unlock()
}

func TestBestEffortShedsWhenOverAllocated(t *testing.T) {
	server, err := Listen("127.0.0.1:0", Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, err := Dial(server.LocalAddr().String(), Config{
		Streams: []StreamSpec{
			{ID: 2, Class: core.ClassFullBestEffort, Priority: core.PrioLowest, Rate: 50e3},
		},
		StartBudget: 50e3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	shed := 0
	for i := 0; i < 200; i++ {
		ok, err := client.Send(2, make([]byte, 1000))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			shed++
		}
	}
	if shed == 0 {
		t.Error("over-allocation never shed on a 50 kb/s stream")
	}
	if st := client.Stats(2); st.Shed != int64(shed) {
		t.Errorf("stats.Shed = %d, want %d", st.Shed, shed)
	}
}

func TestSendValidation(t *testing.T) {
	server, err := Listen("127.0.0.1:0", Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, err := Dial(server.LocalAddr().String(), Config{
		Streams: []StreamSpec{{ID: 1, Class: core.ClassCritical, Priority: core.PrioHighest, Rate: 1e6}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Send(99, []byte("x")); err == nil {
		t.Error("unknown stream should error")
	}
	if _, err := client.Send(1, make([]byte, MaxPayload+1)); !errors.Is(err, ErrOversize) {
		t.Errorf("oversize: %v", err)
	}
	client.Close()
	if _, err := client.Send(1, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("closed: %v", err)
	}
	if err := client.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestQoSFeedbackOverWire(t *testing.T) {
	server, err := Listen("127.0.0.1:0", Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	var mu sync.Mutex
	var allocs []float64
	client, err := Dial(server.LocalAddr().String(), Config{
		Streams: []StreamSpec{
			{ID: 1, Class: core.ClassCritical, Priority: core.PrioHighest, Rate: 0.5e6},
			{ID: 2, Class: core.ClassFullBestEffort, Priority: core.PrioLowest, Rate: 2e6,
				OnAllocate: func(r float64) {
					mu.Lock()
					allocs = append(allocs, r)
					mu.Unlock()
				}},
		},
		StartBudget: 1e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	mu.Lock()
	n := len(allocs)
	var first float64
	if n > 0 {
		first = allocs[0]
	}
	mu.Unlock()
	if n == 0 {
		t.Fatal("no initial allocation callback")
	}
	// Budget 1e6, critical takes 0.5e6, best effort gets the remaining.
	if first != 0.5e6 {
		t.Errorf("initial allocation = %v, want 0.5e6", first)
	}
}

func TestRTTEstablishesOverLoopback(t *testing.T) {
	var rx collector
	server, err := Listen("127.0.0.1:0", Config{OnMessage: rx.add})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, err := Dial(server.LocalAddr().String(), Config{
		Streams:     []StreamSpec{{ID: 1, Class: core.ClassCritical, Priority: core.PrioHighest, Rate: 1e6}},
		StartBudget: 10e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	for i := 0; i < 20; i++ {
		client.Send(1, []byte("probe")) //nolint:errcheck
	}
	if !waitFor(t, 3*time.Second, func() bool {
		client.mu.Lock()
		defer client.mu.Unlock()
		return client.ctrl.SRTT() > 0
	}) {
		t.Fatal("no RTT estimate established")
	}
}

func TestStatsUnknownStreamAndBudget(t *testing.T) {
	server, err := Listen("127.0.0.1:0", Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, err := Dial(server.LocalAddr().String(), Config{
		Streams:     []StreamSpec{{ID: 1, Class: core.ClassCritical, Priority: core.PrioHighest, Rate: 1e6}},
		StartBudget: 3e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if st := client.Stats(99); st != (StreamStats{}) {
		t.Errorf("unknown stream stats = %+v, want zero", st)
	}
	if got := client.Budget(); got != 3e6 {
		t.Errorf("budget = %v, want 3e6", got)
	}
}

func TestServerAcceptsUndeclaredStream(t *testing.T) {
	// A server with no stream declarations still receives and acks data on
	// whatever streams the client uses.
	var rx collector
	server, err := Listen("127.0.0.1:0", Config{OnMessage: rx.add})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, err := Dial(server.LocalAddr().String(), Config{
		Streams:     []StreamSpec{{ID: 7, Class: core.ClassCritical, Priority: core.PrioHighest, Rate: 1e6}},
		StartBudget: 5e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	for i := 0; i < 10; i++ {
		client.Send(7, []byte("x")) //nolint:errcheck
	}
	if !waitFor(t, 2*time.Second, func() bool { return rx.count() >= 10 }) {
		t.Fatalf("received %d/10 on undeclared stream", rx.count())
	}
	if st := server.Stats(7); st.Received != 10 {
		t.Errorf("server stats for learned stream = %+v", st)
	}
}

func TestRelayCloseIdempotentAndAddr(t *testing.T) {
	server, err := Listen("127.0.0.1:0", Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	relay, err := NewRelay(server.LocalAddr().String(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if relay.Addr() == "" {
		t.Error("empty relay address")
	}
	if err := relay.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if err := relay.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}
