package wire

import (
	"bytes"
	"testing"
	"time"

	"marnet/internal/core"
	"marnet/internal/faults"
	"marnet/internal/obs"
)

func TestLossRateTracksLossyPath(t *testing.T) {
	// A relay dropping a quarter of uplink datagrams: the connection's
	// smoothed loss rate must move off zero and surface through both the
	// conn and session registry gauges.
	key := bytes.Repeat([]byte{9}, 16)
	var rx collector
	server, err := Listen("127.0.0.1:0", Config{Key: key, OnMessage: rx.add})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	relay, err := faults.NewRelay(server.LocalAddr().String(), faults.Config{
		Seed: 17,
		Up:   faults.DirConfig{Loss: 0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()

	sess, err := DialSession(relay.Addr(), Config{
		Streams:     []StreamSpec{{ID: 1, Class: core.ClassCritical, Priority: core.PrioHighest, Rate: 2e6}},
		StartBudget: 5e6,
		Key:         key,
	}, SessionConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	reg := obs.NewRegistry()
	sess.PublishMetrics(reg, obs.L("role", "client"))

	const n = 60
	for i := 0; i < n; i++ {
		if _, err := sess.Send(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if !waitFor(t, 10*time.Second, func() bool { return rx.count() >= n }) {
		t.Fatalf("received %d/%d through lossy relay", rx.count(), n)
	}
	if !waitFor(t, 10*time.Second, func() bool { return sess.LossRate() > 0 }) {
		t.Fatal("loss rate still zero after sustained 25% uplink loss")
	}
	if lost := sess.Conn().LostFrameCount(); lost == 0 {
		t.Error("LostFrameCount zero despite relay drops")
	}
	if r := sess.LossRate(); r <= 0 || r >= 1 {
		t.Errorf("loss rate %v outside (0,1)", r)
	}

	// The registry gauges read through to live state.
	p, ok := reg.Lookup("mar_wire_session_loss_rate", obs.L("role", "client"))
	if !ok {
		t.Fatal("session loss gauge not registered")
	}
	if p.Value != sess.LossRate() {
		t.Errorf("gauge %v != live %v", p.Value, sess.LossRate())
	}
	if p, ok := reg.Lookup("mar_wire_session_srtt_seconds", obs.L("role", "client")); !ok || p.Value <= 0 {
		t.Errorf("session SRTT gauge: ok=%v value=%v", ok, p.Value)
	}
}

func TestLossRateStaysZeroOnCleanPath(t *testing.T) {
	var rx collector
	server, err := Listen("127.0.0.1:0", Config{OnMessage: rx.add})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	client, err := Dial(server.LocalAddr().String(), Config{
		Streams: []StreamSpec{{ID: 1, Class: core.ClassCritical, Priority: core.PrioHighest, Rate: 2e6}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	reg := obs.NewRegistry()
	client.PublishMetrics(reg, obs.L("role", "client"))

	for i := 0; i < 20; i++ {
		if _, err := client.Send(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if !waitFor(t, 5*time.Second, func() bool { return rx.count() >= 20 }) {
		t.Fatalf("received %d/20 on clean loopback", rx.count())
	}
	if r := client.LossRate(); r != 0 {
		t.Errorf("loss rate %v on a loss-free path", r)
	}
	if p, ok := reg.Lookup("mar_wire_loss_rate", obs.L("role", "client")); !ok || p.Value != 0 {
		t.Errorf("conn loss gauge: ok=%v value=%v", ok, p.Value)
	}
	if p, ok := reg.Lookup("mar_wire_frames_lost_total", obs.L("role", "client")); !ok || p.Value != 0 {
		t.Errorf("frames lost counter: ok=%v value=%v", ok, p.Value)
	}
}
