package wire

import (
	"net"
	"sync"
	"sync/atomic"
)

// shardDemux is the portable fallback for SO_REUSEPORT sharding: one
// underlying socket, one ingest path, and N shard transports each drained
// by its own goroutine. Peers are assigned to shards by address hash
// (ShardOfAddr), mirroring the kernel's flow hash, so each shard still
// owns a disjoint set of peers.
//
// Buffer ownership through the demux is explicit: ingest copies the
// loaned transport buffer into a pooled delivery buffer, hands it to the
// target shard's queue, and the shard's drain goroutine returns the
// buffer to the pool after the delivery callback returns (poisoning it
// first in debug builds, so a callback that retains the slice fails
// deterministically). A packet is therefore accounted exactly once:
// enqueued and later delivered, or dropped at ingest (queue full,
// oversized datagram), or swept at teardown — DemuxStats exposes the
// conservation identity enqueued == delivered + sweep.
type shardDemux struct {
	pc     PacketConn
	shards []*demuxShard
	done   chan struct{}
	wg     sync.WaitGroup // drain goroutines

	started atomic.Int32 // shards that called Start; the last one starts pc
	open    atomic.Int32 // shards not yet closed; the last Close tears down

	enqueued        atomic.Int64
	delivered       atomic.Int64
	droppedFull     atomic.Int64
	droppedOversize atomic.Int64
	sweep           atomic.Int64
}

// DemuxStats is a snapshot of the demux packet accounting.
type DemuxStats struct {
	Enqueued        int64 // packets copied into a shard queue
	Delivered       int64 // packets handed to a shard's recv callback
	DroppedFull     int64 // shard queue full at ingest
	DroppedOversize int64 // datagram larger than a delivery buffer
	Sweep           int64 // queued at teardown, recycled undelivered
}

// demuxQueueLen bounds each shard's delivery queue: one slow shard drops
// its own packets instead of stalling ingest for the others.
const demuxQueueLen = 256

type demuxPkt struct {
	buf  *[]byte
	n    int
	from *net.UDPAddr
}

// demuxBufPool recycles delivery buffers flowing through shard queues.
var demuxBufPool = sync.Pool{New: func() any {
	b := make([]byte, recvBufLen)
	return &b
}}

type demuxShard struct {
	d      *shardDemux
	idx    int
	ch     chan demuxPkt
	recv   func(pkt []byte, from *net.UDPAddr)
	closed atomic.Bool
}

// newShardDemux builds the demux with n shard transports over pc. The
// underlying transport is started only once every shard has installed its
// delivery callback (the Nth Start call), so no packet can arrive for a
// shard that is not ready to own it.
func newShardDemux(pc PacketConn, n int) *shardDemux {
	d := &shardDemux{pc: pc, done: make(chan struct{})}
	d.shards = make([]*demuxShard, n)
	for i := range d.shards {
		d.shards[i] = &demuxShard{d: d, idx: i, ch: make(chan demuxPkt, demuxQueueLen)}
	}
	d.open.Store(int32(n))
	return d
}

// ingest is the underlying transport's delivery callback: copy into a
// pooled buffer, hash to a shard, enqueue. It allocates nothing in steady
// state and never blocks — a full shard queue sheds that packet alone.
func (d *shardDemux) ingest(pkt []byte, from *net.UDPAddr) {
	if len(pkt) > recvBufLen {
		// Larger than a delivery buffer: could only be an oversized
		// non-protocol datagram (DecodeFrame would reject it anyway).
		d.droppedOversize.Add(1)
		return
	}
	s := d.shards[ShardOfAddr(from, len(d.shards))]
	buf := demuxBufPool.Get().(*[]byte)
	n := copy((*buf)[:len(pkt)], pkt)
	select {
	case s.ch <- demuxPkt{buf: buf, n: n, from: from}:
		d.enqueued.Add(1)
	default:
		demuxBufPool.Put(buf)
		d.droppedFull.Add(1)
	}
}

// Stats snapshots the demux packet accounting.
func (d *shardDemux) Stats() DemuxStats {
	return DemuxStats{
		Enqueued:        d.enqueued.Load(),
		Delivered:       d.delivered.Load(),
		DroppedFull:     d.droppedFull.Load(),
		DroppedOversize: d.droppedOversize.Load(),
		Sweep:           d.sweep.Load(),
	}
}

func (s *demuxShard) drain() {
	defer s.d.wg.Done()
	for {
		select {
		case p := <-s.ch:
			if s.recv != nil {
				s.recv((*p.buf)[:p.n], p.from)
			}
			s.d.delivered.Add(1)
			poisonBuf((*p.buf)[:p.n])
			demuxBufPool.Put(p.buf)
		case <-s.d.done:
			return
		}
	}
}

// demuxShard implements PacketConn (plus BatchWriter) over the shared
// underlying transport.

func (s *demuxShard) WriteToUDP(b []byte, addr *net.UDPAddr) (int, error) {
	return s.d.pc.WriteToUDP(b, addr)
}

func (s *demuxShard) WriteBatch(dgs []Datagram) (int, error) {
	if bw, ok := s.d.pc.(BatchWriter); ok {
		return bw.WriteBatch(dgs)
	}
	return writeBatchLoop(s, dgs)
}

func (s *demuxShard) LocalAddr() net.Addr { return s.d.pc.LocalAddr() }

func (s *demuxShard) Synchronous() bool { return false }

func (s *demuxShard) Start(recv func(pkt []byte, from *net.UDPAddr)) {
	s.recv = recv
	s.d.wg.Add(1)
	go s.drain()
	if s.d.started.Add(1) == int32(len(s.d.shards)) {
		s.d.pc.Start(s.d.ingest)
	}
}

// Close marks this shard closed; the last shard out closes the underlying
// transport (joining its reader, so ingest cannot run again), stops every
// drain goroutine, and sweeps packets still queued — each one recycled and
// counted, keeping the conservation identity exact.
func (s *demuxShard) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	if s.d.open.Add(-1) > 0 {
		return nil
	}
	err := s.d.pc.Close()
	close(s.d.done)
	s.d.wg.Wait()
	for _, sh := range s.d.shards {
		for drained := false; !drained; {
			select {
			case p := <-sh.ch:
				s.d.sweep.Add(1)
				demuxBufPool.Put(p.buf)
			default:
				drained = true
			}
		}
	}
	return err
}
