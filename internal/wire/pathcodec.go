// Path-layer encapsulation: the wire format spoken between a client-side
// PathSet and a server-side PathRouter (Section VI-D: concurrent WiFi+LTE
// subflows). Path frames wrap ordinary ARTP frames so the Conn above never
// learns which access link carried a datagram; a legacy peer that receives
// one rejects it at DecodeFrame (different magic) and a PathRouter passes
// non-path datagrams through untouched, so single-path and multipath
// endpoints coexist on one socket.
//
// Every path frame starts with a fixed 13-byte little-endian prefix:
//
//	off size field
//	0   2    magic 0xA27C (distinct from the ARTP frame magic 0xA27B)
//	2   1    version (1)
//	3   1    kind (data / probe / probe-ack / parity)
//	4   8    session id (links the N subflows of one connection)
//	12  1    path id (which subflow carried this datagram)
//
// Kind-specific bodies follow:
//
//	data:   group uint32, index uint8, inner ARTP frame (rest of datagram).
//	        group 0 = not FEC-protected; otherwise (group, index) places the
//	        inner frame in a cross-path parity group.
//	probe:  seq uint32, sendMicro uint64, srttMicro uint32, intervalMicro
//	        uint32, state uint8 — the sender's liveness heartbeat plus its
//	        advertised view of this path (the receiver uses srtt/state/
//	        interval to rank return paths without measuring them itself).
//	probe-ack: identical body, echoed verbatim by the receiver.
//	parity: group uint32, index uint8 (>= k), k uint8, m uint8, actual
//	        uint8, shardLen uint16, shard bytes — one Reed–Solomon repair
//	        shard over the group's data shards (each data shard is the
//	        2-byte inner length, the inner frame, zero-padded to shardLen;
//	        indexes actual..k-1 are implicit all-zero shards when a group
//	        was flushed short).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Path frame kinds.
const (
	PathKindData     = 1
	PathKindProbe    = 2
	PathKindProbeAck = 3
	PathKindParity   = 4
)

// Path codec constants.
const (
	PathMagic      = 0xA27C
	PathVersion    = 1
	PathPrefixLen  = 13              // magic + version + kind + session + path id
	pathDataOver   = 5               // group + index
	PathDataOver   = PathPrefixLen + pathDataOver // total data encapsulation overhead
	pathProbeLen   = 21              // seq + sendMicro + srttMicro + intervalMicro + state
	pathParityOver = 10              // group + index + k + m + actual + shardLen
)

// Path codec errors.
var (
	ErrNotPathFrame  = errors.New("wire: not a path frame")
	ErrBadPathKind   = errors.New("wire: unknown path frame kind")
	ErrBadPathGroup  = errors.New("wire: invalid path parity group")
	ErrShortPath     = errors.New("wire: path frame too short")
	ErrPathTruncated = errors.New("wire: path frame truncated")
)

// PathHeader is the decoded fixed prefix of a path frame.
type PathHeader struct {
	Kind    uint8
	Session uint64
	PathID  uint8
}

// PathProbe is the body of a probe or probe-ack: a sequence number and
// send timestamp for RTT/liveness, plus the prober's advertisement of the
// path (smoothed RTT, probing cadence, state) so the far side can rank
// return paths it never measures itself.
type PathProbe struct {
	Seq           uint32
	SendMicro     uint64
	SRTTMicro     uint32
	IntervalMicro uint32
	State         uint8
}

// PathParityHeader describes one repair shard of a cross-path FEC group.
type PathParityHeader struct {
	Group    uint32
	Index    uint8 // shard index in [K, K+M)
	K, M     uint8
	Actual   uint8 // data shards actually sent; [Actual, K) are implicit zeros
	ShardLen uint16
}

// IsPathFrame reports whether buf begins with the path-layer magic and a
// supported version — the cheap dispatch test a shared socket runs on
// every inbound datagram.
func IsPathFrame(buf []byte) bool {
	return len(buf) >= PathPrefixLen &&
		binary.LittleEndian.Uint16(buf) == PathMagic &&
		buf[2] == PathVersion
}

// appendPathPrefix writes the fixed prefix.
func appendPathPrefix(dst []byte, kind uint8, session uint64, pathID uint8) []byte {
	base := len(dst)
	dst = append(dst, make([]byte, PathPrefixLen)...)
	binary.LittleEndian.PutUint16(dst[base:], PathMagic)
	dst[base+2] = PathVersion
	dst[base+3] = kind
	binary.LittleEndian.PutUint64(dst[base+4:], session)
	dst[base+12] = pathID
	return dst
}

// DecodePathHeader parses the fixed prefix, returning the header and the
// kind-specific body.
func DecodePathHeader(buf []byte) (PathHeader, []byte, error) {
	if len(buf) < PathPrefixLen {
		return PathHeader{}, nil, ErrShortPath
	}
	if binary.LittleEndian.Uint16(buf) != PathMagic || buf[2] != PathVersion {
		return PathHeader{}, nil, ErrNotPathFrame
	}
	h := PathHeader{
		Kind:    buf[3],
		Session: binary.LittleEndian.Uint64(buf[4:]),
		PathID:  buf[12],
	}
	switch h.Kind {
	case PathKindData, PathKindProbe, PathKindProbeAck, PathKindParity:
	default:
		return PathHeader{}, nil, fmt.Errorf("%w: %d", ErrBadPathKind, h.Kind)
	}
	return h, buf[PathPrefixLen:], nil
}

// AppendPathData encapsulates one inner ARTP frame for transmission on a
// subflow. group 0 marks the frame as outside any FEC group.
func AppendPathData(dst []byte, session uint64, pathID uint8, group uint32, index uint8, inner []byte) []byte {
	dst = appendPathPrefix(dst, PathKindData, session, pathID)
	base := len(dst)
	dst = append(dst, make([]byte, pathDataOver)...)
	binary.LittleEndian.PutUint32(dst[base:], group)
	dst[base+4] = index
	return append(dst, inner...)
}

// DecodePathData parses a data body into its FEC coordinates and the
// inner ARTP frame (a subslice of body).
func DecodePathData(body []byte) (group uint32, index uint8, inner []byte, err error) {
	if len(body) < pathDataOver {
		return 0, 0, nil, ErrPathTruncated
	}
	return binary.LittleEndian.Uint32(body), body[4], body[pathDataOver:], nil
}

// AppendPathProbe encodes a probe (kind PathKindProbe) or its echo (kind
// PathKindProbeAck).
func AppendPathProbe(dst []byte, kind uint8, session uint64, pathID uint8, p PathProbe) []byte {
	dst = appendPathPrefix(dst, kind, session, pathID)
	base := len(dst)
	dst = append(dst, make([]byte, pathProbeLen)...)
	binary.LittleEndian.PutUint32(dst[base:], p.Seq)
	binary.LittleEndian.PutUint64(dst[base+4:], p.SendMicro)
	binary.LittleEndian.PutUint32(dst[base+12:], p.SRTTMicro)
	binary.LittleEndian.PutUint32(dst[base+16:], p.IntervalMicro)
	dst[base+20] = p.State
	return dst
}

// DecodePathProbe parses a probe or probe-ack body.
func DecodePathProbe(body []byte) (PathProbe, error) {
	if len(body) < pathProbeLen {
		return PathProbe{}, ErrPathTruncated
	}
	return PathProbe{
		Seq:           binary.LittleEndian.Uint32(body),
		SendMicro:     binary.LittleEndian.Uint64(body[4:]),
		SRTTMicro:     binary.LittleEndian.Uint32(body[12:]),
		IntervalMicro: binary.LittleEndian.Uint32(body[16:]),
		State:         body[20],
	}, nil
}

// AppendPathParity encodes one repair shard.
func AppendPathParity(dst []byte, session uint64, pathID uint8, h PathParityHeader, shard []byte) []byte {
	dst = appendPathPrefix(dst, PathKindParity, session, pathID)
	base := len(dst)
	dst = append(dst, make([]byte, pathParityOver)...)
	binary.LittleEndian.PutUint32(dst[base:], h.Group)
	dst[base+4] = h.Index
	dst[base+5] = h.K
	dst[base+6] = h.M
	dst[base+7] = h.Actual
	binary.LittleEndian.PutUint16(dst[base+8:], h.ShardLen)
	return append(dst, shard...)
}

// DecodePathParity parses a parity body, validating the code geometry so
// a corrupted header cannot drive the reconstructor out of bounds.
func DecodePathParity(body []byte) (PathParityHeader, []byte, error) {
	if len(body) < pathParityOver {
		return PathParityHeader{}, nil, ErrPathTruncated
	}
	h := PathParityHeader{
		Group:    binary.LittleEndian.Uint32(body),
		Index:    body[4],
		K:        body[5],
		M:        body[6],
		Actual:   body[7],
		ShardLen: binary.LittleEndian.Uint16(body[8:]),
	}
	if h.Group == 0 || h.K == 0 || h.M == 0 || int(h.K)+int(h.M) > 255 ||
		h.Actual > h.K || h.Index < h.K || int(h.Index) >= int(h.K)+int(h.M) {
		return PathParityHeader{}, nil, fmt.Errorf("%w: group=%d k=%d m=%d actual=%d index=%d",
			ErrBadPathGroup, h.Group, h.K, h.M, h.Actual, h.Index)
	}
	// A shard holds a 2-byte length plus an inner frame; anything beyond a
	// full-size inner frame is corruption.
	if int(h.ShardLen) < 2 || int(h.ShardLen) > 2+maxFrameLen {
		return PathParityHeader{}, nil, fmt.Errorf("%w: shard len %d", ErrBadPathGroup, h.ShardLen)
	}
	shard := body[pathParityOver:]
	if len(shard) != int(h.ShardLen) {
		return PathParityHeader{}, nil, ErrPathTruncated
	}
	return h, shard, nil
}
