package wire

import (
	"fmt"
	"net"
	"sync"
)

// Mux serves many ARTP peers over one UDP socket: each remote address gets
// its own Conn (own streams, own congestion controller, own
// retransmission state), which is what a real offloading server needs —
// one surrogate, many mobile devices.
type Mux struct {
	sock *net.UDPConn
	// ConfigFor builds the per-peer Config. It runs on the read loop when
	// a new peer's first datagram arrives; returning a Config with a nil
	// OnMessage is fine (data is still acked).
	configFor func(peer *net.UDPAddr) Config
	// OnConn, when set, is invoked for every newly accepted peer. Set it
	// via SetOnConn (or before any client traffic arrives).
	OnConn func(conn *Conn, peer *net.UDPAddr)

	mu     sync.Mutex
	conns  map[string]*Conn
	closed bool
	wg     sync.WaitGroup

	// Stats (guarded by mu).
	Accepted int64
	Overruns int64 // datagrams dropped because a peer's queue was full
}

// ListenMux binds addr and starts accepting peers. configFor must not be
// nil.
func ListenMux(addr string, configFor func(peer *net.UDPAddr) Config) (*Mux, error) {
	if configFor == nil {
		return nil, fmt.Errorf("wire: nil configFor")
	}
	laddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: resolve %q: %w", addr, err)
	}
	sock, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("wire: listen: %w", err)
	}
	m := &Mux{
		sock:      sock,
		configFor: configFor,
		conns:     make(map[string]*Conn),
	}
	m.wg.Add(1)
	go m.readLoop()
	return m, nil
}

// SetOnConn installs the new-peer callback race-free.
func (m *Mux) SetOnConn(fn func(conn *Conn, peer *net.UDPAddr)) {
	m.mu.Lock()
	m.OnConn = fn
	m.mu.Unlock()
}

// LocalAddr returns the bound address.
func (m *Mux) LocalAddr() *net.UDPAddr {
	addr, _ := m.sock.LocalAddr().(*net.UDPAddr)
	return addr
}

// Conns returns a snapshot of the live peer connections.
func (m *Mux) Conns() []*Conn {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Conn, 0, len(m.conns))
	for _, c := range m.conns {
		out = append(out, c)
	}
	return out
}

// Close shuts down every peer connection and the socket.
func (m *Mux) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	conns := make([]*Conn, 0, len(m.conns))
	for _, c := range m.conns {
		conns = append(conns, c)
	}
	m.conns = map[string]*Conn{}
	m.mu.Unlock()

	for _, c := range conns {
		c.Close() //nolint:errcheck // best-effort teardown
	}
	err := m.sock.Close()
	m.wg.Wait()
	return err
}

func (m *Mux) readLoop() {
	defer m.wg.Done()
	buf := make([]byte, 65535)
	for {
		n, raddr, err := m.sock.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		conn := m.connFor(raddr)
		if conn == nil {
			continue // shutting down
		}
		dgram := append([]byte(nil), buf[:n]...)
		select {
		case conn.recvCh <- dgram:
		default:
			m.mu.Lock()
			m.Overruns++
			m.mu.Unlock()
		}
	}
}

// connFor returns (creating if necessary) the peer's connection.
func (m *Mux) connFor(raddr *net.UDPAddr) *Conn {
	key := raddr.String()
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	if c, ok := m.conns[key]; ok {
		m.mu.Unlock()
		return c
	}
	m.mu.Unlock()

	// Build outside the lock: configFor is user code.
	cfg := m.configFor(raddr)
	c, err := newMuxConn(m, raddr, cfg)
	if err != nil {
		return nil
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		c.Close() //nolint:errcheck // racing shutdown
		return nil
	}
	if existing, ok := m.conns[key]; ok {
		// Lost a race with another datagram from the same peer.
		m.mu.Unlock()
		c.Close() //nolint:errcheck // duplicate
		return existing
	}
	m.conns[key] = c
	m.Accepted++
	onConn := m.OnConn
	m.mu.Unlock()
	if onConn != nil {
		onConn(c, raddr)
	}
	return c
}

func (m *Mux) drop(key string) {
	m.mu.Lock()
	delete(m.conns, key)
	m.mu.Unlock()
}

// newMuxConn builds a per-peer Conn that shares the mux socket.
func newMuxConn(m *Mux, peer *net.UDPAddr, cfg Config) (*Conn, error) {
	var sl *sealer
	if cfg.Key != nil {
		var err error
		if sl, err = newSealer(cfg.Key); err != nil {
			return nil, err
		}
	}
	if cfg.StartBudget <= 0 {
		cfg.StartBudget = 1e6
	}
	if cfg.RetxLimit <= 0 {
		cfg.RetxLimit = 3
	}
	c := newConnCommon(m.sock, peer, cfg, sl)
	c.muxced = true
	c.recvCh = make(chan []byte, 256)
	key := peer.String()
	c.onClose = func() { m.drop(key) }
	c.start()
	return c, nil
}
