package wire

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"marnet/internal/vclock"
)

// Mux serves many ARTP peers over one datagram transport: each remote
// address gets its own Conn (own streams, own congestion controller, own
// retransmission state), which is what a real offloading server needs —
// one surrogate, many mobile devices.
type Mux struct {
	pc    PacketConn
	clock vclock.Clock
	// ConfigFor builds the per-peer Config. It runs on the delivery path
	// when a new peer's first datagram arrives; returning a Config with a
	// nil OnMessage is fine (data is still acked).
	configFor func(peer *net.UDPAddr) Config
	// OnConn, when set, is invoked for every newly accepted peer. Set it
	// via SetOnConn (or before any client traffic arrives).
	OnConn func(conn *Conn, peer *net.UDPAddr)

	idleTimeout time.Duration

	mu           sync.Mutex
	conns        map[string]*Conn
	onConnClosed func(conn *Conn, peer *net.UDPAddr)
	closed       bool
	evictTimer   vclock.Timer
	done         chan struct{}

	// Stats (guarded by mu).
	Accepted int64
	Evicted  int64 // peers closed by idle eviction
	Overruns int64 // datagrams dropped because a peer's queue was full
}

// MuxOption configures a Mux at listen time.
type MuxOption func(*Mux)

// WithIdleTimeout enables idle-peer eviction: a peer that has sent nothing
// (not even a keepalive) for d is closed and removed, so an offloading
// server's per-peer state tracks its live population instead of every
// address that ever appeared.
func WithIdleTimeout(d time.Duration) MuxOption {
	return func(m *Mux) { m.idleTimeout = d }
}

// WithMuxClock injects the clock driving idle eviction and every per-peer
// connection whose Config leaves Clock nil. Defaults to the system clock.
func WithMuxClock(clock vclock.Clock) MuxOption {
	return func(m *Mux) { m.clock = clock }
}

// ListenMux binds addr and starts accepting peers. configFor must not be
// nil.
func ListenMux(addr string, configFor func(peer *net.UDPAddr) Config, opts ...MuxOption) (*Mux, error) {
	laddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: resolve %q: %w", addr, err)
	}
	sock, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("wire: listen: %w", err)
	}
	m, err := ListenMuxVia(newUDPPacketConn(sock), configFor, opts...)
	if err != nil {
		sock.Close()
	}
	return m, err
}

// ListenMuxVia accepts peers over a caller-supplied transport (e.g. a
// simulated network endpoint). The Mux owns the transport and closes it on
// Close.
func ListenMuxVia(pc PacketConn, configFor func(peer *net.UDPAddr) Config, opts ...MuxOption) (*Mux, error) {
	if configFor == nil {
		return nil, fmt.Errorf("wire: nil configFor")
	}
	m := &Mux{
		pc:        pc,
		clock:     vclock.System,
		configFor: configFor,
		conns:     make(map[string]*Conn),
		done:      make(chan struct{}),
	}
	for _, opt := range opts {
		opt(m)
	}
	if m.idleTimeout > 0 {
		m.mu.Lock()
		m.evictTimer = m.clock.AfterFunc(m.evictPeriod(), m.evictFire)
		m.mu.Unlock()
	}
	m.pc.Start(m.route)
	return m, nil
}

// SetOnConn installs the new-peer callback race-free.
func (m *Mux) SetOnConn(fn func(conn *Conn, peer *net.UDPAddr)) {
	m.mu.Lock()
	m.OnConn = fn
	m.mu.Unlock()
}

// SetOnConnClosed installs a callback fired whenever a registered peer
// connection is closed and removed — by idle eviction or by an explicit
// Close on the peer's Conn. It does not fire during Mux.Close teardown.
// Layers that key per-peer state on the mux (e.g. an RPC server) use this
// to drop their entries instead of leaking one per departed address.
func (m *Mux) SetOnConnClosed(fn func(conn *Conn, peer *net.UDPAddr)) {
	m.mu.Lock()
	m.onConnClosed = fn
	m.mu.Unlock()
}

func (m *Mux) evictPeriod() time.Duration {
	period := m.idleTimeout / 4
	if period < 5*time.Millisecond {
		period = 5 * time.Millisecond
	}
	return period
}

// evictFire closes peers that have been silent longer than idleTimeout and
// re-arms itself. Peers are scanned in sorted-key order so eviction order
// is deterministic under a virtual clock.
func (m *Mux) evictFire() {
	var idle []*Conn
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	keys := make([]string, 0, len(m.conns))
	for k := range m.conns {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		c := m.conns[k]
		if m.clock.Since(c.LastActivity()) > m.idleTimeout {
			idle = append(idle, c)
			m.Evicted++
		}
	}
	m.evictTimer = m.clock.AfterFunc(m.evictPeriod(), m.evictFire)
	m.mu.Unlock()
	for _, c := range idle {
		c.Close() //nolint:errcheck // eviction is best-effort
	}
}

// LocalAddr returns the bound address.
func (m *Mux) LocalAddr() *net.UDPAddr {
	addr, _ := m.pc.LocalAddr().(*net.UDPAddr)
	return addr
}

// Conns returns a snapshot of the live peer connections.
func (m *Mux) Conns() []*Conn {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Conn, 0, len(m.conns))
	for _, c := range m.conns {
		out = append(out, c)
	}
	return out
}

// Close shuts down every peer connection and the transport.
func (m *Mux) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	close(m.done)
	if m.evictTimer != nil {
		m.evictTimer.Stop()
		m.evictTimer = nil
	}
	conns := make([]*Conn, 0, len(m.conns))
	for _, c := range m.conns {
		conns = append(conns, c)
	}
	m.conns = map[string]*Conn{}
	m.mu.Unlock()

	for _, c := range conns {
		c.Close() //nolint:errcheck // best-effort teardown
	}
	return m.pc.Close()
}

// route is the transport's delivery callback: it finds (or creates) the
// peer's connection and hands the datagram over. On an asynchronous
// transport each peer has a bounded queue and a pump goroutine, so one
// slow peer cannot stall the others; a synchronous (simulated) transport
// dispatches inline on the event loop.
func (m *Mux) route(dgram []byte, raddr *net.UDPAddr) {
	conn := m.connFor(raddr)
	if conn == nil {
		return // shutting down
	}
	if m.pc.Synchronous() {
		conn.handleDatagram(dgram, raddr)
		return
	}
	copied := append([]byte(nil), dgram...)
	select {
	case conn.recvCh <- copied:
	default:
		m.mu.Lock()
		m.Overruns++
		m.mu.Unlock()
	}
}

// connFor returns (creating if necessary) the peer's connection.
func (m *Mux) connFor(raddr *net.UDPAddr) *Conn {
	key := raddr.String()
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	if c, ok := m.conns[key]; ok {
		m.mu.Unlock()
		return c
	}
	m.mu.Unlock()

	// Build outside the lock: configFor is user code.
	cfg := m.configFor(raddr)
	c, err := newMuxConn(m, raddr, cfg)
	if err != nil {
		return nil
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		c.Close() //nolint:errcheck // racing shutdown
		return nil
	}
	if existing, ok := m.conns[key]; ok {
		// Lost a race with another datagram from the same peer.
		m.mu.Unlock()
		c.Close() //nolint:errcheck // duplicate
		return existing
	}
	m.conns[key] = c
	m.Accepted++
	onConn := m.OnConn
	m.mu.Unlock()
	if onConn != nil {
		onConn(c, raddr)
	}
	return c
}

// dropConn removes a closing connection from the peer table, but only if
// it is still the registered connection for its key — a duplicate conn
// losing the accept race must not evict the winner.
func (m *Mux) dropConn(key string, c *Conn) {
	m.mu.Lock()
	var closed func(*Conn, *net.UDPAddr)
	if m.conns[key] == c {
		delete(m.conns, key)
		closed = m.onConnClosed
	}
	m.mu.Unlock()
	if closed != nil {
		closed(c, c.peer)
	}
}

// newMuxConn builds a per-peer Conn that shares the mux transport.
func newMuxConn(m *Mux, peer *net.UDPAddr, cfg Config) (*Conn, error) {
	var sl *sealer
	if cfg.Key != nil {
		var err error
		if sl, err = newSealer(cfg.Key); err != nil {
			return nil, err
		}
	}
	if cfg.StartBudget <= 0 {
		cfg.StartBudget = 1e6
	}
	if cfg.RetxLimit <= 0 {
		cfg.RetxLimit = 3
	}
	if cfg.Clock == nil {
		cfg.Clock = m.clock
	}
	c := newConnCommon(m.pc, peer, cfg, sl)
	c.muxced = true
	if !m.pc.Synchronous() {
		c.recvCh = make(chan []byte, 256)
	}
	key := peer.String()
	c.onClose = func() { m.dropConn(key, c) }
	c.start()
	return c, nil
}
