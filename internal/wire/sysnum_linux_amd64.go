//go:build linux && amd64

package wire

// Syscall numbers the stdlib syscall package predates: its generated
// tables stop just before sendmmsg(2). Values are from the kernel's
// arch/x86/entry/syscalls/syscall_64.tbl and are ABI-frozen.
const (
	sysSENDMMSG = 307
	sysRECVMMSG = 299
)
