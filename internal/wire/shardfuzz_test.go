package wire

import (
	"bytes"
	"net"
	"sync/atomic"
	"testing"
)

// fuzzPC is a PacketConn stub for driving the demux ingest boundary by
// hand: Start just records the callback, nothing is ever delivered unless
// the test calls ingest itself.
type fuzzPC struct {
	closed atomic.Bool
}

func (f *fuzzPC) WriteToUDP(b []byte, _ *net.UDPAddr) (int, error) { return len(b), nil }
func (f *fuzzPC) LocalAddr() net.Addr {
	return &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 1}
}
func (f *fuzzPC) Close() error                                    { f.closed.Store(true); return nil }
func (f *fuzzPC) Start(func(pkt []byte, from *net.UDPAddr))       {}
func (f *fuzzPC) Synchronous() bool                               { return false }

// FuzzShardDemux hammers the two recv-side boundaries a hostile (or GRO-
// coalescing) network can push malformed shapes through: the segment
// splitter that re-expands coalesced datagrams, and the demux ingest that
// copies packets into pooled buffers and queues them by address hash.
// Invariants: segments reassemble exactly to the input, the segment count
// matches the ceiling division, nothing panics feeding segments through
// DecodeFrame, and the demux conserves packets (every ingest accounted as
// queued, dropped-full or dropped-oversize, with queued payloads byte-
// identical to what went in).
func FuzzShardDemux(f *testing.F) {
	sl, err := newSealer(benchKey)
	if err != nil {
		f.Fatal(err)
	}
	frame, err := sl.appendSealedFrame(nil, Header{Type: TypeData, Stream: 1, Class: 1, Prio: 1, Seq: 7}, bytes.Repeat([]byte{0xAB}, 200))
	if err != nil {
		f.Fatal(err)
	}
	// Seeds: one valid frame unsplit, a GRO-style coalescence of four
	// copies, a truncated frame, a short split that leaves a ragged tail,
	// an oversized datagram (> recvBufLen), and degenerate segment sizes.
	f.Add(frame, 0, uint16(40001))
	f.Add(bytes.Repeat(frame, 4), len(frame), uint16(40002))
	f.Add(frame[:10], 3, uint16(40003))
	f.Add([]byte("ragged-tail-payload"), 7, uint16(40004))
	f.Add(bytes.Repeat([]byte{0xDB}, recvBufLen+100), 1200, uint16(40005))
	f.Add([]byte{}, -1, uint16(0))
	f.Add([]byte{0x7B, 0xA2}, 1<<30, uint16(65535))

	f.Fuzz(func(t *testing.T, data []byte, segSize int, port uint16) {
		from := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: int(port)}

		// --- splitSegments invariants ---
		var segs [][]byte
		total := 0
		n := splitSegments(data, segSize, from, func(pkt []byte, fr *net.UDPAddr) {
			if fr != from {
				t.Fatal("splitSegments changed the peer address")
			}
			segs = append(segs, pkt)
			total += len(pkt)
		})
		if n != len(segs) {
			t.Fatalf("splitSegments returned %d, delivered %d", n, len(segs))
		}
		if total != len(data) {
			t.Fatalf("segments sum to %d bytes, input was %d", total, len(data))
		}
		if !bytes.Equal(bytes.Join(segs, nil), data) {
			t.Fatal("segments do not reassemble to the input")
		}
		if segSize > 0 && segSize < len(data) {
			want := (len(data) + segSize - 1) / segSize
			if n != want {
				t.Fatalf("split %d bytes at %d: %d segments, want %d", len(data), segSize, n, want)
			}
			for i, s := range segs {
				if i < len(segs)-1 && len(s) != segSize {
					t.Fatalf("segment %d is %d bytes, want %d", i, len(s), segSize)
				}
				if len(s) == 0 || len(s) > segSize {
					t.Fatalf("segment %d has invalid length %d", i, len(s))
				}
			}
		} else if n != 1 {
			t.Fatalf("degenerate segSize %d must deliver once, got %d", segSize, n)
		}

		// Every segment must be safe to push through the frame decoder.
		for _, s := range segs {
			DecodeFrame(s) //nolint:errcheck // must not panic, errors expected
		}

		// --- demux ingest conservation ---
		d := newShardDemux(&fuzzPC{}, 4)
		d.ingest(data, from)
		st := d.Stats()
		if st.Enqueued+st.DroppedFull+st.DroppedOversize != 1 {
			t.Fatalf("one ingest accounted as %+v", st)
		}
		if len(data) > recvBufLen {
			if st.DroppedOversize != 1 {
				t.Fatalf("oversized datagram (%d B) not dropped: %+v", len(data), st)
			}
		} else if st.Enqueued != 1 {
			t.Fatalf("in-range datagram (%d B) not queued: %+v", len(data), st)
		}
		if st.Enqueued == 1 {
			shard := ShardOfAddr(from, 4)
			select {
			case p := <-d.shards[shard].ch:
				if p.from != from {
					t.Fatal("queued packet carries the wrong peer")
				}
				if !bytes.Equal((*p.buf)[:p.n], data) {
					t.Fatal("queued payload differs from ingested datagram")
				}
				demuxBufPool.Put(p.buf)
			default:
				t.Fatalf("packet queued to a shard other than ShardOfAddr=%d", shard)
			}
		}
	})
}
