package wire

import (
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// ShardBenchRow is one point of the core-scaling curve: the closed-loop
// recv benchmark (decode + in-place open on every delivery, the same work
// recv-batched measures) run against a MuxGroup-style shard set.
type ShardBenchRow struct {
	Shards        int     `json:"shards"`
	Senders       int     `json:"senders"`
	Packets       int     `json:"packets"`
	Delivered     int64   `json:"delivered"`
	NsPerOp       float64 `json:"ns_per_op"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	PacketsPerSec float64 `json:"packets_per_sec"`
	MbitPerSec    float64 `json:"mbit_per_sec"`
	// ReusePort reports whether the row ran socket-per-shard (kernel flow
	// hashing) or over the portable single-socket demux fallback.
	ReusePort bool `json:"reuseport"`
	// ShardSpread is the per-shard delivered count — how evenly the flow
	// hash spread the sender population.
	ShardSpread []int64 `json:"shard_spread"`
}

// RunShardScalingBench measures delivered packets/s of the sharded recv
// datapath for each shard count, holding the workload shape fixed: the
// same packet count, the same frame size, and a sender population (one
// socket each, so each is one kernel flow) large enough to exercise every
// shard. Senders run closed-loop against global delivery, so the kernel
// socket buffers never shed the packets being measured. Scaling beyond
// one shard requires real cores: on a single-CPU host the rows still
// measure the sharded code path honestly, but the curve is flat — the
// caller gates on the 4-shard ratio only when the host has the cores (see
// internal/experiments.WireBench).
func RunShardScalingBench(shardCounts []int, packets, payloadLen int) ([]ShardBenchRow, error) {
	rows := make([]ShardBenchRow, 0, len(shardCounts))
	for _, n := range shardCounts {
		row, err := shardRecvRow(n, packets, payloadLen)
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func shardRecvRow(shards, packets, payloadLen int) (ShardBenchRow, error) {
	sl, err := newSealer(benchKey)
	if err != nil {
		return ShardBenchRow{}, err
	}

	// Bind the shard set: socket-per-shard when the platform offers it,
	// single socket + hashing demux otherwise — the same two datapaths
	// ListenMuxShards picks between.
	var (
		conns     []PacketConn
		reuseport bool
	)
	if shards > 1 {
		if socks, rerr := listenReusePort("127.0.0.1:0", shards); rerr == nil {
			for _, s := range socks {
				s.SetReadBuffer(1 << 20) //nolint:errcheck // best-effort; the window below adapts
				conns = append(conns, newUDPPacketConn(s))
			}
			reuseport = true
		}
	}
	if conns == nil {
		sock, lerr := listenLoopback()
		if lerr != nil {
			return ShardBenchRow{}, lerr
		}
		sock.SetReadBuffer(1 << 20) //nolint:errcheck // best-effort
		if shards > 1 {
			d := newShardDemux(newUDPPacketConn(sock), shards)
			for _, sc := range d.shards {
				conns = append(conns, sc)
			}
		} else {
			conns = append(conns, newUDPPacketConn(sock))
		}
	}
	closeAll := func() {
		for _, c := range conns {
			c.Close()
		}
	}

	var delivered atomic.Int64
	spread := make([]int64, shards)
	for i, pc := range conns {
		slot := &spread[i]
		pc.Start(func(pkt []byte, _ *net.UDPAddr) {
			h, p, derr := DecodeFrame(pkt)
			if derr != nil {
				return
			}
			if _, oerr := sl.openInPlace(h, p); oerr != nil {
				return
			}
			atomic.AddInt64(slot, 1)
			delivered.Add(1)
		})
	}
	raddr, _ := conns[0].LocalAddr().(*net.UDPAddr)
	if raddr == nil {
		closeAll()
		return ShardBenchRow{}, net.InvalidAddrError("shard bench: no local addr")
	}

	// One socket per sender: each sender is one kernel flow, so the
	// reuseport hash (or the demux address hash) can spread them.
	senders := 4
	if shards > senders {
		senders = shards
	}
	const window = 64
	type sender struct {
		pc     *udpPacketConn
		frames []Datagram
		quota  int
	}
	sds := make([]*sender, senders)
	for i := range sds {
		ssock, serr := listenLoopback()
		if serr != nil {
			closeAll()
			return ShardBenchRow{}, serr
		}
		s := &sender{pc: newUDPPacketConn(ssock), quota: packets / senders}
		if i == senders-1 {
			s.quota = packets - (senders-1)*(packets/senders)
		}
		payload := make([]byte, payloadLen)
		s.frames = make([]Datagram, window)
		for j := range s.frames {
			fb := getFrameBuf()
			frame, ferr := sl.appendSealedFrame((*fb)[:0],
				Header{Type: TypeData, Stream: 1, Class: 1, Prio: 1, Seq: int64(j)}, payload)
			if ferr != nil {
				closeAll()
				return ShardBenchRow{}, ferr
			}
			s.frames[j] = Datagram{B: frame, Addr: raddr}
		}
		sds[i] = s
	}

	var sent atomic.Int64
	run := func(s *sender) error {
		done := 0
		for done < s.quota {
			n := window
			if s.quota-done < n {
				n = s.quota - done
			}
			if _, werr := s.pc.WriteBatch(s.frames[:n]); werr != nil {
				return werr
			}
			done += n
			total := sent.Add(int64(n))
			// Closed loop: the sender population collectively stays at
			// most 8 windows ahead of global delivery.
			wait := time.Now()
			for total-delivered.Load() > 8*window && time.Since(wait) < time.Second {
				time.Sleep(20 * time.Microsecond)
				total = sent.Load()
			}
		}
		return nil
	}

	// Warm every pool, socket path and branch alike before measuring.
	for _, s := range sds {
		if _, werr := s.pc.WriteBatch(s.frames[:window]); werr != nil {
			closeAll()
			return ShardBenchRow{}, werr
		}
	}
	// Let the warm-up deliveries settle before zeroing the counters, so
	// in-flight warm packets don't leak into the measured window.
	warmLast, warmAt := delivered.Load(), time.Now()
	for time.Since(warmAt) < 100*time.Millisecond {
		time.Sleep(200 * time.Microsecond)
		if d := delivered.Load(); d != warmLast {
			warmLast, warmAt = d, time.Now()
		}
	}
	delivered.Store(0)
	for i := range spread {
		atomic.StoreInt64(&spread[i], 0)
	}

	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, senders)
	for _, s := range sds {
		wg.Add(1)
		go func(s *sender) {
			defer wg.Done()
			if rerr := run(s); rerr != nil {
				errCh <- rerr
			}
		}(s)
	}
	wg.Wait()
	close(errCh)
	if rerr := <-errCh; rerr != nil {
		closeAll()
		for _, s := range sds {
			s.pc.Close()
		}
		return ShardBenchRow{}, rerr
	}
	// Drain: wait until delivery stops advancing.
	last, lastAt := delivered.Load(), time.Now()
	for delivered.Load() < int64(packets) && time.Since(lastAt) < 500*time.Millisecond {
		time.Sleep(20 * time.Microsecond)
		if d := delivered.Load(); d != last {
			last, lastAt = d, time.Now()
		}
	}
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&m1)

	for _, s := range sds {
		s.pc.Close()
	}
	closeAll()

	base := finishRow("shard-recv", packets, delivered.Load(), elapsed, m1.Mallocs-m0.Mallocs, payloadLen)
	out := make([]int64, shards)
	for i := range spread {
		out[i] = atomic.LoadInt64(&spread[i])
	}
	return ShardBenchRow{
		Shards:        shards,
		Senders:       senders,
		Packets:       packets,
		Delivered:     base.Delivered,
		NsPerOp:       base.NsPerOp,
		AllocsPerOp:   base.AllocsPerOp,
		PacketsPerSec: base.PacketsPerSec,
		MbitPerSec:    base.MbitPerSec,
		ReusePort:     reuseport,
		ShardSpread:   out,
	}, nil
}
