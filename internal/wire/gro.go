package wire

import "net"

// groRecvBufLen sizes receive buffers on sockets with UDP_GRO enabled: a
// coalesced delivery can be as large as one maximal UDP datagram, so the
// 2048-byte single-frame buffer no longer suffices. Defined here (not in
// the linux file) because the demux and the fuzzers reason about the same
// bound on every platform.
const groRecvBufLen = 1 << 16

// splitSegments re-splits a GRO-coalesced datagram at segSize boundaries
// and delivers each segment to recv with the shared peer address: every
// segment is segSize bytes except the last, which may be shorter — the
// exact inverse of the GSO send layout. A non-positive segSize or one
// that covers the whole packet delivers pkt unsplit. Returns the number
// of deliveries. The function is pure over (pkt, segSize) and shared by
// the linux readLoop and FuzzShardDemux, so the kernel-facing boundary
// math is the same code the fuzzer hammers.
func splitSegments(pkt []byte, segSize int, from *net.UDPAddr, recv func(pkt []byte, from *net.UDPAddr)) int {
	if segSize <= 0 || segSize >= len(pkt) {
		recv(pkt, from)
		return 1
	}
	n := 0
	for off := 0; off < len(pkt); off += segSize {
		end := off + segSize
		if end > len(pkt) {
			end = len(pkt)
		}
		recv(pkt[off:end], from)
		n++
	}
	return n
}
