package wire

import (
	"bytes"
	"testing"
)

// FuzzHeaderDecode throws arbitrary bytes at the frame decoder. Invariants:
// never panic, never return a payload longer than the input, and any frame
// that decodes cleanly must survive a re-encode/re-decode round trip
// unchanged.
func FuzzHeaderDecode(f *testing.F) {
	// Seed with a valid frame of every type, plus known edge cases.
	for _, typ := range []uint8{TypeData, TypeAck, TypeNack, TypePing, TypePong} {
		frame, err := AppendFrame(nil, Header{
			Type: typ, Stream: 7, Class: 2, Prio: 1,
			Seq: 42, SendMicro: 123456,
		}, []byte("payload"))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xA2, 0x7B}, HeaderLen))
	f.Add(func() []byte { // truncated: header promises more payload than present
		frame, _ := AppendFrame(nil, Header{Type: TypeData}, make([]byte, 100))
		return frame[:HeaderLen+10]
	}())
	// v3 (traced) frames: every type with trace context, extreme ids, and
	// a v3 header truncated inside the trace-id extension.
	for _, typ := range []uint8{TypeData, TypeAck, TypeNack, TypePing, TypePong} {
		frame, err := AppendFrame(nil, Header{
			Type: typ, Stream: 7, Class: 2, Prio: 1,
			Seq: 42, SendMicro: 123456,
			TraceID: 0xDEADBEEFCAFEF00D, SpanID: 0x0123456789ABCDEF,
		}, []byte("traced"))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	f.Add(func() []byte {
		frame, _ := AppendFrame(nil, Header{Type: TypeData, TraceID: ^uint64(0), SpanID: ^uint64(0)}, nil)
		return frame
	}())
	f.Add(func() []byte { // v3 magic+version but cut off before the span id
		frame, _ := AppendFrame(nil, Header{Type: TypeAck, TraceID: 1, SpanID: 2}, nil)
		return frame[:HeaderLen+4]
	}())
	// Batch-boundary shapes: the batched I/O path hands the decoder frames
	// cut from mmsg ring buffers, so seed the exact edges — a frame filling
	// MaxPayload to the byte, two frames packed back-to-back (a decoder
	// must take exactly the first and ignore the neighbor), and a maximal
	// frame with one trailing byte shaved (truncated mid-payload).
	f.Add(func() []byte {
		frame, _ := AppendFrame(nil, Header{Type: TypeData, Seq: 1}, bytes.Repeat([]byte{0xEE}, MaxPayload))
		return frame
	}())
	f.Add(func() []byte {
		a, _ := AppendFrame(nil, Header{Type: TypeData, Seq: 2}, []byte("first"))
		return func() []byte {
			b, _ := AppendFrame(a, Header{Type: TypeAck, Seq: 3}, nil)
			return b
		}()
	}())
	f.Add(func() []byte {
		frame, _ := AppendFrame(nil, Header{Type: TypeData, Seq: 4, TraceID: 9, SpanID: 10}, bytes.Repeat([]byte{0xDB}, MaxPayload))
		return frame[:len(frame)-1]
	}())

	f.Fuzz(func(t *testing.T, data []byte) {
		h, payload, err := DecodeFrame(data)
		if err != nil {
			return
		}
		if int(h.PayloadLen) != len(payload) {
			t.Fatalf("declared payload %d, returned %d", h.PayloadLen, len(payload))
		}
		if len(payload) > len(data) {
			t.Fatalf("payload (%d) longer than input (%d)", len(payload), len(data))
		}
		reenc, err := AppendFrame(nil, h, payload)
		if err != nil {
			t.Fatalf("decoded frame failed to re-encode: %v", err)
		}
		h2, payload2, err := DecodeFrame(reenc)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if h2 != h || !bytes.Equal(payload2, payload) {
			t.Fatalf("round trip changed the frame:\n %+v %q\n-> %+v %q", h, payload, h2, payload2)
		}
	})
}

// FuzzNackDecode covers the variable-length NACK payload codec with the
// same no-panic + round-trip invariants.
func FuzzNackDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0})
	f.Add(EncodeNackPayload([]int64{1, 2, 3, -9}))
	f.Add(EncodeNackPayload(nil))
	f.Add([]byte{0xFF, 0xFF}) // declares 65535 seqs, carries none
	// Clamp boundary: exactly MaxNackEntries round-trips; one more is the
	// first count the decoder must refuse (no conforming encoder emits it).
	f.Add(EncodeNackPayload(make([]int64, MaxNackEntries)))
	f.Add(func() []byte {
		p := AppendNackPayload(nil, make([]int64, MaxNackEntries))
		p[0], p[1] = byte(MaxNackEntries+1), byte((MaxNackEntries+1)>>8)
		return p
	}())

	f.Fuzz(func(t *testing.T, data []byte) {
		missing, err := DecodeNackPayload(data)
		if err != nil {
			return
		}
		reenc := EncodeNackPayload(missing)
		missing2, err := DecodeNackPayload(reenc)
		if err != nil {
			t.Fatalf("re-encoded NACK failed to decode: %v", err)
		}
		if len(missing2) != len(missing) {
			t.Fatalf("round trip changed count: %d -> %d", len(missing), len(missing2))
		}
		for i := range missing {
			if missing[i] != missing2[i] {
				t.Fatalf("seq %d changed: %d -> %d", i, missing[i], missing2[i])
			}
		}
	})
}
