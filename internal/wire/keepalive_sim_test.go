package wire_test

// The keepalive suite runs on the simulated network and virtual clock:
// the identical Conn code that runs over kernel UDP sockets in the rest
// of the wire tests, but with dead-peer detection timed in exact virtual
// milliseconds and zero wall-clock sleeps. These migrate (and tighten)
// the former wall-clock keepalive tests.

import (
	"testing"
	"time"

	"marnet/internal/core"
	"marnet/internal/marsim"
	"marnet/internal/phy"
	"marnet/internal/wire"
)

// lossless is a jitter-free, loss-free radio for exact-timing assertions.
var lossless = phy.Profile{Name: "lossless", Up: 10e6, Down: 10e6, OneWay: 5 * time.Millisecond}

func TestKeepaliveDetectsDeadPeerVirtual(t *testing.T) {
	s := marsim.NewScenario("keepalive-dead", 3)
	serverEp := s.Net.NewEndpoint("server", lossless)
	server, err := wire.ListenVia(serverEp, wire.Config{Clock: s.Clock})
	if err != nil {
		t.Fatal(err)
	}
	const interval = 50 * time.Millisecond
	type change struct {
		state wire.State
		at    time.Duration
	}
	var changes []change
	clientEp := s.Net.NewEndpoint("client", lossless)
	client, err := wire.DialVia(clientEp, serverEp.UDPAddr(), wire.Config{
		Streams:       []wire.StreamSpec{{ID: 1, Class: core.ClassCritical, Priority: core.PrioHighest, Rate: 1e6}},
		Keepalive:     interval,
		KeepaliveMiss: 3,
		Clock:         s.Clock,
		OnStateChange: func(st wire.State) { changes = append(changes, change{st, s.Sim.Now()}) },
	})
	if err != nil {
		t.Fatal(err)
	}
	client.Send(1, []byte("hello")) //nolint:errcheck

	// Establish liveness, then kill the server: the path goes silent.
	const killAt = 100 * time.Millisecond
	s.At(killAt, func() {
		if client.State() != wire.StateActive {
			t.Errorf("state = %v before outage", client.State())
		}
		server.Close()
	})
	s.Defer(func() { client.Close() })
	if err := s.Run(time.Second); err != nil {
		t.Fatal(err)
	}

	var deadAt time.Duration
	for _, ch := range changes {
		if ch.state == wire.StateDead {
			deadAt = ch.at
			break
		}
	}
	if deadAt == 0 {
		t.Fatal("dead peer never detected")
	}
	// The threshold is KeepaliveMiss probe intervals of silence, detected
	// at the next probe tick: on the virtual clock, detection lands in
	// (3, 4] intervals after the last pong — no scheduling slack needed.
	took := deadAt - killAt
	if took < 3*interval || took > 4*interval+10*time.Millisecond {
		t.Errorf("detection took %v after kill, want within (%v, %v]", took, 3*interval, 4*interval)
	}
}

func TestKeepalivePingsKeepIdleConnectionAliveVirtual(t *testing.T) {
	// A peer that answers pings keeps the connection Active through a long
	// app-level silence (no false positives) — ten probe intervals of idle
	// virtual time, zero wall sleeps.
	s := marsim.NewScenario("keepalive-idle", 4)
	serverEp := s.Net.NewEndpoint("server", lossless)
	server, err := wire.ListenVia(serverEp, wire.Config{Clock: s.Clock})
	if err != nil {
		t.Fatal(err)
	}
	clientEp := s.Net.NewEndpoint("client", lossless)
	client, err := wire.DialVia(clientEp, serverEp.UDPAddr(), wire.Config{
		Keepalive: 40 * time.Millisecond,
		Clock:     s.Clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.At(400*time.Millisecond, func() {
		if client.State() != wire.StateActive {
			t.Errorf("state = %v after idle period with live peer", client.State())
		}
	})
	s.Defer(func() { server.Close() })
	s.Defer(func() { client.Close() })
	if err := s.Run(450 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
}

func TestSimDeliveryInvariants(t *testing.T) {
	// The per-stream sequence invariants on the simulated network: on a
	// loss-free FIFO path delivery is strictly monotonic; on a lossy path
	// retransmission recovers every message exactly once (no duplicates).
	cases := []struct {
		name   string
		loss   float64
		strict bool
	}{
		{"lossless-strict", 0, true},
		{"lossy-exactly-once", 0.05, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := marsim.NewScenario("delivery-"+tc.name, 11)
			prof := lossless
			prof.Loss = tc.loss
			serverEp := s.Net.NewEndpoint("server", prof)
			checker := marsim.NewSeqChecker(tc.strict)
			server, err := wire.ListenVia(serverEp, wire.Config{
				Clock:     s.Clock,
				OnMessage: checker.Wrap(nil),
			})
			if err != nil {
				t.Fatal(err)
			}
			clientEp := s.Net.NewEndpoint("client", prof)
			client, err := wire.DialVia(clientEp, serverEp.UDPAddr(), wire.Config{
				Streams:     []wire.StreamSpec{{ID: 1, Class: core.ClassCritical, Priority: core.PrioHighest, Rate: 2e6}},
				StartBudget: 5e6,
				Clock:       s.Clock,
			})
			if err != nil {
				t.Fatal(err)
			}
			const n = 50
			for i := 0; i < n; i++ {
				if _, err := client.Send(1, []byte{byte(i)}); err != nil {
					t.Fatal(err)
				}
			}
			s.Defer(func() { server.Close() })
			s.Defer(func() { client.Close() })
			if err := s.Run(3 * time.Second); err != nil {
				t.Fatal(err)
			}
			if err := checker.Err(); err != nil {
				t.Error(err)
			}
			if got := checker.Delivered(1); got != n {
				t.Errorf("delivered %d/%d distinct seqs", got, n)
			}
		})
	}
}
