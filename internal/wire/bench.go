package wire

// Pipeline benchmark harness for the marbench "wire" experiment. It lives
// in this package (not a _test file) because the legacy-path emulation and
// the receive-leg variants need the unexported sealer and transport
// internals; internal/experiments wraps it into the reported tables and
// BENCH_wire.json.

import (
	"crypto/rand"
	"fmt"
	"net"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"marnet/internal/obs"
)

// PipelineBenchRow is one measured leg of the wire datapath.
type PipelineBenchRow struct {
	Name    string `json:"name"`
	Packets int    `json:"packets"`
	// Delivered is only meaningful for receive legs: how many datagrams
	// survived decode+open (the rest were dropped by the kernel or the
	// codec).
	Delivered     int64   `json:"delivered,omitempty"`
	NsPerOp       float64 `json:"ns_per_op"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	PacketsPerSec float64 `json:"packets_per_sec"`
	MbitPerSec    float64 `json:"mbit_per_sec"`
}

// benchKey seals every benchmark frame: the interesting comparison is the
// full encode→seal→send pipeline the paper's Section VI-G requires, not
// the plaintext shortcut.
var benchKey = []byte("0123456789abcdef")

// RunPipelineBench measures the wire datapath on real loopback sockets in
// five legs:
//
//	send-legacy         per-packet allocations (payload copy, AAD render,
//	                    fresh seal buffers, fresh nonce from crypto/rand,
//	                    fresh frame buffer) + one sendto per packet — the
//	                    pipeline exactly as it was before the fast path.
//	send-fastpath       pooled buffers, in-place seal, counter nonce, one
//	                    sendto per packet.
//	send-fastpath-batch the same, MaxBatchFrames frames per sendmmsg.
//	recv-single         one recvfrom per datagram, then decode + open.
//	recv-batched        recvmmsg vectors, then decode + open.
//
// The packet count is fixed by the caller (never derived from timing or
// core count), so runs are comparable across machines and GOMAXPROCS
// settings. Reported allocations are process-wide mallocs per packet over
// the measured window.
func RunPipelineBench(packets, payloadLen int) ([]PipelineBenchRow, error) {
	if payloadLen > maxPlain(true) {
		return nil, fmt.Errorf("wire: bench payload %d exceeds sealed max %d", payloadLen, maxPlain(true))
	}
	payload := make([]byte, payloadLen)
	for i := range payload {
		payload[i] = byte(i)
	}
	rows := make([]PipelineBenchRow, 0, 5)
	for _, leg := range []struct {
		name string
		mode int
	}{
		{"send-legacy", sendLegacy},
		{"send-fastpath", sendFastpath},
		{"send-fastpath-batch", sendFastBatch},
	} {
		row, err := sendLeg(leg.name, leg.mode, packets, payload)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	for _, leg := range []struct {
		name    string
		batched bool
	}{
		{"recv-single", false},
		{"recv-batched", true},
	} {
		row, err := recvLeg(leg.name, leg.batched, packets, payload)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

const (
	sendLegacy = iota
	sendFastpath
	sendFastBatch
)

func listenLoopback() (*net.UDPConn, error) {
	return net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
}

// wireLenSealed is the on-the-wire size of one sealed benchmark frame.
func wireLenSealed(payloadLen int) int { return HeaderLen + sealedOver + payloadLen }

func sendLeg(name string, mode, packets int, payload []byte) (PipelineBenchRow, error) {
	src, err := listenLoopback()
	if err != nil {
		return PipelineBenchRow{}, err
	}
	dst, err := listenLoopback() // bound but never read: the kernel does the full delivery work
	if err != nil {
		src.Close()
		return PipelineBenchRow{}, err
	}
	u := newUDPPacketConn(src)
	defer u.Close()
	defer dst.Close()
	raddr := dst.LocalAddr().(*net.UDPAddr)
	sl, err := newSealer(benchKey)
	if err != nil {
		return PipelineBenchRow{}, err
	}

	hdr := Header{Type: TypeData, Stream: 1, Class: 1, Prio: 1}
	var dgs []Datagram
	var fbs []*[]byte
	if mode == sendFastBatch {
		dgs = make([]Datagram, 0, MaxBatchFrames)
		fbs = make([]*[]byte, MaxBatchFrames)
		for i := range fbs {
			fbs[i] = getFrameBuf()
		}
	}
	sendOne := func(seq int64) error {
		hdr.Seq = seq
		switch mode {
		case sendLegacy:
			// The pre-fast-path pipeline, faithfully: a private payload
			// copy, a rendered AAD, a fresh nonce from the kernel's
			// entropy pool, seal into fresh buffers, a fresh frame.
			buf := append([]byte(nil), payload...)
			out := make([]byte, nonceLen, nonceLen+len(buf)+gcmTagLen)
			if _, rerr := rand.Read(out[:nonceLen]); rerr != nil {
				return rerr
			}
			sealed := sl.aead.Seal(out, out[:nonceLen], buf, headerAAD(hdr))
			frame, ferr := AppendFrame(nil, hdr, sealed)
			if ferr != nil {
				return ferr
			}
			_, werr := u.WriteToUDP(frame, raddr)
			return werr
		default:
			fb := getFrameBuf()
			frame, ferr := sl.appendSealedFrame((*fb)[:0], hdr, payload)
			if ferr != nil {
				putFrameBuf(fb)
				return ferr
			}
			_, werr := u.WriteToUDP(frame, raddr)
			putFrameBuf(fb)
			return werr
		}
	}
	sendBatch := func(firstSeq int64, n int) error {
		dgs = dgs[:0]
		for i := 0; i < n; i++ {
			hdr.Seq = firstSeq + int64(i)
			frame, ferr := sl.appendSealedFrame((*fbs[i])[:0], hdr, payload)
			if ferr != nil {
				return ferr
			}
			dgs = append(dgs, Datagram{B: frame, Addr: raddr})
		}
		_, werr := u.WriteBatch(dgs)
		return werr
	}

	// Warm pools, the socket path, and the branch predictor alike.
	for i := 0; i < 256; i++ {
		if mode == sendFastBatch {
			if err := sendBatch(int64(i*MaxBatchFrames), MaxBatchFrames); err != nil {
				return PipelineBenchRow{}, err
			}
		} else if err := sendOne(int64(i)); err != nil {
			return PipelineBenchRow{}, err
		}
	}

	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	sent := 0
	for sent < packets {
		if mode == sendFastBatch {
			n := MaxBatchFrames
			if packets-sent < n {
				n = packets - sent
			}
			if err := sendBatch(int64(sent), n); err != nil {
				return PipelineBenchRow{}, err
			}
			sent += n
		} else {
			if err := sendOne(int64(sent)); err != nil {
				return PipelineBenchRow{}, err
			}
			sent++
		}
	}
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&m1)
	return finishRow(name, packets, 0, elapsed, m1.Mallocs-m0.Mallocs, len(payload)), nil
}

func recvLeg(name string, batched bool, packets int, payload []byte) (PipelineBenchRow, error) {
	rsock, err := listenLoopback()
	if err != nil {
		return PipelineBenchRow{}, err
	}
	rsock.SetReadBuffer(1 << 20) //nolint:errcheck // best-effort; the window below adapts
	var ru *udpPacketConn
	if batched {
		ru = newUDPPacketConn(rsock)
	} else {
		ru = &udpPacketConn{sock: rsock} // bio nil: the one-recvfrom-per-datagram loop
	}
	defer ru.Close()
	sl, err := newSealer(benchKey)
	if err != nil {
		return PipelineBenchRow{}, err
	}
	var delivered atomic.Int64
	ru.Start(func(pkt []byte, _ *net.UDPAddr) {
		h, p, derr := DecodeFrame(pkt)
		if derr != nil {
			return
		}
		if _, oerr := sl.openInPlace(h, p); oerr != nil {
			return
		}
		delivered.Add(1)
	})

	ssock, err := listenLoopback()
	if err != nil {
		return PipelineBenchRow{}, err
	}
	su := newUDPPacketConn(ssock)
	defer su.Close()
	raddr := rsock.LocalAddr().(*net.UDPAddr)

	// Pre-encode one window of frames: the send side must not be the
	// bottleneck when the receive leg is what is being measured.
	const window = 64
	frames := make([]Datagram, window)
	for i := range frames {
		fb := getFrameBuf()
		frame, ferr := sl.appendSealedFrame((*fb)[:0], Header{Type: TypeData, Stream: 1, Class: 1, Prio: 1, Seq: int64(i)}, payload)
		if ferr != nil {
			return PipelineBenchRow{}, ferr
		}
		frames[i] = Datagram{B: frame, Addr: raddr}
	}

	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	sent := 0
	for sent < packets {
		n := window
		if packets-sent < n {
			n = packets - sent
		}
		if _, werr := su.WriteBatch(frames[:n]); werr != nil {
			return PipelineBenchRow{}, werr
		}
		sent += n
		// Closed-loop window: never run more than 8 windows ahead of the
		// receiver, so the kernel buffer does not shed the very packets
		// being measured. Park (don't Gosched-spin): on a single core a
		// yield loop steals the receiver's CPU and the scheduler churn
		// dominates the measurement.
		wait := time.Now()
		for sent-int(delivered.Load()) > 8*window && time.Since(wait) < time.Second {
			time.Sleep(20 * time.Microsecond)
		}
	}
	// Drain: wait until delivery stops advancing.
	last, lastAt := delivered.Load(), time.Now()
	for delivered.Load() < int64(packets) && time.Since(lastAt) < 500*time.Millisecond {
		time.Sleep(20 * time.Microsecond)
		if d := delivered.Load(); d != last {
			last, lastAt = d, time.Now()
		}
	}
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&m1)
	row := finishRow(name, packets, delivered.Load(), elapsed, m1.Mallocs-m0.Mallocs, len(payload))
	return row, nil
}

// RecorderOverheadResult compares the wire send fast path with and
// without a live flight recorder hooked per frame.
type RecorderOverheadResult struct {
	Packets           int     `json:"packets"`
	Trials            int     `json:"trials"`
	BaseNsPerOp       float64 `json:"base_ns_per_op"`
	RecordNsPerOp     float64 `json:"record_ns_per_op"`
	OverheadPct       float64 `json:"overhead_pct"`
	RecordAllocsPerOp float64 `json:"record_allocs_per_op"`
}

// RunRecorderOverheadBench measures what recording one EvFrameSend per
// packet costs on the send fast path (pooled buffers, in-place seal, one
// sendto per packet — the same leg BENCH_wire.json calls send-fastpath).
// Both variants read the clock once per packet, exactly like paceFire,
// so the delta is the recorder's store alone. The op is ~2.5 µs of
// mostly sendto, so machine drift and virtualization steal bursts dwarf
// the tens-of-ns signal when the sides run as coarse trials; instead the
// two sides are interleaved in small paired blocks — flipping which side
// leads every pair — and the overhead is the median of the per-pair
// differences. Pairing cancels drift (both sides sample the same machine
// state); the median discards the pairs a steal burst lands on.
func RunRecorderOverheadBench(packets, payloadLen, trials int) (RecorderOverheadResult, error) {
	if trials < 1 {
		trials = 3
	}
	if payloadLen > maxPlain(true) {
		return RecorderOverheadResult{}, fmt.Errorf("wire: bench payload %d exceeds sealed max %d", payloadLen, maxPlain(true))
	}
	payload := make([]byte, payloadLen)
	for i := range payload {
		payload[i] = byte(i)
	}
	src, err := listenLoopback()
	if err != nil {
		return RecorderOverheadResult{}, err
	}
	dst, err := listenLoopback()
	if err != nil {
		src.Close()
		return RecorderOverheadResult{}, err
	}
	u := newUDPPacketConn(src)
	defer u.Close()
	defer dst.Close()
	raddr := dst.LocalAddr().(*net.UDPAddr)
	sl, err := newSealer(benchKey)
	if err != nil {
		return RecorderOverheadResult{}, err
	}

	// A ring larger than the packet count would distort nothing, but the
	// realistic deployment wraps; size it like a deployment would.
	rec := obs.NewFlightRecorder(obs.RecorderConfig{Session: "bench"})
	hdr := Header{Type: TypeData, Stream: 1, Class: 1, Prio: 1}
	wireLen := uint64(wireLenSealed(payloadLen))
	sendOne := func(seq int64, r *obs.FlightRecorder) error {
		hdr.Seq = seq
		now := time.Now()
		// Record before sealing, as paceFire does: frames are sealed at
		// enqueue time and recorded at pop time, so the record's locked
		// ops never wait behind a kilobyte of just-written seal output.
		if r != nil {
			r.RecordAt(now, obs.EvFrameSend, 0, hdr.Stream, uint32(seq), wireLen)
		}
		fb := getFrameBuf()
		frame, ferr := sl.appendSealedFrame((*fb)[:0], hdr, payload)
		if ferr != nil {
			putFrameBuf(fb)
			return ferr
		}
		_, werr := u.WriteToUDP(frame, raddr)
		putFrameBuf(fb)
		return werr
	}
	// Timed blocks are pure send loops: no GC, no stop-the-world
	// memstats read inside a measured window.
	block := func(n int, r *obs.FlightRecorder) (time.Duration, error) {
		t0 := time.Now()
		for i := 0; i < n; i++ {
			if err := sendOne(int64(i), r); err != nil {
				return 0, err
			}
		}
		return time.Since(t0), nil
	}

	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	for i := 0; i < 256; i++ { // warm pools, socket path, recorder ring
		if err := sendOne(int64(i), rec); err != nil {
			return RecorderOverheadResult{}, err
		}
	}

	// Allocation accounting happens once, outside the timed blocks.
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	for i := 0; i < packets; i++ {
		if err := sendOne(int64(i), rec); err != nil {
			return RecorderOverheadResult{}, err
		}
	}
	runtime.ReadMemStats(&m1)

	res := RecorderOverheadResult{
		Packets: packets, Trials: trials,
		RecordAllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / float64(packets),
	}
	const blockPkts = 100 // ~0.25 ms per block: far above timer noise, below steal-burst scales
	total := packets * trials
	pairs := total / blockPkts
	if pairs < 1 {
		pairs = 1
	}
	baseBlk := make([]float64, 0, pairs)
	diffBlk := make([]float64, 0, pairs)
	for p := 0; p < pairs; p++ {
		n := blockPkts
		if total < blockPkts {
			n = total
		}
		var baseEl, recEl time.Duration
		for leg := 0; leg < 2; leg++ {
			recLeg := (leg == 0) == (p&1 == 1)
			r := rec
			if !recLeg {
				r = nil
			}
			el, err := block(n, r)
			if err != nil {
				return RecorderOverheadResult{}, err
			}
			if recLeg {
				recEl = el
			} else {
				baseEl = el
			}
		}
		baseBlk = append(baseBlk, float64(baseEl.Nanoseconds())/float64(n))
		diffBlk = append(diffBlk, float64(recEl.Nanoseconds()-baseEl.Nanoseconds())/float64(n))
	}
	// Whichever leg runs second in a pair inherits warmed state from the
	// first, shifting the diff one way on even pairs and the other on odd
	// ones. Averaging each opposite-order pair of diffs cancels that
	// shift exactly before the median is taken.
	folded := diffBlk
	if len(diffBlk) >= 2 {
		folded = make([]float64, 0, len(diffBlk)/2)
		for i := 0; i+1 < len(diffBlk); i += 2 {
			folded = append(folded, (diffBlk[i]+diffBlk[i+1])/2)
		}
	}
	sort.Float64s(baseBlk)
	sort.Float64s(folded)
	res.BaseNsPerOp = baseBlk[len(baseBlk)/2]
	res.RecordNsPerOp = res.BaseNsPerOp + folded[len(folded)/2]
	res.OverheadPct = (res.RecordNsPerOp - res.BaseNsPerOp) / res.BaseNsPerOp * 100
	return res, nil
}

func finishRow(name string, packets int, delivered int64, elapsed time.Duration, mallocs uint64, payloadLen int) PipelineBenchRow {
	ops := float64(packets)
	if delivered > 0 {
		ops = float64(delivered)
	}
	if ops == 0 {
		ops = 1
	}
	wire := float64(wireLenSealed(payloadLen))
	return PipelineBenchRow{
		Name:          name,
		Packets:       packets,
		Delivered:     delivered,
		NsPerOp:       float64(elapsed.Nanoseconds()) / ops,
		AllocsPerOp:   float64(mallocs) / ops,
		PacketsPerSec: ops / elapsed.Seconds(),
		MbitPerSec:    ops * wire * 8 / 1e6 / elapsed.Seconds(),
	}
}
