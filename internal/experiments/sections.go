package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"marnet/internal/core"
	"marnet/internal/edge"
	"marnet/internal/fec"
	"marnet/internal/mar"
	"marnet/internal/phy"
	"marnet/internal/queue"
	"marnet/internal/simnet"
	"marnet/internal/tcp"
)

// SectionVICRow is one RTT point of the loss-recovery analysis. InTime is
// the fraction delivered within the latency budget; Complete is the
// fraction delivered at all (late counts, lost does not) — the metric FEC
// improves even when the budget is unreachable.
type SectionVICRow struct {
	RTT            time.Duration
	ARQAffordable  bool // analytic (Section VI-C rule)
	PlainInTime    float64
	ARQInTime      float64
	FECInTime      float64
	PlainComplete  float64
	ARQComplete    float64
	FECComplete    float64
	FECOverheadPct float64
}

// SectionVICResult is the loss-recovery-vs-latency study.
type SectionVICResult struct {
	Budget time.Duration
	Loss   float64
	Rows   []SectionVICRow
	// ResidualLossFEC is the analytic residual block-loss of FEC(8,2).
	ResidualLossFEC float64
}

// SectionVIC measures in-time delivery of a 30 FPS reference-frame stream
// under 5% random loss for several RTTs, comparing plain best effort, ARQ
// within the 75 ms budget, and FEC redundancy (Section VI-C's argument
// that recovery must be replaced by redundancy once RTT > budget/2).
func SectionVIC(seed int64) SectionVICResult {
	const lossP = 0.05
	budget := mar.MaxTolerableRTT
	res := SectionVICResult{
		Budget:          budget,
		Loss:            lossP,
		ResidualLossFEC: fec.ResidualLoss(8, 2, lossP),
	}
	for _, rtt := range []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 37 * time.Millisecond,
		50 * time.Millisecond, 80 * time.Millisecond, 150 * time.Millisecond,
	} {
		row := SectionVICRow{
			RTT:           rtt,
			ARQAffordable: mar.CanRecoverLoss(rtt, budget),
		}
		row.PlainInTime, row.PlainComplete = vicRun(seed, rtt, budget, lossP, false, 0, 0)
		row.ARQInTime, row.ARQComplete = vicRun(seed, rtt, budget, lossP, true, 0, 0)
		row.FECInTime, row.FECComplete = vicRun(seed, rtt, budget, lossP, false, 8, 2)
		row.FECOverheadPct = 2.0 / 8 * 100
		res.Rows = append(res.Rows, row)
	}
	return res
}

// vicRun runs one configuration and returns the fraction of packets
// delivered (or FEC-recovered) within the deadline, and the fraction
// delivered at all.
func vicRun(seed int64, rtt, budget time.Duration, lossP float64, arq bool, fecK, fecM int) (inTime, complete float64) {
	sim := simnet.New(seed)
	clientMux, serverMux := simnet.NewDemux(), simnet.NewDemux()
	oneWay := rtt / 2
	up := simnet.NewLink(sim, 20e6, oneWay, serverMux, simnet.WithLoss(lossP))
	down := simnet.NewLink(sim, 20e6, oneWay, clientMux)
	snd := core.NewSender(sim, core.SenderConfig{
		Local: 1, Peer: 2, FlowID: 1,
		Paths:       core.NewMultipath(&core.Path{ID: 1, Out: up, Weight: 1}),
		StartBudget: 10e6,
	})
	rcv := core.NewReceiver(sim, core.ReceiverConfig{
		Local: 2, Peer: 1, FlowID: 1, DefaultOut: down,
	})
	clientMux.Register(1, snd)
	serverMux.Register(2, rcv)

	class := core.ClassLossRecovery
	if !arq && fecK == 0 {
		class = core.ClassFullBestEffort
	}
	st, err := snd.AddStream(core.StreamConfig{
		Name: "ref", Class: class, Priority: core.PrioHighest,
		Rate: 2e6, Deadline: budget, FECK: fecK, FECM: fecM,
	})
	if err != nil {
		panic(err)
	}
	// Each 30 FPS frame is shipped as 4 packets, as a real encoder would
	// packetize it; intra-frame gaps give the receiver a fast loss signal.
	const frames = 600 // 20 s at 30 FPS
	const pktsPerFrame = 4
	for i := 0; i < frames; i++ {
		i := i
		sim.Schedule(time.Duration(i)*33*time.Millisecond, func() {
			for j := 0; j < pktsPerFrame; j++ {
				snd.Submit(st, 300)
			}
		})
	}
	if err := sim.RunUntil(30 * time.Second); err != nil {
		panic(err)
	}
	snd.Stop()
	rs := rcv.Stream(st.ID)
	total := float64(frames * pktsPerFrame)
	return float64(rs.Delivered) / total, float64(rs.Delivered+rs.Late) / total
}

// Format renders the study.
func (r SectionVICResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section VI-C — loss recovery vs latency budget (%v budget, %.0f%% loss)\n",
		r.Budget, r.Loss*100)
	fmt.Fprintf(&b, "%-8s %-8s | %10s %10s %10s | %10s %10s %10s\n",
		"RTT", "ARQ ok?", "plain<=T", "ARQ<=T", "FEC<=T", "plain-all", "ARQ-all", "FEC-all")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8v %-8v | %9.1f%% %9.1f%% %9.1f%% | %9.1f%% %9.1f%% %9.1f%%\n",
			row.RTT, row.ARQAffordable,
			row.PlainInTime*100, row.ARQInTime*100, row.FECInTime*100,
			row.PlainComplete*100, row.ARQComplete*100, row.FECComplete*100)
	}
	fmt.Fprintf(&b, "FEC residual block loss (analytic): %.4f%% at %.0f%% bandwidth overhead\n",
		r.ResidualLossFEC*100, r.Rows[0].FECOverheadPct)
	return b.String()
}

// SectionVIDRow is one multipath behaviour.
type SectionVIDRow struct {
	Behavior  string
	Delivered float64 // fraction of submitted packets delivered in time
	MeanLat   time.Duration
	LTEBytes  int64 // bytes sent over the cellular path (user cost)
}

// SectionVIDResult is the multipath-behaviour study.
type SectionVIDResult struct {
	Rows []SectionVIDRow
}

// SectionVID evaluates the paper's three multipath behaviours during WiFi
// outages (AP handovers): (1) WiFi with LTE only as handover cover, (2)
// WiFi preferred with LTE fallback — same policy, stressed harder, and (3)
// WiFi and LTE simultaneously. Reported: in-time delivery, latency, and
// LTE byte cost.
func SectionVID(seed int64) SectionVIDResult {
	type behavior struct {
		name   string
		policy core.Policy
		dup    bool
	}
	behaviors := []behavior{
		{"WiFi + LTE handover only", core.PolicyFailover, false},
		{"WiFi preferred, LTE fallback", core.PolicyFailover, true},
		{"WiFi and LTE simultaneously", core.PolicySpread, true},
	}
	var out SectionVIDResult
	for i, bh := range behaviors {
		sim := simnet.New(seed + int64(i))
		clientMux, serverMux := simnet.NewDemux(), simnet.NewDemux()
		wifiUp := simnet.NewLink(sim, 20e6, 8*time.Millisecond, serverMux, simnet.WithJitter(3*time.Millisecond))
		lteUp := simnet.NewLink(sim, 7.9e6, 38*time.Millisecond, serverMux, simnet.WithJitter(10*time.Millisecond))
		down := simnet.NewLink(sim, 50e6, 8*time.Millisecond, clientMux)

		wifiPath := &core.Path{ID: 1, Out: wifiUp, Weight: 20}
		ltePath := &core.Path{ID: 2, Out: lteUp, Weight: 8}
		mp := core.NewMultipath(wifiPath, ltePath)
		mp.Policy = bh.policy
		mp.DuplicateCritical = bh.dup
		mp.DownAfter = 250 * time.Millisecond

		snd := core.NewSender(sim, core.SenderConfig{
			Local: 1, Peer: 2, FlowID: 1, Paths: mp, StartBudget: 6e6,
		})
		rcv := core.NewReceiver(sim, core.ReceiverConfig{
			Local: 2, Peer: 1, FlowID: 1, DefaultOut: down,
		})
		clientMux.Register(1, snd)
		serverMux.Register(2, rcv)

		st, err := snd.AddStream(core.StreamConfig{
			Name: "mar", Class: core.ClassLossRecovery, Priority: core.PrioHighest,
			Rate: 4e6, Deadline: 150 * time.Millisecond,
		})
		if err != nil {
			panic(err)
		}

		// WiFi outages: 3 s every 10 s (handover gaps, Section IV-A4).
		// The forced-down signal models the client noticing disassociation.
		for _, start := range []time.Duration{10 * time.Second, 20 * time.Second} {
			start := start
			phy.Outage(sim, wifiUp, 0, start, 3*time.Second)
			sim.ScheduleAt(start+200*time.Millisecond, func() { wifiPath.SetDown(true) })
			sim.ScheduleAt(start+3*time.Second, func() { wifiPath.SetDown(false) })
		}

		const packets = 3000 // 30 s at 100 pkt/s
		for i := 0; i < packets; i++ {
			i := i
			sim.Schedule(time.Duration(i)*10*time.Millisecond, func() { snd.Submit(st, 1000) })
		}
		if err := sim.RunUntil(35 * time.Second); err != nil {
			panic(err)
		}
		snd.Stop()
		rs := rcv.Stream(st.ID)
		out.Rows = append(out.Rows, SectionVIDRow{
			Behavior:  bh.name,
			Delivered: float64(rs.Delivered) / packets,
			MeanLat:   rs.Latency.Mean().Round(100 * time.Microsecond),
			LTEBytes:  ltePath.SentBytes,
		})
	}
	return out
}

// Format renders the behaviours.
func (r SectionVIDResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section VI-D — multipath behaviours under WiFi outages (2x3s gaps in 30s)\n")
	fmt.Fprintf(&b, "%-30s %10s %12s %12s\n", "Behavior", "in-time", "mean lat", "LTE MB")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-30s %9.1f%% %12v %12.2f\n",
			row.Behavior, row.Delivered*100, row.MeanLat, float64(row.LTEBytes)/1e6)
	}
	return b.String()
}

// SectionVIFRow is one placement instance size.
type SectionVIFRow struct {
	Users, Sites      int
	GreedyC, ExactC   int
	RandomC           float64 // mean over trials
	GreedyNs, ExactNs int64
}

// SectionVIFResult is the edge-placement study.
type SectionVIFResult struct {
	Budget time.Duration
	Rows   []SectionVIFRow
}

// SectionVIF solves min-|C| edge datacenter placement on growing synthetic
// cities, comparing the greedy approximation against the exact solver
// (small instances) and a random baseline.
func SectionVIF(seed int64) SectionVIFResult {
	res := SectionVIFResult{Budget: 8 * time.Millisecond}
	rng := rand.New(rand.NewSource(seed))
	sizes := []struct{ users, sites int }{
		{15, 8}, {30, 12}, {60, 16}, {120, 24},
	}
	for _, sz := range sizes {
		inst := edge.NewGrid(sz.users, sz.sites, 30, res.Budget, seed+int64(sz.users))
		if !inst.Feasible() {
			continue
		}
		t0 := time.Now()
		g, err := edge.Greedy(inst)
		if err != nil {
			panic(err)
		}
		gNs := time.Since(t0).Nanoseconds()

		exactC := -1
		var eNs int64
		if sz.users <= 64 {
			t0 = time.Now()
			e, err := edge.Exact(inst, 64)
			if err != nil {
				panic(err)
			}
			eNs = time.Since(t0).Nanoseconds()
			exactC = len(e)
		}
		var randomSum int
		const trials = 10
		for i := 0; i < trials; i++ {
			r, err := edge.RandomBaseline(inst, rng)
			if err != nil {
				panic(err)
			}
			randomSum += len(r)
		}
		res.Rows = append(res.Rows, SectionVIFRow{
			Users: sz.users, Sites: sz.sites,
			GreedyC: len(g), ExactC: exactC,
			RandomC:  float64(randomSum) / trials,
			GreedyNs: gNs, ExactNs: eNs,
		})
	}
	return res
}

// Format renders the placement study.
func (r SectionVIFResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section VI-F — edge datacenter placement (min |C|, %v network budget)\n", r.Budget)
	fmt.Fprintf(&b, "%-8s %-8s %-9s %-8s %-9s %-12s %-12s\n",
		"users", "sites", "greedy", "exact", "random", "greedy time", "exact time")
	for _, row := range r.Rows {
		exact := "-"
		eTime := "-"
		if row.ExactC >= 0 {
			exact = fmt.Sprintf("%d", row.ExactC)
			eTime = time.Duration(row.ExactNs).Round(time.Microsecond).String()
		}
		fmt.Fprintf(&b, "%-8d %-8d %-9d %-8s %-9.1f %-12v %-12s\n",
			row.Users, row.Sites, row.GreedyC, exact, row.RandomC,
			time.Duration(row.GreedyNs).Round(time.Microsecond), eTime)
	}
	return b.String()
}

// SectionVIHRow is one queueing discipline result.
type SectionVIHRow struct {
	Discipline string
	MARp50     time.Duration
	MARp99     time.Duration
	MARLoss    float64
	BulkMbps   float64
}

// SectionVIHResult is the uplink-queueing study.
type SectionVIHResult struct {
	Rows []SectionVIHRow
}

// SectionVIH shares a 2 Mb/s uplink between a latency-sensitive MAR control
// stream and two bulk TCP uploads under three kernel queue disciplines:
// the oversized DropTail FIFO (~1000 packets) the paper blames, FQ-CoDel
// (the paper's suggested mitigation), and a strict-priority queue keyed on
// the ARTP priority field. Reported: MAR packet delay percentiles and bulk
// goodput.
func SectionVIH(seed int64) SectionVIHResult {
	type disc struct {
		name string
		mk   func() simnet.Queue
	}
	discs := []disc{
		{"DropTail(1000)", func() simnet.Queue { return simnet.NewDropTail(1000) }},
		{"FQ-CoDel", func() simnet.Queue { return queue.NewFQCoDel(1000) }},
		{"StrictPriority", func() simnet.Queue {
			q := queue.NewStrictPriority(2, 500)
			q.Classify = func(p *simnet.Packet) int {
				if p.Kind == core.KindData && core.Priority(p.Prio) == core.PrioHighest {
					return 0
				}
				if p.Kind == tcp.KindAck {
					return 0 // let ACKs breathe, like real priority configs do
				}
				return 1
			}
			return q
		}},
	}
	var out SectionVIHResult
	for i, d := range discs {
		sim := simnet.New(seed + int64(i))
		clientMux, serverMux := simnet.NewDemux(), simnet.NewDemux()
		up := simnet.NewLink(sim, 2e6, 15*time.Millisecond, serverMux, simnet.WithQueue(d.mk()))
		down := simnet.NewLink(sim, 16e6, 15*time.Millisecond, clientMux)

		// MAR control stream over ARTP.
		snd := core.NewSender(sim, core.SenderConfig{
			Local: 1, Peer: 2, FlowID: 1,
			Paths:       core.NewMultipath(&core.Path{ID: 1, Out: up, Weight: 1}),
			StartBudget: 0.3e6,
		})
		rcv := core.NewReceiver(sim, core.ReceiverConfig{
			Local: 2, Peer: 1, FlowID: 1, DefaultOut: down,
		})
		clientMux.Register(1, snd)
		serverMux.Register(2, rcv)
		st, err := snd.AddStream(core.StreamConfig{
			Name: "mar-control", Class: core.ClassCritical, Priority: core.PrioHighest, Rate: 0.2e6,
		})
		if err != nil {
			panic(err)
		}
		const packets = 2000 // 20 s at 100/s
		for i := 0; i < packets; i++ {
			i := i
			sim.Schedule(time.Duration(i)*10*time.Millisecond, func() { snd.Submit(st, 200) })
		}

		// Two bulk TCP uploads sharing the uplink.
		var bulk []*tcp.Flow
		for j := 0; j < 2; j++ {
			fl := tcp.NewFlow(sim, tcp.FlowConfig{
				SenderAddr: simnet.Addr(10 + j), ReceiverAddr: simnet.Addr(20 + j),
				FlowID:  uint64(10 + j),
				Forward: up, Reverse: down,
				SenderDemux: clientMux, ReceiverDemux: serverMux,
				GoodputBin: time.Second,
			})
			fl.Start()
			bulk = append(bulk, fl)
		}

		if err := sim.RunUntil(25 * time.Second); err != nil {
			panic(err)
		}
		snd.Stop()
		rs := rcv.Stream(st.ID)
		var bulkRate float64
		for _, fl := range bulk {
			bulkRate += fl.Receiver.Goodput.Series("g").Window(5*time.Second, 25*time.Second)
		}
		out.Rows = append(out.Rows, SectionVIHRow{
			Discipline: d.name,
			MARp50:     rs.Latency.Percentile(50).Round(100 * time.Microsecond),
			MARp99:     rs.Latency.Percentile(99).Round(100 * time.Microsecond),
			MARLoss:    1 - float64(rs.Delivered)/packets,
			BulkMbps:   bulkRate / 1e6,
		})
	}
	return out
}

// Format renders the AQM comparison.
func (r SectionVIHResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section VI-H — uplink queueing for MAR control traffic (2 Mb/s uplink + 2 TCP uploads)\n")
	fmt.Fprintf(&b, "%-16s %12s %12s %10s %12s\n", "Discipline", "MAR p50", "MAR p99", "MAR loss", "bulk rate")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %12v %12v %9.1f%% %9.2f Mb/s\n",
			row.Discipline, row.MARp50, row.MARp99, row.MARLoss*100, row.BulkMbps)
	}
	return b.String()
}
