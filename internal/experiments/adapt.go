package experiments

import (
	"fmt"
	"strings"

	"marnet/internal/marsim"
)

// AdaptRow is one policy's outcome on the congestion-ramp scenario.
type AdaptRow struct {
	Policy    string  `json:"policy"`
	Hits      int64   `json:"hits"`
	Frames    int64   `json:"frames"`
	HitRate   float64 `json:"hit_rate"`
	UpBytes   int64   `json:"up_bytes"`
	RMSError  float64 `json:"rms_error_px"`
	Switches  int64   `json:"mode_switches"`
	FinalMode string  `json:"final_mode"`
}

// AdaptBenchResult is the closed-loop degradation study: the adaptive
// controller against every fixed rung of the ladder on the congestion
// ramp, plus the handover retransmit-affordability flip count and the
// Gilbert-Elliott oscillation comparison. Marshalled as-is into
// BENCH_adapt.json by `make bench`.
type AdaptBenchResult struct {
	Seed int64      `json:"seed"`
	Rows []AdaptRow `json:"rows"`

	// The acceptance flags the CI bench gate checks.
	AdaptiveBeatsAllTiers bool `json:"adaptive_beats_all_tiers"` // strictly more budget hits than every fixed rung
	FewerBytesThanFull    bool `json:"fewer_bytes_than_full"`    // while shipping less than fixed-full
	Deterministic         bool `json:"deterministic"`            // same seed reproduces the decision trace bit-for-bit

	DecisionHash uint64 `json:"decision_hash"`

	// Handover: ARQ<->FEC transitions across the 8 s out / 16 s back
	// radio swap (the paper's Budget/2 affordability rule wants exactly 2).
	HandoverRetxFlips    int64 `json:"handover_retx_flips"`
	HandoverHitsAdaptive int64 `json:"handover_hits_adaptive"`
	HandoverHitsFull     int64 `json:"handover_hits_fixed_full"`

	// Burst loss: mode switches with hysteresis on vs off under the same
	// seeded Gilbert-Elliott regime.
	GESwitchesGuarded int64   `json:"ge_switches_guarded"`
	GESwitchesNaive   int64   `json:"ge_switches_naive"`
	GEPeakWireLoss    float64 `json:"ge_peak_wire_loss"`

	Err string `json:"err,omitempty"`
}

func adaptRow(r *marsim.AdaptResult) AdaptRow {
	return AdaptRow{
		Policy: r.Kind, Hits: r.Hits, Frames: r.Frames, HitRate: r.HitRate(),
		UpBytes: r.UpBytes, RMSError: r.RMSError, Switches: r.Switches,
		FinalMode: r.FinalMode,
	}
}

// Adapt runs the adaptive-degradation study: the congestion ramp for the
// controller and each fixed rung head-to-head, a same-seed re-run to
// certify determinism, and the handover and burst-loss scenarios for the
// affordability-switch and hysteresis claims. Everything runs in the
// deterministic simulator, so the result depends only on the seed.
func Adapt(seed int64) AdaptBenchResult {
	res := AdaptBenchResult{Seed: seed}

	var adaptive, full *marsim.AdaptResult
	for _, k := range []marsim.AdaptPolicyKind{
		marsim.PolicyAdaptive, marsim.PolicyFixedFull,
		marsim.PolicyFixedFeatures, marsim.PolicyFixedTracking,
	} {
		r, err := marsim.RunAdaptCongestion(seed, k)
		if err != nil {
			res.Err = fmt.Sprintf("congestion/%s: %v", k, err)
			return res
		}
		res.Rows = append(res.Rows, adaptRow(r))
		switch k {
		case marsim.PolicyAdaptive:
			adaptive = r
		case marsim.PolicyFixedFull:
			full = r
		}
	}
	res.DecisionHash = adaptive.DecisionHash
	res.AdaptiveBeatsAllTiers = true
	for _, row := range res.Rows {
		if row.Policy != adaptive.Kind && row.Hits >= adaptive.Hits {
			res.AdaptiveBeatsAllTiers = false
		}
	}
	res.FewerBytesThanFull = adaptive.UpBytes < full.UpBytes

	rerun, err := marsim.RunAdaptCongestion(seed, marsim.PolicyAdaptive)
	if err != nil {
		res.Err = fmt.Sprintf("congestion rerun: %v", err)
		return res
	}
	res.Deterministic = rerun.DecisionHash == adaptive.DecisionHash &&
		rerun.TraceHash == adaptive.TraceHash

	ho, err := marsim.RunAdaptHandover(seed, marsim.PolicyAdaptive)
	if err != nil {
		res.Err = fmt.Sprintf("handover: %v", err)
		return res
	}
	hoFull, err := marsim.RunAdaptHandover(seed, marsim.PolicyFixedFull)
	if err != nil {
		res.Err = fmt.Sprintf("handover/full: %v", err)
		return res
	}
	res.HandoverRetxFlips = ho.RetxFlips
	res.HandoverHitsAdaptive = ho.Hits
	res.HandoverHitsFull = hoFull.Hits

	ge, err := marsim.RunAdaptGEBurst(seed, marsim.PolicyAdaptive)
	if err != nil {
		res.Err = fmt.Sprintf("ge: %v", err)
		return res
	}
	geNaive, err := marsim.RunAdaptGEBurst(seed, marsim.PolicyAdaptiveNoHyst)
	if err != nil {
		res.Err = fmt.Sprintf("ge/nohyst: %v", err)
		return res
	}
	res.GESwitchesGuarded = ge.Switches
	res.GESwitchesNaive = geNaive.Switches
	res.GEPeakWireLoss = ge.PeakWireLoss
	return res
}

// Format renders the study in the repo's table style.
func (r AdaptBenchResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Adaptive degradation, congestion ramp (26 s, 20 FPS, 75 ms budget, seed=%d)\n", r.Seed)
	if r.Err != "" {
		fmt.Fprintf(&b, "  study failed: %s\n", r.Err)
		return b.String()
	}
	fmt.Fprintf(&b, "  %-16s %10s %8s %10s %10s %9s %10s\n",
		"policy", "hits", "hit%", "up-bytes", "rms(px)", "switches", "final")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-16s %5d/%-4d %7.1f%% %10d %10.1f %9d %10s\n",
			row.Policy, row.Hits, row.Frames, 100*row.HitRate,
			row.UpBytes, row.RMSError, row.Switches, row.FinalMode)
	}
	fmt.Fprintf(&b, "  adaptive beats all fixed tiers: %v   fewer bytes than fixed-full: %v   deterministic: %v (hash %#x)\n",
		r.AdaptiveBeatsAllTiers, r.FewerBytesThanFull, r.Deterministic, r.DecisionHash)
	fmt.Fprintf(&b, "  handover: ARQ<->FEC flips=%d, hits adaptive=%d vs fixed-full=%d\n",
		r.HandoverRetxFlips, r.HandoverHitsAdaptive, r.HandoverHitsFull)
	fmt.Fprintf(&b, "  burst loss (GE, peak wire loss %.3f): switches guarded=%d vs no-hysteresis=%d\n",
		r.GEPeakWireLoss, r.GESwitchesGuarded, r.GESwitchesNaive)
	return b.String()
}
