package experiments

import (
	"fmt"
	"strings"
	"time"

	"marnet/internal/faults"
	"marnet/internal/obs"
	"marnet/internal/rpc"
	"marnet/internal/trace"
)

// BudgetStageRow aggregates one pipeline stage across all frames.
type BudgetStageRow struct {
	Stage string
	Mean  time.Duration
	P95   time.Duration
	Share float64 // fraction of total end-to-end time spent here
	Blown int64   // frames over budget with this stage dominant
}

// BudgetResult is the 75 ms budget-attribution study: where each frame's
// motion-to-photon time went, measured on real sockets through an
// impaired relay.
type BudgetResult struct {
	Budget   time.Duration
	Frames   int
	Complete int
	Retried  int // frames needing >1 attempt or a hedge
	Blown    int64
	Rows     []BudgetStageRow

	TotalMean time.Duration
	TotalP95  time.Duration
	// MaxSumErr is the largest |stage sum - measured total| / total across
	// all frames — the attribution-exactness acceptance metric.
	MaxSumErr float64
}

// Budget runs the Section III-B latency-budget study end to end: a traced
// client offloads frames over a lossy, jittered path with retries and
// hedging enabled, and every frame's end-to-end latency is attributed to
// the six budget stages (queue, compute, net up/down, serialize,
// retry/hedge overhead). The interesting output is the attribution table:
// under loss, blown frames are dominated by retry overhead, not compute —
// the paper's argument for why transport, not GPU, is the MAR bottleneck.
func Budget(seed int64) BudgetResult {
	const (
		service = 3 * time.Millisecond
		budget  = obs.DefaultBudget
		frames  = 150
	)
	handler := func(method uint8, req []byte) []byte {
		time.Sleep(service)
		return req
	}
	srv, err := rpc.NewServer("127.0.0.1:0", nil, handler)
	if err != nil {
		panic(err)
	}
	defer srv.Close()

	storm := faults.DirConfig{
		Loss:   0.10,
		Delay:  3 * time.Millisecond,
		Jitter: 2 * time.Millisecond,
	}
	relay, err := faults.NewRelay(srv.Addr(), faults.Config{Seed: seed, Up: storm, Down: storm})
	if err != nil {
		panic(err)
	}
	defer relay.Close()

	cl, err := rpc.Dial(relay.Addr(), rpc.ClientConfig{
		Tracer: obs.NewTracer(frames, seed),
		Budget: budget,
		Retry:  rpc.RetryPolicy{Max: 3, Backoff: 8 * time.Millisecond, MaxBackoff: 32 * time.Millisecond},
		Hedge:  rpc.HedgePolicy{Enabled: true, Delay: 40 * time.Millisecond},
		Seed:   seed + 1,
	})
	if err != nil {
		panic(err)
	}
	defer cl.Close()

	res := BudgetResult{Budget: budget, Frames: frames}
	payload := make([]byte, 600) // a pose update plus features
	for i := 0; i < frames; i++ {
		if _, err := cl.Call(1, payload, 300*time.Millisecond); err == nil {
			res.Complete++
		}
	}

	bt := cl.BudgetTracker()
	reports := bt.Reports()
	res.Blown = bt.Blown()
	blownBy := bt.BlownByStage()

	var totals trace.DurStats
	perStage := map[string]*trace.DurStats{}
	var grand time.Duration
	stageSum := map[string]time.Duration{}
	for _, r := range reports {
		totals.Observe(r.Total)
		grand += r.Total
		if r.Attempts > 1 || r.Hedged {
			res.Retried++
		}
		if r.Total > 0 {
			err := float64(r.Sum()-r.Total) / float64(r.Total)
			if err < 0 {
				err = -err
			}
			if err > res.MaxSumErr {
				res.MaxSumErr = err
			}
		}
		for _, s := range r.Stages() {
			d, ok := perStage[s.Name]
			if !ok {
				d = &trace.DurStats{}
				perStage[s.Name] = d
			}
			d.Observe(s.Dur)
			stageSum[s.Name] += s.Dur
		}
	}
	res.TotalMean = totals.Mean()
	res.TotalP95 = totals.Percentile(95)
	for _, name := range []string{obs.StageQueue, obs.StageCompute, obs.StageNetUp,
		obs.StageNetDown, obs.StageSerialize, obs.StageOverhead} {
		d := perStage[name]
		if d == nil {
			continue
		}
		row := BudgetStageRow{Stage: name, Mean: d.Mean(), P95: d.Percentile(95), Blown: blownBy[name]}
		if grand > 0 {
			row.Share = float64(stageSum[name]) / float64(grand)
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Format renders the attribution table.
func (r BudgetResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Budget — %v motion-to-photon attribution over a 10%% lossy path (%d frames, %d complete, %d retried/hedged)\n",
		r.Budget, r.Frames, r.Complete, r.Retried)
	fmt.Fprintf(&b, "%-10s %10s %10s %8s %14s\n", "stage", "mean", "p95", "share", "blown-dominant")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %10s %10s %7.1f%% %14d\n",
			row.Stage, row.Mean.Round(time.Microsecond), row.P95.Round(time.Microsecond),
			100*row.Share, row.Blown)
	}
	fmt.Fprintf(&b, "end-to-end: mean=%v p95=%v; %d/%d frames blew the budget; max attribution error %.2f%%\n",
		r.TotalMean.Round(time.Microsecond), r.TotalP95.Round(time.Microsecond),
		r.Blown, r.Frames, 100*r.MaxSumErr)
	return b.String()
}
