package experiments

import (
	"fmt"
	"runtime"
	"strings"

	"marnet/internal/wire"
)

// WireBenchResult is the wire-datapath saturation study: the measured
// legs of the frame pipeline on real loopback sockets, plus the headline
// ratio the fast-path work is judged by. Marshalled as-is into
// BENCH_wire.json by `make bench`.
type WireBenchResult struct {
	Seed         int64                   `json:"seed"`
	GOMAXPROCS   int                     `json:"gomaxprocs"`
	Packets      int                     `json:"packets"`
	PayloadBytes int                     `json:"payload_bytes"`
	Rows         []wire.PipelineBenchRow `json:"rows"`
	// SpeedupPacketsPerSec is send-fastpath-batch over send-legacy — the
	// tentpole target is ≥4x on loopback saturation.
	SpeedupPacketsPerSec float64 `json:"speedup_packets_per_sec"`
	Err                  string  `json:"err,omitempty"`
}

// WireBench saturates the wire datapath on loopback and reports each
// pipeline leg: the pre-fast-path send pipeline (per-packet allocations,
// per-packet nonce syscall, one sendto per frame), the pooled fast path
// unbatched and batched, and the two receive loops (recvfrom vs recvmmsg),
// every leg sealing/opening with AES-GCM. The packet count is fixed, not
// timer- or core-derived, so runs compare across machines; seed only tags
// the output (real sockets have no useful seed). Unlike the simulator
// studies, absolute numbers vary with the host — the ratios are the result.
func WireBench(seed int64) WireBenchResult {
	const (
		packets    = 30_000
		payloadLen = 1000
	)
	res := WireBenchResult{
		Seed:         seed,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Packets:      packets,
		PayloadBytes: payloadLen,
	}
	rows, err := wire.RunPipelineBench(packets, payloadLen)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	res.Rows = rows
	var legacy, batch float64
	for _, r := range rows {
		switch r.Name {
		case "send-legacy":
			legacy = r.PacketsPerSec
		case "send-fastpath-batch":
			batch = r.PacketsPerSec
		}
	}
	if legacy > 0 {
		res.SpeedupPacketsPerSec = batch / legacy
	}
	return res
}

// Format renders the study in the repo's table style.
func (r WireBenchResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Wire datapath saturation (loopback, AES-GCM sealed, %d packets of %d B, GOMAXPROCS=%d)\n",
		r.Packets, r.PayloadBytes, r.GOMAXPROCS)
	if r.Err != "" {
		fmt.Fprintf(&b, "  bench failed: %s\n", r.Err)
		return b.String()
	}
	fmt.Fprintf(&b, "  %-20s %10s %12s %12s %10s %10s\n",
		"leg", "ns/op", "allocs/op", "packets/s", "Mb/s", "delivered")
	for _, row := range r.Rows {
		delivered := "-"
		if row.Delivered > 0 {
			delivered = fmt.Sprintf("%d", row.Delivered)
		}
		fmt.Fprintf(&b, "  %-20s %10.0f %12.2f %12.0f %10.1f %10s\n",
			row.Name, row.NsPerOp, row.AllocsPerOp, row.PacketsPerSec, row.MbitPerSec, delivered)
	}
	fmt.Fprintf(&b, "  speedup (send-fastpath-batch / send-legacy): %.2fx packets/s\n", r.SpeedupPacketsPerSec)
	return b.String()
}
