package experiments

import (
	"fmt"
	"runtime"
	"strings"

	"marnet/internal/wire"
)

// WireBenchResult is the wire-datapath saturation study: the measured
// legs of the frame pipeline on real loopback sockets, plus the headline
// ratio the fast-path work is judged by. Marshalled as-is into
// BENCH_wire.json by `make bench`.
type WireBenchResult struct {
	Seed         int64                   `json:"seed"`
	GOMAXPROCS   int                     `json:"gomaxprocs"`
	Packets      int                     `json:"packets"`
	PayloadBytes int                     `json:"payload_bytes"`
	Rows         []wire.PipelineBenchRow `json:"rows"`
	// SpeedupPacketsPerSec is send-fastpath-batch over send-legacy — the
	// tentpole target is ≥4x on loopback saturation.
	SpeedupPacketsPerSec float64 `json:"speedup_packets_per_sec"`

	// NumCPU records the host's core count: the context the scaling rows
	// must be read in.
	NumCPU int `json:"num_cpu"`
	// ShardRows is the core-scaling curve of the sharded recv datapath:
	// the closed-loop recv benchmark at 1/2/4/8 shards.
	ShardRows []wire.ShardBenchRow `json:"shard_rows"`
	// ShardSpeedup4 is 4-shard packets/s over 1-shard — the acceptance
	// ratio (target ≥ 2.5x).
	ShardSpeedup4 float64 `json:"shard_speedup_4x"`
	// ShardGate records whether the 2.5x ratio is enforced on this host:
	// "enforced", or "waived (<4 cpus)" when the host cannot physically
	// scale and the measured ratio fell short anyway.
	ShardGate string `json:"shard_gate"`
	Err       string `json:"err,omitempty"`
}

// shardGateRatio is the acceptance floor for ShardSpeedup4.
const shardGateRatio = 2.5

// ShardGatePass reports whether the scaling acceptance holds: the 4-shard
// ratio meets the floor, or the host lacks the cores to be held to it
// (fewer than 4 CPUs) — in which case the rows are still recorded but the
// ratio is waived, and ShardGate says so.
func (r WireBenchResult) ShardGatePass() bool {
	return r.ShardSpeedup4 >= shardGateRatio || r.NumCPU < 4
}

// WireBench saturates the wire datapath on loopback and reports each
// pipeline leg: the pre-fast-path send pipeline (per-packet allocations,
// per-packet nonce syscall, one sendto per frame), the pooled fast path
// unbatched and batched, and the two receive loops (recvfrom vs recvmmsg),
// every leg sealing/opening with AES-GCM. The packet count is fixed, not
// timer- or core-derived, so runs compare across machines; seed only tags
// the output (real sockets have no useful seed). Unlike the simulator
// studies, absolute numbers vary with the host — the ratios are the result.
func WireBench(seed int64) WireBenchResult {
	const (
		packets    = 30_000
		payloadLen = 1000
	)
	res := WireBenchResult{
		Seed:         seed,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		Packets:      packets,
		PayloadBytes: payloadLen,
	}
	rows, err := wire.RunPipelineBench(packets, payloadLen)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	res.Rows = rows
	var legacy, batch float64
	for _, r := range rows {
		switch r.Name {
		case "send-legacy":
			legacy = r.PacketsPerSec
		case "send-fastpath-batch":
			batch = r.PacketsPerSec
		}
	}
	if legacy > 0 {
		res.SpeedupPacketsPerSec = batch / legacy
	}
	shardRows, err := wire.RunShardScalingBench([]int{1, 2, 4, 8}, packets, payloadLen)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	res.ShardRows = shardRows
	var one, four float64
	for _, r := range shardRows {
		switch r.Shards {
		case 1:
			one = r.PacketsPerSec
		case 4:
			four = r.PacketsPerSec
		}
	}
	if one > 0 {
		res.ShardSpeedup4 = four / one
	}
	if res.ShardSpeedup4 >= shardGateRatio {
		res.ShardGate = "enforced"
	} else if res.NumCPU < 4 {
		res.ShardGate = fmt.Sprintf("waived (%d cpus)", res.NumCPU)
	} else {
		res.ShardGate = "enforced"
	}
	return res
}

// Format renders the study in the repo's table style.
func (r WireBenchResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Wire datapath saturation (loopback, AES-GCM sealed, %d packets of %d B, GOMAXPROCS=%d)\n",
		r.Packets, r.PayloadBytes, r.GOMAXPROCS)
	if r.Err != "" {
		fmt.Fprintf(&b, "  bench failed: %s\n", r.Err)
		return b.String()
	}
	fmt.Fprintf(&b, "  %-20s %10s %12s %12s %10s %10s\n",
		"leg", "ns/op", "allocs/op", "packets/s", "Mb/s", "delivered")
	for _, row := range r.Rows {
		delivered := "-"
		if row.Delivered > 0 {
			delivered = fmt.Sprintf("%d", row.Delivered)
		}
		fmt.Fprintf(&b, "  %-20s %10.0f %12.2f %12.0f %10.1f %10s\n",
			row.Name, row.NsPerOp, row.AllocsPerOp, row.PacketsPerSec, row.MbitPerSec, delivered)
	}
	fmt.Fprintf(&b, "  speedup (send-fastpath-batch / send-legacy): %.2fx packets/s\n", r.SpeedupPacketsPerSec)
	if len(r.ShardRows) > 0 {
		fmt.Fprintf(&b, "  core scaling, closed-loop sharded recv (NumCPU=%d):\n", r.NumCPU)
		fmt.Fprintf(&b, "  %-20s %10s %12s %12s %10s %10s\n",
			"shards", "ns/op", "allocs/op", "packets/s", "Mb/s", "path")
		for _, row := range r.ShardRows {
			path := "demux"
			if row.ReusePort {
				path = "reuseport"
			}
			fmt.Fprintf(&b, "  %-20d %10.0f %12.2f %12.0f %10.1f %10s\n",
				row.Shards, row.NsPerOp, row.AllocsPerOp, row.PacketsPerSec, row.MbitPerSec, path)
		}
		fmt.Fprintf(&b, "  shard speedup (4-shard / 1-shard): %.2fx packets/s [gate %s]\n",
			r.ShardSpeedup4, r.ShardGate)
	}
	return b.String()
}
