package experiments

import (
	"fmt"
	"strings"
	"time"

	"marnet/internal/core"
	"marnet/internal/mar"
	"marnet/internal/phy"
	"marnet/internal/simnet"
	"marnet/internal/tcp"
)

// SectionIVDResult quantifies the paper's Section IV-D argument in two
// parts. First, MAR offloading reverses the traffic paradigm: the uplink
// carries frames and sensor data while the downlink only carries results
// and acknowledgments, so the app's upload:download byte ratio is far above
// one — on links provisioned the other way around. Second, the Figure 3
// collapse is not an artifact of an antique baseline: a CUBIC upload
// starves the download just like a Reno one (the problem is the oversized
// FIFO plus loss-based probing, not the specific window curve).
type SectionIVDResult struct {
	// MAR traffic measured over an ARTP session.
	MARUpBytes, MARDownBytes int64
	MARUpDownRatio           float64
	// The provisioned asymmetry of the access links the paper surveys
	// (down/up, so >1 means download-favoring).
	LinkAsymmetry map[string]float64
	// Download goodput with one competing upload, per upload algorithm.
	DownloadAloneBps float64
	DownloadVsReno   float64
	DownloadVsCubic  float64
}

// SectionIVD runs both measurements.
func SectionIVD(seed int64) SectionIVDResult {
	res := SectionIVDResult{LinkAsymmetry: map[string]float64{}}
	for _, p := range []phy.Profile{phy.LTE, phy.HSPAPlus} {
		res.LinkAsymmetry[p.Name] = p.Asymmetry()
	}
	// ADSL-class wired access from the Figure 3 scenario.
	res.LinkAsymmetry["ADSL (8/1)"] = 8

	res.MARUpBytes, res.MARDownBytes = marByteBalance(seed)
	if res.MARDownBytes > 0 {
		res.MARUpDownRatio = float64(res.MARUpBytes) / float64(res.MARDownBytes)
	}

	res.DownloadAloneBps, res.DownloadVsReno = downloadUnderUpload(seed, tcp.Reno)
	_, res.DownloadVsCubic = downloadUnderUpload(seed, tcp.Cubic)
	return res
}

// marByteBalance runs a 10 s offloaded MAR session and counts wire bytes
// in each direction.
func marByteBalance(seed int64) (up, down int64) {
	sim := simnet.New(seed)
	clientMux, serverMux := simnet.NewDemux(), simnet.NewDemux()
	upLink := simnet.NewLink(sim, 10e6, 15*time.Millisecond, serverMux)
	downLink := simnet.NewLink(sim, 10e6, 15*time.Millisecond, clientMux)
	snd := core.NewSender(sim, core.SenderConfig{
		Local: 1, Peer: 2, FlowID: 1,
		Paths:       core.NewMultipath(&core.Path{ID: 1, Out: upLink, Weight: 1}),
		StartBudget: 5e6,
	})
	rcv := core.NewReceiver(sim, core.ReceiverConfig{
		Local: 2, Peer: 1, FlowID: 1, DefaultOut: downLink,
	})
	clientMux.Register(1, snd)
	serverMux.Register(2, rcv)

	meta, err := mar.NewMetadataSource(sim, snd, mar.MetadataConfig{Bytes: 150, Interval: 20 * time.Millisecond})
	if err != nil {
		panic(err)
	}
	sensors, err := mar.NewSensorSource(sim, snd, mar.SensorConfig{SampleBytes: 250, SamplesPerS: 100})
	if err != nil {
		panic(err)
	}
	video, err := mar.NewVideoSource(sim, snd, mar.VideoConfig{FPS: 30, GOP: 10, Bitrate: 2.5e6})
	if err != nil {
		panic(err)
	}
	const horizon = 10 * time.Second
	meta.Start(horizon)
	sensors.Start(horizon)
	video.Start(horizon)
	// Server results: small pose/meta responses at frame rate riding the
	// downlink (modelled as plain packets; acks are counted automatically).
	for i := 0; i < 300; i++ {
		i := i
		sim.Schedule(time.Duration(i)*33*time.Millisecond, func() {
			downLink.Send(&simnet.Packet{
				ID: sim.NextPacketID(), Src: 2, Dst: 1, Flow: 2, Size: 400,
			})
		})
	}
	if err := sim.RunUntil(horizon + 2*time.Second); err != nil {
		panic(err)
	}
	snd.Stop()
	return upLink.Stats().SentBytes, downLink.Stats().SentBytes
}

// downloadUnderUpload reruns the Figure 3 bottleneck with a single upload
// of the given algorithm and returns (download alone, download with the
// upload) goodputs.
func downloadUnderUpload(seed int64, algo tcp.Algorithm) (alone, with float64) {
	sim := simnet.New(seed)
	clientMux, serverMux := simnet.NewDemux(), simnet.NewDemux()
	down := simnet.NewLink(sim, 8e6, 15*time.Millisecond, clientMux,
		simnet.WithQueue(simnet.NewDropTail(100)))
	up := simnet.NewLink(sim, 1e6, 15*time.Millisecond, serverMux,
		simnet.WithQueue(simnet.NewDropTail(1000)))
	dl := tcp.NewFlow(sim, tcp.FlowConfig{
		SenderAddr: 10, ReceiverAddr: 1, FlowID: 1,
		Forward: down, Reverse: up,
		SenderDemux: serverMux, ReceiverDemux: clientMux,
		GoodputBin: time.Second,
	})
	dl.Start()
	ul := tcp.NewFlow(sim, tcp.FlowConfig{
		SenderAddr: 2, ReceiverAddr: 11, FlowID: 2,
		Forward: up, Reverse: down,
		SenderDemux: clientMux, ReceiverDemux: serverMux,
		Algo: algo,
	})
	sim.ScheduleAt(20*time.Second, ul.Start)
	if err := sim.RunUntil(40 * time.Second); err != nil {
		panic(err)
	}
	g := dl.Receiver.Goodput.Series("dl")
	return g.Window(5*time.Second, 20*time.Second), g.Window(25*time.Second, 40*time.Second)
}

// Format renders the asymmetry study.
func (r SectionIVDResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section IV-D — MAR reverses the asymmetric traffic paradigm\n")
	fmt.Fprintf(&b, "MAR session wire bytes: up %.2f MB, down %.2f MB -> up:down = %.1f:1\n",
		float64(r.MARUpBytes)/1e6, float64(r.MARDownBytes)/1e6, r.MARUpDownRatio)
	fmt.Fprintf(&b, "while access links are provisioned the other way (down:up):\n")
	for name, asym := range r.LinkAsymmetry {
		fmt.Fprintf(&b, "  %-12s %.2f:1\n", name, asym)
	}
	fmt.Fprintf(&b, "download goodput on the shared ADSL link:\n")
	fmt.Fprintf(&b, "  alone          %8.2f Mb/s\n", r.DownloadAloneBps/1e6)
	fmt.Fprintf(&b, "  vs Reno upload %8.2f Mb/s\n", r.DownloadVsReno/1e6)
	fmt.Fprintf(&b, "  vs CUBIC upload%8.2f Mb/s\n", r.DownloadVsCubic/1e6)
	fmt.Fprintf(&b, "the collapse is algorithm-independent: it is the oversized uplink FIFO.\n")
	return b.String()
}
