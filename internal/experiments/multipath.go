package experiments

import (
	"fmt"
	"strings"
	"time"

	"marnet/internal/marsim"
)

// MultipathRow is one attachment mode's outcome on the burst+blackhole
// scenario.
type MultipathRow struct {
	Mode           string  `json:"mode"`
	Calls          int64   `json:"calls"`
	OKs            int64   `json:"oks"`
	OKRate         float64 `json:"ok_rate"`
	Reconnects     int64   `json:"reconnects"`
	CutoverMs      float64 `json:"cutover_ms"`
	MaxOKGapMs     float64 `json:"max_ok_gap_ms"`
	FailoverFrames int64   `json:"failover_frames"`
	Repaired       int64   `json:"fec_repaired"`
	Unrepaired     int64   `json:"fec_unrepaired"`
	RepairRate     float64 `json:"fec_repair_rate"`
}

// MultipathBenchResult is the multipath robustness study: the legacy
// single-path client, probing failover, and full multipath-with-FEC run
// the identical burst-loss + blackhole script head-to-head, plus the
// path-flap endurance variant and a same-seed determinism re-run.
// Marshalled as-is into BENCH_multipath.json by `make bench`.
type MultipathBenchResult struct {
	Seed int64          `json:"seed"`
	Rows []MultipathRow `json:"rows"`

	// Acceptance flags the CI bench gate checks.
	ZeroResets             bool    `json:"zero_resets"`              // both multipath modes survive the blackhole without a session reset
	CutoverWithinKeepalive bool    `json:"cutover_within_keepalive"` // wifi declared dead within one keepalive interval
	RepairRate             float64 `json:"repair_rate"`              // full mode, both directions
	RepairsWithoutRetx     bool    `json:"repairs_without_retx"`     // >= 90% of burst holes repaired from cross-path parity
	FullBeatsSingle        bool    `json:"full_beats_single"`        // strictly more completed calls and a shorter outage
	FlapZeroResets         bool    `json:"flap_zero_resets"`         // three blackhole pulses, still no reset
	Deterministic          bool    `json:"deterministic"`            // same seed reproduces the trace bit-for-bit

	TraceHash uint64 `json:"trace_hash"`
	Err       string `json:"err,omitempty"`
}

func multipathRow(r *marsim.MultipathResult) MultipathRow {
	repaired := r.RepairedUp + r.RepairedDown
	unrepaired := r.UnrepairedUp + r.UnrepairedDown
	return MultipathRow{
		Mode: r.Mode, Calls: r.Calls, OKs: r.OKs, OKRate: r.OKRate(),
		Reconnects:     r.Reconnects,
		CutoverMs:      float64(r.CutoverGap) / float64(time.Millisecond),
		MaxOKGapMs:     float64(r.MaxOKGap) / float64(time.Millisecond),
		FailoverFrames: r.FailoverFrames,
		Repaired:       repaired, Unrepaired: unrepaired,
		RepairRate: r.RepairRate,
	}
}

// Multipath runs the multipath robustness study. Everything runs in the
// deterministic simulator, so the result depends only on the seed.
func Multipath(seed int64) MultipathBenchResult {
	res := MultipathBenchResult{Seed: seed}

	results := map[marsim.MultipathMode]*marsim.MultipathResult{}
	for _, mode := range []marsim.MultipathMode{marsim.MPSingle, marsim.MPFailover, marsim.MPFull} {
		r, err := marsim.RunMultipath(seed, mode)
		if err != nil {
			res.Err = fmt.Sprintf("blackhole/%s: %v", mode, err)
			return res
		}
		results[mode] = r
		res.Rows = append(res.Rows, multipathRow(r))
	}
	single, failover, full := results[marsim.MPSingle], results[marsim.MPFailover], results[marsim.MPFull]

	res.ZeroResets = failover.Reconnects == 0 && full.Reconnects == 0
	res.CutoverWithinKeepalive = full.CutoverGap > 0 && full.CutoverGap <= 250*time.Millisecond &&
		failover.CutoverGap > 0 && failover.CutoverGap <= 250*time.Millisecond
	res.RepairRate = full.RepairRate
	res.RepairsWithoutRetx = full.RepairedUp+full.RepairedDown >= 5 && full.RepairRate >= 0.9
	res.FullBeatsSingle = full.OKs > single.OKs && full.MaxOKGap < single.MaxOKGap
	res.TraceHash = full.TraceHash

	flap, err := marsim.RunMultipathFlap(seed, marsim.MPFull)
	if err != nil {
		res.Err = fmt.Sprintf("flap: %v", err)
		return res
	}
	res.FlapZeroResets = flap.Reconnects == 0 && flap.Fails == 0

	rerun, err := marsim.RunMultipath(seed, marsim.MPFull)
	if err != nil {
		res.Err = fmt.Sprintf("blackhole rerun: %v", err)
		return res
	}
	res.Deterministic = rerun.TraceHash == full.TraceHash
	return res
}

// Format renders the study in the repo's table style.
func (r MultipathBenchResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Multipath robustness, burst window + mid-stream blackhole (6.5 s, 20 FPS, seed=%d)\n", r.Seed)
	if r.Err != "" {
		fmt.Fprintf(&b, "  study failed: %s\n", r.Err)
		return b.String()
	}
	fmt.Fprintf(&b, "  %-14s %10s %7s %7s %9s %9s %9s %8s\n",
		"mode", "oks", "ok%", "resets", "cutover", "outage", "failover", "repair%")
	for _, row := range r.Rows {
		repair := "-"
		if row.Repaired+row.Unrepaired > 0 {
			repair = fmt.Sprintf("%.1f%%", 100*row.RepairRate)
		}
		cut := "-"
		if row.CutoverMs > 0 {
			cut = fmt.Sprintf("%.0fms", row.CutoverMs)
		}
		fmt.Fprintf(&b, "  %-14s %4d/%-5d %6.1f%% %7d %9s %8.0fms %9d %8s\n",
			row.Mode, row.OKs, row.Calls, 100*row.OKRate, row.Reconnects,
			cut, row.MaxOKGapMs, row.FailoverFrames, repair)
	}
	fmt.Fprintf(&b, "  zero resets: %v   cutover within keepalive: %v   FEC repairs without retx: %v (rate %.3f)\n",
		r.ZeroResets, r.CutoverWithinKeepalive, r.RepairsWithoutRetx, r.RepairRate)
	fmt.Fprintf(&b, "  full beats single-path: %v   flap endurance clean: %v   deterministic: %v (hash %#x)\n",
		r.FullBeatsSingle, r.FlapZeroResets, r.Deterministic, r.TraceHash)
	return b.String()
}
