package experiments

import (
	"fmt"
	"strings"
	"time"

	"marnet/internal/core"
	"marnet/internal/mar"
	"marnet/internal/offload"
	"marnet/internal/phy"
	"marnet/internal/simnet"
	"marnet/internal/tcp"
	"marnet/internal/trace"
)

// Figure2Result reproduces the 802.11 performance anomaly.
type Figure2Result struct {
	// Simulated per-station goodput in bits/s.
	BothFastA, BothFastB float64 // A and B both in the 54 Mb/s zone
	MixedA, MixedB       float64 // B moved to the 18 Mb/s zone
	// Analytic saturation values for comparison.
	AnalyticBothFast float64
	AnalyticMixed    float64
}

// Figure2 saturates two stations on a shared DCF medium and reports their
// goodput before and after station B falls back from 54 to 18 Mb/s.
func Figure2(seed int64) Figure2Result {
	run := func(rateB float64) (a, b float64) {
		sim := simnet.New(seed)
		ap := &simnet.Sink{}
		m := phy.NewMedium(sim, phy.DefaultFrameOverhead)
		stA := m.AddStation(54e6, ap, 0)
		stB := m.AddStation(rateB, ap, 0)
		const frame = 1500
		for i := 0; i < 4000; i++ {
			stA.Send(&simnet.Packet{Size: frame})
			stB.Send(&simnet.Packet{Size: frame})
		}
		if err := sim.RunUntil(time.Second); err != nil {
			panic(err)
		}
		return float64(stA.SentBytes) * 8, float64(stB.SentBytes) * 8
	}
	var r Figure2Result
	r.BothFastA, r.BothFastB = run(54e6)
	r.MixedA, r.MixedB = run(18e6)
	r.AnalyticBothFast = phy.AnomalyThroughput(1500, phy.DefaultFrameOverhead, []float64{54e6, 54e6})[0]
	r.AnalyticMixed = phy.AnomalyThroughput(1500, phy.DefaultFrameOverhead, []float64{54e6, 18e6})[0]
	return r
}

// Format renders the anomaly comparison.
func (r Figure2Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2 — 802.11 performance anomaly (station goodput)\n")
	fmt.Fprintf(&b, "%-28s %12s %12s %14s\n", "Scenario", "User A", "User B", "analytic/stn")
	fmt.Fprintf(&b, "%-28s %12s %12s %14s\n", "A,B both @54 Mb/s",
		trace.Mbps(r.BothFastA), trace.Mbps(r.BothFastB), trace.Mbps(r.AnalyticBothFast))
	fmt.Fprintf(&b, "%-28s %12s %12s %14s\n", "B moves to 18 Mb/s zone",
		trace.Mbps(r.MixedA), trace.Mbps(r.MixedB), trace.Mbps(r.AnalyticMixed))
	fmt.Fprintf(&b, "A loses %.0f%% of its goodput because of B's rate fallback.\n",
		100*(1-r.MixedA/r.BothFastA))
	return b.String()
}

// Figure3Result reproduces the Heusse et al. asymmetric-link dynamics.
type Figure3Result struct {
	// DownloadGoodput is the download's goodput series (1 s bins) over the
	// whole run; uploads start at UploadStart times.
	DownloadGoodput *trace.Series
	UploadStarts    []time.Duration
	// Window means (bits/s) for the phases: download alone, with one
	// upload, with two uploads.
	Alone, With1, With2 float64
}

// Figure3 runs a TCP download over an ADSL-like 8 Mb/s / 1 Mb/s link whose
// uplink buffer is oversized (1000 packets, the paper's Section VI-H
// figure), then starts one and then two TCP uploads. Download ACKs share
// the uplink queue with upload data, reproducing Figure 3's collapse.
func Figure3(seed int64) Figure3Result {
	sim := simnet.New(seed)
	clientMux, serverMux := simnet.NewDemux(), simnet.NewDemux()
	// Asymmetric access link: generous downlink, thin uplink with an
	// oversized buffer.
	down := simnet.NewLink(sim, 8e6, 15*time.Millisecond, clientMux,
		simnet.WithQueue(simnet.NewDropTail(100)))
	up := simnet.NewLink(sim, 1e6, 15*time.Millisecond, serverMux,
		simnet.WithQueue(simnet.NewDropTail(1000)))

	// Download: server (addr 10) -> client (addr 1); ACKs traverse `up`.
	dl := tcp.NewFlow(sim, tcp.FlowConfig{
		SenderAddr: 10, ReceiverAddr: 1, FlowID: 1,
		Forward: down, Reverse: up,
		SenderDemux: serverMux, ReceiverDemux: clientMux,
		GoodputBin: time.Second,
	})
	dl.Start()

	// Uploads: client (addr 2,3) -> server (addr 11,12); data shares `up`.
	starts := []time.Duration{20 * time.Second, 40 * time.Second}
	for i, at := range starts {
		i := i
		ul := tcp.NewFlow(sim, tcp.FlowConfig{
			SenderAddr: simnet.Addr(2 + i), ReceiverAddr: simnet.Addr(11 + i), FlowID: uint64(2 + i),
			Forward: up, Reverse: down,
			SenderDemux: clientMux, ReceiverDemux: serverMux,
		})
		sim.ScheduleAt(at, ul.Start)
	}
	if err := sim.RunUntil(60 * time.Second); err != nil {
		panic(err)
	}
	series := dl.Receiver.Goodput.Series("download")
	return Figure3Result{
		DownloadGoodput: series,
		UploadStarts:    starts,
		Alone:           series.Window(5*time.Second, 20*time.Second),
		With1:           series.Window(25*time.Second, 40*time.Second),
		With2:           series.Window(45*time.Second, 60*time.Second),
	}
}

// Format renders the three phases.
func (r Figure3Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3 — impact of uploads on a TCP download (8 Mb/s down / 1 Mb/s up, 1000-pkt uplink buffer)\n")
	fmt.Fprintf(&b, "%-28s %14s\n", "Phase", "download goodput")
	fmt.Fprintf(&b, "%-28s %14s\n", "download alone", trace.Mbps(r.Alone))
	fmt.Fprintf(&b, "%-28s %14s\n", "+1 concurrent upload", trace.Mbps(r.With1))
	fmt.Fprintf(&b, "%-28s %14s\n", "+2 concurrent uploads", trace.Mbps(r.With2))
	fmt.Fprintf(&b, "collapse factor with uploads: %.0fx\n", r.Alone/maxf(r.With1, 1))
	fmt.Fprintf(&b, "\ndownload goodput (b/s) — uploads start at %v and %v:\n",
		r.UploadStarts[0], r.UploadStarts[1])
	b.WriteString(trace.ASCIIPlot(72, 10, r.DownloadGoodput))
	return b.String()
}

// Figure4Result contrasts TCP's congestion window with ARTP's graceful
// degradation across two congestion episodes.
type Figure4Result struct {
	// TCPCwnd is the TCP sender's cwnd (segments) over time.
	TCPCwnd *trace.Series
	// Budget is ARTP's controller budget over time.
	Budget *trace.Series
	// PerStream delivered-goodput series (bits/s, 500 ms bins), keyed by
	// the Figure 4 traffic names.
	PerStream map[string]*trace.Series
	// Squeezes are the times the path rate was cut.
	Squeezes []time.Duration
	// Phase summaries: per-stream mean delivered rate in each phase.
	Phase func(name string, phase int) float64 `json:"-"`
	// Delivered / generated counts for the critical stream.
	MetaGenerated, MetaDelivered int64
}

// Figure4 drives the paper's example flow — connection metadata, sensor
// data, video reference frames, video interframes — through two successive
// squeezes of the uplink, alongside a TCP flow on an identical but
// independent link experiencing the same squeezes.
func Figure4(seed int64) Figure4Result {
	sim := simnet.New(seed)

	// ARTP session over link A.
	clientMux, serverMux := simnet.NewDemux(), simnet.NewDemux()
	upA := simnet.NewLink(sim, 4e6, 15*time.Millisecond, serverMux)
	downA := simnet.NewLink(sim, 4e6, 15*time.Millisecond, clientMux)
	path := &core.Path{ID: 1, Out: upA, Weight: 1}
	snd := core.NewSender(sim, core.SenderConfig{
		Local: 1, Peer: 2, FlowID: 1,
		Paths: core.NewMultipath(path), StartBudget: 3.5e6,
	})
	snd.Controller().Trace = trace.NewSeries("budget")
	// Keep the floor above the critical traffic's needs: graceful
	// degradation must always be able to fund the highest priority class.
	snd.Controller().MinBudget = 0.12e6
	rcv := core.NewReceiver(sim, core.ReceiverConfig{
		Local: 2, Peer: 1, FlowID: 1, DefaultOut: downA,
	})
	clientMux.Register(1, snd)
	serverMux.Register(2, rcv)

	meta, err := mar.NewMetadataSource(sim, snd, mar.MetadataConfig{Bytes: 150, Interval: 20 * time.Millisecond})
	if err != nil {
		panic(err)
	}
	sensors, err := mar.NewSensorSource(sim, snd, mar.SensorConfig{SampleBytes: 250, SamplesPerS: 200})
	if err != nil {
		panic(err)
	}
	video, err := mar.NewVideoSource(sim, snd, mar.VideoConfig{
		FPS: 30, GOP: 10, Bitrate: 2.4e6, Deadline: 250 * time.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	const horizon = 45 * time.Second
	meta.Start(horizon)
	sensors.Start(horizon)
	video.Start(horizon)

	// Attach goodput samplers at the receiver.
	names := map[string]int{
		"metadata":     meta.Strm.ID,
		"sensors":      sensors.Strm.ID,
		"ref-frames":   video.Ref.ID,
		"inter-frames": video.Inter.ID,
	}
	for _, id := range names {
		rcv.Stream(id).GoodputRate = trace.NewThroughput(500 * time.Millisecond)
	}

	// TCP flow over an identical, independent link B with the same squeeze
	// schedule (the cwnd comparison curve).
	tcpClientMux, tcpServerMux := simnet.NewDemux(), simnet.NewDemux()
	// A sanely sized buffer so Reno actually sees losses and saws.
	upB := simnet.NewLink(sim, 4e6, 15*time.Millisecond, tcpServerMux,
		simnet.WithQueue(simnet.NewDropTail(50)))
	downB := simnet.NewLink(sim, 4e6, 15*time.Millisecond, tcpClientMux)
	fl := tcp.NewFlow(sim, tcp.FlowConfig{
		SenderAddr: 1, ReceiverAddr: 2, FlowID: 9,
		Forward: upB, Reverse: downB,
		SenderDemux: tcpClientMux, ReceiverDemux: tcpServerMux,
		TraceCwnd: true,
	})
	fl.Start()

	squeezes := []time.Duration{15 * time.Second, 30 * time.Second}
	sim.ScheduleAt(squeezes[0], func() { upA.SetRate(1.6e6); upB.SetRate(1.6e6) })
	sim.ScheduleAt(squeezes[1], func() { upA.SetRate(0.45e6); upB.SetRate(0.45e6) })

	// Run past the horizon so queued traffic drains before we read the
	// delivery counters.
	if err := sim.RunUntil(horizon + 3*time.Second); err != nil {
		panic(err)
	}
	snd.Stop()

	perStream := make(map[string]*trace.Series, len(names))
	for name, id := range names {
		perStream[name] = rcv.Stream(id).GoodputRate.Series(name)
	}
	res := Figure4Result{
		TCPCwnd:       fl.Sender.CwndTrace,
		Budget:        snd.Controller().Trace,
		PerStream:     perStream,
		Squeezes:      squeezes,
		MetaGenerated: meta.Generated,
		MetaDelivered: rcv.Stream(meta.Strm.ID).Delivered,
	}
	res.Phase = func(name string, phase int) float64 {
		windows := [][2]time.Duration{
			{5 * time.Second, 15 * time.Second},
			{20 * time.Second, 30 * time.Second},
			{35 * time.Second, 45 * time.Second},
		}
		w := windows[phase]
		return perStream[name].Window(w[0], w[1])
	}
	return res
}

// Format renders the per-phase per-stream rates.
func (r Figure4Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4 — TCP congestion window vs ARTP graceful degradation\n")
	fmt.Fprintf(&b, "link: 4 Mb/s -> 1.6 Mb/s @%v -> 0.45 Mb/s @%v\n", r.Squeezes[0], r.Squeezes[1])
	fmt.Fprintf(&b, "%-14s %14s %14s %14s\n", "stream", "phase 1", "phase 2", "phase 3")
	for _, name := range []string{"metadata", "ref-frames", "sensors", "inter-frames"} {
		fmt.Fprintf(&b, "%-14s %14s %14s %14s\n", name,
			trace.Mbps(r.Phase(name, 0)), trace.Mbps(r.Phase(name, 1)), trace.Mbps(r.Phase(name, 2)))
	}
	fmt.Fprintf(&b, "metadata delivery: %d/%d (never shed)\n", r.MetaDelivered, r.MetaGenerated)
	fmt.Fprintf(&b, "\nTCP congestion window (segments) under the same squeezes:\n")
	b.WriteString(trace.ASCIIPlot(72, 8, trace.Downsample(r.TCPCwnd, 200)))
	fmt.Fprintf(&b, "\nARTP per-class delivered rate (b/s):\n")
	b.WriteString(trace.ASCIIPlot(72, 10,
		r.PerStream["inter-frames"], r.PerStream["ref-frames"],
		r.PerStream["sensors"], r.PerStream["metadata"]))
	return b.String()
}

// Figure5Row is one distributed-offloading topology result.
type Figure5Row struct {
	Scenario  string
	MeanLat   time.Duration
	P95Lat    time.Duration
	HitRate   float64 // fraction of frames within the 75 ms budget
	UplinkMBs float64 // MB shipped by the wearable
	// FrameJ is the wearable's per-frame energy (compute + radio) under
	// the default smartphone-class energy model.
	FrameJ float64
}

// Figure5Result compares the four topologies of Figure 5.
type Figure5Result struct {
	Rows []Figure5Row
}

// Figure5 evaluates the distributed-offloading approaches: a cloud-only
// baseline, the multi-server multipath layout (5a), D2D to a home
// smartphone over the home AP (5b), D2D over LTE-Direct (5c) and over
// WiFi-Direct (5d). The workload is the smart-glasses recognition pipeline
// (the glasses cannot even extract features in time on their own).
func Figure5(seed int64) Figure5Result {
	// The glasses cannot even extract features in time (2e7 ops/s), so two
	// offload shapes exist: full recognition shipped to a capable server
	// (cloud / edge), and — as the paper describes for D2D — only the
	// latency-critical feature extraction shipped to a nearby smartphone
	// ("even simple feature extraction can considerably slow down the
	// process ... other nearby smartphones could assist").
	fullRecognition := offload.Pipeline{
		Name:         "full-recognition",
		RemoteOps:    offload.ExtractOps + offload.MatchOps,
		UploadBytes:  offload.FrameBytes,
		ResultBytes:  offload.PoseBytes,
		TriggerEvery: 1,
	}
	d2dExtraction := offload.Pipeline{
		Name:         "d2d-extraction",
		RemoteOps:    offload.ExtractOps,
		UploadBytes:  offload.FrameBytes,
		ResultBytes:  offload.FeatureBytes,
		TriggerEvery: 1,
	}
	type scen struct {
		name      string
		serverOps float64
		pipeline  offload.Pipeline
		radio     string
		hops      []simnet.PathSpec
	}
	// Helper devices: smartphone 1e8, university edge server 1e9, cloud 2e10.
	scens := []scen{
		{
			name: "cloud only (WiFi)", serverOps: 2e10, pipeline: fullRecognition, radio: phy.WiFiLocal.Name,
			hops: []simnet.PathSpec{
				simnet.Hop(phy.WiFiLocal.Up, 3*time.Millisecond, simnet.WithJitter(2*time.Millisecond)),
				simnet.Hop(phy.Backbone.Up, 14*time.Millisecond, simnet.WithJitter(time.Millisecond)),
			},
		},
		{
			name: "5a multi-server multipath", serverOps: 1e9, pipeline: fullRecognition, radio: phy.WiFiLocal.Name,
			hops: []simnet.PathSpec{
				simnet.Hop(phy.WiFiLocal.Up, 3*time.Millisecond, simnet.WithJitter(time.Millisecond)),
				simnet.Hop(phy.Backbone.Up, 2*time.Millisecond, simnet.WithJitter(time.Millisecond)),
			},
		},
		{
			name: "5b D2D home WiFi", serverOps: 1e8, pipeline: d2dExtraction, radio: phy.WiFiLocal.Name,
			hops: []simnet.PathSpec{
				simnet.Hop(phy.WiFiLocal.Up, 2*time.Millisecond, simnet.WithJitter(time.Millisecond)),
			},
		},
		{
			name: "5c D2D LTE-Direct", serverOps: 1e8, pipeline: d2dExtraction, radio: phy.LTEDirect.Name,
			hops: []simnet.PathSpec{
				simnet.Hop(phy.LTEDirect.Up, phy.LTEDirect.OneWay, simnet.WithJitter(phy.LTEDirect.Jitter)),
			},
		},
		{
			name: "5d D2D WiFi-Direct", serverOps: 1e8, pipeline: d2dExtraction, radio: phy.WiFiDirect.Name,
			hops: []simnet.PathSpec{
				simnet.Hop(phy.WiFiDirect.Up, phy.WiFiDirect.OneWay, simnet.WithJitter(phy.WiFiDirect.Jitter)),
			},
		},
	}
	var out Figure5Result
	for i, sc := range scens {
		sim := simnet.New(seed + int64(i))
		clientMux, serverMux := simnet.NewDemux(), simnet.NewDemux()
		up := simnet.NewPath(sim, serverMux, sc.hops...)
		down := simnet.NewPath(sim, clientMux, sc.hops...)
		srv := offload.NewServer(sim, 100, sc.serverOps, func(simnet.Addr) simnet.Handler { return down })
		serverMux.Register(100, srv)
		cl, err := offload.NewClient(sim, sc.pipeline, offload.ClientConfig{
			Local: 1, Server: 100, FlowID: 1, Uplink: up,
			DeviceOps: 2e7, FPS: 30, Deadline: mar.MaxTolerableRTT,
		})
		if err != nil {
			panic(err)
		}
		clientMux.Register(1, cl)
		cl.Run(10 * time.Second)
		if err := sim.RunUntil(15 * time.Second); err != nil {
			panic(err)
		}
		total := cl.DeadlineHits + cl.DeadlineMiss
		hit := 0.0
		if total > 0 {
			hit = float64(cl.DeadlineHits) / float64(total)
		}
		energy, err := mar.DefaultEnergyModel().PipelineEnergy(
			sc.radio, sc.pipeline.LocalOps, sc.pipeline.UploadBytes, sc.pipeline.ResultBytes)
		if err != nil {
			panic(err)
		}
		out.Rows = append(out.Rows, Figure5Row{
			Scenario:  sc.name,
			MeanLat:   cl.Latency.Mean().Round(100 * time.Microsecond),
			P95Lat:    cl.Latency.Percentile(95).Round(100 * time.Microsecond),
			HitRate:   hit,
			UplinkMBs: float64(cl.UpBytes) / 1e6,
			FrameJ:    energy.Total(),
		})
	}
	return out
}

// Format renders the comparison.
func (r Figure5Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5 — distributed offloading topologies (smart glasses, 30 FPS recognition)\n")
	fmt.Fprintf(&b, "%-28s %12s %12s %10s %10s %10s\n", "Scenario", "mean lat", "p95 lat", "<=75ms", "uplink MB", "mJ/frame")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-28s %12v %12v %9.1f%% %10.1f %10.1f\n",
			row.Scenario, row.MeanLat, row.P95Lat, row.HitRate*100, row.UplinkMBs, row.FrameJ*1e3)
	}
	return b.String()
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
