package experiments

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"time"

	"marnet/internal/marsim"
	"marnet/internal/obs"
	"marnet/internal/wire"
)

// ObsLoadResult pins the cost of the deep-diagnosis layer: the flight
// recorder's per-event cost (enabled, disabled, and riding the wire send
// fast path), the SLO engine's per-observation cost, the snapshot codec
// round trip, and the determinism of the recorded GE-burst scenario.
// Marshalled as-is into BENCH_obs.json by `make bench`.
type ObsLoadResult struct {
	Seed       int64 `json:"seed"`
	GOMAXPROCS int   `json:"gomaxprocs"`

	// Microbenchmarks: tight-loop per-op cost of the hooks themselves.
	RecordNsPerOp        float64 `json:"record_ns_per_op"`
	RecordAllocsPerEvent float64 `json:"record_allocs_per_event"`
	DisabledNsPerOp      float64 `json:"disabled_ns_per_op"`
	SLONsPerObserve      float64 `json:"slo_ns_per_observe"`
	SLOAllocsPerObserve  float64 `json:"slo_allocs_per_observe"`

	// Wire fast-path tax: send-fastpath with a recorder hooked per frame
	// versus without, min-of-alternating-trials.
	Wire wire.RecorderOverheadResult `json:"wire"`

	// CodecRoundTrip: a frozen snapshot survives Encode→Decode unchanged.
	CodecRoundTrip bool `json:"codec_round_trip"`

	// Flight-scenario acceptance, recorded twice with one seed.
	FlightSnapshots int    `json:"flight_snapshots"`
	FlightStormSeen bool   `json:"flight_storm_seen"`
	FlightSLOFired  bool   `json:"flight_slo_fired"`
	Deterministic   bool   `json:"deterministic"`
	Err             string `json:"err,omitempty"`
}

// Acceptance bounds for the obsload study. The disabled-hook bound is
// generous against CI-runner noise: the real cost is one nil check, a
// fraction of a nanosecond.
const (
	obsMaxOverheadPct   = 2.0
	obsMaxDisabledNs    = 10.0
	obsMaxRecordAllocs  = 0.0
	obsRecordIters      = 1 << 16
	obsBenchPackets     = 4000
	obsBenchPayload     = 1000
	obsBenchTrials      = 16
	obsAllocsRunsRecord = 4096
)

// Pass reports whether every acceptance gate holds.
func (r ObsLoadResult) Pass() bool {
	return r.Err == "" &&
		r.RecordAllocsPerEvent <= obsMaxRecordAllocs &&
		r.DisabledNsPerOp < obsMaxDisabledNs &&
		r.Wire.OverheadPct < obsMaxOverheadPct &&
		r.CodecRoundTrip && r.Deterministic &&
		r.FlightSnapshots > 0 && r.FlightStormSeen && r.FlightSLOFired
}

// allocsPerRun measures process-wide mallocs per call of f over runs
// iterations, on one P so no concurrent allocator muddies the count (the
// same technique as testing.AllocsPerRun, without importing testing into
// a shipped binary).
func allocsPerRun(runs int, f func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	f() // warm: one-time lazy work does not count
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs-m0.Mallocs) / float64(runs)
}

// nsPerOp times a tight loop of f.
func nsPerOp(iters int, f func()) float64 {
	f() // warm
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		f()
	}
	return float64(time.Since(t0).Nanoseconds()) / float64(iters)
}

// ObsLoad measures the observability layer's own cost and verifies the
// recorded GE-burst scenario end to end. The microbenchmarks and the
// wire overhead run on the host (absolute numbers vary; the gates are
// ratios and zeros), the flight scenario runs on virtual time (its
// results are a function of the seed alone).
func ObsLoad(seed int64) ObsLoadResult {
	res := ObsLoadResult{Seed: seed, GOMAXPROCS: runtime.GOMAXPROCS(0)}

	// 1. Recorder hot path: RecordAt on a warmed ring, no clock read —
	// exactly the call the wire fast path makes per frame.
	rec := obs.NewFlightRecorder(obs.RecorderConfig{Session: "obsload"})
	at := time.Now()
	var seq uint32
	recordOnce := func() {
		seq++
		rec.RecordAt(at, obs.EvFrameSend, 0, 1, seq, 1242)
	}
	res.RecordNsPerOp = nsPerOp(obsRecordIters, recordOnce)
	res.RecordAllocsPerEvent = allocsPerRun(obsAllocsRunsRecord, recordOnce)

	// 2. Disabled hook: the nil-receiver path every uninstrumented
	// deployment pays.
	var off *obs.FlightRecorder
	res.DisabledNsPerOp = nsPerOp(obsRecordIters, func() {
		off.RecordAt(at, obs.EvFrameSend, 0, 1, 1, 1242)
	})

	// 3. SLO observation, hits and misses interleaved so the burn
	// evaluation path is exercised too.
	slo := obs.NewSLO(obs.SLOConfig{Name: "obsload"})
	var n int
	observeOnce := func() {
		n++
		slo.Observe(n%16 != 0)
	}
	res.SLONsPerObserve = nsPerOp(obsRecordIters, observeOnce)
	res.SLOAllocsPerObserve = allocsPerRun(obsAllocsRunsRecord, observeOnce)

	// 4. The wire fast-path tax.
	w, err := wire.RunRecorderOverheadBench(obsBenchPackets, obsBenchPayload, obsBenchTrials)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	res.Wire = w

	// 5. Codec round trip on a real frozen snapshot.
	snap := rec.Freeze("obsload")
	if snap != nil {
		enc := snap.Encode()
		dec, derr := obs.DecodeSnapshot(enc)
		res.CodecRoundTrip = derr == nil && dec != nil &&
			bytes.Equal(enc, dec.Encode())
	}

	// 6. The recorded scenario, twice: same seed must produce
	// byte-identical snapshots and trace.
	a, err := marsim.RunFlightGEBurst(seed)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	b, err := marsim.RunFlightGEBurst(seed)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	res.FlightSnapshots = a.Snapshots
	res.FlightStormSeen = a.StormSnapshot >= 0
	res.FlightSLOFired = a.SessionTriggers > 0 && a.GlobalTriggers > 0
	res.Deterministic = a.SnapshotHash == b.SnapshotHash && a.TraceHash == b.TraceHash
	return res
}

// Format renders the study in the repo's table style.
func (r ObsLoadResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Observability overhead (flight recorder + SLO engine, GOMAXPROCS=%d)\n", r.GOMAXPROCS)
	if r.Err != "" {
		fmt.Fprintf(&b, "  study failed: %s\n", r.Err)
		return b.String()
	}
	fmt.Fprintf(&b, "  %-34s %10s %12s\n", "hook", "ns/op", "allocs/op")
	fmt.Fprintf(&b, "  %-34s %10.1f %12.2f\n", "recorder RecordAt (enabled)", r.RecordNsPerOp, r.RecordAllocsPerEvent)
	fmt.Fprintf(&b, "  %-34s %10.2f %12s\n", "recorder RecordAt (nil recorder)", r.DisabledNsPerOp, "0.00")
	fmt.Fprintf(&b, "  %-34s %10.1f %12.2f\n", "SLO Observe", r.SLONsPerObserve, r.SLOAllocsPerObserve)
	fmt.Fprintf(&b, "  wire send fast path: base %.0f ns/op -> recorded %.0f ns/op (%.2f%% overhead, %.2f allocs/op)\n",
		r.Wire.BaseNsPerOp, r.Wire.RecordNsPerOp, r.Wire.OverheadPct, r.Wire.RecordAllocsPerOp)
	fmt.Fprintf(&b, "  snapshot codec round trip: %v\n", r.CodecRoundTrip)
	fmt.Fprintf(&b, "  flight scenario: snapshots=%d storm=%v slo=%v deterministic=%v\n",
		r.FlightSnapshots, r.FlightStormSeen, r.FlightSLOFired, r.Deterministic)
	fmt.Fprintf(&b, "  acceptance: %v (allocs/event<=%.0f, disabled<%.0f ns, wire overhead<%.0f%%)\n",
		r.Pass(), obsMaxRecordAllocs, obsMaxDisabledNs, obsMaxOverheadPct)
	return b.String()
}
