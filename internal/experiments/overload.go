package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"marnet/internal/core"
	"marnet/internal/rpc"
)

// OverloadTierRow is one priority class's outcome under the storm.
type OverloadTierRow struct {
	Prio      core.Priority
	Offered   int64
	Succeeded int64
	P99       time.Duration // latency of successful calls
}

// OverloadResult is the server-side overload-protection study: an open-loop
// storm at a multiple of the serving capacity, plus a mid-load drain with
// failover.
type OverloadResult struct {
	CapacityRPS float64
	OfferedRPS  float64
	Budget      time.Duration
	Rows        []OverloadTierRow

	Served       int64
	Shed         int64
	QueueFull    int64
	CannotFinish int64
	Expired      int64

	// Drain phase.
	DrainCalls     int64
	DrainFailed    int64
	DrainCompleted bool  // primary finished everything it admitted
	Failovers      int64 // calls the backup absorbed mid-drain
}

// Overload stresses the offload serving path the way Section VI's edge
// deployment would see it: four ARTP priority classes offering, together,
// four times the server's sustainable rate, with a propagated per-call
// deadline. The admission gate must keep the protected class near 100%
// while shedding concentrates in the lowest tiers and admitted calls stay
// inside the budget; a second phase drains the primary mid-load and checks
// that failover loses nothing. Unlike the simulator studies this one runs
// on real sockets, so exact counts vary run to run — the shape is the
// result.
func Overload(seed int64) OverloadResult {
	const (
		workers = 4
		service = 5 * time.Millisecond
		budget  = 150 * time.Millisecond
	)
	handler := func(method uint8, req []byte) []byte {
		time.Sleep(service)
		return req
	}
	res := OverloadResult{
		CapacityRPS: float64(workers) * float64(time.Second) / float64(service),
		Budget:      budget,
	}

	srv, err := rpc.NewServer("127.0.0.1:0", nil, handler, rpc.WithWorkers(workers))
	if err != nil {
		panic(err)
	}

	type tier struct {
		prio    core.Priority
		perTick int
		cl      *rpc.Client

		succeeded int64
		mu        sync.Mutex
		lat       []time.Duration
	}
	tiers := []*tier{
		{prio: core.PrioHighest, perTick: 2},
		{prio: core.PrioNoDiscard, perTick: 4},
		{prio: core.PrioNoDelay, perTick: 5},
		{prio: core.PrioLowest, perTick: 5},
	}
	for i, tr := range tiers {
		cl, err := rpc.Dial(srv.Addr(), rpc.ClientConfig{Priority: tr.prio, Seed: seed + int64(i)})
		if err != nil {
			panic(err)
		}
		tr.cl = cl
	}

	const ticks = 200 // 1 s of storm at 5 ms per tick
	perSec := 0
	for _, tr := range tiers {
		perSec += tr.perTick * 200
	}
	res.OfferedRPS = float64(perSec)

	var offered [4]int64
	var wg sync.WaitGroup
	ticker := time.NewTicker(5 * time.Millisecond)
	for t := 0; t < ticks; t++ {
		<-ticker.C
		for i, tr := range tiers {
			for k := 0; k < tr.perTick; k++ {
				offered[i]++
				wg.Add(1)
				go func(tr *tier) {
					defer wg.Done()
					t0 := time.Now()
					if _, err := tr.cl.Call(1, nil, budget); err == nil {
						atomic.AddInt64(&tr.succeeded, 1)
						tr.mu.Lock()
						tr.lat = append(tr.lat, time.Since(t0))
						tr.mu.Unlock()
					}
				}(tr)
			}
		}
	}
	ticker.Stop()
	wg.Wait()

	for i, tr := range tiers {
		row := OverloadTierRow{Prio: tr.prio, Offered: offered[i], Succeeded: tr.succeeded}
		if len(tr.lat) > 0 {
			sort.Slice(tr.lat, func(a, b int) bool { return tr.lat[a] < tr.lat[b] })
			row.P99 = tr.lat[len(tr.lat)*99/100]
		}
		res.Rows = append(res.Rows, row)
		tr.cl.Close()
	}
	st := srv.Stats()
	res.Served = st.Served
	res.Shed = st.Shed
	res.QueueFull = st.QueueFull
	res.CannotFinish = st.CannotFinish
	res.Expired = st.ExpiredOnArrival + st.ExpiredInQueue
	srv.Close()

	// Phase 2: drain the primary under moderate load; the failover client
	// must land every call somewhere.
	primary, err := rpc.NewServer("127.0.0.1:0", nil, handler, rpc.WithWorkers(workers))
	if err != nil {
		panic(err)
	}
	defer primary.Close()
	backup, err := rpc.NewServer("127.0.0.1:0", nil, handler, rpc.WithWorkers(workers))
	if err != nil {
		panic(err)
	}
	defer backup.Close()
	fc, err := rpc.DialFailover([]string{primary.Addr(), backup.Addr()}, rpc.ClientConfig{Seed: seed})
	if err != nil {
		panic(err)
	}
	defer fc.Close()

	const drainTicks = 150
	ticker = time.NewTicker(5 * time.Millisecond)
	for t := 0; t < drainTicks; t++ {
		<-ticker.C
		if t == drainTicks/3 {
			primary.SetDraining(true)
		}
		res.DrainCalls++
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := fc.Call(1, nil, time.Second); err != nil {
				atomic.AddInt64(&res.DrainFailed, 1)
			}
		}()
	}
	ticker.Stop()
	wg.Wait()
	res.DrainCompleted = primary.WaitDrain(3 * time.Second)
	if gst := primary.Gate().Stats(); gst.Completed != gst.Admitted {
		res.DrainCompleted = false
	}
	res.Failovers = fc.Stats().Failovers
	return res
}

// Format renders the overload study.
func (r OverloadResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Overload — admission control at %.1fx capacity (%.0f rps offered, %.0f rps sustainable, %v budget)\n",
		r.OfferedRPS/r.CapacityRPS, r.OfferedRPS, r.CapacityRPS, r.Budget)
	fmt.Fprintf(&b, "%-12s %9s %9s %10s %8s\n", "priority", "offered", "admitted", "admit %", "p99")
	for _, row := range r.Rows {
		p99 := "-"
		if row.P99 > 0 {
			p99 = row.P99.Round(time.Millisecond).String()
		}
		fmt.Fprintf(&b, "%-12s %9d %9d %9.1f%% %8s\n",
			row.Prio, row.Offered, row.Succeeded,
			100*float64(row.Succeeded)/float64(row.Offered), p99)
	}
	fmt.Fprintf(&b, "server: served=%d shed=%d queue-full=%d cannot-finish=%d expired=%d\n",
		r.Served, r.Shed, r.QueueFull, r.CannotFinish, r.Expired)
	drained := "completed all admitted work"
	if !r.DrainCompleted {
		drained = "LOST ADMITTED WORK"
	}
	fmt.Fprintf(&b, "drain: %d calls across a mid-load drain, %d failed; primary %s; %d calls failed over to the backup\n",
		r.DrainCalls, r.DrainFailed, drained, r.Failovers)
	return b.String()
}
