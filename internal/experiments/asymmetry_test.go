package experiments

import (
	"strings"
	"testing"
)

func TestSectionIVDShape(t *testing.T) {
	r := SectionIVD(31)
	// MAR traffic is strongly uplink-heavy.
	if r.MARUpDownRatio < 3 {
		t.Errorf("MAR up:down = %.2f, want >> 1", r.MARUpDownRatio)
	}
	// Links are provisioned the opposite way.
	for name, asym := range r.LinkAsymmetry {
		if asym < 1.5 {
			t.Errorf("%s asymmetry %.2f, expected download-favoring", name, asym)
		}
	}
	// Both upload algorithms collapse the download.
	if r.DownloadAloneBps < 6e6 {
		t.Errorf("download alone = %v", r.DownloadAloneBps)
	}
	if r.DownloadVsReno > r.DownloadAloneBps/2 {
		t.Errorf("Reno upload did not collapse download: %v", r.DownloadVsReno)
	}
	if r.DownloadVsCubic > r.DownloadAloneBps/2 {
		t.Errorf("CUBIC upload did not collapse download: %v", r.DownloadVsCubic)
	}
	out := r.Format()
	for _, want := range []string{"up:down", "CUBIC", "oversized uplink FIFO"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q", want)
		}
	}
}
