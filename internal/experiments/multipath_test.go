package experiments

import (
	"strings"
	"testing"
)

// TestMultipathAcceptance pins the PR's acceptance criterion exactly as
// the BENCH_multipath.json artifact records it: a mid-stream blackhole
// of the primary path costs the multipath modes zero session resets and
// an interactive cutover inside one keepalive interval, cross-path FEC
// repairs >= 90% of burst-lost frames without end-to-end
// retransmission, and the same seed reproduces the trace bit-for-bit.
func TestMultipathAcceptance(t *testing.T) {
	r := Multipath(42)
	if r.Err != "" {
		t.Fatalf("study failed: %s", r.Err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("got %d mode rows, want 3", len(r.Rows))
	}
	if !r.ZeroResets {
		t.Error("a multipath mode reset its session across the blackhole")
	}
	if !r.CutoverWithinKeepalive {
		t.Error("path-down cutover exceeded one keepalive interval")
	}
	if !r.RepairsWithoutRetx {
		t.Errorf("cross-path FEC repair gate failed (rate %.3f)", r.RepairRate)
	}
	if !r.FullBeatsSingle {
		t.Error("full multipath did not strictly beat the single-path baseline")
	}
	if !r.FlapZeroResets {
		t.Error("the path-flap endurance run reset the session or failed calls")
	}
	if !r.Deterministic {
		t.Error("same-seed rerun diverged")
	}
	if r.TraceHash == 0 {
		t.Error("trace hash is zero — scenario trace missing")
	}
	// The single-path baseline must show the problem the tentpole fixes.
	for _, row := range r.Rows {
		if row.Mode == "single-path" && row.Reconnects < 1 {
			t.Error("single-path baseline survived without a reset — the comparison is vacuous")
		}
	}
	out := r.Format()
	for _, want := range []string{"single-path", "failover", "multipath-fec", "deterministic: true"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q:\n%s", want, out)
		}
	}
}
