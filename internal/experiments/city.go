package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"marnet/internal/edge"
	"marnet/internal/marsim"
)

// CityRow is one serving mode's outcome on the same seeded city load.
type CityRow struct {
	Mode           string  `json:"mode"` // "placement" or "cloud"
	Sites          int     `json:"sites"`
	Offloads       int64   `json:"offloads"`
	Hits           int64   `json:"hits"`
	Misses         int64   `json:"misses"`
	Shed           int64   `json:"shed"`
	HoldRate       float64 `json:"hold_rate"`
	CrowdHoldRate  float64 `json:"crowd_hold_rate"`
	P50Ms          float64 `json:"p50_ms"`
	P95Ms          float64 `json:"p95_ms"`
	P99Ms          float64 `json:"p99_ms"`
	PeakActive     int     `json:"peak_active"`
	PeakCellActive int     `json:"peak_cell_active"`
}

// CityBenchResult is the fleet-scale provisioning study: a 100k-endpoint
// city with a diurnal load curve and a stadium flash crowd runs ten
// virtual minutes twice — once on the Section VI-F greedy placement
// solved from its own demand snapshot, once on the distant-cloud
// baseline — and the artifact records whether the deadlines actually
// held and how fast the fleet tier simulated. Marshalled as-is into
// BENCH_city.json by `make bench`.
type CityBenchResult struct {
	Seed           int64   `json:"seed"`
	Users          int     `json:"users"`
	CrowdUsers     int     `json:"crowd_users"`
	VirtualMinutes float64 `json:"virtual_minutes"`
	Cells          int     `json:"cells"`
	CandidateSites int     `json:"candidate_sites"`
	NetBudgetMs    float64 `json:"net_budget_ms"`

	// The solver half of the loop: greedy |C| versus the random-selection
	// baseline on the identical demand instance, and how long the solve
	// took at metro scale.
	PlacementSites int     `json:"placement_sites"`
	RandomSites    int     `json:"random_sites"`
	SolveMs        float64 `json:"solve_ms"`

	Rows []CityRow `json:"rows"` // placement replay, then cloud baseline

	// The replay half: fleet-tier throughput evidence.
	WallSeconds  float64 `json:"wall_seconds"` // placement replay only
	EventsFired  uint64  `json:"events_fired"`
	EventsPerSec float64 `json:"events_per_sec"`
	MaxPending   int     `json:"max_pending"`
	TraceHash    uint64  `json:"trace_hash"`

	// Acceptance flags the CI bench gate checks.
	HoldRate                float64 `json:"hold_rate"`             // placement replay, all offloads
	PlacementBeatsCloud     bool    `json:"placement_beats_cloud"` // strictly higher hold than the cloud baseline
	GreedyNoWorseThanRandom bool    `json:"greedy_no_worse_than_random"`
	QueueBounded            bool    `json:"queue_bounded"` // MaxPending ≤ population + slack (cancel-leak fix holding)
	// WallGate records whether the wall-time bound is enforced: "enforced"
	// at full scale (a 10-virtual-minute, 100k-user city must finish in
	// seconds of wall time), or "waived (scaled-down run)" for smoke runs.
	WallGate string `json:"wall_gate"`

	Err string `json:"err,omitempty"`
}

const (
	cityHoldFloor   = 0.95  // deadline-hold floor on the solver's placement
	cityWallCeiling = 120.0 // seconds of wall time for the full-scale run
	cityFullUsers   = 100_000
	cityFullMinutes = 10.0
)

// Pass reports whether the study met every enforced gate: the solver's
// placement holds ≥95% of deadlines under the full city load, beats the
// cloud baseline, the event queue stayed bounded by the live population,
// and — at full scale — the run finished within the wall-time ceiling.
func (r CityBenchResult) Pass() bool {
	if r.Err != "" {
		return false
	}
	if r.HoldRate < cityHoldFloor || !r.PlacementBeatsCloud || !r.QueueBounded {
		return false
	}
	if r.WallGate == "enforced" && r.WallSeconds > cityWallCeiling {
		return false
	}
	return true
}

// cityConfig builds the study's scenario at the requested scale: crowd
// size and timing scale with the population and horizon so a smoke run
// exercises the same shape the full run does.
func cityConfig(seed int64, users int, minutes float64) marsim.CityConfig {
	horizon := time.Duration(minutes * float64(time.Minute))
	return marsim.CityConfig{
		Seed:    seed,
		Users:   users,
		Horizon: horizon,
		Crowd: &marsim.FlashCrowd{
			Users:    users / 20, // 5% of the city converges on the stadium
			At:       time.Duration(0.3 * float64(horizon)),
			RampUp:   time.Duration(0.05 * float64(horizon)),
			Duration: time.Duration(0.4 * float64(horizon)),
			X:        40, Y: 40, // city centre of the default 80 km square
		},
	}
}

func cityRow(mode string, sites int, res marsim.CityResult) CityRow {
	return CityRow{
		Mode: mode, Sites: sites,
		Offloads: res.Offloads, Hits: res.Hits, Misses: res.Misses, Shed: res.Shed,
		HoldRate: res.HoldRate, CrowdHoldRate: res.CrowdHoldRate,
		P50Ms:          float64(res.P50) / float64(time.Millisecond),
		P95Ms:          float64(res.P95) / float64(time.Millisecond),
		P99Ms:          float64(res.P99) / float64(time.Millisecond),
		PeakActive:     res.PeakActive,
		PeakCellActive: res.PeakCellActive,
	}
}

// City runs the fleet-scale provisioning study at full scale: 100k
// residents, ten virtual minutes.
func City(seed int64) CityBenchResult { return CityAt(seed, cityFullUsers, cityFullMinutes) }

// CityAt runs the study at an explicit scale (CI smoke uses a small
// one). The wall-time gate is enforced only at full scale.
func CityAt(seed int64, users int, minutes float64) CityBenchResult {
	if users <= 0 {
		users = cityFullUsers
	}
	if minutes <= 0 {
		minutes = cityFullMinutes
	}
	cfg := cityConfig(seed, users, minutes)
	res := CityBenchResult{
		Seed: seed, Users: users, CrowdUsers: cfg.Crowd.Users,
		VirtualMinutes: minutes,
	}
	if users >= cityFullUsers && minutes >= cityFullMinutes {
		res.WallGate = "enforced"
	} else {
		res.WallGate = "waived (scaled-down run)"
	}

	// Demand → solve: export the city's snapshot as a placement instance,
	// solve min |C| greedily, and size the random baseline on the same
	// instance.
	c := marsim.NewCity(cfg)
	res.Cells = c.Cells()
	inst := c.DemandInstance()
	res.CandidateSites = len(inst.Sites)
	res.NetBudgetMs = float64(c.Config().NetBudget()) / float64(time.Millisecond)
	if !inst.Feasible() {
		res.Err = "demand instance infeasible: users beyond every candidate's budget"
		return res
	}
	t0 := time.Now()
	sel, err := edge.Greedy(inst)
	if err != nil {
		res.Err = fmt.Sprintf("greedy: %v", err)
		return res
	}
	res.SolveMs = float64(time.Since(t0)) / float64(time.Millisecond)
	res.PlacementSites = len(sel)
	rnd, err := edge.RandomBaseline(inst, rand.New(rand.NewSource(seed)))
	if err != nil {
		res.Err = fmt.Sprintf("random baseline: %v", err)
		return res
	}
	res.RandomSites = len(rnd)
	res.GreedyNoWorseThanRandom = res.PlacementSites <= res.RandomSites

	// Replay: the same seeded load against the chosen placement.
	if err := c.AssignPlacement(sel); err != nil {
		res.Err = fmt.Sprintf("assign: %v", err)
		return res
	}
	t0 = time.Now()
	placed, err := c.Run()
	if err != nil {
		res.Err = fmt.Sprintf("placement replay: %v", err)
		return res
	}
	res.WallSeconds = time.Since(t0).Seconds()
	res.EventsFired = placed.EventsFired
	if res.WallSeconds > 0 {
		res.EventsPerSec = float64(placed.EventsFired) / res.WallSeconds
	}
	res.MaxPending = placed.MaxPending
	res.TraceHash = placed.TraceHash
	res.HoldRate = placed.HoldRate
	res.QueueBounded = placed.MaxPending <= c.Population()+2
	res.Rows = append(res.Rows, cityRow("placement", len(sel), placed))

	// Baseline: identical city, identical seed, every offload hauled to
	// the distant datacenter.
	c2 := marsim.NewCity(cfg)
	cloud, err := c2.Run()
	if err != nil {
		res.Err = fmt.Sprintf("cloud baseline: %v", err)
		return res
	}
	res.Rows = append(res.Rows, cityRow("cloud", 0, cloud))
	res.PlacementBeatsCloud = placed.HoldRate > cloud.HoldRate
	return res
}

// Format renders the study in the repo's table style.
func (r CityBenchResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "City provisioning at fleet scale (%d users + %d crowd, %.0f virtual minutes, seed=%d)\n",
		r.Users, r.CrowdUsers, r.VirtualMinutes, r.Seed)
	if r.Err != "" {
		fmt.Fprintf(&b, "  study failed: %s\n", r.Err)
		return b.String()
	}
	fmt.Fprintf(&b, "  demand: %d cells, %d candidate sites, net budget %.1fms/direction\n",
		r.Cells, r.CandidateSites, r.NetBudgetMs)
	fmt.Fprintf(&b, "  solver: greedy |C|=%d in %.1fms  (random baseline |C|=%d)\n",
		r.PlacementSites, r.SolveMs, r.RandomSites)
	fmt.Fprintf(&b, "  %-10s %5s %11s %7s %8s %7s %7s %7s %7s %9s\n",
		"mode", "|C|", "offloads", "hold%", "crowd%", "shed", "p50", "p95", "p99", "peakcell")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-10s %5d %11d %6.2f%% %7.2f%% %7d %6.0fms %6.0fms %6.0fms %9d\n",
			row.Mode, row.Sites, row.Offloads, 100*row.HoldRate, 100*row.CrowdHoldRate,
			row.Shed, row.P50Ms, row.P95Ms, row.P99Ms, row.PeakCellActive)
	}
	fmt.Fprintf(&b, "  fleet tier: %d events in %.1fs wall (%.2fM events/s), max pending %d, trace %#x\n",
		r.EventsFired, r.WallSeconds, r.EventsPerSec/1e6, r.MaxPending, r.TraceHash)
	fmt.Fprintf(&b, "  hold >= %.0f%%: %v   beats cloud: %v   queue bounded: %v   wall gate: %s (%.1fs)\n",
		100*cityHoldFloor, r.HoldRate >= cityHoldFloor, r.PlacementBeatsCloud, r.QueueBounded,
		r.WallGate, r.WallSeconds)
	return b.String()
}
