package experiments

import (
	"strings"
	"testing"
)

func TestSectionIVCShape(t *testing.T) {
	r := SectionIVC(37)
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		// The paper's fairness property: independent ARTP controllers share
		// the cell almost perfectly evenly.
		if row.JainIndex < 0.99 {
			t.Errorf("%d users: Jain = %.3f, want ~1", row.Users, row.JainIndex)
		}
		// Nobody is starved.
		if row.PerUserMin < 0.5*row.PerUserMean {
			t.Errorf("%d users: min %.0f far below mean %.0f", row.Users, row.PerUserMin, row.PerUserMean)
		}
	}
	// Uncontended cells satisfy everyone.
	for _, row := range r.Rows[:2] {
		if row.SatisfiedPct < 1 {
			t.Errorf("%d users (uncontended): satisfied %.0f%%", row.Users, row.SatisfiedPct*100)
		}
	}
	// Saturated cells still achieve a solid share of fair capacity: the
	// delay-based controller deliberately trades some utilization for an
	// empty queue, but must stay above 60% of fair share.
	fair := r.CellBps / float64(r.Rows[2].Users)
	if r.Rows[2].PerUserMean < 0.6*fair {
		t.Errorf("10 users: mean %.0f below 60%% of fair %.0f", r.Rows[2].PerUserMean, fair)
	}
	// Per-user throughput decreases with load.
	if r.Rows[3].PerUserMean >= r.Rows[2].PerUserMean {
		t.Error("per-user rate should fall as the cell loads")
	}
	if !strings.Contains(r.Format(), "Jain") {
		t.Error("format missing Jain column")
	}
}
