package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"marnet/internal/core"
	"marnet/internal/simnet"
	"marnet/internal/trace"
)

// SectionIVCRow is one cell-load point.
type SectionIVCRow struct {
	Users        int
	PerUserMean  float64 // delivered bits/s per user (mean)
	PerUserMin   float64
	JainIndex    float64 // fairness across users
	SatisfiedPct float64 // fraction achieving >= 95% of fair share
}

// SectionIVCResult is the dense-cell study.
type SectionIVCResult struct {
	CellBps   float64
	DemandBps float64
	Rows      []SectionIVCRow
}

// SectionIVC loads a shared uplink cell with a growing number of ARTP
// users, each offering the same MAR demand. The 5G white paper the paper
// quotes wants 50 Mb/s for 95% of users in 95% of locations; the protocol-
// level question here is whether ARTP's per-flow delay-based controllers
// share a saturated cell fairly (the paper's property 2: "fair to other
// connections while exploiting the maximum available bandwidth"). Jain's
// index near 1 means the independent controllers converge to equal shares.
func SectionIVC(seed int64) SectionIVCResult {
	const cell = 40e6  // shared uplink capacity
	const demand = 8e6 // per-user offered MAR load
	res := SectionIVCResult{CellBps: cell, DemandBps: demand}
	for _, n := range []int{2, 5, 10, 20} {
		res.Rows = append(res.Rows, densityRun(seed, n, cell, demand))
	}
	return res
}

func densityRun(seed int64, nUsers int, cellBps, demandBps float64) SectionIVCRow {
	sim := simnet.New(seed + int64(nUsers))
	serverMux := simnet.NewDemux()
	cell := simnet.NewLink(sim, cellBps, 15*time.Millisecond, serverMux,
		simnet.WithQueue(simnet.NewDropTail(300)))

	type user struct {
		snd *core.Sender
		st  *core.Stream
		rcv *core.Receiver
	}
	users := make([]user, nUsers)
	for i := range users {
		clientMux := simnet.NewDemux()
		down := simnet.NewLink(sim, cellBps, 15*time.Millisecond, clientMux)
		local := simnet.Addr(100 + 2*i)
		peer := simnet.Addr(101 + 2*i)
		snd := core.NewSender(sim, core.SenderConfig{
			Local: local, Peer: peer, FlowID: uint64(i + 1),
			Paths:       core.NewMultipath(&core.Path{ID: 1, Out: cell, Weight: 1}),
			StartBudget: demandBps / 2,
		})
		rcv := core.NewReceiver(sim, core.ReceiverConfig{
			Local: peer, Peer: local, FlowID: uint64(i + 1), DefaultOut: down,
		})
		clientMux.Register(local, snd)
		serverMux.Register(peer, rcv)
		st, err := snd.AddStream(core.StreamConfig{
			Name: "mar", Class: core.ClassFullBestEffort, Priority: core.PrioNoDelay,
			Rate: demandBps,
		})
		if err != nil {
			panic(err)
		}
		rcv.Stream(st.ID).GoodputRate = trace.NewThroughput(time.Second)
		users[i] = user{snd: snd, st: st, rcv: rcv}
	}

	const horizon = 20 * time.Second
	pktBytes := 1200
	interval := time.Duration(float64(pktBytes*8) / demandBps * float64(time.Second))
	for i := range users {
		i := i
		var tick func()
		tick = func() {
			users[i].snd.Submit(users[i].st, pktBytes)
			if sim.Now()+interval <= horizon {
				sim.Schedule(interval, tick)
			}
		}
		// Stagger starts slightly so controllers do not move in lockstep.
		sim.Schedule(time.Duration(i)*7*time.Millisecond, tick)
	}
	if err := sim.RunUntil(horizon + time.Second); err != nil {
		panic(err)
	}

	// Per-user delivered rate over the steady second half of the run
	// (excluding controller ramp-up).
	rates := make([]float64, nUsers)
	var sum, sumSq, min float64
	min = math.Inf(1)
	for i := range users {
		users[i].snd.Stop()
		g := users[i].rcv.Stream(users[i].st.ID).GoodputRate
		rates[i] = g.Series("u").Window(horizon/2, horizon)
		sum += rates[i]
		sumSq += rates[i] * rates[i]
		if rates[i] < min {
			min = rates[i]
		}
	}
	fair := math.Min(demandBps, cellBps/float64(nUsers))
	satisfied := 0
	for _, r := range rates {
		if r >= 0.95*fair {
			satisfied++
		}
	}
	jain := 1.0
	if sumSq > 0 {
		jain = sum * sum / (float64(nUsers) * sumSq)
	}
	return SectionIVCRow{
		Users:        nUsers,
		PerUserMean:  sum / float64(nUsers),
		PerUserMin:   min,
		JainIndex:    jain,
		SatisfiedPct: float64(satisfied) / float64(nUsers),
	}
}

// Format renders the cell-density study.
func (r SectionIVCResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section IV-C — dense cell sharing (%.0f Mb/s uplink cell, %.0f Mb/s per-user demand)\n",
		r.CellBps/1e6, r.DemandBps/1e6)
	fmt.Fprintf(&b, "%-8s %14s %14s %8s %12s\n", "users", "mean/user", "min/user", "Jain", ">=95% fair")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8d %11.2f Mb %11.2f Mb %8.3f %11.0f%%\n",
			row.Users, row.PerUserMean/1e6, row.PerUserMin/1e6, row.JainIndex, row.SatisfiedPct*100)
	}
	return b.String()
}
