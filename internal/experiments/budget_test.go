package experiments

import (
	"strings"
	"testing"
	"time"

	"marnet/internal/obs"
)

func TestBudgetShape(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket experiment")
	}
	r := Budget(7)
	if r.Complete < r.Frames*3/4 {
		t.Fatalf("only %d/%d frames completed", r.Complete, r.Frames)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("got %d stage rows, want 6", len(r.Rows))
	}
	if r.MaxSumErr > 0.05 {
		t.Errorf("attribution error %.2f%% exceeds the 5%% acceptance bound", 100*r.MaxSumErr)
	}
	if r.Retried == 0 {
		t.Error("10% loss produced no retried/hedged frame")
	}
	var share float64
	byStage := map[string]BudgetStageRow{}
	for _, row := range r.Rows {
		share += row.Share
		byStage[row.Stage] = row
	}
	if share < 0.99 || share > 1.01 {
		t.Errorf("stage shares sum to %.3f, want ~1", share)
	}
	if byStage[obs.StageCompute].Mean < 2*time.Millisecond {
		t.Errorf("compute mean %v below the 3ms handler sleep", byStage[obs.StageCompute].Mean)
	}
	out := r.Format()
	for _, want := range []string{"motion-to-photon", "overhead", "attribution error"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
}
