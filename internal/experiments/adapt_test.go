package experiments

import (
	"strings"
	"testing"
)

// TestAdaptAcceptance pins the PR's acceptance criterion exactly as the
// BENCH_adapt.json artifact records it: on the congestion ramp the
// adaptive policy strictly beats every fixed tier on budget hits while
// shipping fewer bytes than fixed-full, and the same seed reproduces
// the decision trace bit-for-bit.
func TestAdaptAcceptance(t *testing.T) {
	r := Adapt(42)
	if r.Err != "" {
		t.Fatalf("study failed: %s", r.Err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("got %d policy rows, want 4", len(r.Rows))
	}
	if !r.AdaptiveBeatsAllTiers {
		t.Error("adaptive did not strictly beat every fixed tier on budget hits")
	}
	if !r.FewerBytesThanFull {
		t.Error("adaptive shipped at least as many bytes as fixed-full")
	}
	if !r.Deterministic {
		t.Error("same-seed rerun diverged")
	}
	if r.DecisionHash == 0 {
		t.Error("decision hash is zero — controller trace missing")
	}
	if r.HandoverRetxFlips != 2 {
		t.Errorf("handover ARQ<->FEC flips = %d, want 2", r.HandoverRetxFlips)
	}
	if r.HandoverHitsAdaptive <= r.HandoverHitsFull {
		t.Errorf("handover: adaptive hits %d <= fixed-full %d",
			r.HandoverHitsAdaptive, r.HandoverHitsFull)
	}
	if r.GESwitchesNaive < 4*(r.GESwitchesGuarded+1) {
		t.Errorf("hysteresis margin collapsed: guarded=%d naive=%d",
			r.GESwitchesGuarded, r.GESwitchesNaive)
	}
	if r.GEPeakWireLoss <= 0 {
		t.Error("GE scenario left no mark on the wire loss estimator")
	}
	out := r.Format()
	for _, want := range []string{"adaptive", "fixed-full", "fixed-features", "fixed-tracking", "deterministic: true"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q:\n%s", want, out)
		}
	}
}
