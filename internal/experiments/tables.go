// Package experiments regenerates every quantitative artifact of the paper
// (tables, figures, and in-text analyses). Each experiment is one function
// returning a result struct whose Format method prints the same rows or
// series the paper reports. cmd/marbench runs them all; the bench harness
// at the repository root wraps each in a testing.B benchmark.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"marnet/internal/device"
	"marnet/internal/mar"
	"marnet/internal/offload"
	"marnet/internal/phy"
	"marnet/internal/simnet"
)

// TableIResult reproduces Table I: the device ecosystem.
type TableIResult struct {
	Devices []device.Device
}

// TableI returns the device characterization.
func TableI() TableIResult {
	return TableIResult{Devices: device.Table()}
}

// Format renders the table.
func (r TableIResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I — MAR ecosystem devices\n")
	fmt.Fprintf(&b, "%-16s %-10s %-12s %-10s %-26s %-11s\n",
		"Platform", "Computing", "Storage", "Battery", "Network access", "Portability")
	for _, d := range r.Devices {
		fmt.Fprintf(&b, "%-16s %-10s %-12s %-10s %-26s %-11s\n",
			d.Platform, d.Computing, d.StorageStr(), d.BatteryStr(),
			strings.Join(d.NetworkAccess, "/"), d.Portability)
	}
	return b.String()
}

// TableIIRow is one measured scenario of Table II.
type TableIIRow struct {
	Platform   string
	Connection string
	LinkRTT    time.Duration // measured mean
	PaperRTT   time.Duration // the paper's reported value
	Lost       int64
}

// TableIIResult reproduces Table II: CloudRidAR link RTT in four scenarios.
type TableIIResult struct {
	Rows []TableIIRow
}

// tableIIScenario builds one scenario topology and measures its RTT with
// the same probe methodology in all four cases.
type tableIIScenario struct {
	platform, connection string
	paper                time.Duration
	hops                 []simnet.PathSpec // one-way path; mirrored for return
}

// TableII measures the four CloudRidAR offloading scenarios:
//
//  1. Local server in the same room over a personal AP (paper: 8 ms).
//  2. Google Cloud (Taiwan) over the campus WiFi (paper: 36 ms).
//  3. A university server over the same WiFi, where firewalls and an
//     interconnection detour between Eduroam and the campus network double
//     the delay despite the shorter distance (paper: 72 ms).
//  4. Google Cloud over LTE (paper: 120 ms).
func TableII(seed int64) TableIIResult {
	wifiLocal := phy.WiFiLocal
	campusWiFi := phy.WiFiLocal // managed campus AP: low jitter, a bit more base delay
	lte := phy.LTE

	scenarios := []tableIIScenario{
		{
			platform: "Local Server", connection: "WiFi", paper: 8 * time.Millisecond,
			hops: []simnet.PathSpec{
				simnet.Hop(wifiLocal.Up, 3*time.Millisecond, simnet.WithJitter(time.Millisecond)),
			},
		},
		{
			platform: "Cloud Server", connection: "WiFi", paper: 36 * time.Millisecond,
			hops: []simnet.PathSpec{
				simnet.Hop(campusWiFi.Up, 3*time.Millisecond, simnet.WithJitter(2*time.Millisecond)),
				simnet.Hop(phy.Backbone.Up, 14*time.Millisecond, simnet.WithJitter(time.Millisecond)),
			},
		},
		{
			platform: "University Server", connection: "WiFi", paper: 72 * time.Millisecond,
			hops: []simnet.PathSpec{
				simnet.Hop(campusWiFi.Up, 3*time.Millisecond, simnet.WithJitter(2*time.Millisecond)),
				// Eduroam/campus interconnection: firewalls and a congested
				// segment add non-negligible delay (Section IV-B).
				simnet.Hop(50e6, 18*time.Millisecond, simnet.WithJitter(4*time.Millisecond)),
				simnet.Hop(phy.Backbone.Up, 13*time.Millisecond, simnet.WithJitter(2*time.Millisecond)),
			},
		},
		{
			platform: "Cloud Server", connection: "LTE", paper: 120 * time.Millisecond,
			hops: []simnet.PathSpec{
				simnet.Hop(lte.Up, 42*time.Millisecond, simnet.WithJitter(12*time.Millisecond)),
				simnet.Hop(phy.Backbone.Up, 14*time.Millisecond, simnet.WithJitter(time.Millisecond)),
			},
		},
	}

	var out TableIIResult
	for i, sc := range scenarios {
		sim := simnet.New(seed + int64(i))
		clientMux := simnet.NewDemux()
		serverMux := simnet.NewDemux()
		uplink := simnet.NewPath(sim, serverMux, sc.hops...)
		downlink := simnet.NewPath(sim, clientMux, sc.hops...)
		srv := offload.NewServer(sim, 100, 2e10, func(simnet.Addr) simnet.Handler { return downlink })
		serverMux.Register(100, srv)
		p := offload.NewPinger(sim, 1, 100, uplink, 64)
		clientMux.Register(1, p)
		p.Run(200, 25*time.Millisecond)
		if err := sim.RunUntil(10 * time.Second); err != nil {
			panic(err) // deterministic harness: a horizon here is a bug
		}
		p.Finish()
		out.Rows = append(out.Rows, TableIIRow{
			Platform:   sc.platform,
			Connection: sc.connection,
			LinkRTT:    p.RTT.Mean().Round(100 * time.Microsecond),
			PaperRTT:   sc.paper,
			Lost:       p.Lost,
		})
	}
	return out
}

// Format renders the table with the paper's reference values.
func (r TableIIResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II — CloudRidAR link RTT (measured vs paper)\n")
	fmt.Fprintf(&b, "%-18s %-10s %-14s %-10s\n", "Platform", "Connection", "Measured RTT", "Paper RTT")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-18s %-10s %-14v %-10v\n", row.Platform, row.Connection, row.LinkRTT, row.PaperRTT)
	}
	return b.String()
}

// SectionIIIBResult carries the bandwidth arithmetic of Section III-B.
type SectionIIIBResult struct {
	RetinaLow, RetinaHigh float64
	FoV60Low, FoV70High   float64
	Raw4K60Bps            float64
	Raw4K60MiBps          float64
	Compressed250         float64
	MinARBandwidth        float64
	MaxRTT                time.Duration
	RecoveryRTT           time.Duration
}

// SectionIIIB computes the bandwidth/latency requirement numbers.
func SectionIIIB() SectionIIIBResult {
	lo, hi := mar.RetinaRate()
	fovLo, _ := mar.FoVScaledRate(60)
	_, fovHi := mar.FoVScaledRate(70)
	raw := mar.RawVideoBitrate(3840, 2160, 60, 12)
	return SectionIIIBResult{
		RetinaLow: lo, RetinaHigh: hi,
		FoV60Low: fovLo, FoV70High: fovHi,
		Raw4K60Bps:     raw,
		Raw4K60MiBps:   mar.RawVideoMiBps(raw),
		Compressed250:  mar.CompressedBitrate(raw, 250),
		MinARBandwidth: mar.MinARBandwidth,
		MaxRTT:         mar.MaxTolerableRTT,
		RecoveryRTT:    mar.RecoveryBudget(mar.MaxTolerableRTT),
	}
}

// Format renders the analysis.
func (r SectionIIIBResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section III-B — MAR bandwidth & latency requirements\n")
	fmt.Fprintf(&b, "retina->brain rate:          %.0f - %.0f Mb/s (paper: 6-10)\n", r.RetinaLow/1e6, r.RetinaHigh/1e6)
	fmt.Fprintf(&b, "camera FoV raw estimate:     %.1f - %.1f Gb/s (paper: ~9-12)\n", r.FoV60Low/1e9, r.FoV70High/1e9)
	fmt.Fprintf(&b, "uncompressed 4K60@12bpp:     %.2f Gb/s = %.0f MiB/s (paper's '711')\n", r.Raw4K60Bps/1e9, r.Raw4K60MiBps)
	fmt.Fprintf(&b, "lossy-compressed (~250:1):   %.1f Mb/s (paper: 20-30)\n", r.Compressed250/1e6)
	fmt.Fprintf(&b, "minimum AR-grade bandwidth:  %.0f Mb/s\n", r.MinARBandwidth/1e6)
	fmt.Fprintf(&b, "max tolerable RTT:           %v; ARQ affordable below %v\n", r.MaxRTT, r.RecoveryRTT)
	return b.String()
}

// SectionIVARow is one access technology characterization row.
type SectionIVARow struct {
	Profile     phy.Profile
	MeasuredRTT time.Duration // probed through a simnet link pair
	Asymmetry   float64
}

// SectionIVAResult characterizes the surveyed wireless technologies.
type SectionIVAResult struct {
	Rows []SectionIVARow
}

// SectionIVA probes each technology profile's simulated link.
func SectionIVA(seed int64) SectionIVAResult {
	var out SectionIVAResult
	for i, p := range phy.AllProfiles() {
		sim := simnet.New(seed + int64(i))
		clientMux, serverMux := simnet.NewDemux(), simnet.NewDemux()
		up := p.Uplink(sim, serverMux)
		down := p.Downlink(sim, clientMux)
		srv := offload.NewServer(sim, 100, 1e10, func(simnet.Addr) simnet.Handler { return down })
		serverMux.Register(100, srv)
		pin := offload.NewPinger(sim, 1, 100, up, 64)
		clientMux.Register(1, pin)
		pin.Run(200, 20*time.Millisecond)
		if err := sim.RunUntil(10 * time.Second); err != nil {
			panic(err)
		}
		pin.Finish()
		out.Rows = append(out.Rows, SectionIVARow{
			Profile:     p,
			MeasuredRTT: pin.RTT.Mean().Round(100 * time.Microsecond),
			Asymmetry:   p.Asymmetry(),
		})
	}
	return out
}

// Format renders the characterization table.
func (r SectionIVAResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section IV-A — wireless access characterization (measured typical values)\n")
	fmt.Fprintf(&b, "%-16s %12s %12s %12s %12s %8s\n", "Technology", "Down", "Up", "Theor. down", "RTT", "Asym")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %12s %12s %12s %12v %8.2f\n",
			row.Profile.Name,
			fmt.Sprintf("%.1f Mb/s", row.Profile.Down/1e6),
			fmt.Sprintf("%.1f Mb/s", row.Profile.Up/1e6),
			fmt.Sprintf("%.0f Mb/s", row.Profile.TheoreticalDown/1e6),
			row.MeasuredRTT, row.Asymmetry)
	}
	return b.String()
}
