package experiments

import (
	"strings"
	"testing"
)

// TestCityAcceptance pins the PR's acceptance criteria at smoke scale,
// exactly as the BENCH_city.json artifact records them: the demand→
// solve→replay loop completes, the greedy placement holds >= 95% of
// offload deadlines and strictly beats the cloud baseline on the same
// seeded load, and the event queue stays bounded by the live population
// (the cancel-leak fix holding at fleet scale). The full-scale wall-time
// gate runs in `make bench`; here it is recorded as waived.
func TestCityAcceptance(t *testing.T) {
	r := CityAt(42, 4_000, 2)
	if r.Err != "" {
		t.Fatalf("study failed: %s", r.Err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("got %d mode rows, want 2 (placement, cloud)", len(r.Rows))
	}
	if !r.Pass() {
		t.Errorf("acceptance failed: hold=%.4f beatsCloud=%v queueBounded=%v wall=%.1fs (gate %s)",
			r.HoldRate, r.PlacementBeatsCloud, r.QueueBounded, r.WallSeconds, r.WallGate)
	}
	if r.PlacementSites == 0 || r.PlacementSites >= r.CandidateSites {
		t.Errorf("greedy |C|=%d of %d candidates: not a proper subset", r.PlacementSites, r.CandidateSites)
	}
	if !strings.Contains(r.WallGate, "waived") {
		t.Errorf("wall gate %q at smoke scale, want waived", r.WallGate)
	}
	if r.EventsFired == 0 || r.TraceHash == 0 {
		t.Errorf("missing run evidence: events=%d hash=%#x", r.EventsFired, r.TraceHash)
	}

	// Same-seed determinism carries through the whole experiment layer.
	r2 := CityAt(42, 4_000, 2)
	if r2.TraceHash != r.TraceHash || r2.HoldRate != r.HoldRate {
		t.Errorf("same-seed rerun diverged: hash %#x vs %#x, hold %.4f vs %.4f",
			r.TraceHash, r2.TraceHash, r.HoldRate, r2.HoldRate)
	}

	out := r.Format()
	for _, want := range []string{"placement", "cloud", "hold >= 95%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q:\n%s", want, out)
		}
	}
}
