package experiments

import (
	"strings"
	"testing"
	"time"
)

// Every experiment's Format output must be non-empty and multi-line; the
// shape assertions below check the paper's qualitative claims.

func TestTableI(t *testing.T) {
	r := TableI()
	if len(r.Devices) != 6 {
		t.Fatalf("rows = %d", len(r.Devices))
	}
	out := r.Format()
	for _, want := range []string{"Smart glasses", "Cloud computing", "Portability"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestTableIIOrderingAndMagnitudes(t *testing.T) {
	r := TableII(1)
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Monotone ordering: local < cloud/WiFi < university < cloud/LTE.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].LinkRTT <= r.Rows[i-1].LinkRTT {
			t.Errorf("row %d RTT %v not greater than row %d RTT %v",
				i, r.Rows[i].LinkRTT, i-1, r.Rows[i-1].LinkRTT)
		}
	}
	// Each measured value within 40% of the paper's.
	for _, row := range r.Rows {
		ratio := float64(row.LinkRTT) / float64(row.PaperRTT)
		if ratio < 0.6 || ratio > 1.4 {
			t.Errorf("%s/%s: measured %v vs paper %v (ratio %.2f)",
				row.Platform, row.Connection, row.LinkRTT, row.PaperRTT, ratio)
		}
	}
	// The university paradox: nearly double the cloud-WiFi RTT.
	if f := float64(r.Rows[2].LinkRTT) / float64(r.Rows[1].LinkRTT); f < 1.6 || f > 2.4 {
		t.Errorf("university/cloud ratio = %.2f, want ~2", f)
	}
	if !strings.Contains(r.Format(), "University") {
		t.Error("format missing university row")
	}
}

func TestFigure2Anomaly(t *testing.T) {
	r := Figure2(3)
	// Symmetric case fair within 10%.
	if ratio := r.BothFastA / r.BothFastB; ratio < 0.9 || ratio > 1.1 {
		t.Errorf("54/54 unfair: %v vs %v", r.BothFastA, r.BothFastB)
	}
	// Anomaly: A collapses to ~B and loses over a third of its goodput
	// (the analytic drop for a 54/18 Mb/s pair is ~37%).
	if ratio := r.MixedA / r.MixedB; ratio < 0.85 || ratio > 1.15 {
		t.Errorf("mixed not equalized: %v vs %v", r.MixedA, r.MixedB)
	}
	if r.MixedA > 0.7*r.BothFastA {
		t.Errorf("anomaly too weak: %v vs %v", r.MixedA, r.BothFastA)
	}
	// Simulation matches the analytic model within 10%.
	if ratio := r.MixedA / r.AnalyticMixed; ratio < 0.9 || ratio > 1.1 {
		t.Errorf("sim %v vs analytic %v", r.MixedA, r.AnalyticMixed)
	}
	if !strings.Contains(r.Format(), "performance anomaly") {
		t.Error("format header missing")
	}
}

func TestFigure3UploadsStarveDownload(t *testing.T) {
	r := Figure3(5)
	// Alone: near link capacity (payload share of 8 Mb/s).
	if r.Alone < 6e6 {
		t.Errorf("download alone = %v, want near 7.5e6", r.Alone)
	}
	// One upload collapses the download hard (paper/Heusse: far below fair
	// share).
	if r.With1 > r.Alone/2 {
		t.Errorf("one upload did not halve the download: %v vs %v", r.With1, r.Alone)
	}
	// Two uploads at least as bad.
	if r.With2 > r.With1*1.5 {
		t.Errorf("two uploads should not improve things: %v vs %v", r.With2, r.With1)
	}
	if r.DownloadGoodput.Len() < 50 {
		t.Errorf("series too short: %d", r.DownloadGoodput.Len())
	}
	if !strings.Contains(r.Format(), "collapse factor") {
		t.Error("format missing collapse factor")
	}
}

func TestFigure4GracefulDegradation(t *testing.T) {
	r := Figure4(7)
	// Phase 1 (plenty of capacity): everything flows.
	for _, name := range []string{"metadata", "sensors", "ref-frames", "inter-frames"} {
		if r.Phase(name, 0) == 0 {
			t.Errorf("%s silent in phase 1", name)
		}
	}
	// Phase 2 (squeezed to 1.6 Mb/s): interframes absorb the cut; metadata
	// and reference frames keep flowing.
	if r.Phase("inter-frames", 1) > 0.7*r.Phase("inter-frames", 0) {
		t.Errorf("interframes not degraded in phase 2: %v vs %v",
			r.Phase("inter-frames", 1), r.Phase("inter-frames", 0))
	}
	if r.Phase("metadata", 1) < 0.8*r.Phase("metadata", 0) {
		t.Errorf("metadata degraded in phase 2: %v vs %v",
			r.Phase("metadata", 1), r.Phase("metadata", 0))
	}
	if r.Phase("ref-frames", 1) < 0.7*r.Phase("ref-frames", 0) {
		t.Errorf("ref frames degraded too much in phase 2: %v vs %v",
			r.Phase("ref-frames", 1), r.Phase("ref-frames", 0))
	}
	// Phase 3 (0.45 Mb/s): even reference frames degrade, metadata survives.
	if r.Phase("ref-frames", 2) > 0.7*r.Phase("ref-frames", 0) {
		t.Errorf("ref frames not degraded in phase 3: %v vs %v",
			r.Phase("ref-frames", 2), r.Phase("ref-frames", 0))
	}
	if r.Phase("metadata", 2) < 0.8*r.Phase("metadata", 0) {
		t.Errorf("metadata degraded in phase 3: %v vs %v",
			r.Phase("metadata", 2), r.Phase("metadata", 0))
	}
	// Metadata essentially lossless end to end.
	if float64(r.MetaDelivered) < 0.98*float64(r.MetaGenerated) {
		t.Errorf("metadata delivery %d/%d", r.MetaDelivered, r.MetaGenerated)
	}
	// The TCP comparison flow shows a sawtooth (both rises and falls).
	ups, downs := 0, 0
	for i := 1; i < r.TCPCwnd.Len(); i++ {
		if r.TCPCwnd.Values[i] > r.TCPCwnd.Values[i-1] {
			ups++
		} else if r.TCPCwnd.Values[i] < r.TCPCwnd.Values[i-1] {
			downs++
		}
	}
	if ups == 0 || downs == 0 {
		t.Error("TCP cwnd is not a sawtooth")
	}
	if !strings.Contains(r.Format(), "graceful degradation") {
		t.Error("format header missing")
	}
}

func TestFigure5DistributedBeatsCloud(t *testing.T) {
	r := Figure5(11)
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byName := map[string]Figure5Row{}
	for _, row := range r.Rows {
		byName[row.Scenario] = row
	}
	cloud := byName["cloud only (WiFi)"]
	edge := byName["5a multi-server multipath"]
	d2dWiFi := byName["5b D2D home WiFi"]
	// Edge server beats cloud on latency.
	if edge.MeanLat >= cloud.MeanLat {
		t.Errorf("edge %v not faster than cloud %v", edge.MeanLat, cloud.MeanLat)
	}
	// All scenarios should make the 75 ms budget most of the time; the
	// glasses alone cannot (that is the premise), so hit rates near 1 here
	// demonstrate offloading works.
	for name, row := range byName {
		if row.HitRate < 0.9 {
			t.Errorf("%s hit rate %.2f < 0.9 (mean %v)", name, row.HitRate, row.MeanLat)
		}
	}
	_ = d2dWiFi
	if !strings.Contains(r.Format(), "5c D2D LTE-Direct") {
		t.Error("format missing scenario")
	}
}

func TestSectionIIIB(t *testing.T) {
	r := SectionIIIB()
	if r.RetinaLow != 6e6 || r.RetinaHigh != 10e6 {
		t.Error("retina bounds wrong")
	}
	if r.Raw4K60MiBps < 700 || r.Raw4K60MiBps > 720 {
		t.Errorf("4K MiB/s = %v, want ~711", r.Raw4K60MiBps)
	}
	if r.RecoveryRTT != 37500*time.Microsecond {
		t.Errorf("recovery RTT = %v", r.RecoveryRTT)
	}
	if !strings.Contains(r.Format(), "711") {
		t.Error("format missing the 711 reference")
	}
}

func TestSectionIVA(t *testing.T) {
	r := SectionIVA(13)
	if len(r.Rows) != 7 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byName := map[string]SectionIVARow{}
	for _, row := range r.Rows {
		byName[row.Profile.Name] = row
	}
	// Measured RTTs reflect the paper's ordering: HSPA+ worst among WAN
	// technologies, local AP a few ms.
	if byName["HSPA+"].MeasuredRTT <= byName["LTE"].MeasuredRTT {
		t.Error("HSPA+ should have higher RTT than LTE")
	}
	if byName["WiFi (local AP)"].MeasuredRTT > 15*time.Millisecond {
		t.Errorf("local AP RTT = %v", byName["WiFi (local AP)"].MeasuredRTT)
	}
	if !strings.Contains(r.Format(), "802.11ac") {
		t.Error("format missing 802.11ac")
	}
}

func TestSectionVICShape(t *testing.T) {
	r := SectionVIC(17)
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		// FEC repairs losses at every RTT: complete delivery strictly beats
		// plain, approaching the analytic residual.
		if row.FECComplete <= row.PlainComplete {
			t.Errorf("RTT %v: FEC complete %.3f not better than plain %.3f",
				row.RTT, row.FECComplete, row.PlainComplete)
		}
		if row.FECComplete < 0.99 {
			t.Errorf("RTT %v: FEC complete %.3f below residual expectation", row.RTT, row.FECComplete)
		}
		// Once the one-way delay exceeds the budget nothing can be in time.
		if row.RTT >= 2*r.Budget && row.FECInTime > 0.05 {
			t.Errorf("RTT %v: in-time %.3f should be ~0 beyond the physics bound", row.RTT, row.FECInTime)
		}
		switch {
		case row.ARQAffordable:
			// Affordable ARQ should recover nearly everything (the residual
			// tail is re-lost retransmissions and end-of-frame losses whose
			// gap signal arrives one frame later).
			if row.ARQInTime < 0.97 {
				t.Errorf("RTT %v: affordable ARQ in-time %.3f", row.RTT, row.ARQInTime)
			}
		case row.RTT > 2*r.Budget:
			// Far beyond budget ARQ degenerates toward plain.
			if row.ARQInTime > row.FECInTime {
				t.Errorf("RTT %v: ARQ %.3f should not beat FEC %.3f", row.RTT, row.ARQInTime, row.FECInTime)
			}
		}
	}
	// The paper's boundary: ARQ affordable at 37 ms but not at 50 ms.
	if !r.Rows[2].ARQAffordable || r.Rows[3].ARQAffordable {
		t.Error("affordability boundary wrong")
	}
	if !strings.Contains(r.Format(), "FEC<=T") {
		t.Error("format missing FEC column")
	}
}

func TestSectionVIDShape(t *testing.T) {
	r := SectionVID(19)
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	failover, both := r.Rows[0], r.Rows[2]
	// Simultaneous use should deliver at least as well as failover-only and
	// spend more LTE bytes.
	if both.Delivered < failover.Delivered-0.02 {
		t.Errorf("simultaneous delivered %.3f < failover %.3f", both.Delivered, failover.Delivered)
	}
	if both.LTEBytes <= failover.LTEBytes {
		t.Errorf("simultaneous LTE bytes %d should exceed failover %d", both.LTEBytes, failover.LTEBytes)
	}
	// Everything keeps working through outages.
	for _, row := range r.Rows {
		if row.Delivered < 0.85 {
			t.Errorf("%s delivered only %.3f", row.Behavior, row.Delivered)
		}
	}
	if !strings.Contains(r.Format(), "LTE MB") {
		t.Error("format missing LTE column")
	}
}

func TestSectionVIFShape(t *testing.T) {
	r := SectionVIF(23)
	if len(r.Rows) < 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.ExactC >= 0 {
			if row.GreedyC < row.ExactC {
				t.Errorf("greedy %d below exact optimum %d", row.GreedyC, row.ExactC)
			}
			if float64(row.GreedyC) > 1.5*float64(row.ExactC)+1 {
				t.Errorf("greedy %d too far from optimum %d", row.GreedyC, row.ExactC)
			}
		}
		if row.RandomC < float64(row.GreedyC)-0.5 {
			t.Errorf("random %.1f better than greedy %d — suspicious", row.RandomC, row.GreedyC)
		}
	}
	if !strings.Contains(r.Format(), "greedy") {
		t.Error("format missing greedy column")
	}
}

func TestSectionVIHShape(t *testing.T) {
	r := SectionVIH(29)
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	droptail, fqcodel, prio := r.Rows[0], r.Rows[1], r.Rows[2]
	// FQ-CoDel and priority queueing must slash the MAR p99 vs the
	// oversized FIFO.
	if fqcodel.MARp99 > droptail.MARp99/2 {
		t.Errorf("FQ-CoDel p99 %v vs DropTail %v — expected large win", fqcodel.MARp99, droptail.MARp99)
	}
	if prio.MARp99 > droptail.MARp99/2 {
		t.Errorf("priority p99 %v vs DropTail %v — expected large win", prio.MARp99, droptail.MARp99)
	}
	// Bulk traffic still gets most of the link under AQM.
	if fqcodel.BulkMbps < 0.8 {
		t.Errorf("FQ-CoDel bulk rate %v too low", fqcodel.BulkMbps)
	}
	if !strings.Contains(r.Format(), "FQ-CoDel") {
		t.Error("format missing FQ-CoDel row")
	}
}
