package adapt

import (
	"bytes"
	"testing"
)

// FuzzPolicyDecode hammers the control-message decoder: it must never
// panic, must reject anything the encoder could not have produced, and
// must round-trip exactly whatever it accepts.
func FuzzPolicyDecode(f *testing.F) {
	f.Add(EncodePolicy(Policy{Mode: ModeFull, Retransmit: true}, 0))
	f.Add(EncodePolicy(Policy{Mode: ModeFeatures, K: 8, M: 2}, 42))
	f.Add(EncodePolicy(Policy{Mode: ModeTracking, K: 10, M: 4}, 1<<31))
	f.Add(EncodePolicy(Policy{Mode: ModeSkip, Retransmit: true}, 7))
	f.Add([]byte{})
	f.Add([]byte{policyVersion})
	f.Add([]byte{2, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{1, 9, 1, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{1, 1, 0, 200, 100, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, b []byte) {
		p, tick, err := DecodePolicy(b)
		if err != nil {
			return
		}
		// Accepted: the decode must be canonical — re-encoding reproduces
		// the input header byte for byte.
		enc := EncodePolicy(p, tick)
		if !bytes.Equal(enc, b[:PolicyLen]) {
			t.Fatalf("decode not canonical: in %v out %v (policy %+v tick %d)", b[:PolicyLen], enc, p, tick)
		}
		// And the accepted policy must satisfy the documented invariants.
		if p.Mode > ModeSkip {
			t.Fatalf("accepted invalid mode %v", p.Mode)
		}
		if (p.Retransmit || p.Mode == ModeSkip) && (p.K != 0 || p.M != 0) {
			t.Fatalf("accepted shards without FEC: %+v", p)
		}
		if !p.Retransmit && p.Mode != ModeSkip && (p.K < 1 || p.K+p.M > 255) {
			t.Fatalf("accepted bad code: %+v", p)
		}
	})
}
