package adapt

import "marnet/internal/obs"

// PublishMetrics exposes the controller on an obs registry:
//
//	mar_adapt_mode                   gauge   current ladder rung (0=full…3=skip)
//	mar_adapt_retx_affordable        gauge   1 while recovery rides ARQ
//	mar_adapt_miss_ewma              gauge   smoothed miss rate the ladder acts on
//	mar_adapt_fec_data_shards        gauge   current K (0 under ARQ)
//	mar_adapt_fec_repair_shards      gauge   current M (0 under ARQ)
//	mar_adapt_mode_switches_total    counter ladder transitions
//	mar_adapt_ticks_total            counter control intervals consumed
//	mar_adapt_mode_dwell_ns{mode=…}  histogram time spent on each rung,
//	                                 observed when the rung is left
//
// Call once per controller; gauges read through live state.
func (c *Controller) PublishMetrics(reg *obs.Registry, labels ...obs.Label) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("mar_adapt_mode", func() float64 {
		return float64(c.Mode())
	}, labels...)
	reg.GaugeFunc("mar_adapt_retx_affordable", func() float64 {
		if c.Policy().Retransmit {
			return 1
		}
		return 0
	}, labels...)
	reg.GaugeFunc("mar_adapt_miss_ewma", c.MissEWMA, labels...)
	reg.GaugeFunc("mar_adapt_fec_data_shards", func() float64 {
		return float64(c.Policy().K)
	}, labels...)
	reg.GaugeFunc("mar_adapt_fec_repair_shards", func() float64 {
		return float64(c.Policy().M)
	}, labels...)
	reg.CounterFunc("mar_adapt_mode_switches_total", c.Switches, labels...)
	reg.CounterFunc("mar_adapt_ticks_total", c.Ticks, labels...)

	c.mu.Lock()
	for m := Mode(0); m < numModes; m++ {
		ls := append(append([]obs.Label(nil), labels...), obs.L("mode", m.String()))
		c.dwell[m] = reg.Histogram("mar_adapt_mode_dwell_ns", ls...)
	}
	c.mu.Unlock()
}
