// Package adapt closes the paper's robustness loop on the client: a
// degradation controller that watches what the network and the server are
// actually doing — smoothed RTT and loss from the wire session, budget
// attribution from obs, rejection/tier feedback from rpc — and decides,
// every control tick, *what the client should ship next*.
//
// The decision has three parts, straight from §III-B and §VI-C:
//
//   - Payload mode: the degradation ladder full frame → features →
//     tracking-only → skip. Shipping less costs accuracy (tracking drift)
//     but buys latency headroom; the controller walks down the ladder when
//     frames miss the motion-to-photon budget and back up when the path
//     recovers.
//
//   - Recovery scheme: retransmission is affordable only while
//     RTT ≤ budget/2 (37.5 ms against the 75 ms budget) — one retransmit
//     costs an extra RTT and must still land inside the deadline. Above the
//     bound the controller switches to forward error correction and sizes
//     the Reed–Solomon code from the measured loss rate via
//     fec.ResidualLoss.
//
//   - Hysteresis: both the ladder and the retransmit switch carry
//     min-dwell, sustained-recovery, and dead-band guards so bursty
//     Gilbert–Elliott loss cannot make the policy oscillate. A controller
//     that flaps between modes is worse than either mode.
//
// The controller is deliberately clock-free: callers feed it elapsed time,
// so the same tick sequence produces the same decision trace under the
// virtual clock (marsim) and the wall clock alike.
package adapt

import (
	"sync"
	"time"

	"marnet/internal/obs"
)

// Mode is a rung of the client degradation ladder, ordered from most to
// least uplink demand. The zero value is ModeFull.
type Mode uint8

const (
	// ModeFull ships the full camera frame for server-side recognition.
	ModeFull Mode = iota
	// ModeFeatures ships extracted feature descriptors only (§III-B: ~6 kB
	// against ~20 kB for a compressed frame).
	ModeFeatures
	// ModeTracking runs local tracking and ships only sparse feature
	// anchors so the server can still correct drift.
	ModeTracking
	// ModeSkip ships nothing: pure local tracking, riding out an outage.
	ModeSkip

	numModes = 4
)

func (m Mode) String() string {
	switch m {
	case ModeFull:
		return "full"
	case ModeFeatures:
		return "features"
	case ModeTracking:
		return "tracking"
	case ModeSkip:
		return "skip"
	}
	return "invalid"
}

// RetxAffordableRTT is the paper's §VI-C bound: with a 75 ms end-to-end
// budget, a loss can be repaired by retransmission only if the extra
// round trip still fits — RTT ≤ budget/2.
const RetxAffordableRTT = obs.DefaultBudget / 2

// Policy is one shipping decision: what to send and how to protect it.
type Policy struct {
	// Mode is the payload rung.
	Mode Mode
	// Retransmit is true when loss recovery rides ARQ (RTT below the
	// affordability bound); false means FEC carries recovery instead.
	Retransmit bool
	// K and M are the Reed–Solomon data/repair shard counts when
	// Retransmit is false; both zero under ARQ.
	K, M int
}

// Overhead reports the FEC expansion factor of the policy (1 under ARQ).
func (p Policy) Overhead() float64 {
	if p.Retransmit || p.K <= 0 {
		return 1
	}
	return float64(p.K+p.M) / float64(p.K)
}

// Signals is the controller's per-tick input, aggregated by the caller
// since the previous tick.
type Signals struct {
	// SRTT is the wire session's smoothed RTT (0 = unknown).
	SRTT time.Duration
	// Loss is the wire session's smoothed loss rate in [0,1].
	Loss float64
	// Frames is how many offload attempts completed (in any way) since the
	// last tick; Misses is how many of those missed the budget — late,
	// timed out, shed, or rejected.
	Frames, Misses int
	// Rejections counts typed server rejections (shed/draining/cannot-
	// finish) among the misses: immediate evidence the server wants less.
	Rejections int
	// Degraded counts responses the server served from a degraded ladder
	// tier — softer pressure than a rejection.
	Degraded int
	// NetShare optionally reports the network share of the latest
	// obs.BudgetReport (uplink+downlink as a fraction of total); above
	// netShareHigh it biases degradation toward smaller payloads since the
	// budget is going to the network, not compute.
	NetShare float64
}

// Config tunes the controller. The zero value selects the paper-derived
// defaults documented on each field.
type Config struct {
	// Budget is the motion-to-photon budget (default obs.DefaultBudget,
	// 75 ms).
	Budget time.Duration
	// RetxRTT is the ARQ-affordability bound (default Budget/2).
	RetxRTT time.Duration
	// RetxBand is the dead band around RetxRTT: ARQ→FEC above
	// RetxRTT+Band/2, FEC→ARQ below RetxRTT−Band/2 (default Budget/16,
	// ≈4.7 ms at the default budget).
	RetxBand time.Duration
	// TargetResidual is the post-FEC residual block-loss target fed to
	// fec.ResidualLoss (default 1e-3).
	TargetResidual float64
	// DataShards is the Reed–Solomon K (default 8); MaxRepair caps M
	// (default 4, a 1.5× worst-case expansion).
	DataShards, MaxRepair int
	// MinDwell is the minimum time between mode switches (default 500 ms).
	MinDwell time.Duration
	// UpgradeAfter is how long the miss rate must stay below UpAt before
	// climbing a rung (default 1.5 s).
	UpgradeAfter time.Duration
	// ProbeAfter forces a one-rung upgrade probe after this long stuck in
	// a degraded mode with no recovery evidence (default 4 s) — without
	// it, ModeSkip is a trap: shipping nothing produces no samples that
	// could ever justify shipping again.
	ProbeAfter time.Duration
	// DownAt and UpAt are the miss-EWMA thresholds for degrading and
	// upgrading (defaults 0.5 and 0.1); the gap is the ladder hysteresis.
	DownAt, UpAt float64
	// MissGain is the EWMA gain for the miss rate (default 0.3).
	MissGain float64
	// NoHysteresis strips every guard — dead band, dwell, sustain, probe —
	// leaving a naive threshold controller. It exists so tests can show
	// what the guards prevent; do not deploy it.
	NoHysteresis bool
	// Recorder, when set, receives an EvAdaptMove flight-recorder event on
	// every ladder switch and an EvRetxSwitch on every ARQ/FEC flip.
	Recorder *obs.FlightRecorder
}

// netShareHigh: when the network eats this fraction of the frame budget,
// degradation pressure applies even if frames are still (barely) landing.
const netShareHigh = 0.7

func (c Config) withDefaults() Config {
	if c.Budget <= 0 {
		c.Budget = obs.DefaultBudget
	}
	if c.RetxRTT <= 0 {
		c.RetxRTT = c.Budget / 2
	}
	if c.RetxBand <= 0 {
		c.RetxBand = c.Budget / 16
	}
	if c.TargetResidual <= 0 {
		c.TargetResidual = 1e-3
	}
	if c.DataShards <= 0 {
		c.DataShards = 8
	}
	if c.MaxRepair <= 0 {
		c.MaxRepair = 4
	}
	if c.MinDwell <= 0 {
		c.MinDwell = 500 * time.Millisecond
	}
	if c.UpgradeAfter <= 0 {
		c.UpgradeAfter = 1500 * time.Millisecond
	}
	if c.ProbeAfter <= 0 {
		c.ProbeAfter = 4 * time.Second
	}
	if c.DownAt <= 0 {
		c.DownAt = 0.5
	}
	if c.UpAt <= 0 {
		c.UpAt = 0.1
	}
	if c.MissGain <= 0 {
		c.MissGain = 0.3
	}
	return c
}

// Decision is one recorded controller output.
type Decision struct {
	Now      time.Duration
	Tick     uint32
	Policy   Policy
	Miss     float64 // miss-EWMA after this tick's update
	Switched bool    // the payload mode changed this tick
	Probe    bool    // the switch was a blind upgrade probe
}

// maxTrace bounds the retained decision trace; the rolling hash keeps
// covering every tick even after old entries are dropped.
const maxTrace = 16384

// Controller is the adaptive degradation state machine. It is safe for
// concurrent use (metrics readers race with the ticking goroutine), but
// Tick itself is expected to be called from one place.
type Controller struct {
	cfg Config

	mu         sync.Mutex
	mode       Mode
	retx       bool
	retxKnown  bool
	miss       float64
	missKnown  bool
	lastSwitch time.Duration
	cleanSince time.Duration // when the current sustained-clean run began; -1 = none
	upgraded   bool          // the most recent switch went up the ladder
	upPenalty  uint          // relapse backoff: doubles the upgrade/probe windows
	started    bool
	switches   int64
	ticks      int64
	pol        Policy
	decisions  []Decision
	hash       uint64 // rolling FNV-1a over every encoded decision

	dwell [numModes]*obs.Histogram // nil until PublishMetrics
}

// NewController builds a controller starting at ModeFull with ARQ
// recovery (the optimistic policy — signals will pull it down).
func NewController(cfg Config) *Controller {
	c := &Controller{
		cfg:        cfg.withDefaults(),
		retx:       true,
		cleanSince: -1,
		hash:       fnvOffset,
	}
	c.pol = Policy{Mode: ModeFull, Retransmit: true}
	return c
}

// Tick feeds one control interval's signals and returns the policy to
// apply until the next tick. now is elapsed time on the caller's clock;
// it must be monotonic.
func (c *Controller) Tick(now time.Duration, sig Signals) Policy {
	c.mu.Lock()
	defer c.mu.Unlock()

	c.ticks++
	if !c.started {
		c.started = true
		c.lastSwitch = now
	}

	// 1. Miss pressure: EWMA over the per-tick miss fraction. Server
	// pushback and a network-dominated budget count as pressure even when
	// responses technically land.
	instant := -1.0
	if sig.Frames > 0 {
		sample := float64(sig.Misses) / float64(sig.Frames)
		// A network-dominated budget floors the sample at the pressure
		// threshold — enough to stop upgrades and walk down one rung at a
		// time, but not a slam to the bottom: frames are still landing.
		if sig.NetShare > netShareHigh && sample < c.cfg.DownAt {
			sample = c.cfg.DownAt
		}
		instant = sample
		if !c.missKnown {
			c.miss, c.missKnown = sample, true
		} else {
			c.miss += c.cfg.MissGain * (sample - c.miss)
		}
	}

	// 2. The §VI-C switch: ARQ only while the path can afford a retransmit
	// inside the budget, with a dead band so SRTT jitter around the bound
	// does not flap the recovery scheme.
	prevRetx, prevRetxKnown := c.retx, c.retxKnown
	if sig.SRTT > 0 {
		if c.cfg.NoHysteresis {
			c.retx = sig.SRTT <= c.cfg.RetxRTT
		} else {
			switch {
			case !c.retxKnown:
				c.retx = sig.SRTT <= c.cfg.RetxRTT
			case c.retx && sig.SRTT > c.cfg.RetxRTT+c.cfg.RetxBand/2:
				c.retx = false
			case !c.retx && sig.SRTT < c.cfg.RetxRTT-c.cfg.RetxBand/2:
				c.retx = true
			}
		}
		c.retxKnown = true
	}
	if prevRetxKnown && c.retx != prevRetx {
		var on uint8
		if c.retx {
			on = 1
		}
		c.cfg.Recorder.Record(obs.EvRetxSwitch, on, 0, uint32(c.ticks), uint64(sig.SRTT.Microseconds()))
	}

	// 3. Walk the ladder.
	prevMode := c.mode
	switched, probe := c.stepModeLocked(now, sig, instant)
	if switched {
		var pr uint8
		if probe {
			pr = 1
		}
		c.cfg.Recorder.Record(obs.EvAdaptMove, pr,
			uint16(prevMode)<<8|uint16(c.mode), uint32(c.ticks), uint64(c.miss*1e6))
	}

	// 4. Assemble the policy. Under FEC, size the code for the measured
	// loss; at least one repair shard — if ARQ is unaffordable, an
	// unprotected block has no recovery path at all.
	p := Policy{Mode: c.mode, Retransmit: c.retx}
	if !c.retx && c.mode != ModeSkip {
		p.K = c.cfg.DataShards
		if m := PlanRepair(p.K, c.cfg.MaxRepair, sig.Loss, c.cfg.TargetResidual); m > 1 {
			p.M = m
		} else {
			p.M = 1
		}
	}
	c.pol = p

	d := Decision{
		Now:      now,
		Tick:     uint32(c.ticks),
		Policy:   p,
		Miss:     c.miss,
		Switched: switched,
		Probe:    probe,
	}
	c.recordLocked(d)
	return p
}

// stepModeLocked applies the ladder state machine for one tick and
// reports whether the mode changed (and whether as a blind probe).
// instant is this tick's raw miss fraction (-1 when no frames completed).
func (c *Controller) stepModeLocked(now time.Duration, sig Signals, instant float64) (switched, probe bool) {
	pressure := c.missKnown && c.miss >= c.cfg.DownAt
	if sig.Rejections > 0 {
		pressure = true // a typed rejection is the server saying "less", now
	}
	clean := c.missKnown && c.miss <= c.cfg.UpAt && sig.Rejections == 0 && sig.Degraded == 0

	if c.cfg.NoHysteresis {
		// Naive thresholding: act on this tick's raw verdict, no smoothing,
		// no dwell — the strawman the guards exist to beat.
		if instant >= 0 {
			pressure = instant >= c.cfg.DownAt || sig.Rejections > 0
			clean = instant <= c.cfg.UpAt && sig.Rejections == 0 && sig.Degraded == 0
		}
		if pressure && c.mode < ModeSkip {
			c.switchLocked(now, c.mode+1)
			return true, false
		}
		if clean && c.mode > ModeFull {
			c.switchLocked(now, c.mode-1)
			return true, false
		}
		return false, false
	}

	// Relapse backoff: an upgrade that gets knocked straight back down was
	// a failed probe of a still-bad path — double the wait before the next
	// attempt (capped at 16×). An upgrade that survives its base window
	// proves the path and resets the penalty.
	if c.upgraded && now-c.lastSwitch >= c.cfg.UpgradeAfter {
		c.upPenalty = 0
	}

	dwelled := now-c.lastSwitch >= c.cfg.MinDwell
	if pressure {
		c.cleanSince = -1
		if c.mode < ModeSkip && dwelled {
			if c.upgraded && now-c.lastSwitch < c.cfg.UpgradeAfter && c.upPenalty < 4 {
				c.upPenalty++
			}
			c.upgraded = false
			c.switchLocked(now, c.mode+1)
			// A switch changes what ships, so the old miss history no
			// longer describes the new policy: restart from neutral
			// instead of letting stale pressure cascade down the ladder.
			c.miss = (c.cfg.DownAt + c.cfg.UpAt) / 2
			return true, false
		}
		return false, false
	}

	if c.mode == ModeFull {
		c.cleanSince = -1
		return false, false
	}
	if clean {
		if c.cleanSince < 0 {
			c.cleanSince = now
		}
		if dwelled && now-c.cleanSince >= c.cfg.UpgradeAfter<<c.upPenalty {
			c.upgraded = true
			c.switchLocked(now, c.mode-1)
			c.miss = (c.cfg.DownAt + c.cfg.UpAt) / 2
			return true, false
		}
		return false, false
	}
	// Only positive evidence of a still-bad path restarts the clean run. A
	// tick with no samples at all (degraded modes ship sparsely — tracking
	// anchors land every few hundred ms) says nothing either way, and
	// resetting on it would make the sustained-clean window unreachable for
	// exactly the modes that most need a way back up.
	if sig.Frames > 0 || sig.Rejections > 0 || sig.Degraded > 0 {
		c.cleanSince = -1
	}
	// Neither clean nor under pressure — often because a degraded mode
	// ships too little to produce evidence (ModeSkip ships nothing). After
	// ProbeAfter stuck, probe one rung up; if the path is still bad the
	// miss EWMA will send us straight back down after MinDwell.
	if now-c.lastSwitch >= c.cfg.ProbeAfter<<c.upPenalty {
		c.upgraded = true
		c.switchLocked(now, c.mode-1)
		c.miss = (c.cfg.DownAt + c.cfg.UpAt) / 2
		return true, true
	}
	return false, false
}

func (c *Controller) switchLocked(now time.Duration, to Mode) {
	if h := c.dwell[c.mode]; h != nil {
		h.ObserveDuration(now - c.lastSwitch)
	}
	c.mode = to
	c.lastSwitch = now
	c.cleanSince = -1
	c.switches++
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// recordLocked appends the decision to the trace and folds its canonical
// encoding into the rolling hash.
func (c *Controller) recordLocked(d Decision) {
	var buf [PolicyLen]byte
	encodePolicyInto(buf[:0], d.Policy, d.Tick)
	for _, b := range buf {
		c.hash = (c.hash ^ uint64(b)) * fnvPrime
	}
	if len(c.decisions) >= maxTrace {
		// Drop the older half; the hash already covers it.
		n := copy(c.decisions, c.decisions[maxTrace/2:])
		c.decisions = c.decisions[:n]
	}
	c.decisions = append(c.decisions, d)
}

// Policy returns the most recent decision without ticking.
func (c *Controller) Policy() Policy {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pol
}

// Mode returns the current ladder rung.
func (c *Controller) Mode() Mode {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mode
}

// Switches reports how many times the payload mode changed.
func (c *Controller) Switches() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.switches
}

// Ticks reports how many control intervals have been fed.
func (c *Controller) Ticks() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ticks
}

// MissEWMA returns the smoothed miss rate the ladder is acting on.
func (c *Controller) MissEWMA() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.miss
}

// Decisions returns a copy of the retained decision trace (the most
// recent maxTrace entries).
func (c *Controller) Decisions() []Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Decision, len(c.decisions))
	copy(out, c.decisions)
	return out
}

// DecisionHash is a rolling FNV-1a over the canonical encoding of every
// decision ever made — two controllers fed identical ticks produce
// identical hashes, which is how the determinism acceptance check
// compares whole runs without retaining them.
func (c *Controller) DecisionHash() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hash
}
