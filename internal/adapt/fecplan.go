package adapt

import "marnet/internal/fec"

// PlanRepair returns the smallest repair-shard count m in [0, maxM] such
// that a Reed–Solomon (k, m) block survives i.i.d. symbol loss at rate
// loss with residual block-loss probability at most target — the §VI-C
// sizing rule: spend exactly as much proactive redundancy as the measured
// loss demands, no more. If even maxM cannot reach the target (loss too
// high), it returns maxM: ship the best protection the overhead cap
// allows rather than giving up.
func PlanRepair(k, maxM int, loss, target float64) int {
	if k < 1 || maxM <= 0 {
		return 0
	}
	if loss <= 0 {
		return 0
	}
	if loss >= 1 {
		return maxM
	}
	for m := 0; m <= maxM; m++ {
		if fec.ResidualLoss(k, m, loss) <= target {
			return m
		}
	}
	return maxM
}
