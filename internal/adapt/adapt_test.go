package adapt

import (
	"math"
	"testing"
	"time"

	"marnet/internal/fec"
	"marnet/internal/obs"
)

// tickSeq drives a controller through signals at a fixed 100 ms cadence.
func tickSeq(c *Controller, sigs []Signals) []Policy {
	out := make([]Policy, 0, len(sigs))
	for i, s := range sigs {
		out = append(out, c.Tick(time.Duration(i)*100*time.Millisecond, s))
	}
	return out
}

func TestRetxSwitchAtPaperBound(t *testing.T) {
	if RetxAffordableRTT != 37500*time.Microsecond {
		t.Fatalf("RetxAffordableRTT = %v, want 37.5ms", RetxAffordableRTT)
	}
	c := NewController(Config{})
	clean := func(srtt time.Duration) Signals {
		return Signals{SRTT: srtt, Frames: 10}
	}
	p := c.Tick(0, clean(20*time.Millisecond))
	if !p.Retransmit {
		t.Fatalf("RTT 20ms: want ARQ, got FEC %+v", p)
	}
	// Above the bound plus the dead band: flips to FEC with shards set.
	p = c.Tick(100*time.Millisecond, clean(45*time.Millisecond))
	if p.Retransmit {
		t.Fatalf("RTT 45ms: want FEC, got ARQ")
	}
	if p.K < 1 || p.M < 1 {
		t.Fatalf("FEC policy has no code: %+v", p)
	}
	// Inside the dead band: no flip back.
	p = c.Tick(200*time.Millisecond, clean(37*time.Millisecond))
	if p.Retransmit {
		t.Fatalf("RTT 37ms inside dead band: want FEC to hold, got ARQ")
	}
	// Clearly below the band: ARQ again, shards cleared.
	p = c.Tick(300*time.Millisecond, clean(30*time.Millisecond))
	if !p.Retransmit || p.K != 0 || p.M != 0 {
		t.Fatalf("RTT 30ms: want ARQ with no shards, got %+v", p)
	}
}

func TestRetxSwitchNoHysteresisFlaps(t *testing.T) {
	c := NewController(Config{NoHysteresis: true})
	rtts := []time.Duration{36 * time.Millisecond, 39 * time.Millisecond, 36 * time.Millisecond, 39 * time.Millisecond}
	var flips int
	last := true
	for i, r := range rtts {
		p := c.Tick(time.Duration(i)*100*time.Millisecond, Signals{SRTT: r, Frames: 10})
		if p.Retransmit != last {
			flips++
			last = p.Retransmit
		}
	}
	if flips < 3 {
		t.Fatalf("naive switch should flap across the bound, saw %d flips", flips)
	}
}

func TestLadderDegradesAndRecovers(t *testing.T) {
	c := NewController(Config{})
	// Sustained misses walk down the ladder one rung per dwell.
	var sigs []Signals
	for i := 0; i < 30; i++ {
		sigs = append(sigs, Signals{SRTT: 20 * time.Millisecond, Frames: 10, Misses: 10})
	}
	pols := tickSeq(c, sigs)
	if got := pols[len(pols)-1].Mode; got != ModeSkip {
		t.Fatalf("3s of 100%% misses: want ModeSkip, got %v", got)
	}
	// Every transition was exactly one rung.
	prev := ModeFull
	for i, p := range pols {
		d := int(p.Mode) - int(prev)
		if d < 0 || d > 1 {
			t.Fatalf("tick %d: jumped %v -> %v", i, prev, p.Mode)
		}
		prev = p.Mode
	}
	// Recovery: clean signals climb back to full, but only after sustained
	// evidence — never instantly.
	start := c.Ticks()
	for i := 0; i < 200; i++ {
		now := time.Duration(30+i) * 100 * time.Millisecond
		c.Tick(now, Signals{SRTT: 20 * time.Millisecond, Frames: 10})
		if c.Mode() == ModeFull {
			break
		}
	}
	if c.Mode() != ModeFull {
		t.Fatalf("clean path for 20s: want ModeFull, got %v", c.Mode())
	}
	if climb := c.Ticks() - start; climb < 10 {
		t.Fatalf("recovered in %d ticks — upgrade hysteresis not applied", climb)
	}
}

func TestRejectionIsImmediatePressure(t *testing.T) {
	c := NewController(Config{})
	// Warm up clean so miss EWMA is low.
	for i := 0; i < 10; i++ {
		c.Tick(time.Duration(i)*100*time.Millisecond, Signals{Frames: 10})
	}
	if c.Mode() != ModeFull {
		t.Fatalf("clean warmup should hold ModeFull, got %v", c.Mode())
	}
	// A single typed rejection forces a downgrade at the next dwell-eligible
	// tick even though the miss EWMA is still near zero.
	c.Tick(1100*time.Millisecond, Signals{Frames: 10, Misses: 1, Rejections: 1})
	if c.Mode() != ModeFeatures {
		t.Fatalf("server rejection: want ModeFeatures, got %v", c.Mode())
	}
}

func TestProbeEscapesSkip(t *testing.T) {
	c := NewController(Config{})
	now := time.Duration(0)
	step := 100 * time.Millisecond
	for c.Mode() != ModeSkip {
		c.Tick(now, Signals{Frames: 10, Misses: 10})
		now += step
	}
	// In skip nothing ships: zero frames, zero evidence. The probe must
	// still lift the mode within ProbeAfter.
	deadline := now + 6*time.Second
	for now < deadline && c.Mode() == ModeSkip {
		c.Tick(now, Signals{})
		now += step
	}
	if c.Mode() == ModeSkip {
		t.Fatal("controller stuck in ModeSkip with no samples; probe never fired")
	}
	var probed bool
	for _, d := range c.Decisions() {
		if d.Probe {
			probed = true
		}
	}
	if !probed {
		t.Fatal("escape from skip was not recorded as a probe decision")
	}
}

func TestMinDwellBoundsSwitchRate(t *testing.T) {
	// Alternate violently between all-miss and all-hit every tick; the
	// dwell/sustain guards must keep switches far below the naive rate.
	mk := func(cfg Config) int64 {
		c := NewController(cfg)
		for i := 0; i < 200; i++ {
			s := Signals{SRTT: 20 * time.Millisecond, Frames: 10}
			if i%2 == 0 {
				s.Misses = 10
			}
			c.Tick(time.Duration(i)*100*time.Millisecond, s)
		}
		return c.Switches()
	}
	guarded := mk(Config{})
	naive := mk(Config{NoHysteresis: true})
	// 20s at MinDwell 500ms admits at most 40 switches; the EWMA plus
	// sustain requirement keeps the real number lower still.
	if guarded > 20 {
		t.Fatalf("guarded controller switched %d times in 20s", guarded)
	}
	if naive < 4*guarded {
		t.Fatalf("control experiment: naive (%d) should oscillate far more than guarded (%d)", naive, guarded)
	}
}

func TestDeterministicDecisionTrace(t *testing.T) {
	run := func() (uint64, []Decision) {
		c := NewController(Config{})
		for i := 0; i < 150; i++ {
			s := Signals{SRTT: time.Duration(20+i%30) * time.Millisecond, Loss: float64(i%10) / 50, Frames: 10, Misses: i % 11}
			c.Tick(time.Duration(i)*100*time.Millisecond, s)
		}
		return c.DecisionHash(), c.Decisions()
	}
	h1, d1 := run()
	h2, d2 := run()
	if h1 != h2 {
		t.Fatalf("same ticks, different hashes: %x vs %x", h1, h2)
	}
	if len(d1) != len(d2) {
		t.Fatalf("trace lengths differ: %d vs %d", len(d1), len(d2))
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("decision %d differs: %+v vs %+v", i, d1[i], d2[i])
		}
	}
}

func TestPlanRepair(t *testing.T) {
	// Monotone in loss: more loss never needs fewer repair shards.
	prev := 0
	for _, loss := range []float64{0, 1e-4, 1e-3, 0.01, 0.05, 0.1, 0.2, 0.5, 1} {
		m := PlanRepair(8, 8, loss, 1e-3)
		if m < prev {
			t.Fatalf("PlanRepair not monotone: loss=%v gave m=%d after m=%d", loss, m, prev)
		}
		prev = m
	}
	// The chosen m actually meets the target (when it can), and m-1 does not.
	for _, loss := range []float64{0.005, 0.02, 0.08} {
		m := PlanRepair(8, 16, loss, 1e-3)
		if got := fec.ResidualLoss(8, m, loss); got > 1e-3 {
			t.Fatalf("loss=%v m=%d residual %v > target", loss, m, got)
		}
		if m > 0 {
			if got := fec.ResidualLoss(8, m-1, loss); got <= 1e-3 {
				t.Fatalf("loss=%v: m=%d not minimal, m-1 residual %v", loss, m, got)
			}
		}
	}
	// Cap respected under hopeless loss.
	if m := PlanRepair(8, 4, 0.9, 1e-3); m != 4 {
		t.Fatalf("hopeless loss should pin at maxM, got %d", m)
	}
	if m := PlanRepair(0, 4, 0.5, 1e-3); m != 0 {
		t.Fatalf("k=0 must plan nothing, got %d", m)
	}
}

func TestPolicyEncodeRoundTrip(t *testing.T) {
	cases := []struct {
		p    Policy
		tick uint32
	}{
		{Policy{Mode: ModeFull, Retransmit: true}, 0},
		{Policy{Mode: ModeFeatures, K: 8, M: 2}, 7},
		{Policy{Mode: ModeTracking, K: 10, M: 4}, 1 << 30},
		{Policy{Mode: ModeSkip, Retransmit: true}, math.MaxUint32},
	}
	for _, tc := range cases {
		b := EncodePolicy(tc.p, tc.tick)
		if len(b) != PolicyLen {
			t.Fatalf("encoded %d bytes, want %d", len(b), PolicyLen)
		}
		got, tick, err := DecodePolicy(append(b, 0xAA, 0xBB)) // trailing payload ignored
		if err != nil {
			t.Fatalf("decode %+v: %v", tc.p, err)
		}
		if got != tc.p || tick != tc.tick {
			t.Fatalf("round trip: sent %+v/%d got %+v/%d", tc.p, tc.tick, got, tick)
		}
	}
}

func TestPolicyDecodeRejectsGarbage(t *testing.T) {
	bad := [][]byte{
		nil,
		{1, 0, 1},                        // short
		{2, 0, 1, 0, 0, 0, 0, 0, 0},      // unknown version
		{1, 9, 1, 0, 0, 0, 0, 0, 0},      // mode off the ladder
		{1, 0, 0xFF, 0, 0, 0, 0, 0, 0},   // unknown flags
		{1, 0, 1, 8, 2, 0, 0, 0, 0},      // shards under ARQ
		{1, 1, 0, 0, 3, 0, 0, 0, 0},      // repair shards without data shards
		{1, 1, 0, 200, 100, 0, 0, 0, 0},  // k+m > 255
		{1, byte(ModeSkip), 0, 8, 1, 0, 0, 0, 0}, // shards in skip mode
	}
	for i, b := range bad {
		if _, _, err := DecodePolicy(b); err == nil {
			t.Fatalf("case %d: decode accepted garbage %v", i, b)
		}
	}
}

func TestPublishMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewController(Config{})
	c.PublishMetrics(reg, obs.L("client", "t"))
	for i := 0; i < 40; i++ {
		c.Tick(time.Duration(i)*100*time.Millisecond, Signals{Frames: 10, Misses: 10})
	}
	if p, ok := reg.Lookup("mar_adapt_mode", obs.L("client", "t")); !ok || p.Value != float64(ModeSkip) {
		t.Fatalf("mode gauge: %+v ok=%v", p, ok)
	}
	if p, ok := reg.Lookup("mar_adapt_mode_switches_total", obs.L("client", "t")); !ok || p.Value < 3 {
		t.Fatalf("switch counter: %+v ok=%v", p, ok)
	}
	// Dwell histograms observed on departure: full/features/tracking were
	// all left at least once.
	for _, mode := range []Mode{ModeFull, ModeFeatures, ModeTracking} {
		pt, ok := reg.Lookup("mar_adapt_mode_dwell_ns", obs.L("client", "t"), obs.L("mode", mode.String()))
		if !ok || pt.Hist.Count < 1 {
			t.Fatalf("dwell histogram for %v missing or empty: %+v ok=%v", mode, pt, ok)
		}
	}
}
