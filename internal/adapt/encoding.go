package adapt

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// The policy control message is the compact header a client prepends to
// offload requests so the server (and any relay) can see what degradation
// rung and recovery scheme the payload was shipped under — the server's
// service model charges mode-dependent compute from it, and tooling can
// reconstruct a decision trace from captured traffic.
//
// Layout (PolicyLen bytes, little-endian):
//
//	[0]   version (policyVersion)
//	[1]   mode
//	[2]   flags (bit 0: retransmit)
//	[3]   K data shards (0 under ARQ)
//	[4]   M repair shards (0 under ARQ)
//	[5:9] tick (uint32): the controller tick that produced the policy
const (
	policyVersion = 1
	// PolicyLen is the fixed encoded size of a policy control message.
	PolicyLen = 9

	flagRetransmit = 1 << 0
)

// ErrBadPolicy reports a malformed or internally inconsistent policy
// control message.
var ErrBadPolicy = errors.New("adapt: malformed policy message")

// AppendPolicy appends the canonical encoding of p to dst and returns the
// extended slice.
func AppendPolicy(dst []byte, p Policy, tick uint32) []byte {
	return encodePolicyInto(dst, p, tick)
}

// EncodePolicy returns the canonical PolicyLen-byte encoding of p.
func EncodePolicy(p Policy, tick uint32) []byte {
	return encodePolicyInto(make([]byte, 0, PolicyLen), p, tick)
}

func encodePolicyInto(dst []byte, p Policy, tick uint32) []byte {
	var flags byte
	if p.Retransmit {
		flags |= flagRetransmit
	}
	dst = append(dst, policyVersion, byte(p.Mode), flags, byte(p.K), byte(p.M))
	return binary.LittleEndian.AppendUint32(dst, tick)
}

// DecodePolicy parses a policy control message from the front of b,
// validating every invariant the encoder maintains: known version, a mode
// on the ladder, no unknown flags, and FEC parameters that describe a
// real code (K≥1 with K+M≤255 under FEC, K=M=0 under ARQ). Extra bytes
// after the header are the caller's payload and are ignored.
func DecodePolicy(b []byte) (Policy, uint32, error) {
	if len(b) < PolicyLen {
		return Policy{}, 0, fmt.Errorf("%w: %d bytes, need %d", ErrBadPolicy, len(b), PolicyLen)
	}
	if b[0] != policyVersion {
		return Policy{}, 0, fmt.Errorf("%w: version %d", ErrBadPolicy, b[0])
	}
	mode := Mode(b[1])
	if mode > ModeSkip {
		return Policy{}, 0, fmt.Errorf("%w: mode %d", ErrBadPolicy, b[1])
	}
	flags := b[2]
	if flags&^byte(flagRetransmit) != 0 {
		return Policy{}, 0, fmt.Errorf("%w: flags %#x", ErrBadPolicy, flags)
	}
	p := Policy{
		Mode:       mode,
		Retransmit: flags&flagRetransmit != 0,
		K:          int(b[3]),
		M:          int(b[4]),
	}
	if p.Retransmit || p.Mode == ModeSkip {
		if p.K != 0 || p.M != 0 {
			return Policy{}, 0, fmt.Errorf("%w: FEC shards (%d,%d) without FEC", ErrBadPolicy, p.K, p.M)
		}
	} else {
		if p.K < 1 || p.K+p.M > 255 {
			return Policy{}, 0, fmt.Errorf("%w: shards k=%d m=%d", ErrBadPolicy, p.K, p.M)
		}
	}
	tick := binary.LittleEndian.Uint32(b[5:9])
	return p, tick, nil
}
