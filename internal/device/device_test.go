package device

import (
	"errors"
	"testing"
)

func TestTableShape(t *testing.T) {
	tab := Table()
	if len(tab) != 6 {
		t.Fatalf("Table I has %d rows, want 6", len(tab))
	}
	want := []string{"Smart glasses", "Smartphone", "Tablet PC", "Laptop PC", "Desktop PC", "Cloud computing"}
	for i, d := range tab {
		if d.Platform != want[i] {
			t.Errorf("row %d = %q, want %q", i, d.Platform, want[i])
		}
		if d.ComputeOps <= 0 {
			t.Errorf("%s: non-positive compute", d.Platform)
		}
		if len(d.NetworkAccess) == 0 {
			t.Errorf("%s: no network access", d.Platform)
		}
	}
}

func TestComputeMonotoneWithTable(t *testing.T) {
	tab := Table()
	for i := 1; i < len(tab); i++ {
		if tab[i].ComputeOps <= tab[i-1].ComputeOps {
			t.Errorf("compute should increase down Table I: %s (%v) <= %s (%v)",
				tab[i].Platform, tab[i].ComputeOps, tab[i-1].Platform, tab[i-1].ComputeOps)
		}
	}
}

func TestLookup(t *testing.T) {
	d, err := Lookup("smartphone")
	if err != nil {
		t.Fatal(err)
	}
	if d.Platform != "Smartphone" || !d.Mobile() {
		t.Errorf("lookup gave %+v", d)
	}
	if _, err := Lookup("mainframe"); !errors.Is(err, ErrUnknownDevice) {
		t.Errorf("err = %v, want ErrUnknownDevice", err)
	}
}

func TestMobileClassification(t *testing.T) {
	cloud, _ := Lookup("Cloud computing")
	if cloud.Mobile() {
		t.Error("cloud is not mobile")
	}
	glasses, _ := Lookup("Smart glasses")
	if !glasses.Mobile() {
		t.Error("glasses are mobile")
	}
}

func TestFormatting(t *testing.T) {
	glasses, _ := Lookup("Smart glasses")
	if got := glasses.StorageStr(); got != "4GB-16GB" {
		t.Errorf("storage = %q", got)
	}
	if got := glasses.BatteryStr(); got != "2-3h" {
		t.Errorf("battery = %q", got)
	}
	cloud, _ := Lookup("Cloud computing")
	if cloud.StorageStr() != "unlimited" || cloud.BatteryStr() != "unlimited" {
		t.Error("cloud should be unlimited")
	}
	laptop, _ := Lookup("Laptop PC")
	if got := laptop.StorageStr(); got != "128GB-2TB" {
		t.Errorf("laptop storage = %q", got)
	}
	if Level(99).String() != "unknown" {
		t.Error("unknown level string")
	}
	if LevelVeryLow.String() != "very low" || LevelUnlimited.String() != "unlimited" {
		t.Error("level strings wrong")
	}
}
