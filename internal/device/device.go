// Package device encodes Table I of the paper: the basic characteristics of
// the devices that participate in a MAR ecosystem, plus a normalized
// compute-capability model used by the offloading cost equations.
package device

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// ErrUnknownDevice is returned by Lookup for unknown platform names.
var ErrUnknownDevice = errors.New("device: unknown platform")

// Level is a coarse qualitative level used by Table I.
type Level int

// Qualitative levels.
const (
	LevelNone Level = iota + 1
	LevelVeryLow
	LevelLow
	LevelMedium
	LevelHigh
	LevelUnlimited
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelNone:
		return "none"
	case LevelVeryLow:
		return "very low"
	case LevelLow:
		return "low"
	case LevelMedium:
		return "medium"
	case LevelHigh:
		return "high"
	case LevelUnlimited:
		return "unlimited"
	default:
		return "unknown"
	}
}

// Device is one row of Table I.
type Device struct {
	Platform      string
	Computing     Level
	StorageMinGB  int // 0 = unlimited
	StorageMaxGB  int
	BatteryMin    time.Duration // 0 = unlimited
	BatteryMax    time.Duration
	NetworkAccess []string
	Portability   Level

	// ComputeOps is the normalized compute capacity (R_m / R_c in the
	// Section III equations), in abstract ops/s; a desktop PC is 1e9.
	ComputeOps float64
}

// Table returns Table I in the paper's column order.
func Table() []Device {
	return []Device{
		{
			Platform: "Smart glasses", Computing: LevelVeryLow,
			StorageMinGB: 4, StorageMaxGB: 16,
			BatteryMin: 2 * time.Hour, BatteryMax: 3 * time.Hour,
			NetworkAccess: []string{"Bluetooth"}, Portability: LevelHigh,
			ComputeOps: 2e7,
		},
		{
			Platform: "Smartphone", Computing: LevelLow,
			StorageMinGB: 16, StorageMaxGB: 128,
			BatteryMin: 6 * time.Hour, BatteryMax: 8 * time.Hour,
			NetworkAccess: []string{"Cellular", "WiFi"}, Portability: LevelHigh,
			ComputeOps: 1e8,
		},
		{
			Platform: "Tablet PC", Computing: LevelMedium,
			StorageMinGB: 32, StorageMaxGB: 256,
			BatteryMin: 6 * time.Hour, BatteryMax: 8 * time.Hour,
			NetworkAccess: []string{"Cellular", "WiFi"}, Portability: LevelMedium,
			ComputeOps: 2.5e8,
		},
		{
			Platform: "Laptop PC", Computing: LevelMedium,
			StorageMinGB: 128, StorageMaxGB: 2048,
			BatteryMin: 2 * time.Hour, BatteryMax: 8 * time.Hour,
			NetworkAccess: []string{"Cellular", "WiFi", "Ethernet"}, Portability: LevelMedium,
			ComputeOps: 5e8,
		},
		{
			Platform: "Desktop PC", Computing: LevelHigh,
			StorageMinGB: 512, StorageMaxGB: 2048,
			NetworkAccess: []string{"WiFi", "Ethernet"}, Portability: LevelNone,
			ComputeOps: 1e9,
		},
		{
			Platform: "Cloud computing", Computing: LevelUnlimited,
			NetworkAccess: []string{"Ethernet", "Fiber Optic"}, Portability: LevelNone,
			ComputeOps: 2e10,
		},
	}
}

// Lookup finds a Table I row by platform name (case-insensitive).
func Lookup(platform string) (Device, error) {
	for _, d := range Table() {
		if strings.EqualFold(d.Platform, platform) {
			return d, nil
		}
	}
	return Device{}, fmt.Errorf("%w: %q", ErrUnknownDevice, platform)
}

// Mobile reports whether the device can run a MAR application on the go
// (portability at least medium).
func (d Device) Mobile() bool { return d.Portability >= LevelMedium }

// StorageStr formats the storage column as in Table I.
func (d Device) StorageStr() string {
	if d.StorageMinGB == 0 {
		return "unlimited"
	}
	fmtGB := func(gb int) string {
		if gb >= 1024 {
			return fmt.Sprintf("%dTB", gb/1024)
		}
		return fmt.Sprintf("%dGB", gb)
	}
	return fmtGB(d.StorageMinGB) + "-" + fmtGB(d.StorageMaxGB)
}

// BatteryStr formats the battery column as in Table I.
func (d Device) BatteryStr() string {
	if d.BatteryMin == 0 {
		return "unlimited"
	}
	return fmt.Sprintf("%d-%dh", int(d.BatteryMin.Hours()), int(d.BatteryMax.Hours()))
}
