package core

import (
	"math/rand"
	"testing"
	"time"
)

// TestMultipathChurnNeverStarves flaps paths administratively down and up
// in a seeded pattern while Pick is called continuously: as long as at
// least one path is up, Pick must return a non-empty path set for every
// traffic class — handover churn must never silence the sender.
func TestMultipathChurnNeverStarves(t *testing.T) {
	wifi := &Path{ID: 1, Weight: 2}
	lte := &Path{ID: 2, Weight: 1}
	m := NewMultipath(wifi, lte)
	m.DownAfter = 100 * time.Millisecond

	rng := rand.New(rand.NewSource(7))
	kinds := []struct {
		prio  Priority
		class Class
	}{
		{PrioHighest, ClassCritical},
		{PrioHighest, ClassLossRecovery},
		{PrioNoDelay, ClassFullBestEffort},
		{PrioLowest, ClassFullBestEffort},
	}
	now := time.Duration(0)
	for step := 0; step < 5000; step++ {
		now += time.Millisecond
		// Flap one of the paths; never both down at once.
		switch rng.Intn(4) {
		case 0:
			wifi.SetDown(true)
			lte.SetDown(false)
		case 1:
			lte.SetDown(true)
			wifi.SetDown(false)
		case 2:
			wifi.SetDown(false)
			lte.SetDown(false)
		case 3:
			// Leave as is.
		}
		// Keep the scheduler fed with acks now and then so RTT state and
		// outstanding accounting churn too.
		if step%7 == 0 {
			up := wifi
			if wifi.forcedDown {
				up = lte
			}
			up.outstanding++
			up.onAck(now, 20*time.Millisecond)
		}
		k := kinds[step%len(kinds)]
		got := m.Pick(now, k.prio, k.class, 1200)
		if len(got) == 0 {
			t.Fatalf("step %d: Pick returned no path with wifi.down=%v lte.down=%v",
				step, wifi.forcedDown, lte.forcedDown)
		}
		for _, p := range got {
			if p.forcedDown {
				t.Fatalf("step %d: Pick chose an administratively-down path %d", step, p.ID)
			}
		}
	}
}

// TestMultipathFailsOverWithinProbeInterval: a path that goes silent with
// data outstanding must be abandoned within one DownAfter interval — the
// next Pick after the silence threshold lands on the backup.
func TestMultipathFailsOverWithinProbeInterval(t *testing.T) {
	wifi := &Path{ID: 1}
	lte := &Path{ID: 2}
	m := NewMultipath(wifi, lte)
	m.DownAfter = 100 * time.Millisecond

	// Healthy traffic on wifi until t=50ms.
	now := 50 * time.Millisecond
	wifi.outstanding++
	wifi.onAck(now, 10*time.Millisecond)
	if got := m.Pick(now, PrioNoDelay, ClassFullBestEffort, 1200); len(got) != 1 || got[0] != wifi {
		t.Fatalf("healthy pick = %v, want wifi", got)
	}

	// Wifi goes silent with packets in flight.
	for i := 0; i < 5; i++ {
		wifi.outstanding++
	}
	lastAck := now
	for now = lastAck; now <= lastAck+m.DownAfter+time.Millisecond; now += 10 * time.Millisecond {
		got := m.Pick(now, PrioNoDelay, ClassFullBestEffort, 1200)
		if len(got) == 0 {
			t.Fatalf("no path at t=%v", now)
		}
		if now-lastAck >= m.DownAfter && got[0] != lte {
			t.Fatalf("t=%v (silence %v >= DownAfter %v): still picking path %d",
				now, now-lastAck, m.DownAfter, got[0].ID)
		}
	}

	// And once the dead path acks again (e.g. the probe got through), it
	// becomes eligible immediately.
	wifi.onAck(now, 10*time.Millisecond)
	wifi.outstanding = 0
	if got := m.Pick(now, PrioNoDelay, ClassFullBestEffort, 1200); len(got) != 1 || got[0] != wifi {
		t.Fatalf("recovered pick = %v, want wifi again", got)
	}
}
