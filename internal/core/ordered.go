package core

import "sort"

// OrderedDelivery provides reliable in-order delivery semantics for a
// ClassCritical stream on top of a Receiver: arriving packets are buffered
// until their predecessors have been delivered, then released in sequence
// order. The paper defines the critical class exactly so — "reliable
// in-order delivery is preferable to latency".
//
// Attach it with Receiver.SetOrdered before traffic starts.
type OrderedDelivery struct {
	next    int64
	pending map[int64]DataHdr
	deliver func(hdr DataHdr)

	// Released counts in-order deliveries to the application.
	Released int64
	// MaxBuffered tracks the high-water mark of the reorder buffer.
	MaxBuffered int
}

// NewOrderedDelivery wraps an application callback with reordering.
func NewOrderedDelivery(deliver func(hdr DataHdr)) *OrderedDelivery {
	return &OrderedDelivery{pending: make(map[int64]DataHdr), deliver: deliver}
}

// Offer accepts one (possibly out-of-order) packet header and releases all
// newly contiguous packets.
func (o *OrderedDelivery) Offer(hdr DataHdr) {
	if hdr.Seq < o.next || hdr.Repair {
		return // duplicate of released data, or FEC repair metadata
	}
	o.pending[hdr.Seq] = hdr
	if len(o.pending) > o.MaxBuffered {
		o.MaxBuffered = len(o.pending)
	}
	for {
		h, ok := o.pending[o.next]
		if !ok {
			return
		}
		delete(o.pending, o.next)
		o.next++
		o.Released++
		o.deliver(h)
	}
}

// Buffered reports how many packets wait for a predecessor.
func (o *OrderedDelivery) Buffered() int { return len(o.pending) }

// Gaps returns the sequence numbers blocking delivery, in ascending order
// (diagnostic: these are the holes retransmission is expected to fill).
func (o *OrderedDelivery) Gaps() []int64 {
	if len(o.pending) == 0 {
		return nil
	}
	max := o.next
	for seq := range o.pending {
		if seq > max {
			max = seq
		}
	}
	var gaps []int64
	for seq := o.next; seq <= max; seq++ {
		if _, ok := o.pending[seq]; !ok {
			gaps = append(gaps, seq)
		}
	}
	sort.Slice(gaps, func(i, j int) bool { return gaps[i] < gaps[j] })
	return gaps
}

// SetOrdered attaches ordered delivery to one stream of the receiver:
// every in-time data arrival on that stream is offered to the reorder
// buffer, and the application callback fires in strict sequence order.
// It must be called before traffic arrives and composes with OnDeliver
// (which keeps firing in arrival order for other streams).
func (r *Receiver) SetOrdered(streamID int, deliver func(hdr DataHdr)) *OrderedDelivery {
	od := NewOrderedDelivery(deliver)
	prev := r.cfg.OnDeliver
	r.cfg.OnDeliver = func(stream int, hdr DataHdr) {
		if stream == streamID {
			od.Offer(hdr)
			return
		}
		if prev != nil {
			prev(stream, hdr)
		}
	}
	return od
}
