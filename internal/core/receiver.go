package core

import (
	"time"

	"marnet/internal/simnet"
	"marnet/internal/trace"
)

// ReceiverConfig configures an ARTP receiver.
type ReceiverConfig struct {
	Local, Peer simnet.Addr
	FlowID      uint64
	// AckPath maps a path ID to the reverse handler used to send control
	// packets back over the same path. DefaultOut is used for unknown
	// paths.
	AckPath    map[int]simnet.Handler
	DefaultOut simnet.Handler
	// ReorderWait is how long the receiver waits after detecting a gap
	// before NACKing it (absorbs reordering; default 5 ms).
	ReorderWait time.Duration
	// OnDeliver, when set, is invoked for every in-time data delivery.
	OnDeliver func(stream int, hdr DataHdr)
}

// RStream aggregates receiver-side state and statistics for one stream.
type RStream struct {
	expected int64
	received map[int64]bool
	nacked   map[int64]int
	groups   map[int64]*fecGroupState

	Delivered   int64 // in-time data packets
	Late        int64 // data that arrived after its deadline
	Duplicates  int64
	Recovered   int64 // holes repaired by FEC group completion
	Latency     trace.DurStats
	GoodputRate *trace.Throughput // optional
}

type fecGroupState struct {
	k, m     int
	got      map[int]bool
	complete bool
}

// Receiver is the ARTP receiving endpoint: it acks every packet (the ack
// carries the echoed send timestamp that drives the delay-based congestion
// controller), NACKs gaps on reliable streams, and performs FEC group
// accounting.
type Receiver struct {
	sim     *simnet.Sim
	cfg     ReceiverConfig
	streams map[int]*RStream

	Acked int64
	Nacks int64
}

// NewReceiver builds a receiver.
func NewReceiver(sim *simnet.Sim, cfg ReceiverConfig) *Receiver {
	if cfg.ReorderWait <= 0 {
		cfg.ReorderWait = 5 * time.Millisecond
	}
	return &Receiver{sim: sim, cfg: cfg, streams: make(map[int]*RStream)}
}

// Stream returns the receiver state for a stream id (creating it lazily, so
// statistics are available even for streams that lost their first packets).
func (r *Receiver) Stream(id int) *RStream {
	st, ok := r.streams[id]
	if !ok {
		st = &RStream{
			received: make(map[int64]bool),
			nacked:   make(map[int64]int),
			groups:   make(map[int64]*fecGroupState),
		}
		r.streams[id] = st
	}
	return st
}

func (r *Receiver) out(pathID int) simnet.Handler {
	if h, ok := r.cfg.AckPath[pathID]; ok {
		return h
	}
	return r.cfg.DefaultOut
}

// Handle consumes data packets.
func (r *Receiver) Handle(pkt *simnet.Packet) {
	if pkt.Kind != KindData {
		return
	}
	hdr, ok := pkt.Payload.(DataHdr)
	if !ok {
		return
	}
	now := r.sim.Now()
	st := r.Stream(hdr.Stream)

	// Ack everything (including repair packets) for RTT and path liveness.
	r.ack(hdr)

	if hdr.FECGroup != 0 {
		r.fecAccount(st, hdr)
	}
	if hdr.Repair {
		return
	}

	if st.received[hdr.Seq] {
		st.Duplicates++
		return
	}
	st.received[hdr.Seq] = true

	if hdr.Deadline > 0 && now > hdr.Deadline {
		st.Late++
	} else {
		st.Delivered++
		st.Latency.Observe(now - pkt.Created)
		if st.GoodputRate != nil {
			st.GoodputRate.Record(now, hdr.AppBytes)
		}
		if r.cfg.OnDeliver != nil {
			r.cfg.OnDeliver(hdr.Stream, hdr)
		}
	}

	// Gap detection for reliable classes: if this packet jumps ahead of
	// expected, schedule a NACK for the holes after the reorder wait.
	if hdr.Seq >= st.expected {
		if hdr.Seq > st.expected {
			r.scheduleNack(hdr.Stream, st, st.expected, hdr.Seq, hdr.PathID)
		}
		st.expected = hdr.Seq + 1
	}
	// Trim state below the contiguity frontier.
	r.trim(st)
}

func (r *Receiver) trim(st *RStream) {
	for seq := range st.received {
		if seq < st.expected-1024 {
			delete(st.received, seq)
		}
	}
}

func (r *Receiver) ack(hdr DataHdr) {
	ackPkt := &simnet.Packet{
		ID:      r.sim.NextPacketID(),
		Src:     r.cfg.Local,
		Dst:     r.cfg.Peer,
		Flow:    r.cfg.FlowID,
		Size:    AckSize,
		Kind:    KindAck,
		Created: r.sim.Now(),
		Payload: AckHdr{
			Stream:   hdr.Stream,
			Seq:      hdr.Seq,
			PathID:   hdr.PathID,
			EchoSend: hdr.SendTime,
		},
	}
	r.Acked++
	r.out(hdr.PathID).Handle(ackPkt)
}

// scheduleNack collects the missing range [from, to) and reports whatever
// is still missing (and not FEC-recovered) after the reorder wait.
func (r *Receiver) scheduleNack(streamID int, st *RStream, from, to int64, pathID int) {
	missing := make([]int64, 0, to-from)
	for seq := from; seq < to; seq++ {
		if !st.received[seq] && st.nacked[seq] < 2 {
			missing = append(missing, seq)
		}
	}
	if len(missing) == 0 {
		return
	}
	r.sim.Schedule(r.cfg.ReorderWait, func() {
		still := missing[:0]
		for _, seq := range missing {
			if !st.received[seq] && st.nacked[seq] < 2 {
				st.nacked[seq]++
				still = append(still, seq)
			}
		}
		if len(still) == 0 {
			return
		}
		nack := &simnet.Packet{
			ID:      r.sim.NextPacketID(),
			Src:     r.cfg.Local,
			Dst:     r.cfg.Peer,
			Flow:    r.cfg.FlowID,
			Size:    NackSize,
			Kind:    KindNack,
			Created: r.sim.Now(),
			Payload: NackHdr{Stream: streamID, Missing: append([]int64(nil), still...)},
		}
		r.Nacks++
		r.out(pathID).Handle(nack)
	})
}

// fecAccount tracks group completeness: once any K of the K+M symbols of a
// group have arrived, every hole in the group is recoverable without
// retransmission; we count those recoveries and mark the data as received
// so it is never NACKed.
func (r *Receiver) fecAccount(st *RStream, hdr DataHdr) {
	g, ok := st.groups[hdr.FECGroup]
	if !ok {
		g = &fecGroupState{k: hdr.FECK, m: hdr.FECM, got: make(map[int]bool)}
		st.groups[hdr.FECGroup] = g
	}
	g.got[hdr.FECIndex] = true
	if g.complete || len(g.got) < g.k {
		return
	}
	g.complete = true
	// Data symbols of this group have indexes 0..k-1 and occupy consecutive
	// stream sequence numbers ending at hdr's data seq alignment. Recover
	// any data index not directly received. A recovered hole only counts as
	// an in-time delivery if the completing packet's deadline has not
	// passed (the hole's own deadline is at least as old, so this is the
	// optimistic bound by at most one FEC group of slack).
	inTime := hdr.Deadline == 0 || r.sim.Now() <= hdr.Deadline
	base := (hdr.FECGroup - 1) * int64(g.k)
	for idx := 0; idx < g.k; idx++ {
		seq := base + int64(idx)
		if !st.received[seq] {
			st.received[seq] = true
			st.Recovered++
			if inTime {
				st.Delivered++
			} else {
				st.Late++
			}
		}
	}
	if base+int64(g.k) > st.expected {
		st.expected = base + int64(g.k)
	}
	// Forget old groups to bound memory.
	for id := range st.groups {
		if id < hdr.FECGroup-64 {
			delete(st.groups, id)
		}
	}
}
