package core

import (
	"testing"
	"time"

	"marnet/internal/simnet"
)

func TestClassAndPriorityStrings(t *testing.T) {
	cases := map[string]string{
		ClassFullBestEffort.String(): "full-best-effort",
		ClassLossRecovery.String():   "best-effort+recovery",
		ClassCritical.String():       "critical",
		Class(99).String():           "unknown-class",
		PrioHighest.String():         "highest",
		PrioNoDiscard.String():       "no-discard",
		PrioNoDelay.String():         "no-delay",
		PrioLowest.String():          "lowest",
		Priority(0).String():         "unknown-priority",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("got %q, want %q", got, want)
		}
	}
	if PrioHighest.Discardable() || PrioNoDiscard.Discardable() {
		t.Error("highest/no-discard must not be discardable")
	}
	if !PrioNoDelay.Discardable() || !PrioLowest.Discardable() {
		t.Error("no-delay/lowest must be discardable")
	}
	if PrioHighest.Band() != 0 || PrioLowest.Band() != 3 {
		t.Error("band mapping wrong")
	}
}

func TestMultipathFailoverOrder(t *testing.T) {
	wifi := &Path{ID: 1, Out: &simnet.Sink{}, Weight: 10}
	lte := &Path{ID: 2, Out: &simnet.Sink{}, Weight: 5}
	m := NewMultipath(wifi, lte)

	got := m.Pick(0, PrioLowest, ClassFullBestEffort, 1000)
	if len(got) != 1 || got[0] != wifi {
		t.Fatalf("failover should use preferred path, got %v", got)
	}
	wifi.SetDown(true)
	got = m.Pick(0, PrioLowest, ClassFullBestEffort, 1000)
	if len(got) != 1 || got[0] != lte {
		t.Fatalf("failover should fall back to LTE, got %v", got)
	}
	lte.SetDown(true)
	if got := m.Pick(0, PrioLowest, ClassFullBestEffort, 1000); got != nil {
		t.Fatalf("no paths available should return nil, got %v", got)
	}
}

func TestMultipathCriticalUsesMinRTT(t *testing.T) {
	a := &Path{ID: 1, Out: &simnet.Sink{}}
	b := &Path{ID: 2, Out: &simnet.Sink{}}
	a.onAck(time.Second, 50*time.Millisecond)
	b.onAck(time.Second, 10*time.Millisecond)
	m := NewMultipath(a, b)
	got := m.Pick(time.Second, PrioHighest, ClassCritical, 100)
	if len(got) != 1 || got[0] != b {
		t.Fatalf("critical should ride min-RTT path, got %v", got)
	}
}

func TestMultipathDuplicateCritical(t *testing.T) {
	a := &Path{ID: 1, Out: &simnet.Sink{}}
	b := &Path{ID: 2, Out: &simnet.Sink{}}
	a.onAck(time.Second, 10*time.Millisecond)
	b.onAck(time.Second, 50*time.Millisecond)
	m := NewMultipath(a, b)
	m.DuplicateCritical = true
	got := m.Pick(time.Second, PrioHighest, ClassCritical, 100)
	if len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("expected duplication on both paths, got %v", got)
	}
}

func TestMultipathSpreadWeights(t *testing.T) {
	a := &Path{ID: 1, Out: &simnet.Sink{}, Weight: 3}
	b := &Path{ID: 2, Out: &simnet.Sink{}, Weight: 1}
	m := NewMultipath(a, b)
	m.Policy = PolicySpread
	counts := map[int]int{}
	for i := 0; i < 4000; i++ {
		got := m.Pick(0, PrioLowest, ClassFullBestEffort, 1000)
		counts[got[0].ID]++
	}
	ratio := float64(counts[1]) / float64(counts[2])
	if ratio < 2.5 || ratio > 3.5 {
		t.Errorf("spread ratio = %v (counts %v), want ~3", ratio, counts)
	}
}

func TestPathSilenceDetection(t *testing.T) {
	p := &Path{ID: 1, Out: &simnet.Sink{}}
	if !p.Available(0, 500*time.Millisecond) {
		t.Error("fresh path should be available")
	}
	p.outstanding = 5
	p.lastAck = time.Second
	if !p.Available(time.Second+400*time.Millisecond, 500*time.Millisecond) {
		t.Error("path within silence window should be available")
	}
	if p.Available(time.Second+600*time.Millisecond, 500*time.Millisecond) {
		t.Error("silent path with outstanding data should be down")
	}
	// An ack revives it.
	p.onAck(2*time.Second, 20*time.Millisecond)
	if !p.Available(2*time.Second+100*time.Millisecond, 500*time.Millisecond) {
		t.Error("acked path should be available again")
	}
}

func TestPathNeverAckedBlackholeLimit(t *testing.T) {
	p := &Path{ID: 1, Out: &simnet.Sink{}}
	p.outstanding = 100 // piled up, never acked
	if p.Available(time.Second, 500*time.Millisecond) {
		t.Error("black-hole path should be unavailable")
	}
}

func TestMultipathFailoverEndToEnd(t *testing.T) {
	// Two paths to the same receiver; kill path 1 mid-run; traffic must
	// continue over path 2 and delivery must keep happening.
	sim := simnet.New(31)
	clientMux, serverMux := simnet.NewDemux(), simnet.NewDemux()
	up1 := simnet.NewLink(sim, 10e6, 5*time.Millisecond, serverMux)
	up2 := simnet.NewLink(sim, 5e6, 20*time.Millisecond, serverMux)
	down := simnet.NewLink(sim, 10e6, 5*time.Millisecond, clientMux)

	p1 := &Path{ID: 1, Out: up1, Weight: 10}
	p2 := &Path{ID: 2, Out: up2, Weight: 5}
	mp := NewMultipath(p1, p2)
	snd := NewSender(sim, SenderConfig{
		Local: 1, Peer: 2, FlowID: 1, Paths: mp, StartBudget: 2e6,
	})
	rcv := NewReceiver(sim, ReceiverConfig{
		Local: 2, Peer: 1, FlowID: 1, DefaultOut: down,
	})
	clientMux.Register(1, snd)
	serverMux.Register(2, rcv)

	st, _ := snd.AddStream(StreamConfig{
		Name: "data", Class: ClassFullBestEffort, Priority: PrioNoDiscard, Rate: 1e6,
	})
	sim.Schedule(2*time.Second, func() { p1.SetDown(true) })
	for i := 0; i < 400; i++ {
		i := i
		sim.Schedule(time.Duration(i)*10*time.Millisecond, func() { snd.Submit(st, 500) })
	}
	if err := sim.RunUntil(6 * time.Second); err != nil {
		t.Fatal(err)
	}
	snd.Stop()
	if p2.SentPackets == 0 {
		t.Error("fallback path carried nothing")
	}
	rs := rcv.Stream(st.ID)
	if rs.Delivered < 380 {
		t.Errorf("delivered %d/400 across failover", rs.Delivered)
	}
}
