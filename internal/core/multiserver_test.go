package core

import (
	"testing"
	"time"

	"marnet/internal/simnet"
)

// TestMultiServerDispatch reproduces Figure 5a at the protocol level: one
// sender, two servers. The latency-critical stream is dispatched to a
// nearby edge server over a fast path while the bulk stream rides to the
// cloud, each server acking independently.
func TestMultiServerDispatch(t *testing.T) {
	sim := simnet.New(51)
	clientMux := simnet.NewDemux()
	edgeMux, cloudMux := simnet.NewDemux(), simnet.NewDemux()

	// Two disjoint forward paths entered through one router keyed on the
	// packet destination.
	router := simnet.NewRouter()
	toEdge := simnet.NewLink(sim, 50e6, 3*time.Millisecond, edgeMux)
	toCloud := simnet.NewLink(sim, 20e6, 25*time.Millisecond, cloudMux)
	router.Route(10, toEdge)
	router.Route(20, toCloud)
	fromEdge := simnet.NewLink(sim, 50e6, 3*time.Millisecond, clientMux)
	fromCloud := simnet.NewLink(sim, 20e6, 25*time.Millisecond, clientMux)

	snd := NewSender(sim, SenderConfig{
		Local: 1, Peer: 20, FlowID: 1, // default peer: the cloud
		Paths:       NewMultipath(&Path{ID: 1, Out: router, Weight: 1}),
		StartBudget: 10e6,
	})
	edgeRcv := NewReceiver(sim, ReceiverConfig{
		Local: 10, Peer: 1, FlowID: 1, DefaultOut: fromEdge,
	})
	cloudRcv := NewReceiver(sim, ReceiverConfig{
		Local: 20, Peer: 1, FlowID: 1, DefaultOut: fromCloud,
	})
	clientMux.Register(1, snd)
	edgeMux.Register(10, edgeRcv)
	cloudMux.Register(20, cloudRcv)

	critical, err := snd.AddStream(StreamConfig{
		Name: "tracking", Class: ClassLossRecovery, Priority: PrioHighest,
		Rate: 2e6, Deadline: 75 * time.Millisecond,
		Peer: 10, // dispatched to the edge
	})
	if err != nil {
		t.Fatal(err)
	}
	bulk, err := snd.AddStream(StreamConfig{
		Name: "recognition", Class: ClassFullBestEffort, Priority: PrioNoDiscard,
		Rate: 3e6, // default peer: cloud
	})
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 200; i++ {
		i := i
		sim.Schedule(time.Duration(i)*10*time.Millisecond, func() {
			snd.Submit(critical, 500)
			snd.Submit(bulk, 1200)
		})
	}
	if err := sim.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	snd.Stop()

	edgeStats := edgeRcv.Stream(critical.ID)
	cloudStats := cloudRcv.Stream(bulk.ID)
	if edgeStats.Delivered != 200 {
		t.Errorf("edge received %d/200 critical packets", edgeStats.Delivered)
	}
	if cloudStats.Delivered < 195 {
		t.Errorf("cloud received %d/200 bulk packets", cloudStats.Delivered)
	}
	// No cross-delivery.
	if cloudRcv.Stream(critical.ID).Delivered != 0 {
		t.Error("critical stream leaked to the cloud")
	}
	if edgeRcv.Stream(bulk.ID).Delivered != 0 {
		t.Error("bulk stream leaked to the edge")
	}
	// The edge path's latency advantage shows in the deliveries.
	if edgeStats.Latency.Mean() >= cloudStats.Latency.Mean() {
		t.Errorf("edge latency %v not below cloud %v",
			edgeStats.Latency.Mean(), cloudStats.Latency.Mean())
	}
}
