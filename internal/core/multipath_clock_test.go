package core

import (
	"sync"
	"testing"
	"time"

	"marnet/internal/vclock"
)

// fakeClock is a hand-driven vclock.Clock for deterministic scheduler
// timelines (no timers needed here: Multipath is poll-driven).
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(5_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Since(t time.Time) time.Duration { return c.Now().Sub(t) }

func (c *fakeClock) AfterFunc(d time.Duration, fn func()) vclock.Timer {
	panic("multipath never arms timers")
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// TestMultipathClockInjectedDownDetection pins DownAfter detection to an
// injected clock: the same virtual timeline must produce the same
// availability verdicts, with no dependence on the wall clock.
func TestMultipathClockInjectedDownDetection(t *testing.T) {
	clock := newFakeClock()
	wifi := &Path{ID: 1}
	lte := &Path{ID: 2}
	m := NewMultipath(wifi, lte)
	m.DownAfter = 100 * time.Millisecond
	m.BindClock(clock)

	// Both paths acked recently: failover policy prefers wifi. (Advance
	// off t=0 first: lastAck==0 means "never acked" by convention.)
	clock.advance(1 * time.Millisecond)
	m.AckNow(wifi, 10*time.Millisecond)
	m.AckNow(lte, 40*time.Millisecond)
	got := m.PickNow(PrioNoDelay, ClassFullBestEffort, 1000)
	if len(got) != 1 || got[0] != wifi {
		t.Fatalf("want wifi preferred, got %v", got)
	}

	// Wifi goes silent with data outstanding. Advance virtual time just
	// short of DownAfter: still available.
	wifi.outstanding = 3
	clock.advance(99 * time.Millisecond)
	if paths := m.AvailableNow(); len(paths) != 2 {
		t.Fatalf("at +99ms want both paths available, got %d", len(paths))
	}
	// One more millisecond crosses the threshold — deterministically.
	clock.advance(1 * time.Millisecond)
	paths := m.AvailableNow()
	if len(paths) != 1 || paths[0] != lte {
		t.Fatalf("at +100ms want only lte, got %v", paths)
	}
	got = m.PickNow(PrioNoDelay, ClassFullBestEffort, 1000)
	if len(got) != 1 || got[0] != lte {
		t.Fatalf("after silence want lte, got %v", got)
	}

	// An ack at virtual time revives wifi instantly.
	m.AckNow(wifi, 12*time.Millisecond)
	if paths := m.AvailableNow(); len(paths) != 2 {
		t.Fatalf("after revival want both paths, got %d", len(paths))
	}

	// Critical traffic pins to the lowest-SRTT live path under the same
	// injected timeline.
	got = m.PickNow(PrioHighest, ClassCritical, 200)
	if len(got) != 1 || got[0] != wifi {
		t.Fatalf("critical should pin to wifi (lowest SRTT), got %v", got)
	}
}

// TestMultipathNowLazyBinding covers the legacy path: without BindClock
// the *Now variants bind the system clock on first use instead of
// misbehaving.
func TestMultipathNowLazyBinding(t *testing.T) {
	wifi := &Path{ID: 1}
	m := NewMultipath(wifi)
	if got := m.PickNow(PrioHighest, ClassCritical, 100); len(got) != 1 || got[0] != wifi {
		t.Fatalf("lazy-bound pick failed: %v", got)
	}
	if m.clock == nil {
		t.Fatal("first *Now call should have bound a clock")
	}
}
