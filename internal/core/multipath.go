package core

import (
	"time"

	"marnet/internal/simnet"
	"marnet/internal/vclock"
)

// Path is one usable network path (e.g. the WiFi uplink or the LTE uplink).
// The sender stamps packets with the path ID; acks echo it back so each
// path keeps its own RTT estimate and liveness state.
type Path struct {
	ID  int
	Out simnet.Handler
	// Weight is the relative capacity share used by spread scheduling.
	Weight float64
	// CostPerByte lets policies prefer cheap paths (LTE data is expensive
	// for the user — Section VI-D).
	CostPerByte float64

	srtt        time.Duration
	baseRTT     time.Duration // minimum RTT observed on this path
	lastAck     time.Duration
	outstanding int
	forcedDown  bool
	deficit     float64

	SentPackets  int64
	SentBytes    int64
	AckedPackets int64
}

// SRTT reports the path's smoothed RTT (0 until the first ack).
func (p *Path) SRTT() time.Duration { return p.srtt }

// BaseRTT reports the minimum RTT observed on the path.
func (p *Path) BaseRTT() time.Duration { return p.baseRTT }

// SetDown forces the path administratively down (or back up). Bringing a
// path back up clears its stale in-flight accounting: everything sent into
// the outage is written off so the path is immediately usable again rather
// than stuck "silent with outstanding data".
func (p *Path) SetDown(down bool) {
	p.forcedDown = down
	if !down {
		p.outstanding = 0
	}
}

// onAck updates RTT and liveness.
func (p *Path) onAck(now time.Duration, rtt time.Duration) {
	p.lastAck = now
	p.AckedPackets++
	if p.outstanding > 0 {
		p.outstanding--
	}
	if p.baseRTT == 0 || rtt < p.baseRTT {
		p.baseRTT = rtt
	}
	if p.srtt == 0 {
		p.srtt = rtt
	} else {
		p.srtt = (7*p.srtt + rtt) / 8
	}
}

// Available reports whether the path may carry traffic: not forced down and
// not silent-with-outstanding-data for longer than downAfter.
func (p *Path) Available(now, downAfter time.Duration) bool {
	if p.forcedDown {
		return false
	}
	if p.outstanding == 0 {
		return true
	}
	ref := p.lastAck
	if ref == 0 {
		// Never acked: give it downAfter from the first outstanding send.
		return p.outstanding < 64 // stop piling onto a black hole
	}
	return now-ref < downAfter
}

// Policy selects how non-critical traffic spreads over paths.
type Policy int

// Policies corresponding to the three behaviours of Section VI-D.
const (
	// PolicyFailover uses the first available path in preference order
	// ("WiFi all the time, 4G for handover").
	PolicyFailover Policy = iota + 1
	// PolicySpread load-balances across all available paths by weight
	// ("WiFi and 4G simultaneously").
	PolicySpread
)

// Multipath schedules packets over a set of paths.
//
// Multipath is the model-layer scheduler driven by an explicit `now`
// (simnet virtual time); the production transport equivalent is
// wire.PathSet, which adds probing, cross-path FEC and sub-RTT failover
// on real sockets. Callers without a simnet Sim bind a vclock.Clock via
// BindClock and use the *Now variants, so DownAfter detection reads
// injected time — never the wall clock — and stays deterministic under
// simulation.
type Multipath struct {
	// Paths in preference order (most preferred first).
	Paths []*Path
	// Policy for bulk traffic.
	Policy Policy
	// DuplicateCritical sends critical/highest traffic on the two best
	// paths simultaneously (redundant transmission, Section VI-D).
	DuplicateCritical bool
	// DownAfter is the silence interval after which a path with
	// outstanding data is considered dead (default 500 ms).
	DownAfter time.Duration

	lastProbe time.Duration

	// clock/epoch back the *Now convenience variants; nil until BindClock
	// (or the first *Now call, which lazily binds the system clock).
	clock vclock.Clock
	epoch time.Time
}

// NewMultipath builds a scheduler over the given paths with failover
// policy.
func NewMultipath(paths ...*Path) *Multipath {
	return &Multipath{Paths: paths, Policy: PolicyFailover, DownAfter: 500 * time.Millisecond}
}

// BindClock injects the time source for the *Now variants. The scheduler
// reads `now` as the elapsed time since binding, so under a virtual
// clock path-down detection advances exactly with the simulation and a
// given timeline always produces the same availability verdicts.
func (m *Multipath) BindClock(c vclock.Clock) {
	m.clock = vclock.OrSystem(c)
	m.epoch = m.clock.Now()
}

// clockNow derives the scheduler timeline from the bound clock, binding
// the system clock on first use so legacy callers keep working.
func (m *Multipath) clockNow() time.Duration {
	if m.clock == nil {
		m.BindClock(nil)
	}
	return m.clock.Since(m.epoch)
}

// PickNow is Pick driven by the bound clock.
func (m *Multipath) PickNow(prio Priority, class Class, size int) []*Path {
	return m.Pick(m.clockNow(), prio, class, size)
}

// AvailableNow reports the usable paths at the bound clock's current
// time, in preference order.
func (m *Multipath) AvailableNow() []*Path {
	return m.available(m.clockNow())
}

// AckNow records an ack for p at the bound clock's current time,
// refreshing its liveness and RTT estimate.
func (m *Multipath) AckNow(p *Path, rtt time.Duration) {
	p.onAck(m.clockNow(), rtt)
}

// available returns the usable paths in preference order.
func (m *Multipath) available(now time.Duration) []*Path {
	out := make([]*Path, 0, len(m.Paths))
	for _, p := range m.Paths {
		if p.Available(now, m.DownAfter) {
			out = append(out, p)
		}
	}
	return out
}

// Pick selects the transmission path(s) for a packet of the given priority
// and class and size. Latency-critical traffic (PrioHighest or
// ClassCritical) goes to the lowest-RTT available path, duplicated onto the
// second-best when DuplicateCritical is set. Other traffic follows Policy.
// Pick returns nil when no path is available.
func (m *Multipath) Pick(now time.Duration, prio Priority, class Class, size int) []*Path {
	avail := m.available(now)
	if len(avail) == 0 {
		// Every path looks dead. A dead-by-silence path can only come back
		// if something is sent on it (its ack refreshes liveness), so probe
		// the most preferred non-administratively-down path once per
		// DownAfter instead of going fully mute.
		if now-m.lastProbe < m.DownAfter && m.lastProbe != 0 {
			return nil
		}
		for _, p := range m.Paths {
			if !p.forcedDown {
				m.lastProbe = now
				return []*Path{p}
			}
		}
		return nil
	}
	if prio == PrioHighest || class == ClassCritical {
		best := minRTTPath(avail)
		if m.DuplicateCritical && len(avail) > 1 {
			second := minRTTPathExcept(avail, best)
			return []*Path{best, second}
		}
		return []*Path{best}
	}
	switch m.Policy {
	case PolicySpread:
		return []*Path{m.pickWeighted(avail, size)}
	default: // PolicyFailover
		return []*Path{avail[0]}
	}
}

// pickWeighted implements deficit-style weighted selection: each path
// accumulates credit proportional to its weight and the chosen path pays
// for the packet.
func (m *Multipath) pickWeighted(avail []*Path, size int) *Path {
	var best *Path
	for _, p := range avail {
		if best == nil || p.deficit > best.deficit {
			best = p
		}
	}
	var totalW float64
	for _, p := range avail {
		totalW += p.Weight
	}
	if totalW <= 0 {
		totalW = float64(len(avail))
		for _, p := range avail {
			p.deficit += float64(size) / totalW
		}
	} else {
		for _, p := range avail {
			w := p.Weight
			if w <= 0 {
				w = 1
			}
			p.deficit += float64(size) * w / totalW
		}
	}
	best.deficit -= float64(size)
	return best
}

func minRTTPath(paths []*Path) *Path {
	best := paths[0]
	for _, p := range paths[1:] {
		if rttLess(p, best) {
			best = p
		}
	}
	return best
}

func minRTTPathExcept(paths []*Path, except *Path) *Path {
	var best *Path
	for _, p := range paths {
		if p == except {
			continue
		}
		if best == nil || rttLess(p, best) {
			best = p
		}
	}
	return best
}

// rttLess orders paths by smoothed RTT, treating unmeasured paths (srtt 0)
// as attractive probes behind measured ones only when the measured one is
// fast.
func rttLess(a, b *Path) bool {
	switch {
	case a.srtt == 0 && b.srtt == 0:
		return a.ID < b.ID
	case a.srtt == 0:
		return false // keep measured path until the other proves itself
	case b.srtt == 0:
		return true
	default:
		return a.srtt < b.srtt
	}
}
