package core

import (
	"testing"
	"time"

	"marnet/internal/simnet"
)

// session is a single-path ARTP client->server setup over a duplex link.
type session struct {
	sim  *simnet.Sim
	snd  *Sender
	rcv  *Receiver
	up   *simnet.Link
	down *simnet.Link
	path *Path
}

func newSession(t *testing.T, upRate, downRate float64, delay time.Duration, opts ...simnet.LinkOption) *session {
	t.Helper()
	sim := simnet.New(21)
	clientMux, serverMux := simnet.NewDemux(), simnet.NewDemux()
	up := simnet.NewLink(sim, upRate, delay, serverMux, opts...)
	down := simnet.NewLink(sim, downRate, delay, clientMux, opts...)
	path := &Path{ID: 1, Out: up, Weight: upRate}
	snd := NewSender(sim, SenderConfig{
		Local: 1, Peer: 2, FlowID: 1,
		Paths:       NewMultipath(path),
		StartBudget: upRate, // start at link rate for test speed
	})
	rcv := NewReceiver(sim, ReceiverConfig{
		Local: 2, Peer: 1, FlowID: 1,
		DefaultOut: down,
	})
	clientMux.Register(1, snd)
	serverMux.Register(2, rcv)
	return &session{sim: sim, snd: snd, rcv: rcv, up: up, down: down, path: path}
}

// drive submits n packets of size bytes on st at the given interval.
func (s *session) drive(st *Stream, n, bytes int, every time.Duration) {
	for i := 0; i < n; i++ {
		i := i
		s.sim.Schedule(time.Duration(i)*every, func() { s.snd.Submit(st, bytes) })
	}
}

func TestAddStreamValidation(t *testing.T) {
	s := newSession(t, 1e6, 1e6, time.Millisecond)
	cases := []StreamConfig{
		{Class: 0, Priority: PrioHighest, Rate: 1e5},
		{Class: ClassCritical, Priority: 0, Rate: 1e5},
		{Class: ClassCritical, Priority: PrioHighest, FECK: 2, FECM: 1}, // FEC on critical
		{Class: ClassLossRecovery, Priority: PrioHighest, FECK: 2},      // m = 0
		{Class: ClassLossRecovery, Priority: PrioHighest, FECK: -1},
	}
	for i, cfg := range cases {
		if _, err := s.snd.AddStream(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if _, err := s.snd.AddStream(StreamConfig{Class: ClassCritical, Priority: PrioHighest, Rate: 1e5}); err != nil {
		t.Errorf("valid stream rejected: %v", err)
	}
}

func TestEndToEndDelivery(t *testing.T) {
	s := newSession(t, 10e6, 10e6, 5*time.Millisecond)
	st, err := s.snd.AddStream(StreamConfig{
		Name: "meta", Class: ClassCritical, Priority: PrioHighest, Rate: 1e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.drive(st, 100, 200, 10*time.Millisecond)
	if err := s.sim.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	rs := s.rcv.Stream(st.ID)
	if rs.Delivered != 100 {
		t.Errorf("delivered = %d, want 100", rs.Delivered)
	}
	if rs.Latency.Max() > 100*time.Millisecond {
		t.Errorf("max latency %v too high for a clean 5ms link", rs.Latency.Max())
	}
	if s.rcv.Acked != 100 {
		t.Errorf("acked = %d, want 100", s.rcv.Acked)
	}
	if st.RetxPackets != 0 {
		t.Errorf("retx = %d on a clean link", st.RetxPackets)
	}
}

func TestCriticalReliableUnderLoss(t *testing.T) {
	s := newSession(t, 10e6, 10e6, 5*time.Millisecond, simnet.WithLoss(0.1))
	st, _ := s.snd.AddStream(StreamConfig{
		Name: "meta", Class: ClassCritical, Priority: PrioHighest, Rate: 1e6,
	})
	s.drive(st, 200, 200, 10*time.Millisecond)
	if err := s.sim.RunUntil(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	s.snd.Stop()
	rs := s.rcv.Stream(st.ID)
	if rs.Delivered < 198 { // ~reliable; tail losses bounded by retx cap
		t.Errorf("delivered = %d/200 under 10%% loss", rs.Delivered)
	}
	if st.RetxPackets == 0 {
		t.Error("expected retransmissions under loss")
	}
}

func TestBestEffortNeverRetransmits(t *testing.T) {
	s := newSession(t, 10e6, 10e6, 5*time.Millisecond, simnet.WithLoss(0.1))
	st, _ := s.snd.AddStream(StreamConfig{
		Name: "sensor", Class: ClassFullBestEffort, Priority: PrioNoDelay, Rate: 5e6,
	})
	s.drive(st, 200, 200, 5*time.Millisecond)
	if err := s.sim.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if st.RetxPackets != 0 {
		t.Errorf("best-effort stream retransmitted %d times", st.RetxPackets)
	}
	rs := s.rcv.Stream(st.ID)
	if rs.Delivered == 0 || rs.Delivered == 200 {
		t.Errorf("delivered = %d, expected some but not all under 10%% loss", rs.Delivered)
	}
}

func TestLossRecoveryDeadlineStopsRetx(t *testing.T) {
	// Deadline far below the RTT: a lost packet can never be repaired in
	// time, so the sender should shed rather than retransmit (Section VI-C:
	// at 30 FPS recovery is affordable only if RTT <= 37.5 ms).
	s := newSession(t, 10e6, 10e6, 60*time.Millisecond, simnet.WithLoss(0.15))
	st, _ := s.snd.AddStream(StreamConfig{
		Name: "ref-frames", Class: ClassLossRecovery, Priority: PrioHighest,
		Rate: 5e6, Deadline: 75 * time.Millisecond, // RTT is 120 ms
	})
	s.drive(st, 100, 1000, 10*time.Millisecond)
	if err := s.sim.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	s.snd.Stop()
	if st.RetxPackets != 0 {
		t.Errorf("retransmitted %d despite deadline < RTT", st.RetxPackets)
	}
	if s.snd.DeadlineShed == 0 {
		t.Error("expected deadline shedding")
	}
}

func TestLossRecoveryRetransmitsWithinBudget(t *testing.T) {
	// RTT 20 ms, deadline 200 ms: recovery is affordable.
	s := newSession(t, 10e6, 10e6, 10*time.Millisecond, simnet.WithLoss(0.08))
	st, _ := s.snd.AddStream(StreamConfig{
		Name: "ref-frames", Class: ClassLossRecovery, Priority: PrioHighest,
		Rate: 5e6, Deadline: 200 * time.Millisecond,
	})
	s.drive(st, 300, 1000, 5*time.Millisecond)
	if err := s.sim.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	s.snd.Stop()
	if st.RetxPackets == 0 {
		t.Error("expected retransmissions")
	}
	rs := s.rcv.Stream(st.ID)
	total := rs.Delivered + rs.Late
	if total < 290 {
		t.Errorf("recovered delivery = %d/300", total)
	}
}

func TestFECRecoversWithoutRetx(t *testing.T) {
	s := newSession(t, 10e6, 10e6, 30*time.Millisecond, simnet.WithLoss(0.05))
	st, _ := s.snd.AddStream(StreamConfig{
		Name: "video", Class: ClassLossRecovery, Priority: PrioNoDiscard,
		Rate: 5e6, Deadline: time.Second, FECK: 8, FECM: 2,
	})
	s.drive(st, 400, 1000, 5*time.Millisecond)
	if err := s.sim.RunUntil(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	s.snd.Stop()
	rs := s.rcv.Stream(st.ID)
	if rs.Recovered == 0 {
		t.Error("FEC recovered nothing under 5% loss")
	}
	if st.FECPackets != int64(400/8*2) {
		t.Errorf("FEC packets = %d, want %d", st.FECPackets, 400/8*2)
	}
	if rs.Delivered < 390 {
		t.Errorf("delivered+recovered = %d/400", rs.Delivered)
	}
}

func TestGracefulDegradationShedsLowPriorityFirst(t *testing.T) {
	// Offer 3 Mb/s total on a link that will be squeezed to ~1 Mb/s: the
	// lowest priority stream must absorb the entire cut.
	s := newSession(t, 5e6, 5e6, 10*time.Millisecond)
	meta, _ := s.snd.AddStream(StreamConfig{
		Name: "meta", Class: ClassCritical, Priority: PrioHighest, Rate: 0.2e6,
	})
	video, _ := s.snd.AddStream(StreamConfig{
		Name: "interframes", Class: ClassFullBestEffort, Priority: PrioLowest, Rate: 2.8e6,
	})
	// Squeeze the uplink after 2 s.
	s.sim.Schedule(2*time.Second, func() { s.up.SetRate(1e6) })

	// Drive both streams for 6 s.
	metaTick := 10 * time.Millisecond // 250 B @ 100/s = 0.2 Mb/s
	vidTick := 4 * time.Millisecond   // 1400 B @ 250/s = 2.8 Mb/s
	for i := 0; i < 600; i++ {
		i := i
		s.sim.Schedule(time.Duration(i)*metaTick, func() { s.snd.Submit(meta, 250) })
	}
	for i := 0; i < 1500; i++ {
		i := i
		s.sim.Schedule(time.Duration(i)*vidTick, func() { s.snd.Submit(video, 1400) })
	}
	if err := s.sim.RunUntil(8 * time.Second); err != nil {
		t.Fatal(err)
	}
	s.snd.Stop()

	if video.ShedPackets == 0 {
		t.Error("low-priority stream was never shed despite squeeze")
	}
	rsMeta := s.rcv.Stream(meta.ID)
	if rsMeta.Delivered < 590 {
		t.Errorf("critical stream lost data: %d/600 delivered", rsMeta.Delivered)
	}
	if meta.ShedPackets != 0 {
		t.Errorf("critical stream shed %d packets", meta.ShedPackets)
	}
}

func TestAllocationFollowsPriorityOrder(t *testing.T) {
	sim := simnet.New(1)
	snd := NewSender(sim, SenderConfig{
		Local: 1, Peer: 2, FlowID: 1,
		Paths:       NewMultipath(&Path{ID: 1, Out: &simnet.Sink{}}),
		StartBudget: 1e6,
	})
	var gotLow float64 = -1
	high, _ := snd.AddStream(StreamConfig{
		Class: ClassCritical, Priority: PrioHighest, Rate: 0.8e6,
	})
	low, _ := snd.AddStream(StreamConfig{
		Class: ClassFullBestEffort, Priority: PrioLowest, Rate: 1e6,
		OnAllocate: func(r float64) { gotLow = r },
	})
	if high.Allocated() != 0.8e6 {
		t.Errorf("high alloc = %v, want 0.8e6", high.Allocated())
	}
	if low.Allocated() != 0.2e6 {
		t.Errorf("low alloc = %v, want leftover 0.2e6", low.Allocated())
	}
	if gotLow != 0.2e6 {
		t.Errorf("OnAllocate reported %v", gotLow)
	}
	_ = low
}

func TestQoSFeedbackOnCongestion(t *testing.T) {
	s := newSession(t, 2e6, 2e6, 10*time.Millisecond)
	var allocs []float64
	video, _ := s.snd.AddStream(StreamConfig{
		Name: "video", Class: ClassFullBestEffort, Priority: PrioLowest, Rate: 1.8e6,
		OnAllocate: func(r float64) { allocs = append(allocs, r) },
	})
	s.sim.Schedule(time.Second, func() { s.up.SetRate(0.3e6) })
	for i := 0; i < 1000; i++ {
		i := i
		s.sim.Schedule(time.Duration(i)*5*time.Millisecond, func() { s.snd.Submit(video, 1000) })
	}
	if err := s.sim.RunUntil(6 * time.Second); err != nil {
		t.Fatal(err)
	}
	s.snd.Stop()
	if len(allocs) == 0 {
		t.Fatal("no allocation feedback")
	}
	min := allocs[0]
	for _, a := range allocs {
		if a < min {
			min = a
		}
	}
	if min >= 1.8e6 {
		t.Errorf("allocation never decreased: min=%v", min)
	}
}
