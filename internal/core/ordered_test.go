package core

import (
	"testing"
	"time"

	"marnet/internal/simnet"
)

func TestOrderedDeliveryReorders(t *testing.T) {
	var got []int64
	od := NewOrderedDelivery(func(h DataHdr) { got = append(got, h.Seq) })
	for _, seq := range []int64{2, 0, 3, 1, 4} {
		od.Offer(DataHdr{Seq: seq})
	}
	want := []int64{0, 1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if od.Released != 5 || od.Buffered() != 0 {
		t.Errorf("released=%d buffered=%d", od.Released, od.Buffered())
	}
	if od.MaxBuffered < 2 {
		t.Errorf("MaxBuffered = %d, want >= 2", od.MaxBuffered)
	}
}

func TestOrderedDeliveryIgnoresDupsAndRepairs(t *testing.T) {
	var got []int64
	od := NewOrderedDelivery(func(h DataHdr) { got = append(got, h.Seq) })
	od.Offer(DataHdr{Seq: 0})
	od.Offer(DataHdr{Seq: 0})                            // dup of released
	od.Offer(DataHdr{Seq: 5, Repair: true, FECGroup: 1}) // repair metadata
	if len(got) != 1 || od.Released != 1 {
		t.Fatalf("got %v released=%d", got, od.Released)
	}
}

func TestOrderedDeliveryGaps(t *testing.T) {
	od := NewOrderedDelivery(func(DataHdr) {})
	od.Offer(DataHdr{Seq: 3})
	od.Offer(DataHdr{Seq: 5})
	gaps := od.Gaps()
	want := []int64{0, 1, 2, 4}
	if len(gaps) != len(want) {
		t.Fatalf("gaps = %v, want %v", gaps, want)
	}
	for i := range want {
		if gaps[i] != want[i] {
			t.Fatalf("gaps = %v, want %v", gaps, want)
		}
	}
	if NewOrderedDelivery(func(DataHdr) {}).Gaps() != nil {
		t.Error("empty buffer should have no gaps")
	}
}

func TestSetOrderedEndToEndUnderLoss(t *testing.T) {
	// Critical stream over a 10% lossy link: the app must see every
	// message exactly once, in order, despite retransmission-induced
	// reordering on the wire.
	s := newSession(t, 10e6, 10e6, 10*time.Millisecond, simnet.WithLoss(0.1))
	st, err := s.snd.AddStream(StreamConfig{
		Name: "meta", Class: ClassCritical, Priority: PrioHighest, Rate: 1e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	var seqs []int64
	od := s.rcv.SetOrdered(st.ID, func(h DataHdr) { seqs = append(seqs, h.Seq) })

	const n = 300
	s.drive(st, n, 200, 5*time.Millisecond)
	if err := s.sim.RunUntil(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	s.snd.Stop()
	if len(seqs) < n-2 { // retx cap can abandon a tail packet
		t.Fatalf("app received %d/%d in-order messages", len(seqs), n)
	}
	for i := range seqs {
		if seqs[i] != int64(i) {
			t.Fatalf("out of order at %d: %v", i, seqs[i])
		}
	}
	if st.RetxPackets == 0 {
		t.Error("expected retransmissions under loss")
	}
	_ = od
}

func TestSetOrderedComposesWithOnDeliver(t *testing.T) {
	s := newSession(t, 10e6, 10e6, 5*time.Millisecond)
	var otherCount int
	s.rcv.cfg.OnDeliver = func(stream int, hdr DataHdr) { otherCount++ }
	crit, _ := s.snd.AddStream(StreamConfig{
		Name: "crit", Class: ClassCritical, Priority: PrioHighest, Rate: 1e6,
	})
	other, _ := s.snd.AddStream(StreamConfig{
		Name: "other", Class: ClassFullBestEffort, Priority: PrioLowest, Rate: 1e6,
	})
	var ordered int
	s.rcv.SetOrdered(crit.ID, func(DataHdr) { ordered++ })
	s.drive(crit, 20, 100, 10*time.Millisecond)
	s.drive(other, 20, 100, 10*time.Millisecond)
	if err := s.sim.RunUntil(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	s.snd.Stop()
	if ordered != 20 {
		t.Errorf("ordered deliveries = %d, want 20", ordered)
	}
	if otherCount != 20 {
		t.Errorf("passthrough deliveries = %d, want 20", otherCount)
	}
}
