package core

import (
	"fmt"
	"sort"
	"time"

	"marnet/internal/simnet"
	"marnet/internal/trace"
)

// StreamConfig describes one application substream.
type StreamConfig struct {
	Name     string
	Class    Class
	Priority Priority
	// Rate is the application's desired rate in bits/s; allocation never
	// exceeds it.
	Rate float64
	// Deadline is the per-packet latency budget. Data older than this is
	// not worth retransmitting (ClassLossRecovery) and is counted late at
	// the receiver. Zero means no deadline (typical for ClassCritical).
	Deadline time.Duration
	// FECK/FECM enable systematic FEC on a ClassLossRecovery stream: every
	// FECK data packets are followed by FECM repair packets.
	FECK, FECM int
	// OnAllocate is the QoS feedback callback: the protocol reports the
	// stream's currently allocated rate so the application can adapt
	// (Section VI-B: lower the video quality, the number of samples, ...).
	OnAllocate func(rate float64)
	// Peer, when nonzero, overrides the sender's default peer for this
	// stream: Section VI-E's multi-server layout, where the latency-
	// critical stage goes to the nearest edge server while bulk streams go
	// to the cloud ("the nearest server would be selected for a given
	// path").
	Peer simnet.Addr
}

// Stream is the sender-side state of one substream.
type Stream struct {
	ID  int
	Cfg StreamConfig

	nextSeq   int64
	allocated float64
	tokens    float64 // bytes of admission credit (discardable streams)
	lastFill  time.Duration

	outstanding map[int64]*pendingPkt // reliable/recovery classes only
	maxAcked    int64

	fecGroup   int64
	fecIdx     int
	fecMaxSize int

	// Stats.
	SentPackets int64
	SentBytes   int64 // wire bytes incl. retransmissions and FEC
	ShedPackets int64
	ShedBytes   int64
	RetxPackets int64
	FECPackets  int64

	// SentRate, when non-nil, samples admitted application bytes; the
	// Figure 4 per-class rate curves come from here.
	SentRate *trace.Throughput
}

// Allocated reports the stream's current rate allocation in bits/s.
func (st *Stream) Allocated() float64 { return st.allocated }

// rttFloor is the synthetic base the path-normalized congestion signal is
// rebased onto.
const rttFloor = 10 * time.Millisecond

type pendingPkt struct {
	hdr     DataHdr
	size    int
	created time.Duration // time of last actual transmission
	retx    int
	queued  bool // still waiting in the sender's own band queue
}

// SenderConfig configures an ARTP sender.
type SenderConfig struct {
	Local, Peer simnet.Addr
	// FlowID labels packets for fair queueing in the network.
	FlowID uint64
	// Paths carries the multipath scheduler. For single-path operation use
	// NewMultipath with one path.
	Paths *Multipath
	// StartBudget is the controller's initial rate in bits/s (default
	// 1 Mb/s).
	StartBudget float64
	// MaxBudget caps the controller (default 1 Gb/s).
	MaxBudget float64
	// RetxLimit bounds retransmissions per packet (default 3).
	RetxLimit int
}

// Sender is the ARTP sending endpoint.
type Sender struct {
	sim  *simnet.Sim
	cfg  SenderConfig
	ctrl *Controller

	streams []*Stream
	bands   [4]simnet.DropTail // admitted packets by priority band
	pacing  bool
	sweep   simnet.Event
	stopped bool
	flatten bool // ablation: ignore priorities entirely

	// Stats.
	PacedOut     int64
	NoPathDrops  int64
	DeadlineShed int64
}

// NewSender builds a sender. Call AddStream for each substream, then drive
// it by Submit-ing application data.
func NewSender(sim *simnet.Sim, cfg SenderConfig) *Sender {
	if cfg.StartBudget <= 0 {
		cfg.StartBudget = 1e6
	}
	if cfg.MaxBudget <= 0 {
		cfg.MaxBudget = 1e9
	}
	if cfg.RetxLimit <= 0 {
		cfg.RetxLimit = 3
	}
	s := &Sender{sim: sim, cfg: cfg, ctrl: NewController(cfg.StartBudget)}
	s.ctrl.MaxBudget = cfg.MaxBudget
	s.ctrl.SetOnChange(s.reallocate)
	return s
}

// Controller exposes the congestion controller (for traces and tuning).
func (s *Sender) Controller() *Controller { return s.ctrl }

// Streams returns the registered streams.
func (s *Sender) Streams() []*Stream { return s.streams }

// AddStream registers a substream and returns it.
func (s *Sender) AddStream(cfg StreamConfig) (*Stream, error) {
	switch cfg.Class {
	case ClassFullBestEffort, ClassLossRecovery, ClassCritical:
	default:
		return nil, fmt.Errorf("core: invalid class %d", cfg.Class)
	}
	switch cfg.Priority {
	case PrioHighest, PrioNoDiscard, PrioNoDelay, PrioLowest:
	default:
		return nil, fmt.Errorf("core: invalid priority %d", cfg.Priority)
	}
	if (cfg.FECK > 0 || cfg.FECM > 0) && cfg.Class != ClassLossRecovery {
		return nil, fmt.Errorf("core: FEC requires ClassLossRecovery, got %v", cfg.Class)
	}
	if cfg.FECK < 0 || cfg.FECM < 0 || (cfg.FECK > 0 && cfg.FECM == 0) {
		return nil, fmt.Errorf("core: invalid FEC parameters k=%d m=%d", cfg.FECK, cfg.FECM)
	}
	st := &Stream{
		ID:          len(s.streams),
		Cfg:         cfg,
		outstanding: make(map[int64]*pendingPkt),
		maxAcked:    -1,
		lastFill:    s.sim.Now(),
		tokens:      4 * 1500, // initial burst credit so the first frames pass admission
	}
	s.streams = append(s.streams, st)
	s.reallocate()
	return st, nil
}

// Stop halts background activity (retransmission sweeps, pacing).
func (s *Sender) Stop() {
	s.stopped = true
	s.sweep.Cancel()
}

// FlattenPriorities disables all priority handling — one shared band and
// registration-order allocation. It exists for the ablation benchmarks
// that quantify what the Section VI-A priority machinery buys.
func (s *Sender) FlattenPriorities() {
	s.flatten = true
	s.reallocate()
}

// reallocate distributes the controller budget over streams strictly by
// priority (Section VI-B's graceful degradation: the most important classes
// are funded first; whatever cannot be funded is shed or delayed).
func (s *Sender) reallocate() {
	remaining := s.ctrl.Budget()
	order := make([]*Stream, len(s.streams))
	copy(order, s.streams)
	if !s.flatten {
		sort.SliceStable(order, func(i, j int) bool {
			return order[i].Cfg.Priority < order[j].Cfg.Priority
		})
	}
	for _, st := range order {
		alloc := st.Cfg.Rate
		if alloc > remaining {
			alloc = remaining
		}
		remaining -= alloc
		if alloc != st.allocated {
			st.allocated = alloc
			if st.Cfg.OnAllocate != nil {
				st.Cfg.OnAllocate(alloc)
			}
		}
	}
}

// Submit hands the protocol one application datagram of appBytes payload on
// the stream. It returns true if the datagram was admitted (queued or sent)
// and false if it was shed by graceful degradation.
func (s *Sender) Submit(st *Stream, appBytes int) bool {
	if s.stopped || appBytes <= 0 {
		return false
	}
	now := s.sim.Now()

	// Refill the admission bucket at the allocated rate.
	dt := (now - st.lastFill).Seconds()
	st.lastFill = now
	st.tokens += st.allocated / 8 * dt
	burst := float64(4 * (appBytes + HeaderSize))
	if st.tokens > burst {
		st.tokens = burst
	}

	size := appBytes + HeaderSize
	if st.Cfg.Priority.Discardable() {
		if st.tokens < float64(size) {
			st.ShedPackets++
			st.ShedBytes += int64(appBytes)
			return false
		}
		st.tokens -= float64(size)
	}
	// Non-discardable streams are never shed at admission — they are
	// delayed instead (the band queue drains in priority order).

	hdr := DataHdr{
		Stream:   st.ID,
		Seq:      st.nextSeq,
		AppBytes: appBytes,
	}
	if st.Cfg.Deadline > 0 {
		hdr.Deadline = now + st.Cfg.Deadline
	}
	st.nextSeq++

	if st.Cfg.FECK > 0 {
		hdr.FECGroup = st.fecGroup + 1 // group ids are 1-based on the wire
		hdr.FECIndex = st.fecIdx
		hdr.FECK = st.Cfg.FECK
		hdr.FECM = st.Cfg.FECM
		if size > st.fecMaxSize {
			st.fecMaxSize = size
		}
	}

	if st.Cfg.Class != ClassFullBestEffort {
		st.outstanding[hdr.Seq] = &pendingPkt{hdr: hdr, size: size, created: now, queued: true}
		s.ensureSweep()
	}
	if st.SentRate != nil {
		st.SentRate.Record(now, appBytes)
	}
	s.enqueue(st, hdr, size)

	if st.Cfg.FECK > 0 {
		st.fecIdx++
		if st.fecIdx == st.Cfg.FECK {
			s.emitRepair(st)
			st.fecIdx = 0
			st.fecGroup++
			st.fecMaxSize = 0
		}
	}
	return true
}

// emitRepair enqueues the FECM repair packets for the just-completed group.
func (s *Sender) emitRepair(st *Stream) {
	for i := 0; i < st.Cfg.FECM; i++ {
		hdr := DataHdr{
			Stream:   st.ID,
			Seq:      -(st.fecGroup + 1), // repair packets live outside seq space
			FECGroup: st.fecGroup + 1,
			FECIndex: st.Cfg.FECK + i,
			FECK:     st.Cfg.FECK,
			FECM:     st.Cfg.FECM,
			Repair:   true,
		}
		st.FECPackets++
		s.enqueue(st, hdr, st.fecMaxSize)
	}
}

// enqueue places an admitted packet into its priority band and kicks the
// pacer.
func (s *Sender) enqueue(st *Stream, hdr DataHdr, size int) {
	dst := s.cfg.Peer
	if st.Cfg.Peer != 0 {
		dst = st.Cfg.Peer
	}
	pkt := &simnet.Packet{
		ID:      s.sim.NextPacketID(),
		Src:     s.cfg.Local,
		Dst:     dst,
		Flow:    s.cfg.FlowID,
		Size:    size,
		Seq:     hdr.Seq,
		Class:   int(st.Cfg.Class),
		Prio:    int(st.Cfg.Priority),
		Kind:    KindData,
		Created: s.sim.Now(),
		Payload: hdr,
	}
	band := st.Cfg.Priority.Band()
	if s.flatten {
		band = 0
	}
	s.bands[band].Enqueue(pkt, s.sim.Now())
	s.kickPacer()
}

func (s *Sender) kickPacer() {
	if s.pacing || s.stopped {
		return
	}
	s.paceNext()
}

// paceNext transmits the head-of-line packet from the highest band and
// schedules the next departure so the aggregate rate tracks the budget.
func (s *Sender) paceNext() {
	var pkt *simnet.Packet
	for b := range s.bands {
		if pkt = s.bands[b].Dequeue(s.sim.Now()); pkt != nil {
			break
		}
	}
	if pkt == nil {
		s.pacing = false
		return
	}
	s.pacing = true
	s.transmit(pkt)
	budget := s.ctrl.Budget()
	if budget < 1 {
		budget = 1
	}
	gap := time.Duration(float64(pkt.Size*8) / budget * float64(time.Second))
	s.sim.Schedule(gap, s.paceNext)
}

// transmit stamps path and send-time and hands copies to the chosen
// path(s).
func (s *Sender) transmit(pkt *simnet.Packet) {
	hdr, ok := pkt.Payload.(DataHdr)
	if !ok {
		return
	}
	st := s.streams[hdr.Stream]
	now := s.sim.Now()
	// Discardable data that outlived its deadline in our own queue is
	// dropped here rather than wasting link time (prefer fresh data).
	if st.Cfg.Priority.Discardable() && hdr.Deadline > 0 && now > hdr.Deadline {
		st.ShedPackets++
		st.ShedBytes += int64(hdr.AppBytes)
		return
	}
	if pp, ok := st.outstanding[hdr.Seq]; ok && !hdr.Repair {
		pp.queued = false
		pp.created = now
	}
	paths := s.cfg.Paths.Pick(now, st.Cfg.Priority, st.Cfg.Class, pkt.Size)
	if len(paths) == 0 {
		s.NoPathDrops++
		// Reliable data stays outstanding; the sweep will retry it.
		return
	}
	for i, p := range paths {
		h := hdr
		h.PathID = p.ID
		h.SendTime = s.sim.Now()
		out := pkt
		if i > 0 {
			// Duplicate for redundant transmission.
			dup := *pkt
			dup.ID = s.sim.NextPacketID()
			out = &dup
		}
		out.Payload = h
		p.SentPackets++
		p.SentBytes += int64(out.Size)
		p.outstanding++
		st.SentPackets++
		st.SentBytes += int64(out.Size)
		s.PacedOut++
		p.Out.Handle(out)
	}
}

// Handle consumes acks and nacks from the receiver.
func (s *Sender) Handle(pkt *simnet.Packet) {
	switch pkt.Kind {
	case KindAck:
		if ack, ok := pkt.Payload.(AckHdr); ok {
			s.onAck(ack)
		}
	case KindNack:
		if nack, ok := pkt.Payload.(NackHdr); ok {
			s.onNack(nack)
		}
	}
}

func (s *Sender) onAck(ack AckHdr) {
	now := s.sim.Now()
	rtt := now - ack.EchoSend
	var ackPath *Path
	for _, p := range s.cfg.Paths.Paths {
		if p.ID == ack.PathID {
			p.onAck(now, rtt)
			ackPath = p
			break
		}
	}
	// Feed the controller a path-normalized delay signal: the excess over
	// the path's own base RTT, rebased onto a common floor. Without this,
	// the mere existence of a slower path (LTE next to WiFi) would read as
	// congestion and collapse the budget (Section VI-D heterogeneity).
	norm := rtt
	if ackPath != nil && ackPath.baseRTT > 0 {
		norm = rttFloor + (rtt - ackPath.baseRTT)
		if norm < rttFloor {
			norm = rttFloor
		}
	}
	s.ctrl.OnAck(now, norm)

	if ack.Stream < 0 || ack.Stream >= len(s.streams) || ack.Seq < 0 {
		return
	}
	st := s.streams[ack.Stream]
	delete(st.outstanding, ack.Seq)
	if ack.Seq > st.maxAcked {
		st.maxAcked = ack.Seq
	}
	// Gap-based loss inference: anything reliable well below the ack
	// horizon is presumed lost — unless it was (re)sent so recently that
	// its ack could not have arrived yet.
	const reorderSlack = 3
	for seq, pp := range st.outstanding {
		if seq < st.maxAcked-reorderSlack && s.lossEligible(pp) {
			s.onLostPacket(st, seq, pp)
		}
	}
}

// minPathSRTT returns the smallest measured smoothed RTT across paths (the
// real network RTT estimate, as opposed to the controller's normalized
// congestion signal), or 0 if nothing is measured yet.
func (s *Sender) minPathSRTT() time.Duration {
	var best time.Duration
	for _, p := range s.cfg.Paths.Paths {
		if p.srtt > 0 && (best == 0 || p.srtt < best) {
			best = p.srtt
		}
	}
	return best
}

// lossEligible reports whether enough time has passed since the packet's
// last transmission for its absence to mean loss rather than flight time.
// Packets still waiting in the sender's own queues are never "lost".
func (s *Sender) lossEligible(pp *pendingPkt) bool {
	if pp.queued {
		return false
	}
	guard := s.minPathSRTT()
	if guard < 10*time.Millisecond {
		guard = 10 * time.Millisecond
	}
	return s.sim.Now()-pp.created >= guard
}

func (s *Sender) onNack(nack NackHdr) {
	if nack.Stream < 0 || nack.Stream >= len(s.streams) {
		return
	}
	st := s.streams[nack.Stream]
	for _, seq := range nack.Missing {
		if pp, ok := st.outstanding[seq]; ok && s.lossEligible(pp) {
			s.onLostPacket(st, seq, pp)
		}
	}
}

// onLostPacket decides between retransmission and shedding for a reliable
// or recovery-class packet believed lost.
func (s *Sender) onLostPacket(st *Stream, seq int64, pp *pendingPkt) {
	now := s.sim.Now()
	s.ctrl.OnLoss(now, !st.Cfg.Priority.Discardable())

	if st.Cfg.Class == ClassLossRecovery {
		// Section VI-C: recovery is only worth it when the repair can still
		// arrive before the deadline — the retransmission needs roughly one
		// more one-way trip. Without an RTT estimate we cannot judge
		// affordability, so we decline.
		rtt := s.minPathSRTT()
		affordable := pp.hdr.Deadline == 0 ||
			(rtt > 0 && now+rtt/2 <= pp.hdr.Deadline)
		if !affordable || pp.retx >= s.cfg.RetxLimit {
			delete(st.outstanding, seq)
			s.DeadlineShed++
			return
		}
	}
	if st.Cfg.Class == ClassCritical && pp.retx >= s.cfg.RetxLimit*4 {
		// Even critical data gives up eventually to avoid livelock.
		delete(st.outstanding, seq)
		return
	}
	pp.retx++
	pp.created = now
	pp.queued = true
	st.RetxPackets++
	hdr := pp.hdr
	hdr.Retx = true
	s.enqueue(st, hdr, pp.size)
}

// ensureSweep arms the periodic tail-loss probe that retransmits reliable
// packets that were never acked (e.g. the last packet of a burst, which can
// produce no gap).
func (s *Sender) ensureSweep() {
	// Skip while a sweep is armed or its callback is running (the callback
	// re-arms itself while packets stay outstanding).
	if s.sweep.Pending() || s.sweep.Fired() {
		return
	}
	s.armSweep()
}

func (s *Sender) armSweep() {
	interval := 2 * s.minPathSRTT()
	if interval < 50*time.Millisecond {
		interval = 50 * time.Millisecond
	}
	s.sweep = s.sim.Schedule(interval, func() {
		if s.stopped {
			return
		}
		now := s.sim.Now()
		stale := interval
		again := false
		for _, st := range s.streams {
			for seq, pp := range st.outstanding {
				if !pp.queued && now-pp.created >= stale {
					s.onLostPacket(st, seq, pp)
				}
			}
			if len(st.outstanding) > 0 {
				again = true
			}
		}
		if again {
			s.armSweep()
		} else {
			s.sweep = simnet.Event{}
		}
	})
}
