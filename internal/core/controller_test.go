package core

import (
	"testing"
	"time"
)

func TestControllerAdditiveIncrease(t *testing.T) {
	c := NewController(1e6)
	c.Gain = 2e6
	now := time.Duration(0)
	// Healthy acks at a steady 20 ms RTT for one second.
	for i := 0; i < 100; i++ {
		now += 10 * time.Millisecond
		c.OnAck(now, 20*time.Millisecond)
	}
	// ~1 s at 2 Mb/s/s gain => ~+2 Mb/s.
	if got := c.Budget(); got < 2.5e6 || got > 3.5e6 {
		t.Errorf("budget = %v, want ~3e6", got)
	}
	if c.Decreases != 0 {
		t.Errorf("unexpected decreases: %d", c.Decreases)
	}
}

func TestControllerDelayTriggersDecrease(t *testing.T) {
	c := NewController(10e6)
	now := time.Duration(0)
	for i := 0; i < 20; i++ {
		now += 10 * time.Millisecond
		c.OnAck(now, 20*time.Millisecond)
	}
	before := c.Budget()
	// RTT jumps by 60 ms (> 15 ms threshold); srtt crosses after a few
	// samples.
	for i := 0; i < 20; i++ {
		now += 10 * time.Millisecond
		c.OnAck(now, 80*time.Millisecond)
	}
	if c.Decreases == 0 {
		t.Fatal("delay rise did not trigger a decrease")
	}
	if c.Budget() >= before {
		t.Errorf("budget %v did not drop from %v", c.Budget(), before)
	}
}

func TestControllerDecreaseRateLimited(t *testing.T) {
	c := NewController(10e6)
	now := 100 * time.Millisecond
	c.OnAck(now, 20*time.Millisecond) // base = srtt = 20 ms
	// Elevate the delay signal modestly (above trigger/2, below the
	// trigger) so losses are treated as congestion without OnAck itself
	// cutting.
	for i := 0; i < 60; i++ {
		now += 5 * time.Millisecond
		c.OnAck(now, 40*time.Millisecond)
	}
	if c.Decreases != 0 {
		t.Fatalf("setup triggered %d decreases", c.Decreases)
	}
	// A burst of loss signals within one base RTT must produce one cut.
	for i := 0; i < 10; i++ {
		c.OnLoss(now+time.Duration(i)*time.Millisecond, true)
	}
	if c.Decreases != 1 {
		t.Errorf("decreases = %d, want 1", c.Decreases)
	}
}

func TestControllerIgnoresDiscardableLoss(t *testing.T) {
	c := NewController(10e6)
	c.OnLoss(time.Second, false)
	if c.Decreases != 0 || c.Budget() != 10e6 {
		t.Errorf("discardable loss should not cut budget")
	}
}

func TestControllerIgnoresRandomLossWhenDelayHealthy(t *testing.T) {
	c := NewController(10e6)
	now := time.Duration(0)
	for i := 0; i < 10; i++ {
		now += 10 * time.Millisecond
		c.OnAck(now, 20*time.Millisecond)
	}
	before := c.Budget()
	c.OnLoss(now, true) // valuable loss, but delay is at baseline
	if c.Decreases != 0 {
		t.Errorf("healthy-delay loss should be ignored, got %d decreases", c.Decreases)
	}
	if c.RandomLosses != 1 {
		t.Errorf("RandomLosses = %d, want 1", c.RandomLosses)
	}
	if c.Budget() < before {
		t.Error("budget dropped on random loss")
	}
}

func TestControllerBudgetFloorsAndCaps(t *testing.T) {
	c := NewController(100e3)
	c.MinBudget = 64e3
	now := time.Duration(0)
	c.OnAck(now, 20*time.Millisecond) // establish the baseline
	// Sustained heavy delay keeps cutting until the floor (the first big
	// jump inflates the jitter estimate, which must decay before the
	// adaptive trigger fires again — hence the long horizon).
	for i := 0; i < 600; i++ {
		now += 20 * time.Millisecond
		c.OnAck(now, 200*time.Millisecond)
	}
	if got := c.Budget(); got != 64e3 {
		t.Errorf("budget = %v, want floor 64e3", got)
	}

	c2 := NewController(1e9)
	c2.MaxBudget = 1e9
	c2.Gain = 1e9
	now = 0
	for i := 0; i < 50; i++ {
		now += 10 * time.Millisecond
		c2.OnAck(now, 10*time.Millisecond)
	}
	if got := c2.Budget(); got > 1e9 {
		t.Errorf("budget = %v exceeds cap", got)
	}
}

func TestControllerRecoveryGrowth(t *testing.T) {
	// With RecoveryGrowth on, a calm queue-free path lets the budget climb
	// proportionally — orders of magnitude faster than the additive gain.
	grow := func(recovery bool) float64 {
		c := NewController(100e3)
		c.RecoveryGrowth = recovery
		now := time.Duration(0)
		for i := 0; i < 100; i++ {
			now += 10 * time.Millisecond
			c.OnAck(now, 20*time.Millisecond)
		}
		return c.Budget()
	}
	additive := grow(false)
	proportional := grow(true)
	if proportional < 4*additive {
		t.Errorf("recovery growth %v not much faster than additive %v", proportional, additive)
	}

	// But with the delay hovering near the trigger (standing queue), the
	// proportional mode must stay additive.
	c := NewController(100e3)
	c.RecoveryGrowth = true
	now := time.Duration(0)
	c.OnAck(now, 20*time.Millisecond)
	for i := 0; i < 100; i++ {
		now += 10 * time.Millisecond
		c.OnAck(now, 40*time.Millisecond) // excess ~20ms, below the 25ms trigger
	}
	nearSat := c.Budget()
	if nearSat > 2*additive {
		t.Errorf("no-headroom growth %v should match additive %v", nearSat, additive)
	}
}

func TestControllerOnChangeFires(t *testing.T) {
	c := NewController(1e6)
	calls := 0
	c.SetOnChange(func() { calls++ })
	c.OnAck(10*time.Millisecond, 20*time.Millisecond)
	c.OnAck(20*time.Millisecond, 20*time.Millisecond)
	c.OnLoss(300*time.Millisecond, true)
	if calls == 0 {
		t.Error("OnChange never fired")
	}
}
