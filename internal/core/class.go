// Package core implements ARTP, the AR-oriented transport protocol whose
// design Section VI of the paper lays out. The protocol provides:
//
//   - Classful traffic (Section VI-A): three baseline traffic classes with
//     different reliability semantics — full best effort, best effort with
//     loss recovery, and critical (reliable) data.
//   - Four priority levels used for graceful degradation: in congestion the
//     protocol sheds or delays low-priority traffic instead of shrinking a
//     congestion window (Section VI-B, Figure 4).
//   - A delay-reactive congestion controller that treats rising delay and
//     jitter as congestion signals (Section VI-B).
//   - Selective loss recovery bounded by the application's latency budget,
//     plus FEC for loss-tolerant-but-valuable streams (Section VI-C).
//   - Multipath scheduling across heterogeneous access links with min-RTT,
//     weighted, and redundant policies (Section VI-D).
//   - QoS feedback to the application so it can adapt (encode quality,
//     sensor sampling) rather than stall (Section VI-B).
//
// This package is the deterministic simulator implementation used by the
// experiment harness; package wire implements the same semantics on real
// UDP sockets.
package core

import "time"

// Class is an ARTP traffic class (Section VI-A).
type Class int

// Traffic classes.
const (
	// ClassFullBestEffort: latency matters most; new data is preferred to
	// loss recovery (sensor streams, video interframes).
	ClassFullBestEffort Class = iota + 1
	// ClassLossRecovery: latency-sensitive but valuable data that should be
	// repaired when affordable (video reference frames).
	ClassLossRecovery
	// ClassCritical: reliable in-order delivery is preferable to latency
	// (connection metadata).
	ClassCritical
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassFullBestEffort:
		return "full-best-effort"
	case ClassLossRecovery:
		return "best-effort+recovery"
	case ClassCritical:
		return "critical"
	default:
		return "unknown-class"
	}
}

// Priority is an ARTP priority level (Section VI-A). Lower value = more
// important.
type Priority int

// Priority levels, in the paper's order.
const (
	// PrioHighest: never discarded, never delayed.
	PrioHighest Priority = iota + 1
	// PrioNoDiscard ("Medium priority 1"): may be delayed, never discarded.
	PrioNoDiscard
	// PrioNoDelay ("Medium priority 2"): may be discarded, never delayed —
	// fresh data replaces stale data.
	PrioNoDelay
	// PrioLowest: freely discarded under congestion.
	PrioLowest
)

// String implements fmt.Stringer.
func (p Priority) String() string {
	switch p {
	case PrioHighest:
		return "highest"
	case PrioNoDiscard:
		return "no-discard"
	case PrioNoDelay:
		return "no-delay"
	case PrioLowest:
		return "lowest"
	default:
		return "unknown-priority"
	}
}

// Discardable reports whether traffic at this priority may be dropped under
// congestion rather than queued.
func (p Priority) Discardable() bool {
	return p == PrioNoDelay || p == PrioLowest
}

// Band maps the priority to a strict-priority queue band (0 = served
// first).
func (p Priority) Band() int { return int(p) - 1 }

// AdmissionTiers is the number of server-side admission tiers: one per ARTP
// priority level. A server protecting itself from overload (package
// overload) queues and sheds by the same four classes the transport uses
// for graceful degradation — the serving path and the sending path degrade
// along the same axis.
const AdmissionTiers = 4

// AdmissionTier maps the priority to a server admission tier (0 = most
// protected, AdmissionTiers-1 = shed first). Out-of-range values — e.g. a
// zero Priority from a peer that predates priority propagation — land in
// the lowest tier rather than the most protected one.
func (p Priority) AdmissionTier() int {
	t := int(p) - 1
	if t < 0 || t >= AdmissionTiers {
		return AdmissionTiers - 1
	}
	return t
}

// Packet kinds carried in simnet.Packet.Kind.
const (
	KindData = 10
	KindAck  = 11
	KindNack = 12
)

// Wire overheads.
const (
	HeaderSize = 24 // ARTP+UDP/IP header bytes on data packets
	AckSize    = 40
	NackSize   = 48
)

// DataHdr is the payload attached to ARTP data packets in the simulator.
type DataHdr struct {
	Stream   int
	Seq      int64
	PathID   int
	SendTime time.Duration
	Retx     bool

	// FEC group description (zero group means no FEC).
	FECGroup int64
	FECIndex int
	FECK     int
	FECM     int
	Repair   bool

	// AppBytes is the application payload size (excluding headers).
	AppBytes int
	// Deadline is the absolute sim time after which the data is useless.
	Deadline time.Duration
}

// AckHdr acknowledges one data packet.
type AckHdr struct {
	Stream   int
	Seq      int64
	PathID   int
	EchoSend time.Duration // DataHdr.SendTime echoed back
}

// NackHdr reports missing sequence numbers for a stream.
type NackHdr struct {
	Stream  int
	Missing []int64
}
