package core

import (
	"time"

	"marnet/internal/trace"
)

// Controller is ARTP's graceful-degradation congestion controller (Section
// VI-B). Instead of a congestion window it maintains a sending *budget* in
// bits/s. The budget grows additively while the path looks healthy and is
// cut multiplicatively when congestion is signalled. Congestion signals are
// (a) smoothed RTT rising past the observed base RTT by DelayThreshold —
// "a sudden rise of delay or jitter should be treated as a congestion
// indication, with immediate reaction" — and (b) loss of packets from
// non-discardable streams.
type Controller struct {
	// Budget bounds in bits/s.
	MinBudget float64
	MaxBudget float64

	// Beta is the multiplicative decrease factor (default 0.7).
	Beta float64
	// Gain is the additive increase in bits/s per second of healthy
	// operation (default 1 Mb/s per second).
	Gain float64
	// DelayThreshold is how far above base RTT the smoothed RTT may rise
	// before it is treated as congestion (default 25 ms — below the "few
	// dozen milliseconds" of RTT variance the paper tolerates, above the
	// mean-vs-min gap of a jittery cellular link).
	DelayThreshold time.Duration
	// RecoveryGrowth enables proportional (~25%/RTT) budget growth during
	// calm, queue-free periods so the budget can re-track links whose
	// capacity swings by orders of magnitude (D2D mobility). Off by
	// default: on near-saturated steady links it trades some stability for
	// agility.
	RecoveryGrowth bool

	budget       float64
	baseRTT      time.Duration
	srtt         time.Duration
	prevSrtt     time.Duration
	jitter       time.Duration
	lastDecrease time.Duration
	lastIncrease time.Duration

	// Trace, when set, records the budget after every change.
	Trace *trace.Series
	// Decreases counts congestion events acted on.
	Decreases int64
	// RandomLosses counts valuable losses ignored because the delay signal
	// was healthy (treated as wireless noise, not congestion).
	RandomLosses int64

	onChange func()
}

// NewController returns a controller starting at startBudget bits/s.
func NewController(startBudget float64) *Controller {
	return &Controller{
		MinBudget:      64e3,
		MaxBudget:      1e9,
		Beta:           0.7,
		Gain:           1e6,
		DelayThreshold: 25 * time.Millisecond,
		budget:         startBudget,
	}
}

// Budget reports the current sending budget in bits/s.
func (c *Controller) Budget() float64 { return c.budget }

// SRTT reports the smoothed RTT estimate.
func (c *Controller) SRTT() time.Duration { return c.srtt }

// BaseRTT reports the minimum RTT observed.
func (c *Controller) BaseRTT() time.Duration { return c.baseRTT }

// Jitter reports the mean absolute RTT deviation.
func (c *Controller) Jitter() time.Duration { return c.jitter }

// SetOnChange installs the callback invoked after every budget change (the
// sender uses it to re-run priority allocation).
func (c *Controller) SetOnChange(fn func()) { c.onChange = fn }

func (c *Controller) record(now time.Duration) {
	if c.Trace != nil {
		c.Trace.Add(now, c.budget)
	}
	if c.onChange != nil {
		c.onChange()
	}
}

// OnAck feeds one RTT sample. The controller updates its delay statistics,
// raises the budget additively when healthy, and cuts it when the delay
// signal fires.
func (c *Controller) OnAck(now time.Duration, rtt time.Duration) {
	if c.baseRTT == 0 || rtt < c.baseRTT {
		c.baseRTT = rtt
	}
	if c.srtt == 0 {
		c.srtt = rtt
	} else {
		diff := c.srtt - rtt
		if diff < 0 {
			diff = -diff
		}
		c.jitter = (3*c.jitter + diff) / 4
		c.srtt = (7*c.srtt + rtt) / 8
	}

	trendingDown := c.srtt < c.prevSrtt
	c.prevSrtt = c.srtt
	if c.srtt > c.baseRTT+c.trigger() {
		// Cut only while the delay is still building. Once the signal
		// trends down the earlier cut is working and the queue is
		// draining — cutting again on the lagging EWMA is the "cut train"
		// that collapses utilization when many flows share a bottleneck.
		if !trendingDown {
			c.decrease(now)
		}
		return // never increase while the delay is elevated
	}

	// Healthy: additive increase, proportional to elapsed time so the ack
	// rate does not change the ramp slope.
	if c.lastIncrease == 0 {
		c.lastIncrease = now
		return
	}
	dt := (now - c.lastIncrease).Seconds()
	c.lastIncrease = now
	inc := c.Gain * dt
	// Exponential recovery: when the path has been calm for a while AND
	// the delay sits right at its floor (no queue anywhere — clear
	// headroom), grow proportionally (~25% per base RTT) so the budget can
	// re-track links whose capacity swings by orders of magnitude (D2D
	// mobility, cellular fades). Near saturation the delay hovers around
	// the trigger and growth stays additive, keeping the equilibrium calm.
	base := c.baseRTT
	if base < 10*time.Millisecond {
		base = 10 * time.Millisecond
	}
	calm := c.lastDecrease == 0 || now-c.lastDecrease > 8*base
	headroom := c.srtt <= c.baseRTT+c.trigger()/4
	if c.RecoveryGrowth && calm && headroom {
		if prop := c.budget * 0.25 * dt / base.Seconds(); prop > inc {
			inc = prop
		}
	}
	c.budget += inc
	if c.budget > c.MaxBudget {
		c.budget = c.MaxBudget
	}
	c.record(now)
}

// OnLoss signals the loss of a packet; lossOfValuable marks losses from
// non-discardable streams. Losses of freely discardable traffic are always
// ignored (they are the traffic the protocol itself sheds). Valuable losses
// only cut the budget when the delay signal is also elevated: loss with a
// healthy delay is random wireless loss, and reacting to it would starve
// the flow on every lossy access network (exactly the over-reaction the
// paper criticizes in loss-based congestion control).
func (c *Controller) OnLoss(now time.Duration, lossOfValuable bool) {
	if !lossOfValuable {
		return
	}
	if c.srtt <= c.baseRTT+c.trigger()/2 {
		c.RandomLosses++
		return
	}
	c.decrease(now)
}

// trigger is the delay excess treated as congestion: the configured
// threshold, widened on channels whose own jitter would otherwise read as
// a standing queue (cellular links jitter by tens of milliseconds with no
// congestion at all — Section IV-A).
func (c *Controller) trigger() time.Duration {
	if j := 3 * c.jitter; j > c.DelayThreshold {
		return j
	}
	return c.DelayThreshold
}

// decrease applies a multiplicative cut, at most once per base RTT (the
// queue-free path RTT — using the inflated smoothed RTT here would slow the
// reaction exactly when the queue is deepest).
func (c *Controller) decrease(now time.Duration) {
	guard := c.baseRTT
	if guard < 10*time.Millisecond {
		guard = 10 * time.Millisecond
	}
	if c.lastDecrease != 0 && now-c.lastDecrease < guard {
		return
	}
	c.lastDecrease = now
	c.lastIncrease = now
	// Severity-proportional cut: a delay just past the trigger gets a
	// gentle trim (x0.95); delay at twice the trigger or worse gets the
	// full Beta cut. Mild standing queues — the steady state when many
	// flows share one bottleneck — then converge near capacity instead of
	// synchronously collapsing.
	factor := c.Beta
	if over := c.srtt - (c.baseRTT + c.trigger()); over > 0 {
		sev := float64(over) / float64(c.trigger())
		if sev > 1 {
			sev = 1
		}
		factor = 0.95 - (0.95-c.Beta)*sev
	}
	c.budget *= factor
	if c.budget < c.MinBudget {
		c.budget = c.MinBudget
	}
	c.Decreases++
	c.record(now)
}
