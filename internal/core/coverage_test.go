package core

import (
	"testing"
	"time"

	"marnet/internal/simnet"
)

func TestFlattenPrioritiesSharesOneBand(t *testing.T) {
	s := newSession(t, 2e6, 2e6, 10*time.Millisecond)
	crit, _ := s.snd.AddStream(StreamConfig{
		Name: "crit", Class: ClassCritical, Priority: PrioHighest, Rate: 0.2e6,
	})
	bulk, _ := s.snd.AddStream(StreamConfig{
		Name: "bulk", Class: ClassFullBestEffort, Priority: PrioLowest, Rate: 1.8e6,
	})
	s.snd.FlattenPriorities()
	// With flattened priorities the allocation is registration order, so
	// the critical stream still gets funded first here — but both go to
	// band 0 and interleave FIFO.
	s.drive(crit, 50, 200, 10*time.Millisecond)
	s.drive(bulk, 50, 1200, 10*time.Millisecond)
	if err := s.sim.RunUntil(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	s.snd.Stop()
	if s.rcv.Stream(crit.ID).Delivered == 0 || s.rcv.Stream(bulk.ID).Delivered == 0 {
		t.Error("flattened sender stopped delivering")
	}
}

func TestSenderAccessors(t *testing.T) {
	s := newSession(t, 1e6, 1e6, time.Millisecond)
	st, _ := s.snd.AddStream(StreamConfig{
		Name: "x", Class: ClassCritical, Priority: PrioHighest, Rate: 1e5,
	})
	if s.snd.Controller() == nil {
		t.Error("Controller() nil")
	}
	if len(s.snd.Streams()) != 1 || s.snd.Streams()[0] != st {
		t.Error("Streams() wrong")
	}
	if st.Allocated() != 1e5 {
		t.Errorf("Allocated = %v", st.Allocated())
	}
	// Stop is idempotent.
	s.snd.Stop()
	s.snd.Stop()
	if s.snd.Submit(st, 100) {
		t.Error("Submit after Stop should be rejected")
	}
	if s.snd.Submit(st, 0) {
		t.Error("Submit of zero bytes should be rejected")
	}
}

func TestControllerAccessors(t *testing.T) {
	c := NewController(1e6)
	c.OnAck(10*time.Millisecond, 20*time.Millisecond)
	c.OnAck(20*time.Millisecond, 30*time.Millisecond)
	if c.SRTT() == 0 || c.BaseRTT() != 20*time.Millisecond {
		t.Errorf("srtt=%v base=%v", c.SRTT(), c.BaseRTT())
	}
	if c.Jitter() == 0 {
		t.Error("jitter should be nonzero after differing samples")
	}
}

func TestPathAccessorsAndRTTLess(t *testing.T) {
	a := &Path{ID: 1, Out: &simnet.Sink{}}
	b := &Path{ID: 2, Out: &simnet.Sink{}}
	// Both unmeasured: ordered by ID.
	if !rttLess(a, b) || rttLess(b, a) {
		t.Error("unmeasured tie-break by ID failed")
	}
	a.onAck(time.Second, 30*time.Millisecond)
	if a.SRTT() != 30*time.Millisecond || a.BaseRTT() != 30*time.Millisecond {
		t.Errorf("srtt=%v base=%v", a.SRTT(), a.BaseRTT())
	}
	// Measured vs unmeasured: measured wins.
	if !rttLess(a, b) {
		t.Error("measured path should be preferred")
	}
	if rttLess(b, a) {
		t.Error("unmeasured path should not be preferred")
	}
	b.onAck(time.Second, 10*time.Millisecond)
	if !rttLess(b, a) {
		t.Error("lower srtt should win")
	}
}

func TestMultipathSpreadZeroWeights(t *testing.T) {
	a := &Path{ID: 1, Out: &simnet.Sink{}}
	b := &Path{ID: 2, Out: &simnet.Sink{}}
	m := NewMultipath(a, b)
	m.Policy = PolicySpread
	counts := map[int]int{}
	for i := 0; i < 1000; i++ {
		got := m.Pick(0, PrioLowest, ClassFullBestEffort, 1000)
		counts[got[0].ID]++
	}
	// Zero weights degrade to equal split.
	if counts[1] < 400 || counts[2] < 400 {
		t.Errorf("zero-weight spread unfair: %v", counts)
	}
}

func TestReceiverAckPathRouting(t *testing.T) {
	// Acks must return over the same path the data arrived on.
	sim := simnet.New(41)
	got := map[int]int{}
	mkOut := func(path int) simnet.Handler {
		return simnet.HandlerFunc(func(p *simnet.Packet) { got[path]++ })
	}
	rcv := NewReceiver(sim, ReceiverConfig{
		Local: 2, Peer: 1, FlowID: 1,
		AckPath:    map[int]simnet.Handler{1: mkOut(1), 2: mkOut(2)},
		DefaultOut: mkOut(0),
	})
	deliver := func(pathID int, seq int64) {
		rcv.Handle(&simnet.Packet{
			Kind: KindData, Size: 100,
			Payload: DataHdr{Stream: 0, Seq: seq, PathID: pathID},
		})
	}
	deliver(1, 0)
	deliver(2, 1)
	deliver(9, 2) // unknown path -> default
	if got[1] != 1 || got[2] != 1 || got[0] != 1 {
		t.Errorf("ack routing = %v", got)
	}
}

func TestReceiverTrimBoundsState(t *testing.T) {
	sim := simnet.New(1)
	rcv := NewReceiver(sim, ReceiverConfig{
		Local: 2, Peer: 1, FlowID: 1, DefaultOut: &simnet.Sink{},
	})
	for seq := int64(0); seq < 3000; seq++ {
		rcv.Handle(&simnet.Packet{
			Kind: KindData, Size: 10,
			Payload: DataHdr{Stream: 0, Seq: seq},
		})
	}
	st := rcv.Stream(0)
	if len(st.received) > 1100 {
		t.Errorf("received-set grew to %d entries; trim failed", len(st.received))
	}
	if st.Delivered != 3000 {
		t.Errorf("delivered = %d", st.Delivered)
	}
}

func TestReceiverIgnoresMalformed(t *testing.T) {
	sim := simnet.New(1)
	rcv := NewReceiver(sim, ReceiverConfig{
		Local: 2, Peer: 1, FlowID: 1, DefaultOut: &simnet.Sink{},
	})
	rcv.Handle(&simnet.Packet{Kind: KindAck})                      // wrong kind
	rcv.Handle(&simnet.Packet{Kind: KindData, Payload: "garbage"}) // bad payload
	if rcv.Acked != 0 {
		t.Error("malformed packets acked")
	}
}
