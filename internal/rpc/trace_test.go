package rpc

import (
	"bytes"
	"testing"
	"time"

	"marnet/internal/faults"
	"marnet/internal/obs"
)

// TestTracedCallBudget: a traced call produces a client span, a server
// span stitched to the same trace, and a BudgetReport whose stages sum
// exactly to the measured call duration.
func TestTracedCallBudget(t *testing.T) {
	srvTracer := obs.NewTracer(128, 1)
	srv, err := NewServer("127.0.0.1:0", nil, testHandler, WithTracer(srvTracer))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cliTracer := obs.NewTracer(128, 2)
	cl, err := Dial(srv.Addr(), ClientConfig{Tracer: cliTracer, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const calls = 10
	for i := 0; i < calls; i++ {
		resp, err := cl.Call(methodEcho, []byte{byte(i)}, 2*time.Second)
		if err != nil || !bytes.Equal(resp, []byte{byte(i)}) {
			t.Fatalf("call %d: %q, %v", i, resp, err)
		}
	}

	reports := cl.BudgetTracker().Reports()
	if len(reports) != calls {
		t.Fatalf("got %d budget reports, want %d", len(reports), calls)
	}
	for i, r := range reports {
		if r.Trace == 0 {
			t.Errorf("report %d has no trace id", i)
		}
		if r.Sum() != r.Total {
			t.Errorf("report %d: stage sum %v != total %v", i, r.Sum(), r.Total)
		}
		if r.Attempts != 1 {
			t.Errorf("report %d: attempts = %d, want 1 on a clean network", i, r.Attempts)
		}
	}

	cliSpans := cliTracer.Take()
	srvSpans := srvTracer.Take()
	if len(cliSpans) != calls {
		t.Fatalf("client spans = %d, want %d", len(cliSpans), calls)
	}
	if len(srvSpans) != calls {
		t.Fatalf("server spans = %d, want %d", len(srvSpans), calls)
	}
	byTrace := obs.Stitch(cliSpans, srvSpans)
	for _, spans := range byTrace {
		if len(spans) != 2 {
			t.Fatalf("trace has %d spans, want client+server: %+v", len(spans), spans)
		}
		var client, server *obs.Span
		for _, s := range spans {
			switch s.Name {
			case "call":
				client = s
			case "server":
				server = s
			}
		}
		if client == nil || server == nil {
			t.Fatalf("missing span role in trace: %+v", spans)
		}
		if server.Parent != client.ID {
			t.Errorf("server span parent = %x, want client span %x", server.Parent, client.ID)
		}
		if server.StageDur(obs.StageCompute) <= 0 {
			t.Errorf("server span has no compute stage: %+v", server.Stages)
		}
	}
}

// TestUntracedInterop: a client without a tracer speaks the legacy (v1)
// wire format end to end against a tracer-equipped server — no spans, no
// reports, correct answers.
func TestUntracedInterop(t *testing.T) {
	srvTracer := obs.NewTracer(16, 1)
	srv, err := NewServer("127.0.0.1:0", nil, testHandler, WithTracer(srvTracer))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(srv.Addr(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	resp, err := cl.Call(methodEcho, []byte("legacy"), 2*time.Second)
	if err != nil || string(resp) != "legacy" {
		t.Fatalf("untraced call: %q, %v", resp, err)
	}
	if cl.BudgetTracker() != nil {
		t.Error("tracker must be nil without a tracer")
	}
	if got := srvTracer.Take(); len(got) != 0 {
		t.Errorf("server minted %d spans for untraced calls", len(got))
	}
}

// TestMetricsMatchStats: the registry's read-through counters must agree
// exactly with the legacy Stats snapshots they mirror.
func TestMetricsMatchStats(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", nil, testHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(srv.Addr(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	for i := 0; i < 7; i++ {
		if _, err := cl.Call(methodEcho, []byte{1}, 2*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.Probe(time.Second); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	srv.PublishMetrics(reg, obs.L("role", "server"))
	cl.PublishMetrics(reg, obs.L("role", "client"))

	check := func(name string, labels []obs.Label, want int64) {
		t.Helper()
		p, ok := reg.Lookup(name, labels...)
		if !ok {
			t.Fatalf("metric %s%v not registered", name, labels)
		}
		if int64(p.Value) != want {
			t.Errorf("%s = %v, stats say %d", name, p.Value, want)
		}
	}
	ss := srv.Stats()
	sl := []obs.Label{obs.L("role", "server")}
	check("mar_rpc_server_served_total", sl, ss.Served)
	check("mar_rpc_server_probes_total", sl, ss.Probes)
	check("mar_rpc_server_shed_total", sl, ss.Shed)
	check("mar_gate_admitted_total", sl, ss.Gate.Admitted)
	check("mar_gate_completed_total", sl, ss.Gate.Completed)
	check("mar_admission_dispatched_total",
		append(sl, obs.L("tier", "0")), ss.Gate.Admission.Dispatched[0])

	cs := cl.Stats()
	cll := []obs.Label{obs.L("role", "client")}
	check("mar_rpc_client_calls_total", cll, cs.Calls)
	check("mar_rpc_client_timeouts_total", cll, cs.Timeouts)
	check("mar_rpc_client_retries_total", cll, cs.Retries)
	if cs.Calls == 0 {
		t.Fatal("sanity: no calls recorded")
	}
}

// TestChaosBudgetAttribution is the acceptance scenario for budget
// attribution: under a lossy, delayed, reordering network with retries
// and hedging, every per-frame BudgetReport's stage latencies must sum
// to within 5% of the measured end-to-end duration (they are exact by
// construction; the bound guards the wire-measured inputs), retry/hedge
// overhead must show up in the overhead stage, and the blown-frame
// counters must agree with the reports.
func TestChaosBudgetAttribution(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos budget run takes a few seconds")
	}
	srv, err := NewServer("127.0.0.1:0", nil, testHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	storm := faults.DirConfig{
		Loss:    0.15,
		Delay:   4 * time.Millisecond,
		Jitter:  2 * time.Millisecond,
		Reorder: 0.02,
	}
	relay, err := faults.NewRelay(srv.Addr(), faults.Config{Seed: 11, Up: storm, Down: storm})
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()

	tracer := obs.NewTracer(1024, 5)
	reg := obs.NewRegistry()
	cl, err := Dial(relay.Addr(), ClientConfig{
		Tracer:  tracer,
		Budget:  30 * time.Millisecond, // tight: jittered retries must blow it
		Metrics: reg,
		Retry:   RetryPolicy{Max: 3, Backoff: 10 * time.Millisecond, MaxBackoff: 40 * time.Millisecond},
		Hedge:   HedgePolicy{Enabled: true, Delay: 25 * time.Millisecond},
		Seed:    9,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const total = 80
	completed := 0
	for i := 0; i < total; i++ {
		if _, err := cl.Call(methodEcho, []byte{byte(i)}, 400*time.Millisecond); err == nil {
			completed++
		}
	}
	if completed < total*3/4 {
		t.Fatalf("only %d/%d calls completed; storm too harsh for the test", completed, total)
	}

	bt := cl.BudgetTracker()
	reports := bt.Reports()
	if len(reports) != total {
		t.Fatalf("reports = %d, want %d (failed calls must report too)", len(reports), total)
	}
	retried, blown := 0, 0
	for i, r := range reports {
		sum, tot := r.Sum(), r.Total
		diff := sum - tot
		if diff < 0 {
			diff = -diff
		}
		if tot > 0 && float64(diff) > 0.05*float64(tot) {
			t.Errorf("report %d: stage sum %v vs total %v (off %.1f%%)",
				i, sum, tot, 100*float64(diff)/float64(tot))
		}
		if r.Attempts > 1 || r.Hedged {
			retried++
			if r.Overhead == 0 && r.Attempts > 1 {
				t.Errorf("report %d: %d attempts but zero overhead stage", i, r.Attempts)
			}
		}
		if r.Blown() {
			blown++
		}
	}
	if retried == 0 {
		t.Error("no report shows retry/hedge overhead despite 15% loss")
	}
	if blown == 0 {
		t.Error("no frame blew a 30 ms budget under a jittered lossy path")
	}
	if got := bt.Blown(); got != int64(blown) {
		t.Errorf("tracker blown = %d, reports say %d", got, blown)
	}
	if bt.Frames() != int64(total) {
		t.Errorf("tracker frames = %d, want %d", bt.Frames(), total)
	}
	// The registry mirrors the tracker.
	if p, ok := reg.Lookup("mar_budget_blown_total"); !ok || int64(p.Value) != bt.Blown() {
		t.Errorf("registry blown = %+v ok=%v, tracker says %d", p, ok, bt.Blown())
	}
	t.Logf("chaos budget: %d/%d ok, %d retried/hedged, %d blown, dominant of first blown: %v",
		completed, total, retried, blown, firstBlownDominant(reports))
}

func firstBlownDominant(reports []obs.BudgetReport) string {
	for _, r := range reports {
		if r.Blown() {
			return r.Dominant().Name
		}
	}
	return "none"
}
