package rpc

import (
	"bytes"
	"testing"
	"time"

	"marnet/internal/faults"
)

// TestChaosStormSuite is the acceptance scenario for the resilient stack:
// a sealed client/server pair whose primary path suffers scripted
// Gilbert–Elliott burst loss (~25% stationary), duplication, reordering
// and jitter, plus a 500 ms blackhole and a full server restart mid-run.
// A retrying, breaker-guarded failover client must still complete ≥99% of
// its calls. Every random decision is seeded, so the storm is the same on
// every run.
func TestChaosStormSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos storm runs for several seconds")
	}
	key := bytes.Repeat([]byte{0xC7}, 16)
	ge := &faults.GilbertElliott{PGoodBad: 0.1, PBadGood: 0.2, LossGood: 0.03, LossBad: 0.7}

	srv1, err := NewServer("127.0.0.1:0", key, testHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv1.Close() // idempotent; also closed by the restart script
	backup, err := NewServer("127.0.0.1:0", key, testHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer backup.Close()

	storm := faults.DirConfig{
		GE:      ge,
		Delay:   time.Millisecond,
		Jitter:  time.Millisecond,
		Dup:     0.02,
		Reorder: 0.03,
	}
	relay, err := faults.NewRelay(srv1.Addr(), faults.Config{
		Seed: 42,
		Up:   storm,
		Down: storm,
		Timeline: []faults.Event{
			// A 500 ms total outage in the middle of the run.
			{At: 600 * time.Millisecond, Dir: faults.Both, Blackhole: faults.On},
			{At: 1100 * time.Millisecond, Dir: faults.Both, Blackhole: faults.Off},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()

	fc, err := DialFailover([]string{relay.Addr(), backup.Addr()}, ClientConfig{
		Key:             key,
		Keepalive:       50 * time.Millisecond,
		KeepaliveMiss:   3,
		RedialMin:       20 * time.Millisecond,
		RedialMax:       200 * time.Millisecond,
		RequestDeadline: 80 * time.Millisecond,
		Retry:           RetryPolicy{Max: 4, Backoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond},
		Breaker:         BreakerPolicy{Enabled: true, Threshold: 4, Cooldown: 250 * time.Millisecond},
		Seed:            7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	// Scripted server restart: at 1.7s the primary dies, a new process takes
	// over on a different port, and the relay is re-pointed at it. The
	// accompanying short blackhole is the restart window itself — a
	// restarting server answers nothing.
	restartDone := make(chan *Server, 1)
	go func() {
		time.Sleep(1400 * time.Millisecond)
		relay.SetBlackhole(faults.Both, true)
		srv1.Close()
		ns, err := NewServer("127.0.0.1:0", key, testHandler)
		if err != nil {
			restartDone <- nil
			return
		}
		relay.SetUpstream(ns.Addr()) //nolint:errcheck // address from NewServer
		time.Sleep(200 * time.Millisecond)
		relay.SetBlackhole(faults.Both, false)
		restartDone <- ns
	}()

	const total = 150
	okCalls := 0
	var firstErr error
	for i := 0; i < total; i++ {
		req := []byte{byte(i), byte(i >> 8)}
		resp, err := fc.Call(methodEcho, req, 600*time.Millisecond)
		if err == nil && bytes.Equal(resp, req) {
			okCalls++
		} else if err != nil && firstErr == nil {
			firstErr = err
		}
		time.Sleep(2 * time.Millisecond)
	}

	srv2 := <-restartDone
	if srv2 == nil {
		t.Fatal("scripted server restart failed to start a new server")
	}
	defer srv2.Close()

	if ratio := float64(okCalls) / float64(total); ratio < 0.99 {
		t.Errorf("success = %d/%d (%.3f), want >= 0.99 (first error: %v)",
			okCalls, total, ratio, firstErr)
	}

	// The storm must actually have stormed.
	c := relay.Counters(faults.Both)
	if c.Blackholed == 0 {
		t.Error("no packets blackholed despite two scripted windows")
	}
	if nonBH := c.Received - c.Blackholed; nonBH > 0 {
		if frac := float64(c.Dropped) / float64(nonBH); frac < 0.15 {
			t.Errorf("burst-loss drop fraction = %.3f, want >= 0.15", frac)
		}
	}
	if c.Duplicated == 0 || c.Reordered == 0 {
		t.Errorf("storm too quiet: dup=%d reorder=%d", c.Duplicated, c.Reordered)
	}
	if relay.Swaps() != 1 {
		t.Errorf("upstream swaps = %d, want 1", relay.Swaps())
	}

	st := fc.Stats()
	if st.PerServer[0].Reconnects == 0 {
		t.Error("primary session never resumed (keepalive verdicts inert?)")
	}
	if st.Failovers == 0 {
		t.Error("no calls failed over to the backup during the outages")
	}
	if st.PerServer[0].Retries == 0 {
		t.Error("no rpc-level retries under burst loss")
	}
	t.Logf("chaos summary: %d/%d calls ok; relay %+v; primary %+v; failovers %d",
		okCalls, total, c, st.PerServer[0], st.Failovers)
}
