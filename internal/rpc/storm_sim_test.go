package rpc_test

// The priority-shedding storm on the virtual clock: the same open-loop
// 4x over-capacity load as the former wall-clock test, but the whole
// stack — four tiered clients, the admission gate, the modeled-service
// server — runs deterministically on the simulation loop. That buys back
// the TIGHT latency assertion: on virtual time there is no goroutine
// wakeup or race-detector slack, so every admitted call must land inside
// the budget, exactly.

import (
	"testing"
	"time"

	"marnet/internal/marsim"
)

func TestOverloadStormShedsByPriority(t *testing.T) {
	const stormBudget = 150 * time.Millisecond
	res, err := marsim.RunOverloadStorm(42)
	if err != nil {
		t.Fatal(err)
	}
	if res.OKs == 0 {
		t.Fatal("no request succeeded at all")
	}

	// (a) Every admitted-and-served request finished inside the budget —
	// tight: virtual time has no scheduling slack to forgive.
	for i, tier := range res.Tiers {
		if tier.P99 > stormBudget {
			t.Errorf("tier %d p99 admitted latency %v exceeds budget %v", i, tier.P99, stormBudget)
		}
	}

	// (b) The protected tier sails through while shedding concentrates at
	// the bottom: success fractions must not increase down the tiers.
	frac := make([]float64, len(res.Tiers))
	for i, tier := range res.Tiers {
		frac[i] = float64(tier.Succeeded) / float64(tier.Offered)
		t.Logf("tier %d (prio %v): %d/%d succeeded (%.1f%%), p99 %v",
			i, tier.Prio, tier.Succeeded, tier.Offered, 100*frac[i], tier.P99)
	}
	if frac[0] < 0.95 {
		t.Errorf("protected tier success %.1f%% < 95%%", 100*frac[0])
	}
	for i := 1; i < len(frac); i++ {
		if frac[i] > frac[i-1]+0.05 {
			t.Errorf("tier %d success %.1f%% exceeds tier %d success %.1f%%: shedding is not priority-ordered",
				i, 100*frac[i], i-1, 100*frac[i-1])
		}
	}
	if frac[len(frac)-1] > 0.5 {
		t.Errorf("lowest tier success %.1f%%: the storm never actually overloaded the server",
			100*frac[len(frac)-1])
	}

	st := res.Server
	rejects := st.Shed + st.QueueFull + st.ExpiredInQueue + st.CannotFinish + st.ExpiredOnArrival
	if rejects == 0 {
		t.Error("server rejected nothing at 4x over-capacity")
	}
	if n := st.Gate.Admission.CoDelShed[0]; n != 0 {
		t.Errorf("protected tier was CoDel-shed %d times", n)
	}
	t.Logf("server: served=%d shed=%d queueFull=%d expiredQueue=%d cannotFinish=%d expiredArrival=%d",
		st.Served, st.Shed, st.QueueFull, st.ExpiredInQueue, st.CannotFinish, st.ExpiredOnArrival)
}
