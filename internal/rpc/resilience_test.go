package rpc

import (
	"errors"
	"net"
	"testing"
	"time"

	"marnet/internal/faults"
)

// deadAddr reserves a loopback UDP port and releases it, yielding an
// address where (almost certainly) nothing answers.
func deadAddr(t *testing.T) string {
	t.Helper()
	sock, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	addr := sock.LocalAddr().String()
	sock.Close()
	return addr
}

func TestRetryRecoversAfterOutage(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", nil, testHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// Blackholed at first; a goroutine lifts it after the first rpc attempt
	// has already been abandoned by the transport.
	relay, err := faults.NewRelay(srv.Addr(), faults.Config{
		Seed: 3,
		Timeline: []faults.Event{
			{At: 0, Dir: faults.Both, Blackhole: faults.On},
			{At: 300 * time.Millisecond, Dir: faults.Both, Blackhole: faults.Off},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()

	cl, err := Dial(relay.Addr(), ClientConfig{
		RequestDeadline: 80 * time.Millisecond, // transport gives up fast
		Retry:           RetryPolicy{Max: 5, Backoff: 20 * time.Millisecond},
		Seed:            1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	resp, err := cl.Call(methodEcho, []byte("survivor"), 3*time.Second)
	if err != nil {
		t.Fatalf("call through outage failed: %v", err)
	}
	if string(resp) != "survivor" {
		t.Fatalf("resp = %q", resp)
	}
	if st := cl.Stats(); st.Retries == 0 {
		t.Errorf("stats = %+v: expected at least one rpc-level retry", st)
	}
}

func TestBreakerOpensFastFailsAndProbes(t *testing.T) {
	cl, err := Dial(deadAddr(t), ClientConfig{
		RequestDeadline: 30 * time.Millisecond,
		Breaker:         BreakerPolicy{Enabled: true, Threshold: 3, Cooldown: 250 * time.Millisecond},
		Seed:            2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	for i := 0; i < 3; i++ {
		if _, err := cl.Call(methodEcho, nil, 60*time.Millisecond); err == nil {
			t.Fatal("call to dead address succeeded")
		}
	}
	if !cl.BreakerOpen() {
		t.Fatal("breaker closed after threshold failures")
	}
	start := time.Now()
	_, err = cl.Call(methodEcho, nil, time.Second)
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", err)
	}
	if took := time.Since(start); took > 50*time.Millisecond {
		t.Errorf("breaker fast-fail took %v", took)
	}
	st := cl.Stats()
	if st.BreakerOpens != 1 || st.BreakerFastFails != 1 {
		t.Errorf("stats = %+v", st)
	}

	// After the cooldown one probe is let through; its failure re-opens.
	time.Sleep(300 * time.Millisecond)
	if _, err := cl.Call(methodEcho, nil, 60*time.Millisecond); errors.Is(err, ErrBreakerOpen) {
		t.Error("half-open probe was rejected")
	}
	if _, err := cl.Call(methodEcho, nil, 60*time.Millisecond); !errors.Is(err, ErrBreakerOpen) {
		t.Errorf("post-probe call err = %v, want ErrBreakerOpen", err)
	}
}

func TestBreakerRecoversOnSuccess(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", nil, testHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	b := newBreaker(BreakerPolicy{Enabled: true, Threshold: 2, Cooldown: 50 * time.Millisecond})
	now := time.Now()
	b.record(false, now)
	b.record(false, now)
	if b.allow(now) {
		t.Fatal("breaker should be open")
	}
	probe := now.Add(60 * time.Millisecond)
	if !b.allow(probe) {
		t.Fatal("half-open probe rejected")
	}
	if b.allow(probe) {
		t.Fatal("second concurrent probe allowed")
	}
	b.record(true, probe)
	if !b.allow(probe) {
		t.Fatal("breaker should be closed after probe success")
	}
	if b.openCount() != 1 {
		t.Errorf("openCount = %d", b.openCount())
	}
}

func TestHedgedRequestLaunches(t *testing.T) {
	_, cl := newPair(t, nil)
	cl.cfg.Hedge = HedgePolicy{Enabled: true, Delay: 40 * time.Millisecond}
	// methodSleep takes 300ms, far beyond the hedge delay: a second request
	// must be launched (and the call still succeeds).
	resp, err := cl.Call(methodSleep, nil, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "late" {
		t.Fatalf("resp = %q", resp)
	}
	if st := cl.Stats(); st.Hedges == 0 {
		t.Errorf("stats = %+v: no hedge launched", st)
	}
}

func TestLatencyTrackerQuantile(t *testing.T) {
	lt := newLatencyTracker()
	if _, ok := lt.quantile(0.99); ok {
		t.Error("quantile available with no samples")
	}
	for i := 1; i <= 100; i++ {
		lt.record(time.Duration(i) * time.Millisecond)
	}
	p99, ok := lt.quantile(0.99)
	if !ok {
		t.Fatal("quantile unavailable after 100 samples")
	}
	if p99 < 90*time.Millisecond || p99 > 100*time.Millisecond {
		t.Errorf("p99 = %v", p99)
	}
}

func TestFailoverDispatchesToBackup(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", nil, testHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	fc, err := DialFailover([]string{deadAddr(t), srv.Addr()}, ClientConfig{
		RequestDeadline: 40 * time.Millisecond,
		Breaker:         BreakerPolicy{Enabled: true, Threshold: 2, Cooldown: 2 * time.Second},
		Seed:            4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	const n = 8
	for i := 0; i < n; i++ {
		resp, err := fc.Call(methodEcho, []byte{byte(i)}, 500*time.Millisecond)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if len(resp) != 1 || resp[0] != byte(i) {
			t.Fatalf("call %d: resp = %v", i, resp)
		}
	}
	st := fc.Stats()
	if st.Failovers != n {
		t.Errorf("failovers = %d, want %d", st.Failovers, n)
	}
	if st.PerServer[0].BreakerOpens == 0 {
		t.Error("primary breaker never opened")
	}
	// With the primary's breaker open, calls reach the backup in
	// microseconds instead of burning the primary's share of the deadline.
	start := time.Now()
	if _, err := fc.Call(methodEcho, []byte("x"), 500*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took > 100*time.Millisecond {
		t.Errorf("breaker-open failover call took %v", took)
	}
	if len(fc.Clients()) != 2 {
		t.Errorf("clients = %d", len(fc.Clients()))
	}
}

func TestFailoverValidation(t *testing.T) {
	if _, err := DialFailover(nil, ClientConfig{}); err == nil {
		t.Error("empty address list should fail")
	}
	if _, err := DialFailover([]string{"not an address"}, ClientConfig{}); err == nil {
		t.Error("bad address should fail")
	}
}

func TestServerConnsTrackLivePopulation(t *testing.T) {
	// Satellite 1: the server's dispatch table must shrink when peers are
	// evicted, not leak one entry per departed address.
	srv, err := NewServer("127.0.0.1:0", nil, testHandler,
		WithPeerIdleTimeout(150*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for i := 0; i < 3; i++ {
		cl, err := Dial(srv.Addr(), ClientConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Call(methodEcho, []byte("hi"), time.Second); err != nil {
			t.Fatal(err)
		}
		cl.Close()
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && srv.TrackedPeers() > 0 {
		time.Sleep(20 * time.Millisecond)
	}
	if n := srv.TrackedPeers(); n != 0 {
		t.Errorf("tracked peers = %d after idle eviction, want 0", n)
	}
	if srv.Clients() != 0 {
		t.Errorf("live conns = %d, want 0", srv.Clients())
	}
}
