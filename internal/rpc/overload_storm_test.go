package rpc

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The storm suite is the acceptance test for server-side overload
// protection: a draining server must complete everything it accepted
// while clients fail over without losing a single accepted request. The
// 4x over-capacity priority-shedding storm moved to storm_sim_test.go,
// where it runs on the virtual clock with the TIGHT latency bound (no
// scheduling slack) and deterministic tier outcomes.

const methodStorm = 9

// stormService is the per-request handler cost; with stormWorkers workers
// the server's capacity is stormWorkers/stormService requests per second.
const (
	stormService = 5 * time.Millisecond
	stormWorkers = 4
	stormBudget  = 150 * time.Millisecond
)

func stormHandler(method uint8, req []byte) []byte {
	if method == methodStorm {
		time.Sleep(stormService)
		return []byte("ok")
	}
	return nil
}

func TestOverloadDrainFailoverLosesNothing(t *testing.T) {
	if testing.Short() {
		t.Skip("storm suite skipped in -short mode")
	}
	primary, err := NewServer("127.0.0.1:0", nil, stormHandler, WithWorkers(stormWorkers))
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	backup, err := NewServer("127.0.0.1:0", nil, stormHandler, WithWorkers(stormWorkers))
	if err != nil {
		t.Fatal(err)
	}
	defer backup.Close()

	fc, err := DialFailover([]string{primary.Addr(), backup.Addr()}, ClientConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	// Open-loop load well under either server's capacity, so every call
	// should succeed somewhere; mid-run the primary starts draining.
	const ticks = 200 // 1 s at 5 ms per tick
	var failed, succeeded int64
	var wg sync.WaitGroup
	ticker := time.NewTicker(5 * time.Millisecond)
	defer ticker.Stop()
	for tick := 0; tick < ticks; tick++ {
		<-ticker.C
		if tick == 60 {
			primary.SetDraining(true)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := fc.Call(methodStorm, nil, time.Second); err != nil {
				atomic.AddInt64(&failed, 1)
			} else {
				atomic.AddInt64(&succeeded, 1)
			}
		}()
	}
	wg.Wait()

	// Zero lost accepted requests: every call succeeded (on the primary
	// before the drain, on the backup after).
	if failed != 0 {
		t.Errorf("%d calls failed across the drain (%d succeeded)", failed, succeeded)
	}
	// The drain completes: everything the primary admitted, it served.
	if !primary.WaitDrain(3 * time.Second) {
		t.Fatal("primary never finished draining")
	}
	gst := primary.Gate().Stats()
	if gst.Completed != gst.Admitted {
		t.Errorf("primary lost admitted work: admitted=%d completed=%d", gst.Admitted, gst.Completed)
	}
	if primary.Served() == 0 {
		t.Error("primary served nothing before the drain")
	}
	if backup.Served() == 0 {
		t.Error("backup served nothing after the drain")
	}
	if st := fc.Stats(); st.Failovers == 0 {
		t.Error("no failovers recorded across the drain")
	}
	// The steering hint kicked in: after discovery, the draining primary
	// stopped seeing new calls, so its rejection count stays far below
	// the number of post-drain calls the backup absorbed.
	if rejected := primary.Stats().Draining; rejected > 20 {
		t.Errorf("primary rejected %d calls while draining; steering should have capped discovery traffic", rejected)
	}
}
