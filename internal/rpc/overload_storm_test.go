package rpc

import (
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"marnet/internal/core"
)

// The storm suite is the acceptance test for server-side overload
// protection: an open-loop load at 4x sustained over-capacity must leave
// the protected tier essentially untouched, keep admitted latency inside
// the budget, concentrate shedding in the lowest tiers — and a draining
// server must complete everything it accepted while clients fail over
// without losing a single accepted request.

const methodStorm = 9

// stormService is the per-request handler cost; with stormWorkers workers
// the server's capacity is stormWorkers/stormService requests per second.
const (
	stormService = 5 * time.Millisecond
	stormWorkers = 4
	stormBudget  = 150 * time.Millisecond
)

func stormHandler(method uint8, req []byte) []byte {
	if method == methodStorm {
		time.Sleep(stormService)
		return []byte("ok")
	}
	return nil
}

// tierLoad is one priority class's slice of the open-loop storm.
type tierLoad struct {
	prio    core.Priority
	perTick int // calls fired every 5 ms tick

	offered   int64
	succeeded int64
	mu        sync.Mutex
	latencies []time.Duration
}

func TestOverloadStormShedsByPriority(t *testing.T) {
	if testing.Short() {
		t.Skip("storm suite skipped in -short mode")
	}
	srv, err := NewServer("127.0.0.1:0", nil, stormHandler, WithWorkers(stormWorkers))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Capacity is 800 req/s (4 workers x 5 ms). The offered load is 4x
	// that, skewed so the protected tier is comfortably within capacity
	// while the lower tiers carry the overload: per 5 ms tick,
	// 2+4+5+5 = 16 calls = 3200 req/s.
	loads := []*tierLoad{
		{prio: core.PrioHighest, perTick: 2}, // 400 req/s, tier 0
		{prio: core.PrioNoDiscard, perTick: 4},
		{prio: core.PrioNoDelay, perTick: 5},
		{prio: core.PrioLowest, perTick: 5},
	}
	clients := make([]*Client, len(loads))
	for i, ld := range loads {
		cl, err := Dial(srv.Addr(), ClientConfig{Priority: ld.prio, Seed: int64(100 + i)})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		clients[i] = cl
	}

	const ticks = 300 // 1.5 s of storm
	var wg sync.WaitGroup
	ticker := time.NewTicker(5 * time.Millisecond)
	defer ticker.Stop()
	for tick := 0; tick < ticks; tick++ {
		<-ticker.C
		for i, ld := range loads {
			for k := 0; k < ld.perTick; k++ {
				atomic.AddInt64(&ld.offered, 1)
				wg.Add(1)
				go func(cl *Client, ld *tierLoad) {
					defer wg.Done()
					t0 := time.Now()
					if _, err := cl.Call(methodStorm, nil, stormBudget); err == nil {
						atomic.AddInt64(&ld.succeeded, 1)
						ld.mu.Lock()
						ld.latencies = append(ld.latencies, time.Since(t0))
						ld.mu.Unlock()
					}
				}(clients[i], ld)
			}
		}
	}
	wg.Wait()

	// (a) Every admitted-and-served request finished inside the budget.
	var all []time.Duration
	for _, ld := range loads {
		all = append(all, ld.latencies...)
	}
	if len(all) == 0 {
		t.Fatal("no request succeeded at all")
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	p99 := all[len(all)*99/100-1]
	// Client-observed latency includes goroutine wakeup after the response
	// lands, which the race detector stretches past the budget by ~100 µs
	// on loaded machines; allow that slack without weakening the bound.
	if p99 > stormBudget+2*time.Millisecond {
		t.Errorf("p99 admitted latency %v exceeds budget %v", p99, stormBudget)
	}

	// (b) The protected tier sails through while shedding concentrates
	// at the bottom: success fractions must not increase down the tiers.
	frac := make([]float64, len(loads))
	for i, ld := range loads {
		frac[i] = float64(ld.succeeded) / float64(ld.offered)
		t.Logf("tier %d (prio %v): %d/%d succeeded (%.1f%%)",
			i, ld.prio, ld.succeeded, ld.offered, 100*frac[i])
	}
	if frac[0] < 0.95 {
		t.Errorf("protected tier success %.1f%% < 95%%", 100*frac[0])
	}
	for i := 1; i < len(frac); i++ {
		if frac[i] > frac[i-1]+0.05 {
			t.Errorf("tier %d success %.1f%% exceeds tier %d success %.1f%%: shedding is not priority-ordered",
				i, 100*frac[i], i-1, 100*frac[i-1])
		}
	}
	if frac[len(frac)-1] > 0.5 {
		t.Errorf("lowest tier success %.1f%%: the storm never actually overloaded the server",
			100*frac[len(frac)-1])
	}

	st := srv.Stats()
	rejects := st.Shed + st.QueueFull + st.ExpiredInQueue + st.CannotFinish + st.ExpiredOnArrival
	if rejects == 0 {
		t.Error("server rejected nothing at 4x over-capacity")
	}
	if n := st.Gate.Admission.CoDelShed[0]; n != 0 {
		t.Errorf("protected tier was CoDel-shed %d times", n)
	}
	t.Logf("server: served=%d shed=%d queueFull=%d expiredQueue=%d cannotFinish=%d expiredArrival=%d",
		st.Served, st.Shed, st.QueueFull, st.ExpiredInQueue, st.CannotFinish, st.ExpiredOnArrival)
}

func TestOverloadDrainFailoverLosesNothing(t *testing.T) {
	if testing.Short() {
		t.Skip("storm suite skipped in -short mode")
	}
	primary, err := NewServer("127.0.0.1:0", nil, stormHandler, WithWorkers(stormWorkers))
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	backup, err := NewServer("127.0.0.1:0", nil, stormHandler, WithWorkers(stormWorkers))
	if err != nil {
		t.Fatal(err)
	}
	defer backup.Close()

	fc, err := DialFailover([]string{primary.Addr(), backup.Addr()}, ClientConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	// Open-loop load well under either server's capacity, so every call
	// should succeed somewhere; mid-run the primary starts draining.
	const ticks = 200 // 1 s at 5 ms per tick
	var failed, succeeded int64
	var wg sync.WaitGroup
	ticker := time.NewTicker(5 * time.Millisecond)
	defer ticker.Stop()
	for tick := 0; tick < ticks; tick++ {
		<-ticker.C
		if tick == 60 {
			primary.SetDraining(true)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := fc.Call(methodStorm, nil, time.Second); err != nil {
				atomic.AddInt64(&failed, 1)
			} else {
				atomic.AddInt64(&succeeded, 1)
			}
		}()
	}
	wg.Wait()

	// Zero lost accepted requests: every call succeeded (on the primary
	// before the drain, on the backup after).
	if failed != 0 {
		t.Errorf("%d calls failed across the drain (%d succeeded)", failed, succeeded)
	}
	// The drain completes: everything the primary admitted, it served.
	if !primary.WaitDrain(3 * time.Second) {
		t.Fatal("primary never finished draining")
	}
	gst := primary.Gate().Stats()
	if gst.Completed != gst.Admitted {
		t.Errorf("primary lost admitted work: admitted=%d completed=%d", gst.Admitted, gst.Completed)
	}
	if primary.Served() == 0 {
		t.Error("primary served nothing before the drain")
	}
	if backup.Served() == 0 {
		t.Error("backup served nothing after the drain")
	}
	if st := fc.Stats(); st.Failovers == 0 {
		t.Error("no failovers recorded across the drain")
	}
	// The steering hint kicked in: after discovery, the draining primary
	// stopped seeing new calls, so its rejection count stays far below
	// the number of post-drain calls the backup absorbed.
	if rejected := primary.Stats().Draining; rejected > 20 {
		t.Errorf("primary rejected %d calls while draining; steering should have capped discovery traffic", rejected)
	}
}
