package rpc

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"marnet/internal/wire"
)

const (
	methodEcho  = 1
	methodPose  = 2
	methodSleep = 3
)

func testHandler(method uint8, req []byte) []byte {
	switch method {
	case methodEcho:
		return req
	case methodPose:
		return []byte("pose:" + string(req))
	case methodSleep:
		time.Sleep(300 * time.Millisecond)
		return []byte("late")
	default:
		return nil
	}
}

func newPair(t *testing.T, key []byte) (*Server, *Client) {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0", key, testHandler)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cl, err := Dial(srv.Addr(), ClientConfig{Key: key})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return srv, cl
}

func TestCallRoundTrip(t *testing.T) {
	srv, cl := newPair(t, nil)
	resp, err := cl.Call(methodEcho, []byte("hello"), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, []byte("hello")) {
		t.Fatalf("resp = %q", resp)
	}
	resp, err = cl.Call(methodPose, []byte("frame-7"), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "pose:frame-7" {
		t.Fatalf("resp = %q", resp)
	}
	if srv.Served() != 2 {
		t.Errorf("served = %d", srv.Served())
	}
}

func TestCallDeadline(t *testing.T) {
	_, cl := newPair(t, nil)
	_, err := cl.Call(methodSleep, nil, 50*time.Millisecond)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if st := cl.Stats(); st.Timeouts != 1 {
		t.Errorf("timeouts = %d", st.Timeouts)
	}
}

func TestCallEncrypted(t *testing.T) {
	key := bytes.Repeat([]byte{3}, 16)
	_, cl := newPair(t, key)
	resp, err := cl.Call(methodEcho, []byte("secret"), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "secret" {
		t.Fatalf("resp = %q", resp)
	}
}

func TestConcurrentCalls(t *testing.T) {
	_, cl := newPair(t, nil)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := []byte{byte(i)}
			resp, err := cl.Call(methodEcho, req, 3*time.Second)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(resp, req) {
				errs <- errors.New("response mismatch")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestCallThroughLossyRelay(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", nil, testHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	relay, err := wire.NewRelay(srv.Addr(), 6, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()
	cl, err := Dial(relay.Addr(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	okCount := 0
	for i := 0; i < 30; i++ {
		if _, err := cl.Call(methodEcho, []byte{byte(i)}, 2*time.Second); err == nil {
			okCount++
		}
	}
	if okCount < 28 { // transport retransmission should repair nearly all
		t.Errorf("only %d/30 calls succeeded through the lossy relay", okCount)
	}
	if relay.Dropped() == 0 {
		t.Error("relay dropped nothing")
	}
}

func TestCallValidation(t *testing.T) {
	_, cl := newPair(t, nil)
	if _, err := cl.Call(methodEcho, make([]byte, wire.MaxPayload), time.Second); !errors.Is(err, ErrTooBig) {
		t.Errorf("oversize err = %v", err)
	}
	cl.Close()
	if _, err := cl.Call(methodEcho, nil, time.Second); !errors.Is(err, ErrClosed) {
		t.Errorf("closed err = %v", err)
	}
	if _, err := NewServer("127.0.0.1:0", nil, nil); err == nil {
		t.Error("nil handler should fail")
	}
}

func TestClientCloseUnblocksPending(t *testing.T) {
	_, cl := newPair(t, nil)
	done := make(chan error, 1)
	go func() {
		_, err := cl.Call(methodSleep, nil, 5*time.Second)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cl.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending call not unblocked by Close")
	}
}

func TestServerServesMultipleClients(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", nil, testHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const nClients = 5
	var wg sync.WaitGroup
	errs := make(chan error, nClients*10)
	for c := 0; c < nClients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := Dial(srv.Addr(), ClientConfig{})
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for i := 0; i < 10; i++ {
				req := []byte{byte(c), byte(i)}
				resp, err := cl.Call(methodEcho, req, 3*time.Second)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(resp, req) {
					errs <- errors.New("cross-client response corruption")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if srv.Served() != nClients*10 {
		t.Errorf("served = %d, want %d", srv.Served(), nClients*10)
	}
	if srv.Clients() != nClients {
		t.Errorf("clients = %d, want %d", srv.Clients(), nClients)
	}
}
